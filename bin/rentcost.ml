(* Production command-line tool: solve, inspect and validate
   user-supplied problem instances (Problem_format files).

   Usage:
     dune exec bin/rentcost.exe -- example > app.rentcost
     dune exec bin/rentcost.exe -- info app.rentcost
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70 -a h32jump
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70 --domains 4
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70 --time-limit 5
     dune exec bin/rentcost.exe -- solve app.rentcost \
       --objective max-throughput --budget 120
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70 \
       --pricebook clouds.pricebook
     dune exec bin/rentcost.exe -- validate app.rentcost --target 70
     dune exec bin/rentcost.exe -- trace --pattern diurnal --ticks 96 > load.trace
     dune exec bin/rentcost.exe -- track app.rentcost --load load.trace
     dune exec bin/rentcost.exe -- track app.rentcost --ticks 96 --deadband 0.15
     dune exec bin/rentcost.exe -- serve --socket /tmp/rentcost.sock
     dune exec bin/rentcost.exe -- serve --workers 4 < requests.jsonl
     dune exec bin/rentcost.exe -- serve < requests.jsonl
     dune exec bin/rentcost.exe -- stats --socket /tmp/rentcost.sock
     dune exec bin/rentcost.exe -- stats --socket /tmp/rentcost.sock --text
     dune exec bin/rentcost.exe -- serve --socket /tmp/rentcost.sock \
       --audit audit.jsonl
     dune exec bin/rentcost.exe -- audit --socket /tmp/rentcost.sock --last 20
     dune exec bin/rentcost.exe -- explain app.rentcost --target 70 -a ilp
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70 --trace t.jsonl

   Every solve goes through the unified [Rentcost.Solver] engine; the
   default algorithm "auto" routes on problem structure (§ V-A/V-B
   DPs, § V-C ILP) and degrades to the best heuristic incumbent when
   a --time-limit / --node-limit / --max-evals budget expires.
   --domains N instead races the § VI heuristic portfolio
   (Rentcost_parallel.Portfolio) across N domains — same seed, same
   answer for any N; -a is ignored in portfolio mode.

   --objective picks the scenario: "min-cost" (the default; --target
   required) minimizes rental cost at a throughput target;
   "max-throughput" (--budget required) maximizes throughput under a
   monetary budget, by binary search over min-cost solves bracketed
   by the fluid bound. --pricebook FILE prices machine types from a
   multi-cloud price book (see Rentcost.Pricebook's text format); the
   solve then reports which book and tier each rented type is
   cheapest from.

   "serve" starts the provisioning daemon (Rentcost_service): a
   long-running solve loop speaking line-delimited JSON over a Unix
   socket (--socket) or stdin/stdout, with instance fingerprinting,
   an LRU solution cache and warm-start reuse. --time-limit /
   --node-limit / --max-evals set the default per-request budget;
   --workers N drains the admission queue with N worker domains,
   each taking up to --batch compatible requests per wakeup, with
   identical in-flight solves coalesced to one; --queue-policy picks
   who is shed when the queue is full.

   "stats" scrapes a running daemon: it sends {"op":"metrics"} over
   the socket and prints the reply — raw JSON by default, the
   Prometheus-style text exposition with --text. "audit" queries the
   daemon's solve journal ({"op":"audit"}): one line per completed
   request with its trace id, reuse rung, cost, timings and
   convergence summary; serve --audit FILE additionally mirrors the
   journal to FILE as JSON lines.

   "explain" runs one solve like "solve" and prints its convergence
   timeline — every incumbent improvement and (for the ILP) dual-bound
   advance the engines emitted, ending with the final optimality
   gap.

   "trace" prints a synthetic traffic trace (Rentcost_autoscale.Trace
   text format) to stdout; "track" replays a trace — loaded with
   --load or synthesized from the same generator flags — through the
   drift-watching elastic controller and compares its hourly-billed
   rental bill against static-peak provisioning and the clairvoyant
   per-hour oracle (Rentcost_autoscale.Policy).

   --trace FILE (any command) appends every completed Telemetry span
   to FILE as JSON lines while the command runs. *)

open Cmdliner

module S = Rentcost.Solver

let algorithms =
  [ ("auto", S.Auto); ("ilp", S.Exact_ilp); ("dp", S.Dp_disjoint);
    ("dp-blackbox", S.Dp_blackbox); ("exhaustive", S.Exhaustive);
    ("h0", S.Heuristic Rentcost.Heuristics.H0);
    ("h1", S.Heuristic Rentcost.Heuristics.H1);
    ("h2", S.Heuristic Rentcost.Heuristics.H2);
    ("h31", S.Heuristic Rentcost.Heuristics.H31);
    ("h32", S.Heuristic Rentcost.Heuristics.H32);
    ("h32jump", S.Heuristic Rentcost.Heuristics.H32_jump) ]

let load path =
  try Ok (Rentcost.Problem_format.load path) with
  | Failure msg | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg

let load_pricebook = function
  | None -> Ok None
  | Some path -> (
    try Ok (Some (Rentcost.Pricebook.load path)) with
    | Failure msg | Invalid_argument msg -> Error msg
    | Sys_error msg -> Error msg)

let print_allocation ?pricebook problem target (a : Rentcost.Allocation.t) =
  Format.printf "cost %d@." a.Rentcost.Allocation.cost;
  Array.iteri
    (fun j r -> if r > 0 then Format.printf "recipe %d: throughput %d@." j r)
    a.Rentcost.Allocation.rho;
  Array.iteri
    (fun q x ->
      if x > 0 then begin
        Format.printf "type %d: rent %d machine(s)" q x;
        (match pricebook with
         | None -> ()
         | Some pb ->
           (* Provenance of the effective price this solve used. *)
           let s = Rentcost.Pricebook.sourcing pb q in
           Format.printf " from %s%s @@ %s (unit cost %d)"
             s.Rentcost.Pricebook.src_book
             (match s.Rentcost.Pricebook.src_region with
              | Some r -> "/" ^ r
              | None -> "")
             s.Rentcost.Pricebook.src_tier s.Rentcost.Pricebook.src_cost);
        Format.printf "@."
      end)
    a.Rentcost.Allocation.machines;
  if not (Rentcost.Allocation.feasible problem ~target a) then
    Format.printf "WARNING: allocation does not reach the target@."

let print_telemetry status (t : S.telemetry) =
  Format.printf "%s via %s (%.3f s" (S.status_to_string status)
    (S.spec_to_string t.S.engine) t.S.wall_time;
  if t.S.nodes > 0 then Format.printf ", %d nodes" t.S.nodes;
  if t.S.pivots > 0 then Format.printf ", %d pivots" t.S.pivots;
  if t.S.evaluations > 0 then Format.printf ", %d evaluations" t.S.evaluations;
  if t.S.pruned_recipes > 0 then
    Format.printf ", %d dominated recipe(s) pruned" t.S.pruned_recipes;
  Format.printf ")@."

let solve_with problem ~objective ~pricebook ~spec ~seed ~step ~budget ~domains
    =
  let params = { Rentcost.Heuristics.default_params with step } in
  let rng = Numeric.Prng.create seed in
  match
    match (domains, objective) with
    | None, _ ->
      S.run ~budget ~rng ~params ~spec ?pricebook ~problem ~objective ()
    | Some n, Rentcost.Objective.Min_cost { target } ->
      (* Portfolio mode: race the § VI heuristics on [n] domains. The
         reduction is deterministic, so any [n] gives the same answer
         for a given seed. *)
      Rentcost_parallel.Portfolio.run ~budget ~rng ~params ~domains:n
        ?pricebook ~problem ~target ()
    | Some _, Rentcost.Objective.Max_throughput _ ->
      invalid_arg
        "--domains races the min-cost heuristic portfolio; drop it for \
         --objective max-throughput (the dual binary search runs its own \
         engine per probe)"
  with
  | exception Invalid_argument msg -> Error msg
  | o ->
    print_telemetry o.S.status o.S.telemetry;
    (match o.S.allocation with
     | Some a -> Ok (a, o.S.throughput)
     | None -> Error "no allocation meets the target")

let cmd_solve path objective pricebook spec seed step budget domains =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem -> (
    match load_pricebook pricebook with
    | Error msg -> `Error (false, msg)
    | Ok pricebook -> (
      match
        solve_with problem ~objective ~pricebook ~spec ~seed ~step ~budget
          ~domains
      with
      | Ok (a, achieved) ->
        (* The feasibility check below prices the allocation against
           the throughput it must reach: the requested target for
           min-cost, the achieved throughput for max-throughput. *)
        (match objective with
         | Rentcost.Objective.Min_cost { target } ->
           print_allocation ?pricebook problem target a
         | Rentcost.Objective.Max_throughput { budget } ->
           Format.printf "throughput %d (budget %d)@." achieved budget;
           print_allocation ?pricebook problem achieved a);
        `Ok ()
      | Error msg -> `Error (false, msg)))

let cmd_info path =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem ->
    let open Rentcost in
    Format.printf "types: %d@.recipes: %d@." (Problem.num_types problem)
      (Problem.num_recipes problem);
    Array.iteri
      (fun j r ->
        Format.printf "recipe %d: %d tasks, %d edges, critical path %d, types {%s}@."
          j (Task_graph.num_tasks r)
          (List.length (Task_graph.edges r))
          (Task_graph.critical_path_length r)
          (String.concat "," (List.map string_of_int (Task_graph.types_used r))))
      (Problem.recipes problem);
    let instance = Instance.compile problem in
    (* Classification is read off the compiled instance: dominance
       pruning may reveal structure the raw recipe list hides. *)
    Format.printf "classification: %s (auto engine: %s)@."
      (if Instance.is_blackbox instance then "black-box (§ V-A)"
       else if Instance.is_disjoint instance then "disjoint types (§ V-B)"
       else "shared types (§ V-C)")
      (S.spec_to_string (S.auto_of_instance instance));
    List.iter
      (fun (j', j) ->
        Format.printf "recipe %d is dominated by recipe %d (pruned from solves)@."
          j' j)
      (Instance.dropped instance);
    `Ok ()

let cmd_validate path target items budget =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem ->
    (match
       S.run ~budget ~problem
         ~objective:(Rentcost.Objective.min_cost ~target) ()
     with
     | { S.allocation = None; _ } -> `Error (false, "no solution")
     | { S.allocation = Some a; status; telemetry; _ } ->
       print_telemetry status telemetry;
       print_allocation problem target a;
       let report =
         Streamsim.Sim.run problem a
           { Streamsim.Sim.default_config with Streamsim.Sim.items }
       in
       Format.printf
         "simulated: throughput %.2f, mean latency %.4f, max reorder buffer %d@."
         report.Streamsim.Sim.throughput report.Streamsim.Sim.mean_latency
         report.Streamsim.Sim.max_reorder;
       `Ok ())

let cmd_example () =
  print_string (Rentcost.Problem_format.to_string Rentcost.Problem.illustrating)

(* --- autoscaling --- *)

module A = Rentcost_autoscale

type autoscale_opts = {
  load_trace : string option;
  pattern : [ `Diurnal | `Burst | `Flash_crowd ];
  ticks : int;
  base : int;
  amplitude : int;
  period : int;
  noise : float;
  ticks_per_hour : int;
  deadband : float;
  headroom : float;
}

(* Burst and flash-crowd derive their shape from the shared flags:
   the event peaks [amplitude] above [base], starts a third of the way
   in, and spans on the order of one [period]. *)
let make_trace opts ~seed =
  match opts.load_trace with
  | Some path -> A.Trace.load path
  | None -> (
    let { ticks; base; amplitude; period; noise; _ } = opts in
    match opts.pattern with
    | `Diurnal -> A.Trace.diurnal ~noise ~ticks ~base ~amplitude ~period ~seed ()
    | `Burst ->
      A.Trace.burst ~noise ~ticks ~base ~height:amplitude ~at:(ticks / 3)
        ~width:(max 1 (period / 2)) ~seed ()
    | `Flash_crowd ->
      A.Trace.flash_crowd ~noise ~ticks ~base ~peak:(base + amplitude)
        ~at:(ticks / 3) ~ramp:(max 1 (period / 8)) ~decay:(max 1 (period / 4))
        ~seed ())

let with_trace opts ~seed k =
  match make_trace opts ~seed with
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
    `Error (false, msg)
  | trace -> k trace

let cmd_trace opts seed = with_trace opts ~seed (fun trace ->
    print_string (A.Trace.to_string trace);
    `Ok ())

let int_row a =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"

let cmd_track path opts spec seed budget =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem ->
    with_trace opts ~seed (fun trace ->
        let { ticks_per_hour; deadband; headroom; _ } = opts in
        let config =
          { A.Controller.ticks_per_hour; deadband; headroom; spec; budget }
        in
        match A.Policy.elastic ~config problem trace with
        | exception Invalid_argument msg -> `Error (false, msg)
        | elastic, plans ->
          Format.printf "trace: %d ticks, peak demand %d, %d ticks/hour@."
            (A.Trace.length trace) (A.Trace.peak trace) ticks_per_hour;
          List.iter
            (fun (p : A.Controller.plan) ->
              (* Quiet holds are the common case; print the ticks where
                 money moved or the controller acted. *)
              if p.A.Controller.action = A.Controller.Reconfigure
                 || p.A.Controller.charged > 0 then
                Format.printf
                  "tick %4d: demand %4d %-11s target %4d rent %s renew %s \
                   release %s charged %4d%s@."
                  p.A.Controller.tick p.A.Controller.demand
                  (A.Controller.action_to_string p.A.Controller.action)
                  p.A.Controller.target
                  (int_row p.A.Controller.rent)
                  (int_row p.A.Controller.renew)
                  (int_row p.A.Controller.release)
                  p.A.Controller.charged
                  (if p.A.Controller.violation then " (SLO violation)" else ""))
            plans;
          let static =
            A.Policy.static_peak ~budget ~spec ~ticks_per_hour problem trace
          in
          let oracle =
            A.Policy.oracle ~budget ~spec ~ticks_per_hour problem trace
          in
          Format.printf "elastic:     cost %5d, %d replans, %d SLO violations@."
            elastic.A.Policy.total_cost elastic.A.Policy.replans
            elastic.A.Policy.violations;
          Format.printf "static-peak: cost %5d@." static.A.Policy.total_cost;
          Format.printf "oracle:      cost %5d@." oracle.A.Policy.total_cost;
          Format.printf
            "elastic saves %.1f%% vs static-peak, pays %.1f%% over the \
             clairvoyant oracle@."
            (100. *. A.Policy.savings ~of_:elastic ~over:static)
            (if oracle.A.Policy.total_cost = 0 then 0.
             else
               100.
               *. float_of_int
                    (elastic.A.Policy.total_cost - oracle.A.Policy.total_cost)
               /. float_of_int oracle.A.Policy.total_cost);
          `Ok ())

(* One request over the daemon socket, one reply line back. *)
let scrape_socket path request =
  let module J = Rentcost_service.Json in
  let module Pr = Rentcost_service.Protocol in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let oc = Unix.out_channel_of_descr sock in
      output_string oc (J.to_string (Pr.request_to_json request));
      output_char oc '\n';
      flush oc;
      input_line (Unix.in_channel_of_descr sock))

let print_audit_record (r : Rentcost_service.Audit.record) =
  Format.printf "#%-4d %s tenant=%s %s@@%d %s/%s cost %d wall %.4fs queue %.4fs%s%s@."
    r.Rentcost_service.Audit.seq r.trace_id r.tenant r.objective r.scalar
    r.served r.status r.cost r.wall r.queue_wait
    (if r.engine = "" then "" else " engine=" ^ r.engine)
    (match r.convergence with
     | None -> ""
     | Some c ->
       Printf.sprintf " (%d events%s%s)" c.Rentcost_service.Audit.events
         (match c.Rentcost_service.Audit.time_to_first with
          | Some t -> Printf.sprintf ", ttf %.4fs" t
          | None -> "")
         (match c.Rentcost_service.Audit.final_gap with
          | Some g -> Printf.sprintf ", gap %.2f%%" (100. *. g)
          | None -> ""))

(* Query a running daemon's audit journal: the last N records (all
   held, without --last), one human-readable line each. *)
let cmd_audit socket last =
  match socket with
  | None -> `Error (true, "audit requires --socket PATH")
  | Some path -> (
    let module J = Rentcost_service.Json in
    let module Pr = Rentcost_service.Protocol in
    match scrape_socket path (Pr.Audit { last }) with
    | exception Unix.Unix_error (err, fn, _) ->
      `Error (false, Printf.sprintf "audit: %s: %s" fn (Unix.error_message err))
    | exception End_of_file ->
      `Error (false, "audit: daemon closed the connection")
    | line -> (
      match J.of_string line with
      | Error msg -> `Error (false, "audit: bad reply: " ^ msg)
      | Ok reply -> (
        match Pr.response_of_json reply with
        | Ok (Pr.Audit_reply records) ->
          if records = [] then Format.printf "audit journal is empty@."
          else List.iter print_audit_record records;
          `Ok ()
        | Ok (Pr.Error { message; _ }) -> `Error (false, "audit: " ^ message)
        | Ok _ -> `Error (false, "audit: unexpected reply shape")
        | Error msg -> `Error (false, "audit: bad reply: " ^ msg))))

(* Run one solve with the convergence timeline switched on and print
   it: every incumbent improvement and dual-bound advance the engines
   emitted, with the final optimality gap. *)
let cmd_explain path objective pricebook spec seed step budget =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem -> (
    match load_pricebook pricebook with
    | Error msg -> `Error (false, msg)
    | Ok pricebook -> (
      let params = { Rentcost.Heuristics.default_params with step } in
      let rng = Numeric.Prng.create seed in
      match
        S.run ~budget ~rng ~params ~spec ?pricebook ~problem ~objective ()
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | o ->
        print_telemetry o.S.status o.S.telemetry;
        (match o.S.allocation with
         | Some a -> Format.printf "cost %d@." a.Rentcost.Allocation.cost
         | None -> ());
        let events = o.S.convergence in
        if events = [] then
          Format.printf
            "no convergence events (cache hit, closed-form solve, or \
             telemetry disabled)@."
        else begin
          Format.printf "convergence timeline (%d events):@."
            (List.length events);
          List.iter
            (fun (e : Telemetry.Progress.event) ->
              let what =
                match
                  (e.Telemetry.Progress.incumbent, e.Telemetry.Progress.bound)
                with
                | Some i, Some b ->
                  Printf.sprintf "incumbent %d, bound %.2f" (int_of_float i) b
                | Some i, None -> Printf.sprintf "incumbent %d" (int_of_float i)
                | None, Some b -> Printf.sprintf "bound %.2f" b
                | None, None -> "-"
              in
              Format.printf "  t+%8.4fs  %-30s [%s]@."
                e.Telemetry.Progress.elapsed what e.Telemetry.Progress.source)
            events;
          match Rentcost_service.Audit.summarize events with
          | None -> ()
          | Some c ->
            let part label = function
              | None -> ""
              | Some v -> Printf.sprintf ", %s %.2f" label v
            in
            Format.printf "final: incumbent %s%s%s%s@."
              (match c.Rentcost_service.Audit.last_incumbent with
               | Some v -> string_of_int (int_of_float v)
               | None -> "-")
              (part "bound" c.Rentcost_service.Audit.final_bound)
              (match c.Rentcost_service.Audit.final_gap with
               | Some g -> Printf.sprintf ", gap %.2f%%" (100. *. g)
               | None -> "")
              (match c.Rentcost_service.Audit.time_to_first with
               | Some t -> Printf.sprintf ", first feasible at %.4fs" t
               | None -> "")
        end;
        `Ok ()))

let cmd_stats socket text_mode =
  match socket with
  | None -> `Error (true, "stats requires --socket PATH")
  | Some path -> (
    let module J = Rentcost_service.Json in
    let module Pr = Rentcost_service.Protocol in
    match scrape_socket path Pr.Metrics with
    | exception Unix.Unix_error (err, fn, _) ->
      `Error (false, Printf.sprintf "stats: %s: %s" fn (Unix.error_message err))
    | exception End_of_file ->
      `Error (false, "stats: daemon closed the connection")
    | line -> (
      match J.of_string line with
      | Error msg -> `Error (false, "stats: bad reply: " ^ msg)
      | Ok reply ->
        if not text_mode then begin
          print_endline line;
          `Ok ()
        end
        else (
          match J.get_string "text" reply with
          | Some text ->
            print_string text;
            `Ok ()
          | None -> `Error (false, "stats: reply carries no text exposition"))))

let cmd_serve socket cache_capacity queue_capacity queue_policy batch budget
    workers audit =
  if cache_capacity <= 0 then `Error (true, "--cache must be positive")
  else if queue_capacity <= 0 then `Error (true, "--queue must be positive")
  else if batch < 1 then `Error (true, "--batch must be at least 1")
  else if workers < 1 then `Error (true, "--workers must be at least 1")
  else begin
    let config =
      { Rentcost_service.Engine.cache_capacity; queue_capacity; queue_policy;
        batch; default_budget = budget; workers }
    in
    match socket with
    | Some path ->
      (match Rentcost_service.Daemon.serve_socket ~config ?audit ~path () with
       | () -> `Ok ()
       | exception Unix.Unix_error (err, fn, _) ->
         `Error (false, Printf.sprintf "serve: %s: %s" fn (Unix.error_message err)))
    | None ->
      `Ok (Rentcost_service.Daemon.serve_channels ~config ?audit stdin stdout)
  end

(* --- cmdliner plumbing --- *)

let algorithm_arg =
  Arg.(value
      & opt (enum algorithms) S.Auto
      & info [ "algorithm"; "a" ] ~docv:"ALG"
          ~doc:
            "One of: auto, ilp, dp, dp-blackbox, exhaustive, h0, h1, h2, h31, \
             h32, h32jump.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let step_arg =
  Arg.(value & opt int 1 & info [ "step" ] ~docv:"D" ~doc:"Heuristic exchange quantum.")

let time_limit_arg =
  Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"S"
         ~doc:"Wall-clock budget in seconds.")

let node_limit_arg =
  Arg.(value & opt (some int) None & info [ "node-limit" ] ~docv:"N"
         ~doc:"Branch-and-bound node budget (deterministic).")

let max_evals_arg =
  Arg.(value & opt (some int) None & info [ "max-evals" ] ~docv:"N"
         ~doc:"Cost-oracle evaluation budget for heuristics (deterministic).")

let items_arg =
  Arg.(value & opt int 2000 & info [ "items" ] ~docv:"N" ~doc:"Simulated stream items.")

let subcommand =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"COMMAND"
         ~doc:"solve, explain, info, validate, track, trace, serve, stats, \
               audit, or example.")

let autoscale_term =
  let make load_trace pattern ticks base amplitude period noise ticks_per_hour
      deadband headroom =
    { load_trace; pattern; ticks; base; amplitude; period; noise;
      ticks_per_hour; deadband; headroom }
  in
  Term.(
    const make
    $ Arg.(value & opt (some file) None
           & info [ "load" ] ~docv:"FILE"
               ~doc:"Replay a saved traffic trace instead of generating one.")
    $ Arg.(value
           & opt (enum [ ("diurnal", `Diurnal); ("burst", `Burst);
                         ("flash-crowd", `Flash_crowd) ]) `Diurnal
           & info [ "pattern" ] ~docv:"SHAPE"
               ~doc:"Synthetic trace shape: diurnal, burst, or flash-crowd.")
    $ Arg.(value & opt int 96
           & info [ "ticks" ] ~docv:"N" ~doc:"Trace length in ticks.")
    $ Arg.(value & opt int 20
           & info [ "base" ] ~docv:"N" ~doc:"Baseline demand per tick.")
    $ Arg.(value & opt int 60
           & info [ "amplitude" ] ~docv:"N"
               ~doc:"Demand swing above the baseline.")
    $ Arg.(value & opt int 48
           & info [ "period" ] ~docv:"N"
               ~doc:"Diurnal period (ticks); also scales the burst and \
                     flash-crowd event lengths.")
    $ Arg.(value & opt float 0.08
           & info [ "noise" ] ~docv:"F"
               ~doc:"Multiplicative demand noise in [0,1] (seeded).")
    $ Arg.(value & opt int 12
           & info [ "ticks-per-hour" ] ~docv:"N"
               ~doc:"Billing granularity: ticks per paid machine-hour.")
    $ Arg.(value & opt float 0.25
           & info [ "deadband" ] ~docv:"F"
               ~doc:"Controller hysteresis: no downscale re-solve while \
                     demand stays above (1-F) x the solved target.")
    $ Arg.(value & opt float 0.15
           & info [ "headroom" ] ~docv:"F"
               ~doc:"Over-provisioning applied to each re-solve target."))

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Serve on a Unix-domain socket instead of stdin/stdout.")

let cache_arg =
  Arg.(value & opt int 128 & info [ "cache" ] ~docv:"N"
         ~doc:"Solution-cache capacity (LRU entries) for serve.")

let queue_arg =
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
         ~doc:"Admission-queue capacity for serve.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Append completed telemetry spans to FILE as JSON lines.")

let text_arg =
  Arg.(value & flag & info [ "text" ]
         ~doc:"Print the Prometheus-style text exposition (stats).")

let audit_file_arg =
  Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"FILE"
         ~doc:"Append one audit record per completed request to FILE as \
               JSON lines (serve).")

let last_arg =
  Arg.(value & opt (some int) None & info [ "last" ] ~docv:"N"
         ~doc:"Only the last N audit records (audit).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Solve by racing the heuristic portfolio on N domains \
               (deterministic for a fixed --seed, any N).")

let objective_arg =
  Arg.(value
      & opt (enum [ ("min-cost", `Min_cost); ("max-throughput", `Max_throughput) ])
          `Min_cost
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "What to optimize: min-cost (reach --target at minimum rental \
             cost, the default) or max-throughput (maximize throughput with \
             rental cost at most --budget).")

let money_arg =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"COST"
         ~doc:"Monetary budget for --objective max-throughput.")

let pricebook_arg =
  Arg.(value & opt (some file) None & info [ "pricebook" ] ~docv:"FILE"
         ~doc:"Price machine types from a multi-cloud price-book file \
               instead of the instance's own cost vector.")

let workers_arg =
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
         ~doc:"Worker domains draining the serve queue concurrently.")

let queue_policy_arg =
  let module A = Rentcost_service.Admission in
  Arg.(value
      & opt
          (enum
             [ ("reject-new", A.Reject_new); ("drop-oldest", A.Drop_oldest);
               ("tenant-fair", A.Tenant_fair) ])
          A.Reject_new
      & info [ "queue-policy" ] ~docv:"POLICY"
          ~doc:
            "Who loses when the serve queue is full: reject-new sheds the \
             arrival, drop-oldest evicts the oldest queued request, \
             tenant-fair evicts the newest request of the tenant holding \
             the most slots (never a tenant's only one).")

let batch_arg =
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"K"
         ~doc:"Max queued solves one serve worker drains per wakeup; 1 \
               disables batching.")

let main sub path target spec seed step time_limit node_limit max_evals items
    socket cache_capacity queue_capacity queue_policy batch trace text_mode
    domains workers objective_kind money pricebook audit_file last auto_opts =
  let budget =
    { Rentcost.Budget.deadline = time_limit; node_cap = node_limit;
      eval_cap = max_evals }
  in
  (match trace with
   | None -> ()
   | Some path ->
     Rentcost_service.Metrics.install_trace ~path;
     at_exit Rentcost_service.Metrics.close_trace);
  let with_objective k =
    match (objective_kind, target, money) with
    | `Min_cost, Some target, _ -> k (Rentcost.Objective.min_cost ~target)
    | `Min_cost, None, _ -> `Error (true, "--target is required")
    | `Max_throughput, _, Some money ->
      k (Rentcost.Objective.max_throughput ~budget:money)
    | `Max_throughput, _, None ->
      `Error (true, "--objective max-throughput requires --budget")
  in
  match (sub, path, target) with
  | "example", _, _ -> `Ok (cmd_example ())
  | "serve", _, _ ->
    cmd_serve socket cache_capacity queue_capacity queue_policy batch budget
      workers audit_file
  | "stats", _, _ -> cmd_stats socket text_mode
  | "audit", _, _ -> cmd_audit socket last
  | "info", Some path, _ -> cmd_info path
  | "solve", Some path, _ ->
    with_objective (fun objective ->
        cmd_solve path objective pricebook spec seed step budget domains)
  | "explain", Some path, _ ->
    with_objective (fun objective ->
        cmd_explain path objective pricebook spec seed step budget)
  | "validate", Some path, Some target -> cmd_validate path target items budget
  | "validate", Some _, None -> `Error (true, "--target is required")
  | "trace", _, _ -> cmd_trace auto_opts seed
  | "track", Some path, _ -> cmd_track path auto_opts spec seed budget
  | ("info" | "solve" | "explain" | "validate" | "track"), None, _ ->
    `Error (true, "a problem FILE is required")
  | (other, _, _) -> `Error (true, Printf.sprintf "unknown command %S" other)

let cmd =
  let doc = "Solve cloud rental-cost problems from instance files" in
  let info = Cmd.info "rentcost" ~doc in
  Cmd.v info
    Term.(
      ret
        (const main $ subcommand
        $ Arg.(value & pos 1 (some file) None
               & info [] ~docv:"FILE" ~doc:"Problem file.")
        $ Arg.(value & opt (some int) None
               & info [ "target"; "t" ] ~docv:"N" ~doc:"Target throughput.")
        $ algorithm_arg $ seed_arg $ step_arg $ time_limit_arg $ node_limit_arg
        $ max_evals_arg $ items_arg $ socket_arg $ cache_arg $ queue_arg
        $ queue_policy_arg $ batch_arg
        $ trace_arg $ text_arg $ domains_arg $ workers_arg $ objective_arg
        $ money_arg $ pricebook_arg $ audit_file_arg $ last_arg
        $ autoscale_term))

let () = exit (Cmd.eval cmd)
