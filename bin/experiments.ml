(* Command-line harness regenerating every evaluation artefact of the
   paper (Table III and Figures 3-8). See DESIGN.md § 4 for the
   experiment index.

   Usage:
     dune exec bin/experiments.exe -- list
     dune exec bin/experiments.exe -- table3
     dune exec bin/experiments.exe -- fig3 [--configs 100] [--seed 2016]
     dune exec bin/experiments.exe -- fig8 --time-limit 100 --configs 10
     dune exec bin/experiments.exe -- all --configs 10
     dune exec bin/experiments.exe -- validate --targets 70,130

   Figures print as aligned tables; pass --csv FILE to also write CSV. *)

open Cmdliner

let run_preset preset ~configs ~seed ~time_limit ~csv ~quiet =
  let configs = Option.value configs ~default:preset.Cloudsim.Experiments.default_configs in
  let progress c =
    if not quiet then begin
      Printf.eprintf "\r[%s] config %d/%d%!" preset.Cloudsim.Experiments.id (c + 1) configs;
      if c + 1 = configs then prerr_newline ()
    end
  in
  let ms =
    Cloudsim.Experiments.run ~configs ~seed ?time_limit ~progress preset
  in
  let series =
    match preset.Cloudsim.Experiments.id with
    | "fig4" -> Cloudsim.Stats.best_counts ms
    | "fig5" | "fig8" -> Cloudsim.Stats.mean_times ms
    | _ -> Cloudsim.Stats.normalized_cost ms
  in
  Cloudsim.Report.print_series Format.std_formatter
    ~title:
      (Printf.sprintf "%s: %s (%d configs, seed %d)"
         preset.Cloudsim.Experiments.id preset.Cloudsim.Experiments.description
         configs seed)
    series;
  (* The companion statistics the paper discusses alongside each plot. *)
  (match preset.Cloudsim.Experiments.id with
   | "fig3" | "fig6" | "fig7" ->
     Cloudsim.Report.print_series Format.std_formatter
       ~title:(preset.Cloudsim.Experiments.id ^ " companion: cost overhead vs ILP")
       (Cloudsim.Stats.mean_gap_vs_reference ms ~reference:"ILP")
   | "fig5" ->
     Cloudsim.Report.print_series Format.std_formatter
       ~title:"fig5 companion: cost-oracle evaluations (machine-independent effort)"
       (Cloudsim.Stats.mean_evaluations ms)
   | "fig8" ->
     Cloudsim.Report.print_series Format.std_formatter
       ~title:"fig8 companion: fraction of ILP runs proved optimal"
       (Cloudsim.Stats.optimality_rate ms);
     Cloudsim.Report.print_series Format.std_formatter
       ~title:"fig8 companion: branch-and-bound effort"
       (Cloudsim.Stats.mean_nodes ms)
   | _ -> ());
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Cloudsim.Report.series_to_csv series);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    csv

let cmd_list () =
  print_endline "table3    illustrating example (paper Table III)";
  List.iter
    (fun p ->
      Printf.printf "%-9s %s (default %d configs)\n" p.Cloudsim.Experiments.id
        p.Cloudsim.Experiments.description p.Cloudsim.Experiments.default_configs)
    Cloudsim.Experiments.all;
  print_endline "all       every figure in sequence";
  print_endline "validate  stream-simulate ILP allocations (illustrating example)"

let cmd_table3 seed =
  Cloudsim.Report.print_table3 Format.std_formatter
    (Cloudsim.Experiments.table3 ~seed ())

let cmd_validate targets items =
  let problem = Rentcost.Problem.illustrating in
  Format.printf "Validating exact allocations by discrete-event execution@.";
  Format.printf "%8s %8s %10s %12s %12s@." "target" "cost" "measured" "max_reorder"
    "mean_latency";
  List.iter
    (fun target ->
      match
        (Rentcost.Solver.run ~spec:Rentcost.Solver.Auto ~problem
           ~objective:(Rentcost.Objective.min_cost ~target) ())
          .Rentcost.Solver.allocation
      with
      | None -> Format.printf "%8d (no allocation)@." target
      | Some alloc ->
        let report =
          Streamsim.Sim.run problem alloc
            { Streamsim.Sim.default_config with Streamsim.Sim.items }
        in
        Format.printf "%8d %8d %10.2f %12d %12.4f@." target
          alloc.Rentcost.Allocation.cost report.Streamsim.Sim.throughput
          report.Streamsim.Sim.max_reorder report.Streamsim.Sim.mean_latency)
    targets

let experiment_arg =
  let doc =
    "Experiment to run: table3, fig3, fig4, fig5, fig6, fig7, fig8, all, \
     validate, or list."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let configs_arg =
  let doc = "Number of random configurations (default: the paper's count)." in
  Arg.(value & opt (some int) None & info [ "configs"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed; experiments are deterministic given the seed." in
  Arg.(value & opt int 2016 & info [ "seed" ] ~docv:"SEED" ~doc)

let time_limit_arg =
  let doc = "ILP wall-clock limit in seconds (fig8 defaults to 100)." in
  Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"SECONDS" ~doc)

let csv_arg =
  let doc = "Also write the main series as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let targets_arg =
  let doc = "Comma-separated targets for validate (default 10,70,130,200)." in
  Arg.(value & opt (list int) [ 10; 70; 130; 200 ] & info [ "targets" ] ~docv:"T,..." ~doc)

let items_arg =
  let doc = "Stream items per validation run." in
  Arg.(value & opt int 2000 & info [ "items" ] ~docv:"N" ~doc)

let main experiment configs seed time_limit csv quiet targets items =
  match experiment with
  | "list" -> `Ok (cmd_list ())
  | "table3" -> `Ok (cmd_table3 seed)
  | "validate" -> `Ok (cmd_validate targets items)
  | "all" ->
    `Ok
      (cmd_table3 seed;
       List.iter
         (fun p -> run_preset p ~configs ~seed ~time_limit ~csv:None ~quiet)
         Cloudsim.Experiments.all)
  | id ->
    (match Cloudsim.Experiments.find id with
     | Some preset -> `Ok (run_preset preset ~configs ~seed ~time_limit ~csv ~quiet)
     | None -> `Error (false, Printf.sprintf "unknown experiment %S; try list" id))

let cmd =
  let doc = "Regenerate the paper's evaluation tables and figures" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info
    Term.(
      ret
        (const main $ experiment_arg $ configs_arg $ seed_arg $ time_limit_arg
        $ csv_arg $ quiet_arg $ targets_arg $ items_arg))

let () = exit (Cmd.eval cmd)
