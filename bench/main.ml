(* Benchmark suite (Bechamel): one kernel per paper table/figure, the
   micro-kernels they are built from, and the ablation knobs called out
   in DESIGN.md.

   Experiment kernels use reduced node caps so that a single iteration
   stays in the milliseconds range — Bechamel needs many iterations for
   a stable OLS fit. The full-scale experiments live in
   [bin/experiments.exe]; this executable answers "how fast are the
   pieces", not "what do the figures look like".

   Run with: dune exec bench/main.exe *)

open Bechamel

module G = Cloudsim.Generator
module H = Rentcost.Heuristics
module P = Numeric.Prng
module S = Rentcost.Solver

(* --- fixed workloads, built once --- *)

let illustrating = Rentcost.Problem.illustrating

let params10 = { H.default_params with step = 10 }

let instance_of_preset id =
  let preset = Option.get (Cloudsim.Experiments.find id) in
  G.problem ~rng:(P.create 2016) preset.Cloudsim.Experiments.graphs
    preset.Cloudsim.Experiments.cloud

let small_instance = instance_of_preset "fig3"
let medium_instance = instance_of_preset "fig6"
let large_instance = instance_of_preset "fig7"
let stress_instance = instance_of_preset "fig8"

(* A precomputed measurement list exercising the figure aggregations. *)
let sample_measurements =
  Cloudsim.Runner.sweep ~seed:7 ~configs:4
    { G.num_graphs = 3; min_tasks = 2; max_tasks = 3; mutation_pct = 0.5 }
    { G.num_types = 3; min_cost = 1; max_cost = 20; min_throughput = 5;
      max_throughput = 20 }
    ~targets:[ 10; 20; 30 ]
    ~algorithms:(Cloudsim.Runner.paper_algorithms ())
    ~params:H.default_params

(* Experiment kernels go through the unified [Solver] front door, as
   the drivers do; only the ablation group below reaches into
   [Ilp.solve] for knobs (warm start, cuts) the solver does not
   expose. *)

let solver_nodes ?node_limit spec problem ~target () =
  let budget =
    match node_limit with Some n -> Rentcost.Budget.nodes n
    | None -> Rentcost.Budget.unlimited
  in
  (S.solve ~budget ~spec problem ~target).S.telemetry.S.nodes

let ilp_nodes ?node_limit problem ~target =
  solver_nodes ?node_limit S.Exact_ilp problem ~target

let ilp_ablation_nodes ?warm_start ?cut_rounds problem ~target () =
  (Rentcost.Ilp.solve ?warm_start ?cut_rounds problem ~target).Rentcost.Ilp.nodes

let milp_engine engine problem ~target () =
  let model, integer = Rentcost.Ilp.build problem ~target in
  let j = Rentcost.Problem.num_recipes problem in
  (Milp.Solver.solve ~integral_objective:true ~engine
     ~priority:[ List.init j Fun.id ]
     model ~integer)
    .Milp.Solver.nodes

let heuristic name ?(params = H.default_params) problem ~target () =
  (S.solve ~rng:(P.create 99) ~params ~spec:(S.Heuristic name) problem ~target)
    .S.telemetry.S.evaluations

(* --- Table III: the illustrating example (§ VII) --- *)

let table3 =
  Test.make_grouped ~name:"table3"
    [ Test.make ~name:"ilp_rho70"
        (Staged.stage (ilp_nodes illustrating ~target:70));
      Test.make ~name:"h1_rho70"
        (Staged.stage (heuristic H.H1 ~params:params10 illustrating ~target:70));
      Test.make ~name:"h32jump_rho70"
        (Staged.stage (heuristic H.H32_jump ~params:params10 illustrating ~target:70)) ]

(* --- Figures 3/4/5: small recipes --- *)

let fig3 =
  Test.make_grouped ~name:"fig3"
    [ Test.make ~name:"ilp_capped_rho100"
        (Staged.stage (ilp_nodes ~node_limit:50 small_instance ~target:100));
      Test.make ~name:"lp_relaxation_rho100"
        (Staged.stage (fun () -> Rentcost.Ilp.lp_lower_bound small_instance ~target:100)) ]

(* Figure 4 is the times-found-best aggregation; Figure 5 is the
   per-algorithm timing — benchmarked as each heuristic's kernel. *)
let fig4 =
  Test.make_grouped ~name:"fig4"
    [ Test.make ~name:"best_counts_aggregation"
        (Staged.stage (fun () -> Cloudsim.Stats.best_counts sample_measurements));
      Test.make ~name:"normalized_cost_aggregation"
        (Staged.stage (fun () -> Cloudsim.Stats.normalized_cost sample_measurements)) ]

let fig5 =
  Test.make_grouped ~name:"fig5"
    [ Test.make ~name:"h1_small_rho100"
        (Staged.stage (heuristic H.H1 small_instance ~target:100));
      Test.make ~name:"h2_small_rho100"
        (Staged.stage (heuristic H.H2 small_instance ~target:100));
      Test.make ~name:"h31_small_rho100"
        (Staged.stage (heuristic H.H31 small_instance ~target:100));
      Test.make ~name:"h32_small_rho100"
        (Staged.stage (heuristic H.H32 small_instance ~target:100));
      Test.make ~name:"h32jump_small_rho100"
        (Staged.stage (heuristic H.H32_jump small_instance ~target:100)) ]

(* --- Figure 6: medium recipes --- *)

let fig6 =
  Test.make_grouped ~name:"fig6"
    [ Test.make ~name:"ilp_capped_rho100"
        (Staged.stage (ilp_nodes ~node_limit:50 medium_instance ~target:100));
      Test.make ~name:"h32jump_medium_rho100"
        (Staged.stage (heuristic H.H32_jump medium_instance ~target:100)) ]

(* --- Figure 7: large recipes (50-100 tasks) --- *)

let fig7 =
  Test.make_grouped ~name:"fig7"
    [ Test.make ~name:"h1_large_rho100"
        (Staged.stage (heuristic H.H1 large_instance ~target:100));
      Test.make ~name:"h32jump_large_rho100"
        (Staged.stage (heuristic H.H32_jump large_instance ~target:100));
      Test.make ~name:"cost_oracle_large"
        (Staged.stage (fun () ->
             let rho = Array.make (Rentcost.Problem.num_recipes large_instance) 5 in
             (Rentcost.Allocation.of_rho large_instance ~rho).Rentcost.Allocation.cost)) ]

(* --- Figure 8: the ILP at its limits (Q = 50, 100-200 tasks) --- *)

let fig8 =
  Test.make_grouped ~name:"fig8"
    [ Test.make ~name:"lp_relaxation_stress"
        (Staged.stage (fun () -> Rentcost.Ilp.lp_lower_bound stress_instance ~target:100));
      Test.make ~name:"ilp_25nodes_stress"
        (Staged.stage (ilp_nodes ~node_limit:25 stress_instance ~target:100)) ]

(* --- micro-benchmarks of the substrates --- *)

let micro =
  let big_a = Numeric.Bigint.of_string "123456789123456789123456789123456789" in
  let big_b = Numeric.Bigint.of_string "987654321987654321" in
  let rat_a = Numeric.Rat.of_ints 355 113 and rat_b = Numeric.Rat.of_ints 22 7 in
  let cover_items =
    Array.init 8 (fun i -> { Knapsack.cost = 3 + (7 * i); yield = 5 + (11 * i) })
  in
  let disjoint_problem =
    Rentcost.Problem.create
      (Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ])
      [| Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 0; 1 |];
         Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 2; 3 |] |]
  in
  let sim_alloc =
    Option.get (Rentcost.Ilp.solve illustrating ~target:70).Rentcost.Ilp.allocation
  in
  Test.make_grouped ~name:"micro"
    [ Test.make ~name:"bigint_divmod"
        (Staged.stage (fun () -> Numeric.Bigint.divmod big_a big_b));
      Test.make ~name:"rat_add_small"
        (Staged.stage (fun () -> Numeric.Rat.add rat_a rat_b));
      Test.make ~name:"simplex_illustrating_lp"
        (Staged.stage (fun () ->
             Lp.Simplex.solve (fst (Rentcost.Ilp.build illustrating ~target:70))));
      Test.make ~name:"knapsack_cover_rho1000"
        (Staged.stage (fun () -> Knapsack.min_cost_cover ~items:cover_items ~demand:1000));
      Test.make ~name:"dp_disjoint_rho100"
        (Staged.stage (fun () -> Rentcost.Dp_disjoint.solve disjoint_problem ~target:100));
      Test.make ~name:"streamsim_500_items"
        (Staged.stage (fun () ->
             Streamsim.Sim.run illustrating sim_alloc
               { Streamsim.Sim.default_config with Streamsim.Sim.items = 500 })) ]

(* --- ablations (DESIGN.md: design-choice benches) --- *)

let ablation =
  Test.make_grouped ~name:"ablation"
    [ Test.make ~name:"ilp_warm_start"
        (Staged.stage (ilp_ablation_nodes ~warm_start:true illustrating ~target:130));
      Test.make ~name:"ilp_cold_start"
        (Staged.stage (ilp_ablation_nodes ~warm_start:false illustrating ~target:130));
      Test.make ~name:"ilp_gomory_3rounds"
        (Staged.stage (ilp_ablation_nodes ~cut_rounds:3 illustrating ~target:130));
      Test.make ~name:"gomory_root_strengthen"
        (Staged.stage (fun () ->
             let model, integer = Rentcost.Ilp.build illustrating ~target:70 in
             snd (Lp.Gomory.strengthen ~rounds:2 model ~integer)));
      Test.make ~name:"h32jump_step1_rho70"
        (Staged.stage
           (heuristic H.H32_jump ~params:H.default_params illustrating ~target:70));
      Test.make ~name:"h32jump_step10_rho70"
        (Staged.stage (heuristic H.H32_jump ~params:params10 illustrating ~target:70));
      Test.make ~name:"milp_engine_bounds_rho130"
        (Staged.stage (milp_engine Milp.Solver.Bounds illustrating ~target:130));
      Test.make ~name:"milp_engine_rows_rho130"
        (Staged.stage (milp_engine Milp.Solver.Rows illustrating ~target:130));
      Test.make ~name:"h32_exhaustive_deltas_rho70"
        (Staged.stage
           (heuristic H.H32
              ~params:{ params10 with H.exhaustive_deltas = true }
              illustrating ~target:70)) ]

(* --- the unified Solver front door: Auto routing per § V class --- *)

let solver_group =
  let platform =
    Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ]
  in
  let blackbox_problem =
    Rentcost.Problem.create platform
      (Array.init 4 (fun q ->
           Rentcost.Task_graph.chain ~ntypes:4 ~types:[| q |]))
  in
  let disjoint_problem =
    Rentcost.Problem.create platform
      [| Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 0; 1 |];
         Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 2; 3 |] |]
  in
  Test.make_grouped ~name:"solver"
    [ Test.make ~name:"auto_blackbox_rho100"
        (Staged.stage (solver_nodes S.Auto blackbox_problem ~target:100));
      Test.make ~name:"auto_disjoint_rho100"
        (Staged.stage (solver_nodes S.Auto disjoint_problem ~target:100));
      Test.make ~name:"auto_shared_capped_rho70"
        (Staged.stage (solver_nodes ~node_limit:25 S.Auto illustrating ~target:70));
      Test.make ~name:"budget_fallback_rho70"
        (Staged.stage (fun () ->
             (S.solve ~budget:(Rentcost.Budget.nodes 0) ~spec:S.Exact_ilp
                illustrating ~target:70)
               .S.telemetry.S.evaluations)) ]

let all_tests =
  Test.make_grouped ~name:"rentcost"
    [ table3; fig3; fig4; fig5; fig6; fig7; fig8; micro; ablation; solver_group ]

(* --- driver: run everything, print an aligned time/run table --- *)

let () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] all_tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, ns, r2) :: acc)
      results []
  in
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) rows in
  let human ns =
    if ns >= 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
    else Printf.sprintf "%8.1f ns" ns
  in
  Printf.printf "%-50s %12s %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (name, ns, r2) -> Printf.printf "%-50s %s %8.4f\n" name (human ns) r2)
    rows
