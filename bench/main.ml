(* Benchmark suite (Bechamel): one kernel per paper table/figure, the
   micro-kernels they are built from, and the ablation knobs called out
   in DESIGN.md.

   Experiment kernels use reduced node caps so that a single iteration
   stays in the milliseconds range — Bechamel needs many iterations for
   a stable OLS fit. The full-scale experiments live in
   [bin/experiments.exe]; this executable answers "how fast are the
   pieces", not "what do the figures look like".

   Run with: dune exec bench/main.exe
   Every run also writes BENCH_solver.json — a machine-readable
   per-engine record (wall time, evaluations, pivots, nodes, cost) plus
   the incremental-vs-scratch oracle throughput — and
   BENCH_service.json — the provisioning service's cold-solve vs
   cache-hit latency and the cache statistics of a replayed request
   trace — for tracking across commits without parsing the OLS table.
   BENCH_observability.json records what the Telemetry instrumentation
   costs on the heuristic hot path — including the engine-style
   labelled per-request counter bump — enabled vs kill-switched.
   BENCH_parallel.json records the portfolio race's 1-domain vs
   4-domain wall time on the H32Jump workload. BENCH_scenarios.json
   records the dual (max-throughput) objective checked against an
   independent scan of the min-cost curve, and single-cloud vs 3-book
   multi-cloud cost on the fig7 workload. BENCH_numeric.json records
   the Fix64 fast-kernel speedup over exact Rat on the LP/MILP hot
   path and the exact-fallback rate on the paper and overflow-stress
   workloads. BENCH_autoscale.json records the elastic controller's
   total rental cost against the static-peak and clairvoyant-oracle
   policies on a seeded diurnal trace. BENCH_load.json records the
   serving layer's sustained closed-loop throughput and latency
   percentiles through a pipe daemon under seeded hit-ratio traffic.

   Randomness discipline: every workload and kernel seed derives from
   ONE root seed (RENTCOST_BENCH_SEED, default 2016) split in a fixed
   order below, and every BENCH_*.json records it — so cross-group
   comparisons (and --smoke) are reproducible run-to-run, and a seed
   sweep is one env var away.

   `dune exec bench/main.exe -- --smoke` skips the OLS fits: it runs a
   fast engine-agreement check (every exact engine must report the same
   optimal cost; the incremental oracle must match scratch repricing),
   writes the JSON, and exits non-zero on any disagreement — cheap
   enough for CI. *)

open Bechamel

module G = Cloudsim.Generator
module H = Rentcost.Heuristics
module I = Rentcost.Instance
module P = Numeric.Prng
module S = Rentcost.Solver
module Pf = Rentcost_parallel.Portfolio
module Pl = Rentcost_parallel.Pool

(* --- fixed workloads --- *)

(* One root seed for the whole run. The three sub-seeds are drawn in a
   fixed order, so each consumer (workload generation, heuristic
   kernels, the sweep) gets a stable, independent stream — previously
   each group re-derived its own PRNG from ad-hoc constants, so
   comparisons across groups were not reproducible from one knob. *)
let root_seed =
  match Sys.getenv_opt "RENTCOST_BENCH_SEED" with
  | Some v -> (match int_of_string_opt v with Some n -> n | None -> 2016)
  | None -> 2016

let workload_seed, kernel_seed, sweep_seed, autoscale_seed, load_seed =
  let r = P.create root_seed in
  let sub () = Int64.to_int (P.bits64 r) land 0x3FFFFFFF in
  let workload = sub () in
  let kernel = sub () in
  let sweep = sub () in
  (* Drawn after the original three so adding the autoscale group did
     not shift any pre-existing stream; the load seed follows for the
     same reason. *)
  let autoscale = sub () in
  let load = sub () in
  (workload, kernel, sweep, autoscale, load)

let illustrating = Rentcost.Problem.illustrating

let params10 = { H.default_params with step = 10 }

(* The generated workloads are expensive to build; everything below is
   lazy so that --smoke (and any future kernel filter) pays only for
   what it touches. The compiled instance carries its problem
   ([Instance.problem]), so one lazy cell serves both views. *)

let instance_of_preset id =
  lazy
    (let preset = Option.get (Cloudsim.Experiments.find id) in
     I.compile
       (G.problem ~rng:(P.create workload_seed) preset.Cloudsim.Experiments.graphs
          preset.Cloudsim.Experiments.cloud))

let small_instance = instance_of_preset "fig3"
let medium_instance = instance_of_preset "fig6"
let large_instance = instance_of_preset "fig7"
let stress_instance = instance_of_preset "fig8"
let illustrating_instance = lazy (I.compile illustrating)

let problem_of inst = I.problem (Lazy.force inst)

(* A precomputed measurement list exercising the figure aggregations. *)
let sample_measurements =
  lazy
    (Cloudsim.Runner.sweep ~seed:sweep_seed ~configs:4
       { G.num_graphs = 3; min_tasks = 2; max_tasks = 3; mutation_pct = 0.5 }
       { G.num_types = 3; min_cost = 1; max_cost = 20; min_throughput = 5;
         max_throughput = 20 }
       ~targets:[ 10; 20; 30 ]
       ~algorithms:(Cloudsim.Runner.paper_algorithms ())
       ~params:H.default_params)

(* Experiment kernels go through the unified [Solver] front door over
   pre-compiled instances, as the drivers do; only the ablation group
   below reaches into [Ilp.optimize] for knobs (warm start, cuts) the
   solver does not expose. *)

let min_cost target = Rentcost.Objective.min_cost ~target

let solver_nodes ?node_limit spec inst ~target () =
  let budget =
    match node_limit with Some n -> Rentcost.Budget.nodes n
    | None -> Rentcost.Budget.unlimited
  in
  (S.run ~budget ~spec ~instance:(Lazy.force inst) ~objective:(min_cost target)
     ())
    .S.telemetry.S.nodes

let ilp_nodes ?node_limit inst ~target =
  solver_nodes ?node_limit S.Exact_ilp inst ~target

let ilp_ablation_nodes ?warm_start ?cut_rounds problem ~target () =
  (Rentcost.Ilp.optimize ?warm_start ?cut_rounds ~problem ~target ())
    .Rentcost.Ilp.nodes

let milp_engine engine problem ~target () =
  let model, integer = Rentcost.Ilp.model ~problem ~target () in
  let j = Rentcost.Problem.num_recipes problem in
  (Milp.Solver.solve ~integral_objective:true ~engine
     ~priority:[ List.init j Fun.id ]
     model ~integer)
    .Milp.Solver.nodes

let heuristic name ?(params = H.default_params) inst ~target () =
  (S.run ~rng:(P.create kernel_seed) ~params ~spec:(S.Heuristic name)
     ~instance:(Lazy.force inst) ~objective:(min_cost target) ())
    .S.telemetry.S.evaluations

(* --- Table III: the illustrating example (§ VII) --- *)

let table3 =
  Test.make_grouped ~name:"table3"
    [ Test.make ~name:"ilp_rho70"
        (Staged.stage (ilp_nodes illustrating_instance ~target:70));
      Test.make ~name:"h1_rho70"
        (Staged.stage
           (heuristic H.H1 ~params:params10 illustrating_instance ~target:70));
      Test.make ~name:"h32jump_rho70"
        (Staged.stage
           (heuristic H.H32_jump ~params:params10 illustrating_instance ~target:70)) ]

(* --- Figures 3/4/5: small recipes --- *)

let fig3 =
  Test.make_grouped ~name:"fig3"
    [ Test.make ~name:"ilp_capped_rho100"
        (Staged.stage (ilp_nodes ~node_limit:50 small_instance ~target:100));
      Test.make ~name:"lp_relaxation_rho100"
        (Staged.stage (fun () ->
             Rentcost.Ilp.lp_lower_bound (problem_of small_instance) ~target:100)) ]

(* Figure 4 is the times-found-best aggregation; Figure 5 is the
   per-algorithm timing — benchmarked as each heuristic's kernel. *)
let fig4 =
  Test.make_grouped ~name:"fig4"
    [ Test.make ~name:"best_counts_aggregation"
        (Staged.stage (fun () ->
             Cloudsim.Stats.best_counts (Lazy.force sample_measurements)));
      Test.make ~name:"normalized_cost_aggregation"
        (Staged.stage (fun () ->
             Cloudsim.Stats.normalized_cost (Lazy.force sample_measurements))) ]

let fig5 =
  Test.make_grouped ~name:"fig5"
    [ Test.make ~name:"h1_small_rho100"
        (Staged.stage (heuristic H.H1 small_instance ~target:100));
      Test.make ~name:"h2_small_rho100"
        (Staged.stage (heuristic H.H2 small_instance ~target:100));
      Test.make ~name:"h31_small_rho100"
        (Staged.stage (heuristic H.H31 small_instance ~target:100));
      Test.make ~name:"h32_small_rho100"
        (Staged.stage (heuristic H.H32 small_instance ~target:100));
      Test.make ~name:"h32jump_small_rho100"
        (Staged.stage (heuristic H.H32_jump small_instance ~target:100)) ]

(* --- Figure 6: medium recipes --- *)

let fig6 =
  Test.make_grouped ~name:"fig6"
    [ Test.make ~name:"ilp_capped_rho100"
        (Staged.stage (ilp_nodes ~node_limit:50 medium_instance ~target:100));
      Test.make ~name:"h32jump_medium_rho100"
        (Staged.stage (heuristic H.H32_jump medium_instance ~target:100)) ]

(* --- Figure 7: large recipes (50-100 tasks) --- *)

(* A long-lived oracle at the point the scratch kernel prices, so the
   two kernels below measure the same question — "price a neighbour of
   rho = (5,…,5)" — the way the heuristics now ask it (one delta) vs
   the way they used to (full [Allocation.of_rho]). *)
let large_oracle =
  lazy
    (let inst = Lazy.force large_instance in
     let o = I.Oracle.create inst in
     I.Oracle.reset o ~rho:(Array.make (I.num_recipes inst) 5);
     o)

let fig7 =
  Test.make_grouped ~name:"fig7"
    [ Test.make ~name:"h1_large_rho100"
        (Staged.stage (heuristic H.H1 large_instance ~target:100));
      Test.make ~name:"h32jump_large_rho100"
        (Staged.stage (heuristic H.H32_jump large_instance ~target:100));
      Test.make ~name:"cost_scratch_large"
        (Staged.stage (fun () ->
             let problem = problem_of large_instance in
             let rho = Array.make (Rentcost.Problem.num_recipes problem) 5 in
             (Rentcost.Allocation.of_rho problem ~rho).Rentcost.Allocation.cost));
      Test.make ~name:"cost_oracle_delta_large"
        (Staged.stage (fun () ->
             let o = Lazy.force large_oracle in
             I.Oracle.apply o ~j:0 ~drho:1;
             let c = I.Oracle.cost o in
             I.Oracle.undo o;
             c)) ]

(* --- Figure 8: the ILP at its limits (Q = 50, 100-200 tasks) --- *)

let fig8 =
  Test.make_grouped ~name:"fig8"
    [ Test.make ~name:"lp_relaxation_stress"
        (Staged.stage (fun () ->
             Rentcost.Ilp.lp_lower_bound (problem_of stress_instance) ~target:100));
      Test.make ~name:"ilp_25nodes_stress"
        (Staged.stage (ilp_nodes ~node_limit:25 stress_instance ~target:100)) ]

(* --- micro-benchmarks of the substrates --- *)

let micro =
  let big_a = Numeric.Bigint.of_string "123456789123456789123456789123456789" in
  let big_b = Numeric.Bigint.of_string "987654321987654321" in
  let rat_a = Numeric.Rat.of_ints 355 113 and rat_b = Numeric.Rat.of_ints 22 7 in
  let cover_items =
    Array.init 8 (fun i -> { Knapsack.cost = 3 + (7 * i); yield = 5 + (11 * i) })
  in
  let disjoint_problem =
    Rentcost.Problem.create
      (Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ])
      [| Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 0; 1 |];
         Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 2; 3 |] |]
  in
  let sim_alloc =
    lazy
      (Option.get
         (Rentcost.Ilp.optimize ~problem:illustrating ~target:70 ())
           .Rentcost.Ilp.allocation)
  in
  Test.make_grouped ~name:"micro"
    [ Test.make ~name:"bigint_divmod"
        (Staged.stage (fun () -> Numeric.Bigint.divmod big_a big_b));
      Test.make ~name:"rat_add_small"
        (Staged.stage (fun () -> Numeric.Rat.add rat_a rat_b));
      Test.make ~name:"simplex_illustrating_lp"
        (Staged.stage (fun () ->
             Lp.Simplex.solve
               (fst (Rentcost.Ilp.model ~problem:illustrating ~target:70 ()))));
      Test.make ~name:"instance_compile_illustrating"
        (Staged.stage (fun () -> I.compile illustrating));
      Test.make ~name:"knapsack_cover_rho1000"
        (Staged.stage (fun () -> Knapsack.min_cost_cover ~items:cover_items ~demand:1000));
      Test.make ~name:"dp_disjoint_rho100"
        (Staged.stage (fun () ->
             Rentcost.Dp_disjoint.run ~problem:disjoint_problem ~target:100 ()));
      Test.make ~name:"streamsim_500_items"
        (Staged.stage (fun () ->
             Streamsim.Sim.run illustrating (Lazy.force sim_alloc)
               { Streamsim.Sim.default_config with Streamsim.Sim.items = 500 })) ]

(* --- ablations (DESIGN.md: design-choice benches) --- *)

let ablation =
  Test.make_grouped ~name:"ablation"
    [ Test.make ~name:"ilp_warm_start"
        (Staged.stage (ilp_ablation_nodes ~warm_start:true illustrating ~target:130));
      Test.make ~name:"ilp_cold_start"
        (Staged.stage (ilp_ablation_nodes ~warm_start:false illustrating ~target:130));
      Test.make ~name:"ilp_gomory_3rounds"
        (Staged.stage (ilp_ablation_nodes ~cut_rounds:3 illustrating ~target:130));
      Test.make ~name:"gomory_root_strengthen"
        (Staged.stage (fun () ->
             let model, integer =
               Rentcost.Ilp.model ~problem:illustrating ~target:70 ()
             in
             snd (Lp.Gomory.strengthen ~rounds:2 model ~integer)));
      Test.make ~name:"h32jump_step1_rho70"
        (Staged.stage
           (heuristic H.H32_jump ~params:H.default_params illustrating_instance
              ~target:70));
      Test.make ~name:"h32jump_step10_rho70"
        (Staged.stage
           (heuristic H.H32_jump ~params:params10 illustrating_instance ~target:70));
      Test.make ~name:"milp_engine_bounds_rho130"
        (Staged.stage (milp_engine Milp.Solver.Bounds illustrating ~target:130));
      Test.make ~name:"milp_engine_rows_rho130"
        (Staged.stage (milp_engine Milp.Solver.Rows illustrating ~target:130));
      Test.make ~name:"h32_exhaustive_deltas_rho70"
        (Staged.stage
           (heuristic H.H32
              ~params:{ params10 with H.exhaustive_deltas = true }
              illustrating_instance ~target:70)) ]

(* --- the unified Solver front door: Auto routing per § V class --- *)

let platform4 =
  Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ]

let blackbox_instance =
  lazy
    (I.compile
       (Rentcost.Problem.create platform4
          (Array.init 4 (fun q ->
               Rentcost.Task_graph.chain ~ntypes:4 ~types:[| q |]))))

let disjoint_instance =
  lazy
    (I.compile
       (Rentcost.Problem.create platform4
          [| Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 0; 1 |];
             Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 2; 3 |] |]))

let solver_group =
  Test.make_grouped ~name:"solver"
    [ Test.make ~name:"auto_blackbox_rho100"
        (Staged.stage (solver_nodes S.Auto blackbox_instance ~target:100));
      Test.make ~name:"auto_disjoint_rho100"
        (Staged.stage (solver_nodes S.Auto disjoint_instance ~target:100));
      Test.make ~name:"auto_shared_capped_rho70"
        (Staged.stage
           (solver_nodes ~node_limit:25 S.Auto illustrating_instance ~target:70));
      Test.make ~name:"budget_fallback_rho70"
        (Staged.stage (fun () ->
             (S.run ~budget:(Rentcost.Budget.nodes 0) ~spec:S.Exact_ilp
                ~instance:(Lazy.force illustrating_instance)
                ~objective:(min_cost 70) ())
               .S.telemetry.S.evaluations)) ]

(* --- the provisioning service: cache-hit vs cold-solve latency --- *)

module Svc = Rentcost_service

let service_solve ~reuse ~target =
  Svc.Protocol.Solve
    { id = None; trace_id = None; tenant = None; source = Svc.Protocol.Ref "app";
      objective = Rentcost.Objective.min_cost ~target; pricebook = None;
      spec = S.Auto; budget = None; reuse }

let service_engine_with_app () =
  let e = Svc.Engine.create () in
  ignore (Svc.Engine.register e ~name:"app" illustrating);
  e

let service_answer engine req =
  match Svc.Engine.handle engine req with
  | [ Svc.Protocol.Solved { cost; _ } ] -> cost
  | _ -> failwith "service bench: unexpected response"

(* One engine per kernel: the hit kernel replays a primed entry, the
   cold kernel opts out of reuse so every call runs the ILP. *)
let primed_engine =
  lazy
    (let e = service_engine_with_app () in
     ignore
       (service_answer e (service_solve ~reuse:Svc.Protocol.Monotone ~target:70));
     e)

let cold_engine = lazy (service_engine_with_app ())

let service_group =
  Test.make_grouped ~name:"service"
    [ Test.make ~name:"cache_hit_rho70"
        (Staged.stage (fun () ->
             service_answer (Lazy.force primed_engine)
               (service_solve ~reuse:Svc.Protocol.Monotone ~target:70)));
      Test.make ~name:"cold_solve_rho70"
        (Staged.stage (fun () ->
             service_answer (Lazy.force cold_engine)
               (service_solve ~reuse:Svc.Protocol.No_reuse ~target:70)));
      Test.make ~name:"fingerprint_illustrating"
        (Staged.stage (fun () -> Svc.Fingerprint.of_problem illustrating)) ]

(* --- observability: what the instrumentation itself costs --- *)

let bench_hist =
  lazy (Telemetry.histogram "bench.observe_seconds" ~bounds:[| 0.001; 0.01; 0.1; 1.0 |])

let observability_group =
  let c = Telemetry.counter "bench.bump" in
  let vec = Telemetry.counter_vec "bench.bump_vec" ~labels:[ "tenant"; "rung" ] in
  Test.make_grouped ~name:"observability"
    [ Test.make ~name:"counter_bump" (Staged.stage (fun () -> Telemetry.bump c));
      (* Find-or-create cell lookup + bump: the per-request cost of a
         labelled series, registry mutex included. *)
      Test.make ~name:"counter_vec_bump"
        (Staged.stage (fun () ->
             Telemetry.bump (Telemetry.counter_with vec [ "default"; "cold" ])));
      Test.make ~name:"histogram_observe"
        (Staged.stage (fun () -> Telemetry.observe (Lazy.force bench_hist) 0.05));
      Test.make ~name:"span_enabled"
        (Staged.stage (fun () ->
             Telemetry.Span.with_span "bench.span" (fun () -> 42)));
      (* The kill-switch path, toggle included (the toggle is two ref
         writes; the point is that the span body is a tail call). *)
      Test.make ~name:"span_disabled"
        (Staged.stage (fun () ->
             Telemetry.set_enabled false;
             let r = Telemetry.Span.with_span "bench.span" (fun () -> 42) in
             Telemetry.set_enabled true;
             r));
      Test.make ~name:"h32jump_instrumented_rho70"
        (Staged.stage
           (heuristic H.H32_jump ~params:params10 illustrating_instance ~target:70));
      Test.make ~name:"text_exposition"
        (Staged.stage (fun () -> String.length (Telemetry.text_exposition ()))) ]

(* --- parallel: the domain pool and the portfolio race --- *)

let parallel_group =
  Test.make_grouped ~name:"parallel"
    [ Test.make ~name:"pool_roundtrip_d2"
        (Staged.stage (fun () ->
             Pl.with_pool ~domains:2 (fun pool ->
                 Pl.run_list pool (List.init 8 (fun i () -> i * i)))));
      Test.make ~name:"portfolio_illustrating_d1"
        (Staged.stage (fun () ->
             (Pf.run ~rng:(P.create kernel_seed) ~params:params10 ~domains:1
                ~instance:(Lazy.force illustrating_instance) ~target:70 ())
               .S.telemetry.S.evaluations));
      Test.make ~name:"portfolio_illustrating_d4"
        (Staged.stage (fun () ->
             (Pf.run ~rng:(P.create kernel_seed) ~params:params10 ~domains:4
                ~instance:(Lazy.force illustrating_instance) ~target:70 ())
               .S.telemetry.S.evaluations)) ]

(* --- scenarios: the dual objective and multi-cloud price books --- *)

module Ob = Rentcost.Objective
module Pb = Rentcost.Pricebook
module Sc = Rentcost.Scenario

(* Three books over a platform's own list prices: the platform itself,
   a +25% region whose reserved tier still lands above list, and a
   spot market at 60% of list — the effective price for every type. *)
let multicloud_books platform =
  let q = Rentcost.Platform.num_types platform in
  let prices f =
    Array.init q (fun i -> f (Rentcost.Platform.cost platform i))
  in
  Pb.create
    [ { Pb.book_name = "on-prem"; region = None; prices = prices Fun.id;
        tiers = [] };
      { Pb.book_name = "us-east"; region = Some "us-east-1";
        prices = prices (fun c -> (c * 5 / 4) + 1);
        tiers = [ { Pb.tier_name = "reserved"; percent = 90 } ] };
      { Pb.book_name = "ap-spot"; region = Some "ap-south-1";
        prices = prices Fun.id;
        tiers = [ { Pb.tier_name = "spot"; percent = 60 } ] } ]

(* Three books that all quote exactly the platform vector; compiling
   under this pricebook must be bit-identical to compiling without
   one. *)
let identical_books platform =
  let q = Rentcost.Platform.num_types platform in
  Pb.create
    (List.map
       (fun name ->
         { Pb.book_name = name; region = None;
           prices = Array.init q (Rentcost.Platform.cost platform);
           tiers = [] })
       [ "alpha"; "beta"; "gamma" ])

let illustrating_maxthr_instance =
  lazy (I.compile ~scenario:(Sc.max_throughput ~budget:120 ()) illustrating)

let illustrating_multicloud_instance =
  lazy
    (I.compile
       ~scenario:
         (Sc.min_cost
            ~pricebook:(multicloud_books (Rentcost.Problem.platform illustrating))
            ~target:70 ())
       illustrating)

let scenarios_group =
  Test.make_grouped ~name:"scenarios"
    [ Test.make ~name:"dual_illustrating_b120"
        (Staged.stage (fun () ->
             (S.run ~instance:(Lazy.force illustrating_maxthr_instance)
                ~objective:(Ob.max_throughput ~budget:120) ())
               .S.throughput));
      Test.make ~name:"multicloud_compile_illustrating"
        (Staged.stage (fun () ->
             I.compile
               ~scenario:
                 (Sc.min_cost
                    ~pricebook:
                      (multicloud_books (Rentcost.Problem.platform illustrating))
                    ~target:70 ())
               illustrating));
      Test.make ~name:"multicloud_ilp_rho70"
        (Staged.stage
           (solver_nodes S.Exact_ilp illustrating_multicloud_instance
              ~target:70)) ]

(* --- numeric kernels: Fix64 fast path vs the exact Rat kernel ---

   Both sides solve the SAME prebuilt model (the solvers never mutate
   it; the MILP copies per node), so the split isolates kernel
   arithmetic from model construction. Results are bit-identical by
   the kernel contract — asserted in --smoke and in the differential
   test suite, so these pairs measure speed, not behaviour. *)

let lp_model_illustrating =
  lazy (fst (Rentcost.Ilp.model ~problem:illustrating ~target:70 ()))

(* The fig7 relaxation: 50-100 task recipes, the paper-scale LP. The
   fig6/fig8 workloads are deliberately absent from the timed pairs:
   their relaxations overflow the fast range mid-pivot (the driver
   falls back to Rat there — measured under "fallback" below), so a
   kernel split on them would time an exception, not a solve. *)
let lp_model_large =
  lazy (fst (Rentcost.Ilp.model ~instance:(Lazy.force large_instance) ~target:100 ()))

let milp_model_130 =
  lazy
    (let model, integer = Rentcost.Ilp.model ~problem:illustrating ~target:130 () in
     let j = Rentcost.Problem.num_recipes illustrating in
     (model, integer, [ List.init j Fun.id ]))

let milp_nodes_on (module Search : Milp.Solver.SEARCH) () =
  let model, integer, priority = Lazy.force milp_model_130 in
  (Search.solve ~integral_objective:true ~priority model ~integer)
    .Milp.Solver.nodes

let numeric_group =
  let fa = Numeric.Fix64.of_ints 355 113 and fb = Numeric.Fix64.of_ints 22 7 in
  Test.make_grouped ~name:"numeric"
    [ Test.make ~name:"fix64_add"
        (Staged.stage (fun () -> Numeric.Fix64.add fa fb));
      Test.make ~name:"lp_simplex_rat_rho70"
        (Staged.stage (fun () ->
             Lp.Simplex.Exact.solve (Lazy.force lp_model_illustrating)));
      Test.make ~name:"lp_simplex_fix64_rho70"
        (Staged.stage (fun () ->
             Lp.Simplex.Fast.solve (Lazy.force lp_model_illustrating)));
      Test.make ~name:"lp_simplex_rat_fig7_rho100"
        (Staged.stage (fun () ->
             Lp.Simplex.Exact.solve (Lazy.force lp_model_large)));
      Test.make ~name:"lp_simplex_fix64_fig7_rho100"
        (Staged.stage (fun () ->
             Lp.Simplex.Fast.solve (Lazy.force lp_model_large)));
      Test.make ~name:"milp_search_rat_rho130"
        (Staged.stage (milp_nodes_on (module Milp.Solver.Exact)));
      Test.make ~name:"milp_search_fix64_rho130"
        (Staged.stage (milp_nodes_on (module Milp.Solver.Fast))) ]

(* --- autoscale: traces, controller ticks, policy comparison --- *)

module As = Rentcost_autoscale

(* The pinned bench scenario: a deep diurnal swing (trough 20, crest
   ~80) with mild noise, hours of 12 ticks, and a controller whose
   headroom (15%) covers the noise band (8%) so wiggles inside an hour
   do not force mid-hour re-rents. Under this config the policy
   ordering oracle <= elastic <= static-peak is robust across seeds —
   asserted in --smoke below. *)
let autoscale_trace =
  lazy
    (As.Trace.diurnal ~ticks:96 ~base:20 ~amplitude:60 ~period:48 ~noise:0.08
       ~seed:autoscale_seed ())

let autoscale_config =
  { As.Controller.default_config with
    ticks_per_hour = 12;
    deadband = 0.25;
    headroom = 0.15 }

(* Controllers are stateful; each kernel drives one long-lived
   controller to its steady state (lazily, so --smoke pays nothing):
   the hold kernel repeats a demand inside the deadband, the resolve
   kernel alternates across it so every tick re-solves. *)
let hold_controller =
  lazy
    (let c =
       As.Controller.create_on ~config:autoscale_config
         (Lazy.force illustrating_instance)
     in
     ignore (As.Controller.tick c ~demand:50);
     c)

let resolve_controller =
  lazy
    (As.Controller.create_on ~config:autoscale_config
       (Lazy.force illustrating_instance))

let autoscale_group =
  Test.make_grouped ~name:"autoscale"
    [ Test.make ~name:"trace_diurnal_96"
        (Staged.stage (fun () ->
             As.Trace.total_demand
               (As.Trace.diurnal ~ticks:96 ~base:20 ~amplitude:60 ~period:48
                  ~noise:0.08 ~seed:autoscale_seed ())));
      Test.make ~name:"controller_hold_tick"
        (Staged.stage (fun () ->
             As.Controller.tick (Lazy.force hold_controller) ~demand:50));
      Test.make ~name:"controller_resolve_tick"
        (let flip = ref false in
         Staged.stage (fun () ->
             flip := not !flip;
             As.Controller.tick
               (Lazy.force resolve_controller)
               ~demand:(if !flip then 80 else 20))) ]

(* --- load: the per-request costs the serving path stacks up ---

   Three kernels, one per layer a request crosses under load: the
   daemon's per-line protocol parse, the admission queue's offer/take
   round trip, and the full queued path through the engine (submit
   into the backlog, drain, answer from the warm cache). The
   end-to-end pipe-daemon throughput number lives in BENCH_load.json
   below — bechamel measures the per-layer costs that compose it. *)

let load_solve_line =
  Svc.Json.to_string
    (Svc.Protocol.request_to_json
       (service_solve ~reuse:Svc.Protocol.Monotone ~target:70))

let load_admission_queue = lazy (Svc.Admission.create ~capacity:4 ())

let load_group =
  Test.make_grouped ~name:"load"
    [ Test.make ~name:"protocol_parse_solve"
        (Staged.stage (fun () ->
             match Svc.Json.of_string load_solve_line with
             | Ok j -> Svc.Protocol.request_of_json j
             | Error e -> Error e));
      Test.make ~name:"admission_offer_take"
        (Staged.stage (fun () ->
             let q = Lazy.force load_admission_queue in
             ignore (Svc.Admission.offer q ~now:0.0 1);
             Svc.Admission.take q ~now:0.0));
      Test.make ~name:"queued_hit_round_trip"
        (Staged.stage (fun () ->
             let e = Lazy.force primed_engine in
             match
               Svc.Engine.submit e
                 (service_solve ~reuse:Svc.Protocol.Monotone ~target:70)
             with
             | [] -> Svc.Engine.drain e
             | rs -> rs)) ]

let all_tests =
  Test.make_grouped ~name:"rentcost"
    [ table3; fig3; fig4; fig5; fig6; fig7; fig8; micro; ablation; solver_group;
      service_group; observability_group; parallel_group; scenarios_group;
      numeric_group; autoscale_group; load_group ]

(* --- BENCH_solver.json: machine-readable per-engine record --- *)

type engine_row = {
  row_name : string;
  row_cost : int;
  row_status : S.status;
  row_telemetry : S.telemetry;
}

let solve_row name spec inst ~target =
  let o =
    S.run ~rng:(P.create kernel_seed) ~params:params10 ~spec
      ~instance:(Lazy.force inst) ~objective:(min_cost target) ()
  in
  let cost =
    match o.S.allocation with
    | Some a -> a.Rentcost.Allocation.cost
    | None -> -1
  in
  { row_name = name; row_cost = cost; row_status = o.S.status;
    row_telemetry = o.S.telemetry }

let engine_rows () =
  [ solve_row "ilp_illustrating_rho70" S.Exact_ilp illustrating_instance
      ~target:70;
    solve_row "exhaustive_illustrating_rho70" S.Exhaustive illustrating_instance
      ~target:70;
    solve_row "auto_illustrating_rho70" S.Auto illustrating_instance ~target:70;
    solve_row "dp_blackbox_rho100" S.Auto blackbox_instance ~target:100;
    solve_row "dp_disjoint_rho100" S.Auto disjoint_instance ~target:100 ]
  @ List.map
      (fun name ->
        solve_row
          (Printf.sprintf "%s_illustrating_rho70"
             (String.lowercase_ascii (H.name_to_string name)))
          (S.Heuristic name) illustrating_instance ~target:70)
      [ H.H0; H.H1; H.H2; H.H31; H.H32; H.H32_jump ]

(* Incremental-vs-scratch oracle throughput on the large workload: the
   headline number for the compiled-instance layer. Both sides price
   the same neighbour moves of rho = (5,…,5). *)
let oracle_throughput ~evals =
  let inst = Lazy.force large_instance in
  let problem = I.problem inst in
  let j_compact = I.num_recipes inst in
  let j_orig = Rentcost.Problem.num_recipes problem in
  let o = I.Oracle.create inst in
  I.Oracle.reset o ~rho:(Array.make j_compact 5);
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for i = 0 to evals - 1 do
    I.Oracle.apply o ~j:(i mod j_compact) ~drho:1;
    acc := !acc + I.Oracle.cost o;
    I.Oracle.undo o
  done;
  let dt_inc = Unix.gettimeofday () -. t0 in
  let scratch_evals = max 1 (evals / 50) in
  let t0 = Unix.gettimeofday () in
  let rho = Array.make j_orig 5 in
  for i = 0 to scratch_evals - 1 do
    let j = i mod j_orig in
    rho.(j) <- 6;
    acc := !acc + (Rentcost.Allocation.of_rho problem ~rho).Rentcost.Allocation.cost;
    rho.(j) <- 5
  done;
  let dt_scratch = Unix.gettimeofday () -. t0 in
  ignore !acc;
  let inc_rate = float_of_int evals /. Float.max dt_inc 1e-9 in
  let scratch_rate = float_of_int scratch_evals /. Float.max dt_scratch 1e-9 in
  (inc_rate, scratch_rate)

let json_escape s =
  (* Row names are ASCII identifiers; quote/backslash escaping is all a
     well-formed file needs. *)
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_solver_json ~path ~rows ~inc_rate ~scratch_rate =
  let oc = open_out path in
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"engine\": \"%s\", \"status\": \"%s\", \
       \"cost\": %d, \"wall_time\": %.6f, \"evaluations\": %d, \
       \"pivots\": %d, \"nodes\": %d, \"pruned_recipes\": %d}"
      (json_escape r.row_name)
      (json_escape (S.spec_to_string r.row_telemetry.S.engine))
      (json_escape (S.status_to_string r.row_status))
      r.row_cost r.row_telemetry.S.wall_time r.row_telemetry.S.evaluations
      r.row_telemetry.S.pivots r.row_telemetry.S.nodes
      r.row_telemetry.S.pruned_recipes
  in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-solver/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc "  \"engines\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map row_json rows));
  Printf.fprintf oc
    "  \"oracle\": {\"incremental_evals_per_sec\": %.1f, \
     \"scratch_evals_per_sec\": %.1f, \"speedup\": %.2f}\n"
    inc_rate scratch_rate
    (inc_rate /. Float.max scratch_rate 1e-9);
  Printf.fprintf oc "}\n";
  close_out oc

let emit_solver_json ~evals =
  let rows = engine_rows () in
  let inc_rate, scratch_rate = oracle_throughput ~evals in
  write_solver_json ~path:"BENCH_solver.json" ~rows ~inc_rate ~scratch_rate;
  Printf.printf
    "BENCH_solver.json written (%d engines; oracle %.0f incremental vs %.0f \
     scratch evals/s, %.1fx)\n"
    (List.length rows) inc_rate scratch_rate
    (inc_rate /. Float.max scratch_rate 1e-9);
  rows

(* --- BENCH_service.json: cold vs warm-hit latency + a replayed
   request trace through the provisioning engine --- *)

let service_latency ~iters =
  let cold_e = service_engine_with_app () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore
      (service_answer cold_e (service_solve ~reuse:Svc.Protocol.No_reuse ~target:70))
  done;
  let cold = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  let hit_e = service_engine_with_app () in
  ignore
    (service_answer hit_e (service_solve ~reuse:Svc.Protocol.Monotone ~target:70));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore
      (service_answer hit_e (service_solve ~reuse:Svc.Protocol.Monotone ~target:70))
  done;
  let warm = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  (cold, warm)

type service_trace = {
  tr_requests : int;
  tr_hits : int;
  tr_misses : int;
  tr_monotone : int;
  tr_warm : int;
}

(* A representative session: a cold target sweep, the same sweep
   replayed (exact hits), lower targets (monotone hits), and
   warm-policy solves between cached targets (warm-started solves).
   Counters are global and monotone, so the trace reads deltas. *)
let service_trace () =
  let snap () =
    ( Telemetry.value Telemetry.service_requests,
      Telemetry.value Telemetry.service_cache_hits,
      Telemetry.value Telemetry.service_cache_misses,
      Telemetry.value Telemetry.service_monotone_hits,
      Telemetry.value Telemetry.service_warm_starts )
  in
  let r0, h0, m0, o0, w0 = snap () in
  let e = service_engine_with_app () in
  let solve ~reuse target =
    ignore (service_answer e (service_solve ~reuse ~target))
  in
  let targets = [ 50; 60; 70; 80; 90; 100 ] in
  List.iter (solve ~reuse:Svc.Protocol.Monotone) targets;
  List.iter (solve ~reuse:Svc.Protocol.Monotone) targets;
  List.iter (solve ~reuse:Svc.Protocol.Monotone) [ 45; 55; 65 ];
  List.iter (solve ~reuse:Svc.Protocol.Warm) [ 95; 85 ];
  let r1, h1, m1, o1, w1 = snap () in
  { tr_requests = r1 - r0; tr_hits = h1 - h0; tr_misses = m1 - m0;
    tr_monotone = o1 - o0; tr_warm = w1 - w0 }

let write_service_json ~path ~cold ~warm ~trace =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-service/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc
    "  \"latency\": {\"cold_us\": %.3f, \"warm_hit_us\": %.3f, \
     \"speedup\": %.2f},\n"
    (cold *. 1e6) (warm *. 1e6)
    (cold /. Float.max warm 1e-9);
  Printf.fprintf oc
    "  \"trace\": {\"requests\": %d, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"monotone_hits\": %d, \"warm_starts\": %d}\n"
    trace.tr_requests trace.tr_hits trace.tr_misses trace.tr_monotone
    trace.tr_warm;
  Printf.fprintf oc "}\n";
  close_out oc

let emit_service_json ~iters =
  let cold, warm = service_latency ~iters in
  let trace = service_trace () in
  write_service_json ~path:"BENCH_service.json" ~cold ~warm ~trace;
  Printf.printf
    "BENCH_service.json written (cold %.1f us vs warm hit %.1f us, %.0fx; \
     trace: %d requests, %d hits, %d warm starts)\n"
    (cold *. 1e6) (warm *. 1e6)
    (cold /. Float.max warm 1e-9)
    trace.tr_requests trace.tr_hits trace.tr_warm;
  (cold, warm, trace)

(* --- BENCH_observability.json: instrumentation overhead on the
   heuristic hot path --- *)

(* Best-of-[reps] alternating enabled/disabled timings of the same
   H32Jump solve. Alternation plus best-of defends against frequency
   drift and one-off scheduler hiccups: the minimum of each side is
   the honest "how fast can this go" comparison. *)
let bench_requests_vec =
  Telemetry.counter_vec "bench.requests" ~labels:[ "tenant"; "rung" ]

let observability_overhead ~reps =
  let inst = Lazy.force illustrating_instance in
  let run () =
    ignore
      ((S.run ~rng:(P.create kernel_seed) ~params:params10
          ~spec:(S.Heuristic H.H32_jump) ~instance:inst
          ~objective:(min_cost 70) ())
         .S.telemetry.S.evaluations);
    (* The labelled path, exactly as the service engine bumps it per
       request: cell lookup guarded by the kill switch, so the
       disabled side measures the hot path with zero instrumentation
       and the enabled side carries the per-request label cost too. *)
    if Telemetry.enabled () then
      Telemetry.bump
        (Telemetry.counter_with bench_requests_vec [ "default"; "cold" ])
  in
  let inner = 20 in
  let time_one enabled =
    Telemetry.set_enabled enabled;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do run () done;
    Unix.gettimeofday () -. t0
  in
  run ();
  (* warm-up: faults, caches, lazy cells *)
  let best_on = ref infinity and best_off = ref infinity in
  for _ = 1 to reps do
    best_off := Float.min !best_off (time_one false);
    best_on := Float.min !best_on (time_one true)
  done;
  Telemetry.set_enabled true;
  (!best_on /. float_of_int inner, !best_off /. float_of_int inner)

let write_observability_json ~path ~on ~off =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-observability/2\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc
    "  \"hot_path\": {\"kernel\": \"h32jump_labelled_rho70\", \
     \"enabled_us\": %.3f, \"disabled_us\": %.3f, \"overhead_pct\": %.2f}\n"
    (on *. 1e6) (off *. 1e6)
    (100.0 *. ((on /. Float.max off 1e-9) -. 1.0));
  Printf.fprintf oc "}\n";
  close_out oc

let emit_observability_json ~reps =
  let on, off = observability_overhead ~reps in
  write_observability_json ~path:"BENCH_observability.json" ~on ~off;
  Printf.printf
    "BENCH_observability.json written (hot path %.1f us enabled vs %.1f us \
     disabled, %+.1f%%)\n"
    (on *. 1e6) (off *. 1e6)
    (100.0 *. ((on /. Float.max off 1e-9) -. 1.0));
  (on, off)

(* --- BENCH_parallel.json: the portfolio race, 1 domain vs 4 ---

   The workload is four independently seeded H32Jump restarts on the
   fig7 instance — near-equal-length tasks, so on >= 4 cores the
   4-domain race should approach 4x and must clear 1.5x (asserted in
   --smoke, gated on the core count: the JSON records [cores] so a
   1-core box still emits an honest file). Best-of-reps wall time on
   both sides kills scheduler noise. *)

let portfolio_wall ~domains ~reps =
  let strategies = List.init 4 (fun _ -> Pf.Heuristic H.H32_jump) in
  (* Enough perturbation rounds that each strategy runs for tens of
     milliseconds — domain spawn (~hundreds of microseconds) must be
     noise next to the work, or the speedup number measures the
     runtime, not the race. *)
  let params = { H.default_params with H.jumps = 4_000 } in
  let inst = Lazy.force large_instance in
  let best = ref infinity in
  let cost = ref (-1) in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let o =
      Pf.run ~rng:(P.create kernel_seed) ~params ~strategies ~domains
        ~instance:inst ~target:100 ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    cost :=
      (match o.S.allocation with
       | Some a -> a.Rentcost.Allocation.cost
       | None -> -1)
  done;
  (!best, !cost)

let write_parallel_json ~path ~cores ~wall1 ~wall4 ~cost1 ~cost4 =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-parallel/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc "  \"cores\": %d,\n" cores;
  Printf.fprintf oc
    "  \"workload\": \"4x h32jump portfolio, fig7, target 100\",\n";
  Printf.fprintf oc "  \"wall_seconds_domains1\": %.6f,\n" wall1;
  Printf.fprintf oc "  \"wall_seconds_domains4\": %.6f,\n" wall4;
  Printf.fprintf oc "  \"speedup\": %.3f,\n"
    (wall1 /. Float.max wall4 1e-9);
  Printf.fprintf oc "  \"cost_domains1\": %d,\n  \"cost_domains4\": %d\n"
    cost1 cost4;
  Printf.fprintf oc "}\n";
  close_out oc

let emit_parallel_json ~reps =
  let cores = Domain.recommended_domain_count () in
  let wall1, cost1 = portfolio_wall ~domains:1 ~reps in
  let wall4, cost4 = portfolio_wall ~domains:4 ~reps in
  write_parallel_json ~path:"BENCH_parallel.json" ~cores ~wall1 ~wall4 ~cost1
    ~cost4;
  Printf.printf
    "BENCH_parallel.json written (%d core(s): %.1f ms on 1 domain vs %.1f ms \
     on 4, speedup %.2fx)\n"
    cores (wall1 *. 1e3) (wall4 *. 1e3)
    (wall1 /. Float.max wall4 1e-9);
  (cores, wall1, wall4, cost1, cost4)

(* --- BENCH_scenarios.json: the dual objective checked against an
   independent scan of the cost curve, and single-cloud vs 3-book
   multi-cloud cost on the fig7 workload --- *)

(* Largest t with optimal min-cost c(t) <= budget, by linear scan up
   the monotone curve — the independent oracle the binary-search dual
   is asserted against. *)
let exact_dual_scan inst ~budget =
  let cost_at t =
    match (S.run ~instance:inst ~objective:(min_cost t) ()).S.allocation with
    | Some a -> a.Rentcost.Allocation.cost
    | None -> max_int
  in
  let rec go t = if cost_at (t + 1) <= budget then go (t + 1) else t in
  go 0

type scenarios_row = {
  sc_budget : int;
  sc_throughput : int;
  sc_exact_dual : int;
  sc_dual_cost : int;
  sc_recheck_cost : int;
  sc_cost_single : int;
  sc_cost_multibook : int;
  sc_bit_identical : bool;
}

let scenarios_data () =
  (* The dual objective on the § VII illustrating instance. *)
  let budget = 120 in
  let dual =
    S.run ~instance:(Lazy.force illustrating_maxthr_instance)
      ~objective:(Ob.max_throughput ~budget) ()
  in
  let cost_of o =
    match o.S.allocation with
    | Some a -> a.Rentcost.Allocation.cost
    | None -> -1
  in
  let exact = exact_dual_scan (Lazy.force illustrating_instance) ~budget in
  let recheck =
    S.run ~instance:(Lazy.force illustrating_instance)
      ~objective:(min_cost dual.S.throughput) ()
  in
  (* Single-cloud vs 3-book multi-cloud on the fig7 workload. *)
  let problem = problem_of large_instance in
  let platform = Rentcost.Problem.platform problem in
  let h32 inst =
    S.run ~rng:(P.create kernel_seed) ~params:params10
      ~spec:(S.Heuristic H.H32_jump) ~instance:inst ~objective:(min_cost 100)
      ()
  in
  let single = h32 (Lazy.force large_instance) in
  let multibook =
    h32
      (I.compile
         ~scenario:
           (Sc.min_cost ~pricebook:(multicloud_books platform) ~target:100 ())
         problem)
  in
  let identical_inst =
    I.compile
      ~scenario:
        (Sc.min_cost ~pricebook:(identical_books platform) ~target:100 ())
      problem
  in
  let alloc_of o =
    Option.map
      (fun a ->
        ( a.Rentcost.Allocation.rho, a.Rentcost.Allocation.machines,
          a.Rentcost.Allocation.cost ))
      o.S.allocation
  in
  let bit_identical =
    I.canonical_encoding identical_inst
    = I.canonical_encoding (Lazy.force large_instance)
    && alloc_of (h32 identical_inst) = alloc_of single
  in
  { sc_budget = budget; sc_throughput = dual.S.throughput;
    sc_exact_dual = exact; sc_dual_cost = cost_of dual;
    sc_recheck_cost = cost_of recheck; sc_cost_single = cost_of single;
    sc_cost_multibook = cost_of multibook; sc_bit_identical = bit_identical }

let write_scenarios_json ~path r =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-scenarios/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc
    "  \"dual\": {\"budget\": %d, \"throughput\": %d, \"exact_dual\": %d, \
     \"cost\": %d, \"min_cost_at_achieved\": %d},\n"
    r.sc_budget r.sc_throughput r.sc_exact_dual r.sc_dual_cost
    r.sc_recheck_cost;
  Printf.fprintf oc
    "  \"multicloud\": {\"workload\": \"fig7 h32jump rho100\", \"books\": 3, \
     \"cost_single\": %d, \"cost_multibook\": %d, \"saving_pct\": %.1f, \
     \"identical_books_bit_identical\": %b}\n"
    r.sc_cost_single r.sc_cost_multibook
    (100.
    *. (1.
       -. (float_of_int r.sc_cost_multibook
          /. Float.max (float_of_int r.sc_cost_single) 1.)))
    r.sc_bit_identical;
  Printf.fprintf oc "}\n";
  close_out oc

let emit_scenarios_json () =
  let r = scenarios_data () in
  write_scenarios_json ~path:"BENCH_scenarios.json" r;
  Printf.printf
    "BENCH_scenarios.json written (dual: throughput %d at budget %d, exact \
     %d; multicloud: cost %d vs %d single-cloud)\n"
    r.sc_throughput r.sc_budget r.sc_exact_dual r.sc_cost_multibook
    r.sc_cost_single;
  r

(* --- BENCH_numeric.json: fast-path speedup and fallback rate --- *)

(* Best-of-[reps] over [inner]-call batches, per-call seconds. Same
   best-of discipline as the observability split: the minimum is the
   honest "how fast can this go" number. *)
let best_of_seconds ~reps ~inner f =
  ignore (Sys.opaque_identity (f ()));
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best /. float_of_int inner

let lp_result_identical a b =
  match (a, b) with
  | Lp.Simplex.Optimal x, Lp.Simplex.Optimal y ->
    Numeric.Rat.equal x.Lp.Simplex.objective y.Lp.Simplex.objective
    && Array.for_all2 Numeric.Rat.equal x.Lp.Simplex.values y.Lp.Simplex.values
  | Lp.Simplex.Infeasible, Lp.Simplex.Infeasible
  | Lp.Simplex.Unbounded, Lp.Simplex.Unbounded -> true
  | _ -> false

type kernel_split = {
  ks_label : string;
  ks_rat_us : float;
  ks_fast_us : float;
  ks_identical : bool;
}

let ks_speedup k = k.ks_rat_us /. Float.max k.ks_fast_us 1e-9

let lp_split ~reps ~inner label model =
  let m = Lazy.force model in
  { ks_label = label;
    ks_rat_us = 1e6 *. best_of_seconds ~reps ~inner (fun () -> Lp.Simplex.Exact.solve m);
    ks_fast_us = 1e6 *. best_of_seconds ~reps ~inner (fun () -> Lp.Simplex.Fast.solve m);
    ks_identical = lp_result_identical (Lp.Simplex.Fast.solve m) (Lp.Simplex.Exact.solve m) }

let milp_split ~reps ?engine label =
  let outcome (module Search : Milp.Solver.SEARCH) =
    let model, integer, priority = Lazy.force milp_model_130 in
    Search.solve ?engine ~integral_objective:true ~priority model ~integer
  in
  let a = outcome (module Milp.Solver.Fast)
  and b = outcome (module Milp.Solver.Exact) in
  let identical =
    a.Milp.Solver.status = b.Milp.Solver.status
    && a.Milp.Solver.nodes = b.Milp.Solver.nodes
    && (match (a.Milp.Solver.solution, b.Milp.Solver.solution) with
       | Some x, Some y ->
         Numeric.Rat.equal x.Milp.Solver.objective y.Milp.Solver.objective
         && Array.for_all2 Numeric.Rat.equal x.Milp.Solver.values
              y.Milp.Solver.values
       | None, None -> true
       | _ -> false)
  in
  { ks_label = label;
    ks_rat_us =
      1e6
      *. best_of_seconds ~reps ~inner:1 (fun () ->
             outcome (module Milp.Solver.Exact));
    ks_fast_us =
      1e6
      *. best_of_seconds ~reps ~inner:1 (fun () ->
             outcome (module Milp.Solver.Fast));
    ks_identical = identical }

type fallback_stats = { fb_solves : int; fb_fallbacks : int }

(* Solves under [f] through the Fix64-first driver, read as counter
   deltas: every driver round trips exactly one of the two counters. *)
let count_fallbacks f =
  let fast0 = Telemetry.value Telemetry.numeric_fast_solves in
  let fb0 = Telemetry.value Telemetry.numeric_fallbacks in
  f ();
  let fast = Telemetry.value Telemetry.numeric_fast_solves - fast0 in
  let fb = Telemetry.value Telemetry.numeric_fallbacks - fb0 in
  { fb_solves = fast + fb; fb_fallbacks = fb }

(* The default paper-scale workload: the § VII illustrating solves and
   the capped figure kernels the bench groups run, all well inside the
   fast range. The acceptance bar is zero fallbacks here. *)
let paper_workload () =
  List.iter
    (fun target -> ignore (Rentcost.Ilp.optimize ~problem:illustrating ~target ()))
    [ 70; 130 ];
  ignore (Rentcost.Ilp.lp_lower_bound (problem_of small_instance) ~target:100);
  ignore (Rentcost.Ilp.lp_lower_bound (problem_of large_instance) ~target:100)

(* Costs near max_int sit far outside the Fix64 range, so every solve
   must overflow the fast attempt and restart on Rat. *)
let overflow_problem =
  let huge = max_int / 1024 in
  let chain types = Rentcost.Task_graph.chain ~ntypes:2 ~types in
  Rentcost.Problem.create
    (Rentcost.Platform.of_list [ (10, huge); (25, 2 * huge) ])
    [| chain [| 0 |]; chain [| 0; 1 |] |]

let stress_workload () =
  List.iter
    (fun target ->
      ignore (Rentcost.Ilp.optimize ~problem:overflow_problem ~target ()))
    [ 10; 20; 30 ]

let write_numeric_json ~path ~splits ~paper ~stress =
  let oc = open_out path in
  let split_json k =
    Printf.sprintf
      "    {\"name\": \"%s\", \"rat_us\": %.3f, \"fast_us\": %.3f, \
       \"speedup\": %.2f, \"identical\": %b}"
      (json_escape k.ks_label) k.ks_rat_us k.ks_fast_us (ks_speedup k)
      k.ks_identical
  in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-numeric/2\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc
    "  \"kernels\": {\"fast_rows\": \"ff64\", \"fast_bounds\": \"%s\", \
     \"exact\": \"%s\"},\n"
    Numeric.Fix64.name Numeric.Kernel.Exact.name;
  Printf.fprintf oc "  \"timings\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map split_json splits));
  Printf.fprintf oc
    "  \"fallback\": {\"paper_solves\": %d, \"paper_fallbacks\": %d, \
     \"stress_solves\": %d, \"stress_fallbacks\": %d, \
     \"stress_fallback_rate\": %.3f}\n"
    paper.fb_solves paper.fb_fallbacks stress.fb_solves stress.fb_fallbacks
    (float_of_int stress.fb_fallbacks
    /. Float.max (float_of_int stress.fb_solves) 1.);
  Printf.fprintf oc "}\n";
  close_out oc

let emit_numeric_json ~reps =
  let splits =
    [ lp_split ~reps ~inner:20 "lp_simplex_illustrating_rho70"
        lp_model_illustrating;
      lp_split ~reps ~inner:2 "lp_simplex_fig7_rho100" lp_model_large;
      (* The default Bounds node engine (Fix64 kernel) and the Rows
         engine (fraction-free simplex at every node) — the Rows split
         compares the same algorithm across kernels, so it is the
         honest milp.search speedup measurement. *)
      milp_split ~reps "milp_search_illustrating_rho130";
      milp_split ~reps ~engine:Milp.Solver.Rows
        "milp_search_rows_illustrating_rho130" ]
  in
  let paper = count_fallbacks paper_workload in
  let stress = count_fallbacks stress_workload in
  write_numeric_json ~path:"BENCH_numeric.json" ~splits ~paper ~stress;
  let lp = List.nth splits 0 in
  Printf.printf
    "BENCH_numeric.json written (lp.simplex %.1f us rat vs %.1f us fast, \
     %.1fx; paper workload %d solves / %d fallbacks, stress %d / %d)\n"
    lp.ks_rat_us lp.ks_fast_us (ks_speedup lp) paper.fb_solves
    paper.fb_fallbacks stress.fb_solves stress.fb_fallbacks;
  (splits, paper, stress)

(* --- BENCH_autoscale.json: elastic vs static-peak vs oracle --- *)

let autoscale_data () =
  As.Policy.compare_policies ~config:autoscale_config illustrating
    (Lazy.force autoscale_trace)

let write_autoscale_json ~path (c : As.Policy.comparison) =
  let outcome_json (o : As.Policy.outcome) =
    Printf.sprintf
      "    {\"policy\": \"%s\", \"total_cost\": %d, \"violations\": %d, \
       \"replans\": %d}"
      (json_escape o.As.Policy.policy)
      o.As.Policy.total_cost o.As.Policy.violations o.As.Policy.replans
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-autoscale/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc
    "  \"trace\": {\"pattern\": \"diurnal\", \"ticks\": 96, \"base\": 20, \
     \"amplitude\": 60, \"period\": 48, \"noise\": 0.08},\n";
  Printf.fprintf oc
    "  \"controller\": {\"ticks_per_hour\": %d, \"deadband\": %.2f, \
     \"headroom\": %.2f},\n"
    autoscale_config.As.Controller.ticks_per_hour
    autoscale_config.As.Controller.deadband
    autoscale_config.As.Controller.headroom;
  Printf.fprintf oc "  \"policies\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map outcome_json
          [ c.As.Policy.elastic; c.As.Policy.static_peak; c.As.Policy.oracle ]));
  Printf.fprintf oc
    "  \"savings\": {\"elastic_vs_static_pct\": %.1f, \
     \"oracle_vs_elastic_pct\": %.1f}\n"
    (100. *. As.Policy.savings ~of_:c.As.Policy.elastic ~over:c.As.Policy.static_peak)
    (100. *. As.Policy.savings ~of_:c.As.Policy.oracle ~over:c.As.Policy.elastic);
  Printf.fprintf oc "}\n";
  close_out oc

let emit_autoscale_json () =
  let c = autoscale_data () in
  write_autoscale_json ~path:"BENCH_autoscale.json" c;
  Printf.printf
    "BENCH_autoscale.json written (elastic %d vs static-peak %d vs oracle %d \
     on the diurnal trace)\n"
    c.As.Policy.elastic.As.Policy.total_cost
    c.As.Policy.static_peak.As.Policy.total_cost
    c.As.Policy.oracle.As.Policy.total_cost;
  c

(* --- BENCH_load.json: sustained throughput through the pipe daemon ---

   A closed-loop load generator: [clients] domains each keep exactly
   one request in flight against a daemon served over a pipe pair by
   [workers] worker domains — so the offered concurrency is [clients],
   never more, and the measured rate is a sustained number rather
   than a burst into the queue. Traffic is seeded: each request
   repeats a hot target with probability [hit_ratio] (warm cache hits
   after first touch) and otherwise draws a fresh target (a cold
   solve, possibly upgraded to a monotone hit by a higher entry).
   Request ids encode (client, sequence) so one reader domain can
   fan acks back to the right client; percentiles come from the
   [service.latency_seconds] histogram's before/after bucket deltas,
   which sees every request the daemon served. *)

let load_stride = 1_000_000

type load_stats = {
  ld_requests : int;
  ld_clients : int;
  ld_workers : int;
  ld_hit_ratio : float;
  ld_hit_measured : float;
  ld_wall : float;
  ld_rps : float;
  ld_p50_ms : float;
  ld_p99_ms : float;
  ld_cold : int;
  ld_hits : int;
  ld_coalesced : int;
}

let latency_histogram () =
  match
    List.find_opt
      (fun h -> h.Telemetry.h_name = Telemetry.service_latency_seconds)
      (Telemetry.histograms ())
  with
  | Some h -> h
  | None -> failwith "load bench: service.latency_seconds not registered"

(* Quantile [q] from per-bucket counts by linear interpolation inside
   the bucket the rank lands in; the first bucket interpolates from 0
   and the overflow bucket reports the last bound — a floor, not an
   estimate, so a pathological tail can only look better than it is
   in a file that also records the raw wall time. *)
let bucket_quantile ~bounds ~counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else
    let rank = q *. float_of_int total in
    let n = Array.length bounds in
    let rec go i acc =
      if i >= Array.length counts then bounds.(n - 1)
      else
        let acc' = acc + counts.(i) in
        if float_of_int acc' >= rank && counts.(i) > 0 then
          if i >= n then bounds.(n - 1)
          else
            let lo = if i = 0 then 0. else bounds.(i - 1) in
            bounds.(i)
            -. ((bounds.(i) -. lo)
               *. (float_of_int acc' -. rank)
               /. float_of_int counts.(i))
        else go (i + 1) acc'
    in
    go 0 0

let run_load ~seed ~requests ~clients ~workers ~hit_ratio =
  let per_client = max 1 (requests / clients) in
  let requests = per_client * clients in
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  let daemon_ic = Unix.in_channel_of_descr req_read in
  let daemon_oc = Unix.out_channel_of_descr resp_write in
  let client_ic = Unix.in_channel_of_descr resp_read in
  let client_oc = Unix.out_channel_of_descr req_write in
  let dump = open_out Filename.null in
  let config =
    { Svc.Engine.default_config with
      Svc.Engine.workers;
      queue_capacity = max 64 (4 * clients) }
  in
  let daemon =
    Domain.spawn (fun () ->
        Svc.Daemon.serve_channels ~config ~dump ~workers daemon_ic daemon_oc)
  in
  let om = Mutex.create () in
  let send request =
    Mutex.lock om;
    output_string client_oc
      (Svc.Json.to_string (Svc.Protocol.request_to_json request));
    output_char client_oc '\n';
    flush client_oc;
    Mutex.unlock om
  in
  (* Register synchronously before any traffic, so every solve
     resolves its [Ref]. *)
  send (Svc.Protocol.Register { name = "app"; problem = illustrating });
  let (_ : string) = input_line client_ic in
  let acks = Array.init clients (fun _ -> Atomic.make 0) in
  (* The reader acks exactly [requests] id-bearing responses back to
     their clients, then exits; Registered and Bye never carry ids
     and are read by the driver itself. *)
  let reader =
    Domain.spawn (fun () ->
        let remaining = ref requests in
        while !remaining > 0 do
          let line = input_line client_ic in
          (match Svc.Json.of_string line with
           | Ok (Svc.Json.Obj fields) -> (
             match List.assoc_opt "id" fields with
             | Some (Svc.Json.Int id) ->
               Atomic.incr acks.(id / load_stride);
               decr remaining
             | _ -> ())
           | _ -> ())
        done)
  in
  let hot_targets = [| 60; 70; 80 |] in
  let lat0 = latency_histogram () in
  (* [service.cache_hits] already counts monotone hits (they bump both
     the hit and the monotone counter), so it alone is "answered from
     the cache". *)
  let hits0 = Telemetry.value Telemetry.service_cache_hits in
  let cold0 = Telemetry.value Telemetry.service_cache_misses in
  let coalesced0 = Telemetry.value Telemetry.service_coalesced in
  let t0 = Unix.gettimeofday () in
  let client_domains =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            let rng = P.create (seed + (7919 * (c + 1))) in
            let draw bound = Int64.to_int (P.bits64 rng) land 0xFFFF mod bound in
            for s = 1 to per_client do
              let target =
                if float_of_int (draw 10_000) < hit_ratio *. 10_000. then
                  hot_targets.(draw (Array.length hot_targets))
                else 10 + draw 400
              in
              send
                (Svc.Protocol.Solve
                   { id = Some ((c * load_stride) + s); trace_id = None;
                     tenant = Some (Printf.sprintf "c%d" c);
                     source = Svc.Protocol.Ref "app";
                     objective = min_cost target; pricebook = None;
                     spec = S.Auto; budget = None;
                     reuse = Svc.Protocol.Monotone });
              while Atomic.get acks.(c) < s do
                Domain.cpu_relax ()
              done
            done))
  in
  List.iter Domain.join client_domains;
  let wall = Unix.gettimeofday () -. t0 in
  Domain.join reader;
  let lat1 = latency_histogram () in
  let hits = Telemetry.value Telemetry.service_cache_hits - hits0 in
  let cold = Telemetry.value Telemetry.service_cache_misses - cold0 in
  let coalesced = Telemetry.value Telemetry.service_coalesced - coalesced0 in
  send Svc.Protocol.Shutdown;
  let (_ : string) = input_line client_ic in
  Domain.join daemon;
  List.iter close_out [ client_oc; daemon_oc; dump ];
  List.iter close_in [ client_ic; daemon_ic ];
  let deltas =
    Array.init
      (Array.length lat1.Telemetry.h_counts)
      (fun i -> lat1.Telemetry.h_counts.(i) - lat0.Telemetry.h_counts.(i))
  in
  let quantile q =
    1e3 *. bucket_quantile ~bounds:lat1.Telemetry.h_bounds ~counts:deltas q
  in
  { ld_requests = requests; ld_clients = clients; ld_workers = workers;
    ld_hit_ratio = hit_ratio;
    ld_hit_measured = float_of_int hits /. Float.max (float_of_int requests) 1.;
    ld_wall = wall;
    ld_rps = float_of_int requests /. Float.max wall 1e-9;
    ld_p50_ms = quantile 0.5; ld_p99_ms = quantile 0.99; ld_cold = cold;
    ld_hits = hits; ld_coalesced = coalesced }

let write_load_json ~path r =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rentcost-bench-load/1\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" root_seed;
  Printf.fprintf oc
    "  \"traffic\": {\"requests\": %d, \"clients\": %d, \"workers\": %d, \
     \"hit_ratio_target\": %.2f, \"hit_ratio_measured\": %.3f},\n"
    r.ld_requests r.ld_clients r.ld_workers r.ld_hit_ratio r.ld_hit_measured;
  Printf.fprintf oc
    "  \"throughput\": {\"wall_seconds\": %.6f, \"req_per_s\": %.1f},\n"
    r.ld_wall r.ld_rps;
  Printf.fprintf oc "  \"latency_ms\": {\"p50\": %.4f, \"p99\": %.4f},\n"
    r.ld_p50_ms r.ld_p99_ms;
  Printf.fprintf oc
    "  \"served\": {\"cold\": %d, \"hits\": %d, \"coalesced\": %d}\n" r.ld_cold
    r.ld_hits r.ld_coalesced;
  Printf.fprintf oc "}\n";
  close_out oc

let emit_load_json ~requests ~clients ~workers ~hit_ratio =
  let r = run_load ~seed:load_seed ~requests ~clients ~workers ~hit_ratio in
  write_load_json ~path:"BENCH_load.json" r;
  Printf.printf
    "BENCH_load.json written (%d requests, %d clients on %d workers: %.0f \
     req/s, p50 %.3f ms, p99 %.3f ms, hit ratio %.2f measured %.3f)\n"
    r.ld_requests r.ld_clients r.ld_workers r.ld_rps r.ld_p50_ms r.ld_p99_ms
    r.ld_hit_ratio r.ld_hit_measured;
  r

(* --- smoke mode: engine agreement + oracle consistency, no OLS --- *)

let smoke () =
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "FAIL %s\n" name
    end
  in
  let rows = emit_solver_json ~evals:20_000 in
  let cost_of name =
    (List.find (fun r -> r.row_name = name) rows).row_cost
  in
  let exact = cost_of "exhaustive_illustrating_rho70" in
  check "ilp agrees with exhaustive" (cost_of "ilp_illustrating_rho70" = exact);
  check "auto agrees with exhaustive" (cost_of "auto_illustrating_rho70" = exact);
  List.iter
    (fun r ->
      if Filename.check_suffix r.row_name "_illustrating_rho70" then
        check (r.row_name ^ " is feasible (cost >= exact)")
          (r.row_cost >= exact))
    rows;
  (* The structured instances route to their DPs and must match the
     brute-force oracle. *)
  List.iter
    (fun (label, inst, expected_engine) ->
      let dp = solve_row label S.Auto inst ~target:60 in
      let ex = solve_row (label ^ "_oracle") S.Exhaustive inst ~target:60 in
      check (label ^ " routed to " ^ S.spec_to_string expected_engine)
        (dp.row_telemetry.S.engine = expected_engine);
      check (label ^ " agrees with exhaustive") (dp.row_cost = ex.row_cost))
    [ ("smoke_blackbox", blackbox_instance, S.Dp_blackbox);
      ("smoke_disjoint", disjoint_instance, S.Dp_disjoint) ];
  (* Incremental oracle vs scratch repricing on the illustrating
     instance, including after undo. *)
  let inst = Lazy.force illustrating_instance in
  let o = I.Oracle.create inst in
  let j_count = I.num_recipes inst in
  I.Oracle.reset o ~rho:(Array.make j_count 3);
  let scratch () =
    (Rentcost.Allocation.of_rho (I.problem inst)
       ~rho:(I.expand_rho inst (I.Oracle.rho o)))
      .Rentcost.Allocation.cost
  in
  check "oracle matches scratch at start" (I.Oracle.cost o = scratch ());
  for j = 0 to j_count - 1 do
    I.Oracle.apply o ~j ~drho:(2 * (j + 1));
    check (Printf.sprintf "oracle matches scratch after apply %d" j)
      (I.Oracle.cost o = scratch ())
  done;
  for j = j_count - 1 downto 0 do
    I.Oracle.undo o;
    check (Printf.sprintf "oracle matches scratch after undo %d" j)
      (I.Oracle.cost o = scratch ())
  done;
  (* The provisioning service: a warm hit must beat a cold solve and
     the replayed trace must actually hit the cache. *)
  let cold, warm, trace = emit_service_json ~iters:50 in
  check "service warm hit faster than cold solve" (warm < cold);
  check "service trace produced cache hits" (trace.tr_hits > 0);
  check "service trace produced monotone hits" (trace.tr_monotone > 0);
  check "service trace produced warm starts" (trace.tr_warm > 0);
  (* Observability: the kill switch must freeze every instrument, and
     enabled instrumentation must stay within 5% of the disabled hot
     path (the absolute slack absorbs clock granularity on a ~100 us
     kernel). *)
  let hist_count name =
    match
      List.find_opt
        (fun h -> h.Telemetry.h_name = name)
        (Telemetry.histograms ())
    with
    | Some h -> h.Telemetry.h_count
    | None -> 0
  in
  let labelled_total name =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Telemetry.counter_vecs ())
    with
    | Some (_, _, cells) -> List.fold_left (fun acc (_, v) -> acc + v) 0 cells
    | None -> 0
  in
  Telemetry.set_enabled false;
  let evals_frozen = Telemetry.value Telemetry.heuristic_evals in
  let hist_frozen = hist_count Telemetry.heuristic_run_evals in
  let lat_frozen = hist_count Telemetry.service_latency_seconds in
  let spans_frozen = Telemetry.Span.recorded () in
  let labelled_frozen = labelled_total Telemetry.service_requests in
  let audit_frozen =
    Svc.Audit.recorded (Svc.Engine.audit (Lazy.force cold_engine))
  in
  ignore
    (S.run ~rng:(P.create kernel_seed) ~params:params10
       ~spec:(S.Heuristic H.H32_jump)
       ~instance:(Lazy.force illustrating_instance) ~objective:(min_cost 70)
       ());
  ignore
    (service_answer (Lazy.force cold_engine)
       (service_solve ~reuse:Svc.Protocol.No_reuse ~target:70));
  check "disabled mode freezes counters"
    (Telemetry.value Telemetry.heuristic_evals = evals_frozen);
  check "disabled mode freezes solver histograms"
    (hist_count Telemetry.heuristic_run_evals = hist_frozen);
  check "disabled mode freezes service latency buckets"
    (hist_count Telemetry.service_latency_seconds = lat_frozen);
  check "disabled mode records no spans"
    (Telemetry.Span.recorded () = spans_frozen);
  check "disabled mode freezes labelled request counters"
    (labelled_total Telemetry.service_requests = labelled_frozen);
  check "disabled mode freezes the audit journal"
    (Svc.Audit.recorded (Svc.Engine.audit (Lazy.force cold_engine))
    = audit_frozen);
  Telemetry.set_enabled true;
  let on, off = emit_observability_json ~reps:7 in
  check "labelled instrumentation overhead under 5% on the heuristic hot path"
    (on <= (off *. 1.05) +. 2.5e-4);
  (* The portfolio race: bit-identical across domain counts, never
     worse than its rank-0 sequential run, and — when the machine has
     the cores — actually faster on 4 domains. *)
  let cores, wall1, wall4, cost1, cost4 = emit_parallel_json ~reps:3 in
  check "portfolio 1-domain and 4-domain agree on cost" (cost1 = cost4);
  let alloc o =
    match o.S.allocation with
    | Some a -> Some (a.Rentcost.Allocation.rho, a.Rentcost.Allocation.cost)
    | None -> None
  in
  let p1 =
    Pf.run ~rng:(P.create kernel_seed) ~params:params10 ~domains:1
      ~instance:(Lazy.force illustrating_instance) ~target:70 ()
  in
  let p4 =
    Pf.run ~rng:(P.create kernel_seed) ~params:params10 ~domains:4
      ~instance:(Lazy.force illustrating_instance) ~target:70 ()
  in
  check "portfolio allocation is domain-count invariant" (alloc p1 = alloc p4);
  let seq =
    S.run ~rng:(P.create kernel_seed) ~params:params10
      ~spec:(S.Heuristic H.H32_jump)
      ~instance:(Lazy.force illustrating_instance) ~objective:(min_cost 70) ()
  in
  (match (p4.S.allocation, seq.S.allocation) with
   | Some pa, Some sa ->
     check "portfolio dominates sequential h32jump on the same seed"
       (pa.Rentcost.Allocation.cost <= sa.Rentcost.Allocation.cost)
   | _ -> check "portfolio and sequential h32jump both found allocations" false);
  (* The speedup gate names the core count it ran on, and below 4
     cores it is SKIPPED — never silently passed — so a 1-core runner
     cannot launder an honest 0.6x into a green gate. *)
  if cores >= 4 then
    check
      (Printf.sprintf
         "4-domain portfolio at least 1.5x faster than 1-domain (cores=%d)"
         cores)
      (wall1 /. Float.max wall4 1e-9 >= 1.5)
  else
    Printf.printf
      "SKIP 4-domain speedup assertion (cores=%d, needs >= 4; not counted as \
       a pass)\n"
      cores;
  (* Scenario axes: the binary-search dual must land within one step
     of the scanned exact dual, duality must hold at the achieved
     throughput, three books must never price above single-cloud, and
     identical-price books must be bit-identical to no book. *)
  let sc = emit_scenarios_json () in
  check "dual throughput within one step of the scanned exact dual"
    (abs (sc.sc_throughput - sc.sc_exact_dual) <= 1);
  check "dual allocation fits the monetary budget"
    (sc.sc_dual_cost <= sc.sc_budget);
  check "min-cost at the achieved dual throughput fits the budget"
    (sc.sc_recheck_cost <= sc.sc_budget);
  check "3-book multicloud no more expensive than single-cloud"
    (sc.sc_cost_multibook <= sc.sc_cost_single);
  check "identical-price books solve bit-identically to single-cloud"
    sc.sc_bit_identical;
  (* Numeric kernels: the fast path (fraction-free rows engine, Fix64
     bounds kernel) must answer bit-identically, clear 2x over the
     exact kernel on the LP hot path and on Rows-engine MILP search,
     and the default paper-scale workload must complete with zero
     exact-kernel fallbacks (while the overflow stress workload must
     fall back every time — the restart protocol demonstrably fires,
     it is not dead code). *)
  let splits, paper, stress = emit_numeric_json ~reps:5 in
  List.iter
    (fun k -> check (k.ks_label ^ " bit-identical across kernels") k.ks_identical)
    splits;
  let split_named name = List.find (fun k -> k.ks_label = name) splits in
  (* The 2x bar is the paper-scale acceptance criterion and is gated
     on the paper-scale models (fig7, rows-engine MILP). The § VII
     illustrating LP finishes in ~15 us — too little work to amortize
     the scan machinery fully — so it gets a lower floor: still
     strictly faster, not laundered into the 2x claim. *)
  let lp = split_named "lp_simplex_illustrating_rho70" in
  check
    (Printf.sprintf
       "fast path at least 1.3x faster on the illustrating lp.simplex \
        (measured %.2fx)"
       (ks_speedup lp))
    (ks_speedup lp >= 1.3);
  let lp7 = split_named "lp_simplex_fig7_rho100" in
  check
    (Printf.sprintf
       "fast path at least 2x faster on paper-scale lp.simplex (measured \
        %.2fx)"
       (ks_speedup lp7))
    (ks_speedup lp7 >= 2.0);
  let mr = split_named "milp_search_rows_illustrating_rho130" in
  check
    (Printf.sprintf
       "fast path at least 2x faster on rows-engine milp.search (measured \
        %.2fx)"
       (ks_speedup mr))
    (ks_speedup mr >= 2.0);
  check "paper workload exercised the driver" (paper.fb_solves > 0);
  check "zero fallbacks on the paper-scale workload" (paper.fb_fallbacks = 0);
  check "overflow stress workload falls back on every solve"
    (stress.fb_solves > 0 && stress.fb_fallbacks = stress.fb_solves);
  (* Autoscale: on the pinned diurnal trace the elastic controller must
     land between the static-peak baseline and the clairvoyant oracle,
     and the baselines must behave as advertised (static never
     violates, the oracle re-plans once per hour block). *)
  let ac = emit_autoscale_json () in
  let elastic = ac.As.Policy.elastic
  and static = ac.As.Policy.static_peak
  and oracle = ac.As.Policy.oracle in
  check
    (Printf.sprintf "elastic no costlier than static-peak (%d vs %d)"
       elastic.As.Policy.total_cost static.As.Policy.total_cost)
    (elastic.As.Policy.total_cost <= static.As.Policy.total_cost);
  check
    (Printf.sprintf "oracle no costlier than elastic (%d vs %d)"
       oracle.As.Policy.total_cost elastic.As.Policy.total_cost)
    (oracle.As.Policy.total_cost <= elastic.As.Policy.total_cost);
  check "static-peak never violates the SLO" (static.As.Policy.violations = 0);
  check "elastic re-plans less often than once per tick"
    (elastic.As.Policy.replans < As.Trace.length (Lazy.force autoscale_trace));
  check "oracle re-plans once per hour block"
    (oracle.As.Policy.replans
    = (As.Trace.length (Lazy.force autoscale_trace) + 11) / 12);
  (* High-throughput serving. First the single-flight invariant, in
     its deterministic single-threaded form: a 32-duplicate herd
     queued and then drained costs exactly one cold solve — the other
     31 ride the leader's flight (batch mates plus the completion
     sweep) and are answered as coalesced. *)
  let herd_engine = service_engine_with_app () in
  let herd_cold0 = Telemetry.value Telemetry.service_cache_misses in
  let herd_coalesced0 = Telemetry.value Telemetry.service_coalesced in
  let herd_queued =
    List.concat_map
      (fun i ->
        Svc.Engine.submit herd_engine
          (Svc.Protocol.Solve
             { id = Some i; trace_id = None; tenant = None;
               source = Svc.Protocol.Ref "app"; objective = min_cost 97;
               pricebook = None; spec = S.Auto; budget = None;
               reuse = Svc.Protocol.Monotone }))
      (List.init 32 Fun.id)
  in
  let herd_answers = Svc.Engine.drain herd_engine in
  let count_served s =
    List.length
      (List.filter
         (function
           | Svc.Protocol.Solved { served; _ } -> served = s | _ -> false)
         herd_answers)
  in
  check "herd: all 32 duplicates admitted" (herd_queued = []);
  check "herd: every duplicate answered" (List.length herd_answers = 32);
  check "herd: exactly one cold solve"
    (count_served Svc.Protocol.Cold = 1
    && Telemetry.value Telemetry.service_cache_misses - herd_cold0 = 1);
  check "herd: the other 31 coalesced"
    (count_served Svc.Protocol.Coalesced = 31
    && Telemetry.value Telemetry.service_coalesced - herd_coalesced0 = 31);
  (* Shed conservation on a replayed overload: 24 distinct solves into
     a capacity-4 drop-oldest queue with no worker draining. Every
     request must be answered exactly once — evicted ones as
     [Overloaded] at eviction time, survivors as [Solved] on drain —
     and no id may vanish or double. *)
  let shed_engine =
    Svc.Engine.create
      ~config:
        { Svc.Engine.default_config with
          Svc.Engine.queue_capacity = 4;
          queue_policy = Svc.Admission.Drop_oldest }
      ()
  in
  ignore (Svc.Engine.register shed_engine ~name:"app" illustrating);
  let shed_immediate =
    List.concat_map
      (fun i ->
        Svc.Engine.submit shed_engine
          (Svc.Protocol.Solve
             { id = Some i; trace_id = None; tenant = None;
               source = Svc.Protocol.Ref "app";
               objective = min_cost (10 + i); pricebook = None; spec = S.Auto;
               budget = None; reuse = Svc.Protocol.Monotone }))
      (List.init 24 Fun.id)
  in
  let shed_drained = Svc.Engine.drain shed_engine in
  let answer_id = function
    | Svc.Protocol.Solved { id = Some i; _ }
    | Svc.Protocol.Overloaded { id = Some i; _ } -> [ i ]
    | _ -> []
  in
  let shed_ids =
    List.sort compare
      (List.concat_map answer_id (shed_immediate @ shed_drained))
  in
  check "shed conservation: every offered id answered exactly once"
    (shed_ids = List.init 24 Fun.id);
  check "shed conservation: 20 evictions carry retry hints"
    (List.for_all
       (function
         | Svc.Protocol.Overloaded { retry_after_ms = Some ms; _ } -> ms >= 1
         | _ -> false)
       shed_immediate
    && List.length shed_immediate = 20);
  check "shed conservation: the 4 survivors solved"
    (List.length shed_drained = 4
    && List.for_all
         (function Svc.Protocol.Solved _ -> true | _ -> false)
         shed_drained);
  (* And the end-to-end generator: a small closed-loop run through a
     real pipe daemon must sustain actual throughput and produce an
     internally consistent BENCH_load.json. *)
  let ld = emit_load_json ~requests:160 ~clients:4 ~workers:2 ~hit_ratio:0.9 in
  check "load: sustained positive throughput" (ld.ld_rps > 0.);
  check "load: p99 at least p50" (ld.ld_p99_ms >= ld.ld_p50_ms);
  check "load: every request served exactly one way"
    (ld.ld_cold + ld.ld_hits + ld.ld_coalesced = ld.ld_requests);
  check "load: hot traffic actually hit the cache" (ld.ld_hits > 0);
  if !failures = 0 then print_endline "smoke OK"
  else begin
    Printf.printf "smoke: %d failure(s)\n" !failures;
    exit 1
  end

(* --- driver: run everything, print an aligned time/run table --- *)

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then smoke ()
  else begin
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] all_tests in
    let results = Analyze.all ols instance raw in
    let rows =
      Hashtbl.fold
        (fun name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
          (name, ns, r2) :: acc)
        results []
    in
    let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) rows in
    let human ns =
      if ns >= 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
      else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
      else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
      else Printf.sprintf "%8.1f ns" ns
    in
    Printf.printf "%-50s %12s %8s\n" "benchmark" "time/run" "r^2";
    Printf.printf "%s\n" (String.make 72 '-');
    List.iter
      (fun (name, ns, r2) -> Printf.printf "%-50s %s %8.4f\n" name (human ns) r2)
      rows;
    ignore (emit_solver_json ~evals:200_000);
    ignore (emit_service_json ~iters:200);
    ignore (emit_observability_json ~reps:9);
    ignore (emit_parallel_json ~reps:5);
    ignore (emit_scenarios_json ());
    ignore (emit_numeric_json ~reps:9);
    ignore (emit_autoscale_json ());
    ignore (emit_load_json ~requests:800 ~clients:4 ~workers:4 ~hit_ratio:0.9)
  end
