(* Quickstart: model an application with alternative recipes, find the
   cheapest rental that sustains a target throughput, and check the
   plan by actually executing the stream.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A platform of four instance types: (hourly cost, throughput in
     tasks per time unit) — the paper's Table II. *)
  let platform =
    Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ]
  in
  (* Three alternative recipes computing the same result. A recipe is a
     DAG of typed tasks; [chain] builds a linear pipeline. *)
  let chain types = Rentcost.Task_graph.chain ~ntypes:4 ~types in
  let problem =
    Rentcost.Problem.create platform
      [| chain [| 1; 3 |];  (* recipe 0: a type-1 task then a type-3 task *)
         chain [| 2; 3 |];
         chain [| 0; 1 |] |]
  in
  let target = 70 in

  (* Exact optimum via the built-in branch-and-bound MILP solver. *)
  let ilp = Rentcost.Ilp.optimize ~problem ~target () in
  let best = Option.get ilp.Rentcost.Ilp.allocation in
  Format.printf "Cheapest rental sustaining %d results/t.u.:@.%a@.@." target
    Rentcost.Allocation.pp best;

  (* A fast heuristic alternative (H32Jump, the paper's best). *)
  let res =
    Rentcost.Heuristics.h32_jump
      ~params:{ Rentcost.Heuristics.default_params with step = 10 }
      ~rng:(Numeric.Prng.create 42) problem ~target
  in
  Format.printf "H32Jump heuristic: cost %d (optimal is %d)@.@."
    res.Rentcost.Heuristics.allocation.Rentcost.Allocation.cost
    best.Rentcost.Allocation.cost;

  (* Trust, but verify: run 2000 stream items through the rented
     machines with a discrete-event simulation. *)
  let report =
    Streamsim.Sim.run problem best
      { Streamsim.Sim.default_config with Streamsim.Sim.items = 2000 }
  in
  Format.printf
    "Simulated execution: measured throughput %.1f (target %d), max reorder \
     buffer %d items@."
    report.Streamsim.Sim.throughput target report.Streamsim.Sim.max_reorder
