(* Video transcoding pipeline — the paper's motivating scenario (§ I):
   a stream of frames must be decoded, filtered, and encoded at a fixed
   frame rate; the filter stage has both a CPU and a GPU
   implementation, giving alternative recipes over heterogeneous cloud
   instances.

   The example sweeps output frame rates, compares provisioning plans
   (best single recipe vs optimal recipe mix), and sizes the reorder
   buffer needed to deliver frames in order when both recipes run
   concurrently.

   Run with: dune exec examples/video_pipeline.exe *)

(* Machine types:
   0: small CPU   (decode)            cost  8, throughput 40
   1: big CPU     (CPU filter)        cost 28, throughput 25
   2: GPU         (GPU filter)        cost 80, throughput 100
   3: encoder CPU (encode)            cost 12, throughput 30

   The GPU is cheaper per filtered frame (0.80 vs 1.12) but comes in
   coarse 100-fps units: below ~100 fps the CPU recipe wins, above it
   the GPU recipe wins, and just past each GPU multiple the optimal
   plan mixes both recipes to soak up the remainder. *)
let platform =
  Rentcost.Platform.of_list [ (8, 40); (28, 25); (80, 100); (12, 30) ]

(* Recipe 0: decode -> CPU filter -> encode
   Recipe 1: decode -> GPU filter -> encode
   Recipe 2: decode -> (CPU filter AND GPU filter halves in parallel) -> encode
             (a split-frame variant that touches both filter types) *)
let problem =
  let chain types = Rentcost.Task_graph.chain ~ntypes:4 ~types in
  let split =
    Rentcost.Task_graph.create ~ntypes:4 ~types:[| 0; 1; 2; 3 |]
      ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
  in
  Rentcost.Problem.create platform [| chain [| 0; 1; 3 |]; chain [| 0; 2; 3 |]; split |]

let () =
  Format.printf "Frame-rate sweep (costs per hour):@.";
  Format.printf "%8s %12s %12s %12s %10s@." "fps" "best-single" "optimal-mix"
    "saving" "mix (rho)";
  List.iter
    (fun fps ->
      let h1 = Rentcost.Heuristics.h1_best_graph problem ~target:fps in
      let single = h1.Rentcost.Heuristics.allocation.Rentcost.Allocation.cost in
      let ilp = Rentcost.Ilp.optimize ~problem ~target:fps () in
      let best = Option.get ilp.Rentcost.Ilp.allocation in
      let saving =
        100.0 *. float_of_int (single - best.Rentcost.Allocation.cost)
        /. float_of_int (max 1 single)
      in
      Format.printf "%8d %12d %12d %11.1f%% [%s]@." fps single
        best.Rentcost.Allocation.cost saving
        (String.concat ";"
           (Array.to_list (Array.map string_of_int best.Rentcost.Allocation.rho))))
    [ 30; 60; 100; 130; 240; 330 ];

  (* Frames must come out in order: size the reorder buffer when the
     optimal mix routes frames through recipes of different speeds. *)
  let fps = 240 in
  let best = Option.get (Rentcost.Ilp.optimize ~problem ~target:fps ()).Rentcost.Ilp.allocation in
  let report =
    Streamsim.Sim.run problem best
      { Streamsim.Sim.default_config with
        Streamsim.Sim.items = 4800;
        arrival = Streamsim.Sim.Rate (float_of_int fps) }
  in
  Format.printf
    "@.At %d fps with the optimal mix: measured %.1f fps, mean frame latency \
     %.4f t.u., reorder buffer needs %d frames@."
    fps report.Streamsim.Sim.throughput report.Streamsim.Sim.mean_latency
    report.Streamsim.Sim.max_reorder
