(* Elastic re-provisioning over a day of varying demand, using the
   Rentcost.Elastic planner.

   The paper optimizes the hourly rental cost for one fixed target
   throughput; clouds let us re-run that optimization every hour as
   demand moves. This example compares three policies on a diurnal
   demand curve:

   - static:     rent once for the daily peak (no elasticity);
   - elastic:    re-solve the exact MILP each hour;
   - elastic-H1: re-solve each hour with the cheap single-recipe
     heuristic (what a latency-constrained autoscaler might do);

   and reports the churn (machine starts/stops) each elastic policy
   would impose on the autoscaler. The planner compiles the problem
   once for the whole day and seeds each hour's solve with the
   previous hour's fleet (Solver warm starts).

   Run with: dune exec examples/autoscaling.exe *)

module E = Rentcost.Elastic
module S = Rentcost.Solver

let problem = Rentcost.Problem.illustrating

(* A diurnal curve: low at night, two daytime bumps. *)
let demand =
  Array.init 24 (fun hour ->
      let base = 40.0 in
      let morning = 90.0 *. exp (-.((float_of_int hour -. 10.0) ** 2.0) /. 8.0) in
      let evening = 120.0 *. exp (-.((float_of_int hour -. 20.0) ** 2.0) /. 6.0) in
      int_of_float (base +. morning +. evening))

let () =
  let elastic = E.provision ~spec:S.Exact_ilp problem ~demand in
  let h1_elastic =
    E.provision ~spec:(S.Heuristic Rentcost.Heuristics.H1) problem ~demand
  in
  let static = E.static_peak ~spec:S.Exact_ilp problem ~demand in
  Format.printf "Peak demand %d -> static fleet costs %d per hour@.@."
    (Array.fold_left max 0 demand)
    (E.peak_cost static);
  Format.printf "%6s %8s %10s %12s %12s@." "hour" "demand" "elastic" "H1-elastic"
    "static";
  Array.iteri
    (fun hour target ->
      Format.printf "%6d %8d %10d %12d %12d@." hour target
        elastic.(hour).Rentcost.Allocation.cost
        h1_elastic.(hour).Rentcost.Allocation.cost
        static.(hour).Rentcost.Allocation.cost)
    demand;
  Format.printf "@.Daily totals: elastic %d, H1-elastic %d, static %d@."
    (E.total_cost elastic) (E.total_cost h1_elastic) (E.total_cost static);
  Format.printf "Elasticity saves %.1f%% over static; the exact solver saves \
                 %.1f%% over hourly H1.@."
    (100.0 *. E.savings ~elastic ~static)
    (100.0
    *. float_of_int (E.total_cost h1_elastic - E.total_cost elastic)
    /. float_of_int (max 1 (E.total_cost h1_elastic)));
  Format.printf
    "Churn (machine starts/stops over the day): elastic %d, H1-elastic %d, \
     static %d.@.Machine-hours per type (elastic): [%s]@."
    (E.churn elastic) (E.churn h1_elastic) (E.churn static)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (E.machine_hours elastic))))
