(* Multi-cloud provisioning — the paper's § V-B case: when each recipe
   runs in a different cloud, recipes cannot share machines, so type
   sets are disjoint and the pseudo-polynomial dynamic program finds
   the optimal throughput split exactly (no MILP needed).

   We model the same application ported to two providers: types 0-2
   are "cloud A" instances, types 3-5 are "cloud B" instances. The DP
   decides how much of the stream each cloud should carry.

   Run with: dune exec examples/multi_cloud.exe *)

let platform =
  Rentcost.Platform.of_list
    [ (* cloud A: cheap but slow *)
      (6, 12); (11, 25); (16, 35);
      (* cloud B: pricier, faster *)
      (14, 45); (22, 70); (25, 80) ]

let problem =
  let chain types = Rentcost.Task_graph.chain ~ntypes:6 ~types in
  Rentcost.Problem.create platform
    [| chain [| 0; 1; 2; 1 |];  (* the recipe as deployed on cloud A *)
       chain [| 3; 4; 5; 4 |]   (* the same pipeline on cloud B *) |]

let () =
  assert (Rentcost.Problem.is_disjoint problem);
  Format.printf "Optimal split across two clouds (dynamic program, § V-B):@.";
  Format.printf "%8s %9s %9s %8s %22s@." "target" "cloud A" "cloud B" "cost"
    "machines per type";
  List.iter
    (fun target ->
      let a = Rentcost.Dp_disjoint.run ~problem ~target () in
      Format.printf "%8d %9d %9d %8d [%s]@." target a.Rentcost.Allocation.rho.(0)
        a.Rentcost.Allocation.rho.(1) a.Rentcost.Allocation.cost
        (String.concat ";"
           (Array.to_list (Array.map string_of_int a.Rentcost.Allocation.machines))))
    [ 10; 25; 50; 75; 100; 150; 200 ];
  (* The DP is provably optimal here; cross-check one point against
     the general MILP. *)
  let target = 100 in
  let dp = Rentcost.Dp_disjoint.run ~problem ~target () in
  let ilp = Option.get (Rentcost.Ilp.optimize ~problem ~target ()).Rentcost.Ilp.allocation in
  Format.printf "@.Cross-check at target %d: DP cost %d = ILP cost %d@." target
    dp.Rentcost.Allocation.cost ilp.Rentcost.Allocation.cost;
  assert (dp.Rentcost.Allocation.cost = ilp.Rentcost.Allocation.cost)
