(* Branch and bound over exact LP relaxations, functorized over the
   numeric kernel its relaxations pivot on.

   Internally everything is a minimization (a maximization problem is
   negated on the way in and back on the way out). A node carries the
   extra variable bounds accumulated along its branch plus the parent
   relaxation objective, which is a valid dual bound used both for node
   ordering (best-bound strategy) and for pruning before the node's own
   relaxation is solved.

   Node bookkeeping (keys, incumbents, branch bounds) stays in exact
   Rat — the LP engines deliver Rat results whatever kernel they pivot
   on, and per-node bookkeeping is a vanishing fraction of the LP work.
   The kernel choice therefore only decides how relaxations are
   computed: the Fix64 instance does the tableau arithmetic on native
   ints and lets [Numeric.Kernel.Overflow] escape to the caller, which
   restarts the whole solve on the exact instance (see Rentcost.Ilp).
   Because kernels agree bit-for-bit wherever they complete, both
   instances explore the same tree and return the same outcome. *)

module R = Numeric.Rat
module B = Numeric.Bigint

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

let nodes_counter = Telemetry.counter Telemetry.milp_nodes
let incumbents_counter = Telemetry.counter Telemetry.milp_incumbents

let solve_nodes_hist =
  Telemetry.histogram Telemetry.milp_solve_nodes
    ~bounds:[| 1.; 10.; 100.; 1_000.; 10_000. |]

(* Per-node spans would double the clock traffic of small nodes, so
   only every 64th node (and the root) is timed individually; the LP
   engines underneath still record a span per relaxation solve. *)
let node_sampled n = (n - 1) land 63 = 0

type solution = { objective : R.t; values : R.t array }

type outcome = {
  status : status;
  solution : solution option;
  best_bound : R.t option;
  nodes : int;
  elapsed : float;
}

type strategy = Best_bound | Depth_first

type branching = Most_fractional | First_fractional

type engine = Bounds | Rows

type bound_dir = Upper | Lower

type node = {
  key : R.t;  (* parent relaxation objective: a valid lower bound *)
  depth : int;
  seq : int;  (* creation order, for deterministic tie-breaking *)
  extra : (Lp.Model.var * bound_dir * B.t) list;
}

module Best_queue = Pqueue.Make (struct
  type t = node

  let compare a b =
    match R.compare a.key b.key with 0 -> compare a.seq b.seq | c -> c
end)

module Dfs_queue = Pqueue.Make (struct
  type t = node

  (* LIFO: deepest, most recently created first. *)
  let compare a b =
    match compare b.depth a.depth with 0 -> compare b.seq a.seq | c -> c
end)

type queue = Qbest of Best_queue.t | Qdfs of Dfs_queue.t

let queue_push q n =
  match q with Qbest h -> Best_queue.push h n | Qdfs h -> Dfs_queue.push h n

let queue_pop = function
  | Qbest h -> Best_queue.pop h
  | Qdfs h -> Dfs_queue.pop h

let queue_fold f acc = function
  | Qbest h -> Best_queue.fold f acc h
  | Qdfs h -> Dfs_queue.fold f acc h

let pp_status fmt s =
  Format.pp_print_string fmt
    (match s with
     | Optimal -> "optimal"
     | Feasible -> "feasible"
     | Infeasible -> "infeasible"
     | Unbounded -> "unbounded"
     | Unknown -> "unknown")

let half = R.of_ints 1 2

(* Strengthen a dual bound to the next integer when the objective is
   known to be integral on feasible integer points. *)
let strengthen ~integral bound =
  if integral then R.of_bigint (R.ceil bound) else bound

let choose_in_group branching values group =
  let best = ref None in
  List.iter
    (fun v ->
      let x = values.(v) in
      if not (R.is_integer x) then begin
        match branching with
        | First_fractional -> if !best = None then best := Some (v, R.zero)
        | Most_fractional ->
          (* score = |frac(x) - 1/2|, smaller is better *)
          let score = R.abs (R.sub (R.frac x) half) in
          (match !best with
           | Some (_, s) when R.compare s score <= 0 -> ()
           | _ -> best := Some (v, score))
      end)
    group;
  Option.map fst !best

(* Branch within the earliest priority group that still has a
   fractional variable. *)
let choose_branch_var branching values groups =
  List.fold_left
    (fun acc group ->
      match acc with Some _ -> acc | None -> choose_in_group branching values group)
    None groups

(* Branch decisions tighten variable domains rather than adding rows:
   both LP engines honour Model variable bounds (the row engine
   materializes them, the bounded engine handles them natively), and
   node tableaux keep the base model's row count. *)
let apply_extras base extra =
  let m = Lp.Model.copy base in
  List.iter
    (fun (v, dir, b) ->
      match dir with
      | Upper -> Lp.Model.tighten_upper m v (R.of_bigint b)
      | Lower -> Lp.Model.tighten_lower m v (R.of_bigint b))
    extra;
  m

module type SEARCH = sig
  val solve :
    ?time_limit:float ->
    ?node_limit:int ->
    ?integral_objective:bool ->
    ?strategy:strategy ->
    ?branching:branching ->
    ?warm_start:R.t array ->
    ?priority:Lp.Model.var list list ->
    ?cut_rounds:int ->
    ?engine:engine ->
    Lp.Model.t ->
    integer:Lp.Model.var list ->
    outcome
end

(* The search over a given pair of relaxation engines. {!Make} derives
   both engines from one kernel; {!Fast} instead pairs the Fix64
   bounded engine with the fraction-free row engine, the fastest
   overflow-checked configuration of each. *)
module Make_over (E : sig
  val name : string
  val bounds_solve : Lp.Model.t -> Lp.Simplex.result
  val rows_solve : Lp.Model.t -> Lp.Simplex.result
end) =
struct
  let span_attrs = [ ("lp.kernel", E.name) ]

  let solve ?time_limit ?node_limit ?(integral_objective = false)
      ?(strategy = Best_bound) ?(branching = Most_fractional) ?warm_start
      ?priority ?(cut_rounds = 0) ?(engine = Bounds) model ~integer =
    let t0 = Unix.gettimeofday () in
    let lp_solve =
      match engine with Bounds -> E.bounds_solve | Rows -> E.rows_solve
    in
    let sense, obj = Lp.Model.objective model in
    (* Normalize to minimization. *)
    let base =
      match sense with
      | Lp.Model.Minimize -> model
      | Maximize ->
        let m = Lp.Model.copy model in
        Lp.Model.set_objective m Lp.Model.Minimize (Lp.Linexpr.neg obj);
        m
    in
    (* Tighten the root relaxation with Gomory cuts (valid globally, so
       every node inherits them). Only applies to pure-integer models.
       Cut generation introspects the exact row engine's tableau and is
       kernel-independent. *)
    let base =
      if cut_rounds <= 0 then base
      else
        Telemetry.Span.with_span "milp.cuts" (fun () ->
            fst (Lp.Gomory.strengthen ~rounds:cut_rounds base ~integer))
    in
    let denorm_obj o =
      match sense with Lp.Model.Minimize -> o | Maximize -> R.neg o
    in
    let queue =
      match strategy with
      | Best_bound -> Qbest (Best_queue.create ())
      | Depth_first -> Qdfs (Dfs_queue.create ())
    in
    (* Branching groups: the caller's priority classes, then a catch-all
       group for remaining integer variables. *)
    let groups =
      let listed = match priority with None -> [] | Some gs -> gs in
      let in_listed = List.concat listed in
      let rest = List.filter (fun v -> not (List.mem v in_listed)) integer in
      List.map (List.filter (fun v -> List.mem v integer)) listed @ [ rest ]
    in
    let incumbent = ref None in
    (match warm_start with
     | None -> ()
     | Some values ->
       if
         not
           (Lp.Model.check_feasible model values
           && List.for_all (fun v -> R.is_integer values.(v)) integer)
       then
         invalid_arg "Milp.Solver.solve: warm start is not a feasible integer point";
       let o = Lp.Linexpr.eval obj values in
       let o = match sense with Lp.Model.Minimize -> o | Maximize -> R.neg o in
       Telemetry.bump incumbents_counter;
       Telemetry.Progress.emit
         ~incumbent:(R.to_float (denorm_obj o))
         ~source:"milp.warm" ();
       incumbent := Some (o, Array.copy values));
    (* Last dual bound handed to the convergence timeline, in the
       normalized (minimization) sense. Bound events are emitted only
       on strict improvement, so the timeline stays monotone. *)
    let last_bound = ref None in
    let emit_bound k =
      let improved =
        match !last_bound with None -> true | Some b -> R.compare k b > 0
      in
      if improved then begin
        last_bound := Some k;
        Telemetry.Progress.emit ~bound:(R.to_float (denorm_obj k))
          ~source:"milp" ()
      end
    in
    let nodes = ref 0 in
    let seq = ref 0 in
    let out_of_budget () =
      (match time_limit with
       | Some tl -> Unix.gettimeofday () -. t0 > tl
       | None -> false)
      || (match node_limit with Some nl -> !nodes >= nl | None -> false)
    in
    let better_than_incumbent bound =
      match !incumbent with
      | None -> true
      | Some (inc_obj, _) -> R.compare bound inc_obj < 0
    in
    let root_status = ref None in
    queue_push queue { key = R.zero; depth = 0; seq = 0; extra = [] };
    let interrupted = ref false in
    let rec loop () =
      if out_of_budget () then interrupted := true
      else begin
        match queue_pop queue with
        | None -> ()
        | Some node ->
          let is_root = node.depth = 0 in
          (* Prune on the inherited parent bound before paying for an LP
             solve (never prune the root: its key is a placeholder). *)
          if
            (not is_root)
            && not
                 (better_than_incumbent
                    (strengthen ~integral:integral_objective node.key))
          then loop ()
          else begin
            incr nodes;
            Telemetry.bump nodes_counter;
            (* Under best-bound ordering the popped key is the least
               over all open subtrees, hence a valid global dual
               bound. Sampled like the node spans to keep timelines
               sparse on big trees. *)
            (match queue with
            | Qbest _ when (not is_root) && node_sampled !nodes ->
              emit_bound (strengthen ~integral:integral_objective node.key)
            | _ -> ());
            let relax () = lp_solve (apply_extras base node.extra) in
            let relaxation =
              if Telemetry.enabled () && node_sampled !nodes then
                Telemetry.Span.with_span
                  ~attrs:
                    [ ("node", string_of_int !nodes);
                      ("depth", string_of_int node.depth) ]
                  "milp.node" relax
              else relax ()
            in
            (match relaxation with
             | Lp.Simplex.Infeasible ->
               if is_root then root_status := Some Infeasible
             | Lp.Simplex.Unbounded ->
               (* With a bounded root every child is bounded; an unbounded
                  relaxation can only be the root. *)
               root_status := Some Unbounded;
               interrupted := true
             | Lp.Simplex.Optimal { objective = lp_obj; values } ->
               let bound = strengthen ~integral:integral_objective lp_obj in
               (* The root relaxation is a global dual bound under
                  either search strategy. *)
               if is_root then emit_bound bound;
               if better_than_incumbent bound then begin
                 match choose_branch_var branching values groups with
                 | None ->
                   (* Integral relaxation: new incumbent. *)
                   Telemetry.bump incumbents_counter;
                   Telemetry.Progress.emit
                     ~incumbent:(R.to_float (denorm_obj lp_obj))
                     ~source:"milp" ();
                   incumbent := Some (lp_obj, values)
                 | Some v ->
                   let x = values.(v) in
                   let mk dir b =
                     incr seq;
                     { key = lp_obj; depth = node.depth + 1; seq = !seq;
                       extra = (v, dir, b) :: node.extra }
                   in
                   (* Push the "down" child last under DFS so it is
                      explored first (rounding down is the natural move
                      for covering problems). *)
                   queue_push queue (mk Lower (R.ceil x));
                   queue_push queue (mk Upper (R.floor x))
               end);
            if not !interrupted then loop ()
          end
      end
    in
    Telemetry.Span.with_span ~attrs:span_attrs "milp.search" loop;
    Telemetry.observe solve_nodes_hist (float_of_int !nodes);
    let elapsed = Unix.gettimeofday () -. t0 in
    match !root_status with
    | Some Infeasible ->
      { status = Infeasible; solution = None; best_bound = None; nodes = !nodes;
        elapsed }
    | Some Unbounded ->
      { status = Unbounded; solution = None; best_bound = None; nodes = !nodes;
        elapsed }
    | _ ->
      let solution =
        Option.map
          (fun (o, values) -> { objective = denorm_obj o; values })
          !incumbent
      in
      if not !interrupted then begin
        match solution with
        | Some sol ->
          (* Close the timeline: the proof pins the dual bound to the
             incumbent, so both sequences end at the optimum. *)
          Telemetry.Progress.emit
            ~incumbent:(R.to_float sol.objective)
            ~bound:(R.to_float sol.objective)
            ~source:"milp.proved" ();
          { status = Optimal; solution = Some sol; best_bound = Some sol.objective;
            nodes = !nodes; elapsed }
        | None ->
          (* Exhausted the tree without an integer point. *)
          { status = Infeasible; solution = None; best_bound = None;
            nodes = !nodes; elapsed }
      end
      else begin
        (* Limit hit: the dual bound is the least key still queued,
           possibly improved by the incumbent. *)
        let queued_bound =
          queue_fold
            (fun acc n ->
              let k = strengthen ~integral:integral_objective n.key in
              match acc with
              | None -> Some k
              | Some b -> Some (R.min b k))
            None queue
        in
        let best_bound =
          match (queued_bound, !incumbent) with
          | Some qb, Some (io, _) -> Some (denorm_obj (R.min qb io))
          | Some qb, None -> Some (denorm_obj qb)
          | None, Some (io, _) -> Some (denorm_obj io)
          | None, None -> None
        in
        let status = if solution = None then Unknown else Feasible in
        { status; solution; best_bound; nodes = !nodes; elapsed }
      end
end

module Make (K : Numeric.Kernel.S) = Make_over (struct
  module Lp_bounded = Lp.Bounded.Make (K)
  module Lp_simplex = Lp.Simplex.Make (K)

  let name = K.name
  let bounds_solve = Lp_bounded.solve
  let rows_solve = Lp_simplex.solve
end)

module Exact = Make (Numeric.Kernel.Exact)

(* Node relaxations under [Bounds] pivot on the Fix64 kernel; under
   [Rows] they run the fraction-free integer engine. Both raise
   [Numeric.Kernel.Overflow] out of [solve] for the caller to restart
   on {!Exact}. *)
module Fast = Make_over (struct
  let name = "fix64"
  let bounds_solve = Lp.Bounded.Fast.solve
  let rows_solve = Lp.Simplex.Fast.solve
end)

let solve = Exact.solve

let gap outcome =
  match (outcome.solution, outcome.best_bound) with
  | Some { objective; _ }, Some bound ->
    let inc = R.to_float objective and b = R.to_float bound in
    Some (Float.abs (inc -. b) /. Float.max 1.0 (Float.abs inc))
  | _ -> None
