(** Exact branch-and-bound mixed-integer linear programming.

    Solves an {!Lp.Model.t} in which a designated subset of the
    variables must take integer values. LP relaxations are solved by
    the exact simplex of {!Lp.Simplex}, so bounds and incumbents are
    exact rationals — the solver never declares optimality spuriously
    or misses it because of floating-point tolerances.

    This module is the replacement for the Gurobi solver used in the
    paper's experiments; in particular it exposes the same wall-clock
    [time_limit] semantics that the paper's Figure 8 relies on
    (best incumbent returned, optimality not proven). *)

type status =
  | Optimal  (** incumbent proven optimal *)
  | Feasible  (** limit hit with an incumbent; gap may be positive *)
  | Infeasible  (** no integer point satisfies the constraints *)
  | Unbounded  (** the LP relaxation is unbounded *)
  | Unknown  (** limit hit before any incumbent was found *)

type solution = { objective : Numeric.Rat.t; values : Numeric.Rat.t array }

type outcome = {
  status : status;
  solution : solution option;  (** best integer point found *)
  best_bound : Numeric.Rat.t option;
      (** proven dual bound on the optimum (for minimization, a lower
          bound); equals the incumbent objective when [status = Optimal] *)
  nodes : int;  (** branch-and-bound nodes evaluated *)
  elapsed : float;  (** wall-clock seconds *)
}

(** Node exploration order. [Best_bound] (default) explores the node
    with the most promising relaxation first and tends to prove
    optimality with fewer nodes; [Depth_first] dives to find incumbents
    quickly and uses less memory. *)
type strategy = Best_bound | Depth_first

(** Branching variable choice among fractional integer variables.
    [Most_fractional] (default) picks the variable whose relaxation
    value is closest to one half; [First_fractional] picks the smallest
    index (cheaper per node). *)
type branching = Most_fractional | First_fractional

(** LP relaxation engine. [Bounds] (default) uses the bounded-variable
    simplex ({!Lp.Bounded}): branch decisions stay out of the tableau,
    so node LPs keep the base model's size. [Rows] uses the row-based
    {!Lp.Simplex} (bounds materialized as rows) — the engine the Gomory
    cut generator introspects. Both return identical optima. *)
type engine = Bounds | Rows

(** [solve model ~integer] minimizes or maximizes [model] subject to
    integrality of the variables in [integer].

    @param time_limit wall-clock budget in seconds (default: none).
    @param node_limit maximum nodes to evaluate (default: none).
    @param integral_objective when true, the solver strengthens LP
      bounds to the next integer — valid whenever every feasible
      integer point has an integer objective value (e.g. integer costs
      over integer variables, as in the rental-cost MILP).
    @param strategy node order (default [Best_bound]).
    @param branching variable choice (default [Most_fractional]).
    @param warm_start a known feasible integer point used as the
      initial incumbent (a heuristic solution); dramatically improves
      pruning. Must be feasible and integral on [integer] —
      @raise Invalid_argument otherwise.
    @param priority when given, branching considers fractional
      variables of the earliest non-empty group first (e.g. structural
      throughput splits before derived machine counts); variables in
      [integer] but in no group form an implicit last group.
    @param cut_rounds rounds of Gomory fractional cuts applied to the
      root relaxation before branching (default 0; only effective on
      pure-integer models — see {!Lp.Gomory.applicable}).
    @param engine node relaxation engine (default [Bounds]). *)
val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?integral_objective:bool ->
  ?strategy:strategy ->
  ?branching:branching ->
  ?warm_start:Numeric.Rat.t array ->
  ?priority:Lp.Model.var list list ->
  ?cut_rounds:int ->
  ?engine:engine ->
  Lp.Model.t ->
  integer:Lp.Model.var list ->
  outcome

(** {1 Kernel-parameterized search}

    The search is functorized over the {!Numeric.Kernel} its LP
    relaxations pivot on. Kernels agree bit-for-bit wherever they
    complete, so every instance explores the same tree and returns the
    same outcome; a range-restricted kernel instead lets
    [Numeric.Kernel.Overflow] escape from [solve], leaving the caller
    to restart on {!Exact} (the protocol [Rentcost.Ilp] implements). *)

module type SEARCH = sig
  (** Same contract as the top-level {!solve}; additionally may raise
      [Numeric.Kernel.Overflow] when the kernel is range-restricted. *)
  val solve :
    ?time_limit:float ->
    ?node_limit:int ->
    ?integral_objective:bool ->
    ?strategy:strategy ->
    ?branching:branching ->
    ?warm_start:Numeric.Rat.t array ->
    ?priority:Lp.Model.var list list ->
    ?cut_rounds:int ->
    ?engine:engine ->
    Lp.Model.t ->
    integer:Lp.Model.var list ->
    outcome
end

module Make (K : Numeric.Kernel.S) : SEARCH

(** {!Make} over {!Numeric.Kernel.Exact}; the top-level {!solve}.
    Never raises [Overflow]. *)
module Exact : SEARCH

(** The fast search: node relaxations pivot on native ints, through
    the {!Numeric.Fix64}-kernel bounded simplex under the [Bounds]
    engine and [Lp.Simplex.Fast]'s fraction-free engine under [Rows].
    Same branching decisions as {!Exact} (relaxation results are
    bit-identical), so the node walk and the answer coincide. Raises
    [Numeric.Kernel.Overflow] as soon as any relaxation leaves the
    fast range. *)
module Fast : SEARCH

(** [gap outcome] is the relative optimality gap
    [(incumbent - bound) / max(1, |incumbent|)] when both are known. *)
val gap : outcome -> float option

val pp_status : Format.formatter -> status -> unit
