(** Aggregation of raw measurements into the series the paper plots.

    Each figure of § VIII is one of three aggregations over a sweep:
    normalized cost (Figures 3, 6, 7), times-found-best counts
    (Figure 4) and mean computation time (Figures 5, 8). *)

(** A plot-ready table: one row per target, one column per
    algorithm. *)
type series = {
  ylabel : string;
  algorithms : string list;  (** column order *)
  rows : (int * float array) list;  (** target, value per algorithm *)
}

(** [normalized_cost ms] is the paper's "Normalization(Cost)":
    per target, the mean over configurations of
    [best-known cost / algorithm cost], where best-known is the ILP
    cost when an ILP column is present (falling back to the cheapest
    algorithm otherwise). The reference algorithm therefore plots at
    1.0 and worse algorithms below it, as in Figures 3/6/7. *)
val normalized_cost : Runner.measurement list -> series

(** [best_counts ms] is Figure 4: per target, the number of
    configurations in which each algorithm attains the minimum cost
    among all algorithms (ties counted for every winner). *)
val best_counts : Runner.measurement list -> series

(** [mean_times ms] is Figures 5/8: per target, the mean wall-clock
    seconds per algorithm. *)
val mean_times : Runner.measurement list -> series

(** [mean_gap_vs_reference ms ~reference] is, per target, the mean of
    [cost_alg / cost_reference - 1] (a cost overhead ratio); used in
    EXPERIMENTS.md to check the paper's "within 6 % of optimal"
    claims. *)
val mean_gap_vs_reference : Runner.measurement list -> reference:string -> series

(** [mean_nodes ms] is, per target, the mean branch-and-bound node
    count (0 for heuristic columns); the solver-effort companion of
    Figures 5/8. *)
val mean_nodes : Runner.measurement list -> series

(** [mean_evaluations ms] is, per target, the mean cost-oracle
    evaluation count per algorithm — the machine-independent effort
    measure of the heuristic columns (the ILP column counts its warm
    start and any fallback stage). *)
val mean_evaluations : Runner.measurement list -> series

(** [optimality_rate ms] is, per target, the fraction of
    configurations whose ILP run proved optimality — the paper's
    Figure 8 commentary (time-limit hits). Algorithms other than the
    ILP report 1.0. *)
val optimality_rate : Runner.measurement list -> series
