type series = {
  ylabel : string;
  algorithms : string list;
  rows : (int * float array) list;
}

(* Preserve first-seen order of algorithms and targets. *)
let algorithms_of ms =
  List.fold_left
    (fun acc m -> if List.mem m.Runner.algorithm acc then acc else acc @ [ m.Runner.algorithm ])
    [] ms

let targets_of ms =
  List.sort_uniq compare (List.map (fun m -> m.Runner.target) ms)

let configs_of ms =
  List.sort_uniq compare (List.map (fun m -> m.Runner.config) ms)

(* Index measurements by (config, target, algorithm). *)
let index ms =
  let tbl = Hashtbl.create (List.length ms) in
  List.iter
    (fun m -> Hashtbl.replace tbl (m.Runner.config, m.Runner.target, m.Runner.algorithm) m)
    ms;
  tbl

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* Generic per-(target, algorithm) aggregation over configs. *)
let aggregate ~ylabel ms f =
  let algorithms = algorithms_of ms in
  let targets = targets_of ms in
  let configs = configs_of ms in
  let tbl = index ms in
  let rows =
    List.map
      (fun target ->
        let values =
          Array.of_list
            (List.map
               (fun alg ->
                 f ~tbl ~configs ~algorithms ~target ~alg)
               algorithms)
        in
        (target, values))
      targets
  in
  { ylabel; algorithms; rows }

let lookup tbl config target alg = Hashtbl.find_opt tbl (config, target, alg)

let normalized_cost ms =
  let algorithms = algorithms_of ms in
  let reference = if List.mem "ILP" algorithms then Some "ILP" else None in
  aggregate ~ylabel:"normalized cost (best / alg)" ms
    (fun ~tbl ~configs ~algorithms ~target ~alg ->
      let ratios =
        List.filter_map
          (fun config ->
            let best =
              match reference with
              | Some ref_alg ->
                Option.map (fun m -> m.Runner.cost) (lookup tbl config target ref_alg)
              | None ->
                let costs =
                  List.filter_map
                    (fun a -> Option.map (fun m -> m.Runner.cost) (lookup tbl config target a))
                    algorithms
                in
                (match costs with [] -> None | l -> Some (List.fold_left min max_int l))
            in
            match (best, lookup tbl config target alg) with
            | Some best, Some m when m.Runner.cost > 0 ->
              Some (float_of_int best /. float_of_int m.Runner.cost)
            | Some _, Some _ -> Some 1.0 (* both costs zero at target 0 *)
            | _ -> None)
          configs
      in
      mean ratios)

let best_counts ms =
  aggregate ~ylabel:"times found best" ms
    (fun ~tbl ~configs ~algorithms ~target ~alg ->
      let count =
        List.length
          (List.filter
             (fun config ->
               let costs =
                 List.filter_map
                   (fun a -> Option.map (fun m -> m.Runner.cost) (lookup tbl config target a))
                   algorithms
               in
               match (costs, lookup tbl config target alg) with
               | [], _ | _, None -> false
               | l, Some m -> m.Runner.cost = List.fold_left min max_int l)
             configs)
      in
      float_of_int count)

let mean_times ms =
  aggregate ~ylabel:"mean time (s)" ms
    (fun ~tbl ~configs ~algorithms:_ ~target ~alg ->
      mean
        (List.filter_map
           (fun config ->
             Option.map
               (fun m -> m.Runner.telemetry.Rentcost.Solver.wall_time)
               (lookup tbl config target alg))
           configs))

let mean_nodes ms =
  aggregate ~ylabel:"mean B&B nodes" ms
    (fun ~tbl ~configs ~algorithms:_ ~target ~alg ->
      mean
        (List.filter_map
           (fun config ->
             Option.map
               (fun m -> float_of_int m.Runner.telemetry.Rentcost.Solver.nodes)
               (lookup tbl config target alg))
           configs))

let mean_evaluations ms =
  aggregate ~ylabel:"mean cost-oracle evaluations" ms
    (fun ~tbl ~configs ~algorithms:_ ~target ~alg ->
      mean
        (List.filter_map
           (fun config ->
             Option.map
               (fun m -> float_of_int m.Runner.telemetry.Rentcost.Solver.evaluations)
               (lookup tbl config target alg))
           configs))

let mean_gap_vs_reference ms ~reference =
  aggregate ~ylabel:(Printf.sprintf "mean cost overhead vs %s" reference) ms
    (fun ~tbl ~configs ~algorithms:_ ~target ~alg ->
      mean
        (List.filter_map
           (fun config ->
             match (lookup tbl config target reference, lookup tbl config target alg) with
             | Some r, Some m when r.Runner.cost > 0 ->
               Some ((float_of_int m.Runner.cost /. float_of_int r.Runner.cost) -. 1.0)
             | Some _, Some _ -> Some 0.0
             | _ -> None)
           configs))

let optimality_rate ms =
  aggregate ~ylabel:"fraction proved optimal" ms
    (fun ~tbl ~configs ~algorithms:_ ~target ~alg ->
      mean
        (List.filter_map
           (fun config ->
             Option.map
               (fun m ->
                 if m.Runner.algorithm = "ILP" then
                   if m.Runner.proved_optimal then 1.0 else 0.0
                 else 1.0)
               (lookup tbl config target alg))
           configs))
