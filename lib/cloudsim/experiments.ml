type preset = {
  id : string;
  description : string;
  graphs : Generator.graph_params;
  cloud : Generator.cloud_params;
  targets : int list;
  default_configs : int;
  ilp_time_limit : float option;
  ilp_node_limit : int option;
}

let sweep_targets = List.init 19 (fun i -> 20 + (10 * i))

let small_graphs =
  { Generator.num_graphs = 20; min_tasks = 5; max_tasks = 8; mutation_pct = 0.5 }

let small_cloud =
  { Generator.num_types = 5; min_cost = 1; max_cost = 100;
    min_throughput = 10; max_throughput = 100 }

let medium_graphs =
  { Generator.num_graphs = 20; min_tasks = 10; max_tasks = 20; mutation_pct = 0.3 }

let medium_cloud = { small_cloud with Generator.num_types = 8 }

let large_graphs =
  { Generator.num_graphs = 20; min_tasks = 50; max_tasks = 100; mutation_pct = 0.5 }

let large_cloud =
  { Generator.num_types = 8; min_cost = 1; max_cost = 100;
    min_throughput = 10; max_throughput = 50 }

let stress_graphs =
  { Generator.num_graphs = 10; min_tasks = 100; max_tasks = 200; mutation_pct = 0.3 }

let stress_cloud =
  { Generator.num_types = 50; min_cost = 1; max_cost = 100;
    min_throughput = 5; max_throughput = 25 }

let all =
  [ { id = "fig3";
      description = "normalized cost, small recipes (Figure 3)";
      graphs = small_graphs; cloud = small_cloud; targets = sweep_targets;
      default_configs = 100; ilp_time_limit = None; ilp_node_limit = Some 20_000 };
    { id = "fig4";
      description = "times each algorithm finds the best cost, small recipes (Figure 4)";
      graphs = small_graphs; cloud = small_cloud; targets = sweep_targets;
      default_configs = 100; ilp_time_limit = None; ilp_node_limit = Some 20_000 };
    { id = "fig5";
      description = "computation time, small recipes (Figure 5)";
      graphs = small_graphs; cloud = small_cloud; targets = sweep_targets;
      default_configs = 100; ilp_time_limit = None; ilp_node_limit = Some 20_000 };
    { id = "fig6";
      description = "normalized cost, medium recipes (Figure 6)";
      graphs = medium_graphs; cloud = medium_cloud; targets = sweep_targets;
      default_configs = 100; ilp_time_limit = None; ilp_node_limit = Some 20_000 };
    { id = "fig7";
      description = "normalized cost, large recipes (Figure 7)";
      graphs = large_graphs; cloud = large_cloud; targets = sweep_targets;
      default_configs = 100; ilp_time_limit = None; ilp_node_limit = Some 20_000 };
    { id = "fig8";
      description = "ILP at its limits: computation time with a 100 s cap (Figure 8)";
      graphs = stress_graphs; cloud = stress_cloud; targets = sweep_targets;
      default_configs = 10; ilp_time_limit = Some 100.0; ilp_node_limit = None } ]

let find id = List.find_opt (fun p -> p.id = id) all

let run ?configs ?(seed = 2016) ?time_limit ?progress preset =
  let configs = Option.value configs ~default:preset.default_configs in
  let time_limit =
    match time_limit with Some _ as t -> t | None -> preset.ilp_time_limit
  in
  let algorithms =
    Runner.paper_algorithms ?time_limit ?node_limit:preset.ilp_node_limit ()
  in
  Runner.sweep ?progress ~seed ~configs preset.graphs preset.cloud
    ~targets:preset.targets ~algorithms
    ~params:Rentcost.Heuristics.default_params

let table3 ?(seed = 42) () =
  let module S = Rentcost.Solver in
  let instance = Rentcost.Instance.compile Rentcost.Problem.illustrating in
  let params = { Rentcost.Heuristics.default_params with step = 10 } in
  let targets = List.init 20 (fun i -> 10 * (i + 1)) in
  let row ~rng ~label spec ~target =
    match
      (S.run ?rng ~params ~spec ~instance
         ~objective:(Rentcost.Objective.min_cost ~target) ())
        .S.allocation
    with
    | Some a -> (label, a.Rentcost.Allocation.rho, a.Rentcost.Allocation.cost)
    | None -> (label, [||], -1)
  in
  List.map
    (fun target ->
      let ilp = row ~rng:None ~label:"ILP" S.Exact_ilp ~target in
      let heuristics =
        List.map
          (fun name ->
            (* A fresh fixed-seed stream per heuristic, as in the
               paper's independent per-algorithm runs. *)
            row
              ~rng:(Some (Numeric.Prng.create seed))
              ~label:(Rentcost.Heuristics.name_to_string name)
              (S.Heuristic name) ~target)
          [ Rentcost.Heuristics.H1; H2; H31; H32; H32_jump ]
      in
      (target, ilp :: heuristics))
    targets
