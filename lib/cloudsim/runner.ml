module H = Rentcost.Heuristics
module S = Rentcost.Solver

type algorithm =
  | Ilp of { time_limit : float option; node_limit : int option }
  | Heuristic of H.name

let paper_algorithms ?time_limit ?node_limit () =
  Ilp { time_limit; node_limit }
  :: List.map (fun n -> Heuristic n) [ H.H1; H.H2; H.H31; H.H32; H.H32_jump ]

let algorithm_name = function
  | Ilp _ -> "ILP"
  | Heuristic n -> H.name_to_string n

let algorithm_spec = function
  | Ilp _ -> S.Exact_ilp
  | Heuristic n -> S.Heuristic n

let algorithm_budget = function
  | Ilp { time_limit; node_limit } ->
    { Rentcost.Budget.deadline = time_limit; node_cap = node_limit; eval_cap = None }
  | Heuristic _ -> Rentcost.Budget.unlimited

type measurement = {
  config : int;
  target : int;
  algorithm : string;
  cost : int;
  proved_optimal : bool;
  telemetry : S.telemetry;
}

let solve_one ~rng ~params instance ~target alg =
  (* All timing, node/evaluation accounting and ILP-timeout fallback
     live in [Solver.run]; the runner only labels rows. *)
  let o =
    S.run ~budget:(algorithm_budget alg) ~rng ~params
      ~spec:(algorithm_spec alg) ~instance
      ~objective:(Rentcost.Objective.min_cost ~target) ()
  in
  match o.S.allocation with
  | Some a ->
    (a.Rentcost.Allocation.cost, o.S.status = S.Optimal, o.S.telemetry)
  | None ->
    (* Unreachable for target >= 0: the rental problem always has a
       feasible point and the solver degrades rather than giving up. *)
    assert false

let run_instance ~rng ~config problem ~targets ~algorithms ~params =
  (* One compile serves the whole targets × algorithms grid. *)
  let instance = Rentcost.Instance.compile problem in
  List.concat_map
    (fun target ->
      List.map
        (fun alg ->
          let alg_rng = Numeric.Prng.split rng in
          let cost, proved_optimal, telemetry =
            solve_one ~rng:alg_rng ~params instance ~target alg
          in
          { config; target; algorithm = algorithm_name alg; cost;
            proved_optimal; telemetry })
        algorithms)
    targets

let sweep ?(progress = fun _ -> ()) ~seed ~configs gp cp ~targets ~algorithms ~params =
  let rng = Numeric.Prng.create seed in
  List.concat_map
    (fun config ->
      let instance_rng = Numeric.Prng.split rng in
      let problem = Generator.problem ~rng:instance_rng gp cp in
      let ms =
        run_instance ~rng:instance_rng ~config problem ~targets ~algorithms ~params
      in
      progress config;
      ms)
    (List.init configs Fun.id)
