(** Experiment driver: runs a set of algorithms over generated
    configurations and a sweep of target throughputs, recording cost
    and per-solve telemetry — the OCaml counterpart of the paper's
    Python "cloud renting simulator" (§ VIII-A).

    Every solve goes through {!Rentcost.Solver.solve}, so rows carry
    the engine's own telemetry (wall time, pivots, nodes, oracle
    evaluations) rather than runner-side stopwatch readings, and an
    ILP whose budget expires degrades to its incumbent instead of
    failing the row. *)

(** An algorithm entry: the exact ILP (optionally capped, as in the
    paper's Figure 8) or one of the § VI heuristics. A [node_limit]
    keeps capped runs deterministic across machines; a [time_limit]
    matches the paper's wall-clock cap. *)
type algorithm =
  | Ilp of { time_limit : float option; node_limit : int option }
  | Heuristic of Rentcost.Heuristics.name

(** The standard line-up of the paper's plots: ILP first, then
    H1, H2, H31, H32, H32Jump. (H0 is kept out, as in the paper's
    figures.) *)
val paper_algorithms :
  ?time_limit:float -> ?node_limit:int -> unit -> algorithm list

val algorithm_name : algorithm -> string

(** The {!Rentcost.Solver.spec} an entry runs under. *)
val algorithm_spec : algorithm -> Rentcost.Solver.spec

(** The {!Rentcost.Budget.t} an entry is capped with. *)
val algorithm_budget : algorithm -> Rentcost.Budget.t

(** One solve outcome. *)
type measurement = {
  config : int;  (** configuration (instance) index *)
  target : int;  (** target throughput ρ *)
  algorithm : string;
  cost : int;
  proved_optimal : bool;  (** true for ILP runs that proved optimality *)
  telemetry : Rentcost.Solver.telemetry;
      (** engine-reported effort: wall time, simplex pivots,
          branch-and-bound nodes, cost-oracle evaluations *)
}

(** [run_instance ~rng ~config problem ~targets ~algorithms ~params]
    solves one instance for every target and algorithm. Stochastic
    heuristics receive a fresh split of [rng] per solve, so adding or
    reordering algorithms does not perturb other algorithms' draws. *)
val run_instance :
  rng:Numeric.Prng.t ->
  config:int ->
  Rentcost.Problem.t ->
  targets:int list ->
  algorithms:algorithm list ->
  params:Rentcost.Heuristics.params ->
  measurement list

(** [sweep ~seed ~configs gp cp ~targets ~algorithms ~params] generates
    [configs] random instances and runs the full grid, reproducing a
    paper experiment. The instance stream is deterministic in [seed]. *)
val sweep :
  ?progress:(int -> unit) ->
  seed:int ->
  configs:int ->
  Generator.graph_params ->
  Generator.cloud_params ->
  targets:int list ->
  algorithms:algorithm list ->
  params:Rentcost.Heuristics.params ->
  measurement list
