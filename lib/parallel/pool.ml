(* Work-stealing domain pool. See pool.mli for the contract.

   Layout: one FIFO queue + mutex per lane (lane 0 = the caller,
   lanes 1.. = spawned domains). Submission round-robins over lanes
   with an atomic counter; execution pops the own lane first, then
   scans the others (a steal). Idle workers sleep on one shared
   condition variable; submitters signal it after every push. The
   lost-wakeup guard is the classic re-check: a worker only waits
   while holding the sleep mutex after a full scan came up empty, and
   submitters signal under that same mutex, so a push either lands
   before the scan (found) or its signal lands after the wait began
   (wakes it). *)

type task = unit -> unit

type lane = { lq : task Queue.t; lm : Mutex.t }

type t = {
  lanes : lane array;
  mutable workers : unit Domain.t list;  (* set once, just after create *)
  stop : bool Atomic.t;
  sleep_m : Mutex.t;
  sleep_c : Condition.t;
  rr : int Atomic.t;  (* round-robin submission cursor *)
  depth : int Atomic.t;  (* queued (unstarted) tasks across lanes *)
  shuffle : Numeric.Prng.t option;  (* test hook, see mli *)
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable state : 'a state;
}

let tasks_counter = Telemetry.counter Telemetry.parallel_tasks

let steals_counter = Telemetry.counter Telemetry.parallel_steals

let depth_hist =
  Telemetry.histogram Telemetry.parallel_queue_depth
    ~bounds:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]

let domains t = Array.length t.lanes

let pop_lane t i =
  let l = t.lanes.(i) in
  Mutex.lock l.lm;
  let r = if Queue.is_empty l.lq then None else Some (Queue.pop l.lq) in
  Mutex.unlock l.lm;
  if r <> None then Atomic.decr t.depth;
  r

(* Pop the own lane, else steal round-robin from the others. *)
let try_pop t ~lane =
  match pop_lane t lane with
  | Some _ as r -> r
  | None ->
    let n = Array.length t.lanes in
    let rec steal k =
      if k >= n then None
      else
        match pop_lane t ((lane + k) mod n) with
        | Some _ as r ->
          Telemetry.bump steals_counter;
          r
        | None -> steal (k + 1)
    in
    steal 1

let rec worker_loop t ~lane =
  if not (Atomic.get t.stop) then begin
    (match try_pop t ~lane with
     | Some task -> task ()
     | None ->
       Mutex.lock t.sleep_m;
       if (not (Atomic.get t.stop)) && Atomic.get t.depth = 0 then
         Condition.wait t.sleep_c t.sleep_m;
       Mutex.unlock t.sleep_m);
    worker_loop t ~lane
  end

let create ?shuffle ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let lanes =
    Array.init domains (fun _ -> { lq = Queue.create (); lm = Mutex.create () })
  in
  let pool =
    { lanes;
      workers = [];
      stop = Atomic.make false;
      sleep_m = Mutex.create ();
      sleep_c = Condition.create ();
      rr = Atomic.make 0;
      depth = Atomic.make 0;
      shuffle }
  in
  pool.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool ~lane:(i + 1)));
  pool

let submit t task =
  if Atomic.get t.stop then invalid_arg "Pool.async: pool is shut down";
  let lane =
    t.lanes.(Atomic.fetch_and_add t.rr 1 mod Array.length t.lanes)
  in
  Mutex.lock lane.lm;
  Queue.push task lane.lq;
  Mutex.unlock lane.lm;
  let d = 1 + Atomic.fetch_and_add t.depth 1 in
  Telemetry.bump tasks_counter;
  Telemetry.observe depth_hist (float_of_int d);
  Mutex.lock t.sleep_m;
  Condition.signal t.sleep_c;
  Mutex.unlock t.sleep_m

let async t f =
  let p = { pm = Mutex.create (); pc = Condition.create (); state = Pending } in
  let task () =
    let result =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock p.pm;
    p.state <- result;
    Condition.broadcast p.pc;
    Mutex.unlock p.pm
  in
  submit t task;
  p

(* Await helps: while the promise is pending, run queued tasks on the
   calling domain rather than sleeping. With ~domains:1 this is the
   only execution engine, and tasks run in strict submission order. If
   nothing is poppable the promise's task is already running on a
   worker (or done), so waiting on its condition cannot deadlock. *)
let rec await t p =
  Mutex.lock p.pm;
  let s = p.state in
  Mutex.unlock p.pm;
  match s with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
    (match try_pop t ~lane:0 with
     | Some task -> task ()
     | None ->
       Mutex.lock p.pm;
       (match p.state with
        | Pending -> Condition.wait p.pc p.pm
        | _ -> ());
       Mutex.unlock p.pm);
    await t p

let run_list t thunks =
  let promises = List.map (fun f -> async t f) thunks in
  (* Settle everything before re-raising, so no task is left running
     against deallocated caller state. *)
  let results =
    List.map
      (fun p ->
        match await t p with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ()))
      promises
  in
  List.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    results

let run_collect t thunks =
  let rm = Mutex.create () in
  let completed = ref [] in
  let promises =
    List.mapi
      (fun i f ->
        async t (fun () ->
            let r = f () in
            Mutex.lock rm;
            completed := (i, r) :: !completed;
            Mutex.unlock rm))
      thunks
  in
  List.iter (fun p -> await t p) promises;
  let arr = Array.of_list (List.rev !completed) in
  (match t.shuffle with
   | Some rng -> Numeric.Prng.shuffle rng arr
   | None -> ());
  Array.to_list arr

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    Mutex.lock t.sleep_m;
    Condition.broadcast t.sleep_c;
    Mutex.unlock t.sleep_m;
    List.iter Domain.join t.workers
  end

let with_pool ?shuffle ~domains f =
  let t = create ?shuffle ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
