(** Racing the paper's § VI heuristics (and optionally a budgeted
    MILP) across domains, with a deterministic reduction.

    The heuristics are independent randomized searches over the same
    instance — a textbook algorithm portfolio. Each strategy runs as
    one {!Rentcost.Solver.run} call on its own domain, with its
    own {!Rentcost.Instance.Oracle} (created inside the heuristic run)
    and an independently split PRNG, so strategies never share mutable
    state. The incumbents are then merged by {!reduce}: best cost
    wins, ties broken by strategy {e rank} (position in the strategy
    list). Because every strategy's trajectory is a pure function of
    its split seed, and the reduction is a total order independent of
    completion order, a fixed seed yields a {b bit-identical
    allocation regardless of domain count or finish order}.

    Seed discipline: the caller's [?rng] is never advanced. Rank 0
    runs on a copy of it — so the portfolio's incumbent is always at
    least as good as the sequential
    [Solver.run ~rng ~spec:(strategy 0)] call on the same seed —
    and ranks 1.. run on successive {!Numeric.Prng.split}s of another
    copy, derived in rank order.

    Determinism caveat: a wall-clock [deadline] in [?budget] makes
    individual heuristic runs machine- and load-dependent; use
    [eval_cap] budgets where reproducibility matters.

    Instruments: the race runs under a [parallel.portfolio] span (one
    [parallel.task] span per strategy), observes
    [parallel.portfolio_seconds] and bumps [parallel.win.<strategy>]
    for the winner. *)

type strategy =
  | Heuristic of Rentcost.Heuristics.name
  | Milp
      (** a full § V-C branch-and-bound attempt; include it only with
          a [?budget], or the race blocks on proving optimality *)

(** CLI/telemetry spelling: ["h32jump"], ["milp"], … *)
val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option

(** The {!Rentcost.Solver.spec} a strategy dispatches to. *)
val strategy_spec : strategy -> Rentcost.Solver.spec

(** All five non-trivial § VI heuristics, strongest first:
    H32Jump, H32, H31, H2, H1. Rank 0 = H32Jump means the portfolio
    dominates the solver's default heuristic incumbent by
    construction. [Milp] is not included (see {!type-strategy}). *)
val default_strategies : strategy list

(** [reduce outcomes] picks the winner from [(rank, outcome)] pairs:
    lowest allocation cost, ties broken by lowest rank. Outcomes
    without an allocation are skipped; [None] when nothing remains.
    Exposed so tests can check permutation-invariance directly. *)
val reduce :
  (int * Rentcost.Solver.outcome) list -> (int * Rentcost.Solver.outcome) option

(** [run ~target ()] races the strategies on the min-cost objective
    and returns the merged outcome — the single entry point for both
    calling conventions (pass [~instance] or [~problem], never both;
    [~problem] is compiled, under [?pricebook] when present). The
    merged [status] is [Optimal] when some strategy proved the winning
    cost optimal, [Budget_exhausted] when every strategy ran out of
    budget, and [Feasible] otherwise; the [telemetry] is
    portfolio-level — wall time of the whole race and counter deltas
    summed across all strategies (the per-strategy deltas inside a
    concurrent race are not individually meaningful), with [engine]
    reporting the winning strategy's spec.

    The racer is min-cost only: a max-throughput scenario is a binary
    search {e over} min-cost solves, which belongs to
    {!Rentcost.Solver.run} (each of whose probes could in principle
    race a portfolio — not provided here).

    @param domains size of the pool the race runs on (default 1 =
      sequential on the caller); ignored when [?pool] is given.
    @param pool run on an existing (shared) {!Pool.t} instead of
      creating a one-shot pool.
    @param strategies defaults to {!default_strategies}; must be
      non-empty. Ranks are list positions.
    @param budget, rng, params, warm_start as in
      {!Rentcost.Solver.run}, applied to {e each} strategy ([rng] per
      the seed discipline above; it is not advanced). *)
val run :
  ?budget:Rentcost.Budget.t ->
  ?rng:Numeric.Prng.t ->
  ?params:Rentcost.Heuristics.params ->
  ?warm_start:Rentcost.Allocation.t ->
  ?strategies:strategy list ->
  ?pool:Pool.t ->
  ?domains:int ->
  ?pricebook:Rentcost.Pricebook.t ->
  ?instance:Rentcost.Instance.t ->
  ?problem:Rentcost.Problem.t ->
  target:int ->
  unit ->
  Rentcost.Solver.outcome
