module P = Numeric.Prng
module Solver = Rentcost.Solver
module Heuristics = Rentcost.Heuristics
module Budget = Rentcost.Budget
module Instance = Rentcost.Instance
module Allocation = Rentcost.Allocation

type strategy = Heuristic of Heuristics.name | Milp

let strategy_spec = function
  | Heuristic n -> Solver.Heuristic n
  | Milp -> Solver.Exact_ilp

let strategy_to_string = function
  | Milp -> "milp"
  | Heuristic n -> String.lowercase_ascii (Heuristics.name_to_string n)

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "milp" | "ilp" -> Some Milp
  | s ->
    (match Solver.spec_of_string s with
     | Some (Solver.Heuristic n) -> Some (Heuristic n)
     | _ -> None)

let default_strategies =
  [ Heuristic Heuristics.H32_jump;
    Heuristic Heuristics.H32;
    Heuristic Heuristics.H31;
    Heuristic Heuristics.H2;
    Heuristic Heuristics.H1 ]

let portfolio_hist =
  Telemetry.histogram Telemetry.parallel_portfolio_seconds
    ~bounds:[| 0.0001; 0.001; 0.01; 0.1; 1.0; 10.0 |]

(* Winner = lowest cost, ties by lowest rank. Ranks are distinct, so
   the order is total and the minimum unique — any completion order
   (any permutation of [outcomes]) reduces to the same winner. *)
let reduce outcomes =
  let cost (_, (o : Solver.outcome)) =
    match o.Solver.allocation with
    | Some a -> Some a.Allocation.cost
    | None -> None
  in
  List.fold_left
    (fun best entry ->
      match (cost entry, best) with
      | None, _ -> best
      | Some _, None -> Some entry
      | Some c, Some b ->
        let cb = Option.get (cost b) in
        if c < cb || (c = cb && fst entry < fst b) then Some entry else best)
    None outcomes

(* Per-rank PRNGs, derived without advancing the caller's [rng]:
   rank 0 runs on a plain copy (so the portfolio provably contains the
   sequential rank-0 run), ranks 1.. on successive splits of a second
   copy. An explicit loop fixes the derivation order — Array.init's
   evaluation order is unspecified and would make rank seeds
   machine-dependent. *)
let strategy_rngs ~rng n =
  let rngs = Array.make n (P.copy rng) in
  let parent = P.copy rng in
  for k = 1 to n - 1 do
    rngs.(k) <- P.split parent
  done;
  rngs

let run ?budget ?rng ?params ?warm_start ?(strategies = default_strategies)
    ?pool ?(domains = 1) ?pricebook ?instance ?problem ~target () =
  let instance =
    Instance.for_solve ~who:"Portfolio.run" ?pricebook ?instance ?problem ()
  in
  if strategies = [] then invalid_arg "Portfolio.run: no strategies";
  let rng = match rng with Some r -> r | None -> P.create 0x5EED in
  (* 0x5EED matches Heuristics.default_seed, so an rng-less portfolio
     rank 0 retraces an rng-less Solver.run. *)
  let n = List.length strategies in
  let rngs = strategy_rngs ~rng n in
  let t0 = Unix.gettimeofday () in
  let evals0 = Telemetry.value Telemetry.heuristic_evals in
  let pivots0 = Telemetry.value Telemetry.lp_pivots in
  let nodes0 = Telemetry.value Telemetry.milp_nodes in
  let race pool =
    Pool.run_collect pool
      (List.mapi
         (fun rank strat () ->
           Telemetry.Span.with_span
             ~attrs:
               [ ("strategy", strategy_to_string strat);
                 ("rank", string_of_int rank) ]
             "parallel.task"
             (fun () ->
               Solver.run ?budget ~rng:rngs.(rank) ?params ?warm_start
                 ~spec:(strategy_spec strat) ~instance
                 ~objective:(Rentcost.Objective.min_cost ~target) ()))
         strategies)
  in
  let run () =
    match pool with
    | Some p -> race p
    | None -> Pool.with_pool ~domains race
  in
  let completed =
    Telemetry.Span.with_span
      ~attrs:
        [ ("domains",
           string_of_int
             (match pool with Some p -> Pool.domains p | None -> domains));
          ("strategies", String.concat "," (List.map strategy_to_string strategies))
        ]
      "parallel.portfolio" run
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  Telemetry.observe portfolio_hist wall_time;
  let outcomes = List.map (fun (rank, o) -> (rank, o)) completed in
  let telemetry_of engine warm_started =
    { Solver.engine;
      wall_time;
      evaluations = Telemetry.value Telemetry.heuristic_evals - evals0;
      pivots = Telemetry.value Telemetry.lp_pivots - pivots0;
      nodes = Telemetry.value Telemetry.milp_nodes - nodes0;
      pruned_recipes = Instance.num_pruned instance;
      warm_started }
  in
  match reduce outcomes with
  | None ->
    (* Only reachable when every strategy reported Infeasible, which a
       non-negative target never does. *)
    { Solver.status = Solver.Infeasible;
      allocation = None;
      throughput = 0;
      telemetry = telemetry_of (strategy_spec (List.hd strategies)) false;
      convergence = [] }
  | Some (rank, winner) ->
    let strat = List.nth strategies rank in
    Telemetry.bump
      (Telemetry.counter (Telemetry.parallel_win (strategy_to_string strat)));
    let winning_cost =
      match winner.Solver.allocation with
      | Some a -> a.Allocation.cost
      | None -> assert false
    in
    (* Optimal if *some* strategy proved the winning cost optimal
       (e.g. a budgeted MILP that finished), even if a lower rank tied
       it; Budget_exhausted only when every strategy was cut short. *)
    let proven_optimal =
      List.exists
        (fun (_, (o : Solver.outcome)) ->
          o.Solver.status = Solver.Optimal
          && match o.Solver.allocation with
             | Some a -> a.Allocation.cost = winning_cost
             | None -> false)
        outcomes
    in
    let all_exhausted =
      List.for_all
        (fun (_, (o : Solver.outcome)) ->
          o.Solver.status = Solver.Budget_exhausted)
        outcomes
    in
    let status =
      if proven_optimal then Solver.Optimal
      else if all_exhausted then Solver.Budget_exhausted
      else Solver.Feasible
    in
    { Solver.status;
      allocation = winner.Solver.allocation;
      throughput = winner.Solver.throughput;
      telemetry =
        telemetry_of winner.Solver.telemetry.Solver.engine
          winner.Solver.telemetry.Solver.warm_started;
      (* Each worker's Solver.run collected on its own domain; surface
         the winning strategy's timeline. *)
      convergence = winner.Solver.convergence }
