(** A fixed-size pool of worker domains with work-stealing task
    submission.

    The pool owns [domains - 1] spawned domains; the caller's domain
    is the pool's lane 0 and participates in execution whenever it
    blocks in {!await} (it "helps": pops and runs queued tasks instead
    of sleeping). [~domains:1] therefore spawns nothing and runs every
    task on the caller, in submission order — the sequential
    degeneration the determinism tests pin down.

    Tasks are submitted round-robin across per-lane FIFO queues; an
    idle lane first drains its own queue, then steals from the others
    (bumping the [parallel.steals] counter). Submission order is
    preserved per lane but not globally — callers that need a
    deterministic result under any interleaving must make their
    reduction order-insensitive (see {!Portfolio}).

    Instruments: every submission bumps [parallel.tasks] and samples
    the queued-task count into the [parallel.queue_depth] histogram;
    stolen executions bump [parallel.steals].

    A pool is cheap (a few mutexes and queues) but spawning domains is
    not; create one pool per batch of related work, or share one and
    {!shutdown} it at the end. *)

type t

(** A handle on a submitted task's eventual result. *)
type 'a promise

(** [create ~domains ()] spawns [domains - 1] worker domains.

    @param shuffle a {e test hook}: when set, {!run_collect} shuffles
      its completion-ordered results with this PRNG before returning,
      so tests can prove a reduction ignores completion order without
      needing real parallel nondeterminism (impossible to force on a
      single-core machine).
    @raise Invalid_argument when [domains < 1]. *)
val create : ?shuffle:Numeric.Prng.t -> domains:int -> unit -> t

(** Lanes in the pool ([domains] as created, including the caller). *)
val domains : t -> int

(** [async t f] queues [f] for execution and returns its promise.
    @raise Invalid_argument after {!shutdown}. *)
val async : t -> (unit -> 'a) -> 'a promise

(** [await t p] returns the promise's result, running queued tasks on
    the calling domain while it waits. Re-raises (with the original
    backtrace) if the task raised. *)
val await : t -> 'a promise -> 'a

(** [run_list t thunks] runs all thunks and returns their results in
    {e submission} order. The first raised exception (in submission
    order) is re-raised after all tasks settle. *)
val run_list : t -> (unit -> 'a) list -> 'a list

(** [run_collect t thunks] runs all thunks and returns
    [(index, result)] pairs in {e completion} order — the order the
    tasks actually finished, which under real parallelism depends on
    scheduling. When the pool was created with [?shuffle], the list is
    additionally shuffled. Callers must not depend on the order; the
    point is to feed order-insensitive reductions and to test that
    they are. *)
val run_collect : t -> (unit -> 'a) list -> (int * 'a) list

(** Stop the workers and join them. Queued-but-unstarted tasks are
    discarded (their promises never settle) — await what you need
    first. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ?shuffle ~domains f] is [f pool] with a guaranteed
    {!shutdown}. *)
val with_pool : ?shuffle:Numeric.Prng.t -> domains:int -> (t -> 'a) -> 'a
