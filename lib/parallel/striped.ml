type 'a t = { locks : Mutex.t array; shards : 'a array }

let create ~stripes make =
  if stripes < 1 then invalid_arg "Striped.create: stripes < 1";
  { locks = Array.init stripes (fun _ -> Mutex.create ());
    shards = Array.init stripes make }

let stripes t = Array.length t.shards

let with_stripe t i f =
  let i = i mod Array.length t.shards in
  let i = if i < 0 then i + Array.length t.shards else i in
  Mutex.lock t.locks.(i);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.locks.(i))
    (fun () -> f t.shards.(i))

let with_key t ~key f = with_stripe t (Hashtbl.hash key) f

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to Array.length t.shards - 1 do
    acc := with_stripe t i (fun shard -> f !acc shard)
  done;
  !acc
