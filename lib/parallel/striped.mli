(** Sharded-mutex wrapper: [n] independent shards, each its own value
    behind its own lock.

    The parallel service workers share mutable state that the
    underlying modules ([Rentcost_service.Cache], [Hashtbl]) do not
    protect themselves. A single global mutex would serialize every
    worker on every access; striping hashes the access key to one of
    [n] shards so accesses to different shards proceed in parallel and
    only same-shard accesses contend. With [stripes:1] this degrades
    to exactly the single-mutex wrapper — the sequential code path the
    daemon uses for [--workers 1].

    Shard assignment is by [Hashtbl.hash] of the string key, so equal
    keys always reach the same shard — per-key operations (a cache
    lookup for one fingerprint, a registry insert for one id) are
    linearizable. Cross-shard reads ({!fold}) lock shards one at a
    time and therefore see a point-in-time view of each shard but not
    of the whole — fine for stats, not for invariants. *)

type 'a t

(** [create ~stripes make] builds a striped value of [stripes] shards,
    shard [i] initialized to [make i].
    @raise Invalid_argument when [stripes < 1]. *)
val create : stripes:int -> (int -> 'a) -> 'a t

val stripes : 'a t -> int

(** [with_key t ~key f] runs [f shard] under the lock of the shard
    [key] hashes to. Equal keys always hit the same shard. *)
val with_key : 'a t -> key:string -> ('a -> 'b) -> 'b

(** [with_stripe t i f] runs [f] under the lock of shard
    [i mod stripes t] — for callers that pick their own placement. *)
val with_stripe : 'a t -> int -> ('a -> 'b) -> 'b

(** [fold t init f] folds [f] over every shard, locking one shard at a
    time (never two at once, so it cannot deadlock against
    {!with_key}). The result is not an atomic snapshot of the whole
    structure. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
