(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly
    positive and numerator/denominator are coprime. All operations are
    pure and exact — there is no rounding anywhere, which is what makes
    the simplex ({!module:Lp}) and branch-and-bound ({!module:Milp})
    solvers immune to the numerical-tolerance issues of floating-point
    LP codes. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Construction} *)

(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_bigint n] is [n/1]. *)
val of_bigint : Bigint.t -> t

(** [of_int n] is [n/1]. *)
val of_int : int -> t

(** [of_ints num den] is [num/den]. @raise Division_by_zero when [den = 0]. *)
val of_ints : int -> int -> t

(** [of_string s] parses ["n"], ["n/d"] or a decimal ["i.f"] literal. *)
val of_string : string -> t

(** {1 Access} *)

(** Canonical numerator (carries the sign). *)
val num : t -> Bigint.t

(** Canonical denominator, always positive. *)
val den : t -> Bigint.t

(** [to_small t] is [Some (n, d)] when [t = n/d] lives in the native
    small representation (|n| < 2{^30}, 0 < d < 2{^30}, coprime), and
    [None] when the value has promoted to Bigint. This is the exact
    value range of the {!Fix64} fast kernel, whose [of_rat] uses it to
    inject values without a Bigint round trip. *)
val to_small : t -> (int * int) option

val to_float : t -> float
val to_string : t -> string

(** {1 Queries} *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

(** Multiplicative inverse. @raise Division_by_zero on zero. *)
val inv : t -> t

(** {1 Rounding} *)

(** Greatest integer [<= t]. *)
val floor : t -> Bigint.t

(** Least integer [>= t]. *)
val ceil : t -> Bigint.t

(** Fractional part [t - floor t], in [0, 1). *)
val frac : t -> t

(** {1 Infix operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
