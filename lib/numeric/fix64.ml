(* The overflow-checked native-int fast kernel.

   A value is one OCaml immediate int packing a canonical rational:
   numerator in the high bits ([asr 30]), denominator in the low 30
   bits, with |n| < 2^30 and 0 < d < 2^30 — exactly the range of
   {!Rat}'s small representation, so any cross product (n1*d2, n1*n2,
   ...) fits the 63-bit native int and the sum of two such products
   still fits. Where [Rat] would leave this range and promote to
   Bigint, [Fix64] raises {!Kernel.Overflow} instead; inside the range
   every operation is the same reduction [Rat] performs, so a
   computation that completes on this kernel produces bit-identical
   values to the exact one.

   What makes it fast is what it does NOT do: no heap block per value
   (Rat's small path still allocates a two-field constructor per
   result), no write barrier pressure from arrays of pointers, no
   representation dispatch. Simplex tableaus over [t] are flat int
   arrays and pivoting allocates nothing. *)

(* 2^30, the exclusive bound on |numerator| and denominator (matches
   Rat's small range so overflow fires exactly where Rat goes big). *)
let bound = 1 lsl 30
let dmask = bound - 1

type t = int

let pack n d = (n lsl 30) lor d
let num t = t asr 30
let den t = t land dmask

let name = "fix64"
let zero = pack 0 1
let one = pack 1 1
let minus_one = pack (-1) 1

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Canonicalize n/d from 63-bit-safe ints (d <> 0). The same
   normalization as [Rat.make_small], with [raise Overflow] standing
   in for the Bigint promotion. *)
let make n d =
  let n, d = if d < 0 then (-n, -d) else (n, d) in
  if n = 0 then zero
  else begin
    let g = gcd_int (abs n) d in
    let n = n / g and d = d / g in
    if abs n < bound && d < bound then pack n d else raise Kernel.Overflow
  end

(* Pack an already-canonical n/d, raising where it leaves the range.
   Callers guarantee coprimality and d > 0, so no gcd runs here. *)
let check_pack n d =
  if abs n < bound && d < bound then pack n d else raise Kernel.Overflow

let of_int n = if abs n < bound then pack n 1 else raise Kernel.Overflow
let of_ints n d = if d = 0 then raise Division_by_zero else make n d

let of_rat r =
  (* Rat's small representation has exactly this range and canonical
     form, so injection is a repack — no Bigint round trip, no gcd. *)
  match Rat.to_small r with
  | Some (n, d) -> pack n d
  | None -> raise Kernel.Overflow

let to_rat t = Rat.of_ints (num t) (den t)

let sign t = compare (num t) 0
let is_zero t = num t = 0
let is_integer t = den t = 1

(* Cross products stay under 2^60 by the range invariant. *)
let compare a b = compare (num a * den b) (num b * den a)
let equal (a : t) (b : t) = a = b
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = pack (- num t) (den t)
let abs t = if num t < 0 then neg t else t

(* The arithmetic below never runs a gcd on cross products. Because
   both operands are canonical, the reduced result can be built from
   gcds of the (small) inputs alone — Knuth, TAOCP 4.5.1 — and the
   canonical form is unique, so results and the overflow condition are
   identical to reducing the full products the way [Rat] does; the
   small gcds just converge in far fewer iterations. Integer operands
   (d = 1, the bulk of simplex traffic before a pivot introduces
   fractions) skip the gcd entirely. *)

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else
    let n1 = num a and d1 = den a and n2 = num b and d2 = den b in
    if d1 = 1 && d2 = 1 then check_pack (n1 + n2) 1
    else
      (* |n*d| < 2^60, sum < 2^61: no native overflow below. *)
      let g = gcd_int d1 d2 in
      if g = 1 then begin
        (* Coprime denominators: gcd (n1 d2 + n2 d1, d1 d2) = 1. *)
        let n = (n1 * d2) + (n2 * d1) in
        if n = 0 then zero else check_pack n (d1 * d2)
      end
      else begin
        let d1' = d1 / g and d2' = d2 / g in
        let t = (n1 * d2') + (n2 * d1') in
        if t = 0 then zero
        else begin
          (* t is coprime to d1' and d2'; only g can divide it.
             [Stdlib.abs]: t is a raw int here, not a packed value. *)
          let h = gcd_int (Stdlib.abs t) g in
          check_pack (t / h) (d1' * (d2 / h))
        end
      end

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else
    let n1 = num a and d1 = den a and n2 = num b and d2 = den b in
    if d1 = 1 && d2 = 1 then check_pack (n1 * n2) 1
    else
      (* Cross-reduce: gcd (n1 n2, d1 d2) = gcd (n1, d2) gcd (n2, d1)
         when both operands are canonical. *)
      let g1 = gcd_int (Stdlib.abs n1) d2
      and g2 = gcd_int (Stdlib.abs n2) d1 in
      check_pack (n1 / g1 * (n2 / g2)) (d1 / g2 * (d2 / g1))

let inv t =
  let n = num t in
  if n = 0 then raise Division_by_zero
  else if n < 0 then pack (- den t) (-n)
  else pack (den t) n

let div a b = mul a (inv b)

(* Floor division on native ints (round toward negative infinity). *)
let fdiv_int a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(* |floor t| <= |num t| < bound: rounding never overflows. *)
let floor t = pack (fdiv_int (num t) (den t)) 1
let ceil t = pack (- fdiv_int (- num t) (den t)) 1
let frac t = sub t (floor t)

let to_string t =
  let n = num t and d = den t in
  if d = 1 then string_of_int n else string_of_int n ^ "/" ^ string_of_int d
