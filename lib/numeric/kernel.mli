(** The numeric kernel the LP/MILP stack is parameterized over.

    A kernel is an {e exact} rational arithmetic with an optional
    range restriction. The contract every implementation obeys:

    - {b No rounding, ever.} Each operation either returns the
      mathematically exact rational result or raises {!Overflow}. A
      kernel is allowed to be partial, never approximate.
    - {b Canonical values.} Results are kept with positive denominator
      and coprime numerator/denominator, so [equal] and [compare]
      agree with mathematical equality and order.
    - {b Exact round-trip.} [to_rat] is total and lossless;
      [of_rat r] either represents [r] exactly or raises {!Overflow}.

    Under this contract a solver functorized over a kernel is
    bit-for-bit deterministic across kernels: on any run that raises
    no {!Overflow}, every intermediate value, comparison and pivot
    choice equals the {!Exact} kernel's, so the final result is
    identical. That is what lets {!Rentcost.Ilp} run the fast
    {!Fix64} kernel first and transparently restart on {!Exact} only
    when {!Overflow} fires (see DESIGN.md, "Numeric kernels"). *)

(** Raised by range-restricted kernels when an exact result is not
    representable. Never raised by {!Exact}. *)
exception Overflow

module type S = sig
  type t

  (** Kernel identity, recorded as the [lp.kernel] span attribute
      (e.g. ["rat"], ["fix64"]). *)
  val name : string

  (** {1 Constants and conversion} *)

  val zero : t
  val one : t
  val minus_one : t

  (** @raise Overflow when the integer is out of range. *)
  val of_int : int -> t

  (** [of_ints n d] is [n/d] in canonical form.
      @raise Division_by_zero when [d = 0].
      @raise Overflow when the reduced value is out of range. *)
  val of_ints : int -> int -> t

  (** Exact injection from {!Rat}. @raise Overflow when out of range. *)
  val of_rat : Rat.t -> t

  (** Exact and total: every kernel value is a rational. *)
  val to_rat : t -> Rat.t

  (** {1 Queries and comparison} *)

  val sign : t -> int
  val is_zero : t -> bool
  val is_integer : t -> bool
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t

  (** {1 Arithmetic}

      Exact; each may raise {!Overflow} on a result out of range.
      [div] and [inv] raise [Division_by_zero] on a zero divisor. *)

  val neg : t -> t
  val abs : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val inv : t -> t

  (** {1 Rounding}

      [floor]/[ceil] return integer-valued kernel elements; [frac] is
      [t - floor t], in [0, 1). *)

  val floor : t -> t
  val ceil : t -> t
  val frac : t -> t

  val to_string : t -> string
end

(** The unrestricted kernel: plain {!Rat} arithmetic. Total — never
    raises {!Overflow}. *)
module Exact : S with type t = Rat.t
