(** The overflow-checked native-int fast kernel.

    A {!Kernel.S} implementation that packs a canonical rational —
    numerator and denominator both bounded by {!bound} — into a single
    unboxed OCaml int. The range mirrors {!Rat}'s small
    representation exactly, so {!Kernel.Overflow} fires precisely
    where [Rat] would fall back to Bigint arithmetic; inside the range
    the two kernels compute identical canonical values. Arithmetic
    allocates nothing, which is where the fast path's speedup over
    [Rat] (one heap block per result) comes from — see the [numeric]
    bench group and DESIGN.md, "Numeric kernels".

    Raises {!Kernel.Overflow} whenever an exact result (or an injected
    constant) has |numerator| or denominator [>= bound]. *)

include Kernel.S

(** The exclusive magnitude bound on numerator and denominator
    ([2{^30}]) — the overflow boundary directed tests probe. *)
val bound : int
