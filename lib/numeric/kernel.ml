(* The numeric-kernel abstraction the LP/MILP stack is functorized
   over. A kernel is an exact rational arithmetic: implementations may
   restrict the representable range (raising [Overflow] outside it)
   but never round — whatever value a kernel returns is the
   mathematically exact result, so two kernels that both complete a
   computation compute the same rationals, make the same comparisons
   and therefore drive the simplex through the same pivots. *)

exception Overflow

module type S = sig
  type t

  val name : string
  val zero : t
  val one : t
  val minus_one : t
  val of_int : int -> t
  val of_ints : int -> int -> t
  val of_rat : Rat.t -> t
  val to_rat : t -> Rat.t
  val sign : t -> int
  val is_zero : t -> bool
  val is_integer : t -> bool
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val inv : t -> t
  val floor : t -> t
  val ceil : t -> t
  val frac : t -> t
  val to_string : t -> string
end

module Exact : S with type t = Rat.t = struct
  type t = Rat.t

  let name = "rat"
  let zero = Rat.zero
  let one = Rat.one
  let minus_one = Rat.minus_one
  let of_int = Rat.of_int
  let of_ints = Rat.of_ints
  let of_rat r = r
  let to_rat r = r
  let sign = Rat.sign
  let is_zero = Rat.is_zero
  let is_integer = Rat.is_integer
  let compare = Rat.compare
  let equal = Rat.equal
  let min = Rat.min
  let max = Rat.max
  let neg = Rat.neg
  let abs = Rat.abs
  let add = Rat.add
  let sub = Rat.sub
  let mul = Rat.mul
  let div = Rat.div
  let inv = Rat.inv
  let floor r = Rat.of_bigint (Rat.floor r)
  let ceil r = Rat.of_bigint (Rat.ceil r)
  let frac = Rat.frac
  let to_string = Rat.to_string
end
