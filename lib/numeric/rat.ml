(* Canonical rationals: den > 0, gcd (num, den) = 1, zero = 0/1.

   Two representations:
   - [S (n, d)]: native ints with |n| < 2^30 and 0 < d < 2^30, so that
     any cross product (n1*d2, n1*n2, ...) fits in OCaml's 63-bit int
     and sums of two such products still fit. This covers virtually
     every value appearing in the simplex tableaux of this project and
     avoids Bigint allocation on the hot path.
   - [B (n, d)]: exact Bigint fallback, entered automatically when a
     result leaves the small range. Correctness never depends on which
     representation is in use. *)

module Bi = Bigint

type t =
  | S of int * int
  | B of Bi.t * Bi.t

let small_max = 1 lsl 30

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Build a canonical small rational from ints with |n|, d arbitrary
   63-bit-safe values (d <> 0). *)
let make_small n d =
  let n, d = if d < 0 then (-n, -d) else (n, d) in
  if n = 0 then S (0, 1)
  else begin
    let g = gcd_int (abs n) d in
    let n = n / g and d = d / g in
    if abs n < small_max && d < small_max then S (n, d)
    else B (Bi.of_int n, Bi.of_int d)
  end

let make_big n d =
  if Bi.is_zero d then raise Division_by_zero;
  if Bi.is_zero n then S (0, 1)
  else begin
    let n, d = if Bi.is_negative d then (Bi.neg n, Bi.neg d) else (n, d) in
    let g = Bi.gcd n d in
    let n = if Bi.is_one g then n else Bi.div n g in
    let d = if Bi.is_one g then d else Bi.div d g in
    match (Bi.to_int n, Bi.to_int d) with
    | Some n', Some d' when abs n' < small_max && d' < small_max -> S (n', d')
    | _ -> B (n, d)
  end

let make n d = make_big n d

let zero = S (0, 1)
let one = S (1, 1)
let minus_one = S (-1, 1)

let of_int n =
  if abs n < small_max then S (n, 1) else B (Bi.of_int n, Bi.one)

let of_bigint n =
  match Bi.to_int n with
  | Some n' when abs n' < small_max -> S (n', 1)
  | _ -> B (n, Bi.one)

let of_ints n d = if d = 0 then raise Division_by_zero else make_small n d

let num = function S (n, _) -> Bi.of_int n | B (n, _) -> n
let den = function S (_, d) -> Bi.of_int d | B (_, d) -> d
let to_small = function S (n, d) -> Some (n, d) | B _ -> None

let sign = function S (n, _) -> compare n 0 | B (n, _) -> Bi.sign n
let is_zero = function S (0, _) -> true | S _ -> false | B (n, _) -> Bi.is_zero n
let is_integer = function S (_, 1) -> true | S _ -> false | B (_, d) -> Bi.is_one d

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | B (n, d) -> Bi.to_float n /. Bi.to_float d

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | B (n, d) ->
    if Bi.is_one d then Bi.to_string n else Bi.to_string n ^ "/" ^ Bi.to_string d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let n = Bi.of_string (String.sub s 0 i) in
    let d = Bi.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make_big n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bi.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
       let digits = String.length frac_part in
       let scale = Bi.pow (Bi.of_int 10) digits in
       let neg = String.length int_part > 0 && int_part.[0] = '-' in
       let ip =
         if int_part = "" || int_part = "-" || int_part = "+" then Bi.zero
         else Bi.of_string int_part
       in
       let fp = if frac_part = "" then Bi.zero else Bi.of_string frac_part in
       let n = Bi.add (Bi.mul (Bi.abs ip) scale) fp in
       make_big (if neg then Bi.neg n else n) scale)

(* Promote to the Bigint view. *)
let big_parts = function
  | S (n, d) -> (Bi.of_int n, Bi.of_int d)
  | B (n, d) -> (n, d)

let add a b =
  match (a, b) with
  | S (0, _), x | x, S (0, _) -> x
  | S (n1, d1), S (n2, d2) ->
    (* |n*d| < 2^60, sum < 2^61: no overflow. *)
    make_small ((n1 * d2) + (n2 * d1)) (d1 * d2)
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    make_big (Bi.add (Bi.mul n1 d2) (Bi.mul n2 d1)) (Bi.mul d1 d2)

let neg = function
  | S (n, d) -> S (-n, d)
  | B (n, d) -> B (Bi.neg n, d)

let sub a b = add a (neg b)
let abs t = if sign t < 0 then neg t else t

let mul a b =
  match (a, b) with
  | S (0, _), _ | _, S (0, _) -> zero
  | S (n1, d1), S (n2, d2) -> make_small (n1 * n2) (d1 * d2)
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    make_big (Bi.mul n1 n2) (Bi.mul d1 d2)

let inv = function
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n < 0 then S (-d, -n) else S (d, n)
  | B (n, d) ->
    if Bi.is_zero n then raise Division_by_zero
    else if Bi.is_negative n then B (Bi.neg d, Bi.neg n)
    else B (d, n)

let div a b = mul a (inv b)

let compare a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> compare (n1 * d2) (n2 * d1)
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    Bi.compare (Bi.mul n1 d2) (Bi.mul n2 d1)

let equal a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> n1 = n2 && d1 = d2
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    Bi.equal n1 n2 && Bi.equal d1 d2

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Floor division on native ints (round toward negative infinity). *)
let fdiv_int a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor = function
  | S (n, d) -> Bi.of_int (fdiv_int n d)
  | B (n, d) -> Bi.fdiv n d

let ceil = function
  | S (n, d) -> Bi.of_int (-fdiv_int (-n) d)
  | B (n, d) -> Bi.cdiv n d

let frac t = sub t (of_bigint (floor t))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
