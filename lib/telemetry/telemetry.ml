(* The observability substrate: counters, histograms and spans shared
   by every layer of the solver stack. See telemetry.mli for the
   contract; the implementation notes below cover what the interface
   does not promise.

   Thread-safety: the *registries* (name -> counter / histogram) are
   protected by one mutex, so find-or-create during a concurrent
   snapshot cannot corrupt the tables — [all] and [histograms] copy
   under the lock and hand out plain lists. The *recording* paths
   (bump, add, observe, span push) are deliberately lock-free: they
   are single-writer in every current embedding (the daemon is
   single-threaded), and under true parallel writers an increment may
   be lost but nothing can crash or hang. *)

let enabled_flag = ref true

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

(* The clock used for spans. Wall clock by default; swappable so tests
   can drive deterministic timings. *)
let clock = ref Unix.gettimeofday

let set_clock f = clock := f

let now () = !clock ()

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* --- counters --- *)

type counter = { mutable value : int }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = { value = 0 } in
        Hashtbl.add registry name c;
        c)

let bump c = if !enabled_flag then c.value <- c.value + 1

let add c n = if !enabled_flag then c.value <- c.value + n

let read c = c.value

let value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with Some c -> c.value | None -> 0)

let all () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) registry []))

(* --- histograms --- *)

type histogram = {
  hist_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = |bounds| + 1; last is overflow *)
  mutable sum : float;
  mutable observations : int;
}

type histogram_snapshot = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;
  h_sum : float;
  h_count : int;
}

let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 16

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Telemetry.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Telemetry.histogram: bounds must be strictly increasing"
  done

let histogram name ~bounds =
  check_bounds bounds;
  locked (fun () ->
      match Hashtbl.find_opt histogram_registry name with
      | Some h ->
        if h.bounds <> bounds then
          invalid_arg
            (Printf.sprintf
               "Telemetry.histogram: %S already registered with different \
                bounds"
               name);
        h
      | None ->
        let h =
          { hist_name = name;
            bounds = Array.copy bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            observations = 0 }
        in
        Hashtbl.add histogram_registry name h;
        h)

(* Bucket of [v]: the first bound with v <= bound (Prometheus "le"
   semantics), else the overflow bucket. Bucket arrays are tiny (a
   handful of bounds), so a linear scan beats binary search. *)
let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if !enabled_flag then begin
    let b = bucket_index h v in
    h.counts.(b) <- h.counts.(b) + 1;
    h.sum <- h.sum +. v;
    h.observations <- h.observations + 1
  end

let snapshot h =
  { h_name = h.hist_name;
    h_bounds = Array.copy h.bounds;
    h_counts = Array.copy h.counts;
    h_sum = h.sum;
    h_count = h.observations }

let histograms () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun _name h acc -> snapshot h :: acc)
           histogram_registry []))

(* --- spans --- *)

module Span = struct
  type t = {
    id : int;
    parent : int;  (* 0 = no parent *)
    depth : int;
    name : string;
    attrs : (string * string) list;
    start : float;
    duration : float;
  }

  let dummy =
    { id = 0; parent = 0; depth = 0; name = ""; attrs = []; start = 0.0;
      duration = 0.0 }

  (* Bounded ring of completed spans. [total] only grows; the write
     slot is [total mod capacity]. *)
  let ring = ref (Array.make 256 dummy)

  let total = ref 0

  let next_id = ref 0

  (* Innermost open span (its id and depth): with_span brackets
     maintain this to parent-link completed spans. *)
  let cur_parent = ref 0

  let cur_depth = ref 0

  let sink : (t -> unit) option ref = ref None

  let set_sink s = sink := s

  let capacity () = Array.length !ring

  let set_capacity n =
    if n <= 0 then invalid_arg "Telemetry.Span.set_capacity";
    ring := Array.make n dummy;
    total := 0

  let clear () =
    Array.fill !ring 0 (Array.length !ring) dummy;
    total := 0;
    cur_parent := 0;
    cur_depth := 0

  let recorded () = !total

  let push s =
    let r = !ring in
    r.(!total mod Array.length r) <- s;
    incr total;
    match !sink with None -> () | Some f -> f s

  (* Record an externally timed span (sampled loops time their own
     blocks). It is parented under the innermost open span. *)
  let record ?(attrs = []) ~name ~start ~duration () =
    if !enabled_flag then begin
      incr next_id;
      push
        { id = !next_id; parent = !cur_parent; depth = !cur_depth; name;
          attrs; start; duration }
    end

  let with_span ?(attrs = []) name f =
    if not !enabled_flag then f ()
    else begin
      incr next_id;
      let id = !next_id in
      let parent = !cur_parent and depth = !cur_depth in
      cur_parent := id;
      cur_depth := depth + 1;
      let t0 = !clock () in
      let finish () =
        let duration = !clock () -. t0 in
        cur_parent := parent;
        cur_depth := depth;
        push { id; parent; depth; name; attrs; start = t0; duration }
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e
    end

  (* Retained spans, oldest first. Parents complete after their
     children, so a parent appears later in this list than the spans
     it contains. *)
  let recent () =
    let r = !ring in
    let cap = Array.length r in
    let n = min !total cap in
    let first = !total - n in
    List.init n (fun i -> r.((first + i) mod cap))
end

(* --- Prometheus-style text exposition --- *)

(* Metric names sanitize "." (and any other non-identifier byte) to
   "_": "service.cache_hits" -> "service_cache_hits". *)
let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let float_text f = Printf.sprintf "%.9g" f

let text_exposition () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s_total counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" n v))
    (all ());
  List.iter
    (fun s ->
      let n = sanitize s.h_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cumulative = ref 0 in
      Array.iteri
        (fun i c ->
          cumulative := !cumulative + c;
          let le =
            if i < Array.length s.h_bounds then float_text s.h_bounds.(i)
            else "+Inf"
          in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cumulative))
        s.h_counts;
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n (float_text s.h_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.h_count))
    (histograms ());
  Buffer.contents b

(* --- well-known counter names --- *)

let lp_pivots = "lp.pivots"
let milp_nodes = "milp.nodes"
let milp_incumbents = "milp.incumbents"
let heuristic_evals = "heuristics.evaluations"
let service_requests = "service.requests"
let service_cache_hits = "service.cache_hits"
let service_cache_misses = "service.cache_misses"
let service_monotone_hits = "service.monotone_hits"
let service_warm_starts = "service.warm_starts"
let service_compile_reuse = "service.compile_reuse"
let service_shed = "service.shed"

let service_op op = "service.op." ^ op

(* --- well-known histogram names --- *)

let service_latency_seconds = "service.latency_seconds"
let service_queue_wait_seconds = "service.queue_wait_seconds"
let solver_wall_seconds = "solver.wall_seconds"
let heuristic_run_evals = "heuristics.run_evals"
let milp_solve_nodes = "milp.solve_nodes"
