type counter = { mutable value : int }

let enabled_flag = ref true

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { value = 0 } in
    Hashtbl.add registry name c;
    c

let bump c = if !enabled_flag then c.value <- c.value + 1

let add c n = if !enabled_flag then c.value <- c.value + n

let read c = c.value

let value name =
  match Hashtbl.find_opt registry name with Some c -> c.value | None -> 0

let all () =
  List.sort compare
    (Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) registry [])

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

let lp_pivots = "lp.pivots"
let milp_nodes = "milp.nodes"
let milp_incumbents = "milp.incumbents"
let heuristic_evals = "heuristics.evaluations"
let service_requests = "service.requests"
let service_cache_hits = "service.cache_hits"
let service_cache_misses = "service.cache_misses"
let service_monotone_hits = "service.monotone_hits"
let service_warm_starts = "service.warm_starts"
let service_compile_reuse = "service.compile_reuse"
let service_shed = "service.shed"
