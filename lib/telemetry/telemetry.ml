(* The observability substrate: counters, histograms and spans shared
   by every layer of the solver stack. See telemetry.mli for the
   contract; the implementation notes below cover what the interface
   does not promise.

   Thread-safety: every instrument is safe under parallel writers
   since the multicore PR. Counters are [Atomic.t]s (bump/add are
   wait-free and exact). Histograms carry one mutex each protecting
   the bucket array, sum and count together, so a snapshot always
   satisfies sum-of-buckets = count. The span ring indexes slots with
   a fetch-and-add so two domains never write the same slot, the
   open-span context (parent id, depth) is domain-local state, and the
   sink is called under its own mutex so a JSONL trace writer never
   interleaves lines. The registries (name -> instrument) keep their
   original single mutex. *)

let enabled_flag = ref true

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

(* The clock used for spans. Wall clock by default; swappable so tests
   can drive deterministic timings. *)
let clock = ref Unix.gettimeofday

let set_clock f = clock := f

let now () = !clock ()

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* --- counters --- *)

type counter = int Atomic.t

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add registry name c;
        c)

let bump c = if !enabled_flag then Atomic.incr c

let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c n)

let read c = Atomic.get c

let value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> Atomic.get c
      | None -> 0)

let all () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun name c acc -> (name, Atomic.get c) :: acc)
           registry []))

(* --- histograms --- *)

type histogram = {
  hist_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = |bounds| + 1; last is overflow *)
  mutable sum : float;
  mutable observations : int;
  hist_lock : Mutex.t;
      (* protects counts/sum/observations as one unit, so a snapshot
         never tears (sum of counts always equals observations) *)
}

type histogram_snapshot = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;
  h_sum : float;
  h_count : int;
}

let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 16

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Telemetry.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Telemetry.histogram: bounds must be strictly increasing"
  done

let histogram name ~bounds =
  check_bounds bounds;
  locked (fun () ->
      match Hashtbl.find_opt histogram_registry name with
      | Some h ->
        if h.bounds <> bounds then
          invalid_arg
            (Printf.sprintf
               "Telemetry.histogram: %S already registered with different \
                bounds"
               name);
        h
      | None ->
        let h =
          { hist_name = name;
            bounds = Array.copy bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            observations = 0;
            hist_lock = Mutex.create () }
        in
        Hashtbl.add histogram_registry name h;
        h)

(* Bucket of [v]: the first bound with v <= bound (Prometheus "le"
   semantics), else the overflow bucket. Bucket arrays are tiny (a
   handful of bounds), so a linear scan beats binary search. *)
let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if !enabled_flag then begin
    let b = bucket_index h v in
    Mutex.lock h.hist_lock;
    h.counts.(b) <- h.counts.(b) + 1;
    h.sum <- h.sum +. v;
    h.observations <- h.observations + 1;
    Mutex.unlock h.hist_lock
  end

let snapshot h =
  Mutex.lock h.hist_lock;
  let s =
    { h_name = h.hist_name;
      h_bounds = Array.copy h.bounds;
      h_counts = Array.copy h.counts;
      h_sum = h.sum;
      h_count = h.observations }
  in
  Mutex.unlock h.hist_lock;
  s

let histograms () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun _name h acc -> snapshot h :: acc)
           histogram_registry []))

(* --- spans --- *)

module Span = struct
  type t = {
    id : int;
    parent : int;  (* 0 = no parent *)
    depth : int;
    name : string;
    attrs : (string * string) list;
    start : float;
    duration : float;
  }

  let dummy =
    { id = 0; parent = 0; depth = 0; name = ""; attrs = []; start = 0.0;
      duration = 0.0 }

  (* Bounded ring of completed spans. [total] only grows; each push
     claims slot [fetch_and_add total 1 mod capacity], so parallel
     pushes land in distinct slots. *)
  let ring = ref (Array.make 256 dummy)

  let total = Atomic.make 0

  let next_id = Atomic.make 0

  (* Innermost open span of the *current domain* (its id and depth):
     with_span brackets maintain this to parent-link completed spans.
     Domain-local, so traces from parallel workers nest correctly
     instead of parenting under whichever span another domain happens
     to have open. *)
  let context : (int * int) Domain.DLS.key =
    Domain.DLS.new_key (fun () -> (0, 0))

  let sink : (t -> unit) option ref = ref None

  let sink_mutex = Mutex.create ()

  let set_sink s = sink := s

  let capacity () = Array.length !ring

  let set_capacity n =
    if n <= 0 then invalid_arg "Telemetry.Span.set_capacity";
    ring := Array.make n dummy;
    Atomic.set total 0

  let clear () =
    Array.fill !ring 0 (Array.length !ring) dummy;
    Atomic.set total 0;
    Domain.DLS.set context (0, 0)

  let recorded () = Atomic.get total

  let push s =
    let slot = Atomic.fetch_and_add total 1 in
    let r = !ring in
    r.(slot mod Array.length r) <- s;
    match !sink with
    | None -> ()
    | Some f ->
      Mutex.lock sink_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) (fun () -> f s)

  let fresh_id () = 1 + Atomic.fetch_and_add next_id 1

  (* Record an externally timed span (sampled loops time their own
     blocks). It is parented under the innermost open span of this
     domain. *)
  let record ?(attrs = []) ~name ~start ~duration () =
    if !enabled_flag then begin
      let parent, depth = Domain.DLS.get context in
      push { id = fresh_id (); parent; depth; name; attrs; start; duration }
    end

  let with_span ?(attrs = []) name f =
    if not !enabled_flag then f ()
    else begin
      let id = fresh_id () in
      let parent, depth = Domain.DLS.get context in
      Domain.DLS.set context (id, depth + 1);
      let t0 = !clock () in
      let finish () =
        let duration = !clock () -. t0 in
        Domain.DLS.set context (parent, depth);
        push { id; parent; depth; name; attrs; start = t0; duration }
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e
    end

  (* Retained spans, oldest first. Parents complete after their
     children, so a parent appears later in this list than the spans
     it contains. *)
  let recent () =
    let r = !ring in
    let cap = Array.length r in
    let n = min (Atomic.get total) cap in
    let first = Atomic.get total - n in
    List.init n (fun i -> r.((first + i) mod cap))
end

(* --- Prometheus-style text exposition --- *)

(* Metric names sanitize "." (and any other non-identifier byte) to
   "_": "service.cache_hits" -> "service_cache_hits". *)
let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let float_text f = Printf.sprintf "%.9g" f

let text_exposition () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s_total counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" n v))
    (all ());
  List.iter
    (fun s ->
      let n = sanitize s.h_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cumulative = ref 0 in
      Array.iteri
        (fun i c ->
          cumulative := !cumulative + c;
          let le =
            if i < Array.length s.h_bounds then float_text s.h_bounds.(i)
            else "+Inf"
          in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cumulative))
        s.h_counts;
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n (float_text s.h_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.h_count))
    (histograms ());
  Buffer.contents b

(* --- well-known counter names --- *)

let lp_pivots = "lp.pivots"
let numeric_fast_solves = "numeric.fast_solves"
let numeric_fallbacks = "numeric.fallbacks"
let milp_nodes = "milp.nodes"
let milp_incumbents = "milp.incumbents"
let heuristic_evals = "heuristics.evaluations"
let service_requests = "service.requests"
let service_cache_hits = "service.cache_hits"
let service_cache_misses = "service.cache_misses"
let service_monotone_hits = "service.monotone_hits"
let service_warm_starts = "service.warm_starts"
let service_compile_reuse = "service.compile_reuse"
let service_shed = "service.shed"

let service_op op = "service.op." ^ op
let autoscale_ticks = "autoscale.ticks"
let autoscale_replans = "autoscale.replans"
let autoscale_holds = "autoscale.holds"
let autoscale_violations = "autoscale.violations"

let parallel_tasks = "parallel.tasks"
let parallel_steals = "parallel.steals"

let parallel_win strategy = "parallel.win." ^ strategy

(* --- well-known histogram names --- *)

let service_latency_seconds = "service.latency_seconds"
let service_queue_wait_seconds = "service.queue_wait_seconds"
let solver_wall_seconds = "solver.wall_seconds"
let heuristic_run_evals = "heuristics.run_evals"
let milp_solve_nodes = "milp.solve_nodes"
let parallel_queue_depth = "parallel.queue_depth"
let parallel_portfolio_seconds = "parallel.portfolio_seconds"
let autoscale_resolve_seconds = "autoscale.resolve_seconds"
