(* The observability substrate: counters, histograms, gauges and spans
   shared by every layer of the solver stack. See telemetry.mli for
   the contract; the implementation notes below cover what the
   interface does not promise.

   Thread-safety: every instrument is safe under parallel writers
   since the multicore PR. Counters are [Atomic.t]s (bump/add are
   wait-free and exact). Histograms carry one mutex each protecting
   the bucket array, sum and count together, so a snapshot always
   satisfies sum-of-buckets = count. The span ring indexes slots with
   a fetch-and-add so two domains never write the same slot, the
   open-span context (parent id, depth) is domain-local state, and the
   sink is called under its own mutex so a JSONL trace writer never
   interleaves lines. The registries (name -> instrument) keep their
   original single mutex; labelled families find-or-create their cells
   under the same mutex, and a cell, once returned, is the same
   wait-free instrument as its unlabelled sibling. *)

let enabled_flag = ref true

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

(* The clock used for spans. Wall clock by default; swappable so tests
   can drive deterministic timings. *)
let clock = ref Unix.gettimeofday

let set_clock f = clock := f

let now () = !clock ()

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* --- exposition spelling helpers (used throughout) --- *)

(* Metric names sanitize "." (and any other non-identifier byte) to
   "_": "service.cache_hits" -> "service_cache_hits". *)
let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let float_text f = Printf.sprintf "%.9g" f

(* Prometheus text-format escaping: label values escape backslash,
   double quote and newline; HELP text escapes backslash and
   newline. *)
let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let escape_help v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* [render_labels [(k, v); ...]] is [{k="v",...}] with sanitized label
   names and escaped values; [""] for the empty list. *)
let render_labels = function
  | [] -> ""
  | pairs ->
    let b = Buffer.create 32 in
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (sanitize k);
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label_value v);
        Buffer.add_char b '"')
      pairs;
    Buffer.add_char b '}';
    Buffer.contents b

(* --- help strings --- *)

(* One help string per metric family name, shared by the labelled and
   unlabelled series. Written under the registry mutex; exposition
   snapshots it in one locked section. *)
let help_registry : (string, string) Hashtbl.t = Hashtbl.create 16

let record_help name = function
  | None -> ()
  | Some h -> Hashtbl.replace help_registry name h

let set_help name h = locked (fun () -> Hashtbl.replace help_registry name h)

(* --- counters --- *)

type counter = int Atomic.t

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter ?help name =
  locked (fun () ->
      record_help name help;
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add registry name c;
        c)

let bump c = if !enabled_flag then Atomic.incr c

let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c n)

let read c = Atomic.get c

let value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> Atomic.get c
      | None -> 0)

let all () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun name c acc -> (name, Atomic.get c) :: acc)
           registry []))

(* --- labelled counter families --- *)

type counter_vec = {
  cv_name : string;
  cv_labels : string list;
  cv_cells : (string list, counter) Hashtbl.t;
      (* key: label values, same arity as cv_labels *)
}

let counter_vec_registry : (string, counter_vec) Hashtbl.t = Hashtbl.create 8

let counter_vec ?help name ~labels =
  if labels = [] then invalid_arg "Telemetry.counter_vec: empty label list";
  locked (fun () ->
      record_help name help;
      match Hashtbl.find_opt counter_vec_registry name with
      | Some v ->
        if v.cv_labels <> labels then
          invalid_arg
            (Printf.sprintf
               "Telemetry.counter_vec: %S already registered with different \
                labels"
               name);
        v
      | None ->
        let v =
          { cv_name = name; cv_labels = labels; cv_cells = Hashtbl.create 8 }
        in
        Hashtbl.add counter_vec_registry name v;
        v)

let counter_with v values =
  if List.length values <> List.length v.cv_labels then
    invalid_arg
      (Printf.sprintf "Telemetry.counter_with: %S expects %d label values"
         v.cv_name
         (List.length v.cv_labels));
  locked (fun () ->
      match Hashtbl.find_opt v.cv_cells values with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add v.cv_cells values c;
        c)

let counter_vecs () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun name v acc ->
             let cells =
               Hashtbl.fold
                 (fun values c acc -> (values, Atomic.get c) :: acc)
                 v.cv_cells []
             in
             (name, v.cv_labels, List.sort compare cells) :: acc)
           counter_vec_registry []))

(* --- histograms --- *)

type histogram = {
  hist_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = |bounds| + 1; last is overflow *)
  mutable sum : float;
  mutable observations : int;
  hist_lock : Mutex.t;
      (* protects counts/sum/observations as one unit, so a snapshot
         never tears (sum of counts always equals observations) *)
}

type histogram_snapshot = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;
  h_sum : float;
  h_count : int;
}

let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 16

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Telemetry.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Telemetry.histogram: bounds must be strictly increasing"
  done

let make_histogram name bounds =
  { hist_name = name;
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    sum = 0.0;
    observations = 0;
    hist_lock = Mutex.create () }

(* Forward-declared so [histogram] can enforce the shared-buckets
   invariant against a labelled family registered first; filled in by
   the labelled-histogram section below. *)
let histogram_vec_bounds : (string -> float array option) ref = ref (fun _ -> None)

let histogram ?help name ~bounds =
  check_bounds bounds;
  locked (fun () ->
      record_help name help;
      (* Labelled and unlabelled series of one name share buckets (the
         merged exposition renders them under one # TYPE); reject a
         mismatch whichever side registers first. *)
      (match !histogram_vec_bounds name with
      | Some b when b <> bounds ->
        invalid_arg
          (Printf.sprintf
             "Telemetry.histogram: %S already registered (labelled) with \
              different bounds"
             name)
      | _ -> ());
      match Hashtbl.find_opt histogram_registry name with
      | Some h ->
        if h.bounds <> bounds then
          invalid_arg
            (Printf.sprintf
               "Telemetry.histogram: %S already registered with different \
                bounds"
               name);
        h
      | None ->
        let h = make_histogram name bounds in
        Hashtbl.add histogram_registry name h;
        h)

(* Bucket of [v]: the first bound with v <= bound (Prometheus "le"
   semantics), else the overflow bucket. Bucket arrays are tiny (a
   handful of bounds), so a linear scan beats binary search. *)
let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if !enabled_flag then begin
    let b = bucket_index h v in
    Mutex.lock h.hist_lock;
    h.counts.(b) <- h.counts.(b) + 1;
    h.sum <- h.sum +. v;
    h.observations <- h.observations + 1;
    Mutex.unlock h.hist_lock
  end

let snapshot h =
  Mutex.lock h.hist_lock;
  let s =
    { h_name = h.hist_name;
      h_bounds = Array.copy h.bounds;
      h_counts = Array.copy h.counts;
      h_sum = h.sum;
      h_count = h.observations }
  in
  Mutex.unlock h.hist_lock;
  s

let histograms () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun _name h acc -> snapshot h :: acc)
           histogram_registry []))

(* --- labelled histogram families --- *)

type histogram_vec = {
  hv_name : string;
  hv_labels : string list;
  hv_bounds : float array;
  hv_cells : (string list, histogram) Hashtbl.t;
}

let histogram_vec_registry : (string, histogram_vec) Hashtbl.t =
  Hashtbl.create 8

(* Called with the registry lock already held (from [histogram]), so
   it must read the table directly rather than re-lock. *)
let () =
  histogram_vec_bounds :=
    fun name ->
      Option.map
        (fun v -> v.hv_bounds)
        (Hashtbl.find_opt histogram_vec_registry name)

let histogram_vec ?help name ~labels ~bounds =
  if labels = [] then invalid_arg "Telemetry.histogram_vec: empty label list";
  check_bounds bounds;
  locked (fun () ->
      record_help name help;
      (* A labelled family sharing a name with a plain histogram must
         share its buckets, or the merged exposition would be
         nonsense. *)
      (match Hashtbl.find_opt histogram_registry name with
      | Some h when h.bounds <> bounds ->
        invalid_arg
          (Printf.sprintf
             "Telemetry.histogram_vec: %S already registered (unlabelled) \
              with different bounds"
             name)
      | _ -> ());
      match Hashtbl.find_opt histogram_vec_registry name with
      | Some v ->
        if v.hv_labels <> labels then
          invalid_arg
            (Printf.sprintf
               "Telemetry.histogram_vec: %S already registered with \
                different labels"
               name);
        if v.hv_bounds <> bounds then
          invalid_arg
            (Printf.sprintf
               "Telemetry.histogram_vec: %S already registered with \
                different bounds"
               name);
        v
      | None ->
        let v =
          { hv_name = name;
            hv_labels = labels;
            hv_bounds = Array.copy bounds;
            hv_cells = Hashtbl.create 8 }
        in
        Hashtbl.add histogram_vec_registry name v;
        v)

let histogram_with v values =
  if List.length values <> List.length v.hv_labels then
    invalid_arg
      (Printf.sprintf "Telemetry.histogram_with: %S expects %d label values"
         v.hv_name
         (List.length v.hv_labels));
  locked (fun () ->
      match Hashtbl.find_opt v.hv_cells values with
      | Some h -> h
      | None ->
        let h = make_histogram v.hv_name v.hv_bounds in
        Hashtbl.add v.hv_cells values h;
        h)

let histogram_vecs () =
  List.sort compare
    (locked (fun () ->
         Hashtbl.fold
           (fun name v acc ->
             let cells =
               Hashtbl.fold
                 (fun values h acc -> (values, snapshot h) :: acc)
                 v.hv_cells []
             in
             (name, v.hv_labels, List.sort compare cells) :: acc)
           histogram_vec_registry []))

(* --- gauges --- *)

(* Gauges are read-at-scrape callbacks, not recorded state, so the
   kill switch does not apply: a scrape always sees live values. *)
type gauge_cell = { g_name : string; g_read : unit -> float }

let gauge_registry : (string, gauge_cell) Hashtbl.t = Hashtbl.create 8

let gauge ?help name read =
  locked (fun () ->
      record_help name help;
      Hashtbl.replace gauge_registry name { g_name = name; g_read = read })

let gauges () =
  (* Snapshot the callback list under the mutex, evaluate outside it,
     so a callback may itself use the registry without deadlocking. *)
  let cells =
    locked (fun () ->
        Hashtbl.fold (fun _ g acc -> g :: acc) gauge_registry [])
  in
  List.sort compare (List.map (fun g -> (g.g_name, g.g_read ())) cells)

let process_start_time = Unix.gettimeofday ()

let () =
  gauge ~help:"Seconds since process start." "process.uptime_seconds"
    (fun () -> Unix.gettimeofday () -. process_start_time);
  gauge ~help:"Major-heap words currently allocated (Gc.quick_stat)."
    "process.heap_words" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.heap_words);
  gauge ~help:"Completed major collections (Gc.quick_stat)."
    "process.major_collections" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.major_collections)

(* --- spans --- *)

module Span = struct
  type t = {
    id : int;
    parent : int;  (* 0 = no parent *)
    depth : int;
    name : string;
    attrs : (string * string) list;
    start : float;
    duration : float;
  }

  let dummy =
    { id = 0; parent = 0; depth = 0; name = ""; attrs = []; start = 0.0;
      duration = 0.0 }

  (* Bounded ring of completed spans. [total] only grows; each push
     claims slot [fetch_and_add total 1 mod capacity], so parallel
     pushes land in distinct slots. *)
  let ring = ref (Array.make 256 dummy)

  let total = Atomic.make 0

  let next_id = Atomic.make 0

  (* Innermost open span of the *current domain* (its id and depth):
     with_span brackets maintain this to parent-link completed spans.
     Domain-local, so traces from parallel workers nest correctly
     instead of parenting under whichever span another domain happens
     to have open. *)
  let context : (int * int) Domain.DLS.key =
    Domain.DLS.new_key (fun () -> (0, 0))

  (* Ambient request identity of the current domain. When set, every
     completed span is stamped with a ["trace_id"] attribute, so the
     spans of one daemon request can be filtered out of a shared ring
     or trace file. Domain-local: parallel workers each carry their
     own request's id. *)
  let trace_context : string option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let set_trace_id t = Domain.DLS.set trace_context t

  let trace_id () = Domain.DLS.get trace_context

  let with_trace_id id f =
    let prev = Domain.DLS.get trace_context in
    Domain.DLS.set trace_context (Some id);
    Fun.protect ~finally:(fun () -> Domain.DLS.set trace_context prev) f

  let stamp attrs =
    match Domain.DLS.get trace_context with
    | None -> attrs
    | Some t -> ("trace_id", t) :: attrs

  let sink : (t -> unit) option ref = ref None

  let sink_mutex = Mutex.create ()

  let set_sink s = sink := s

  let capacity () = Array.length !ring

  let set_capacity n =
    if n <= 0 then invalid_arg "Telemetry.Span.set_capacity";
    ring := Array.make n dummy;
    Atomic.set total 0

  let clear () =
    Array.fill !ring 0 (Array.length !ring) dummy;
    Atomic.set total 0;
    Domain.DLS.set context (0, 0)

  let recorded () = Atomic.get total

  let push s =
    let slot = Atomic.fetch_and_add total 1 in
    let r = !ring in
    r.(slot mod Array.length r) <- s;
    match !sink with
    | None -> ()
    | Some f ->
      Mutex.lock sink_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) (fun () -> f s)

  let fresh_id () = 1 + Atomic.fetch_and_add next_id 1

  (* Record an externally timed span (sampled loops time their own
     blocks). It is parented under the innermost open span of this
     domain. *)
  let record ?(attrs = []) ~name ~start ~duration () =
    if !enabled_flag then begin
      let parent, depth = Domain.DLS.get context in
      push
        { id = fresh_id (); parent; depth; name; attrs = stamp attrs;
          start; duration }
    end

  let with_span ?(attrs = []) name f =
    if not !enabled_flag then f ()
    else begin
      let id = fresh_id () in
      let parent, depth = Domain.DLS.get context in
      Domain.DLS.set context (id, depth + 1);
      let t0 = !clock () in
      let finish () =
        let duration = !clock () -. t0 in
        Domain.DLS.set context (parent, depth);
        push
          { id; parent; depth; name; attrs = stamp attrs; start = t0;
            duration }
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e
    end

  (* Retained spans, oldest first. Parents complete after their
     children, so a parent appears later in this list than the spans
     it contains. *)
  let recent () =
    let r = !ring in
    let cap = Array.length r in
    let n = min (Atomic.get total) cap in
    let first = Atomic.get total - n in
    List.init n (fun i -> r.((first + i) mod cap))
end

(* --- convergence progress events --- *)

module Progress = struct
  type event = {
    elapsed : float;  (* seconds since the enclosing collect started *)
    incumbent : float option;
    bound : float option;
    source : string;
  }

  (* Stack of active collectors of the current domain: (start time,
     reversed accumulator). Nested collects each see every event
     emitted inside their window, stamped with their own elapsed
     origin. Domain-local, like the span context: a portfolio worker
     domain does not feed the driver's collector. *)
  let collectors : (float * event list ref) list Domain.DLS.key =
    Domain.DLS.new_key (fun () -> [])

  let collecting () = Domain.DLS.get collectors <> []

  let emit ?incumbent ?bound ~source () =
    if !enabled_flag then begin
      match Domain.DLS.get collectors with
      | [] -> ()
      | frames ->
        let t = now () in
        List.iter
          (fun (t0, acc) ->
            acc := { elapsed = t -. t0; incumbent; bound; source } :: !acc)
          frames;
        (* The sampled hook into the span sink: each event doubles as a
           zero-duration span, so --trace files and the ring carry the
           timeline alongside the structural spans. *)
        let attrs = [ ("source", source) ] in
        let attrs =
          match bound with
          | Some v -> ("bound", float_text v) :: attrs
          | None -> attrs
        in
        let attrs =
          match incumbent with
          | Some v -> ("incumbent", float_text v) :: attrs
          | None -> attrs
        in
        Span.record ~attrs ~name:"solver.progress" ~start:t ~duration:0.0 ()
    end

  let collect f =
    let acc = ref [] in
    let prev = Domain.DLS.get collectors in
    Domain.DLS.set collectors ((now (), acc) :: prev);
    let restore () = Domain.DLS.set collectors prev in
    match f () with
    | v ->
      restore ();
      (v, List.rev !acc)
    | exception e ->
      restore ();
      raise e
end

(* --- Prometheus text exposition --- *)

(* Families are rendered grouped by name: one optional # HELP line,
   one # TYPE line, then the unlabelled sample (when a plain
   instrument of that name exists) followed by the labelled samples
   sorted by label values. *)

let text_exposition () =
  let b = Buffer.create 1024 in
  let helps =
    locked (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) help_registry [])
  in
  let help_line exposition_name family_name =
    match List.assoc_opt family_name helps with
    | Some h ->
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" exposition_name (escape_help h))
    | None -> ()
  in
  (* counters: merge the plain and labelled registries by name *)
  let plain = all () in
  let vecs = counter_vecs () in
  let family_names =
    List.sort_uniq compare
      (List.map fst plain @ List.map (fun (n, _, _) -> n) vecs)
  in
  List.iter
    (fun name ->
      let n = sanitize name ^ "_total" in
      help_line n name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
      (match List.assoc_opt name plain with
      | Some v -> Buffer.add_string b (Printf.sprintf "%s %d\n" n v)
      | None -> ());
      List.iter
        (fun (vec_name, labels, cells) ->
          if vec_name = name then
            List.iter
              (fun (values, v) ->
                let pairs = List.combine labels values in
                Buffer.add_string b
                  (Printf.sprintf "%s%s %d\n" n (render_labels pairs) v))
              cells)
        vecs)
    family_names;
  (* gauges *)
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      help_line n name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (float_text v)))
    (gauges ());
  (* histograms: merge the plain and labelled registries by name *)
  let plain_h = histograms () in
  let vec_h = histogram_vecs () in
  let family_names =
    List.sort_uniq compare
      (List.map (fun s -> s.h_name) plain_h
      @ List.map (fun (n, _, _) -> n) vec_h)
  in
  let render_cell n pairs s =
    let cumulative = ref 0 in
    Array.iteri
      (fun i c ->
        cumulative := !cumulative + c;
        let le =
          if i < Array.length s.h_bounds then float_text s.h_bounds.(i)
          else "+Inf"
        in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" n
             (render_labels (pairs @ [ ("le", le) ]))
             !cumulative))
      s.h_counts;
    Buffer.add_string b
      (Printf.sprintf "%s_sum%s %s\n" n (render_labels pairs)
         (float_text s.h_sum));
    Buffer.add_string b
      (Printf.sprintf "%s_count%s %d\n" n (render_labels pairs) s.h_count)
  in
  List.iter
    (fun name ->
      let n = sanitize name in
      help_line n name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      (match List.find_opt (fun s -> s.h_name = name) plain_h with
      | Some s -> render_cell n [] s
      | None -> ());
      List.iter
        (fun (vec_name, labels, cells) ->
          if vec_name = name then
            List.iter
              (fun (values, s) -> render_cell n (List.combine labels values) s)
              cells)
        vec_h)
    family_names;
  Buffer.contents b

(* --- well-known counter names --- *)

let lp_pivots = "lp.pivots"
let numeric_fast_solves = "numeric.fast_solves"
let numeric_fallbacks = "numeric.fallbacks"
let milp_nodes = "milp.nodes"
let milp_incumbents = "milp.incumbents"
let heuristic_evals = "heuristics.evaluations"
let service_requests = "service.requests"
let service_cache_hits = "service.cache_hits"
let service_cache_misses = "service.cache_misses"
let service_monotone_hits = "service.monotone_hits"
let service_warm_starts = "service.warm_starts"
let service_compile_reuse = "service.compile_reuse"
let service_shed = "service.shed"
let service_coalesced = "service.coalesced"
let service_batches = "service.batches"

let service_op op = "service.op." ^ op
let autoscale_ticks = "autoscale.ticks"
let autoscale_replans = "autoscale.replans"
let autoscale_holds = "autoscale.holds"
let autoscale_violations = "autoscale.violations"

let parallel_tasks = "parallel.tasks"
let parallel_steals = "parallel.steals"

let parallel_win strategy = "parallel.win." ^ strategy

(* --- well-known histogram names --- *)

let service_latency_seconds = "service.latency_seconds"
let service_queue_wait_seconds = "service.queue_wait_seconds"
let solver_wall_seconds = "solver.wall_seconds"
let heuristic_run_evals = "heuristics.run_evals"
let milp_solve_nodes = "milp.solve_nodes"
let parallel_queue_depth = "parallel.queue_depth"
let parallel_portfolio_seconds = "parallel.portfolio_seconds"
let autoscale_resolve_seconds = "autoscale.resolve_seconds"

(* --- default help strings for the well-known families --- *)

let () =
  List.iter
    (fun (name, help) ->
      locked (fun () ->
          if not (Hashtbl.mem help_registry name) then
            Hashtbl.replace help_registry name help))
    [ (lp_pivots, "Simplex pivots across both LP engines.");
      (milp_nodes, "Branch-and-bound nodes evaluated.");
      (milp_incumbents, "Incumbent improvements (warm starts included).");
      (heuristic_evals, "Cost-oracle evaluations by the heuristics.");
      (service_requests, "Solve requests admitted (sheds excluded).");
      (service_cache_hits, "Requests answered from the solution cache.");
      (service_cache_misses, "Solve requests that went to an engine.");
      (service_shed, "Requests shed by admission control.");
      ( service_coalesced,
        "Duplicate in-flight solve requests served from another \
         request's outcome (single-flight followers)." );
      ( service_batches,
        "Multi-request batches drained by service workers (single-job \
         wakeups excluded)." );
      (autoscale_ticks, "Demand ticks fed to elastic controllers.");
      ( service_latency_seconds,
        "Request handling latency in the service engine, seconds." );
      ( service_queue_wait_seconds,
        "Queue wait of drained solve jobs, seconds." );
      (solver_wall_seconds, "End-to-end solver wall time, seconds.");
      ( autoscale_resolve_seconds,
        "Wall time of each elastic-controller re-solve, seconds." ) ]
