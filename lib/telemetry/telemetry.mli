(** Lightweight cross-layer performance counters.

    The solver stack spans several libraries (the simplex engines in
    [lp], branch and bound in [milp], the heuristics in [rentcost]),
    and a single user-facing solve may drive any combination of them.
    Rather than thread effort statistics through every return type,
    each layer bumps a named global counter at its unit of work
    (simplex pivot, branch-and-bound node, cost-oracle evaluation) and
    an observer — typically [Rentcost.Solver] — reads counter deltas
    around a solve.

    Counters are monotone: they are never reset, only read, so nested
    or interleaved observers cannot corrupt each other — each computes
    its own before/after difference.

    Counting is on by default (one predictable branch and an integer
    add per event). {!set_enabled}[ false] freezes every counter,
    making instrumented code paths effectively zero-cost for purists
    benchmarking the raw kernels. *)

type counter

(** [counter name] finds or creates the counter registered under
    [name]. Calls with equal names return the same counter, which is
    how independent libraries share one counter without depending on
    each other. *)
val counter : string -> counter

(** [bump c] adds 1 to [c] (no-op when counting is disabled). *)
val bump : counter -> unit

(** [add c n] adds [n] to [c] (no-op when counting is disabled). *)
val add : counter -> int -> unit

(** Current value of a counter (monotone since program start). *)
val read : counter -> int

(** [value name] is [read (counter name)] — 0 for never-bumped
    names. *)
val value : string -> int

(** All registered counters with their current values, sorted by
    name. *)
val all : unit -> (string * int) list

val enabled : unit -> bool

(** Globally enable or disable counting. Disabling does not clear
    accumulated values. *)
val set_enabled : bool -> unit

(** {1 Well-known counter names}

    The names used by this project's instrumented layers, collected
    here so observers do not scatter string literals. *)

(** Simplex pivots, across both the row-based and bounded-variable
    engines ({!Lp.Simplex}, {!Lp.Bounded}). *)
val lp_pivots : string

(** Branch-and-bound nodes evaluated by {!Milp.Solver}. *)
val milp_nodes : string

(** Incumbent improvements (warm starts included) in
    {!Milp.Solver}. *)
val milp_incumbents : string

(** Cost-oracle evaluations by {!Rentcost.Heuristics}. *)
val heuristic_evals : string

(** {2 Serving-layer counters ([Rentcost_service])}

    Bumped by the provisioning service engine; the daemon's [stats]
    request and shutdown dump read them alongside the solver
    counters. *)

(** Solve requests admitted (sheds excluded). *)
val service_requests : string

(** Requests answered from the solution cache (exact and monotone hits
    both count; see also {!service_monotone_hits}). *)
val service_cache_hits : string

(** Solve requests that went to an engine (cold or warm-started). *)
val service_cache_misses : string

(** Cache hits served through monotone reuse: a cached optimal
    allocation for a higher target answering a lower one. *)
val service_monotone_hits : string

(** Engine solves seeded with a nearby cached allocation. *)
val service_warm_starts : string

(** Requests that reused an already-compiled instance (problem refs
    and fingerprint-equal inline problems). *)
val service_compile_reuse : string

(** Requests shed by admission control ([Overloaded] responses). *)
val service_shed : string
