(** The observability substrate shared by every layer of the solver
    stack: monotone counters, fixed-bucket histograms and hierarchical
    spans, with a Prometheus-style text exposition.

    The solver stack spans several libraries (the simplex engines in
    [lp], branch and bound in [milp], the heuristics in [rentcost],
    the provisioning service in [rentcost_service]), and a single
    user-facing solve may drive any combination of them. Rather than
    thread effort statistics through every return type, each layer
    records against a named global instrument at its unit of work, and
    observers — [Rentcost.Solver], the daemon's [stats] and [metrics]
    requests, the bench harness — read the shared state.

    {b Counters} are monotone: never reset, only read, so nested or
    interleaved observers cannot corrupt each other — each computes
    its own before/after difference. {b Histograms} bucket latency or
    size observations under fixed upper bounds (Prometheus ["le"]
    semantics: an observation lands in the first bucket whose bound is
    [>=] the value). {b Spans} time a bracketed computation on the
    shared clock and land in a bounded in-memory ring (and an optional
    sink), carrying parent links so a trace reconstructs the call
    tree.

    Everything honours one kill switch: {!set_enabled}[ false] freezes
    counters and histograms and makes {!Span.with_span} a tail call of
    its body — no clock reads, no allocation — so instrumented code
    paths are effectively zero-cost when observability is off.

    Thread-safety: every instrument is safe and {e exact} under
    parallel writers. Counters are atomics (wait-free bump/add, no
    lost increments); each histogram guards its buckets, sum and count
    with one mutex, so snapshots never tear; span ring slots are
    claimed with a fetch-and-add, the open-span context is
    domain-local (a worker's spans nest under {e its own} enclosing
    span, not another domain's), and the sink runs under its own mutex
    so a trace writer's lines never interleave. Registration and
    snapshots ({!counter}, {!histogram}, {!all}, {!histograms}) keep
    their original registry mutex. *)

val enabled : unit -> bool

(** Globally enable or disable all recording. Disabling does not clear
    accumulated values. *)
val set_enabled : bool -> unit

(** The clock spans are timed on, in seconds. Defaults to
    [Unix.gettimeofday]; {!set_clock} swaps it (tests use a
    deterministic counter). *)
val now : unit -> float

val set_clock : (unit -> float) -> unit

(** {1 Counters} *)

type counter

(** [counter name] finds or creates the counter registered under
    [name]. Calls with equal names return the same counter, which is
    how independent libraries share one counter without depending on
    each other. [help] records the family's exposition help string
    (see {!set_help}). *)
val counter : ?help:string -> string -> counter

(** [bump c] adds 1 to [c] (no-op when recording is disabled). *)
val bump : counter -> unit

(** [add c n] adds [n] to [c] (no-op when recording is disabled). *)
val add : counter -> int -> unit

(** Current value of a counter (monotone since program start). *)
val read : counter -> int

(** [value name] is [read (counter name)] — 0 for never-bumped
    names. *)
val value : string -> int

(** All registered counters with their current values, sorted by
    name. The list is a snapshot: iterating it while new counters are
    registered is safe. *)
val all : unit -> (string * int) list

(** {1 Labelled counter families}

    A counter family is one metric name carrying many series, one per
    label-value vector — [service.requests{tenant="a",rung="cold"}].
    Cells are found-or-created under the registry mutex and are
    ordinary {!counter}s afterwards: {!bump}/{!add} stay wait-free and
    honour the kill switch. Hot paths should resolve the cell once and
    cache it (or guard the lookup with {!enabled}) — {!counter_with}
    itself takes the registry mutex. *)

type counter_vec

(** [counter_vec name ~labels] finds or creates the counter family
    registered under [name] with the given label {e names}.
    Re-registering with different label names raises
    [Invalid_argument]. A family may share its name with a plain
    {!counter}; the exposition renders both under one [# TYPE]. *)
val counter_vec : ?help:string -> string -> labels:string list -> counter_vec

(** [counter_with vec values] is the cell of [vec] for the label
    {e values} (arity must match the family's labels, else
    [Invalid_argument]). Equal values return the same cell. *)
val counter_with : counter_vec -> string list -> counter

(** All registered counter families, sorted by name:
    [(name, label names, cells)] with cells sorted by label values. *)
val counter_vecs : unit -> (string * string list * (string list * int) list) list

(** {1 Histograms} *)

type histogram

(** [histogram name ~bounds] finds or creates the histogram registered
    under [name]. [bounds] are strictly increasing bucket upper
    bounds; an implicit overflow bucket catches everything above the
    last. Re-registering with different bounds — including against a
    {!histogram_vec} family of the same name, whose series share these
    buckets — raises [Invalid_argument]. *)
val histogram : ?help:string -> string -> bounds:float array -> histogram

(** [observe h v] adds one observation (no-op when recording is
    disabled). [v] lands in the first bucket whose bound is [>= v]
    (["le"] semantics), or the overflow bucket. *)
val observe : histogram -> float -> unit

type histogram_snapshot = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;
      (** per-bucket (not cumulative); length [|h_bounds| + 1], last
          entry is the overflow bucket *)
  h_sum : float;
  h_count : int;
}

val snapshot : histogram -> histogram_snapshot

(** All registered histograms, snapshotted, sorted by name. *)
val histograms : unit -> histogram_snapshot list

(** {1 Labelled histogram families}

    The histogram analogue of {!counter_vec}: one name, one shared
    bucket layout, many cells keyed by label values. *)

type histogram_vec

(** [histogram_vec name ~labels ~bounds] finds or creates the family.
    Raises [Invalid_argument] on a label-name or bounds mismatch with
    an earlier registration, including a plain {!histogram} of the
    same name (labelled and unlabelled series share buckets so the
    merged exposition stays coherent). *)
val histogram_vec :
  ?help:string ->
  string ->
  labels:string list ->
  bounds:float array ->
  histogram_vec

(** The cell for the given label values — an ordinary {!histogram}
    afterwards ({!observe} under the cell's own mutex, kill switch
    honoured). Arity mismatches raise [Invalid_argument]. *)
val histogram_with : histogram_vec -> string list -> histogram

(** All registered histogram families, sorted by name, cells sorted by
    label values. *)
val histogram_vecs :
  unit -> (string * string list * (string list * histogram_snapshot) list) list

(** {1 Gauges}

    Gauges are read-at-scrape callbacks, not recorded state: the
    registered function is evaluated whenever {!gauges} or
    {!text_exposition} runs, so the kill switch does not apply.
    Callbacks must be cheap and must not register instruments. *)

(** [gauge name f] registers (or replaces) the gauge [name]. The
    process gauges [process.uptime_seconds], [process.heap_words] and
    [process.major_collections] (from [Gc.quick_stat]) are registered
    at module initialisation. *)
val gauge : ?help:string -> string -> (unit -> float) -> unit

(** Current value of every registered gauge, sorted by name. *)
val gauges : unit -> (string * float) list

(** [set_help name help] records the exposition help string for the
    metric family [name] (also settable at registration time via the
    [?help] arguments). *)
val set_help : string -> string -> unit

(** {1 Spans} *)

module Span : sig
  (** A completed timed region. [parent] is the id of the span that
      was open when this one started (0 = none); [depth] its nesting
      depth. Ids are unique and increasing within a process. *)
  type t = {
    id : int;
    parent : int;
    depth : int;
    name : string;
    attrs : (string * string) list;
    start : float;  (** clock value at entry *)
    duration : float;  (** seconds *)
  }

  (** [with_span name f] times [f ()] and records the completed span
      in the ring buffer (and the sink, when set). Spans nest: a span
      opened inside [f] is parented under this one, including across
      library boundaries. When recording is disabled this is exactly
      [f ()] — no clock read, no allocation. Exceptions propagate; the
      span is still recorded. *)
  val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

  (** [record ~name ~start ~duration ()] pushes an externally timed
      span — used by sampled loops that time blocks of iterations
      themselves. Parented under the innermost open [with_span]. *)
  val record :
    ?attrs:(string * string) list ->
    name:string ->
    start:float ->
    duration:float ->
    unit ->
    unit

  (** Retained spans, oldest first, at most {!capacity} of them.
      Parents complete after their children, so a parent appears after
      the spans it contains. *)
  val recent : unit -> t list

  (** Total spans recorded since start (or the last {!set_capacity} /
      {!clear}) — exceeds [capacity ()] once the ring has wrapped. *)
  val recorded : unit -> int

  val capacity : unit -> int

  (** Resize the ring (discards retained spans). Default 256. *)
  val set_capacity : int -> unit

  (** Drop all retained spans (ids keep increasing). *)
  val clear : unit -> unit

  (** A sink sees every completed span as it is recorded — the JSONL
      trace writer in [Rentcost_service.Metrics] installs itself
      here. [None] (the default) disables forwarding. *)
  val set_sink : (t -> unit) option -> unit

  (** {2 Trace ids}

      The ambient request identity of the current domain. While set,
      every completed span (from {!with_span} and {!record}) carries a
      [("trace_id", id)] attribute, so one request's spans can be
      filtered out of the shared ring or a trace file. Domain-local:
      parallel daemon workers each stamp their own request's id. *)

  (** [with_trace_id id f] runs [f] with the trace id set, restoring
      the previous value on exit (exceptions included). *)
  val with_trace_id : string -> (unit -> 'a) -> 'a

  (** Imperatively set or clear the current domain's trace id
      ({!with_trace_id} is usually what you want). *)
  val set_trace_id : string option -> unit

  val trace_id : unit -> string option
end

(** {1 Convergence progress}

    Incremental solvers ({!Milp.Solver}, the heuristics) emit
    [(elapsed, incumbent, bound, source)] events as their search
    advances; an enclosing {!Progress.collect} — installed by
    [Rentcost.Solver.run] — gathers them into a convergence timeline.
    Each event is also recorded as a zero-duration ["solver.progress"]
    span, so trace files carry the timeline alongside the structural
    spans. Emission is a no-op when recording is disabled or no
    collector is active, and emitters only fire on strict improvement,
    so timelines stay sparse and monotone (incumbents non-increasing,
    bounds non-decreasing for a minimisation). *)
module Progress : sig
  type event = {
    elapsed : float;  (** seconds since the enclosing collect started *)
    incumbent : float option;  (** best feasible objective so far *)
    bound : float option;  (** proved lower bound (minimisation) *)
    source : string;  (** emitting engine, e.g. ["milp"], ["h32jump"] *)
  }

  (** Whether a collector is active on this domain. *)
  val collecting : unit -> bool

  (** [emit ~incumbent ~bound ~source ()] appends one event to every
      active collector of this domain (each stamps its own [elapsed])
      and records the progress span. No-op when disabled or when no
      collector is active. *)
  val emit : ?incumbent:float -> ?bound:float -> source:string -> unit -> unit

  (** [collect f] runs [f] with a fresh collector installed and
      returns its result alongside the events emitted during the run,
      in emission order. Collectors nest; like the span context, the
      collector is domain-local, so events from worker domains spawned
      inside [f] are not captured. *)
  val collect : (unit -> 'a) -> 'a * event list
end

(** {1 Text exposition}

    A Prometheus text-format rendering of every counter, gauge and
    histogram. Each family gets an optional [# HELP] line (when a help
    string is registered), a [# TYPE] line, then its samples: the
    unlabelled series first, then labelled series sorted by label
    values. Counters render as [name_total]; histograms as
    [name_bucket{le="..."}] (cumulative counts), [name_sum] and
    [name_count]; gauges as bare [name]. Metric and label names have
    non-identifier characters replaced by ["_"]; label values and help
    strings are escaped per the Prometheus exposition format. *)
val text_exposition : unit -> string

(** [sanitize name] is the exposition spelling of a metric name. *)
val sanitize : string -> string

(** Prometheus label-value escaping: backslash, double quote and
    newline. *)
val escape_label_value : string -> string

(** Prometheus HELP-text escaping: backslash and newline. *)
val escape_help : string -> string

(** {1 Well-known counter names}

    The names used by this project's instrumented layers, collected
    here so observers do not scatter string literals. *)

(** Simplex pivots, across both the row-based and bounded-variable
    engines ({!Lp.Simplex}, {!Lp.Bounded}). *)
val lp_pivots : string

(** Solves completed on the overflow-checked fast numeric kernel
    ({!Numeric.Fix64}) by the Fix64-first driver in [Rentcost.Ilp]. *)
val numeric_fast_solves : string

(** Solves restarted on the exact {!Numeric.Rat} kernel after the fast
    kernel raised [Numeric.Kernel.Overflow]. Zero on the default
    paper-scale workload; a growing value means instances exceed the
    fast path's range. *)
val numeric_fallbacks : string

(** Branch-and-bound nodes evaluated by {!Milp.Solver}. *)
val milp_nodes : string

(** Incumbent improvements (warm starts included) in
    {!Milp.Solver}. *)
val milp_incumbents : string

(** Cost-oracle evaluations by {!Rentcost.Heuristics}. *)
val heuristic_evals : string

(** {2 Serving-layer counters ([Rentcost_service])}

    Bumped by the provisioning service engine; the daemon's [stats]
    and [metrics] requests and shutdown dump read them alongside the
    solver counters. *)

(** Solve requests admitted (sheds excluded). *)
val service_requests : string

(** Requests answered from the solution cache (exact and monotone hits
    both count; see also {!service_monotone_hits}). *)
val service_cache_hits : string

(** Solve requests that went to an engine (cold or warm-started). *)
val service_cache_misses : string

(** Cache hits served through monotone reuse: a cached optimal
    allocation for a higher target answering a lower one. *)
val service_monotone_hits : string

(** Engine solves seeded with a nearby cached allocation. *)
val service_warm_starts : string

(** Requests that reused an already-compiled instance (problem refs
    and fingerprint-equal inline problems). *)
val service_compile_reuse : string

(** Requests shed by admission control ([Overloaded] responses). *)
val service_shed : string

(** Duplicate in-flight solve requests served from another request's
    outcome: single-flight followers, whatever path attached them (the
    in-flight table, a worker's compatible batch, or the completing
    leader's queue sweep). *)
val service_coalesced : string

(** Worker wakeups that drained more than one compatible request
    (batch admission); single-job wakeups are not counted. *)
val service_batches : string

(** [service_op "solve"] etc. — per-op request counters bumped by the
    service engine for every protocol operation it is handed. *)
val service_op : string -> string

(** {2 Autoscale counters ([Rentcost_autoscale])} *)

(** Demand ticks fed to an elastic controller. *)
val autoscale_ticks : string

(** Controller ticks that triggered a warm-started re-solve. *)
val autoscale_replans : string

(** Controller ticks held inside the deadband (no re-solve). *)
val autoscale_holds : string

(** Ticks whose demand exceeded the provisioned throughput before the
    controller could react (SLO violations). *)
val autoscale_violations : string

(** {2 Parallel-execution counters ([Rentcost_parallel])} *)

(** Tasks submitted to a {!Rentcost_parallel.Pool}. *)
val parallel_tasks : string

(** Tasks a pool lane executed from {e another} lane's queue (work
    stealing). *)
val parallel_steals : string

(** [parallel_win "h32_jump"] etc. — portfolio races won per strategy
    (the strategy whose incumbent the deterministic reduction
    selected). *)
val parallel_win : string -> string

(** {1 Well-known histogram names} *)

(** Request handling latency in the service engine, seconds. *)
val service_latency_seconds : string

(** Queue wait of drained solve jobs, seconds. *)
val service_queue_wait_seconds : string

(** End-to-end [Rentcost.Solver.solve_on] wall time, seconds. *)
val solver_wall_seconds : string

(** Cost-oracle evaluations per heuristic run (a size histogram). *)
val heuristic_run_evals : string

(** Branch-and-bound nodes per MILP solve (a size histogram). *)
val milp_solve_nodes : string

(** Pool queue depth sampled at each task submission (a size
    histogram). *)
val parallel_queue_depth : string

(** End-to-end portfolio race wall time, seconds. *)
val parallel_portfolio_seconds : string

(** Wall time of each elastic-controller re-solve, seconds. *)
val autoscale_resolve_seconds : string
