(** The observability substrate shared by every layer of the solver
    stack: monotone counters, fixed-bucket histograms and hierarchical
    spans, with a Prometheus-style text exposition.

    The solver stack spans several libraries (the simplex engines in
    [lp], branch and bound in [milp], the heuristics in [rentcost],
    the provisioning service in [rentcost_service]), and a single
    user-facing solve may drive any combination of them. Rather than
    thread effort statistics through every return type, each layer
    records against a named global instrument at its unit of work, and
    observers — [Rentcost.Solver], the daemon's [stats] and [metrics]
    requests, the bench harness — read the shared state.

    {b Counters} are monotone: never reset, only read, so nested or
    interleaved observers cannot corrupt each other — each computes
    its own before/after difference. {b Histograms} bucket latency or
    size observations under fixed upper bounds (Prometheus ["le"]
    semantics: an observation lands in the first bucket whose bound is
    [>=] the value). {b Spans} time a bracketed computation on the
    shared clock and land in a bounded in-memory ring (and an optional
    sink), carrying parent links so a trace reconstructs the call
    tree.

    Everything honours one kill switch: {!set_enabled}[ false] freezes
    counters and histograms and makes {!Span.with_span} a tail call of
    its body — no clock reads, no allocation — so instrumented code
    paths are effectively zero-cost when observability is off.

    Thread-safety: every instrument is safe and {e exact} under
    parallel writers. Counters are atomics (wait-free bump/add, no
    lost increments); each histogram guards its buckets, sum and count
    with one mutex, so snapshots never tear; span ring slots are
    claimed with a fetch-and-add, the open-span context is
    domain-local (a worker's spans nest under {e its own} enclosing
    span, not another domain's), and the sink runs under its own mutex
    so a trace writer's lines never interleave. Registration and
    snapshots ({!counter}, {!histogram}, {!all}, {!histograms}) keep
    their original registry mutex. *)

val enabled : unit -> bool

(** Globally enable or disable all recording. Disabling does not clear
    accumulated values. *)
val set_enabled : bool -> unit

(** The clock spans are timed on, in seconds. Defaults to
    [Unix.gettimeofday]; {!set_clock} swaps it (tests use a
    deterministic counter). *)
val now : unit -> float

val set_clock : (unit -> float) -> unit

(** {1 Counters} *)

type counter

(** [counter name] finds or creates the counter registered under
    [name]. Calls with equal names return the same counter, which is
    how independent libraries share one counter without depending on
    each other. *)
val counter : string -> counter

(** [bump c] adds 1 to [c] (no-op when recording is disabled). *)
val bump : counter -> unit

(** [add c n] adds [n] to [c] (no-op when recording is disabled). *)
val add : counter -> int -> unit

(** Current value of a counter (monotone since program start). *)
val read : counter -> int

(** [value name] is [read (counter name)] — 0 for never-bumped
    names. *)
val value : string -> int

(** All registered counters with their current values, sorted by
    name. The list is a snapshot: iterating it while new counters are
    registered is safe. *)
val all : unit -> (string * int) list

(** {1 Histograms} *)

type histogram

(** [histogram name ~bounds] finds or creates the histogram registered
    under [name]. [bounds] are strictly increasing bucket upper
    bounds; an implicit overflow bucket catches everything above the
    last. Re-registering with different bounds raises
    [Invalid_argument]. *)
val histogram : string -> bounds:float array -> histogram

(** [observe h v] adds one observation (no-op when recording is
    disabled). [v] lands in the first bucket whose bound is [>= v]
    (["le"] semantics), or the overflow bucket. *)
val observe : histogram -> float -> unit

type histogram_snapshot = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;
      (** per-bucket (not cumulative); length [|h_bounds| + 1], last
          entry is the overflow bucket *)
  h_sum : float;
  h_count : int;
}

val snapshot : histogram -> histogram_snapshot

(** All registered histograms, snapshotted, sorted by name. *)
val histograms : unit -> histogram_snapshot list

(** {1 Spans} *)

module Span : sig
  (** A completed timed region. [parent] is the id of the span that
      was open when this one started (0 = none); [depth] its nesting
      depth. Ids are unique and increasing within a process. *)
  type t = {
    id : int;
    parent : int;
    depth : int;
    name : string;
    attrs : (string * string) list;
    start : float;  (** clock value at entry *)
    duration : float;  (** seconds *)
  }

  (** [with_span name f] times [f ()] and records the completed span
      in the ring buffer (and the sink, when set). Spans nest: a span
      opened inside [f] is parented under this one, including across
      library boundaries. When recording is disabled this is exactly
      [f ()] — no clock read, no allocation. Exceptions propagate; the
      span is still recorded. *)
  val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

  (** [record ~name ~start ~duration ()] pushes an externally timed
      span — used by sampled loops that time blocks of iterations
      themselves. Parented under the innermost open [with_span]. *)
  val record :
    ?attrs:(string * string) list ->
    name:string ->
    start:float ->
    duration:float ->
    unit ->
    unit

  (** Retained spans, oldest first, at most {!capacity} of them.
      Parents complete after their children, so a parent appears after
      the spans it contains. *)
  val recent : unit -> t list

  (** Total spans recorded since start (or the last {!set_capacity} /
      {!clear}) — exceeds [capacity ()] once the ring has wrapped. *)
  val recorded : unit -> int

  val capacity : unit -> int

  (** Resize the ring (discards retained spans). Default 256. *)
  val set_capacity : int -> unit

  (** Drop all retained spans (ids keep increasing). *)
  val clear : unit -> unit

  (** A sink sees every completed span as it is recorded — the JSONL
      trace writer in [Rentcost_service.Metrics] installs itself
      here. [None] (the default) disables forwarding. *)
  val set_sink : (t -> unit) option -> unit
end

(** {1 Text exposition}

    A Prometheus-style rendering of every counter and histogram:
    [name_total] lines for counters, [name_bucket{le="..."}] (with
    cumulative counts), [name_sum] and [name_count] lines for
    histograms. Metric names have non-identifier characters replaced
    by ["_"]. *)
val text_exposition : unit -> string

(** [sanitize name] is the exposition spelling of a metric name. *)
val sanitize : string -> string

(** {1 Well-known counter names}

    The names used by this project's instrumented layers, collected
    here so observers do not scatter string literals. *)

(** Simplex pivots, across both the row-based and bounded-variable
    engines ({!Lp.Simplex}, {!Lp.Bounded}). *)
val lp_pivots : string

(** Solves completed on the overflow-checked fast numeric kernel
    ({!Numeric.Fix64}) by the Fix64-first driver in [Rentcost.Ilp]. *)
val numeric_fast_solves : string

(** Solves restarted on the exact {!Numeric.Rat} kernel after the fast
    kernel raised [Numeric.Kernel.Overflow]. Zero on the default
    paper-scale workload; a growing value means instances exceed the
    fast path's range. *)
val numeric_fallbacks : string

(** Branch-and-bound nodes evaluated by {!Milp.Solver}. *)
val milp_nodes : string

(** Incumbent improvements (warm starts included) in
    {!Milp.Solver}. *)
val milp_incumbents : string

(** Cost-oracle evaluations by {!Rentcost.Heuristics}. *)
val heuristic_evals : string

(** {2 Serving-layer counters ([Rentcost_service])}

    Bumped by the provisioning service engine; the daemon's [stats]
    and [metrics] requests and shutdown dump read them alongside the
    solver counters. *)

(** Solve requests admitted (sheds excluded). *)
val service_requests : string

(** Requests answered from the solution cache (exact and monotone hits
    both count; see also {!service_monotone_hits}). *)
val service_cache_hits : string

(** Solve requests that went to an engine (cold or warm-started). *)
val service_cache_misses : string

(** Cache hits served through monotone reuse: a cached optimal
    allocation for a higher target answering a lower one. *)
val service_monotone_hits : string

(** Engine solves seeded with a nearby cached allocation. *)
val service_warm_starts : string

(** Requests that reused an already-compiled instance (problem refs
    and fingerprint-equal inline problems). *)
val service_compile_reuse : string

(** Requests shed by admission control ([Overloaded] responses). *)
val service_shed : string

(** [service_op "solve"] etc. — per-op request counters bumped by the
    service engine for every protocol operation it is handed. *)
val service_op : string -> string

(** {2 Autoscale counters ([Rentcost_autoscale])} *)

(** Demand ticks fed to an elastic controller. *)
val autoscale_ticks : string

(** Controller ticks that triggered a warm-started re-solve. *)
val autoscale_replans : string

(** Controller ticks held inside the deadband (no re-solve). *)
val autoscale_holds : string

(** Ticks whose demand exceeded the provisioned throughput before the
    controller could react (SLO violations). *)
val autoscale_violations : string

(** {2 Parallel-execution counters ([Rentcost_parallel])} *)

(** Tasks submitted to a {!Rentcost_parallel.Pool}. *)
val parallel_tasks : string

(** Tasks a pool lane executed from {e another} lane's queue (work
    stealing). *)
val parallel_steals : string

(** [parallel_win "h32_jump"] etc. — portfolio races won per strategy
    (the strategy whose incumbent the deterministic reduction
    selected). *)
val parallel_win : string -> string

(** {1 Well-known histogram names} *)

(** Request handling latency in the service engine, seconds. *)
val service_latency_seconds : string

(** Queue wait of drained solve jobs, seconds. *)
val service_queue_wait_seconds : string

(** End-to-end [Rentcost.Solver.solve_on] wall time, seconds. *)
val solver_wall_seconds : string

(** Cost-oracle evaluations per heuristic run (a size histogram). *)
val heuristic_run_evals : string

(** Branch-and-bound nodes per MILP solve (a size histogram). *)
val milp_solve_nodes : string

(** Pool queue depth sampled at each task submission (a size
    histogram). *)
val parallel_queue_depth : string

(** End-to-end portfolio race wall time, seconds. *)
val parallel_portfolio_seconds : string

(** Wall time of each elastic-controller re-solve, seconds. *)
val autoscale_resolve_seconds : string
