(** Exact two-phase primal simplex.

    Solves a {!Model.t} in exact rational arithmetic using the dense
    tableau method with Bland's anti-cycling rule, so termination is
    guaranteed and results carry no floating-point error. This is the
    relaxation engine under {!module:Milp.Solver}, standing in for the
    commercial LP solver (Gurobi) used in the paper.

    Complexity is exponential in the worst case but the models built by
    this project stay small (tens of rows/columns), where exact simplex
    is fast and — unlike floating-point codes — never returns a
    slightly-infeasible or slightly-suboptimal basis.

    The pivoting core is functorized over a {!Numeric.Kernel}: every
    entering/leaving decision depends only on exact signs and
    comparisons, so all kernels walk the same pivot sequence and the
    result is bit-identical across kernels — a range-restricted kernel
    ({!Numeric.Fix64}) merely raises [Numeric.Kernel.Overflow] partway
    instead of completing. The production fast path ({!Fast}) is not a
    kernel instance but a fraction-free engine over native-int rows;
    it makes the same pivot decisions, so its results are bit-identical
    too. The top-level {!solve} is the exact-kernel instance and never
    raises. *)

(** An optimal point: [objective] includes any constant term of the
    model's objective; [values] has one entry per model variable. *)
type solution = { objective : Numeric.Rat.t; values : Numeric.Rat.t array }

type result =
  | Optimal of solution
  | Infeasible  (** no point satisfies the constraints *)
  | Unbounded  (** the objective can be improved without limit *)

(** [solve model] optimizes the model exactly. *)
val solve : Model.t -> result

(** Number of pivots performed by the last [solve] call on this domain
    (statistics for benchmarking; not part of the solver contract). *)
val last_pivot_count : unit -> int

(** {1 Tableau introspection}

    Cut generators ({!Gomory}) need the optimal basis and tableau, not
    just the solution point. *)

(** What an internal simplex column stands for. *)
type col_desc =
  | Structural of int  (** model variable index *)
  | Slack of int  (** slack/surplus of oriented row [i] *)
  | Artificial

type details = {
  solution : solution;
  basis : int array;  (** basic column per tableau row *)
  tableau : Numeric.Rat.t array array;
      (** final rows; entry [i].(j) for column [j], last entry = rhs *)
  cols : col_desc array;
  oriented_rows : (Linexpr.t * Model.cmp * Numeric.Rat.t) array;
      (** the model rows after sign orientation (non-negative rhs), in
          tableau row order: [Slack i] relates to [oriented_rows.(i)] *)
}

(** [solve_detailed model] is {!solve} plus the final tableau when the
    model has a finite optimum. *)
val solve_detailed : Model.t -> details option

(** {1 Kernel-parameterized engines}

    Results (including {!details}) are always delivered in exact
    {!Numeric.Rat} regardless of the kernel computing them. *)

module type ENGINE = sig
  (** May raise [Numeric.Kernel.Overflow] when the kernel is
      range-restricted; {!Exact} never does. *)
  val solve : Model.t -> result

  val solve_detailed : Model.t -> details option
end

module Make (K : Numeric.Kernel.S) : ENGINE

(** {!Make} over {!Numeric.Kernel.Exact}; the top-level {!solve}. *)
module Exact : ENGINE

(** The fraction-free fast path. Each tableau row is a native-int
    vector carrying an implicit positive scale (its entry under its
    own basic column), so a pivot is two integer multiplies and a
    subtract per entry — no division, no gcd, no allocation on the hot
    loop. Reduced-cost signs are confirmed in exact {!Numeric.Rat}
    arithmetic, so the engine walks the same Bland pivot sequence as
    {!Exact} and returns bit-identical results. Raises
    [Numeric.Kernel.Overflow] when a row outgrows the native range
    even after gcd reduction (or when an input coefficient cannot be
    integerized within it) — callers fall back to {!Exact} (see
    [Rentcost.Ilp]). *)
module Fast : ENGINE
