(* Bounded-variable primal simplex on a dense tableau, functorized
   over the numeric kernel (see {!Numeric.Kernel} and the determinism
   argument in {!Simplex}).

   Normal form: every model row becomes [Σ a_j·x̂_j (+ s) (+ a) = b̂]
   after (1) shifting each structural variable by its lower bound
   ([x = lo + x̂], so every x̂ lives in [0, û] with û possibly infinite),
   (2) rewriting Ge rows as Le by negation, and (3) orienting rows so
   the initial basic variable (slack, or artificial when the slack
   would start negative) is feasible.

   The tableau (including its right-hand-side column) is transformed
   purely algebraically by pivots; the location array records where
   each nonbasic variable sits (Lower or Upper), and basic values are
   recovered on demand as

     x_B(i) = T_i,rhs − Σ_{j at Upper} T_ij · û_j,

   which holds in every basis because the tableau identity does. Bound
   flips therefore cost O(1): only the location changes.

   Entering follows Bland's rule extended to bounds (smallest index
   whose reduced cost improves in the direction its bound allows);
   leaving picks the smallest variable index among the ratio-test ties,
   with a bound flip competing as "leaving variable = entering". *)

module R = Numeric.Rat

let pivot_count = ref 0
let last_pivot_count () = !pivot_count

let pivots_counter = Telemetry.counter Telemetry.lp_pivots

type loc = Basic of int | Lower | Upper

module type ENGINE = sig
  val solve : Model.t -> Simplex.result
end

module Make (K : Numeric.Kernel.S) = struct
  let span_attrs = [ ("lp.kernel", K.name) ]

  type tableau = {
    tab : K.t array array;  (* m rows of (ncols + 1); last entry = rhs *)
    loc : loc array;  (* ncols *)
    ub : K.t option array;  (* shifted upper bound per column; None = ∞ *)
    basis : int array;  (* m: column basic in each row *)
    ncols : int;
    art_start : int;
  }

  (* x_B values under the current nonbasic locations. *)
  let basic_values t =
    let m = Array.length t.basis in
    let xb = Array.init m (fun i -> t.tab.(i).(t.ncols)) in
    Array.iteri
      (fun j l ->
        match (l, t.ub.(j)) with
        | Upper, Some u when not (K.is_zero u) ->
          for i = 0 to m - 1 do
            let a = t.tab.(i).(j) in
            if not (K.is_zero a) then xb.(i) <- K.sub xb.(i) (K.mul a u)
          done
        | _ -> ())
      t.loc;
    xb

  let pivot t z r c =
    incr pivot_count;
    Telemetry.bump pivots_counter;
    let row_r = t.tab.(r) in
    let piv = row_r.(c) in
    if not (K.equal piv K.one) then begin
      let inv = K.inv piv in
      for j = 0 to t.ncols do
        if not (K.is_zero row_r.(j)) then row_r.(j) <- K.mul row_r.(j) inv
      done
    end;
    let eliminate row =
      let f = row.(c) in
      if not (K.is_zero f) then
        for j = 0 to t.ncols do
          if not (K.is_zero row_r.(j)) then
            row.(j) <- K.sub row.(j) (K.mul f row_r.(j))
        done
    in
    Array.iteri (fun i row -> if i <> r then eliminate row) t.tab;
    eliminate z;
    t.basis.(r) <- c

  let init_cost_row t costs =
    let z = Array.make (t.ncols + 1) K.zero in
    Array.blit costs 0 z 0 t.ncols;
    Array.iteri
      (fun i row ->
        let cb = costs.(t.basis.(i)) in
        if not (K.is_zero cb) then
          for j = 0 to t.ncols do
            if not (K.is_zero row.(j)) then z.(j) <- K.sub z.(j) (K.mul cb row.(j))
          done)
      t.tab;
    z

  type phase_result = Phase_optimal | Phase_unbounded

  let run_phase t z ~banned =
    let m = Array.length t.basis in
    let rec loop () =
      (* Entering: Bland — smallest index improving in its free direction.
         Columns fixed at a zero-width domain never enter. *)
      let entering = ref None in
      (try
         for j = 0 to t.ncols - 1 do
           if not (banned j) then begin
             let fixed = match t.ub.(j) with Some u -> K.is_zero u | None -> false in
             if not fixed then begin
               match t.loc.(j) with
               | Basic _ -> ()
               | Lower ->
                 if K.sign z.(j) < 0 then begin
                   entering := Some (j, 1);
                   raise Exit
                 end
               | Upper ->
                 if K.sign z.(j) > 0 then begin
                   entering := Some (j, -1);
                   raise Exit
                 end
             end
           end
         done
       with Exit -> ());
      match !entering with
      | None -> Phase_optimal
      | Some (c, dir) ->
        let xb = basic_values t in
        (* candidates: (limit t, leaving var index, action) *)
        let best : (K.t * int * [ `Flip | `Row of int ]) option ref = ref None in
        let consider limit var action =
          match !best with
          | Some (bt, bv, _) when
              K.compare bt limit < 0 || (K.equal bt limit && bv <= var) -> ()
          | _ -> best := Some (limit, var, action)
        in
        (match t.ub.(c) with
         | Some u -> consider u c `Flip
         | None -> ());
        for i = 0 to m - 1 do
          let a =
            if dir = 1 then t.tab.(i).(c) else K.neg t.tab.(i).(c)
          in
          (* x_B(i) moves by −a·t as the entering variable moves by t. *)
          if K.sign a > 0 then
            (* decreasing toward its lower bound 0 *)
            consider (K.div xb.(i) a) t.basis.(i) (`Row i)
          else if K.sign a < 0 then begin
            match t.ub.(t.basis.(i)) with
            | Some u ->
              consider (K.div (K.sub u xb.(i)) (K.neg a)) t.basis.(i) (`Row i)
            | None -> ()
          end
        done;
        (match !best with
         | None -> Phase_unbounded
         | Some (tstar, _, `Flip) ->
           ignore tstar;
           t.loc.(c) <- (match t.loc.(c) with Lower -> Upper | _ -> Lower);
           loop ()
         | Some (tstar, _, `Row r) ->
           (* Leaving variable lands on the bound it hit. *)
           let leaving = t.basis.(r) in
           let a = if dir = 1 then t.tab.(r).(c) else K.neg t.tab.(r).(c) in
           let leaving_loc = if K.sign a > 0 then Lower else Upper in
           (* The entering variable's new value is implied by the tableau
              identity once locations are updated; record the entering
              column's previous location so the rhs interpretation stays
              consistent: pivoting keeps the algebraic identity, and the
              entering column simply stops being a nonbasic-at-bound. *)
           ignore tstar;
           pivot t z r c;
           t.loc.(c) <- Basic r;
           t.loc.(leaving) <- leaving_loc;
           loop ())
    in
    loop ()

  let solve_impl model =
    pivot_count := 0;
    let nstruct = Model.num_vars model in
    (* Shifted domains; crossing bounds are infeasible outright. The
       shift itself runs in Rat — it is part of the model contract —
       and the shifted data enters the kernel afterwards. *)
    let lo = Array.make nstruct R.zero in
    let shifted_ub = Array.make nstruct None in
    let crossing = ref false in
    for v = 0 to nstruct - 1 do
      let l, u = Model.bounds model v in
      lo.(v) <- l;
      match u with
      | Some u ->
        let w = R.sub u l in
        if R.sign w < 0 then crossing := true;
        shifted_ub.(v) <- Some w
      | None -> ()
    done;
    if !crossing then Simplex.Infeasible
    else begin
      let constrs = Model.constraints model in
      let m = List.length constrs in
      (* Shift rhs by A·lo, convert Ge to Le, then orient so the initial
         basic variable starts feasible. *)
      let prepared =
        List.map
          (fun { Model.expr; cmp; rhs; _ } ->
            let shift =
              List.fold_left
                (fun acc (v, c) -> R.add acc (R.mul c lo.(v)))
                R.zero (Linexpr.terms expr)
            in
            let rhs = R.sub rhs shift in
            match cmp with
            | Model.Ge -> (Linexpr.neg expr, Model.Le, R.neg rhs)
            | Model.Le -> (expr, Model.Le, rhs)
            | Model.Eq -> (expr, Model.Eq, rhs))
          constrs
      in
      (* Column layout: structurals, slacks for Le rows, artificials for
         rows whose slack would start infeasible (Le with negative rhs)
         and for all Eq rows. *)
      let nslack =
        List.fold_left
          (fun acc (_, cmp, _) -> if cmp = Model.Le then acc + 1 else acc)
          0 prepared
      in
      let nart =
        List.fold_left
          (fun acc (_, cmp, rhs) ->
            match cmp with
            | Model.Le -> if R.sign rhs < 0 then acc + 1 else acc
            | Model.Eq -> acc + 1
            | Model.Ge -> acc)
          0 prepared
      in
      let art_start = nstruct + nslack in
      let ncols = art_start + nart in
      let tab = Array.init m (fun _ -> Array.make (ncols + 1) K.zero) in
      let basis = Array.make m (-1) in
      let loc = Array.make ncols Lower in
      let ub = Array.make ncols None in
      for v = 0 to nstruct - 1 do
        ub.(v) <- Option.map K.of_rat shifted_ub.(v)
      done;
      let slack_idx = ref nstruct and art_idx = ref art_start in
      List.iteri
        (fun i (expr, cmp, rhs) ->
          let row = tab.(i) in
          (* Negate the whole row when the rhs is negative so the initial
             basic variable (artificial) is non-negative. *)
          let negate = R.sign rhs < 0 in
          let put v c = row.(v) <- K.of_rat (if negate then R.neg c else c) in
          List.iter (fun (v, c) -> put v c) (Linexpr.terms expr);
          row.(ncols) <- K.of_rat (if negate then R.neg rhs else rhs);
          (match cmp with
           | Model.Le ->
             put !slack_idx R.one;
             if negate then begin
               (* slack coefficient is now -1; an artificial provides the
                  feasible start *)
               row.(!art_idx) <- K.one;
               basis.(i) <- !art_idx;
               loc.(!art_idx) <- Basic i;
               incr art_idx
             end
             else begin
               basis.(i) <- !slack_idx;
               loc.(!slack_idx) <- Basic i
             end;
             incr slack_idx
           | Model.Eq ->
             row.(!art_idx) <- K.one;
             basis.(i) <- !art_idx;
             loc.(!art_idx) <- Basic i;
             incr art_idx
           | Model.Ge -> assert false))
        prepared;
      let t = { tab; loc; ub; basis; ncols; art_start } in
      (* Phase 1 *)
      let feasible =
        if nart = 0 then true
        else begin
          let costs = Array.make ncols K.zero in
          for j = art_start to ncols - 1 do
            costs.(j) <- K.one
          done;
          let z = init_cost_row t costs in
          (match run_phase t z ~banned:(fun _ -> false) with
           | Phase_unbounded -> assert false (* bounded below by zero *)
           | Phase_optimal -> ());
          let xb = basic_values t in
          let infeasibility = ref K.zero in
          Array.iteri
            (fun i bv ->
              if bv >= art_start then infeasibility := K.add !infeasibility xb.(i))
            t.basis;
          if K.sign !infeasibility > 0 then false
          else begin
            (* Drive residual zero-valued artificials out where a
               non-artificial column is available in their row. *)
            Array.iteri
              (fun i bv ->
                if bv >= art_start then begin
                  let found = ref (-1) in
                  (try
                     for j = 0 to art_start - 1 do
                       if not (K.is_zero tab.(i).(j)) then begin
                         found := j;
                         raise Exit
                       end
                     done
                   with Exit -> ());
                  if !found >= 0 then begin
                    let j = !found in
                    let old_loc = t.loc.(j) in
                    pivot t z i j;
                    t.loc.(j) <- Basic i;
                    t.loc.(bv) <- Lower;
                    (* A nonbasic previously at Upper keeps the identity
                       consistent only through its location; entering at
                       value û is fine — the pivot is degenerate because
                       the artificial sat at zero. *)
                    ignore old_loc
                  end
                end)
              t.basis;
            true
          end
        end
      in
      if not feasible then Simplex.Infeasible
      else begin
        let sense, obj = Model.objective model in
        let costs = Array.make ncols K.zero in
        List.iter
          (fun (v, c) ->
            costs.(v) <-
              K.of_rat (match sense with Model.Minimize -> c | Maximize -> R.neg c))
          (Linexpr.terms obj);
        let z = init_cost_row t costs in
        match run_phase t z ~banned:(fun j -> j >= t.art_start) with
        | Phase_unbounded -> Simplex.Unbounded
        | Phase_optimal ->
          let xb = basic_values t in
          let values = Array.make nstruct R.zero in
          for v = 0 to nstruct - 1 do
            let shifted =
              match t.loc.(v) with
              | Basic i -> xb.(i)
              | Lower -> K.zero
              | Upper -> (match t.ub.(v) with Some u -> u | None -> assert false)
            in
            values.(v) <- R.add lo.(v) (K.to_rat shifted)
          done;
          let objective = Linexpr.eval obj values in
          Simplex.Optimal { Simplex.objective; values }
      end
    end

  let solve model =
    Telemetry.Span.with_span ~attrs:span_attrs "lp.bounded" (fun () ->
        solve_impl model)
end

module Exact = Make (Numeric.Kernel.Exact)
module Fast = Make (Numeric.Fix64)

let solve = Exact.solve
