(* Two-phase primal simplex on a dense rational tableau.

   Layout: [tab] has one row per constraint; each row has [ncols + 1]
   entries, the last being the right-hand side. [basis.(i)] is the
   column currently basic in row [i]. The cost row [z] holds reduced
   costs, with [z.(ncols)] equal to minus the current objective value.
   Pivoting keeps all invariants by plain Gaussian elimination, and
   Bland's rule (smallest-index entering and leaving) guarantees
   termination even on degenerate bases. *)

module R = Numeric.Rat

type solution = { objective : R.t; values : R.t array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded

let pivot_count = ref 0
let last_pivot_count () = !pivot_count

let pivots_counter = Telemetry.counter Telemetry.lp_pivots

type tableau = {
  tab : R.t array array;  (* m rows of (ncols + 1) entries *)
  basis : int array;      (* m entries *)
  ncols : int;
  nstruct : int;          (* structural variables: columns 0 .. nstruct-1 *)
  art_start : int;        (* artificial columns: art_start .. ncols-1 *)
}

(* Eliminate column [c] from every row but [r] after normalizing row [r]. *)
let pivot t z r c =
  incr pivot_count;
  Telemetry.bump pivots_counter;
  let row_r = t.tab.(r) in
  let piv = row_r.(c) in
  if not (R.equal piv R.one) then begin
    let inv = R.inv piv in
    for j = 0 to t.ncols do
      if not (R.is_zero row_r.(j)) then row_r.(j) <- R.mul row_r.(j) inv
    done
  end;
  let eliminate row =
    let f = row.(c) in
    if not (R.is_zero f) then
      for j = 0 to t.ncols do
        if not (R.is_zero row_r.(j)) then
          row.(j) <- R.sub row.(j) (R.mul f row_r.(j))
      done
  in
  Array.iteri (fun i row -> if i <> r then eliminate row) t.tab;
  eliminate z;
  t.basis.(r) <- c

(* Initialize the reduced-cost row for the given column costs and the
   current basis. *)
let init_cost_row t costs =
  let z = Array.make (t.ncols + 1) R.zero in
  Array.blit costs 0 z 0 t.ncols;
  Array.iteri
    (fun i row ->
      let cb = costs.(t.basis.(i)) in
      if not (R.is_zero cb) then
        for j = 0 to t.ncols do
          if not (R.is_zero row.(j)) then z.(j) <- R.sub z.(j) (R.mul cb row.(j))
        done)
    t.tab;
  z

type phase_result = Phase_optimal | Phase_unbounded

(* Minimize with Bland's rule; columns [j] with [banned j] never enter. *)
let run_phase t z ~banned =
  let m = Array.length t.tab in
  let rec loop () =
    (* Entering: smallest index with negative reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if (not (banned j)) && R.sign z.(j) < 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Phase_optimal
    else begin
      let c = !entering in
      (* Ratio test: min rhs_i / tab_ic over tab_ic > 0; ties by
         smallest basic variable index (Bland). *)
      let best_row = ref (-1) in
      let best_ratio = ref R.zero in
      for i = 0 to m - 1 do
        let a = t.tab.(i).(c) in
        if R.sign a > 0 then begin
          let ratio = R.div t.tab.(i).(t.ncols) a in
          if
            !best_row < 0
            || R.compare ratio !best_ratio < 0
            || (R.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then Phase_unbounded
      else begin
        pivot t z !best_row c;
        loop ()
      end
    end
  in
  loop ()

type col_desc =
  | Structural of int
  | Slack of int
  | Artificial

type details = {
  solution : solution;
  basis : int array;
  tableau : R.t array array;
  cols : col_desc array;
  oriented_rows : (Linexpr.t * Model.cmp * R.t) array;
}

(* Core solve; optionally captures the final state. Variable bounds
   from the model are materialized as ordinary rows here — the
   {!Bounded} engine handles them natively. *)
let solve_core model =
  pivot_count := 0;
  let nstruct = Model.num_vars model in
  let bound_rows =
    List.concat_map
      (fun v ->
        let lo, up = Model.bounds model v in
        let lower =
          if R.sign lo > 0 then
            [ { Model.expr = Linexpr.var v; cmp = Model.Ge; rhs = lo; cname = "" } ]
          else []
        in
        let upper =
          match up with
          | Some u ->
            [ { Model.expr = Linexpr.var v; cmp = Model.Le; rhs = u; cname = "" } ]
          | None -> []
        in
        lower @ upper)
      (List.init nstruct Fun.id)
  in
  let constrs = Model.constraints model @ bound_rows in
  let m = List.length constrs in
  (* Orient every row so its right-hand side is non-negative. *)
  let oriented =
    List.map
      (fun { Model.expr; cmp; rhs; _ } ->
        if R.sign rhs < 0 then
          let cmp = match cmp with Model.Le -> Model.Ge | Ge -> Le | Eq -> Eq in
          (Linexpr.neg expr, cmp, R.neg rhs)
        else (expr, cmp, rhs))
      constrs
  in
  (* Column layout: structurals, then one slack/surplus per inequality,
     then one artificial per Ge/Eq row. *)
  let nslack =
    List.fold_left
      (fun acc (_, cmp, _) -> match cmp with Model.Le | Ge -> acc + 1 | Eq -> acc)
      0 oriented
  in
  let nart =
    List.fold_left
      (fun acc (_, cmp, _) -> match cmp with Model.Ge | Eq -> acc + 1 | Le -> acc)
      0 oriented
  in
  let art_start = nstruct + nslack in
  let ncols = art_start + nart in
  let tab = Array.init m (fun _ -> Array.make (ncols + 1) R.zero) in
  let basis = Array.make m (-1) in
  let cols = Array.make ncols Artificial in
  Array.iteri (fun v _ -> if v < nstruct then cols.(v) <- Structural v) cols;
  let slack_idx = ref nstruct and art_idx = ref art_start in
  List.iteri
    (fun i (expr, cmp, rhs) ->
      let row = tab.(i) in
      List.iter (fun (v, c) -> row.(v) <- c) (Linexpr.terms expr);
      row.(ncols) <- rhs;
      (match cmp with
       | Model.Le ->
         row.(!slack_idx) <- R.one;
         cols.(!slack_idx) <- Slack i;
         basis.(i) <- !slack_idx;
         incr slack_idx
       | Model.Ge ->
         row.(!slack_idx) <- R.minus_one;
         cols.(!slack_idx) <- Slack i;
         incr slack_idx;
         row.(!art_idx) <- R.one;
         basis.(i) <- !art_idx;
         incr art_idx
       | Model.Eq ->
         row.(!art_idx) <- R.one;
         basis.(i) <- !art_idx;
         incr art_idx))
    oriented;
  let t = { tab; basis; ncols; nstruct; art_start } in
  (* Phase 1: minimize the sum of artificial variables. *)
  let feasible =
    if nart = 0 then true
    else begin
      let costs = Array.make ncols R.zero in
      for j = art_start to ncols - 1 do
        costs.(j) <- R.one
      done;
      let z = init_cost_row t costs in
      (match run_phase t z ~banned:(fun _ -> false) with
       | Phase_unbounded ->
         (* Phase-1 objective is bounded below by zero; unbounded is
            impossible with exact arithmetic. *)
         assert false
       | Phase_optimal -> ());
      if R.sign (R.neg z.(ncols)) > 0 then false
      else begin
        (* Drive any residual artificial out of the basis with a
           degenerate pivot when the row has a usable column; rows that
           are all-zero outside artificials are redundant and can keep
           their zero-valued artificial (artificials are banned from
           re-entering in phase 2). *)
        Array.iteri
          (fun i bv ->
            if bv >= art_start then begin
              let found = ref (-1) in
              (try
                 for j = 0 to art_start - 1 do
                   if not (R.is_zero tab.(i).(j)) then begin
                     found := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !found >= 0 then pivot t z i !found
            end)
          basis;
        true
      end
    end
  in
  if not feasible then (Infeasible, None)
  else begin
    (* Phase 2: the real objective (negated for maximization). *)
    let sense, obj = Model.objective model in
    let obj_const = Linexpr.const obj in
    let costs = Array.make ncols R.zero in
    List.iter
      (fun (v, c) ->
        costs.(v) <- (match sense with Model.Minimize -> c | Maximize -> R.neg c))
      (Linexpr.terms obj);
    let z = init_cost_row t costs in
    match run_phase t z ~banned:(fun j -> j >= t.art_start) with
    | Phase_unbounded -> (Unbounded, None)
    | Phase_optimal ->
      let values = Array.make nstruct R.zero in
      Array.iteri
        (fun i bv -> if bv < nstruct then values.(bv) <- tab.(i).(ncols))
        basis;
      let minimized = R.neg z.(ncols) in
      let objective =
        match sense with
        | Model.Minimize -> R.add minimized obj_const
        | Maximize -> R.add (R.neg minimized) obj_const
      in
      let solution = { objective; values } in
      ( Optimal solution,
        Some
          { solution;
            basis = Array.copy basis;
            tableau = tab;
            cols;
            oriented_rows = Array.of_list oriented } )
  end

let solve model =
  Telemetry.Span.with_span "lp.simplex" (fun () -> fst (solve_core model))

let solve_detailed model =
  Telemetry.Span.with_span "lp.simplex" (fun () -> snd (solve_core model))
