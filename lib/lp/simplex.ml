(* Two-phase primal simplex on a dense tableau, functorized over the
   numeric kernel (see {!Numeric.Kernel}).

   Layout: [tab] has one row per constraint; each row has [ncols + 1]
   entries, the last being the right-hand side. [basis.(i)] is the
   column currently basic in row [i]. The cost row [z] holds reduced
   costs, with [z.(ncols)] equal to minus the current objective value.
   Pivoting keeps all invariants by plain Gaussian elimination, and
   Bland's rule (smallest-index entering and leaving) guarantees
   termination even on degenerate bases.

   Every entering/leaving decision depends only on exact signs and
   comparisons, and kernels are exact wherever they are defined — so
   all kernels walk the same pivot sequence and agree bit-for-bit on
   the result; a range-restricted kernel merely raises
   [Numeric.Kernel.Overflow] partway instead. *)

module R = Numeric.Rat

type solution = { objective : R.t; values : R.t array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded

let pivot_count = ref 0
let last_pivot_count () = !pivot_count

let pivots_counter = Telemetry.counter Telemetry.lp_pivots

type col_desc =
  | Structural of int
  | Slack of int
  | Artificial

type details = {
  solution : solution;
  basis : int array;
  tableau : R.t array array;
  cols : col_desc array;
  oriented_rows : (Linexpr.t * Model.cmp * R.t) array;
}

module type ENGINE = sig
  val solve : Model.t -> result
  val solve_detailed : Model.t -> details option
end

type phase_result = Phase_optimal | Phase_unbounded

(* Variable bounds materialized as ordinary rows (the {!Bounded} engine
   handles them natively), then every row oriented so its right-hand
   side is non-negative. Shared by all engines; done in Rat because the
   oriented rows are part of the {!details} contract. *)
let orient model =
  let nstruct = Model.num_vars model in
  let bound_rows =
    List.concat_map
      (fun v ->
        let lo, up = Model.bounds model v in
        let lower =
          if R.sign lo > 0 then
            [ { Model.expr = Linexpr.var v; cmp = Model.Ge; rhs = lo; cname = "" } ]
          else []
        in
        let upper =
          match up with
          | Some u ->
            [ { Model.expr = Linexpr.var v; cmp = Model.Le; rhs = u; cname = "" } ]
          | None -> []
        in
        lower @ upper)
      (List.init nstruct Fun.id)
  in
  let constrs = Model.constraints model @ bound_rows in
  List.map
    (fun { Model.expr; cmp; rhs; _ } ->
      if R.sign rhs < 0 then
        let cmp = match cmp with Model.Le -> Model.Ge | Ge -> Le | Eq -> Eq in
        (Linexpr.neg expr, cmp, R.neg rhs)
      else (expr, cmp, rhs))
    constrs

let count_slack_art oriented =
  List.fold_left
    (fun (ns, na) (_, cmp, _) ->
      match cmp with
      | Model.Le -> (ns + 1, na)
      | Model.Ge -> (ns + 1, na + 1)
      | Model.Eq -> (ns, na + 1))
    (0, 0) oriented

module Make (K : Numeric.Kernel.S) = struct
  (* Built once per instantiation so a disabled-telemetry solve still
     allocates nothing at the call site. *)
  let span_attrs = [ ("lp.kernel", K.name) ]

  type tableau = {
    tab : K.t array array;  (* m rows of (ncols + 1) entries *)
    basis : int array;      (* m entries *)
    ncols : int;
    nstruct : int;          (* structural variables: columns 0 .. nstruct-1 *)
    art_start : int;        (* artificial columns: art_start .. ncols-1 *)
  }

  (* Eliminate column [c] from every row but [r] after normalizing row
     [r]. *)
  let pivot t z r c =
    incr pivot_count;
    Telemetry.bump pivots_counter;
    let row_r = t.tab.(r) in
    let piv = row_r.(c) in
    if not (K.equal piv K.one) then begin
      let inv = K.inv piv in
      for j = 0 to t.ncols do
        if not (K.is_zero row_r.(j)) then row_r.(j) <- K.mul row_r.(j) inv
      done
    end;
    let eliminate row =
      let f = row.(c) in
      if not (K.is_zero f) then
        for j = 0 to t.ncols do
          if not (K.is_zero row_r.(j)) then
            row.(j) <- K.sub row.(j) (K.mul f row_r.(j))
        done
    in
    Array.iteri (fun i row -> if i <> r then eliminate row) t.tab;
    eliminate z;
    t.basis.(r) <- c

  (* Initialize the reduced-cost row for the given column costs and the
     current basis. *)
  let init_cost_row t costs =
    let z = Array.make (t.ncols + 1) K.zero in
    Array.blit costs 0 z 0 t.ncols;
    Array.iteri
      (fun i row ->
        let cb = costs.(t.basis.(i)) in
        if not (K.is_zero cb) then
          for j = 0 to t.ncols do
            if not (K.is_zero row.(j)) then z.(j) <- K.sub z.(j) (K.mul cb row.(j))
          done)
      t.tab;
    z

  (* Minimize with Bland's rule; columns [j] with [banned j] never
     enter. *)
  let run_phase t z ~banned =
    let m = Array.length t.tab in
    let rec loop () =
      (* Entering: smallest index with negative reduced cost. *)
      let entering = ref (-1) in
      (try
         for j = 0 to t.ncols - 1 do
           if (not (banned j)) && K.sign z.(j) < 0 then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then Phase_optimal
      else begin
        let c = !entering in
        (* Ratio test: min rhs_i / tab_ic over tab_ic > 0; ties by
           smallest basic variable index (Bland). *)
        let best_row = ref (-1) in
        let best_ratio = ref K.zero in
        for i = 0 to m - 1 do
          let a = t.tab.(i).(c) in
          if K.sign a > 0 then begin
            let ratio = K.div t.tab.(i).(t.ncols) a in
            if
              !best_row < 0
              || K.compare ratio !best_ratio < 0
              || (K.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row < 0 then Phase_unbounded
        else begin
          pivot t z !best_row c;
          loop ()
        end
      end
    in
    loop ()

  (* Core solve; optionally captures the final state. Variable bounds
     from the model are materialized as ordinary rows here — the
     {!Bounded} engine handles them natively. *)
  let solve_core ~want_details model =
    pivot_count := 0;
    let nstruct = Model.num_vars model in
    let oriented = orient model in
    let m = List.length oriented in
    (* Column layout: structurals, then one slack/surplus per inequality,
       then one artificial per Ge/Eq row. *)
    let nslack, nart = count_slack_art oriented in
    let art_start = nstruct + nslack in
    let ncols = art_start + nart in
    let tab = Array.init m (fun _ -> Array.make (ncols + 1) K.zero) in
    let basis = Array.make m (-1) in
    let cols = Array.make ncols Artificial in
    Array.iteri (fun v _ -> if v < nstruct then cols.(v) <- Structural v) cols;
    let slack_idx = ref nstruct and art_idx = ref art_start in
    List.iteri
      (fun i (expr, cmp, rhs) ->
        let row = tab.(i) in
        List.iter (fun (v, c) -> row.(v) <- K.of_rat c) (Linexpr.terms expr);
        row.(ncols) <- K.of_rat rhs;
        (match cmp with
         | Model.Le ->
           row.(!slack_idx) <- K.one;
           cols.(!slack_idx) <- Slack i;
           basis.(i) <- !slack_idx;
           incr slack_idx
         | Model.Ge ->
           row.(!slack_idx) <- K.minus_one;
           cols.(!slack_idx) <- Slack i;
           incr slack_idx;
           row.(!art_idx) <- K.one;
           basis.(i) <- !art_idx;
           incr art_idx
         | Model.Eq ->
           row.(!art_idx) <- K.one;
           basis.(i) <- !art_idx;
           incr art_idx))
      oriented;
    let t = { tab; basis; ncols; nstruct; art_start } in
    (* Phase 1: minimize the sum of artificial variables. *)
    let feasible =
      if nart = 0 then true
      else begin
        let costs = Array.make ncols K.zero in
        for j = art_start to ncols - 1 do
          costs.(j) <- K.one
        done;
        let z = init_cost_row t costs in
        (match run_phase t z ~banned:(fun _ -> false) with
         | Phase_unbounded ->
           (* Phase-1 objective is bounded below by zero; unbounded is
              impossible with exact arithmetic. *)
           assert false
         | Phase_optimal -> ());
        if K.sign (K.neg z.(ncols)) > 0 then false
        else begin
          (* Drive any residual artificial out of the basis with a
             degenerate pivot when the row has a usable column; rows that
             are all-zero outside artificials are redundant and can keep
             their zero-valued artificial (artificials are banned from
             re-entering in phase 2). *)
          Array.iteri
            (fun i bv ->
              if bv >= art_start then begin
                let found = ref (-1) in
                (try
                   for j = 0 to art_start - 1 do
                     if not (K.is_zero tab.(i).(j)) then begin
                       found := j;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !found >= 0 then pivot t z i !found
              end)
            basis;
          true
        end
      end
    in
    if not feasible then (Infeasible, None)
    else begin
      (* Phase 2: the real objective (negated for maximization). *)
      let sense, obj = Model.objective model in
      let obj_const = Linexpr.const obj in
      let costs = Array.make ncols K.zero in
      List.iter
        (fun (v, c) ->
          costs.(v) <-
            K.of_rat (match sense with Model.Minimize -> c | Maximize -> R.neg c))
        (Linexpr.terms obj);
      let z = init_cost_row t costs in
      match run_phase t z ~banned:(fun j -> j >= t.art_start) with
      | Phase_unbounded -> (Unbounded, None)
      | Phase_optimal ->
        let values = Array.make nstruct R.zero in
        Array.iteri
          (fun i bv -> if bv < nstruct then values.(bv) <- K.to_rat tab.(i).(ncols))
          basis;
        let minimized = K.to_rat (K.neg z.(ncols)) in
        let objective =
          match sense with
          | Model.Minimize -> R.add minimized obj_const
          | Maximize -> R.add (R.neg minimized) obj_const
        in
        let solution = { objective; values } in
        ( Optimal solution,
          if not want_details then None
          else
            Some
              { solution;
                basis = Array.copy basis;
                tableau = Array.map (Array.map K.to_rat) tab;
                cols;
                oriented_rows = Array.of_list oriented } )
    end

  let solve model =
    Telemetry.Span.with_span ~attrs:span_attrs "lp.simplex" (fun () ->
        fst (solve_core ~want_details:false model))

  let solve_detailed model =
    Telemetry.Span.with_span ~attrs:span_attrs "lp.simplex" (fun () ->
        snd (solve_core ~want_details:true model))
end

module Exact = Make (Numeric.Kernel.Exact)

(* The production fast engine: fraction-free two-phase simplex on
   native-int tableaus.

   Instead of pivoting on a rational kernel, each row is an integer
   vector with an implicit positive scale — the entry under the row's
   own basic column; the true tableau value is [tab.(i).(j) / scale i].
   Pivoting on (r, c) with [p = tab.(r).(c)] rewrites every row with a
   nonzero entry in column [c] as

     tab.(i).(j) <- tab.(i).(j) * p - tab.(i).(c) * tab.(r).(j)

   which is Gaussian elimination with the division deferred into the
   row's scale (now [scale i * p]); row [r] itself is untouched and its
   scale becomes [p]. The inner loop therefore runs no division and no
   gcd — the two operations that dominate every rational kernel — and
   rows are reduced by their content gcd only when an entry outgrows
   the range invariant |entry| < 2^30, with [Numeric.Kernel.Overflow]
   raised when even that cannot restore it. The invariant keeps every
   two-term product (updates, cross-multiplied ratio comparisons) under
   2^60, safely inside OCaml's 63-bit native int.

   Entering and leaving decisions are exact sign tests and exact
   cross-multiplied ratio comparisons — scales are positive and cancel
   within a row — so this engine walks precisely the pivot sequence of
   the {!Make} instances and agrees bit-for-bit with {!Exact} wherever
   it completes. *)
module Fraction_free = struct
  let span_attrs = [ ("lp.kernel", "ff64") ]

  (* Exclusive bound on tableau entries and scales. *)
  let range = 1 lsl 30

  let overflow () = raise Numeric.Kernel.Overflow

  let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

  (* Branch-free magnitude for threshold tests: |v| for v >= 0,
     |v| - 1 for v < 0 — exact enough to compare against [range]. *)
  let mag v = v lxor (v asr 62)

  (* lcm of [l] and the denominator of [r], overflow-checked. *)
  let lcm_den l r =
    match R.to_small r with
    | None -> overflow ()
    | Some (_, d) ->
      let l = l / gcd_int l d * d in
      if l >= range then overflow () else l

  type tableau = {
    tab : int array array;  (* m rows of (ncols + 1) entries *)
    basis : int array;
    ncols : int;
    nstruct : int;
    art_start : int;
  }

  (* A row's scale is its entry under its own basic column (> 0). *)
  let scale t i = t.tab.(i).(t.basis.(i))

  (* Cold path: divide a row that outgrew the range by its content gcd,
     raising when that is not enough. [extra] is the separately-stored
     cost-row scale (0 for ordinary rows): it joins the gcd and the
     recheck, and the returned gcd divides it exactly. *)
  let reduce_row row len extra =
    let g = ref extra in
    for j = 0 to len - 1 do
      let av = abs row.(j) in
      if av <> 0 && !g <> 1 then g := gcd_int av !g
    done;
    let g = if !g = 0 then 1 else !g in
    let mx = ref (extra / g) in
    for j = 0 to len - 1 do
      let v = row.(j) / g in
      row.(j) <- v;
      mx := !mx lor mag v
    done;
    if !mx >= range then overflow ();
    g

  (* Eliminate column [c] from every row but [r]. There is no cost row
     to update: see {!run_phase}. *)
  let pivot t r c =
    incr pivot_count;
    Telemetry.bump pivots_counter;
    let row_r = t.tab.(r) in
    if row_r.(c) < 0 then
      (* Only degenerate drive-out pivots can select a negative entry;
         the row is an equation, so flipping its sign is free and keeps
         the new scale positive. *)
      for j = 0 to t.ncols do
        row_r.(j) <- -row_r.(j)
      done;
    let p = row_r.(c) in
    let n = t.ncols in
    let eliminate row =
      let f = row.(c) in
      if f <> 0 then begin
        let acc = ref 0 in
        for j = 0 to n do
          let v =
            (Array.unsafe_get row j * p) - (f * Array.unsafe_get row_r j)
          in
          Array.unsafe_set row j v;
          acc := !acc lor mag v
        done;
        if !acc >= range then ignore (reduce_row row (n + 1) 0)
      end
    in
    Array.iteri (fun i row -> if i <> r then eliminate row) t.tab;
    t.basis.(r) <- c

  (* Minimize integer costs [costs.(j) / cq] with Bland's rule.

     No reduced-cost row is maintained. A fraction-free cost row would
     need one common scale for every column — the lcm of per-column
     denominators — and that scale overflows the native range long
     before any tableau row does (tableau rows share the basis
     determinant as denominator; reduced costs do not share anything).
     Entering only needs the SIGN of

       d_j = (costs_j - sum_i cb_i * tab_ij / s_i) / cq

     over the cost-bearing basic rows [i], so each scan filters
     columns with a float estimate plus a conservative error bound and
     confirms the rare ambiguous or candidate-entering columns in
     exact Rat arithmetic (which cannot overflow). Confirmed signs
     equal the exact engine's z-row signs, so the entering choice —
     and hence the whole pivot walk — is identical. *)
  let run_phase t ~costs ~cq ~banned =
    let m = Array.length t.tab in
    let tab = t.tab and basis = t.basis in
    (* Cost-bearing basic rows, refreshed after every pivot. *)
    let rows = Array.make (Stdlib.max m 1) 0 in
    let cbs = Array.make (Stdlib.max m 1) 0 in
    let scales = Array.make (Stdlib.max m 1) 0 in
    let fcb = Array.make (Stdlib.max m 1) 0.0 in
    let k = ref 0 in
    let refresh () =
      k := 0;
      for i = 0 to m - 1 do
        let cb = costs.(basis.(i)) in
        if cb <> 0 then begin
          rows.(!k) <- i;
          cbs.(!k) <- cb;
          scales.(!k) <- tab.(i).(basis.(i));
          fcb.(!k) <- float_of_int cb /. float_of_int tab.(i).(basis.(i));
          incr k
        end
      done
    in
    let exact_sign j =
      let d = ref (R.of_ints costs.(j) cq) in
      for q = 0 to !k - 1 do
        let a = tab.(rows.(q)).(j) in
        (* cb*a and cq*s stay under 2^60 by the range invariant. *)
        if a <> 0 then d := R.sub !d (R.of_ints (cbs.(q) * a) (cq * scales.(q)))
      done;
      R.sign !d
    in
    let inbasis = Array.make (t.ncols + 1) false in
    let rec loop () =
      refresh ();
      for i = 0 to m - 1 do
        inbasis.(basis.(i)) <- true
      done;
      (* Entering: smallest index with exactly-negative reduced cost.
         Basic columns have d_j = 0 by construction and are skipped. *)
      let entering = ref (-1) in
      (try
         for j = 0 to t.ncols - 1 do
           if (not (banned j)) && not inbasis.(j) then begin
             let est = ref (float_of_int costs.(j)) and asum = ref 0.0 in
             for q = 0 to !k - 1 do
               let a = tab.(rows.(q)).(j) in
               if a <> 0 then begin
                 let u = fcb.(q) *. float_of_int a in
                 est := !est -. u;
                 asum := !asum +. Float.abs u
               end
             done;
             (* Each term carries <= 2 roundings and each subtraction
                one more, so |est - true| <= 3 (k+1) eps (|costs_j| +
                asum) with eps = 2^-52; (k+2) * 4e-15 dominates that
                with an order of magnitude to spare. *)
             let err =
               (Float.abs (float_of_int costs.(j)) +. !asum)
               *. float_of_int (!k + 2) *. 4e-15
             in
             if !est <= err && exact_sign j < 0 then begin
               entering := j;
               raise Exit
             end
           end
         done
       with Exit -> ());
      for i = 0 to m - 1 do
        inbasis.(basis.(i)) <- false
      done;
      if !entering < 0 then Phase_optimal
      else begin
        let c = !entering in
        (* Ratio test: scales cancel within a row, so the exact ratio
           rhs_i / tab_ic is compared across rows by cross
           multiplication; ties by smallest basic variable (Bland). *)
        let best_row = ref (-1) in
        let best_rhs = ref 0 and best_a = ref 1 in
        for i = 0 to m - 1 do
          let a = t.tab.(i).(c) in
          if a > 0 then begin
            let rhs = t.tab.(i).(t.ncols) in
            let cmp = compare (rhs * !best_a) (!best_rhs * a) in
            if
              !best_row < 0 || cmp < 0
              || (cmp = 0 && t.basis.(i) < t.basis.(!best_row))
            then begin
              best_row := i;
              best_rhs := rhs;
              best_a := a
            end
          end
        done;
        if !best_row < 0 then Phase_unbounded
        else begin
          pivot t !best_row c;
          loop ()
        end
      end
    in
    loop ()

  let solve_core ~want_details model =
    pivot_count := 0;
    let nstruct = Model.num_vars model in
    let oriented = orient model in
    let m = List.length oriented in
    let nslack, nart = count_slack_art oriented in
    let art_start = nstruct + nslack in
    let ncols = art_start + nart in
    let tab = Array.init m (fun _ -> Array.make (ncols + 1) 0) in
    let basis = Array.make m (-1) in
    let cols = Array.make ncols Artificial in
    Array.iteri (fun v _ -> if v < nstruct then cols.(v) <- Structural v) cols;
    let slack_idx = ref nstruct and art_idx = ref art_start in
    List.iteri
      (fun i (expr, cmp, rhs) ->
        let row = tab.(i) in
        (* Integerize the row by the lcm [l] of its denominators; [l]
           is also the slack/artificial entry, i.e. the initial scale. *)
        let l =
          List.fold_left
            (fun acc (_, c) -> lcm_den acc c)
            (lcm_den 1 rhs) (Linexpr.terms expr)
        in
        let fill j x =
          match R.to_small x with
          | None -> overflow ()
          | Some (nu, de) ->
            let e = nu * (l / de) in
            if abs e >= range then overflow ();
            row.(j) <- e
        in
        List.iter (fun (v, c) -> fill v c) (Linexpr.terms expr);
        fill ncols rhs;
        (match cmp with
         | Model.Le ->
           row.(!slack_idx) <- l;
           cols.(!slack_idx) <- Slack i;
           basis.(i) <- !slack_idx;
           incr slack_idx
         | Model.Ge ->
           row.(!slack_idx) <- -l;
           cols.(!slack_idx) <- Slack i;
           incr slack_idx;
           row.(!art_idx) <- l;
           basis.(i) <- !art_idx;
           incr art_idx
         | Model.Eq ->
           row.(!art_idx) <- l;
           basis.(i) <- !art_idx;
           incr art_idx))
      oriented;
    let t = { tab; basis; ncols; nstruct; art_start } in
    (* Phase 1: minimize the sum of artificial variables (unit cost on
       each artificial column). *)
    let feasible =
      if nart = 0 then true
      else begin
        let costs = Array.make ncols 0 in
        for j = art_start to ncols - 1 do
          costs.(j) <- 1
        done;
        (match run_phase t ~costs ~cq:1 ~banned:(fun _ -> false) with
         | Phase_unbounded ->
           (* Phase-1 objective is bounded below by zero; unbounded is
              impossible with exact arithmetic. *)
           assert false
         | Phase_optimal -> ());
        (* The phase-1 minimum is the sum of the artificial basic
           values; right-hand sides are non-negative throughout, so it
           is positive — infeasible — iff some artificial is basic at a
           nonzero value. *)
        let residual = ref false in
        Array.iteri
          (fun i bv -> if bv >= art_start && tab.(i).(ncols) <> 0 then residual := true)
          basis;
        if !residual then false
        else begin
          (* Drive residual artificials out of the basis, as in
             {!Make}: same column choice, hence the same pivots. *)
          Array.iteri
            (fun i bv ->
              if bv >= art_start then begin
                let found = ref (-1) in
                (try
                   for j = 0 to art_start - 1 do
                     if tab.(i).(j) <> 0 then begin
                       found := j;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !found >= 0 then pivot t i !found
              end)
            basis;
          true
        end
      end
    in
    if not feasible then (Infeasible, None)
    else begin
      (* Phase 2: the real objective (negated for maximization),
         integerized over the objective's common denominator [cq]. *)
      let sense, obj = Model.objective model in
      let obj_const = Linexpr.const obj in
      let costs = Array.make ncols 0 in
      let cq =
        List.fold_left (fun acc (_, c) -> lcm_den acc c) 1 (Linexpr.terms obj)
      in
      List.iter
        (fun (v, c) ->
          match R.to_small c with
          | None -> overflow ()
          | Some (nu, de) ->
            let e = nu * (cq / de) in
            if abs e >= range then overflow ();
            costs.(v) <- (match sense with Model.Minimize -> e | Maximize -> -e))
        (Linexpr.terms obj);
      match run_phase t ~costs ~cq ~banned:(fun j -> j >= t.art_start) with
      | Phase_unbounded -> (Unbounded, None)
      | Phase_optimal ->
        let values = Array.make nstruct R.zero in
        Array.iteri
          (fun i bv ->
            if bv < nstruct then
              values.(bv) <- R.of_ints tab.(i).(ncols) (scale t i))
          basis;
        (* Minimized objective c_B x_B, straight from the basic
           values. *)
        let minimized = ref R.zero in
        Array.iteri
          (fun i bv ->
            let cb = costs.(bv) in
            if cb <> 0 then
              minimized :=
                R.add !minimized
                  (R.of_ints (cb * tab.(i).(ncols)) (cq * scale t i)))
          basis;
        let minimized = !minimized in
        let objective =
          match sense with
          | Model.Minimize -> R.add minimized obj_const
          | Maximize -> R.add (R.neg minimized) obj_const
        in
        let solution = { objective; values } in
        ( Optimal solution,
          if not want_details then None
          else
            Some
              { solution;
                basis = Array.copy basis;
                tableau =
                  Array.mapi
                    (fun i row ->
                      let s = scale t i in
                      Array.map (fun v -> R.of_ints v s) row)
                    tab;
                cols;
                oriented_rows = Array.of_list oriented } )
    end

  let solve model =
    Telemetry.Span.with_span ~attrs:span_attrs "lp.simplex" (fun () ->
        fst (solve_core ~want_details:false model))

  let solve_detailed model =
    Telemetry.Span.with_span ~attrs:span_attrs "lp.simplex" (fun () ->
        snd (solve_core ~want_details:true model))
end

module Fast = Fraction_free

let solve = Exact.solve
let solve_detailed = Exact.solve_detailed
