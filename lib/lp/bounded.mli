(** Exact primal simplex with native variable bounds.

    Solves the same {!Model.t} as {!Simplex} and always returns the
    same optimum (property-tested), but handles variable domains
    [\[lower, upper\]] inside the pivoting rules (nonbasic variables
    sit at either bound; bound-to-bound "flips" replace pivots where
    possible) instead of materializing them as tableau rows.

    This is the engine the branch-and-bound solver prefers: a branching
    decision tightens one variable's domain, so node relaxations keep
    the base model's row count instead of growing by one row per
    branch — on this project's MILPs that shrinks the tableau several-
    fold (see the [ablation/*engine*] benches). *)

(** [solve model] optimizes the model exactly, honouring variable
    bounds set with {!Model.tighten_lower}/{!Model.tighten_upper}.
    Returns {!Simplex.Infeasible} when bounds cross
    ([lower > upper]). *)
val solve : Model.t -> Simplex.result

(** Pivots performed by the last [solve] (statistics). *)
val last_pivot_count : unit -> int

(** {1 Kernel-parameterized engines}

    Like {!Simplex.Make}: the pivoting core runs on the kernel, the
    result is delivered in exact {!Numeric.Rat}, and all kernels are
    bit-identical wherever they complete. *)

module type ENGINE = sig
  (** May raise [Numeric.Kernel.Overflow] when the kernel is
      range-restricted; {!Exact} never does. *)
  val solve : Model.t -> Simplex.result
end

module Make (K : Numeric.Kernel.S) : ENGINE

(** {!Make} over {!Numeric.Kernel.Exact}; the top-level {!solve}. *)
module Exact : ENGINE

(** {!Make} over {!Numeric.Fix64} — the fast path {!Milp.Solver}'s
    Fix64 instance runs node relaxations on. *)
module Fast : ENGINE
