type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec print_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | String s ->
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        print_into b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_into b k;
        Buffer.add_string b "\":";
        print_into b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  print_into b v;
  Buffer.contents b

(* --- parsing: plain recursive descent over a cursor --- *)

exception Bad of string

type cursor = {
  s : string;
  mutable pos : int;
}

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c "bad \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
     | Some ch ->
       v := (!v * 16) + digit ch;
       advance c
     | None -> fail c "truncated \\u escape")
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char b '"'; advance c
       | Some '\\' -> Buffer.add_char b '\\'; advance c
       | Some '/' -> Buffer.add_char b '/'; advance c
       | Some 'n' -> Buffer.add_char b '\n'; advance c
       | Some 'r' -> Buffer.add_char b '\r'; advance c
       | Some 't' -> Buffer.add_char b '\t'; advance c
       | Some 'b' -> Buffer.add_char b '\b'; advance c
       | Some 'f' -> Buffer.add_char b '\012'; advance c
       | Some 'u' ->
         advance c;
         let u = hex4 c in
         (* Surrogate pairs: a high surrogate must be followed by
            [\uDC00-\uDFFF]; combine into one scalar. *)
         if u >= 0xD800 && u <= 0xDBFF then begin
           expect c '\\';
           expect c 'u';
           let lo = hex4 c in
           if lo < 0xDC00 || lo > 0xDFFF then fail c "bad surrogate pair";
           add_utf8 b (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
         end
         else add_utf8 b u
       | _ -> fail c "bad escape");
      loop ()
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c; true
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      true
    | _ -> false
  in
  while consume () do () done;
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer overflowing the native range: keep it as a float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2.0 ** 52.0 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let get_string key v = Option.bind (member key v) to_str

let get_int key v = Option.bind (member key v) to_int

let get_float key v = Option.bind (member key v) to_float
