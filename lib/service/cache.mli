(** Bounded LRU cache of solved allocations.

    Entries are keyed by [(fingerprint digest, target, engine spec)]
    and hold the solution as a {e canonical} throughput split — the
    compact split reordered by
    {!Rentcost.Instance.canonical_recipe_order} — so a hit transfers
    to any fingerprint-equal instance, whatever its own recipe
    numbering. Each entry also carries the canonical encoding it was
    stored under; every lookup compares it, so a digest collision
    degrades to a miss, never to a wrong answer.

    Three lookups implement the service's reuse ladder:

    - {!find_exact} — same structure, same target: replay the cached
      answer verbatim.
    - {!find_monotone} — feasibility is monotone in the target: an
      {e optimal} allocation for a target [t' >= t] satisfies [t], so
      it can answer a lower-target request immediately as a feasible
      (not optimality-proved) incumbent. Returns the optimal entry
      with the smallest such [t'], the cheapest cover available.
    - {!find_monotone_le} — the dual rung for max-throughput entries,
      whose scalar key is the {e monetary budget}: an optimal
      allocation under a budget [b' <= b] also fits budget [b] (its
      cost is [<= b' <= b]), so it answers a higher-budget request as
      a feasible incumbent. Returns the optimal entry with the largest
      such [b'], the closest throughput available.
    - {!find_nearest} — the nearest {e usable} cached split for the
      structure, to warm-start a cold solve. Usable means its target
      is [>= target]: the solver's warm-start validation drops any
      split short of the requested target (it is not feasible there),
      so lower-target entries are never returned.

    Recency is a global access clock stamped on insert and on every
    hit; eviction scans for the stale minimum — [O(capacity)], dwarfed
    by the solves the cache fronts. Not thread-safe; the daemon is
    single-threaded by design. *)

type entry = {
  target : int;
  spec : string;  (** {!Rentcost.Solver.spec_to_string} of the engine *)
  canonical_rho : int array;  (** split in canonical recipe order *)
  cost : int;
  optimal : bool;  (** solved to proven optimality *)
}

type t

(** @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> t

val capacity : t -> int

(** Number of live entries ([<= capacity]). *)
val length : t -> int

(** Total entries evicted since {!create}. *)
val evictions : t -> int

(** [find_exact t ~digest ~encoding ~target ~spec] is the entry for
    exactly this key, accepting a different engine's entry when it is
    optimal (an optimality-proved answer satisfies any engine
    request). Refreshes recency. *)
val find_exact :
  t -> digest:string -> encoding:string -> target:int -> spec:string ->
  entry option

(** [find_monotone t ~digest ~encoding ~target] is the optimal entry
    for this structure with the smallest target [>= target], if any.
    Refreshes recency. *)
val find_monotone :
  t -> digest:string -> encoding:string -> target:int -> entry option

(** [find_monotone_le t ~digest ~encoding ~target] is the optimal
    entry for this structure with the largest target [<= target], if
    any. The monotone rung read in the {e opposite} direction — used
    when the scalar is a monetary budget, where feasibility carries
    upward instead of downward. Refreshes recency. *)
val find_monotone_le :
  t -> digest:string -> encoding:string -> target:int -> entry option

(** [find_nearest t ~digest ~encoding ~target] is the entry for this
    structure with the smallest target [>= target] (optimal or not),
    if any — warm-start material. Refreshes recency. *)
val find_nearest :
  t -> digest:string -> encoding:string -> target:int -> entry option

(** [insert t ~digest ~encoding entry] stores (or replaces) the entry
    under [(digest, entry.target, entry.spec)], evicting the
    least-recently-used entry when full. *)
val insert : t -> digest:string -> encoding:string -> entry -> unit

(** [mem t ~digest ~target ~spec] — exact-key presence without
    touching recency (tests observe eviction order through this). *)
val mem : t -> digest:string -> target:int -> spec:string -> bool
