(* One shared exposition of the Telemetry state, used by the daemon's
   [metrics] request, the shutdown dump and the [rentcost stats] CLI —
   one encoding, three consumers. Deliberately independent of Engine:
   the engine passes its own stats snapshot in, so this module sits
   below it in the dependency order. *)

let ( let* ) = Result.bind

(* --- spans --- *)

let span_to_json (s : Telemetry.Span.t) =
  let attrs =
    match s.Telemetry.Span.attrs with
    | [] -> []
    | kvs ->
      [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
  in
  Json.Obj
    ([
       ("id", Json.Int s.Telemetry.Span.id);
       ("parent", Json.Int s.Telemetry.Span.parent);
       ("depth", Json.Int s.Telemetry.Span.depth);
       ("name", Json.String s.Telemetry.Span.name);
       ("start", Json.Float s.Telemetry.Span.start);
       ("duration", Json.Float s.Telemetry.Span.duration);
     ]
    @ attrs)

let span_of_json j =
  let field name coerce =
    Option.to_result
      ~none:(Printf.sprintf "span: missing or bad %S" name)
      (Option.bind (Json.member name j) coerce)
  in
  let* id = field "id" Json.to_int in
  let* parent = field "parent" Json.to_int in
  let* depth = field "depth" Json.to_int in
  let* name = field "name" Json.to_str in
  let* start = field "start" Json.to_float in
  let* duration = field "duration" Json.to_float in
  let* attrs =
    match Json.member "attrs" j with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_str v with
          | Some s -> Ok ((k, s) :: acc)
          | None -> Result.Error (Printf.sprintf "span: non-string attr %S" k))
        (Ok []) kvs
      |> Result.map List.rev
    | Some _ -> Result.Error "span: \"attrs\" is not an object"
  in
  Ok { Telemetry.Span.id; parent; depth; name; attrs; start; duration }

(* --- aggregate exposition --- *)

let histogram_to_json (h : Telemetry.histogram_snapshot) =
  Json.Obj
    [
      ("name", Json.String h.Telemetry.h_name);
      ( "bounds",
        Json.List
          (Array.to_list
             (Array.map (fun b -> Json.Float b) h.Telemetry.h_bounds)) );
      ( "counts",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) h.Telemetry.h_counts))
      );
      ("sum", Json.Float h.Telemetry.h_sum);
      ("count", Json.Int h.Telemetry.h_count);
    ]

let json ?stats () =
  let counters =
    List.map (fun (name, v) -> (name, Json.Int v)) (Telemetry.all ())
  in
  let gauges =
    List.map (fun (name, v) -> (name, Json.Float v)) (Telemetry.gauges ())
  in
  let histograms = List.map histogram_to_json (Telemetry.histograms ()) in
  let spans = List.map span_to_json (Telemetry.Span.recent ()) in
  (* Numeric-kernel health at a glance: which kernel answers first and
     how often the exact fallback had to take over. The counters also
     appear under "counters"; this section names the kernels so a
     scrape needs no out-of-band knowledge of the fallback protocol. *)
  let numeric =
    Json.Obj
      [
        ("fast_kernel", Json.String Numeric.Fix64.name);
        ("exact_kernel", Json.String Numeric.Kernel.Exact.name);
        ("fast_solves", Json.Int (Telemetry.value Telemetry.numeric_fast_solves));
        ("fallbacks", Json.Int (Telemetry.value Telemetry.numeric_fallbacks));
      ]
  in
  Json.Obj
    ([
       ("counters", Json.Obj counters);
       ("gauges", Json.Obj gauges);
       ("histograms", Json.List histograms);
       ("spans", Json.List spans);
       ("numeric", numeric);
     ]
    @ match stats with None -> [] | Some s -> [ ("service", Json.Obj s) ])

let text () = Telemetry.text_exposition ()

(* --- JSONL trace sink --- *)

let trace_channel = ref None

let close_trace () =
  match !trace_channel with
  | None -> ()
  | Some oc ->
    Telemetry.Span.set_sink None;
    trace_channel := None;
    (try close_out oc with Sys_error _ -> ())

let install_trace ~path =
  close_trace ();
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  trace_channel := Some oc;
  Telemetry.Span.set_sink
    (Some
       (fun span ->
         (* Flush per line so a killed daemon still leaves a readable
            trace; traces are a debugging surface, not a hot path. *)
         try
           output_string oc (Json.to_string (span_to_json span));
           output_char oc '\n';
           flush oc
         with Sys_error _ -> ()))
