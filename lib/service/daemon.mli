(** The serving loop: line-delimited {!Protocol} JSON over channels or
    a Unix-domain socket.

    With [workers <= 1] (the default) the loop is single-threaded and
    answers requests in arrival order — the historical daemon,
    bit-identical behaviour. With [workers > 1] the reader domain
    parses and routes requests while [workers] worker domains drain
    the admission queue concurrently: solve responses come back in
    {e completion} order (clients correlate by request id), each JSON
    line is written atomically under an output lock, and
    register/stats/metrics requests are answered immediately by the
    reader. On shutdown (a [shutdown] request, or EOF on the input)
    the workers first finish every queued job — a shutdown racing a
    non-empty queue loses no answers and [Bye] is the final response —
    and then the engine's {!Engine.stats} snapshot is dumped as one
    JSON line to [dump] (default [stderr], keeping the response stream
    clean).

    [?workers] defaults to the engine's [config.workers]; passing it
    overrides the config (the engine's lock striping is sized at
    {!Engine.create} time, so prefer setting it in the config).

    @raise Invalid_argument when [workers < 1]. *)

(** [serve_channels ic oc] answers requests read from [ic] on [oc]
    until a [shutdown] request or EOF. Unparseable lines get an
    [Error] response; blank lines are ignored. Pass [?engine] to share
    or inspect the engine (e.g. across calls, or from tests);
    otherwise a fresh one is built from [?config]. [?audit] names a
    JSONL file the engine's {!Audit} journal is appended to for the
    lifetime of the serve (closed when it returns). *)
val serve_channels :
  ?engine:Engine.t ->
  ?config:Engine.config ->
  ?dump:out_channel ->
  ?workers:int ->
  ?audit:string ->
  in_channel ->
  out_channel ->
  unit

(** [serve_socket ~path ()] listens on a Unix-domain socket at [path]
    (replacing any stale socket file), serving one client at a time;
    client disconnects return to [accept], a [shutdown] request stops
    the server and removes the socket file. The engine — and so the
    cache — persists across client connections. With [workers > 1]
    each connection gets its own worker domains (spawned at accept,
    joined at disconnect); the engine state they drain persists. *)
val serve_socket :
  ?engine:Engine.t ->
  ?config:Engine.config ->
  ?dump:out_channel ->
  ?workers:int ->
  ?audit:string ->
  path:string ->
  unit ->
  unit
