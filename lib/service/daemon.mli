(** The serving loop: line-delimited {!Protocol} JSON over channels or
    a Unix-domain socket.

    Single-threaded by design — requests are answered in arrival
    order, admission control bounds the backlog, and the shared
    {!Engine.t} needs no locking. On shutdown (a [shutdown] request,
    or EOF on the input) the engine's {!Engine.stats} snapshot is
    dumped as one JSON line to [dump] (default [stderr], keeping the
    response stream clean). *)

(** [serve_channels ic oc] answers requests read from [ic] on [oc]
    until a [shutdown] request or EOF. Unparseable lines get an
    [Error] response; blank lines are ignored. Pass [?engine] to share
    or inspect the engine (e.g. across calls, or from tests);
    otherwise a fresh one is built from [?config]. *)
val serve_channels :
  ?engine:Engine.t ->
  ?config:Engine.config ->
  ?dump:out_channel ->
  in_channel ->
  out_channel ->
  unit

(** [serve_socket ~path ()] listens on a Unix-domain socket at [path]
    (replacing any stale socket file), serving one client at a time;
    client disconnects return to [accept], a [shutdown] request stops
    the server and removes the socket file. The engine — and so the
    cache — persists across client connections. *)
val serve_socket :
  ?engine:Engine.t ->
  ?config:Engine.config ->
  ?dump:out_channel ->
  path:string ->
  unit ->
  unit
