(** The daemon's wire protocol: one JSON object per line, both ways.

    {2 Requests}

    {v
    {"op":"register","name":"app","path":"app.rentcost"}
    {"op":"register","name":"app","problem":"types 2\n..."}
    {"op":"solve","id":1,"ref":"app","target":120}
    {"op":"solve","id":2,"problem":"types 2\n...","target":90,
     "spec":"ilp","reuse":"warm","deadline":1.5,"nodes":10000,
     "evals":50000}
    {"op":"solve","id":3,"ref":"app",
     "objective":"max-throughput","budget":120}
    {"op":"solve","id":4,"ref":"app","target":70,
     "pricebook":"book us-east\n  price 0 10\n..."}
    {"op":"track","session":"app-fleet","ref":"app",
     "ticks_per_hour":12,"deadband":0.1,"headroom":0.05}
    {"op":"tick","session":"app-fleet","id":7,"demand":55}
    {"op":"untrack","session":"app-fleet"}
    {"op":"solve","id":5,"ref":"app","target":120,
     "trace_id":"req-042","tenant":"acme"}
    {"op":"audit","last":20}
    {"op":"stats"}
    {"op":"shutdown"}
    v}

    Every request may carry ["version"] (an integer; absent means 1).
    Unknown versions are rejected with a structured [Error] naming the
    supported versions, before the op is even dispatched.

    Solve defaults: [objective] "min-cost" (with its required integer
    ["target"]), [spec] "auto", [reuse] "monotone", no budget caps
    beyond the engine's configured default. ["objective":
    "max-throughput"] instead requires the monetary ["budget"] (not to
    be confused with the compute-budget keys ["deadline"] / ["nodes"]
    / ["evals"], which cap the solver's effort under either
    objective). A price book rides along as inline ["pricebook"] text
    ({!Rentcost.Pricebook.of_string} format) or a server-side
    ["pricebook_path"]. [reuse] picks a rung of the reuse ladder:
    ["none"] always solves cold, ["exact"] replays identical requests
    only, ["warm"] additionally seeds cold solves from the nearest
    cached split, ["monotone"] additionally answers from a cached
    optimal at a higher target (feasible incumbent, served without
    solving) — or, under max-throughput, from a cached optimal at a
    lower monetary budget. The ladder never crosses objectives or
    price books: both are baked into the instance fingerprint.

    ["track"] opens (or replaces) an autoscale session: a
    {!Rentcost_autoscale.Controller} over the referenced or inline
    problem (default min-cost scenario only). Each subsequent ["tick"]
    streams one demand observation and answers with that tick's
    reconfiguration plan; ["untrack"] closes the session and returns
    its summary. [session] defaults to ["default"] on all three ops.
    Defaults mirror {!Rentcost_autoscale.Controller.default_config}:
    [ticks_per_hour] 60, [deadband] 0.1, [headroom] 0, [spec] "auto";
    re-solves run under the engine's default compute budget. Track
    sessions are handled inline (never queued), so ticks stay cheap
    unless the controller actually re-solves.

    {2 Responses}

    {v
    {"id":1,"trace_id":"req-000001","ok":true,"status":"optimal",
     "cost":44,"rho":[110,0,10],"machines":[4,8],"throughput":120,
     "served":"cold","engine":"ilp","wall_time":0.0123}
    {"ok":true,"audit":[{"seq":0,"trace_id":"req-000001",...},...]}
    {"ok":true,"registered":"app","fingerprint":"d41d8cd98f00"}
    {"ok":true,"stats":{...}}
    {"ok":true,"tracking":"app-fleet","fingerprint":"d41d8cd98f00"}
    {"id":7,"ok":true,"session":"app-fleet","tick":3,"demand":55,
     "target":55,"action":"reconfigure","rent":[1,0],"renew":[0,0],
     "release":[0,0],"machines":[4,2],"rho":[40,15],"charged":34,
     "total_charged":120,"violation":true}
    {"ok":true,"untracked":"app-fleet","ticks":10,"replans":3,
     "holds":7,"violations":2,"total_charged":123}
    {"id":7,"ok":false,"status":"overloaded","retry_after_ms":40}
    {"ok":false,"error":"solve: unknown ref \"nope\""}
    {"ok":true,"status":"bye"}
    v}

    [served] is one of ["cold"], ["exact-hit"], ["monotone-hit"],
    ["warm-started"], ["coalesced"]. [rho] and [machines] are in the
    {e submitted}
    problem's numbering, whatever instance actually served the
    request. Both codecs run in both directions so in-process clients
    and the test suite can speak the protocol without the daemon. *)

type reuse =
  | No_reuse
  | Exact_only
  | Warm
  | Monotone

val reuse_to_string : reuse -> string

val reuse_of_string : string -> reuse option

(** What a solve runs on: a name registered earlier, or a problem
    shipped inline. *)
type source =
  | Ref of string
  | Inline of Rentcost.Problem.t

type request =
  | Register of { name : string; problem : Rentcost.Problem.t }
  | Solve of {
      id : int option;  (** echoed back, client-chosen *)
      trace_id : string option;
          (** client-supplied request trace id (["trace_id"] key); the
              engine assigns one when absent, stamps it on every span
              the request records (see {!Telemetry.Span.with_trace_id})
              and echoes it in the response and the audit record *)
      tenant : string option;
          (** labels the per-tenant request counters; defaults to
              ["default"] *)
      source : source;
      objective : Rentcost.Objective.t;
          (** what to optimize — a min-cost target or a max-throughput
              monetary budget *)
      pricebook : Rentcost.Pricebook.t option;
          (** [None] = the problem's own platform prices *)
      spec : Rentcost.Solver.spec;
      budget : Rentcost.Budget.t option;  (** [None] = engine default *)
      reuse : reuse;
    }
  | Track of {
      session : string;  (** replaces any session with the same name *)
      source : source;
      ticks_per_hour : int;  (** billing granularity of the session *)
      deadband : float;
      headroom : float;
      spec : Rentcost.Solver.spec;  (** engine for re-solves *)
    }  (** open an autoscale session (see the module doc) *)
  | Tick of { id : int option; session : string; demand : int }
      (** one demand observation; answered with a [Plan] *)
  | Untrack of { session : string }
  | Stats
  | Metrics  (** full telemetry exposition: counters, histograms, spans *)
  | Audit of { last : int option }
      (** the last [last] audit records (default: the whole ring),
          oldest first; see {!Audit} *)
  | Shutdown

(** How a solve response was produced. [Coalesced] is the
    single-flight rung: the request was a duplicate of one already in
    flight and received the leader's outcome without touching the
    cache or an engine. *)
type served =
  | Cold
  | Exact_hit
  | Monotone_hit
  | Warm_started
  | Coalesced

val served_to_string : served -> string

val served_of_string : string -> served option

type response =
  | Solved of {
      id : int option;
      trace_id : string option;  (** the request's trace id, always set *)
      status : Rentcost.Solver.status;
      cost : int;
      rho : int array;  (** submitted problem's recipe numbering *)
      machines : int array;
      served : served;
      engine : string;  (** spec string of the engine (or cached entry) *)
      wall_time : float;  (** seconds spent handling this request *)
    }
  | Registered of { name : string; fingerprint : string }
  | Tracking of { session : string; fingerprint : string }
  | Plan of {
      id : int option;
      session : string;
      plan : Rentcost_autoscale.Controller.plan;
          (** the tick's reconfiguration plan, in the tracked
              problem's own numbering *)
      total_charged : int;  (** session bill so far, this tick included *)
    }
  | Untracked of {
      session : string;
      ticks : int;
      replans : int;
      holds : int;
      violations : int;
      total_charged : int;
    }  (** closing summary of an autoscale session *)
  | Stats_reply of (string * Json.t) list
  | Metrics_reply of {
      metrics : Json.t;  (** {!Metrics.json}: counters, histograms, spans *)
      text : string;  (** Prometheus-style exposition *)
    }
  | Audit_reply of Audit.record list
      (** answers [Audit], oldest first, encoded as an ["audit"] list
          of {!Audit.record_to_json} objects *)
  | Overloaded of {
      id : int option;
      trace_id : string option;
      retry_after_ms : int option;
          (** back-pressure hint: how long the shedding engine thinks
              the client should wait before retrying, from queue depth
              and observed service latency (["retry_after_ms"] key) *)
    }
  | Error of { id : int option; trace_id : string option; message : string }
  | Bye

(** [request_of_json j] decodes a request, first rejecting any
    ["version"] other than 1 (absent means 1). ["path"] registers and
    ["pricebook_path"] books are read from disk here; file and parse
    errors come back as [Error _] results, never exceptions. *)
val request_of_json : Json.t -> (request, string) result

(** [request_to_json r] encodes a request (client side). An inline
    problem is shipped as its {!Rentcost.Problem_format} text. *)
val request_to_json : request -> Json.t

val response_to_json : response -> Json.t

(** [response_of_json j] decodes a response (client side). *)
val response_of_json : Json.t -> (response, string) result
