type entry = {
  target : int;
  spec : string;
  canonical_rho : int array;
  cost : int;
  optimal : bool;
}

type key = {
  digest : string;
  ktarget : int;
  kspec : string;
}

type slot = {
  encoding : string;
  entry : entry;
  mutable last_used : int;
}

type t = {
  cap : int;
  table : (key, slot) Hashtbl.t;
  mutable clock : int;
  mutable evicted : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { cap = capacity; table = Hashtbl.create capacity; clock = 0; evicted = 0 }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let evictions t = t.evicted

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let touch t slot = slot.last_used <- tick t

(* Fold over the slots of one structure, collision-checked. *)
let fold_struct t ~digest ~encoding f init =
  Hashtbl.fold
    (fun key slot acc ->
      if String.equal key.digest digest && String.equal slot.encoding encoding
      then f key slot acc
      else acc)
    t.table init

let find_exact t ~digest ~encoding ~target ~spec =
  let pick _key slot best =
    if slot.entry.target <> target then best
    else if String.equal slot.entry.spec spec then
      (* The engine actually asked for — always the best answer. *)
      Some slot
    else if slot.entry.optimal then
      match best with Some b when String.equal b.entry.spec spec -> best | _ -> Some slot
    else best
  in
  match fold_struct t ~digest ~encoding pick None with
  | None -> None
  | Some slot ->
    touch t slot;
    Some slot.entry

let find_monotone t ~digest ~encoding ~target =
  let pick _key slot best =
    if (not slot.entry.optimal) || slot.entry.target < target then best
    else
      match best with
      | Some b when b.entry.target <= slot.entry.target -> best
      | _ -> Some slot
  in
  match fold_struct t ~digest ~encoding pick None with
  | None -> None
  | Some slot ->
    touch t slot;
    Some slot.entry

let find_monotone_le t ~digest ~encoding ~target =
  let pick _key slot best =
    if (not slot.entry.optimal) || slot.entry.target > target then best
    else
      match best with
      | Some b when b.entry.target >= slot.entry.target -> best
      | _ -> Some slot
  in
  match fold_struct t ~digest ~encoding pick None with
  | None -> None
  | Some slot ->
    touch t slot;
    Some slot.entry

let find_nearest t ~digest ~encoding ~target =
  let pick _key slot best =
    if slot.entry.target < target then best
    else
      match best with
      | Some b when b.entry.target <= slot.entry.target -> best
      | _ -> Some slot
  in
  match fold_struct t ~digest ~encoding pick None with
  | None -> None
  | Some slot ->
    touch t slot;
    Some slot.entry

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot best ->
        match best with
        | Some (_, stamp) when stamp <= slot.last_used -> best
        | _ -> Some (key, slot.last_used))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evicted <- t.evicted + 1

let insert t ~digest ~encoding entry =
  let key = { digest; ktarget = entry.target; kspec = entry.spec } in
  let fresh = not (Hashtbl.mem t.table key) in
  if fresh && Hashtbl.length t.table >= t.cap then evict_lru t;
  Hashtbl.replace t.table key { encoding; entry; last_used = tick t }

let mem t ~digest ~target ~spec =
  Hashtbl.mem t.table { digest; ktarget = target; kspec = spec }
