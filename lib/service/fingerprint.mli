(** Structural identity of a problem, as the service caches see it.

    Wraps {!Rentcost.Instance.canonical_encoding}: two problems get
    equal fingerprints exactly when their dominance-pruned cost
    structures are identical up to renumbering task types and
    reordering recipes — in which case any allocation of one transfers
    to the other through the canonical recipe order. The service keys
    its compiled-instance table and solution cache on this, so
    syntactically different but equivalent submissions share entries.

    A fingerprint keeps both the hex digest (compact hash key) and the
    full canonical encoding; {!equal} compares the encoding, so cache
    correctness never rests on the hash being collision-free. *)

type t

val of_instance : Rentcost.Instance.t -> t

(** [of_problem p] compiles [p] (with dominance pruning) and
    fingerprints the instance. When an instance is also needed for
    solving, compile it once and use {!of_instance}. *)
val of_problem : Rentcost.Problem.t -> t

(** Hex digest of the canonical encoding — the hash-table key. *)
val digest : t -> string

(** The full canonical encoding the digest was taken over. *)
val encoding : t -> string

(** Collision-proof equality: compares the encodings, not the
    digests. *)
val equal : t -> t -> bool

(** Leading 12 hex characters of the digest, for logs and replies. *)
val short : t -> string

val pp : Format.formatter -> t -> unit
