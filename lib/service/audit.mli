(** The solve audit journal — one record per completed request.

    Every solve the daemon finishes (served from any rung of the reuse
    ladder, or failed) appends a {!record} carrying the request's
    trace id, the problem fingerprint, how it was served, what it
    cost, how long it queued and solved, the solver-effort telemetry
    deltas, and a folded {!convergence_summary} of the solve's
    {!Telemetry.Progress} timeline.

    Records land in a bounded in-memory ring (answering the protocol's
    [audit] op and {!recent}) and, when {!open_file} has been called,
    are also appended as JSONL — one {!record_to_json} line per
    record, flushed per line so a killed daemon still leaves a
    readable journal.

    The journal obeys the global telemetry kill switch: when
    {!Telemetry.enabled} is [false], {!record} is a no-op — no ring
    writes, no file writes — so disabling telemetry freezes auditing
    too. *)

(** What remains of a {!Telemetry.Progress} timeline in the journal:
    how fast a first feasible point appeared, where the incumbent and
    dual bound ended, and the final relative gap
    [|inc - bound| / max 1 |inc|]. *)
type convergence_summary = {
  events : int;  (** timeline length *)
  first_incumbent : float option;
  last_incumbent : float option;
  time_to_first : float option;
      (** elapsed seconds to the first incumbent (time-to-first-feasible) *)
  final_bound : float option;  (** last dual bound (MILP engines only) *)
  final_gap : float option;
      (** relative gap between final incumbent and final bound; [None]
          unless both exist *)
}

type record = {
  seq : int;  (** journal sequence number, assigned by {!record} *)
  at : float;  (** completion time, [Unix.gettimeofday] *)
  trace_id : string;
  id : int option;  (** the client's request id *)
  tenant : string;
  fingerprint : string;  (** problem fingerprint digest *)
  objective : string;  (** ["min-cost"] or ["max-throughput"] *)
  scalar : int;  (** the objective's target / monetary budget *)
  served : string;  (** reuse rung, {!Protocol.served_to_string} form *)
  engine : string;
  status : string;
  cost : int;
  throughput : int;
  queue_wait : float;  (** seconds spent queued before the solve *)
  wall : float;  (** end-to-end seconds, queue wait excluded *)
  evaluations : int;
  pivots : int;
  nodes : int;
  convergence : convergence_summary option;
      (** [None] when the timeline was empty (cache hits, telemetry
          disabled) *)
}

type t

(** [create ()] is an empty journal holding the last [capacity]
    (default 256) records in memory.
    @raise Invalid_argument when [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Total records ever accepted (the ring holds the last
    [min recorded capacity] of them). *)
val recorded : t -> int

(** [record t r] appends [r] with the next sequence number — to the
    ring, and to the JSONL file when one is open. No-op while
    telemetry is disabled. Thread-safe. *)
val record : t -> record -> unit

(** [recent ?last t] is the last [last] records (default: all held),
    oldest first. *)
val recent : ?last:int -> t -> record list

(** [summarize events] folds a Progress timeline into its journal
    summary; [None] on an empty timeline. *)
val summarize : Telemetry.Progress.event list -> convergence_summary option

(** [open_file t path] starts appending records to [path] as JSONL
    (creating it if needed), closing any previously open file. *)
val open_file : t -> string -> unit

(** [close t] closes the JSONL file, if open. The ring keeps
    recording. *)
val close : t -> unit

val record_to_json : record -> Json.t
val record_of_json : Json.t -> (record, string) result
val summary_to_json : convergence_summary -> Json.t
