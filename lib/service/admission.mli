(** Admission control for the solve queue: bounded FIFO with graceful
    shedding.

    The daemon is single-threaded, so admission is about bounding the
    {e backlog}: a request is shed at the door when the queue is full,
    and shed at dispatch when its deadline expired while it waited
    (running an already-dead solve only delays every request behind
    it). Time is supplied by the caller ([~now], matched against
    absolute [~expires_at] stamps), so the policy is deterministic
    under test. *)

type 'a t

(** @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Jobs currently queued. *)
val length : 'a t -> int

(** Total jobs shed since {!create} — at the door and at dispatch. *)
val shed_count : 'a t -> int

(** [offer t ?expires_at job] enqueues [job], or sheds it ([false])
    when the queue is at capacity. [expires_at] is an absolute
    timestamp on the caller's clock; omitted, the job never expires in
    queue. *)
val offer : 'a t -> ?expires_at:float -> 'a -> bool

(** [take t ~now] dequeues the oldest job: [`Job j] when it is still
    worth running, [`Shed j] when its [expires_at] passed while it
    queued (counted in {!shed_count}; callers typically answer it
    [Overloaded] and call [take] again), [`Empty] when nothing is
    queued. *)
val take : 'a t -> now:float -> [ `Job of 'a | `Shed of 'a | `Empty ]
