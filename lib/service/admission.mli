(** Admission control for the solve queue: a bounded FIFO with
    pluggable shed policies.

    Admission bounds the {e backlog}. A request can be shed at three
    points: at the door when the queue is full (which entry loses is
    the {!policy}'s call), eagerly at enqueue time when its deadline
    lapsed while it queued (an expired entry must not hold a slot a
    live request is being bounced for), and at dispatch when {!take}
    finds its deadline passed. Time is supplied by the caller
    ([~now], matched against absolute [~expires_at] stamps), so every
    policy is deterministic under test.

    The accounting invariant callers rely on: every job ever offered
    is eventually exactly one of {e served} (returned by
    {!take}/{!take_batch} as a live job), {e shed} (rejected at the
    door, returned in an [evicted] list, or returned as [`Shed]), or
    {e still queued}. Shed never loses an accepted job silently —
    eviction hands the job back so the caller can answer it. *)

(** What happens to a full queue when a new request arrives:
    [Reject_new] sheds the arrival (admitted requests are never
    evicted), [Drop_oldest] evicts the head of the queue and admits
    the arrival, [Tenant_fair] evicts the {e newest} entry of the
    tenant holding the most slots — and only when that tenant holds at
    least two, so a tenant's only queued request is never shed in
    favour of another; with no such hog it degrades to
    [Reject_new]. *)
type policy =
  | Reject_new
  | Drop_oldest
  | Tenant_fair

val policy_to_string : policy -> string

(** Parses the [policy_to_string] spellings ("reject-new",
    "drop-oldest", "tenant-fair"). *)
val policy_of_string : string -> policy option

type 'a t

(** [create ~capacity ()] — [?policy] defaults to [Reject_new], the
    historical behaviour. @raise Invalid_argument when
    [capacity <= 0]. *)
val create : ?policy:policy -> capacity:int -> unit -> 'a t

val capacity : 'a t -> int

val policy : 'a t -> policy

(** Jobs currently queued. *)
val length : 'a t -> int

(** Total jobs shed since {!create} — door rejections, evictions,
    eager expiries and dispatch-time sheds all count. *)
val shed_count : 'a t -> int

type 'a offer_outcome = {
  admitted : bool;  (** whether the offered job holds a slot now *)
  evicted : 'a list;
      (** previously admitted jobs shed to make room — expired entries
          swept at enqueue, plus the policy's victim — oldest first.
          Each was accepted earlier and still owes its client a reply
          (typically [Overloaded]). *)
}

(** [offer t ~now job] sweeps expired entries, then enqueues [job] or
    applies the policy when the queue is still full. [expires_at] is
    an absolute timestamp on the caller's clock; omitted, the job
    never expires in queue. [tenant] (default ["default"]) feeds the
    [Tenant_fair] bookkeeping. *)
val offer :
  'a t -> ?expires_at:float -> ?tenant:string -> now:float -> 'a ->
  'a offer_outcome

(** [take t ~now] dequeues the oldest job: [`Job j] when it is still
    worth running, [`Shed j] when its [expires_at] passed while it
    queued (counted in {!shed_count}; callers typically answer it
    [Overloaded] and call [take] again), [`Empty] when nothing is
    queued. *)
val take : 'a t -> now:float -> [ `Job of 'a | `Shed of 'a | `Empty ]

(** [remove_matching t ~f] removes and returns every queued job
    satisfying [f], in queue order, leaving the others in place. The
    removed jobs are {e not} counted as shed — the caller is taking
    responsibility for answering them (the completing single-flight
    leader adopting queued duplicates). *)
val remove_matching : 'a t -> f:('a -> bool) -> 'a list

type 'a batch = {
  jobs : 'a list;
      (** leader first, then up to [k - 1] compatible mates, in queue
          order; [[]] when the queue held nothing live *)
  shed : 'a list;
      (** entries whose deadline expired in queue, met during the
          scan; each still owes a reply *)
}

(** [take_batch t ~now ~k ~compatible] dequeues the oldest live job
    (the leader) plus up to [k - 1] later queued jobs for which
    [compatible leader job] holds, preserving queue order among both
    the batch and the entries left behind. Incompatible entries keep
    their positions. @raise Invalid_argument when [k <= 0]. *)
val take_batch :
  'a t -> now:float -> k:int -> compatible:('a -> 'a -> bool) -> 'a batch
