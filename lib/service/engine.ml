module Instance = Rentcost.Instance
module Allocation = Rentcost.Allocation
module Solver = Rentcost.Solver
module Budget = Rentcost.Budget
module Objective = Rentcost.Objective
module Pricebook = Rentcost.Pricebook
module Scenario = Rentcost.Scenario
module Controller = Rentcost_autoscale.Controller

let c_requests = Telemetry.counter Telemetry.service_requests
let c_hits = Telemetry.counter Telemetry.service_cache_hits
let c_misses = Telemetry.counter Telemetry.service_cache_misses
let c_monotone = Telemetry.counter Telemetry.service_monotone_hits
let c_warm = Telemetry.counter Telemetry.service_warm_starts
let c_reuse = Telemetry.counter Telemetry.service_compile_reuse
let c_shed = Telemetry.counter Telemetry.service_shed
let c_coalesced = Telemetry.counter Telemetry.service_coalesced
let c_batches = Telemetry.counter Telemetry.service_batches

(* The labelled view of the request counter: same family name as
   [c_requests], broken out by tenant and reuse rung. Bumps are guarded
   by [Telemetry.enabled] at the call sites — the per-request cell
   lookup is not free, so the kill switch skips it entirely. *)
let requests_vec =
  Telemetry.counter_vec Telemetry.service_requests
    ~labels:[ "tenant"; "rung" ]

let ticks_vec =
  Telemetry.counter_vec ~help:"Autoscale ticks by session and plan action."
    "autoscale.session_ticks" ~labels:[ "session"; "action" ]

(* Per-op request counters, pre-registered so [submit] never touches
   the registry mutex. *)
let op_names =
  [ "register"; "solve"; "track"; "tick"; "untrack"; "stats"; "metrics";
    "audit"; "shutdown" ]

let op_counters =
  List.map (fun op -> (op, Telemetry.counter (Telemetry.service_op op))) op_names

let op_name = function
  | Protocol.Register _ -> "register"
  | Protocol.Solve _ -> "solve"
  | Protocol.Track _ -> "track"
  | Protocol.Tick _ -> "tick"
  | Protocol.Untrack _ -> "untrack"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Audit _ -> "audit"
  | Protocol.Shutdown -> "shutdown"

type config = {
  cache_capacity : int;
  queue_capacity : int;
  queue_policy : Admission.policy;
  batch : int;  (* max queued jobs a worker drains per wakeup *)
  default_budget : Budget.t;
  workers : int;
}

let default_config =
  {
    cache_capacity = 128;
    queue_capacity = 64;
    queue_policy = Admission.Reject_new;
    batch = 8;
    default_budget = Budget.unlimited;
    workers = 1;
  }

type job = {
  id : int option;
  trace_id : string;  (* client-supplied or assigned at admission *)
  tenant : string;
  source : Protocol.source;
  objective : Objective.t;
  pricebook : Pricebook.t option;
  spec : Solver.spec;
  budget : Budget.t;
  reuse : Protocol.reuse;
  arrived : float;
}

(* Handling latency and queue wait live in shared Telemetry histograms
   (the [metrics] request and Prometheus text exposition read them
   uniformly), which also means the kill switch freezes them along
   with every other instrument. The labels survive only as the
   human-readable spelling of the latency buckets in [stats]. *)
let latency_hist =
  Telemetry.histogram Telemetry.service_latency_seconds
    ~bounds:[| 0.001; 0.01; 0.1; 1.0 |]

let queue_wait_hist =
  Telemetry.histogram Telemetry.service_queue_wait_seconds
    ~bounds:[| 0.001; 0.01; 0.1; 1.0; 10.0 |]

let latency_labels = [| "lt_1ms"; "lt_10ms"; "lt_100ms"; "lt_1s"; "ge_1s" |]

(* --- single-flight coalescing ---

   One open [flight] per distinct solve key: the first worker (or
   batch leader) to start a key becomes its leader; every identical
   request that shows up while the flight is open — at the door, in
   the queue, or on another worker — rides the leader's outcome
   instead of solving again. The key is structural equality on the
   solve inputs; all four record components are pure data (no
   closures), so polymorphic equality is exact. *)

type flight_result =
  | Flight_solved of {
      status : Solver.status;
      cost : int;
      rho : int array;
          (* the leader's client numbering — identical sources imply
             identical numbering, so followers reuse it verbatim *)
      machines : int array;
      engine : string;
      fingerprint : string;
      objective : string;
      scalar : int;
    }
  | Flight_error of string

type flight = {
  f_leader : job;
  mutable f_result : flight_result option;  (* guarded by [fm] *)
  mutable f_pending : job list;
      (* submit-time followers, newest first; guarded by [fm] *)
}

let same_solve a b =
  a.source = b.source && a.objective = b.objective
  && a.pricebook = b.pricebook && a.spec = b.spec

(* Batch compatibility is looser than flight identity: the objective
   scalar may differ (a non-identical mate re-runs the reuse ladder
   inline, straight after the leader warmed the cache). *)
let compatible_jobs a b =
  a.source = b.source && a.pricebook = b.pricebook && a.spec = b.spec
  && Objective.kind a.objective = Objective.kind b.objective

module Striped = Rentcost_parallel.Striped

type t = {
  config : config;
  solutions : Shared_cache.t;
  queue : job Admission.t;
  qm : Mutex.t;  (* guards every [queue] access *)
  qc : Condition.t;  (* signalled on admission; workers sleep here *)
  flights : flight list ref;
      (* open single-flight leaders, at most [workers] entries;
         guarded by [fm] *)
  fm : Mutex.t;
  fc : Condition.t;  (* broadcast when any flight completes *)
  registry : (string, Instance.t * Fingerprint.t) Hashtbl.t Striped.t;
      (* striped by name *)
  instances : (string, Instance.t * Fingerprint.t) Hashtbl.t Striped.t;
      (* striped by digest; Fingerprint.equal checked on reuse *)
  trackers : (string, Controller.t) Hashtbl.t Striped.t;
      (* autoscale sessions, striped by session name; ticks run under
         the stripe lock, which serializes a session's controller *)
  audit : Audit.t;
  trace_seq : int Atomic.t;
      (* with [trace_nonce], makes assigned trace ids unique per engine
         and stable within it *)
  trace_nonce : int;
  started_at : float;
}

(* State sharding scales with the worker count but stays bounded:
   beyond 8 stripes the lock contention left on a cache stripe is
   noise next to the solves it fronts. workers = 1 gives single-stripe
   state — the sequential daemon's exact behaviour. *)
let stripes_for config = max 1 (min config.workers 8)

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Engine.create: workers < 1";
  if config.batch < 1 then invalid_arg "Engine.create: batch < 1";
  let stripes = stripes_for config in
  let started_at = Unix.gettimeofday () in
  {
    config;
    solutions =
      Shared_cache.create ~capacity:config.cache_capacity ~stripes;
    queue =
      Admission.create ~policy:config.queue_policy
        ~capacity:config.queue_capacity ();
    qm = Mutex.create ();
    qc = Condition.create ();
    flights = ref [];
    fm = Mutex.create ();
    fc = Condition.create ();
    registry = Striped.create ~stripes (fun _ -> Hashtbl.create 16);
    instances = Striped.create ~stripes (fun _ -> Hashtbl.create 16);
    trackers = Striped.create ~stripes (fun _ -> Hashtbl.create 16);
    audit = Audit.create ();
    trace_seq = Atomic.make 0;
    trace_nonce = int_of_float (Float.rem (started_at *. 1e3) 16777216.0);
    started_at;
  }

let cache t = t.solutions

let config t = t.config

let audit t = t.audit

(* Assigned trace ids: unique within the engine (the atomic sequence),
   distinguishable across engine restarts (the start-time nonce). *)
let fresh_trace_id t =
  Printf.sprintf "req-%06x-%d" t.trace_nonce
    (Atomic.fetch_and_add t.trace_seq 1)

let locked_queue t f =
  Mutex.lock t.qm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.qm) (fun () -> f t.queue)

let queue_length t = locked_queue t Admission.length

let inflight t =
  Mutex.lock t.fm;
  let n = List.length !(t.flights) in
  Mutex.unlock t.fm;
  n

(* Back-pressure hint for [Overloaded]: queue depth times observed mean
   service latency — roughly how long the present backlog takes to
   clear. Before any latency sample exists, assume 20ms per job. *)
let retry_after_ms t =
  let snap = Telemetry.snapshot latency_hist in
  let mean =
    if snap.Telemetry.h_count > 0 then
      snap.Telemetry.h_sum /. float_of_int snap.Telemetry.h_count
    else 0.02
  in
  let depth = max 1 (queue_length t) in
  max 1 (int_of_float (Float.ceil (mean *. float_of_int depth *. 1000.)))

let overloaded t job =
  Telemetry.bump c_shed;
  Protocol.Overloaded
    {
      id = job.id;
      trace_id = Some job.trace_id;
      retry_after_ms = Some (retry_after_ms t);
    }

(* --- canonical split translation ---

   The cache stores splits in canonical recipe order; these two maps
   move an allocation between an instance's own numbering and that
   shared order, which is what lets fingerprint-equal instances serve
   each other's solutions. *)

let canonical_rho_of inst (alloc : Allocation.t) =
  let order = Instance.canonical_recipe_order inst in
  let jc = Instance.num_recipes inst in
  let compact =
    Array.init jc (fun j ->
        alloc.Allocation.rho.(Instance.original_index inst j))
  in
  Array.init jc (fun slot -> compact.(order.(slot)))

let alloc_of_canonical inst canonical_rho =
  let order = Instance.canonical_recipe_order inst in
  let compact = Array.make (Instance.num_recipes inst) 0 in
  Array.iteri (fun slot j -> compact.(j) <- canonical_rho.(slot)) order;
  Allocation.of_rho (Instance.problem inst) ~rho:(Instance.expand_rho inst compact)

(* --- registration and instance resolution --- *)

let register t ~name problem =
  let inst = Instance.compile problem in
  let fp = Fingerprint.of_instance inst in
  Striped.with_key t.registry ~key:name (fun tbl ->
      Hashtbl.replace tbl name (inst, fp));
  let digest = Fingerprint.digest fp in
  Striped.with_key t.instances ~key:digest (fun tbl ->
      Hashtbl.replace tbl digest (inst, fp));
  fp

(* Compile [problem] under the request's scenario and dedup in the
   instance table. Lookup and (on miss) insert happen under one stripe
   lock, so two workers resolving the same problem agree on which
   compiled instance is the shared one. The scenario is baked into the
   canonical encoding, so objective kinds and price books land on
   distinct digests and never share a compiled instance. *)
let shared_compile t problem ~objective ~pricebook =
  let scenario = Scenario.make ~objective ?pricebook () in
  let inst = Instance.compile ~scenario problem in
  let fp = Fingerprint.of_instance inst in
  let digest = Fingerprint.digest fp in
  let shared =
    Striped.with_key t.instances ~key:digest (fun tbl ->
        match Hashtbl.find_opt tbl digest with
        | Some (inst0, fp0) when Fingerprint.equal fp fp0 -> `Reuse inst0
        | _ ->
          Hashtbl.replace tbl digest (inst, fp);
          `Fresh)
  in
  match shared with
  | `Reuse inst0 ->
    Telemetry.bump c_reuse;
    (inst0, inst, fp)
  | `Fresh -> (inst, inst, fp)

(* Resolve a solve source to [(solve_inst, client_inst, fp)]:
   [solve_inst] is the (possibly shared) instance engines run on,
   [client_inst] carries the submitted problem's numbering for the
   response. They differ only for an inline problem that
   fingerprint-matched an already-compiled one. A [Ref] under the
   default scenario (min-cost, no price book) is the registered
   instance verbatim; any other scenario recompiles the registered
   problem under it (deduped, so the recompile happens once per
   scenario, not per request). *)
let resolve t source ~objective ~pricebook =
  let default_scenario =
    Objective.kind objective = `Min_cost && Option.is_none pricebook
  in
  match source with
  | Protocol.Ref name -> (
    match
      Striped.with_key t.registry ~key:name (fun tbl ->
          Hashtbl.find_opt tbl name)
    with
    | None -> Result.Error (Printf.sprintf "solve: unknown ref %S" name)
    | Some (inst, fp) ->
      if default_scenario then begin
        Telemetry.bump c_reuse;
        Result.Ok (inst, inst, fp)
      end
      else
        Result.Ok
          (shared_compile t (Instance.source_problem inst) ~objective
             ~pricebook))
  | Protocol.Inline problem ->
    Result.Ok (shared_compile t problem ~objective ~pricebook)

(* --- autoscale sessions ---

   Track/Tick/Untrack are immediate ops (like Register): a tick is a
   cheap deadband check unless the controller actually re-solves, and
   queuing ticks behind solves would let demand observations go stale.
   A session's controller lives in [t.trackers]; running the tick
   under its stripe lock serializes each session while independent
   sessions on other stripes proceed concurrently. *)

(* The controller always runs on an instance compiled from the
   submitted problem itself (the registered instance for a [Ref],
   never a fingerprint-equal stand-in), so plan arrays are in the
   submitted problem's own numbering. *)
let resolve_track t source =
  match source with
  | Protocol.Ref name -> (
    match
      Striped.with_key t.registry ~key:name (fun tbl ->
          Hashtbl.find_opt tbl name)
    with
    | None -> Result.Error (Printf.sprintf "track: unknown ref %S" name)
    | Some (inst, fp) ->
      Telemetry.bump c_reuse;
      Result.Ok (inst, fp))
  | Protocol.Inline problem ->
    let inst = Instance.compile problem in
    Result.Ok (inst, Fingerprint.of_instance inst)

let track t ~session ~source ~ticks_per_hour ~deadband ~headroom ~spec =
  match resolve_track t source with
  | Result.Error message -> Protocol.Error { id = None; trace_id = None; message }
  | Result.Ok (inst, fp) ->
    let config =
      {
        Controller.ticks_per_hour;
        deadband;
        headroom;
        spec;
        budget = t.config.default_budget;
      }
    in
    let controller = Controller.create_on ~config inst in
    Striped.with_key t.trackers ~key:session (fun tbl ->
        Hashtbl.replace tbl session controller);
    Protocol.Tracking { session; fingerprint = Fingerprint.short fp }

let track_tick t ~id ~session ~demand =
  let result =
    Striped.with_key t.trackers ~key:session (fun tbl ->
        match Hashtbl.find_opt tbl session with
        | None -> None
        | Some controller ->
          let plan =
            Telemetry.Span.with_span
              ~attrs:[ ("session", session); ("demand", string_of_int demand) ]
              "service.tick"
              (fun () -> Controller.tick controller ~demand)
          in
          Some (plan, Controller.total_charged controller))
  in
  match result with
  | None ->
    Protocol.Error
      {
        id;
        trace_id = None;
        message = Printf.sprintf "tick: no tracked session %S" session;
      }
  | Some (plan, total_charged) ->
    if Telemetry.enabled () then
      Telemetry.bump
        (Telemetry.counter_with ticks_vec
           [ session; Controller.action_to_string plan.Controller.action ]);
    Protocol.Plan { id; session; plan; total_charged }

let untrack t ~session =
  let removed =
    Striped.with_key t.trackers ~key:session (fun tbl ->
        match Hashtbl.find_opt tbl session with
        | None -> None
        | Some controller ->
          Hashtbl.remove tbl session;
          Some controller)
  in
  match removed with
  | None ->
    Protocol.Error
      {
        id = None;
        trace_id = None;
        message = Printf.sprintf "untrack: no tracked session %S" session;
      }
  | Some c ->
    Protocol.Untracked
      {
        session;
        ticks = Controller.ticks c;
        replans = Controller.replans c;
        holds = Controller.holds c;
        violations = Controller.violations c;
        total_charged = Controller.total_charged c;
      }

(* --- the reuse ladder --- *)

let solved ~job ~status ~(alloc : Allocation.t) ~served ~engine ~wall =
  Protocol.Solved
    {
      id = job.id;
      trace_id = Some job.trace_id;
      status;
      cost = alloc.Allocation.cost;
      rho = Array.copy alloc.Allocation.rho;
      machines = Array.copy alloc.Allocation.machines;
      served;
      engine;
      wall_time = wall;
    }

(* The ladder rungs each get a span, so a request's trace reads as
   service.request → service.resolve / rung lookups / service.solve →
   solver.solve → engine internals. The queue wait (admission to
   drain) is recorded as a sibling span timed externally, since no
   code runs while the job sits in the queue. *)
let run_solve_inner t ~now ~fill job =
  let started = Unix.gettimeofday () in
  Telemetry.bump c_requests;
  Telemetry.observe queue_wait_hist (now -. job.arrived);
  Telemetry.Span.record ~name:"service.queue_wait" ~start:job.arrived
    ~duration:(now -. job.arrived) ();
  (* A failed request still leaves an audit record — trace id, how far
     it got, and how long it took — so journals account for every
     completed request, not just the happy path. *)
  let errored ~fingerprint message =
    fill := Some (Flight_error message);
    Audit.record t.audit
      {
        Audit.seq = 0;
        at = Unix.gettimeofday ();
        trace_id = job.trace_id;
        id = job.id;
        tenant = job.tenant;
        fingerprint;
        objective = Objective.kind_to_string (Objective.kind job.objective);
        scalar = Objective.scalar job.objective;
        served = "none";
        engine = "";
        status = "error";
        cost = 0;
        throughput = 0;
        queue_wait = now -. job.arrived;
        wall = Unix.gettimeofday () -. started;
        evaluations = 0;
        pivots = 0;
        nodes = 0;
        convergence = None;
      };
    Protocol.Error { id = job.id; trace_id = Some job.trace_id; message }
  in
  match
    Telemetry.Span.with_span "service.resolve" (fun () ->
        resolve t job.source ~objective:job.objective
          ~pricebook:job.pricebook)
  with
  | Result.Error message -> errored ~fingerprint:"" message
  | Result.Ok (solve_inst, client_inst, fp) ->
    let digest = Fingerprint.digest fp
    and encoding = Fingerprint.encoding fp in
    (* The cache scalar: the throughput target of a min-cost job, the
       monetary budget of a max-throughput one. The two never collide —
       the objective kind is baked into [encoding] (and [digest]). *)
    let scalar = Objective.scalar job.objective in
    let kind = Objective.kind job.objective in
    let spec =
      match job.spec with
      | Solver.Auto -> Solver.auto_of_instance solve_inst
      | s -> s
    in
    let spec_s = Solver.spec_to_string spec in
    let reuse_at_least r =
      match (job.reuse, r) with
      | Protocol.No_reuse, _ -> false
      | _, Protocol.No_reuse -> true
      | Protocol.Exact_only, _ -> r = Protocol.Exact_only
      | Protocol.Warm, _ -> r <> Protocol.Monotone
      | Protocol.Monotone, _ -> true
    in
    let finish ?outcome ~status ~(alloc : Allocation.t) ~served ~engine () =
      let wall = Unix.gettimeofday () -. started in
      fill :=
        Some
          (Flight_solved
             {
               status;
               cost = alloc.Allocation.cost;
               rho = Array.copy alloc.Allocation.rho;
               machines = Array.copy alloc.Allocation.machines;
               engine;
               fingerprint = Fingerprint.short fp;
               objective = Objective.kind_to_string kind;
               scalar;
             });
      Telemetry.observe latency_hist wall;
      let rung = Protocol.served_to_string served in
      if Telemetry.enabled () then
        Telemetry.bump (Telemetry.counter_with requests_vec [ job.tenant; rung ]);
      let effort, convergence =
        match outcome with
        | None -> (None, [])
        | Some (o : Solver.outcome) ->
          (Some o.Solver.telemetry, o.Solver.convergence)
      in
      Audit.record t.audit
        {
          Audit.seq = 0;
          at = Unix.gettimeofday ();
          trace_id = job.trace_id;
          id = job.id;
          tenant = job.tenant;
          fingerprint = Fingerprint.short fp;
          objective = Objective.kind_to_string kind;
          scalar;
          served = rung;
          engine;
          status = Solver.status_to_string status;
          cost = alloc.Allocation.cost;
          throughput = Array.fold_left ( + ) 0 alloc.Allocation.rho;
          queue_wait = now -. job.arrived;
          wall;
          evaluations =
            (match effort with None -> 0 | Some e -> e.Solver.evaluations);
          pivots = (match effort with None -> 0 | Some e -> e.Solver.pivots);
          nodes = (match effort with None -> 0 | Some e -> e.Solver.nodes);
          convergence = Audit.summarize convergence;
        };
      solved ~job ~status ~alloc ~served ~engine ~wall
    in
    let exact =
      if reuse_at_least Protocol.Exact_only then
        Telemetry.Span.with_span "service.rung.exact" (fun () ->
            Shared_cache.find_exact t.solutions ~digest ~encoding
              ~target:scalar ~spec:spec_s)
      else None
    in
    (match exact with
     | Some entry ->
       Telemetry.bump c_hits;
       let alloc = alloc_of_canonical client_inst entry.Cache.canonical_rho in
       let status =
         if entry.Cache.optimal then Solver.Optimal else Solver.Feasible
       in
       finish ~status ~alloc ~served:Protocol.Exact_hit ~engine:entry.Cache.spec
         ()
     | None -> (
       let monotone =
         if reuse_at_least Protocol.Monotone then
           Telemetry.Span.with_span "service.rung.monotone" (fun () ->
               (* Min-cost: an optimal split for a larger target covers
                  this one. Max-throughput: an optimal split under a
                  smaller budget still fits this one — the same rung
                  read in the scalar's feasibility direction. *)
               match kind with
               | `Min_cost ->
                 Shared_cache.find_monotone t.solutions ~digest ~encoding
                   ~target:scalar
               | `Max_throughput ->
                 Shared_cache.find_monotone_le t.solutions ~digest ~encoding
                   ~target:scalar)
         else None
       in
       match monotone with
       | Some entry ->
         (* A feasible incumbent with zero solve work. *)
         Telemetry.bump c_hits;
         Telemetry.bump c_monotone;
         let alloc = alloc_of_canonical client_inst entry.Cache.canonical_rho in
         finish ~status:Solver.Feasible ~alloc ~served:Protocol.Monotone_hit
           ~engine:entry.Cache.spec ()
       | None ->
         Telemetry.bump c_misses;
         let warm_start =
           (* Warm starts are a min-cost notion: a cached split at or
              above the target seeds the engine. A max-throughput solve
              re-brackets its own binary search, so it goes cold. *)
           if kind = `Min_cost && reuse_at_least Protocol.Warm then
             Telemetry.Span.with_span "service.rung.warm" (fun () ->
                 match
                   Shared_cache.find_nearest t.solutions ~digest ~encoding
                     ~target:scalar
                 with
                 | Some entry ->
                   Some
                     (alloc_of_canonical solve_inst entry.Cache.canonical_rho)
                 | None -> None)
           else None
         in
         (* Charge queue wait against the request's deadline. *)
         let budget = Budget.remaining job.budget ~elapsed:(now -. job.arrived) in
         let outcome =
           Telemetry.Span.with_span "service.solve" (fun () ->
               Solver.run ~budget ?warm_start ~spec ~instance:solve_inst
                 ~objective:job.objective ())
         in
         (match outcome.Solver.allocation with
          | None ->
            errored ~fingerprint:(Fingerprint.short fp)
              "solve: no allocation found"
          | Some alloc ->
            if outcome.Solver.telemetry.Solver.warm_started then
              Telemetry.bump c_warm;
            let canonical = canonical_rho_of solve_inst alloc in
            Shared_cache.insert t.solutions ~digest ~encoding
              {
                Cache.target = scalar;
                spec = spec_s;
                canonical_rho = canonical;
                cost = alloc.Allocation.cost;
                optimal = outcome.Solver.status = Solver.Optimal;
              };
            let client_alloc =
              if solve_inst == client_inst then alloc
              else alloc_of_canonical client_inst canonical
            in
            let served =
              if outcome.Solver.telemetry.Solver.warm_started then
                Protocol.Warm_started
              else Protocol.Cold
            in
            finish ~outcome ~status:outcome.Solver.status ~alloc:client_alloc
              ~served
              ~engine:(Solver.spec_to_string outcome.Solver.telemetry.Solver.engine)
              ())))

let run_solve t ~now ~fill job =
  if not (Telemetry.enabled ()) then run_solve_inner t ~now ~fill job
  else
    (* The ambient trace id stamps every span the request records —
       the request span here, the rung and solve spans below it, and
       whatever the engines emit — as a [trace_id] attribute, tying
       the trace to the response and the audit record. *)
    Telemetry.Span.with_trace_id job.trace_id (fun () ->
        Telemetry.Span.with_span
          ~attrs:
            [
              ( "objective",
                Objective.kind_to_string (Objective.kind job.objective) );
              ("target", string_of_int (Objective.scalar job.objective));
              ("reuse", Protocol.reuse_to_string job.reuse);
            ]
          "service.request"
          (fun () -> run_solve_inner t ~now ~fill job))

(* Answer a follower from its leader's outcome: the follower keeps its
   own trace id, request span, audit record and latency observation,
   but touches neither the cache nor an engine. The invariant clients
   rely on: a follower never observes a different answer than its
   leader — payloads are copied from the flight result verbatim. *)
let serve_coalesced t ~now job result =
  let serve () =
    Telemetry.bump c_requests;
    Telemetry.bump c_coalesced;
    (* A door-attached follower may arrive after the leader's drain
       clock; clamp so injected test clocks never observe negatives. *)
    let waited = Float.max 0. (now -. job.arrived) in
    Telemetry.observe queue_wait_hist waited;
    let wall = waited in
    match result with
    | Flight_error message ->
      Audit.record t.audit
        {
          Audit.seq = 0;
          at = Unix.gettimeofday ();
          trace_id = job.trace_id;
          id = job.id;
          tenant = job.tenant;
          fingerprint = "";
          objective = Objective.kind_to_string (Objective.kind job.objective);
          scalar = Objective.scalar job.objective;
          served = "coalesced";
          engine = "";
          status = "error";
          cost = 0;
          throughput = 0;
          queue_wait = waited;
          wall;
          evaluations = 0;
          pivots = 0;
          nodes = 0;
          convergence = None;
        };
      Protocol.Error { id = job.id; trace_id = Some job.trace_id; message }
    | Flight_solved
        { status; cost; rho; machines; engine; fingerprint; objective; scalar }
      ->
      Telemetry.observe latency_hist wall;
      if Telemetry.enabled () then
        Telemetry.bump
          (Telemetry.counter_with requests_vec [ job.tenant; "coalesced" ]);
      Audit.record t.audit
        {
          Audit.seq = 0;
          at = Unix.gettimeofday ();
          trace_id = job.trace_id;
          id = job.id;
          tenant = job.tenant;
          fingerprint;
          objective;
          scalar;
          served = "coalesced";
          engine;
          status = Solver.status_to_string status;
          cost;
          throughput = Array.fold_left ( + ) 0 rho;
          queue_wait = waited;
          wall;
          evaluations = 0;
          pivots = 0;
          nodes = 0;
          convergence = None;
        };
      Protocol.Solved
        {
          id = job.id;
          trace_id = Some job.trace_id;
          status;
          cost;
          rho = Array.copy rho;
          machines = Array.copy machines;
          served = Protocol.Coalesced;
          engine;
          wall_time = wall;
        }
  in
  if not (Telemetry.enabled ()) then serve ()
  else
    Telemetry.Span.with_trace_id job.trace_id (fun () ->
        Telemetry.Span.with_span
          ~attrs:[ ("served", "coalesced") ]
          "service.request" serve)

(* Join-or-lead, non-blocking: find an open flight for [job]'s key or
   open one. Callers hold [fm] already ([with_flights]); the dequeue
   path additionally holds [qm] around the take AND this decision, so
   a flight completing concurrently (which must sweep under [qm]
   first) can never close between a worker's take and its join — a
   dequeued duplicate always finds its leader's flight still open.
   [No_reuse] jobs never join (the client asked for a cold solve) but
   still lead — duplicates are welcome to ride the cold result. *)
let join_or_lead t job =
  match
    if job.reuse = Protocol.No_reuse then None
    else List.find_opt (fun f -> same_solve f.f_leader job) !(t.flights)
  with
  | Some f -> `Join f
  | None ->
    let f = { f_leader = job; f_result = None; f_pending = [] } in
    t.flights := f :: !(t.flights);
    `Lead f

let with_flights t f =
  Mutex.lock t.fm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.fm) f

(* Block until a joined flight lands. Never called with [qm] held —
   the leader needs [qm] to publish. *)
let await_flight t f =
  Mutex.lock t.fm;
  let rec await () =
    match f.f_result with
    | Some r -> r
    | None ->
      Condition.wait t.fc t.fm;
      await ()
  in
  let r = await () in
  Mutex.unlock t.fm;
  r

(* Publish a finished flight and collect every follower it owes an
   answer: door-attached pending jobs plus identical jobs still
   sitting in the queue (swept here so a herd never pays a second
   solve, whatever the worker interleaving). The sweep, the result
   publication and the flight removal all happen under [qm] (with
   [fm] nested), mirroring the dequeue path's take-and-join section.
   The leader's cache insert happened inside [run_solve], strictly
   before this — so once the flight is gone, late duplicates hit the
   cache instead. *)
let complete_flight t f result =
  locked_queue t (fun q ->
      let swept =
        Admission.remove_matching q ~f:(fun j ->
            j.reuse <> Protocol.No_reuse && same_solve f.f_leader j)
      in
      let pending =
        with_flights t (fun () ->
            f.f_result <- Some result;
            let pending = List.rev f.f_pending in
            f.f_pending <- [];
            t.flights := List.filter (fun g -> g != f) !(t.flights);
            Condition.broadcast t.fc;
            pending)
      in
      pending @ swept)

(* Run one job in the flight role already picked for it. Returns the
   responses this call now owes (the job's own answer first, then any
   adopted followers') and the flight result batch-mates can ride. A
   crashing solve must strand neither the followers nor the worker
   domain: the failure is published as [Flight_error] and answered as
   [Error]. *)
let run_leader t ~now job role =
  match role with
  | `Join f ->
    let r = await_flight t f in
    ([ serve_coalesced t ~now job r ], r)
  | `Lead f ->
    let fill = ref None in
    let response =
      try run_solve t ~now ~fill job
      with e ->
        let message = "solve: " ^ Printexc.to_string e in
        fill := Some (Flight_error message);
        Protocol.Error { id = job.id; trace_id = Some job.trace_id; message }
    in
    let result =
      match !fill with
      | Some r -> r
      | None -> Flight_error "solve: no outcome recorded"
    in
    let adopted = complete_flight t f result in
    (response :: List.map (fun j -> serve_coalesced t ~now j result) adopted,
     result)

(* The blocking variant for jobs picked up outside the queue-lock
   section (non-identical batch mates): the join decision is made
   fresh, and a just-closed flight is not an error — the reuse ladder
   answers from the cache the leader filled. *)
let run_job t ~now job =
  run_leader t ~now job (with_flights t (fun () -> join_or_lead t job))

(* --- stats --- *)

let stats t =
  let counters =
    List.map (fun (name, v) -> (name, Json.Int v)) (Telemetry.all ())
  in
  let ops =
    List.map (fun (op, c) -> (op, Json.Int (Telemetry.read c))) op_counters
  in
  (* The latency buckets as readable labels; the authoritative data is
     the [service.latency_seconds] histogram, of which this is a
     rendering (per-bucket counts, overflow last). *)
  let latency =
    let h = Telemetry.snapshot latency_hist in
    Array.to_list
      (Array.mapi
         (fun i label -> (label, Json.Int h.Telemetry.h_counts.(i)))
         latency_labels)
  in
  [
    ("uptime", Json.Float (Unix.gettimeofday () -. t.started_at));
    ("counters", Json.Obj counters);
    ("ops", Json.Obj ops);
    ( "cache",
      Json.Obj
        [
          ("size", Json.Int (Shared_cache.length t.solutions));
          ("capacity", Json.Int (Shared_cache.capacity t.solutions));
          ("evictions", Json.Int (Shared_cache.evictions t.solutions));
        ] );
    ( "queue",
      Json.Obj
        [
          ("depth", Json.Int (queue_length t));
          ("capacity", Json.Int (Admission.capacity t.queue));
          ( "policy",
            Json.String (Admission.policy_to_string (Admission.policy t.queue))
          );
          ("shed", Json.Int (locked_queue t Admission.shed_count));
          ("inflight", Json.Int (inflight t));
        ] );
    ("latency", Json.Obj latency);
    ( "audit",
      Json.Obj
        [
          ("recorded", Json.Int (Audit.recorded t.audit));
          ("capacity", Json.Int (Audit.capacity t.audit));
        ] );
    ( "registered",
      Json.Int
        (Striped.fold t.registry ~init:0 ~f:(fun acc tbl ->
             acc + Hashtbl.length tbl)) );
    ( "tracked",
      Json.Int
        (Striped.fold t.trackers ~init:0 ~f:(fun acc tbl ->
             acc + Hashtbl.length tbl)) );
  ]

(* --- request dispatch --- *)

let clock = function Some now -> now | None -> Unix.gettimeofday ()

let submit ?now t (request : Protocol.request) =
  let now = clock now in
  Telemetry.bump (List.assoc (op_name request) op_counters);
  match request with
  | Protocol.Register { name; problem } ->
    let fp = register t ~name problem in
    [ Protocol.Registered { name; fingerprint = Fingerprint.short fp } ]
  | Protocol.Stats -> [ Protocol.Stats_reply (stats t) ]
  | Protocol.Metrics ->
    [
      Protocol.Metrics_reply
        { metrics = Metrics.json ~stats:(stats t) (); text = Metrics.text () };
    ]
  | Protocol.Shutdown -> [ Protocol.Bye ]
  | Protocol.Track { session; source; ticks_per_hour; deadband; headroom; spec }
    ->
    [ track t ~session ~source ~ticks_per_hour ~deadband ~headroom ~spec ]
  | Protocol.Tick { id; session; demand } ->
    [ track_tick t ~id ~session ~demand ]
  | Protocol.Untrack { session } -> [ untrack t ~session ]
  | Protocol.Audit { last } ->
    [ Protocol.Audit_reply (Audit.recent ?last t.audit) ]
  | Protocol.Solve
      { id; trace_id; tenant; source; objective; pricebook; spec; budget; reuse }
    ->
    let budget =
      match budget with Some b -> b | None -> t.config.default_budget
    in
    let trace_id =
      match trace_id with Some s -> s | None -> fresh_trace_id t
    in
    let tenant = Option.value ~default:"default" tenant in
    let job =
      {
        id;
        trace_id;
        tenant;
        source;
        objective;
        pricebook;
        spec;
        budget;
        reuse;
        arrived = now;
      }
    in
    let expires_at =
      Option.map (fun d -> now +. d) budget.Budget.deadline
    in
    (* Single-flight at the door: a duplicate of a solve already in
       flight attaches to that flight and skips admission entirely —
       it holds no queue slot and cannot be shed. *)
    let attached =
      job.reuse <> Protocol.No_reuse
      && begin
           Mutex.lock t.fm;
           let hit =
             match
               List.find_opt (fun f -> same_solve f.f_leader job) !(t.flights)
             with
             | Some f ->
               f.f_pending <- job :: f.f_pending;
               true
             | None -> false
           in
           Mutex.unlock t.fm;
           hit
         end
    in
    if attached then []
    else begin
      let outcome =
        locked_queue t (fun q ->
            let o = Admission.offer q ?expires_at ~tenant ~now job in
            if o.Admission.admitted then Condition.signal t.qc;
            o)
      in
      let evicted = List.map (overloaded t) outcome.Admission.evicted in
      if outcome.Admission.admitted then evicted
      else evicted @ [ overloaded t job ]
    end

(* Take a batch and pick the leader's flight role in ONE queue-lock
   section; run the batch outside (solves are the long part — holding
   qm across them would serialize the workers). The atomic
   take-and-join is what makes the herd invariant scheduling-proof:
   a completing flight sweeps under [qm] before it closes, so a
   duplicate this take just dequeued either was swept (not ours any
   more) or joins a flight that is still open — never the limbo in
   between. *)
let take_batch ~now t =
  locked_queue t (fun q ->
      let b =
        Admission.take_batch q ~now ~k:(max 1 t.config.batch)
          ~compatible:compatible_jobs
      in
      let role =
        match b.Admission.jobs with
        | [] -> None
        | leader :: _ ->
          Some (with_flights t (fun () -> join_or_lead t leader))
      in
      (b, role))

(* One worker wakeup: drain the oldest live job plus up to
   [config.batch - 1] compatible queued mates. The leader runs under
   single-flight discipline; mates identical to it ride its flight
   result, the rest re-run the reuse ladder inline — straight after
   the leader's cache fill, so they land monotone or exact hits
   without a queue round-trip. Returns every response now owed:
   dispatch-time sheds, the leader's answer, adopted followers',
   then the mates'. Empty means the queue held nothing. *)
let drain_next ?now t =
  let now = clock now in
  let { Admission.jobs; shed }, role = take_batch ~now t in
  let shed_rs = List.map (overloaded t) shed in
  match (jobs, role) with
  | [], _ | _, None -> shed_rs
  | leader :: mates, Some role ->
    if mates <> [] then Telemetry.bump c_batches;
    let leader_rs, result = run_leader t ~now leader role in
    let mate_rs =
      List.concat_map
        (fun m ->
          if m.reuse <> Protocol.No_reuse && same_solve leader m then
            [ serve_coalesced t ~now m result ]
          else fst (run_job t ~now m))
        mates
    in
    shed_rs @ leader_rs @ mate_rs

let drain ?now t =
  let now = clock now in
  let rec go acc =
    match drain_next ~now t with
    | [] -> List.rev acc
    | rs -> go (List.rev_append rs acc)
  in
  go []

(* Block until the queue is non-empty or [stop ()] turns true (the
   caller flips its stop flag and calls [wake_all]). Returns whether
   the queue held work at wake-up — true even when stopping, so
   workers drain a non-empty queue before exiting. *)
let wait_for_work t ~stop =
  Mutex.lock t.qm;
  let rec wait () =
    if Admission.length t.queue > 0 then true
    else if stop () then false
    else begin
      Condition.wait t.qc t.qm;
      wait ()
    end
  in
  let has_work = wait () in
  Mutex.unlock t.qm;
  has_work

let wake_all t =
  Mutex.lock t.qm;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm

let handle ?now t request =
  match request with
  | Protocol.Solve _ -> (
    match submit ?now t request with
    | [] -> drain ?now t
    | rs -> drain ?now t @ rs)
  | _ ->
    let backlog = drain ?now t in
    backlog @ submit ?now t request
