(** The one encoding of {!Telemetry} state shared by every exposition
    surface: the daemon's [metrics] request, the shutdown stderr dump,
    and the [rentcost stats] CLI all render through this module, so
    they cannot drift apart.

    This module reads the global telemetry registries only; it does
    not depend on {!Engine}. Callers that want engine-local state
    (cache occupancy, queue depth, uptime) pass an {!Engine.stats}
    snapshot through [?stats]. *)

(** [json ?stats ()] is the metrics object served by the [metrics]
    request: [{"counters": {...}, "histograms": [...], "spans": [...],
    "numeric": {...}}] plus a ["service"] member when [stats] is
    given. Spans are the ring-buffer contents, oldest first. The
    ["numeric"] member names the fast and exact kernels of the LP/MILP
    stack and carries the [numeric.fast_solves] / [numeric.fallbacks]
    counter values, so a scrape can read the fallback rate without
    knowing the counter names. *)
val json : ?stats:(string * Json.t) list -> unit -> Json.t

(** Prometheus-style text rendering of counters and histograms
    ({!Telemetry.text_exposition}). *)
val text : unit -> string

(** {1 Span codec}

    One span per JSON object — the line format of [--trace] files. *)

val span_to_json : Telemetry.Span.t -> Json.t

val span_of_json : Json.t -> (Telemetry.Span.t, string) result

val histogram_to_json : Telemetry.histogram_snapshot -> Json.t

(** {1 Trace files}

    [install_trace ~path] opens [path] for append and registers a
    {!Telemetry.Span.set_sink} that writes every completed span as one
    JSON line, flushed per line. Replaces any previously installed
    trace. [close_trace] uninstalls the sink and closes the file; both
    are idempotent. *)

val install_trace : path:string -> unit

val close_trace : unit -> unit
