(** A domain-safe striped wrapper around the LRU {!Cache}.

    Every cache operation is keyed by a fingerprint digest, so the
    digest doubles as the striping key: [stripes] independent
    {!Cache.t}s, each behind its own lock, with equal digests always
    landing on the same stripe. Lookups and inserts for one structure
    are therefore linearizable, while requests for unrelated
    structures proceed in parallel. With [stripes:1] this is exactly a
    mutex around one {!Cache.t} — the sequential daemon's
    configuration, with bit-identical hit/eviction behaviour to the
    unwrapped cache.

    The total [capacity] is split across stripes (as evenly as
    possible), so the bound on live entries is global; eviction
    pressure, however, is per-stripe — a hot stripe can evict while a
    cold one has room. That trades a little hit rate for lock-free
    cross-stripe parallelism. *)

type t

(** [create ~capacity ~stripes] — [stripes] is clamped to
    [capacity] (every stripe holds at least one entry).
    @raise Invalid_argument when [capacity <= 0] or [stripes < 1]. *)
val create : capacity:int -> stripes:int -> t

val stripes : t -> int

(** Total capacity across stripes (= the [create] argument). *)
val capacity : t -> int

(** Live entries across stripes. *)
val length : t -> int

(** Total evictions across stripes. *)
val evictions : t -> int

(** The {!Cache} operations, each running under the lock of the
    digest's stripe. Semantics are {!Cache}'s. *)

val find_exact :
  t -> digest:string -> encoding:string -> target:int -> spec:string ->
  Cache.entry option

val find_monotone :
  t -> digest:string -> encoding:string -> target:int -> Cache.entry option

val find_monotone_le :
  t -> digest:string -> encoding:string -> target:int -> Cache.entry option

val find_nearest :
  t -> digest:string -> encoding:string -> target:int -> Cache.entry option

val insert : t -> digest:string -> encoding:string -> Cache.entry -> unit

val mem : t -> digest:string -> target:int -> spec:string -> bool
