(** The provisioning engine: solves behind a fingerprint-keyed cache
    with admission control.

    One engine owns the long-lived state a solve daemon amortizes
    across requests — a name registry and a compiled-instance table
    (compile once, solve many), the LRU solution {!Cache}, the
    {!Admission} queue, and latency/telemetry accounting. It speaks
    {!Protocol} values directly, so the in-process embedding and the
    line-delimited daemon share every code path.

    {2 The reuse ladder}

    A solve request walks down until something answers, stopping at
    the rung its [reuse] policy allows:

    + {b exact hit} — a cached answer for the same structure,
      objective scalar and engine (or any optimality-proved answer for
      that scalar): replayed verbatim.
    + {b monotone hit} — a cached {e optimal} answer whose scalar
      covers this one: for min-cost, the smallest target [>= target];
      for max-throughput, the largest budget [<= budget] (its cost
      fits this budget too). Served immediately as a feasible
      incumbent, without running an engine.
    + {b warm start} (min-cost only) — the nearest cached split at or
      above the target (optimal or not) seeds {!Rentcost.Solver.run}
      ([?warm_start]); surplus throughput is trimmed by the solver. A
      max-throughput solve re-brackets its own binary search and goes
      straight to
    + {b cold solve}.

    Cached splits are stored in canonical recipe order, so all three
    rungs serve fingerprint-equal requests whatever recipe numbering
    they were submitted in; responses are always translated back into
    the {e submitted} problem's numbering.

    {2 Scenarios}

    A request's {!Rentcost.Objective.t} and optional
    {!Rentcost.Pricebook.t} are compiled into the instance the ladder
    and engines see. The objective kind and the book's prices are part
    of the canonical encoding, so cache keys — and the compiled
    instances themselves — never cross objectives or price books: a
    max-throughput entry cannot satisfy a min-cost probe and vice
    versa. A [Ref] solve under the default scenario (min-cost, no
    book) reuses the registered instance verbatim; any other scenario
    recompiles the registered problem under it, deduped in the
    instance table so the compile happens once per scenario.

    {2 Autoscale sessions}

    [Track] opens a named {!Rentcost_autoscale.Controller} session
    over a registered or inline problem (default min-cost scenario);
    [Tick] feeds it one demand observation and answers with the
    tick's reconfiguration plan; [Untrack] closes it with a summary.
    All three are immediate ops — a tick is a deadband check unless
    the controller re-solves, and queueing it behind solves would let
    the observation go stale. Controller re-solves run under the
    engine's [default_budget]; so a daemon started with a deadline
    budget bounds every autoscale re-solve the same way it bounds
    cold solves. Sessions are striped like the registry: ticks of one
    session are serialized, distinct sessions proceed concurrently.

    {2 Accounting}

    Every outcome bumps the [service.*] counters in {!Telemetry}
    (requests, cache_hits / cache_misses, monotone_hits, warm_starts,
    compile_reuse, shed, per-op request counts) and observes the
    [service.latency_seconds] and [service.queue_wait_seconds]
    histograms; each drained request runs under a [service.request]
    span whose children trace the ladder rungs and the engine solve.
    Completed requests additionally bump the labelled
    [service.requests] family — one series per [(tenant, rung)] pair —
    and autoscale ticks the [autoscale.session_ticks] family by
    [(session, action)]; both bumps are skipped entirely while the
    telemetry kill switch is off. {!stats} snapshots all of it for the
    [stats] request and the shutdown dump; the [metrics] request
    serves the full {!Metrics.json} exposition.

    {2 Tracing and auditing}

    Every admitted solve carries a trace id — the request's
    ["trace_id"] when supplied, an engine-assigned [req-...] id
    otherwise. It is set as the ambient {!Telemetry.Span} trace
    context for the whole request (so every span the request records
    carries a [trace_id] attribute), echoed in the [Solved] /
    [Overloaded] / [Error] response, and written to the request's
    {!Audit} record together with the reuse rung, timings, solver
    effort and a summary of the solve's convergence timeline
    ({!Rentcost.Solver.outcome}[.convergence]). The journal ring
    answers the [Audit] request; {!audit} exposes it so the daemon can
    attach a JSONL file ({!Audit.open_file}).

    {2 Concurrency}

    The engine is safe to share across domains: the admission queue
    sits behind one mutex + condition variable ({!submit} signals,
    {!wait_for_work} sleeps), and the solution cache, name registry
    and instance table are lock-striped ({!Shared_cache},
    [Rentcost_parallel.Striped]) with stripe counts sized by
    [config.workers]. With [workers = 1] everything degrades to the
    single-lock sequential engine. Solves themselves run outside all
    engine locks, so [N] workers really solve [N] jobs at once.

    {2 Single-flight coalescing}

    Identical solves — same source, objective, price book and spec —
    never run twice concurrently. The first to start becomes the
    {e leader} of an open flight; every duplicate arriving while the
    flight is open attaches to it instead of solving: at the door
    ({!submit} parks it on the flight, holding no queue slot), on
    another worker ({!drain_next} blocks until the leader lands), as a
    batch mate, or still queued at completion (the leader sweeps
    identical queued jobs and answers them itself). Followers are
    answered [served = "coalesced"], each under its own trace id and
    audit record, and {e never observe a different answer than their
    leader} — payloads are copied from the leader's outcome verbatim,
    including errors. The leader inserts into the cache strictly
    before closing its flight, so late duplicates hit the cache
    instead of re-solving. Dequeue joins a flight in the same
    queue-lock section as the take, and a completing flight sweeps
    under that lock before it closes — so a herd of [n] identical
    queued requests costs exactly one cold solve and [n - 1]
    coalesced answers under {e any} worker interleaving, not just the
    lucky ones. [reuse = "none"] requests never follow
    (the client asked for a cold solve) but do lead. Coalesced
    requests bump [service.coalesced] and the [(tenant, "coalesced")]
    labelled series.

    {2 Batching and back-pressure}

    A worker wakeup drains up to [config.batch] queued jobs that are
    {e compatible} with the oldest live one (same source, book and
    spec; the objective scalar may differ) in one go; mates identical
    to the batch leader ride its flight, the rest re-run the reuse
    ladder immediately after the leader's cache fill. Multi-job
    wakeups bump [service.batches].

    When the queue is full, [config.queue_policy] picks who loses
    (see {!Admission.policy}); entries whose deadline lapsed in queue
    are shed eagerly at every offer so corpses never hold slots.
    Every shed answers [Overloaded] carrying a [retry_after_ms] hint
    (queue depth times observed mean service latency). Shed never
    silently loses an accepted request: evictions hand the job back
    and {!submit} returns their [Overloaded] responses alongside the
    arrival's own outcome. *)

type config = {
  cache_capacity : int;  (** LRU entries (default 128) *)
  queue_capacity : int;  (** admission backlog bound (default 64) *)
  queue_policy : Admission.policy;
      (** who loses when the queue is full (default
          {!Admission.Reject_new}, the historical behaviour) *)
  batch : int;
      (** max queued jobs one worker wakeup drains together
          (default 8); [1] disables batching *)
  default_budget : Rentcost.Budget.t;
      (** budget for solve requests that carry none (default
          {!Rentcost.Budget.unlimited}) *)
  workers : int;
      (** worker domains the daemon should drain the queue with
          (default 1 = the historical sequential daemon). The engine
          itself spawns nothing — {!Daemon} owns the domains — but the
          worker count sizes the lock striping of the cache, registry
          and instance table. *)
}

val default_config : config

type t

(** @raise Invalid_argument when [config.workers < 1] or
    [config.batch < 1]. *)
val create : ?config:config -> unit -> t

val config : t -> config

(** The engine's audit journal — one record per completed solve. The
    daemon calls {!Audit.open_file} on it to mirror records to a JSONL
    file; tests read it back via {!Audit.recent}. *)
val audit : t -> Audit.t

(** [register t ~name problem] compiles [problem], stores it under
    [name] (replacing any previous binding) and in the instance table,
    and returns its fingerprint. *)
val register : t -> name:string -> Rentcost.Problem.t -> Fingerprint.t

(** [submit t request] runs [Register]/[Track]/[Tick]/[Untrack]/
    [Stats]/[Metrics]/[Audit]/[Shutdown] immediately (their single
    response) and enqueues [Solve] requests — [[]] when admitted or
    attached to an open flight (answers come from {!drain} /
    {!drain_next}), otherwise the [Overloaded] responses now owed: one
    per expired-or-evicted previously admitted job, plus the
    arrival's own when it was the one shed. [~now] is the admission
    clock (defaults to the wall clock); deadlines of queued requests
    are measured against it. *)
val submit : ?now:float -> t -> Protocol.request -> Protocol.response list

(** [drain t] runs every queued solve whose deadline has not expired
    in queue (expired ones answer [Overloaded]) and returns the
    responses in arrival order. *)
val drain : ?now:float -> t -> Protocol.response list

(** [drain_next t] takes and runs {e one batch}: the oldest live
    queued solve plus up to [config.batch - 1] compatible queued
    mates, under single-flight discipline (see the module doc).
    Returns every response that work now owes — dispatch-time sheds,
    the batch's answers, and any followers adopted by a completing
    flight — and [[]] only when the queue held nothing. The building
    block of the parallel daemon's worker loop. *)
val drain_next : ?now:float -> t -> Protocol.response list

(** [wait_for_work t ~stop] blocks the calling domain until the queue
    is non-empty or [stop ()] is true, and returns whether the queue
    held work — [true] even when stopping, so a worker loop drains a
    non-empty queue before exiting. Whoever flips the stop flag must
    call {!wake_all} afterwards. *)
val wait_for_work : t -> stop:(unit -> bool) -> bool

(** Wake every domain blocked in {!wait_for_work} (for stop-flag
    changes; admissions signal by themselves). *)
val wake_all : t -> unit

(** [handle t request] = backlog first, then this request: {!drain}
    composed with {!submit} so callers with one request in flight —
    the daemon, the tests — get exactly its responses, in order. *)
val handle : ?now:float -> t -> Protocol.request -> Protocol.response list

(** Snapshot for [Stats_reply] and the shutdown dump: uptime, every
    registered {!Telemetry} counter, per-op request counts, cache
    occupancy/evictions, queue depth/policy/shed/in-flight counts,
    the latency histogram buckets, and the registered /
    tracked-session counts. *)
val stats : t -> (string * Json.t) list

(** The engine's solution cache (tests observe occupancy and eviction
    counts). Striped by fingerprint digest; single-stripe — the plain
    LRU — when [workers = 1]. *)
val cache : t -> Shared_cache.t

(** Queued solve requests not yet drained. *)
val queue_length : t -> int
