(** The provisioning engine: solves behind a fingerprint-keyed cache
    with admission control.

    One engine owns the long-lived state a solve daemon amortizes
    across requests — a name registry and a compiled-instance table
    (compile once, solve many), the LRU solution {!Cache}, the
    {!Admission} queue, and latency/telemetry accounting. It speaks
    {!Protocol} values directly, so the in-process embedding and the
    line-delimited daemon share every code path.

    {2 The reuse ladder}

    A solve request walks down until something answers, stopping at
    the rung its [reuse] policy allows:

    + {b exact hit} — a cached answer for the same structure, target
      and engine (or any optimality-proved answer for that target):
      replayed verbatim.
    + {b monotone hit} — a cached {e optimal} answer for the same
      structure at the smallest target [>= target]: its split meets
      this target too, so it is served immediately as a feasible
      incumbent, without running an engine.
    + {b warm start} — the nearest cached split at or above the
      target (optimal or not) seeds {!Rentcost.Solver.solve_on}
      ([?warm_start]); surplus throughput is trimmed by the solver.
    + {b cold solve}.

    Cached splits are stored in canonical recipe order, so all three
    rungs serve fingerprint-equal requests whatever recipe numbering
    they were submitted in; responses are always translated back into
    the {e submitted} problem's numbering.

    {2 Accounting}

    Every outcome bumps the [service.*] counters in {!Telemetry}
    (requests, cache_hits / cache_misses, monotone_hits, warm_starts,
    compile_reuse, shed, per-op request counts) and observes the
    [service.latency_seconds] and [service.queue_wait_seconds]
    histograms; each drained request runs under a [service.request]
    span whose children trace the ladder rungs and the engine solve.
    {!stats} snapshots all of it for the [stats] request and the
    shutdown dump; the [metrics] request serves the full
    {!Metrics.json} exposition. *)

type config = {
  cache_capacity : int;  (** LRU entries (default 128) *)
  queue_capacity : int;  (** admission backlog bound (default 64) *)
  default_budget : Rentcost.Budget.t;
      (** budget for solve requests that carry none (default
          {!Rentcost.Budget.unlimited}) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

(** [register t ~name problem] compiles [problem], stores it under
    [name] (replacing any previous binding) and in the instance table,
    and returns its fingerprint. *)
val register : t -> name:string -> Rentcost.Problem.t -> Fingerprint.t

(** [submit t request] runs [Register]/[Stats]/[Metrics]/[Shutdown]
    immediately
    ([Some response]) and enqueues [Solve] requests — [None] when
    admitted (answers come from {!drain}), [Some (Overloaded _)] when
    shed at the door. [~now] is the admission clock (defaults to the
    wall clock); deadlines of queued requests are measured against
    it. *)
val submit : ?now:float -> t -> Protocol.request -> Protocol.response option

(** [drain t] runs every queued solve whose deadline has not expired
    in queue (expired ones answer [Overloaded]) and returns the
    responses in arrival order. *)
val drain : ?now:float -> t -> Protocol.response list

(** [handle t request] = backlog first, then this request: {!drain}
    composed with {!submit} so callers with one request in flight —
    the daemon, the tests — get exactly its responses, in order. *)
val handle : ?now:float -> t -> Protocol.request -> Protocol.response list

(** Snapshot for [Stats_reply] and the shutdown dump: uptime, every
    registered {!Telemetry} counter, per-op request counts, cache
    occupancy/evictions, queue depth/shed count, and the latency
    histogram buckets. *)
val stats : t -> (string * Json.t) list

(** The engine's solution cache (tests observe eviction order). *)
val cache : t -> Cache.t

(** Queued solve requests not yet drained. *)
val queue_length : t -> int
