let is_blank line = String.trim line = ""

let respond oc response =
  output_string oc (Json.to_string (Protocol.response_to_json response));
  output_char oc '\n';
  flush oc

(* The shutdown dump is the [metrics] exposition with the engine's
   stats folded in — one JSON line, same encoding either way. *)
let dump_stats dump engine =
  output_string dump
    (Json.to_string
       (Json.Obj
          [
            ("stats", Json.Obj (Engine.stats engine));
            ("metrics", Metrics.json ());
          ]));
  output_char dump '\n';
  flush dump

(* One request line: parse, dispatch, answer. [`Stop] on shutdown. *)
let serve_line engine oc line =
  if is_blank line then `Continue
  else
    match Json.of_string line with
    | Error msg ->
      respond oc (Protocol.Error { id = None; message = "bad json: " ^ msg });
      `Continue
    | Ok j -> (
      match Protocol.request_of_json j with
      | Error message ->
        respond oc (Protocol.Error { id = None; message });
        `Continue
      | Ok request ->
        List.iter (respond oc) (Engine.handle engine request);
        (match request with Protocol.Shutdown -> `Stop | _ -> `Continue))

let serve_connection engine ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line -> (
      match serve_line engine oc line with
      | `Continue -> loop ()
      | `Stop -> `Stop)
  in
  loop ()

let make_engine engine config =
  match engine with
  | Some e -> e
  | None -> Engine.create ?config ()

let serve_channels ?engine ?config ?(dump = stderr) ic oc =
  let engine = make_engine engine config in
  let (_ : [ `Eof | `Stop ]) = serve_connection engine ic oc in
  dump_stats dump engine

let serve_socket ?engine ?config ?(dump = stderr) ~path () =
  let engine = make_engine engine config in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | (_ : Sys.signal_behavior) -> ()
   | exception Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      dump_stats dump engine)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let client, _addr = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client
        and oc = Unix.out_channel_of_descr client in
        let verdict =
          try serve_connection engine ic oc
          with Sys_error _ | Unix.Unix_error _ ->
            (* A client that vanished mid-line is its own problem. *)
            `Eof
        in
        (try Unix.close client with Unix.Unix_error _ -> ());
        match verdict with `Eof -> accept_loop () | `Stop -> ()
      in
      accept_loop ())
