let is_blank line = String.trim line = ""

let respond oc response =
  output_string oc (Json.to_string (Protocol.response_to_json response));
  output_char oc '\n';
  flush oc

(* The shutdown dump is the [metrics] exposition with the engine's
   stats folded in — one JSON line, same encoding either way. *)
let dump_stats dump engine =
  output_string dump
    (Json.to_string
       (Json.Obj
          [
            ("stats", Json.Obj (Engine.stats engine));
            ("metrics", Metrics.json ());
          ]));
  output_char dump '\n';
  flush dump

(* One request line: parse, dispatch, answer. [`Stop] on shutdown. *)
let serve_line engine oc line =
  if is_blank line then `Continue
  else
    match Json.of_string line with
    | Error msg ->
      respond oc (Protocol.Error { id = None; trace_id = None; message = "bad json: " ^ msg });
      `Continue
    | Ok j -> (
      match Protocol.request_of_json j with
      | Error message ->
        respond oc (Protocol.Error { id = None; trace_id = None; message });
        `Continue
      | Ok request ->
        List.iter (respond oc) (Engine.handle engine request);
        (match request with Protocol.Shutdown -> `Stop | _ -> `Continue))

let serve_connection engine ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line -> (
      match serve_line engine oc line with
      | `Continue -> loop ()
      | `Stop -> `Stop)
  in
  loop ()

(* --- the parallel connection loop ---

   With [workers > 1] the reader domain only parses lines and routes
   requests: solves are enqueued through [Engine.submit] and answered
   by whichever worker domain drains them, so responses come back in
   completion order — clients correlate by id. One mutex around
   [respond] keeps each JSON line whole. Shutdown (request or EOF)
   flips the stop flag and wakes the workers, which drain the
   remaining queue before exiting — a shutdown with a non-empty queue
   still answers everything, and Bye is the last response. *)
let serve_connection_parallel engine ~workers ic oc =
  let om = Mutex.create () in
  let respond_locked r =
    Mutex.lock om;
    Fun.protect ~finally:(fun () -> Mutex.unlock om) (fun () -> respond oc r)
  in
  let stop = Atomic.make false in
  let worker_domains =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              if Engine.wait_for_work engine ~stop:(fun () -> Atomic.get stop)
              then begin
                (* One wakeup drains a whole batch (plus any followers
                   a completing flight adopted); a vanished client
                   must not kill the worker — keep draining so
                   shutdown still converges. *)
                List.iter
                  (fun r ->
                    try respond_locked r
                    with Sys_error _ | Unix.Unix_error _ -> ())
                  (Engine.drain_next engine);
                loop ()
              end
            in
            loop ()))
  in
  let joined = ref false in
  let join_workers () =
    if not !joined then begin
      joined := true;
      Atomic.set stop true;
      Engine.wake_all engine;
      List.iter Domain.join worker_domains
    end
  in
  let serve_request request =
    match request with
    | Protocol.Shutdown ->
      (* Workers finish the backlog first, so Bye really is last. *)
      join_workers ();
      List.iter respond_locked (Engine.submit engine request);
      `Stop
    | _ ->
      (* [] = admitted or coalesced onto an open flight; a worker
         answers it. Non-empty = immediate-op replies or the
         [Overloaded] responses sheds and evictions now owe. *)
      List.iter respond_locked (Engine.submit engine request);
      `Continue
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file ->
      join_workers ();
      `Eof
    | line ->
      if is_blank line then loop ()
      else (
        match Json.of_string line with
        | Error msg ->
          respond_locked
            (Protocol.Error { id = None; trace_id = None; message = "bad json: " ^ msg });
          loop ()
        | Ok j -> (
          match Protocol.request_of_json j with
          | Error message ->
            respond_locked (Protocol.Error { id = None; trace_id = None; message });
            loop ()
          | Ok request -> (
            match serve_request request with
            | `Continue -> loop ()
            | `Stop -> `Stop)))
  in
  (* Whatever ends the connection — EOF, shutdown, a client that
     vanished mid-line — the workers are joined before we return, so
     the socket accept loop never accumulates orphan domains. *)
  match loop () with
  | verdict -> verdict
  | exception e ->
    join_workers ();
    raise e

let make_engine ?audit engine config =
  let e = match engine with Some e -> e | None -> Engine.create ?config () in
  (match audit with
   | Some path -> Audit.open_file (Engine.audit e) path
   | None -> ());
  e

let worker_count engine workers =
  match workers with
  | Some w ->
    if w < 1 then invalid_arg "Daemon: workers < 1";
    w
  | None -> (Engine.config engine).Engine.workers

let serve engine ~workers ic oc =
  if workers <= 1 then serve_connection engine ic oc
  else serve_connection_parallel engine ~workers ic oc

let serve_channels ?engine ?config ?(dump = stderr) ?workers ?audit ic oc =
  let engine = make_engine ?audit engine config in
  let workers = worker_count engine workers in
  let (_ : [ `Eof | `Stop ]) = serve engine ~workers ic oc in
  dump_stats dump engine;
  Audit.close (Engine.audit engine)

let serve_socket ?engine ?config ?(dump = stderr) ?workers ?audit ~path () =
  let engine = make_engine ?audit engine config in
  let workers = worker_count engine workers in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | (_ : Sys.signal_behavior) -> ()
   | exception Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      dump_stats dump engine;
      Audit.close (Engine.audit engine))
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let client, _addr = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client
        and oc = Unix.out_channel_of_descr client in
        let verdict =
          try serve engine ~workers ic oc
          with Sys_error _ | Unix.Unix_error _ ->
            (* A client that vanished mid-line is its own problem. *)
            `Eof
        in
        (try Unix.close client with Unix.Unix_error _ -> ());
        match verdict with `Eof -> accept_loop () | `Stop -> ()
      in
      accept_loop ())
