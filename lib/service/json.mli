(** A minimal JSON value type with a strict parser and printer.

    The service protocol is line-delimited JSON; this module is the
    whole codec, so the daemon depends on nothing outside the
    repository. It covers exactly what RFC 8259 requires of a
    receiver: objects, arrays, strings with escapes (including
    [\uXXXX], encoded back out as UTF-8), numbers (integers kept
    exact, anything with a fraction or exponent as float), booleans
    and null. Duplicate object keys keep the first binding, matching
    {!member}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders compact single-line JSON (no newlines, so a
    value is always one protocol line). *)
val to_string : t -> string

(** [of_string s] parses one JSON value spanning the whole input
    (trailing whitespace allowed). *)
val of_string : string -> (t, string) result

(** {1 Accessors} *)

(** [member key v] is the value bound to [key] when [v] is an object
    containing it. *)
val member : string -> t -> t option

(** [to_int v] accepts [Int] and integral [Float]s. *)
val to_int : t -> int option

val to_float : t -> float option

val to_str : t -> string option

val to_bool : t -> bool option

(** [get_string key v] / [get_int key v] / [get_float key v] compose
    {!member} with the coercions. *)
val get_string : string -> t -> string option

val get_int : string -> t -> int option

val get_float : string -> t -> float option
