type policy =
  | Reject_new
  | Drop_oldest
  | Tenant_fair

let policy_to_string = function
  | Reject_new -> "reject-new"
  | Drop_oldest -> "drop-oldest"
  | Tenant_fair -> "tenant-fair"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "reject-new" -> Some Reject_new
  | "drop-oldest" -> Some Drop_oldest
  | "tenant-fair" -> Some Tenant_fair
  | _ -> None

type 'a entry = {
  job : 'a;
  expires_at : float option;
  tenant : string;
}

type 'a t = {
  cap : int;
  policy : policy;
  mutable q : 'a entry list;  (* FIFO: head = oldest; cap is small *)
  mutable shed : int;
}

let create ?(policy = Reject_new) ~capacity () =
  if capacity <= 0 then
    invalid_arg "Admission.create: capacity must be positive";
  { cap = capacity; policy; q = []; shed = 0 }

let capacity t = t.cap

let policy t = t.policy

let length t = List.length t.q

let shed_count t = t.shed

let expired now e =
  match e.expires_at with Some deadline -> now > deadline | None -> false

type 'a offer_outcome = {
  admitted : bool;
  evicted : 'a list;  (* previously admitted jobs shed to make room,
                         oldest first; each still owes a reply *)
}

(* Tenant-fair eviction: the victim is the newest queued entry of the
   tenant holding the most slots — the hog loses its most recent work,
   never a tenant's only queued request (a single-entry tenant can
   only be the maximum when every tenant holds one, and then nobody is
   hogging so the new arrival is rejected instead). *)
let tenant_fair_victim q =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace counts e.tenant
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.tenant)))
    q;
  let hog, slots =
    Hashtbl.fold
      (fun tenant n ((_, best) as acc) -> if n > best then (tenant, n) else acc)
      counts ("", 0)
  in
  if slots < 2 then None
  else
    (* Newest entry of the hog = last matching entry in FIFO order. *)
    let rec last_index i best = function
      | [] -> best
      | e :: rest ->
        last_index (i + 1) (if e.tenant = hog then Some i else best) rest
    in
    last_index 0 None q

let remove_index i q =
  let rec go k acc = function
    | [] -> assert false
    | e :: rest ->
      if k = i then (e, List.rev_append acc rest)
      else go (k + 1) (e :: acc) rest
  in
  go 0 [] q

let offer t ?expires_at ?(tenant = "default") ~now job =
  (* Eager expiry: a request whose deadline lapsed while it queued is
     dead weight — shedding it here keeps full-queue slots for live
     work instead of bouncing the new arrival off a corpse. *)
  let dead, live = List.partition (expired now) t.q in
  t.q <- live;
  t.shed <- t.shed + List.length dead;
  let evicted_expired = List.map (fun e -> e.job) dead in
  let entry = { job; expires_at; tenant } in
  if List.length t.q < t.cap then begin
    t.q <- t.q @ [ entry ];
    { admitted = true; evicted = evicted_expired }
  end
  else
    match t.policy with
    | Reject_new ->
      t.shed <- t.shed + 1;
      { admitted = false; evicted = evicted_expired }
    | Drop_oldest -> (
      match t.q with
      | [] -> assert false (* cap > 0 and the queue is full *)
      | oldest :: rest ->
        t.q <- rest @ [ entry ];
        t.shed <- t.shed + 1;
        { admitted = true; evicted = evicted_expired @ [ oldest.job ] })
    | Tenant_fair -> (
      match tenant_fair_victim t.q with
      | None ->
        (* No tenant holds two slots: nothing fair to evict. *)
        t.shed <- t.shed + 1;
        { admitted = false; evicted = evicted_expired }
      | Some i ->
        let victim, rest = remove_index i t.q in
        t.q <- rest @ [ entry ];
        t.shed <- t.shed + 1;
        { admitted = true; evicted = evicted_expired @ [ victim.job ] })

let take t ~now =
  match t.q with
  | [] -> `Empty
  | e :: rest ->
    t.q <- rest;
    if expired now e then begin
      t.shed <- t.shed + 1;
      `Shed e.job
    end
    else `Job e.job

let remove_matching t ~f =
  let matching, rest = List.partition (fun e -> f e.job) t.q in
  t.q <- rest;
  List.map (fun e -> e.job) matching

type 'a batch = {
  jobs : 'a list;  (* leader first, then compatible mates, FIFO *)
  shed : 'a list;  (* expired in queue; each still owes a reply *)
}

(* Drain the head job plus up to [k - 1] queued jobs compatible with
   it, preserving FIFO order among both the batch and the entries left
   behind. Expired entries met during the scan are shed on the spot
   (they would only be shed later anyway). *)
let take_batch t ~now ~k ~compatible =
  if k <= 0 then invalid_arg "Admission.take_batch: k must be positive";
  let rec find_leader shed =
    match t.q with
    | [] -> (None, List.rev shed)
    | e :: rest ->
      t.q <- rest;
      if expired now e then begin
        t.shed <- t.shed + 1;
        find_leader (e.job :: shed)
      end
      else (Some e.job, List.rev shed)
  in
  match find_leader [] with
  | None, shed -> { jobs = []; shed }
  | Some leader, shed0 ->
    let batch = ref [ leader ]
    and taken = ref 1
    and shed = ref (List.rev shed0)
    and kept = ref [] in
    List.iter
      (fun e ->
        if expired now e then begin
          t.shed <- t.shed + 1;
          shed := e.job :: !shed
        end
        else if !taken < k && compatible leader e.job then begin
          batch := e.job :: !batch;
          incr taken
        end
        else kept := e :: !kept)
      t.q;
    t.q <- List.rev !kept;
    { jobs = List.rev !batch; shed = List.rev !shed }
