type 'a t = {
  cap : int;
  q : ('a * float option) Queue.t;
  mutable shed : int;
}

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Admission.create: capacity must be positive";
  { cap = capacity; q = Queue.create (); shed = 0 }

let capacity t = t.cap

let length t = Queue.length t.q

let shed_count t = t.shed

let offer t ?expires_at job =
  if Queue.length t.q >= t.cap then begin
    t.shed <- t.shed + 1;
    false
  end
  else begin
    Queue.add (job, expires_at) t.q;
    true
  end

let take t ~now =
  match Queue.take_opt t.q with
  | None -> `Empty
  | Some (job, expires_at) -> (
    match expires_at with
    | Some deadline when now > deadline ->
      t.shed <- t.shed + 1;
      `Shed job
    | _ -> `Job job)
