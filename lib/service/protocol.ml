module Solver = Rentcost.Solver
module Budget = Rentcost.Budget
module Objective = Rentcost.Objective
module Pricebook = Rentcost.Pricebook
module Problem_format = Rentcost.Problem_format
module Controller = Rentcost_autoscale.Controller

type reuse =
  | No_reuse
  | Exact_only
  | Warm
  | Monotone

let reuse_to_string = function
  | No_reuse -> "none"
  | Exact_only -> "exact"
  | Warm -> "warm"
  | Monotone -> "monotone"

let reuse_of_string s =
  match String.lowercase_ascii s with
  | "none" -> Some No_reuse
  | "exact" -> Some Exact_only
  | "warm" -> Some Warm
  | "monotone" -> Some Monotone
  | _ -> None

type source =
  | Ref of string
  | Inline of Rentcost.Problem.t

type request =
  | Register of { name : string; problem : Rentcost.Problem.t }
  | Solve of {
      id : int option;
      trace_id : string option;
          (* client-supplied request trace id; the engine assigns one
             when absent and echoes it in every response *)
      tenant : string option;  (* labels the per-tenant request counters *)
      source : source;
      objective : Objective.t;
      pricebook : Pricebook.t option;
      spec : Solver.spec;
      budget : Budget.t option;
      reuse : reuse;
    }
  | Track of {
      session : string;
      source : source;
      ticks_per_hour : int;
      deadband : float;
      headroom : float;
      spec : Solver.spec;
    }
  | Tick of { id : int option; session : string; demand : int }
  | Untrack of { session : string }
  | Stats
  | Metrics
  | Audit of { last : int option }
  | Shutdown

type served =
  | Cold
  | Exact_hit
  | Monotone_hit
  | Warm_started
  | Coalesced

let served_to_string = function
  | Cold -> "cold"
  | Exact_hit -> "exact-hit"
  | Monotone_hit -> "monotone-hit"
  | Warm_started -> "warm-started"
  | Coalesced -> "coalesced"

let served_of_string = function
  | "cold" -> Some Cold
  | "exact-hit" -> Some Exact_hit
  | "monotone-hit" -> Some Monotone_hit
  | "warm-started" -> Some Warm_started
  | "coalesced" -> Some Coalesced
  | _ -> None

type response =
  | Solved of {
      id : int option;
      trace_id : string option;
      status : Solver.status;
      cost : int;
      rho : int array;
      machines : int array;
      served : served;
      engine : string;
      wall_time : float;
    }
  | Registered of { name : string; fingerprint : string }
  | Tracking of { session : string; fingerprint : string }
  | Plan of {
      id : int option;
      session : string;
      plan : Controller.plan;
      total_charged : int;
    }
  | Untracked of {
      session : string;
      ticks : int;
      replans : int;
      holds : int;
      violations : int;
      total_charged : int;
    }
  | Stats_reply of (string * Json.t) list
  | Metrics_reply of { metrics : Json.t; text : string }
  | Audit_reply of Audit.record list
  | Overloaded of {
      id : int option;
      trace_id : string option;
      retry_after_ms : int option;
    }
  | Error of { id : int option; trace_id : string option; message : string }
  | Bye

let status_of_string = function
  | "optimal" -> Some Solver.Optimal
  | "feasible" -> Some Solver.Feasible
  | "budget-exhausted" -> Some Solver.Budget_exhausted
  | "infeasible" -> Some Solver.Infeasible
  | _ -> None

(* --- request decoding --- *)

let ( let* ) = Result.bind

let parse_problem ~what text =
  match Problem_format.of_string text with
  | p -> Ok p
  | exception Failure msg -> Result.Error (Printf.sprintf "%s: %s" what msg)
  | exception Invalid_argument msg -> Result.Error (Printf.sprintf "%s: %s" what msg)

let load_problem path =
  match Problem_format.load path with
  | p -> Ok p
  | exception Sys_error msg -> Result.Error (Printf.sprintf "register: %s" msg)
  | exception Failure msg -> Result.Error (Printf.sprintf "register: %s: %s" path msg)
  | exception Invalid_argument msg ->
    Result.Error (Printf.sprintf "register: %s: %s" path msg)

let decode_register j =
  let* name =
    Option.to_result ~none:"register: missing \"name\""
      (Json.get_string "name" j)
  in
  let* problem =
    match (Json.get_string "problem" j, Json.get_string "path" j) with
    | Some text, None -> parse_problem ~what:"register" text
    | None, Some path -> load_problem path
    | Some _, Some _ -> Result.Error "register: give \"problem\" or \"path\", not both"
    | None, None -> Result.Error "register: missing \"problem\" or \"path\""
  in
  Ok (Register { name; problem })

let decode_budget j =
  let deadline = Json.get_float "deadline" j in
  let node_cap = Json.get_int "nodes" j in
  let eval_cap = Json.get_int "evals" j in
  let* () =
    match deadline with
    | Some d when d < 0.0 -> Result.Error "solve: negative \"deadline\""
    | _ -> Ok ()
  in
  let* () =
    match (node_cap, eval_cap) with
    | Some n, _ when n < 0 -> Result.Error "solve: negative \"nodes\""
    | _, Some n when n < 0 -> Result.Error "solve: negative \"evals\""
    | _ -> Ok ()
  in
  match (deadline, node_cap, eval_cap) with
  | None, None, None -> Ok None
  | _ -> Ok (Some { Budget.deadline; node_cap; eval_cap })

let parse_pricebook ~what text =
  match Pricebook.of_string text with
  | pb -> Ok pb
  | exception Failure msg -> Result.Error (Printf.sprintf "%s: %s" what msg)
  | exception Invalid_argument msg ->
    Result.Error (Printf.sprintf "%s: %s" what msg)

let load_pricebook path =
  match Pricebook.load path with
  | pb -> Ok pb
  | exception Sys_error msg -> Result.Error (Printf.sprintf "solve: %s" msg)
  | exception Failure msg -> Result.Error (Printf.sprintf "solve: %s: %s" path msg)
  | exception Invalid_argument msg ->
    Result.Error (Printf.sprintf "solve: %s: %s" path msg)

let decode_objective j =
  let* kind =
    match Json.get_string "objective" j with
    | None -> Ok `Min_cost
    | Some s ->
      Option.to_result
        ~none:(Printf.sprintf "solve: unknown objective %S" s)
        (Objective.kind_of_string s)
  in
  match kind with
  | `Min_cost ->
    let* target =
      Option.to_result ~none:"solve: missing integer \"target\""
        (Json.get_int "target" j)
    in
    let* () =
      if target < 0 then Result.Error "solve: negative \"target\"" else Ok ()
    in
    Ok (Objective.min_cost ~target)
  | `Max_throughput ->
    let* budget =
      Option.to_result
        ~none:"solve: objective \"max-throughput\" needs integer \"budget\""
        (Json.get_int "budget" j)
    in
    let* () =
      if budget < 0 then Result.Error "solve: negative \"budget\"" else Ok ()
    in
    Ok (Objective.max_throughput ~budget)

let decode_pricebook j =
  match (Json.get_string "pricebook" j, Json.get_string "pricebook_path" j) with
  | None, None -> Ok None
  | Some text, None ->
    let* pb = parse_pricebook ~what:"solve" text in
    Ok (Some pb)
  | None, Some path ->
    let* pb = load_pricebook path in
    Ok (Some pb)
  | Some _, Some _ ->
    Result.Error "solve: give \"pricebook\" or \"pricebook_path\", not both"

let decode_solve j =
  let id = Json.get_int "id" j in
  let trace_id = Json.get_string "trace_id" j in
  let tenant = Json.get_string "tenant" j in
  let* source =
    match (Json.get_string "ref" j, Json.get_string "problem" j) with
    | Some name, None -> Ok (Ref name)
    | None, Some text ->
      let* p = parse_problem ~what:"solve" text in
      Ok (Inline p)
    | Some _, Some _ -> Result.Error "solve: give \"ref\" or \"problem\", not both"
    | None, None -> Result.Error "solve: missing \"ref\" or \"problem\""
  in
  let* objective = decode_objective j in
  let* pricebook = decode_pricebook j in
  let* spec =
    match Json.get_string "spec" j with
    | None -> Ok Solver.Auto
    | Some s ->
      Option.to_result
        ~none:(Printf.sprintf "solve: unknown spec %S" s)
        (Solver.spec_of_string s)
  in
  let* reuse =
    match Json.get_string "reuse" j with
    | None -> Ok Monotone
    | Some s ->
      Option.to_result
        ~none:(Printf.sprintf "solve: unknown reuse policy %S" s)
        (reuse_of_string s)
  in
  let* budget = decode_budget j in
  Ok (Solve { id; trace_id; tenant; source; objective; pricebook; spec; budget; reuse })

let decode_audit j =
  match Json.member "last" j with
  | None -> Ok (Audit { last = None })
  | Some v -> (
    match Json.to_int v with
    | Some n when n >= 0 -> Ok (Audit { last = Some n })
    | Some _ -> Result.Error "audit: negative \"last\""
    | None -> Result.Error "audit: bad \"last\": expected an integer")

let decode_session j = Option.value ~default:"default" (Json.get_string "session" j)

let decode_track j =
  let session = decode_session j in
  let* source =
    match (Json.get_string "ref" j, Json.get_string "problem" j) with
    | Some name, None -> Ok (Ref name)
    | None, Some text ->
      let* p = parse_problem ~what:"track" text in
      Ok (Inline p)
    | Some _, Some _ -> Result.Error "track: give \"ref\" or \"problem\", not both"
    | None, None -> Result.Error "track: missing \"ref\" or \"problem\""
  in
  let* ticks_per_hour =
    match Json.get_int "ticks_per_hour" j with
    | None -> Ok Controller.default_config.Controller.ticks_per_hour
    | Some n when n > 0 -> Ok n
    | Some _ -> Result.Error "track: \"ticks_per_hour\" must be > 0"
  in
  let* deadband =
    match Json.get_float "deadband" j with
    | None -> Ok Controller.default_config.Controller.deadband
    | Some d when Float.is_finite d && d >= 0. && d < 1. -> Ok d
    | Some _ -> Result.Error "track: \"deadband\" must lie in [0, 1)"
  in
  let* headroom =
    match Json.get_float "headroom" j with
    | None -> Ok Controller.default_config.Controller.headroom
    | Some h when Float.is_finite h && h >= 0. -> Ok h
    | Some _ -> Result.Error "track: \"headroom\" must be >= 0"
  in
  let* spec =
    match Json.get_string "spec" j with
    | None -> Ok Solver.Auto
    | Some s ->
      Option.to_result
        ~none:(Printf.sprintf "track: unknown spec %S" s)
        (Solver.spec_of_string s)
  in
  Ok (Track { session; source; ticks_per_hour; deadband; headroom; spec })

let decode_tick j =
  let id = Json.get_int "id" j in
  let session = decode_session j in
  let* demand =
    match Json.get_int "demand" j with
    | Some d when d >= 0 -> Ok d
    | Some _ -> Result.Error "tick: negative \"demand\""
    | None -> Result.Error "tick: missing integer \"demand\""
  in
  Ok (Tick { id; session; demand })

let request_of_json j =
  (* Every request is versioned; an absent "version" means 1. Unknown
     versions are rejected up front with a structured error, so future
     protocol fields stay forward-compatible. *)
  let* () =
    match Json.member "version" j with
    | None -> Ok ()
    | Some v ->
      (match Json.to_int v with
       | Some 1 -> Ok ()
       | Some n ->
         Result.Error
           (Printf.sprintf "unsupported protocol version %d (supported: 1)" n)
       | None -> Result.Error "bad \"version\": expected an integer")
  in
  match Json.get_string "op" j with
  | None -> Result.Error "missing \"op\""
  | Some "register" -> decode_register j
  | Some "solve" -> decode_solve j
  | Some "track" -> decode_track j
  | Some "tick" -> decode_tick j
  | Some "untrack" -> Ok (Untrack { session = decode_session j })
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "audit" -> decode_audit j
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Result.Error (Printf.sprintf "unknown op %S" op)

(* --- request encoding (clients, tests) --- *)

let opt_field key enc = function None -> [] | Some v -> [ (key, enc v) ]

let request_to_json = function
  | Register { name; problem } ->
    Json.Obj
      [
        ("op", Json.String "register");
        ("name", Json.String name);
        ("problem", Json.String (Problem_format.to_string problem));
      ]
  | Solve { id; trace_id; tenant; source; objective; pricebook; spec; budget; reuse }
    ->
    let source_field =
      match source with
      | Ref name -> ("ref", Json.String name)
      | Inline p -> ("problem", Json.String (Problem_format.to_string p))
    in
    (* Min-cost keeps the historical shape (a bare "target"), so v1
       clients and transcripts stay byte-compatible. *)
    let objective_fields =
      match objective with
      | Objective.Min_cost { target } -> [ ("target", Json.Int target) ]
      | Objective.Max_throughput { budget } ->
        [ ("objective", Json.String "max-throughput");
          ("budget", Json.Int budget) ]
    in
    let pricebook_field =
      opt_field "pricebook"
        (fun pb -> Json.String (Pricebook.to_string pb))
        pricebook
    in
    let budget_fields =
      match budget with
      | None -> []
      | Some b ->
        opt_field "deadline" (fun d -> Json.Float d) b.Budget.deadline
        @ opt_field "nodes" (fun n -> Json.Int n) b.Budget.node_cap
        @ opt_field "evals" (fun n -> Json.Int n) b.Budget.eval_cap
    in
    Json.Obj
      ([ ("op", Json.String "solve") ]
      @ opt_field "id" (fun i -> Json.Int i) id
      @ opt_field "trace_id" (fun s -> Json.String s) trace_id
      @ opt_field "tenant" (fun s -> Json.String s) tenant
      @ (source_field :: objective_fields)
      @ pricebook_field
      @ [
          ("spec", Json.String (Solver.spec_to_string spec));
          ("reuse", Json.String (reuse_to_string reuse));
        ]
      @ budget_fields)
  | Track { session; source; ticks_per_hour; deadband; headroom; spec } ->
    let source_field =
      match source with
      | Ref name -> ("ref", Json.String name)
      | Inline p -> ("problem", Json.String (Problem_format.to_string p))
    in
    Json.Obj
      [
        ("op", Json.String "track");
        ("session", Json.String session);
        source_field;
        ("ticks_per_hour", Json.Int ticks_per_hour);
        ("deadband", Json.Float deadband);
        ("headroom", Json.Float headroom);
        ("spec", Json.String (Solver.spec_to_string spec));
      ]
  | Tick { id; session; demand } ->
    Json.Obj
      ([ ("op", Json.String "tick") ]
      @ opt_field "id" (fun i -> Json.Int i) id
      @ [ ("session", Json.String session); ("demand", Json.Int demand) ])
  | Untrack { session } ->
    Json.Obj
      [ ("op", Json.String "untrack"); ("session", Json.String session) ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Metrics -> Json.Obj [ ("op", Json.String "metrics") ]
  | Audit { last } ->
    Json.Obj
      ([ ("op", Json.String "audit") ]
      @ opt_field "last" (fun n -> Json.Int n) last)
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

(* --- response encoding --- *)

let int_array a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let response_to_json = function
  | Solved
      { id; trace_id; status; cost; rho; machines; served; engine; wall_time }
    ->
    Json.Obj
      (opt_field "id" (fun i -> Json.Int i) id
      @ opt_field "trace_id" (fun s -> Json.String s) trace_id
      @ [
          ("ok", Json.Bool true);
          ("status", Json.String (Solver.status_to_string status));
          ("cost", Json.Int cost);
          ("rho", int_array rho);
          ("machines", int_array machines);
          ("throughput", Json.Int (Array.fold_left ( + ) 0 rho));
          ("served", Json.String (served_to_string served));
          ("engine", Json.String engine);
          ("wall_time", Json.Float wall_time);
        ])
  | Registered { name; fingerprint } ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("registered", Json.String name);
        ("fingerprint", Json.String fingerprint);
      ]
  | Tracking { session; fingerprint } ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("tracking", Json.String session);
        ("fingerprint", Json.String fingerprint);
      ]
  | Plan { id; session; plan; total_charged } ->
    Json.Obj
      (opt_field "id" (fun i -> Json.Int i) id
      @ [
          ("ok", Json.Bool true);
          ("session", Json.String session);
          ("tick", Json.Int plan.Controller.tick);
          ("demand", Json.Int plan.Controller.demand);
          ("target", Json.Int plan.Controller.target);
          ( "action",
            Json.String (Controller.action_to_string plan.Controller.action) );
          ("rent", int_array plan.Controller.rent);
          ("renew", int_array plan.Controller.renew);
          ("release", int_array plan.Controller.release);
          ("machines", int_array plan.Controller.machines);
          ("rho", int_array plan.Controller.rho);
          ("charged", Json.Int plan.Controller.charged);
          ("total_charged", Json.Int total_charged);
          ("violation", Json.Bool plan.Controller.violation);
        ])
  | Untracked { session; ticks; replans; holds; violations; total_charged } ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("untracked", Json.String session);
        ("ticks", Json.Int ticks);
        ("replans", Json.Int replans);
        ("holds", Json.Int holds);
        ("violations", Json.Int violations);
        ("total_charged", Json.Int total_charged);
      ]
  | Stats_reply fields ->
    Json.Obj [ ("ok", Json.Bool true); ("stats", Json.Obj fields) ]
  | Metrics_reply { metrics; text } ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("metrics", metrics);
        ("text", Json.String text);
      ]
  | Audit_reply records ->
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("audit", Json.List (List.map Audit.record_to_json records));
      ]
  | Overloaded { id; trace_id; retry_after_ms } ->
    Json.Obj
      (opt_field "id" (fun i -> Json.Int i) id
      @ opt_field "trace_id" (fun s -> Json.String s) trace_id
      @ [ ("ok", Json.Bool false); ("status", Json.String "overloaded") ]
      @ opt_field "retry_after_ms" (fun n -> Json.Int n) retry_after_ms)
  | Error { id; trace_id; message } ->
    Json.Obj
      (opt_field "id" (fun i -> Json.Int i) id
      @ opt_field "trace_id" (fun s -> Json.String s) trace_id
      @ [ ("ok", Json.Bool false); ("error", Json.String message) ])
  | Bye -> Json.Obj [ ("ok", Json.Bool true); ("status", Json.String "bye") ]

(* --- response decoding (clients, tests) --- *)

let decode_int_array = function
  | Json.List items ->
    let rec go acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | v :: rest -> (
        match Json.to_int v with
        | Some i -> go (i :: acc) rest
        | None -> None)
    in
    go [] items
  | _ -> None

let rec response_of_json j =
  let id = Json.get_int "id" j in
  let trace_id = Json.get_string "trace_id" j in
  match Json.get_string "error" j with
  | Some message -> Ok (Error { id; trace_id; message })
  | None -> (
    match (Json.get_string "status" j, Json.member "cost" j) with
    | Some "overloaded", _ ->
      Ok
        (Overloaded
           { id; trace_id; retry_after_ms = Json.get_int "retry_after_ms" j })
    | Some "bye", _ -> Ok Bye
    | Some status_s, Some _ ->
      let* status =
        Option.to_result
          ~none:(Printf.sprintf "unknown status %S" status_s)
          (status_of_string status_s)
      in
      let field name coerce =
        Option.to_result
          ~none:(Printf.sprintf "missing or bad %S" name)
          (Option.bind (Json.member name j) coerce)
      in
      let* cost = field "cost" Json.to_int in
      let* rho = field "rho" decode_int_array in
      let* machines = field "machines" decode_int_array in
      let* served_s = field "served" Json.to_str in
      let* served =
        Option.to_result
          ~none:(Printf.sprintf "unknown served tag %S" served_s)
          (served_of_string served_s)
      in
      let* engine = field "engine" Json.to_str in
      let* wall_time = field "wall_time" Json.to_float in
      Ok
        (Solved
           { id; trace_id; status; cost; rho; machines; served; engine; wall_time })
    | _ -> (
      match (Json.get_string "registered" j, Json.member "stats" j) with
      | Some name, _ ->
        let* fingerprint =
          Option.to_result ~none:"missing \"fingerprint\""
            (Json.get_string "fingerprint" j)
        in
        Ok (Registered { name; fingerprint })
      | None, Some (Json.Obj fields) -> Ok (Stats_reply fields)
      | None, None -> (
        match Json.member "metrics" j with
        | Some metrics ->
          let* text =
            Option.to_result ~none:"missing \"text\""
              (Json.get_string "text" j)
          in
          Ok (Metrics_reply { metrics; text })
        | None -> (
          match Json.member "audit" j with
          | Some (Json.List items) ->
            let* records =
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let* r = Audit.record_of_json item in
                  Ok (r :: acc))
                (Ok []) items
              |> Result.map List.rev
            in
            Ok (Audit_reply records)
          | Some _ -> Result.Error "bad \"audit\": expected a list"
          | None -> decode_track_response ~id j))
      | _ -> Result.Error "unrecognized response shape"))

and decode_track_response ~id j =
  let field name coerce =
    Option.to_result
      ~none:(Printf.sprintf "missing or bad %S" name)
      (Option.bind (Json.member name j) coerce)
  in
  match
    (Json.get_string "tracking" j, Json.get_string "untracked" j,
     Json.get_string "action" j)
  with
  | Some session, _, _ ->
    let* fingerprint =
      Option.to_result ~none:"missing \"fingerprint\""
        (Json.get_string "fingerprint" j)
    in
    Ok (Tracking { session; fingerprint })
  | None, Some session, _ ->
    let* ticks = field "ticks" Json.to_int in
    let* replans = field "replans" Json.to_int in
    let* holds = field "holds" Json.to_int in
    let* violations = field "violations" Json.to_int in
    let* total_charged = field "total_charged" Json.to_int in
    Ok (Untracked { session; ticks; replans; holds; violations; total_charged })
  | None, None, Some action_s ->
    let* action =
      Option.to_result
        ~none:(Printf.sprintf "unknown action %S" action_s)
        (Controller.action_of_string action_s)
    in
    let* session =
      Option.to_result ~none:"missing \"session\""
        (Json.get_string "session" j)
    in
    let* tick = field "tick" Json.to_int in
    let* demand = field "demand" Json.to_int in
    let* target = field "target" Json.to_int in
    let* rent = field "rent" decode_int_array in
    let* renew = field "renew" decode_int_array in
    let* release = field "release" decode_int_array in
    let* machines = field "machines" decode_int_array in
    let* rho = field "rho" decode_int_array in
    let* charged = field "charged" Json.to_int in
    let* total_charged = field "total_charged" Json.to_int in
    let* violation =
      Option.to_result ~none:"missing or bad \"violation\""
        (Option.bind (Json.member "violation" j) Json.to_bool)
    in
    Ok
      (Plan
         {
           id;
           session;
           total_charged;
           plan =
             {
               Controller.tick;
               demand;
               target;
               action;
               rent;
               renew;
               release;
               machines;
               rho;
               charged;
               violation;
             };
         })
  | None, None, None -> Result.Error "unrecognized response shape"
