(* The solve audit journal: one record per completed request, kept in
   a bounded in-memory ring and optionally appended to a JSONL file.
   The ring answers the daemon's [audit] op; the file survives the
   daemon. Everything in a record is a plain string / int / float so
   this module sits below Protocol in the dependency order and the
   CLI can decode records without the solver stack. *)

let ( let* ) = Result.bind

type convergence_summary = {
  events : int;
  first_incumbent : float option;
  last_incumbent : float option;
  time_to_first : float option;
  final_bound : float option;
  final_gap : float option;
}

type record = {
  seq : int;
  at : float;
  trace_id : string;
  id : int option;
  tenant : string;
  fingerprint : string;
  objective : string;
  scalar : int;
  served : string;
  engine : string;
  status : string;
  cost : int;
  throughput : int;
  queue_wait : float;
  wall : float;
  evaluations : int;
  pivots : int;
  nodes : int;
  convergence : convergence_summary option;
}

type t = {
  ring : record option array;
  mutable next : int;  (* total records ever accepted *)
  mutable out : out_channel option;
  mutex : Mutex.t;
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Audit.create: capacity < 1";
  { ring = Array.make capacity None; next = 0; out = None; mutex = Mutex.create () }

let capacity t = Array.length t.ring

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let recorded t = locked t (fun () -> t.next)

(* --- convergence summaries --- *)

(* Fold a Progress timeline down to what the journal keeps: how fast a
   first feasible point appeared, where the incumbent ended, and the
   final optimality gap — the |inc - bound| / max(1, |inc|) measure the
   MILP itself reports. *)
let summarize (events : Telemetry.Progress.event list) =
  match events with
  | [] -> None
  | events ->
    let first_inc = ref None
    and last_inc = ref None
    and time_first = ref None
    and last_bound = ref None in
    List.iter
      (fun (e : Telemetry.Progress.event) ->
        (match e.Telemetry.Progress.incumbent with
         | Some v ->
           if !first_inc = None then begin
             first_inc := Some v;
             time_first := Some e.Telemetry.Progress.elapsed
           end;
           last_inc := Some v
         | None -> ());
        match e.Telemetry.Progress.bound with
        | Some b -> last_bound := Some b
        | None -> ())
      events;
    let final_gap =
      match (!last_inc, !last_bound) with
      | Some inc, Some b -> Some (Float.abs (inc -. b) /. Float.max 1.0 (Float.abs inc))
      | _ -> None
    in
    Some
      {
        events = List.length events;
        first_incumbent = !first_inc;
        last_incumbent = !last_inc;
        time_to_first = !time_first;
        final_bound = !last_bound;
        final_gap;
      }

(* --- JSON codec --- *)

let opt enc = function None -> Json.Null | Some v -> enc v

let summary_to_json s =
  Json.Obj
    [
      ("events", Json.Int s.events);
      ("first_incumbent", opt (fun v -> Json.Float v) s.first_incumbent);
      ("last_incumbent", opt (fun v -> Json.Float v) s.last_incumbent);
      ("time_to_first", opt (fun v -> Json.Float v) s.time_to_first);
      ("final_bound", opt (fun v -> Json.Float v) s.final_bound);
      ("final_gap", opt (fun v -> Json.Float v) s.final_gap);
    ]

let record_to_json r =
  Json.Obj
    ([
       ("seq", Json.Int r.seq);
       ("at", Json.Float r.at);
       ("trace_id", Json.String r.trace_id);
       ("id", opt (fun i -> Json.Int i) r.id);
       ("tenant", Json.String r.tenant);
       ("fingerprint", Json.String r.fingerprint);
       ("objective", Json.String r.objective);
       ("scalar", Json.Int r.scalar);
       ("served", Json.String r.served);
       ("engine", Json.String r.engine);
       ("status", Json.String r.status);
       ("cost", Json.Int r.cost);
       ("throughput", Json.Int r.throughput);
       ("queue_wait", Json.Float r.queue_wait);
       ("wall", Json.Float r.wall);
       ("evaluations", Json.Int r.evaluations);
       ("pivots", Json.Int r.pivots);
       ("nodes", Json.Int r.nodes);
     ]
    @
    match r.convergence with
    | None -> []
    | Some s -> [ ("convergence", summary_to_json s) ])

let summary_of_json j =
  let field name =
    Option.to_result
      ~none:(Printf.sprintf "audit: missing or bad %S" name)
      (Option.bind (Json.member name j) Json.to_int)
  in
  let fopt name =
    match Json.member name j with
    | None | Some Json.Null -> Ok None
    | Some v ->
      Option.to_result
        ~none:(Printf.sprintf "audit: bad %S" name)
        (Option.map Option.some (Json.to_float v))
  in
  let* events = field "events" in
  let* first_incumbent = fopt "first_incumbent" in
  let* last_incumbent = fopt "last_incumbent" in
  let* time_to_first = fopt "time_to_first" in
  let* final_bound = fopt "final_bound" in
  let* final_gap = fopt "final_gap" in
  Ok { events; first_incumbent; last_incumbent; time_to_first; final_bound; final_gap }

let record_of_json j =
  let need name coerce =
    Option.to_result
      ~none:(Printf.sprintf "audit: missing or bad %S" name)
      (Option.bind (Json.member name j) coerce)
  in
  let* seq = need "seq" Json.to_int in
  let* at = need "at" Json.to_float in
  let* trace_id = need "trace_id" Json.to_str in
  let id = Option.bind (Json.member "id" j) Json.to_int in
  let* tenant = need "tenant" Json.to_str in
  let* fingerprint = need "fingerprint" Json.to_str in
  let* objective = need "objective" Json.to_str in
  let* scalar = need "scalar" Json.to_int in
  let* served = need "served" Json.to_str in
  let* engine = need "engine" Json.to_str in
  let* status = need "status" Json.to_str in
  let* cost = need "cost" Json.to_int in
  let* throughput = need "throughput" Json.to_int in
  let* queue_wait = need "queue_wait" Json.to_float in
  let* wall = need "wall" Json.to_float in
  let* evaluations = need "evaluations" Json.to_int in
  let* pivots = need "pivots" Json.to_int in
  let* nodes = need "nodes" Json.to_int in
  let* convergence =
    match Json.member "convergence" j with
    | None | Some Json.Null -> Ok None
    | Some s -> Result.map Option.some (summary_of_json s)
  in
  Ok
    {
      seq;
      at;
      trace_id;
      id;
      tenant;
      fingerprint;
      objective;
      scalar;
      served;
      engine;
      status;
      cost;
      throughput;
      queue_wait;
      wall;
      evaluations;
      pivots;
      nodes;
      convergence;
    }

(* --- recording --- *)

(* The journal obeys the same kill switch as the metrics: a disabled
   Telemetry freezes it entirely — no ring writes, no file writes —
   so the switch's zero-overhead contract extends to auditing. *)
let record t r =
  if Telemetry.enabled () then
    locked t (fun () ->
        let r = { r with seq = t.next } in
        t.ring.(t.next mod Array.length t.ring) <- Some r;
        t.next <- t.next + 1;
        match t.out with
        | None -> ()
        | Some oc -> (
          (* Flush per line so a killed daemon still leaves a readable
             journal; audits are not a hot path. *)
          try
            output_string oc (Json.to_string (record_to_json r));
            output_char oc '\n';
            flush oc
          with Sys_error _ -> ()))

(* Oldest-first among the last [last] records (default: whole ring). *)
let recent ?last t =
  locked t (fun () ->
      let cap = Array.length t.ring in
      let held = min t.next cap in
      let want = match last with None -> held | Some n -> max 0 (min n held) in
      let rec take k acc =
        if k < t.next - want then acc
        else
          match t.ring.(k mod cap) with
          | Some r -> take (k - 1) (r :: acc)
          | None -> acc
      in
      take (t.next - 1) [])

let open_file t path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  locked t (fun () ->
      (match t.out with
       | Some old -> ( try close_out old with Sys_error _ -> ())
       | None -> ());
      t.out <- Some oc)

let close t =
  locked t (fun () ->
      match t.out with
      | None -> ()
      | Some oc ->
        t.out <- None;
        (try close_out oc with Sys_error _ -> ()))
