type t = {
  digest : string;
  encoding : string;
}

let of_instance inst =
  {
    digest = Rentcost.Instance.fingerprint inst;
    encoding = Rentcost.Instance.canonical_encoding inst;
  }

let of_problem p = of_instance (Rentcost.Instance.compile p)

let digest t = t.digest

let encoding t = t.encoding

let equal a b = String.equal a.encoding b.encoding

let short t =
  if String.length t.digest <= 12 then t.digest else String.sub t.digest 0 12

let pp fmt t = Format.pp_print_string fmt (short t)
