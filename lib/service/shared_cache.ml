type t = { striped : Cache.t Rentcost_parallel.Striped.t; total : int }

module Striped = Rentcost_parallel.Striped

let create ~capacity ~stripes =
  if capacity <= 0 then invalid_arg "Shared_cache.create: capacity <= 0";
  if stripes < 1 then invalid_arg "Shared_cache.create: stripes < 1";
  let stripes = min stripes capacity in
  (* Spread the total capacity as evenly as it divides; the first
     [capacity mod stripes] stripes take the remainder. *)
  let base = capacity / stripes and extra = capacity mod stripes in
  { striped =
      Striped.create ~stripes (fun i ->
          Cache.create ~capacity:(base + if i < extra then 1 else 0));
    total = capacity }

let stripes t = Striped.stripes t.striped

let capacity t = t.total

let length t =
  Striped.fold t.striped ~init:0 ~f:(fun acc c -> acc + Cache.length c)

let evictions t =
  Striped.fold t.striped ~init:0 ~f:(fun acc c -> acc + Cache.evictions c)

let find_exact t ~digest ~encoding ~target ~spec =
  Striped.with_key t.striped ~key:digest (fun c ->
      Cache.find_exact c ~digest ~encoding ~target ~spec)

let find_monotone t ~digest ~encoding ~target =
  Striped.with_key t.striped ~key:digest (fun c ->
      Cache.find_monotone c ~digest ~encoding ~target)

let find_monotone_le t ~digest ~encoding ~target =
  Striped.with_key t.striped ~key:digest (fun c ->
      Cache.find_monotone_le c ~digest ~encoding ~target)

let find_nearest t ~digest ~encoding ~target =
  Striped.with_key t.striped ~key:digest (fun c ->
      Cache.find_nearest c ~digest ~encoding ~target)

let insert t ~digest ~encoding entry =
  Striped.with_key t.striped ~key:digest (fun c ->
      Cache.insert c ~digest ~encoding entry)

let mem t ~digest ~target ~spec =
  Striped.with_key t.striped ~key:digest (fun c ->
      Cache.mem c ~digest ~target ~spec)
