(** Brute-force optimum by enumerating every integer throughput split.

    Exponential in the number of recipes ([O(ρ^{J-1})] splits): only
    usable on tiny instances. Serves as the ground-truth oracle in the
    test suite (validating the ILP, the DPs and heuristic bounds) —
    never in experiments. *)

(** [run ~target ()] returns an optimal allocation — the single entry
    point for both calling conventions (pass [~instance] or
    [~problem], never both; [~problem] is compiled, under [?pricebook]
    when present).
    @raise Invalid_argument per {!solve}, or when the
      [?instance]/[?problem] convention is violated. *)
val run :
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  target:int ->
  unit ->
  Allocation.t

(** @deprecated Use {!run}[ ~problem]. [solve problem ~target] enumerates all compositions of [target]
    into [J] non-negative parts and returns a cheapest allocation.
    Enumeration runs over the dominance-pruned compact recipe space of
    a compiled {!Instance.t}, pricing each assigned unit incrementally
    with {!Instance.Oracle.apply} — pruning never changes the optimal
    cost (see {!Instance}).
    @raise Invalid_argument when [target < 0]. *)
val solve : Problem.t -> target:int -> Allocation.t

(** @deprecated Use {!run}[ ~instance]. Kept one release for
    out-of-tree callers. *)
val solve_on : Instance.t -> target:int -> Allocation.t

(** [count_compositions ~parts ~total] is the number of splits
    enumerated by {!solve} (binomial [total+parts-1 choose parts-1]);
    useful to guard test sizes. *)
val count_compositions : parts:int -> total:int -> int
