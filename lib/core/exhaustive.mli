(** Brute-force optimum by enumerating every integer throughput split.

    Exponential in the number of recipes ([O(ρ^{J-1})] splits): only
    usable on tiny instances. Serves as the ground-truth oracle in the
    test suite (validating the ILP, the DPs and heuristic bounds) —
    never in experiments. *)

(** [run ~target ()] enumerates all compositions of [target] into [J]
    non-negative parts and returns a cheapest allocation — the single
    entry point for both calling conventions (pass [~instance] or
    [~problem], never both; [~problem] is compiled, under [?pricebook]
    when present). Enumeration runs over the dominance-pruned compact
    recipe space of a compiled {!Instance.t}, pricing each assigned
    unit incrementally with {!Instance.Oracle.apply} — pruning never
    changes the optimal cost (see {!Instance}).
    @raise Invalid_argument when [target < 0] or the
      [?instance]/[?problem] convention is violated. *)
val run :
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  target:int ->
  unit ->
  Allocation.t

(** [count_compositions ~parts ~total] is the number of splits
    enumerated by {!run} (binomial [total+parts-1 choose parts-1]);
    useful to guard test sizes. *)
val count_compositions : parts:int -> total:int -> int
