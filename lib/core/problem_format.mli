(** A plain-text file format for problem instances, so the command-line
    tool ([bin/rentcost.exe]) can solve user-supplied problems.

    Grammar (line oriented, [#] starts a comment):

    {v
    version 1                            # optional; version 1 implied
    types <Q>
    type <q> cost <c> throughput <r>     # one line per type, q in 0..Q-1
    recipe                               # starts a recipe block
      task <i> type <q>                  # tasks must be numbered 0,1,2,…
      edge <a> <b>                       # precedence a before b (optional)
    recipe
      …
    v}

    Whitespace is free-form; keywords are case-insensitive. Every
    validation of {!Platform.create}, {!Task_graph.create} and
    {!Problem.create} applies (positive costs/throughputs, acyclic
    precedence, type ranges). A file without a [version] line is
    version 1; unknown versions are rejected with a line-numbered
    [Failure] naming the supported versions, so future fields stay
    forward-compatible. *)

(** [to_string problem] renders an instance; [of_string (to_string p)]
    reconstructs an equivalent instance. *)
val to_string : Problem.t -> string

(** [of_string text] parses an instance.
    @raise Failure with a line-numbered message on malformed input;
    @raise Invalid_argument when the data violate model invariants. *)
val of_string : string -> Problem.t

(** [load path] reads and parses a file. *)
val load : string -> Problem.t

(** [save path problem] writes a file. *)
val save : string -> Problem.t -> unit
