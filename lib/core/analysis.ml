type solver = Problem.t -> target:int -> Allocation.t

let ilp_solver ?node_limit () problem ~target =
  match (Ilp.optimize ?node_limit ~problem ~target ()).Ilp.allocation with
  | Some a -> a
  | None ->
    (* Warm starts guarantee an incumbent even under a node cap. *)
    assert false

let h1_solver problem ~target =
  (Heuristics.h1_best_graph problem ~target).Heuristics.allocation

let cost_curve solver problem ~targets =
  List.map (fun target -> (target, solver problem ~target)) targets

let h1_buckets problem ~max_target =
  if max_target < 0 then invalid_arg "Analysis.h1_buckets: negative max_target";
  let cost t = (h1_solver problem ~target:t).Allocation.cost in
  let rec go lo t prev acc =
    if t > max_target then List.rev ((lo, max_target, prev) :: acc)
    else begin
      let c = cost t in
      if c = prev then go lo (t + 1) prev acc
      else go t (t + 1) c ((lo, t - 1, prev) :: acc)
    end
  in
  go 0 1 (cost 0) []

let price_sensitivity ?(solver = ilp_solver ()) problem ~target ~percent =
  if percent <= -100 then invalid_arg "Analysis.price_sensitivity: percent <= -100";
  let baseline = (solver problem ~target).Allocation.cost in
  let platform = Problem.platform problem in
  let q_count = Problem.num_types problem in
  let scaled q =
    let machines = Platform.machines platform in
    let m = machines.(q) in
    (* Round the scaled price up so a positive percentage always means
       a strictly non-cheaper machine. *)
    let cost = ((m.Platform.cost * (100 + percent)) + 99) / 100 in
    machines.(q) <- { m with Platform.cost = max 1 cost };
    Platform.create machines
  in
  let per_type =
    List.init q_count (fun q ->
        let problem' = Problem.create (scaled q) (Problem.recipes problem) in
        (q, (solver problem' ~target).Allocation.cost))
  in
  (baseline, per_type)
