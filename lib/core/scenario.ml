type t = {
  objective : Objective.t;
  pricebook : Pricebook.t option;
}

let make ~objective ?pricebook () = { objective; pricebook }

let min_cost ?pricebook ~target () =
  { objective = Objective.min_cost ~target; pricebook }

let max_throughput ?pricebook ~budget () =
  { objective = Objective.max_throughput ~budget; pricebook }

let objective t = t.objective
let pricebook t = t.pricebook

let pp fmt t =
  Format.fprintf fmt "@[<v>%a" Objective.pp t.objective;
  (match t.pricebook with
   | Some pb -> Format.fprintf fmt "@,%a" Pricebook.pp pb
   | None -> ());
  Format.fprintf fmt "@]"
