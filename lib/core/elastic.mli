(** Elastic provisioning over a demand trace.

    The paper optimizes one fixed target; clouds re-run that
    optimization as demand moves. This module plans a fleet per billing
    period (the paper's costs are hourly rates), compares elastic and
    static-peak policies, and quantifies the re-provisioning churn an
    autoscaler would impose.

    Planning goes through the unified {!Solver} over one compiled
    {!Instance.t}: the problem is compiled once for the whole trace
    (the same amortization PR 2 gave {!Cloudsim.Runner}), and each
    period's solve is seeded with the previous period's fleet as a
    {!Solver.solve} warm start — consecutive demands are close, so the
    previous optimum is usually a near-optimal incumbent.

    This module bills every period in full and re-solves every period —
    a clairvoyant per-period planner. The online counterpart lives in
    the [Rentcost_autoscale] library: its controller watches demand
    drift with a deadband, re-solves only when the drift warrants it,
    and charges rentals at hour granularity (a machine rented mid-hour
    is paid through its hour boundary), reusing {!provision_on} for its
    clairvoyant oracle baseline. *)

(** One allocation per billing period. *)
type plan = Allocation.t array

(** [provision problem ~demand] solves each period's target through
    {!Solver.solve_on} on a single compiled instance.

    @param spec engine selection (default [Solver.Auto]).
    @param budget per-period solve budget (default unlimited).
    @param rng / [params] forwarded to the solver (stochastic
      heuristics only).
    @param warm seed each period with the previous period's allocation
      (default [true]; the first period always solves cold). Exact
      engines still return optima — warm starts only speed them up —
      so disabling is only useful for ablation timing.
    @raise Invalid_argument on a negative demand entry. *)
val provision :
  ?budget:Budget.t ->
  ?rng:Numeric.Prng.t ->
  ?params:Heuristics.params ->
  ?spec:Solver.spec ->
  ?warm:bool ->
  Problem.t ->
  demand:int array ->
  plan

(** [provision_on instance ~demand] is {!provision} over an already
    compiled instance, so callers planning many traces (or mixing
    per-period planning with other solves — the autoscale layer's
    clairvoyant oracle does both) amortize one compile. The instance
    must be compiled under the default min-cost scenario. *)
val provision_on :
  ?budget:Budget.t ->
  ?rng:Numeric.Prng.t ->
  ?params:Heuristics.params ->
  ?spec:Solver.spec ->
  ?warm:bool ->
  Instance.t ->
  demand:int array ->
  plan

(** [static_peak problem ~demand] rents once for the peak demand and
    keeps that fleet every period (one solve total). *)
val static_peak :
  ?budget:Budget.t ->
  ?rng:Numeric.Prng.t ->
  ?params:Heuristics.params ->
  ?spec:Solver.spec ->
  Problem.t ->
  demand:int array ->
  plan

(** [total_cost plan] is the bill over the whole trace
    ([Σ_t cost_t], each period billed fully). *)
val total_cost : plan -> int

(** [peak_cost plan] is the most expensive period. *)
val peak_cost : plan -> int

(** [machine_hours plan] is, per machine type, the total number of
    machine-periods rented. *)
val machine_hours : plan -> int array

(** [churn plan] counts machine starts and stops between consecutive
    periods ([Σ_t Σ_q |x_{t,q} − x_{t−1,q}|], from an empty initial
    fleet). High churn means an autoscaler would thrash. *)
val churn : plan -> int

(** [savings ~elastic ~static] is the relative saving of the elastic
    bill over the static one, in [0, 1]; zero when the static bill is
    zero. *)
val savings : elastic:plan -> static:plan -> float
