(** The general case with shared task types (paper § V-C), solved
    exactly as a mixed-integer linear program.

    Variables: per-recipe throughputs [ρ_j ∈ ℕ] and machine counts
    [x_q ∈ ℕ]. Constraints: [Σ_j ρ_j >= ρ] and, per type,
    [x_q·r_q >= Σ_j n^j_q·ρ_j]. Objective: [min Σ_q x_q·c_q].

    The solver is the exact branch-and-bound of {!Milp.Solver} (our
    stand-in for the paper's Gurobi); [time_limit] reproduces the
    100-second cap of the paper's Figure 8 experiment. The MILP is
    tightened with the valid bounds [ρ_j <= ρ] and
    [x_q <= ⌈max_j n^j_q · ρ / r_q⌉], and with objective-integrality
    bound strengthening (all costs are integers).

    {b Numeric kernels.} Solves run Fix64-first: the branch-and-bound
    pivots on the native-int {!Numeric.Fix64} kernel and is restarted
    transparently on exact {!Numeric.Rat} when the fast kernel raises
    [Numeric.Kernel.Overflow]. Kernels agree bit-for-bit wherever they
    complete, so results are identical either way; the
    [numeric.fast_solves] / [numeric.fallbacks] telemetry counters and
    the [lp.kernel] span attribute record which kernel answered. *)

type outcome = {
  allocation : Allocation.t option;  (** best integer solution found *)
  proved_optimal : bool;  (** [status = Optimal], kept for convenience *)
  status : Milp.Solver.status;
      (** the branch-and-bound verdict, distinguishing a limit hit
          with an incumbent ([Feasible]) from one without ([Unknown]) *)
  best_bound : int option;
      (** proven lower bound on the optimal cost (rounded up) *)
  nodes : int;  (** branch-and-bound nodes *)
  elapsed : float;  (** seconds *)
}

(** [model ~target] constructs the MILP and returns it with the list
    of integer variables — exposed for inspection, testing and
    benchmarking. Exactly one of [?instance] and [?problem] must be
    given ([?problem] is compiled, under [?pricebook] when present).
    The model has one [ρ] column per {e surviving} recipe of the
    dominance-pruned compiled instance (see {!Instance}): variables
    [0..J'-1] are the [ρ_j] in compact numbering and [J'..J'+Q-1] are
    the [x_q]. Dominated columns never price cheaper at equal
    throughput, so both the MILP optimum and its LP relaxation are
    unchanged.

    [?budget_cap] adds the budget-feasibility cut
    [Σ_q c_q·x_q <= cap]: the model then answers "is throughput
    [target] reachable within [cap]?" — [Infeasible] means no. This is
    the native probe of the max-throughput binary search
    ({!Solver.run}).
    @raise Invalid_argument when [target < 0], the cap is negative, or
      the [?instance]/[?problem] convention is violated. *)
val model :
  ?budget_cap:int ->
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  target:int ->
  unit ->
  Lp.Model.t * Lp.Model.var list

(** [optimize ~target] solves the MILP — the single entry point for
    both calling conventions (pass [~instance] or [~problem], never
    both).
    @param time_limit wall-clock seconds (default: unlimited)
    @param node_limit maximum branch-and-bound nodes (default:
      unlimited); unlike a time limit, a node limit keeps capped runs
      deterministic across machines
    @param strategy node order (default [Best_bound])
    @param warm_start seed the search with an H32Jump incumbent
      (default [true]; the role Gurobi's primal heuristics play in the
      paper's runs). Disable for ablation measurements.
    @param incumbent a known feasible allocation (e.g. a cached or
      previous-period solution) used as the initial incumbent instead
      of running the H32Jump warm-up. Silently ignored when it is
      infeasible for this target, routes throughput through a pruned
      recipe, falls outside the model's tightening bounds, or costs
      more than [?budget_cap] — the solve then proceeds per
      [warm_start].
    @param cut_rounds Gomory cut rounds at the root (default 0:
      disabled — with a dense exact tableau the smaller tree does not
      repay the denser, slower node relaxations; see the
      [ilp_ablation] bench).
    @param budget_cap see {!model}; with the cut, [status = Infeasible]
      in the outcome means "unreachable within the cap", and any warm
      point over the cap is dropped rather than handed to the solver.
    @raise Invalid_argument when [target < 0], the cap is negative, or
      the [?instance]/[?problem] convention is violated. *)
val optimize :
  ?time_limit:float ->
  ?node_limit:int ->
  ?strategy:Milp.Solver.strategy ->
  ?warm_start:bool ->
  ?incumbent:Allocation.t ->
  ?cut_rounds:int ->
  ?budget_cap:int ->
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  target:int ->
  unit ->
  outcome

(** [lp_lower_bound problem ~target] is the plain LP-relaxation bound
    [⌈LP⌉] (no branching); cheap and useful for normalization when the
    exact solve times out. *)
val lp_lower_bound : Problem.t -> target:int -> int
