(** Optimal provisioning for black-box recipes (paper § V-A).

    When every recipe is a single task and no two recipes share a task
    type, the problem is the unbounded-knapsack-like covering problem
    [min Σ x_q·c_q  s.t.  Σ x_q·r_q >= ρ], solved here exactly by the
    pseudo-polynomial DP of {!Knapsack.min_cost_cover} in
    [O(J·ρ)] time. *)

(** [run ~target ()] returns an optimal allocation — the single entry
    point for both calling conventions (pass [~instance] or
    [~problem], never both; [~problem] is compiled, under [?pricebook]
    when present). The black-box check runs on the dominance-pruned
    compiled instance, so a problem whose only structure violations
    come from dominated recipes (e.g. duplicated single-task recipes)
    is still accepted.
    @raise Invalid_argument when the pruned instance is not black-box
      (use {!Instance.is_blackbox} to test), [target < 0], or the
      [?instance]/[?problem] convention is violated. *)
val run :
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  target:int ->
  unit ->
  Allocation.t

