module P = Numeric.Prng

type name = H0 | H1 | H2 | H31 | H32 | H32_jump

let all = [ H0; H1; H2; H31; H32; H32_jump ]

let name_to_string = function
  | H0 -> "H0"
  | H1 -> "H1"
  | H2 -> "H2"
  | H31 -> "H31"
  | H32 -> "H32"
  | H32_jump -> "H32Jump"

type params = {
  step : int;
  iterations : int;
  patience : int;
  jumps : int;
  jump_size : int;
  exhaustive_deltas : bool;
}

(* Jump defaults calibrated on the paper's illustrating example:
   50 perturbation rounds of 4 exchanges match or beat every H32Jump
   row of Table III while keeping H32Jump the slowest heuristic, as in
   the paper's Figure 5. *)
let default_params =
  { step = 1; iterations = 500; patience = 100; jumps = 50; jump_size = 4;
    exhaustive_deltas = false }

type result = { allocation : Allocation.t; evaluations : int; exhausted : bool }

let check_params p =
  if p.step <= 0 then invalid_arg "Heuristics: step must be positive";
  if p.iterations < 0 || p.patience < 0 || p.jumps < 0 || p.jump_size < 0 then
    invalid_arg "Heuristics: negative iteration parameter"

let evals_counter = Telemetry.counter Telemetry.heuristic_evals

(* A counting cost oracle shared by one heuristic run; also the
   enforcement point for evaluation/deadline budgets ([stopped] is
   checked at move boundaries, so a run always ends on a complete,
   feasible incumbent). *)
type oracle = {
  problem : Problem.t;
  mutable evals : int;
  eval_cap : int option;
  deadline_at : float option;  (* absolute Unix time *)
  mutable exhausted : bool;
}

let make_oracle problem (budget : Budget.t) =
  { problem; evals = 0; eval_cap = budget.Budget.eval_cap;
    deadline_at =
      Option.map (fun d -> Unix.gettimeofday () +. d) budget.Budget.deadline;
    exhausted = false }

(* Sticky out-of-budget test: once tripped, stays tripped. *)
let stopped oracle =
  oracle.exhausted
  || ((match oracle.eval_cap with
       | Some cap -> oracle.evals >= cap
       | None -> false)
      || (match oracle.deadline_at with
          | Some t -> Unix.gettimeofday () >= t
          | None -> false))
     && begin
       oracle.exhausted <- true;
       true
     end

let cost oracle rho =
  oracle.evals <- oracle.evals + 1;
  Telemetry.bump evals_counter;
  (Allocation.of_rho oracle.problem ~rho).Allocation.cost

let finish oracle rho =
  { allocation = Allocation.of_rho oracle.problem ~rho;
    evaluations = oracle.evals;
    exhausted = oracle.exhausted }

let check_target target = if target < 0 then invalid_arg "Heuristics: negative target"

(* Move δ units from j1 to j2 in place; moves everything when the
   source holds less than δ (the H2 rule of the paper). Returns the
   amount actually moved. *)
let move rho j1 j2 delta =
  let d = min delta rho.(j1) in
  rho.(j1) <- rho.(j1) - d;
  rho.(j2) <- rho.(j2) + d;
  d

(* ----- H0: uniformly random composition ----- *)

let random_composition rng j_count target =
  (* Classic stars-and-bars sampling: J-1 uniform cut points in
     [0, target], sorted; consecutive differences are the parts. *)
  let cuts = Array.init (j_count - 1) (fun _ -> P.int_in_range rng ~lo:0 ~hi:target) in
  Array.sort compare cuts;
  let rho = Array.make j_count 0 in
  let prev = ref 0 in
  Array.iteri
    (fun i c ->
      rho.(i) <- c - !prev;
      prev := c)
    cuts;
  rho.(j_count - 1) <- target - !prev;
  rho

let h0_random ?params:_ ?(budget = Budget.unlimited) ~rng problem ~target =
  check_target target;
  let oracle = make_oracle problem budget in
  let j_count = Problem.num_recipes problem in
  let rho =
    if j_count = 1 then [| target |] else random_composition rng j_count target
  in
  finish oracle rho

(* ----- H1: best single graph ----- *)

(* H1 always runs to completion regardless of budget: its J
   evaluations are the feasibility floor every budgeted run can
   afford, and every other heuristic starts from its vector. *)
let h1_vector oracle target =
  let j_count = Problem.num_recipes oracle.problem in
  let best_j = ref 0 and best_cost = ref max_int in
  for j = 0 to j_count - 1 do
    let rho = Array.make j_count 0 in
    rho.(j) <- target;
    let c = cost oracle rho in
    if c < !best_cost then begin
      best_cost := c;
      best_j := j
    end
  done;
  let rho = Array.make j_count 0 in
  rho.(!best_j) <- target;
  (rho, !best_cost)

let h1_best_graph ?(budget = Budget.unlimited) problem ~target =
  check_target target;
  let oracle = make_oracle problem budget in
  let rho, _ = h1_vector oracle target in
  finish oracle rho

(* ----- H2: random walk ----- *)

(* Draw a random ordered pair of distinct recipes. *)
let random_pair rng j_count =
  let j1 = P.int rng j_count in
  let j2 = (j1 + 1 + P.int rng (j_count - 1)) mod j_count in
  (j1, j2)

let h2_random_walk ?(params = default_params) ?(budget = Budget.unlimited) ~rng
    problem ~target =
  check_params params;
  check_target target;
  let oracle = make_oracle problem budget in
  let j_count = Problem.num_recipes problem in
  let current, current_cost = h1_vector oracle target in
  if j_count = 1 then finish oracle current
  else begin
    let best = Array.copy current and best_cost = ref current_cost in
    let i = ref 0 in
    while !i < params.iterations && not (stopped oracle) do
      incr i;
      let j1, j2 = random_pair rng j_count in
      ignore (move current j1 j2 params.step);
      let c = cost oracle current in
      if c < !best_cost then begin
        best_cost := c;
        Array.blit current 0 best 0 j_count
      end
      (* The walk continues from the new point whether or not it
         improved (contrast with H31). *)
    done;
    finish oracle best
  end

(* ----- H31: stochastic descent ----- *)

let h31_stochastic_descent ?(params = default_params) ?(budget = Budget.unlimited)
    ~rng problem ~target =
  check_params params;
  check_target target;
  let oracle = make_oracle problem budget in
  let j_count = Problem.num_recipes problem in
  let current, c0 = h1_vector oracle target in
  if j_count = 1 then finish oracle current
  else begin
    let current_cost = ref c0 in
    let stale = ref 0 and i = ref 0 in
    while !i < params.iterations && !stale < params.patience && not (stopped oracle)
    do
      incr i;
      let j1, j2 = random_pair rng j_count in
      let moved = move current j1 j2 params.step in
      let c = cost oracle current in
      if c < !current_cost then begin
        current_cost := c;
        stale := 0
      end
      else begin
        (* Revert: descent only keeps improving moves. *)
        ignore (move current j2 j1 moved);
        incr stale
      end
    done;
    finish oracle current
  end

(* ----- H32: steepest gradient ----- *)

(* One steepest-descent pass: returns true when a strictly improving
   exchange was applied. By default a single quantum [step] is tried
   per ordered pair; with [exhaustive_deltas] every multiple of [step]
   up to the source's whole throughput is tested — the literal reading
   of the paper's "all possible throughput fraction exchanges", at a
   quadratically higher cost per pass. *)
let steepest_step oracle params rho current_cost =
  let j_count = Array.length rho in
  let best_gain = ref 0 and best_move = ref None in
  let try_move j1 j2 delta =
    let moved = move rho j1 j2 delta in
    let c = cost oracle rho in
    ignore (move rho j2 j1 moved);
    let gain = !current_cost - c in
    if gain > !best_gain then begin
      best_gain := gain;
      best_move := Some (j1, j2, moved)
    end
  in
  for j1 = 0 to j_count - 1 do
    if rho.(j1) > 0 && not (stopped oracle) then
      for j2 = 0 to j_count - 1 do
        if j1 <> j2 then
          if params.exhaustive_deltas then begin
            let delta = ref params.step in
            while !delta < rho.(j1) && not (stopped oracle) do
              try_move j1 j2 !delta;
              delta := !delta + params.step
            done;
            try_move j1 j2 rho.(j1)
          end
          else try_move j1 j2 params.step
      done
  done;
  match !best_move with
  | None -> false
  | Some (j1, j2, delta) ->
    ignore (move rho j1 j2 delta);
    current_cost := !current_cost - !best_gain;
    true

let descend oracle params rho cost0 =
  let current_cost = ref cost0 in
  while (not (stopped oracle)) && steepest_step oracle params rho current_cost do
    ()
  done;
  !current_cost

let h32_steepest ?(params = default_params) ?(budget = Budget.unlimited) problem
    ~target =
  check_params params;
  check_target target;
  let oracle = make_oracle problem budget in
  let rho, c0 = h1_vector oracle target in
  ignore (descend oracle params rho c0);
  finish oracle rho

(* ----- H32Jump: steepest gradient with random restarts nearby ----- *)

let h32_jump ?(params = default_params) ?(budget = Budget.unlimited) ~rng problem
    ~target =
  check_params params;
  check_target target;
  let oracle = make_oracle problem budget in
  let j_count = Problem.num_recipes problem in
  let current, c0 = h1_vector oracle target in
  let current_cost = ref (descend oracle params current c0) in
  let best = Array.copy current and best_cost = ref !current_cost in
  if j_count > 1 then begin
    let jump = ref 0 in
    while !jump < params.jumps && not (stopped oracle) do
      incr jump;
      (* Perturb: accept a burst of random exchanges unconditionally,
         then descend to the nearby local minimum. *)
      for _ = 1 to params.jump_size do
        let j1, j2 = random_pair rng j_count in
        ignore (move current j1 j2 params.step)
      done;
      current_cost := descend oracle params current (cost oracle current);
      if !current_cost < !best_cost then begin
        best_cost := !current_cost;
        Array.blit current 0 best 0 j_count
      end
    done
  end;
  finish oracle best

(* A fixed fallback seed so [run] stays usable — and reproducible —
   when the caller has no PRNG at hand (deterministic heuristics never
   touch it). *)
let default_seed = 0x5EED

let run ?(params = default_params) ?budget ?rng name problem ~target =
  let rng = match rng with Some r -> r | None -> P.create default_seed in
  match name with
  | H0 -> h0_random ~params ?budget ~rng problem ~target
  | H1 -> h1_best_graph ?budget problem ~target
  | H2 -> h2_random_walk ~params ?budget ~rng problem ~target
  | H31 -> h31_stochastic_descent ~params ?budget ~rng problem ~target
  | H32 -> h32_steepest ~params ?budget problem ~target
  | H32_jump -> h32_jump ~params ?budget ~rng problem ~target
