module P = Numeric.Prng

type name = H0 | H1 | H2 | H31 | H32 | H32_jump

let all = [ H0; H1; H2; H31; H32; H32_jump ]

let name_to_string = function
  | H0 -> "H0"
  | H1 -> "H1"
  | H2 -> "H2"
  | H31 -> "H31"
  | H32 -> "H32"
  | H32_jump -> "H32Jump"

type params = {
  step : int;
  iterations : int;
  patience : int;
  jumps : int;
  jump_size : int;
  exhaustive_deltas : bool;
}

(* Jump defaults calibrated on the paper's illustrating example:
   50 perturbation rounds of 4 exchanges match or beat every H32Jump
   row of Table III while keeping H32Jump the slowest heuristic, as in
   the paper's Figure 5. *)
let default_params =
  { step = 1; iterations = 500; patience = 100; jumps = 50; jump_size = 4;
    exhaustive_deltas = false }

type result = { allocation : Allocation.t; evaluations : int; exhausted : bool }

let check_params p =
  if p.step <= 0 then invalid_arg "Heuristics: step must be positive";
  if p.iterations < 0 || p.patience < 0 || p.jumps < 0 || p.jump_size < 0 then
    invalid_arg "Heuristics: negative iteration parameter"

let evals_counter = Telemetry.counter Telemetry.heuristic_evals

let run_evals_hist =
  Telemetry.histogram Telemetry.heuristic_run_evals
    ~bounds:[| 10.; 100.; 1_000.; 10_000.; 100_000. |]

(* A counting cost oracle shared by one heuristic run — an
   [Instance.Oracle] (incremental re-pricing over recipe supports)
   plus evaluation accounting, and the enforcement point for
   evaluation/deadline budgets ([stopped] is checked at move
   boundaries, so a run always ends on a complete, feasible
   incumbent). *)
type oracle = {
  inst : Instance.t;
  state : Instance.Oracle.t;
  src : string;  (* convergence-event source, e.g. "h32jump" *)
  mutable evals : int;
  eval_cap : int option;
  deadline_at : float option;  (* absolute Unix time *)
  mutable exhausted : bool;
  mutable best_seen : int;
      (* cheapest cost priced so far, across phases (H1 start, walk,
         descents) — the monotone filter for convergence events *)
}

let make_oracle ?(src = "heuristic") inst (budget : Budget.t) =
  { inst; state = Instance.Oracle.create inst; src; evals = 0;
    eval_cap = budget.Budget.eval_cap;
    deadline_at =
      Option.map (fun d -> Unix.gettimeofday () +. d) budget.Budget.deadline;
    exhausted = false;
    best_seen = max_int }

(* Feed a priced feasible cost to the convergence timeline. One int
   compare per call; the emit (and its allocation) only happens on
   strict improvement, which is rare on any search trajectory. *)
let observe_best oracle c =
  if c < oracle.best_seen then begin
    oracle.best_seen <- c;
    Telemetry.Progress.emit ~incumbent:(float_of_int c) ~source:oracle.src ()
  end

(* Sticky out-of-budget test: once tripped, stays tripped. *)
let stopped oracle =
  oracle.exhausted
  || ((match oracle.eval_cap with
       | Some cap -> oracle.evals >= cap
       | None -> false)
      || (match oracle.deadline_at with
          | Some t -> Unix.gettimeofday () >= t
          | None -> false))
     && begin
       oracle.exhausted <- true;
       true
     end

let note_eval oracle =
  oracle.evals <- oracle.evals + 1;
  Telemetry.bump evals_counter

(* Price the oracle's current point: one evaluation, O(1) — the
   incremental state was already re-priced by the applies. *)
let current_cost oracle =
  note_eval oracle;
  Instance.Oracle.cost oracle.state

let finish oracle =
  { allocation = Instance.Oracle.allocation oracle.state;
    evaluations = oracle.evals;
    exhausted = oracle.exhausted }

let check_target target = if target < 0 then invalid_arg "Heuristics: negative target"

(* Sampled iteration spans: the search loops are far too hot for a
   span per move (a move is one oracle evaluation), so every
   [1 lsl block_bits] iterations one span covering the whole block is
   recorded, timed by the loop itself. Off, this is one ref read per
   block boundary check; on, two clock reads per 64 iterations. *)
let block_bits = 6

let block_mask = (1 lsl block_bits) - 1

let sample_block ~name oracle ~iter ~block_start =
  if Telemetry.enabled () && iter land block_mask = 0 then begin
    let t = Telemetry.now () in
    Telemetry.Span.record
      ~attrs:
        [ ("iterations", string_of_int iter);
          ("evaluations", string_of_int oracle.evals) ]
      ~name ~start:!block_start
      ~duration:(t -. !block_start)
      ();
    block_start := t
  end

(* Move δ units from j1 to j2; moves everything when the source holds
   less than δ (the H2 rule of the paper). Returns the amount actually
   moved. Always pushes exactly two entries on the undo log, so a
   revert is two [undo]s regardless of clamping. *)
let move st j1 j2 delta =
  let d = min delta (Instance.Oracle.rho_at st j1) in
  Instance.Oracle.apply st ~j:j1 ~drho:(-d);
  Instance.Oracle.apply st ~j:j2 ~drho:d;
  d

let revert_move st =
  Instance.Oracle.undo st;
  Instance.Oracle.undo st

(* ----- H0: uniformly random composition ----- *)

let random_composition rng j_count target =
  (* Classic stars-and-bars sampling: J-1 uniform cut points in
     [0, target], sorted; consecutive differences are the parts. *)
  let cuts = Array.init (j_count - 1) (fun _ -> P.int_in_range rng ~lo:0 ~hi:target) in
  Array.sort compare cuts;
  let rho = Array.make j_count 0 in
  let prev = ref 0 in
  Array.iteri
    (fun i c ->
      rho.(i) <- c - !prev;
      prev := c)
    cuts;
  rho.(j_count - 1) <- target - !prev;
  rho

let h0_on ?params:_ budget ~rng inst ~target =
  let oracle = make_oracle ~src:"h0" inst budget in
  let j_count = Instance.num_recipes inst in
  let rho =
    if j_count = 1 then [| target |] else random_composition rng j_count target
  in
  Instance.Oracle.reset oracle.state ~rho;
  finish oracle

(* ----- H1: best single graph ----- *)

(* H1 always runs to completion regardless of budget: its J
   evaluations are the feasibility floor every budgeted run can
   afford, and every other heuristic starts from its vector. Each
   probe is the § IV-A closed form over the recipe's support —
   O(|supp(j)|), no full load vector. The winning split is installed
   in the oracle state. *)
let h1_start oracle target =
  let j_count = Instance.num_recipes oracle.inst in
  let best_j = ref 0 and best_cost = ref max_int in
  for j = 0 to j_count - 1 do
    note_eval oracle;
    let c = Instance.single_cost oracle.inst ~j ~target in
    if c < !best_cost then begin
      best_cost := c;
      best_j := j
    end
  done;
  let rho = Array.make j_count 0 in
  rho.(!best_j) <- target;
  Instance.Oracle.reset oracle.state ~rho;
  observe_best oracle !best_cost;
  !best_cost

let h1_on ?params:_ budget inst ~target =
  let oracle = make_oracle ~src:"h1" inst budget in
  ignore (h1_start oracle target);
  finish oracle

(* Start point of the search heuristics: the H1 split, or a caller
   supplied warm start when it prices no worse. The warm split must be
   compact, non-negative and sum to at least the target (the Solver
   layer validates before handing it down); pricing it costs one
   evaluation, so unseeded runs keep their historical trajectories and
   evaluation counts exactly. *)
let start_point oracle ~warm_start target =
  let c1 = h1_start oracle target in
  match warm_start with
  | None -> c1
  | Some rho ->
    let h1_rho = Instance.Oracle.rho oracle.state in
    Instance.Oracle.reset oracle.state ~rho;
    let cw = current_cost oracle in
    observe_best oracle cw;
    if cw <= c1 then cw
    else begin
      Instance.Oracle.reset oracle.state ~rho:h1_rho;
      c1
    end

(* ----- H2: random walk ----- *)

(* Draw a random ordered pair of distinct recipes. *)
let random_pair rng j_count =
  let j1 = P.int rng j_count in
  let j2 = (j1 + 1 + P.int rng (j_count - 1)) mod j_count in
  (j1, j2)

let h2_on ~params budget ~rng ~warm_start inst ~target =
  let oracle = make_oracle ~src:"h2" inst budget in
  let j_count = Instance.num_recipes inst in
  let c0 = start_point oracle ~warm_start target in
  if j_count > 1 then begin
    let st = oracle.state in
    let best = ref (Instance.Oracle.rho st) and best_cost = ref c0 in
    let i = ref 0 in
    let block_start = ref (Telemetry.now ()) in
    while !i < params.iterations && not (stopped oracle) do
      incr i;
      let j1, j2 = random_pair rng j_count in
      ignore (move st j1 j2 params.step);
      let c = current_cost oracle in
      if c < !best_cost then begin
        best_cost := c;
        best := Instance.Oracle.rho st;
        observe_best oracle c
      end;
      (* The walk continues from the new point whether or not it
         improved (contrast with H31). *)
      Instance.Oracle.commit st;
      sample_block ~name:"heuristics.h2.block" oracle ~iter:!i ~block_start
    done;
    Instance.Oracle.reset st ~rho:!best
  end;
  finish oracle

(* ----- H31: stochastic descent ----- *)

let h31_on ~params budget ~rng ~warm_start inst ~target =
  let oracle = make_oracle ~src:"h31" inst budget in
  let j_count = Instance.num_recipes inst in
  let c0 = start_point oracle ~warm_start target in
  if j_count > 1 then begin
    let st = oracle.state in
    let current_cost_r = ref c0 in
    let stale = ref 0 and i = ref 0 in
    let block_start = ref (Telemetry.now ()) in
    while !i < params.iterations && !stale < params.patience && not (stopped oracle)
    do
      incr i;
      let j1, j2 = random_pair rng j_count in
      ignore (move st j1 j2 params.step);
      let c = current_cost oracle in
      if c < !current_cost_r then begin
        current_cost_r := c;
        stale := 0;
        Instance.Oracle.commit st;
        observe_best oracle c
      end
      else begin
        (* Revert: descent only keeps improving moves. *)
        revert_move st;
        incr stale
      end;
      sample_block ~name:"heuristics.h31.block" oracle ~iter:!i ~block_start
    done
  end;
  finish oracle

(* ----- H32: steepest gradient ----- *)

(* One steepest-descent pass: returns true when a strictly improving
   exchange was applied. By default a single quantum [step] is tried
   per ordered pair; with [exhaustive_deltas] every multiple of [step]
   up to the source's whole throughput is tested — the literal reading
   of the paper's "all possible throughput fraction exchanges", at a
   quadratically higher cost per pass. *)
let steepest_step oracle params current_cost =
  let st = oracle.state in
  let j_count = Instance.num_recipes oracle.inst in
  let best_gain = ref 0 and best_move = ref None in
  let try_move j1 j2 delta =
    let moved = move st j1 j2 delta in
    let c = (note_eval oracle; Instance.Oracle.cost st) in
    revert_move st;
    let gain = !current_cost - c in
    if gain > !best_gain then begin
      best_gain := gain;
      best_move := Some (j1, j2, moved)
    end
  in
  for j1 = 0 to j_count - 1 do
    if Instance.Oracle.rho_at st j1 > 0 && not (stopped oracle) then
      for j2 = 0 to j_count - 1 do
        if j1 <> j2 then
          if params.exhaustive_deltas then begin
            let delta = ref params.step in
            while !delta < Instance.Oracle.rho_at st j1 && not (stopped oracle) do
              try_move j1 j2 !delta;
              delta := !delta + params.step
            done;
            try_move j1 j2 (Instance.Oracle.rho_at st j1)
          end
          else try_move j1 j2 params.step
      done
  done;
  match !best_move with
  | None -> false
  | Some (j1, j2, delta) ->
    ignore (move st j1 j2 delta);
    Instance.Oracle.commit st;
    current_cost := !current_cost - !best_gain;
    true

let descend oracle params cost0 =
  let current_cost = ref cost0 in
  let steps = ref 0 in
  let block_start = ref (Telemetry.now ()) in
  while (not (stopped oracle)) && steepest_step oracle params current_cost do
    incr steps;
    observe_best oracle !current_cost;
    sample_block ~name:"heuristics.h32.block" oracle ~iter:!steps ~block_start
  done;
  !current_cost

let h32_on ~params budget ~warm_start inst ~target =
  let oracle = make_oracle ~src:"h32" inst budget in
  let c0 = start_point oracle ~warm_start target in
  ignore (descend oracle params c0);
  finish oracle

(* ----- H32Jump: steepest gradient with random restarts nearby ----- *)

let h32_jump_on ~params budget ~rng ~warm_start inst ~target =
  let oracle = make_oracle ~src:"h32jump" inst budget in
  let st = oracle.state in
  let j_count = Instance.num_recipes inst in
  let c0 = start_point oracle ~warm_start target in
  let current_cost_r = ref (descend oracle params c0) in
  let best = ref (Instance.Oracle.rho st) and best_cost = ref !current_cost_r in
  if j_count > 1 then begin
    let jump = ref 0 in
    while !jump < params.jumps && not (stopped oracle) do
      incr jump;
      (* Perturb: accept a burst of random exchanges unconditionally,
         then descend to the nearby local minimum. *)
      for _ = 1 to params.jump_size do
        let j1, j2 = random_pair rng j_count in
        ignore (move st j1 j2 params.step)
      done;
      Instance.Oracle.commit st;
      current_cost_r := descend oracle params (current_cost oracle);
      if !current_cost_r < !best_cost then begin
        best_cost := !current_cost_r;
        best := Instance.Oracle.rho st
      end
    done
  end;
  Instance.Oracle.reset st ~rho:!best;
  finish oracle

(* A fixed fallback seed so the entry points stay usable — and
   reproducible — when the caller has no PRNG at hand (deterministic
   heuristics never touch it). *)
let default_seed = 0x5EED

let run_on ?(params = default_params) ?(budget = Budget.unlimited) ?rng
    ?warm_start name inst ~target =
  check_params params;
  check_target target;
  let rng = match rng with Some r -> r | None -> P.create default_seed in
  let go () =
    match name with
    | H0 -> h0_on ~params budget ~rng inst ~target
    | H1 -> h1_on ~params budget inst ~target
    | H2 -> h2_on ~params budget ~rng ~warm_start inst ~target
    | H31 -> h31_on ~params budget ~rng ~warm_start inst ~target
    | H32 -> h32_on ~params budget ~warm_start inst ~target
    | H32_jump -> h32_jump_on ~params budget ~rng ~warm_start inst ~target
  in
  if not (Telemetry.enabled ()) then go ()
  else
    Telemetry.Span.with_span
      ~attrs:
        [ ("algo", name_to_string name); ("target", string_of_int target) ]
      "heuristics.run"
      (fun () ->
        let r = go () in
        Telemetry.observe run_evals_hist (float_of_int r.evaluations);
        r)

let search ?params ?budget ?rng ?warm_start ?pricebook ?instance ?problem name
    ~target =
  let instance =
    Instance.for_solve ~who:"Heuristics.search" ?pricebook ?instance ?problem ()
  in
  run_on ?params ?budget ?rng ?warm_start name instance ~target

let run ?params ?budget ?rng name problem ~target =
  search ?params ?budget ?rng ~problem name ~target

(* Per-heuristic entry points, kept for direct experimentation; each
   compiles the instance itself. *)

let h0_random ?params ?budget ~rng problem ~target =
  run ?params ?budget ~rng H0 problem ~target

let h1_best_graph ?budget problem ~target = run ?budget H1 problem ~target

let h2_random_walk ?params ?budget ~rng problem ~target =
  run ?params ?budget ~rng H2 problem ~target

let h31_stochastic_descent ?params ?budget ~rng problem ~target =
  run ?params ?budget ~rng H31 problem ~target

let h32_steepest ?params ?budget problem ~target =
  run ?params ?budget H32 problem ~target

let h32_jump ?params ?budget ~rng problem ~target =
  run ?params ?budget ~rng H32_jump problem ~target
