(** A compiled view of a {!Problem.t}, built once per solve.

    Every engine ultimately prices throughput splits with the § IV-B
    closed form, and profiling shows the search engines (§ VI
    heuristics, the exhaustive oracle, the DP tabulations) spend
    essentially all their time there. [Instance.compile] preprocesses
    the problem so that pricing work is proportional to what a move
    actually touches:

    - {b sparse recipe supports}: per recipe, the list of types with
      [n^j_q > 0] (CSR-style), so inner loops skip zero entries;
    - {b precomputed platform vectors}: [c_q] and [r_q] as plain
      arrays, plus per-recipe closed-form unit-cost bounds (§ IV-A);
    - {b recipe-dominance preprocessing}: recipe [j'] is dropped from
      the search space when some recipe [j] satisfies
      [n^j_q <= n^j'_q] for every [q] (ties broken towards the lower
      index). Any throughput routed through [j'] can be rerouted
      through [j] without raising any per-type load, hence without
      raising the cost, so some optimum has [ρ_j' = 0] and dropping
      [j'] never changes the optimal cost. Surviving recipes are
      re-indexed compactly; {!expand_rho} maps results back to the
      original numbering.

    On top of the compiled view, {!module:Oracle} maintains loads,
    machine counts and cost incrementally: {!Oracle.apply} re-prices
    only the support of the touched recipe — [O(|supp(j)|)] per move
    instead of the [O(Q·J)] plus allocations of a fresh
    {!Allocation.of_rho}. *)

(** Sparse counts of one recipe: [counts.(i)] tasks of type
    [types.(i)], types ascending, all counts positive. *)
type support = {
  types : int array;
  counts : int array;
}

type t

(** Alias for {!t}, usable inside the {!module:Oracle} signature. *)
type instance = t

(** [compile problem] builds the instance. [O(J²·Q)] for the dominance
    filter plus [O(J·Q)] for the tables — negligible next to any
    search. [~prune:false] keeps dominated recipes (identity index
    map); used by A/B tests and ablation benchmarks.

    [?scenario] bakes a {!Scenario.t} into the compiled view: a price
    book rewrites the platform costs [c_q] to the effective multi-cloud
    prices (so every engine, {!single_cost}, {!fluid_lower_bound} and
    the {!module:Oracle} price with them), and the objective {e kind}
    is folded into the canonical encoding, so min-cost and
    max-throughput instances never share a fingerprint. Omitted — or
    given as the default min-cost scenario with no book — the compile
    is bit-identical to the historical one. *)
val compile : ?prune:bool -> ?scenario:Scenario.t -> Problem.t -> t

(** The problem the engines price: the submitted recipes over the
    scenario-{e effective} platform (price book applied). Without a
    pricebook this is the submitted problem itself. *)
val problem : t -> Problem.t

(** The problem as submitted, with its original platform prices —
    what a service re-compiles under a different scenario. *)
val source_problem : t -> Problem.t

(** The objective family this instance was compiled for (baked into
    the canonical encoding). [`Min_cost] without a scenario. *)
val objective_kind : t -> Objective.kind

(** The price book baked in at compile time, if any. *)
val pricebook : t -> Pricebook.t option

(** [for_solve ~who ?objective ?pricebook ?instance ?problem ()]
    resolves the shared [?instance]/[?problem] calling convention of
    the engine entry points: exactly one of the two must be given.
    [~problem] compiles it under the scenario formed by [?objective]
    (default min-cost) and [?pricebook]; [~instance] is returned as-is
    after checking that [?pricebook] is absent (a compiled instance
    already baked its book) and that [?objective]'s kind matches the
    instance's.
    @raise Invalid_argument on any violation, prefixed with [who]. *)
val for_solve :
  who:string ->
  ?objective:Objective.t ->
  ?pricebook:Pricebook.t ->
  ?instance:t ->
  ?problem:Problem.t ->
  unit ->
  t

(** Number of surviving recipes [J'] (compact index space; [<= J]). *)
val num_recipes : t -> int

val num_types : t -> int

(** [original_index t j] maps a compact index to the problem's
    numbering. *)
val original_index : t -> int -> int

(** Dominated recipes as [(dropped, dominator)] pairs in original
    numbering; the dominator always survives. *)
val dropped : t -> (int * int) list

(** Number of recipes removed by dominance preprocessing. *)
val num_pruned : t -> int

val support : t -> int -> support

(** [count t j q] is [n^j_q] for compact [j]. *)
val count : t -> int -> int -> int

(** [type_cost t q] is [c_q]. *)
val type_cost : t -> int -> int

(** [type_throughput t q] is [r_q]. *)
val type_throughput : t -> int -> int

(** Structure flags of the {e pruned} problem, precomputed at compile
    time (§ V routing). Pruning can only unlock structure — e.g. a
    shared-types problem whose sharing recipes are all dominated
    becomes disjoint — and routing on the pruned structure is sound
    because the pruned problem has the same optimal cost. *)
val is_blackbox : t -> bool

val is_disjoint : t -> bool

(** [single_cost t ~j ~target] is the § IV-A closed form
    [Σ_q c_q·⌈n^j_q·target / r_q⌉] over the support of compact recipe
    [j] — the cost of routing the whole target through [j]. *)
val single_cost : t -> j:int -> target:int -> int

(** [unit_cost t j] is the fluid (LP-relaxed) cost of one unit of
    throughput on compact recipe [j]: [Σ_q n^j_q·c_q / r_q]. A lower
    bound on the marginal cost of recipe [j]. *)
val unit_cost : t -> int -> Numeric.Rat.t

(** [fluid_lower_bound t ~target] is
    [⌈target · min_j unit_cost j⌉] — a valid lower bound on the
    optimal cost, from the LP relaxation with the capacity ceilings
    dropped. *)
val fluid_lower_bound : t -> target:int -> int

(** [fluid_upper_target t ~budget] is [⌊budget / min_j unit_cost j⌋] —
    an upper bound on any throughput achievable within [budget], from
    the same LP relaxation as {!fluid_lower_bound}. The initial upper
    bracket of the max-throughput binary search ({!Solver.run}). [0]
    when the instance has no recipes.
    @raise Invalid_argument when [budget < 0]. *)
val fluid_upper_target : t -> budget:int -> int

(** [expand_rho t rho] maps a compact split (length [J']) to the
    original numbering (length [J], zeros for dropped recipes). *)
val expand_rho : t -> int array -> int array

(** {1 Structural fingerprinting}

    Two problems that differ only by a renumbering of task types or a
    reordering of recipes describe the same optimization (costs, rates
    and [n^j_q] rows are permutations of each other), so a solution of
    one transfers to the other by applying the permutation. The
    canonical encoding below quotients out those renamings: types are
    ordered by [(c_q, r_q, sorted column multiset)] refined by their
    actual columns, recipes lexicographically by their reordered rows.
    The encoding fully describes the pruned cost structure, so {e equal
    encodings always mean equivalent problems} — a cache keyed on them
    can never serve a wrong answer. The converse is best-effort: highly
    automorphic instances whose types tie on every refinement key may
    canonicalize differently under different input orders, which costs
    a missed cache share, never a wrong one. *)

(** [canonical_encoding t] is the canonical textual form of the pruned
    cost structure (type count, recipe count, per-type [(c, r)] pairs
    and [n^j_q] rows, all in canonical order). *)
val canonical_encoding : t -> string

(** [fingerprint t] is the hex digest of {!canonical_encoding} — a
    compact cache key. Equal fingerprints imply equal encodings up to
    digest collision; cache layers that must rule even that out compare
    the encodings on hit. *)
val fingerprint : t -> string

(** [canonical_recipe_order t] maps canonical recipe slots to compact
    recipe indices: slot [i] of the canonical form is compact recipe
    [(canonical_recipe_order t).(i)]. A split cached in canonical order
    transfers to any instance with the same encoding through its own
    order array. *)
val canonical_recipe_order : t -> int array

(** Incremental cost oracle: mutable loads/machines/cost state over
    the compact index space. {!apply} pushes onto an undo log;
    {!undo} pops (LIFO), restoring the previous state exactly —
    machine counts are a deterministic function of the loads, so
    replaying the inverse delta is exact. *)
module Oracle : sig
  type t

  (** Fresh oracle at the all-zero split (cost 0). *)
  val create : instance -> t

  (** [reset o ~rho] rebuilds the state from scratch for a compact
      split (length [J']) and clears the undo log.
      [O(Σ_j |supp(j)|)].
      @raise Invalid_argument on a wrong-sized or negative [rho]. *)
  val reset : t -> rho:int array -> unit

  (** Current total rental cost [Σ_q x_q·c_q]. O(1). *)
  val cost : t -> int

  (** [rho_at o j] is the current throughput of compact recipe [j]. *)
  val rho_at : t -> int -> int

  (** Copy of the current compact split. *)
  val rho : t -> int array

  (** Copy of the current per-type loads. *)
  val loads : t -> int array

  (** Copy of the current minimal machine counts. *)
  val machines : t -> int array

  (** [apply o ~j ~drho] adds [drho] to [ρ_j] and re-prices exactly
      [supp(j)]: [O(|supp(j)|)]. The delta is pushed on the undo log.
      @raise Invalid_argument when the move would make [ρ_j]
      negative. *)
  val apply : t -> j:int -> drho:int -> unit

  (** Reverts the most recent un-undone {!apply}.
      @raise Invalid_argument on an empty log. *)
  val undo : t -> unit

  (** Number of un-undone applies on the log. *)
  val depth : t -> int

  (** Accept the current state: clears the undo log (so walks that
      keep every move do not grow it without bound). *)
  val commit : t -> unit

  (** The current state as a full {!Allocation.t} in original recipe
      numbering (recomputed through {!Allocation.of_rho}, which also
      revalidates the state at the boundary). *)
  val allocation : t -> Allocation.t
end
