(** What a solve optimizes — the scenario axis that flips the paper's
    question around.

    The paper fixes one objective: reach a target throughput [ρ] at
    minimum rental cost ([Min_cost]). The budget-constrained dual from
    the related work inverts it: spend at most a monetary [budget] and
    maximize the throughput ([Max_throughput]). Both are carried by
    one value so every layer — {!Instance.compile}, {!Solver.run},
    the service cache keys, the wire protocol — threads the scenario
    without engine-specific plumbing.

    The two objectives are duals over the same monotone cost curve:
    the optimal min-cost [c(t)] is nondecreasing in [t], so the
    optimal dual throughput is the largest [t] with [c(t) <= budget],
    which {!Solver.run} finds by binary search over min-cost solves
    (bracketed by the fluid bound). *)

type t =
  | Min_cost of { target : int }
      (** reach [target] throughput at minimum rental cost (the
          paper's problem) *)
  | Max_throughput of { budget : int }
      (** maximize throughput with total rental cost [<= budget] *)

(** The objective family, without its scalar. Baked into the canonical
    instance encoding so caches can never serve one objective's answer
    to the other. *)
type kind = [ `Min_cost | `Max_throughput ]

(** @raise Invalid_argument when [target < 0]. *)
val min_cost : target:int -> t

(** @raise Invalid_argument when [budget < 0]. *)
val max_throughput : budget:int -> t

val kind : t -> kind

(** The objective's scalar: the target of a [Min_cost], the monetary
    budget of a [Max_throughput]. What the service cache keys on
    (alongside the objective-tagged fingerprint). *)
val scalar : t -> int

(** ["min-cost"] / ["max-throughput"] — the CLI and wire spelling. *)
val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val pp : Format.formatter -> t -> unit
