module R = Numeric.Rat

(* The Fix64-first driver: run the solve on the native-int fast kernel
   and transparently restart it on exact Rat when the fast kernel
   overflows. Kernels agree bit-for-bit wherever they complete (see
   Numeric.Kernel), so which kernel answered is unobservable in the
   result — only in the counters below and the [lp.kernel] span
   attribute. *)
let fast_solves_counter = Telemetry.counter Telemetry.numeric_fast_solves
let fallbacks_counter = Telemetry.counter Telemetry.numeric_fallbacks

let with_rat_fallback ~fast ~exact =
  match fast () with
  | result ->
    Telemetry.bump fast_solves_counter;
    result
  | exception Numeric.Kernel.Overflow ->
    Telemetry.bump fallbacks_counter;
    exact ()

type outcome = {
  allocation : Allocation.t option;
  proved_optimal : bool;
  status : Milp.Solver.status;
  best_bound : int option;
  nodes : int;
  elapsed : float;
}

let ceil_div a b = (a + b - 1) / b

(* The MILP is built over the dominance-pruned compact recipe space:
   one ρ column per surviving recipe. Dominated columns are never
   cheaper at equal throughput (see Instance), so dropping them leaves
   the optimal value of both the MILP and its LP relaxation
   unchanged while shrinking the tableau. *)
let model_on ?budget_cap instance ~target =
  if target < 0 then invalid_arg "Ilp.model: negative target";
  (match budget_cap with
   | Some cap when cap < 0 -> invalid_arg "Ilp.model: negative budget cap"
   | _ -> ());
  let j_count = Instance.num_recipes instance in
  let q_count = Instance.num_types instance in
  let m = Lp.Model.create () in
  let rho_vars =
    Array.init j_count (fun j -> Lp.Model.add_var m ~name:(Printf.sprintf "rho_%d" j))
  in
  let x_vars =
    Array.init q_count (fun q -> Lp.Model.add_var m ~name:(Printf.sprintf "x_%d" q))
  in
  (* Σ_j ρ_j >= ρ  (constraint (1) of the paper) *)
  let total =
    Lp.Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, R.one)) rho_vars))
  in
  Lp.Model.add_constraint m ~name:"throughput" total Lp.Model.Ge (R.of_int target);
  (* Per type: x_q·r_q - Σ_j n^j_q·ρ_j >= 0  (constraint (2)) *)
  for q = 0 to q_count - 1 do
    let terms =
      (x_vars.(q), R.of_int (Instance.type_throughput instance q))
      :: List.filter_map
           (fun j ->
             let n = Instance.count instance j q in
             if n = 0 then None else Some (rho_vars.(j), R.of_int (-n)))
           (List.init j_count Fun.id)
    in
    Lp.Model.add_constraint m
      ~name:(Printf.sprintf "capacity_%d" q)
      (Lp.Linexpr.of_terms terms)
      Lp.Model.Ge R.zero
  done;
  (* Valid tightening bounds: some optimum has ρ_j <= ρ and therefore
     x_q <= ⌈max_j n^j_q · ρ / r_q⌉ (see DESIGN.md). As *variable*
     bounds they cost no tableau rows under the bounded engine. *)
  Array.iter (fun v -> Lp.Model.tighten_upper m v (R.of_int target)) rho_vars;
  for q = 0 to q_count - 1 do
    let nmax = ref 0 in
    for j = 0 to j_count - 1 do
      nmax := max !nmax (Instance.count instance j q)
    done;
    let ub = ceil_div (!nmax * target) (Instance.type_throughput instance q) in
    Lp.Model.tighten_upper m x_vars.(q) (R.of_int ub)
  done;
  let objective =
    Lp.Linexpr.of_terms
      (Array.to_list
         (Array.mapi (fun q v -> (v, R.of_int (Instance.type_cost instance q))) x_vars))
  in
  Lp.Model.set_objective m Lp.Model.Minimize objective;
  (* Budget-feasibility cut: Σ c_q·x_q <= cap. Turns the model into
     the feasibility probe of the max-throughput binary search —
     Infeasible here means exactly "target is unreachable within the
     budget". *)
  (match budget_cap with
   | Some cap ->
     Lp.Model.add_constraint m ~name:"budget" objective Lp.Model.Le (R.of_int cap)
   | None -> ());
  (m, Array.to_list rho_vars @ Array.to_list x_vars)

let model ?budget_cap ?pricebook ?instance ?problem ~target () =
  let instance =
    Instance.for_solve ~who:"Ilp.model" ?pricebook ?instance ?problem ()
  in
  model_on ?budget_cap instance ~target

let decode instance solution =
  let j_count = Instance.num_recipes instance in
  let q_count = Instance.num_types instance in
  let values = solution.Milp.Solver.values in
  let to_int v =
    (* Integrality is enforced by the solver; exact rationals make the
       conversion lossless. *)
    Numeric.Bigint.to_int_exn (R.num values.(v))
  in
  let rho = Instance.expand_rho instance (Array.init j_count to_int) in
  let machines = Array.init q_count (fun q -> to_int (j_count + q)) in
  Allocation.make (Instance.problem instance) ~rho ~machines

(* Whether [alloc] is usable as an initial MILP incumbent for this
   instance and target: feasible, representable in the compact column
   space (no throughput on pruned recipes) and inside the model's
   tightening bounds (each ρ_j <= target; minimal machines then stay
   under the x_q bounds whenever Σρ_j = target). *)
let valid_incumbent instance ~target alloc =
  let problem = Instance.problem instance in
  let rho = alloc.Allocation.rho in
  Array.length rho = Problem.num_recipes problem
  && Allocation.feasible problem ~target alloc
  && List.for_all (fun (j', _) -> rho.(j') = 0) (Instance.dropped instance)
  && Array.for_all (fun r -> r <= target) rho
  && begin
    let minimal = Allocation.of_rho problem ~rho in
    let within = ref true in
    for q = 0 to Instance.num_types instance - 1 do
      let nmax = ref 0 in
      for j = 0 to Instance.num_recipes instance - 1 do
        nmax := max !nmax (Instance.count instance j q)
      done;
      let ub = ceil_div (!nmax * target) (Instance.type_throughput instance q) in
      if minimal.Allocation.machines.(q) > ub then within := false
    done;
    !within
  end

let optimize ?time_limit ?node_limit ?(strategy = Milp.Solver.Best_bound)
    ?(warm_start = true) ?incumbent ?(cut_rounds = 0) ?budget_cap ?pricebook
    ?instance ?problem ~target () =
  let instance =
    Instance.for_solve ~who:"Ilp.optimize" ?pricebook ?instance ?problem ()
  in
  let t0 = Unix.gettimeofday () in
  let model, integer =
    Telemetry.Span.with_span "ilp.build" (fun () ->
        model_on ?budget_cap instance ~target)
  in
  let j_count = Instance.num_recipes instance in
  let q_count = Instance.num_types instance in
  let point_of alloc =
    (* Machines re-minimized through the closed form, so the point
       satisfies the capacity rows with the smallest x_q. *)
    let a = Allocation.of_rho (Instance.problem instance) ~rho:alloc.Allocation.rho in
    Array.init (j_count + q_count) (fun i ->
        if i < j_count then
          R.of_int a.Allocation.rho.(Instance.original_index instance i)
        else R.of_int a.Allocation.machines.(i - j_count))
  in
  (* With a budget row in the model, a warm point whose (re-minimized)
     cost exceeds the cap is infeasible and Milp.Solver.solve rejects
     it outright — drop it and start cold instead. *)
  let within_cap a =
    match budget_cap with
    | None -> true
    | Some cap ->
      let minimal =
        Allocation.of_rho (Instance.problem instance) ~rho:a.Allocation.rho
      in
      minimal.Allocation.cost <= cap
  in
  (* Seed the branch-and-bound with a known feasible point: its cost is
     an upper cutoff that prunes most of the tree (the role played by
     Gurobi's internal primal heuristics in the paper's runs). A
     caller-supplied incumbent (a cached or previous-period solution)
     is used directly when valid; otherwise the H32Jump warm-up runs.
     The warm-up shares this solve's deadline, so a capped run cannot
     overshoot it warming up; whatever it produces — at worst the H1
     floor — still seeds the search. *)
  let warm =
    match incumbent with
    | Some a when valid_incumbent instance ~target a && within_cap a ->
      Some (point_of a)
    | _ ->
      if not warm_start then None
      else
        Telemetry.Span.with_span "ilp.warmup" (fun () ->
            let budget =
              match time_limit with
              | Some d -> Budget.deadline (Float.max 0.0 d)
              | None -> Budget.unlimited
            in
            let res =
              Heuristics.search ~budget ~rng:(Numeric.Prng.create 0x5EED)
                ~instance Heuristics.H32_jump ~target
            in
            if within_cap res.Heuristics.allocation then
              Some (point_of res.Heuristics.allocation)
            else None)
  in
  let priority =
    [ List.init j_count Fun.id; List.init q_count (fun q -> j_count + q) ]
  in
  (* Charge warm-up time against the wall-clock budget. *)
  let time_limit =
    Option.map
      (fun d -> Float.max 0.0 (d -. (Unix.gettimeofday () -. t0)))
      time_limit
  in
  let result =
    with_rat_fallback
      ~fast:(fun () ->
        Milp.Solver.Fast.solve ?time_limit ?node_limit ~integral_objective:true
          ~strategy ?warm_start:warm ~priority ~cut_rounds model ~integer)
      ~exact:(fun () ->
        (* Charge the overflowed fast attempt against the same
           wall-clock budget so a capped solve still honours it. *)
        let time_limit =
          Option.map
            (fun d -> Float.max 0.0 (d -. (Unix.gettimeofday () -. t0)))
            time_limit
        in
        Milp.Solver.solve ?time_limit ?node_limit ~integral_objective:true
          ~strategy ?warm_start:warm ~priority ~cut_rounds model ~integer)
  in
  let allocation = Option.map (decode instance) result.Milp.Solver.solution in
  let best_bound =
    Option.map
      (fun b -> Numeric.Bigint.to_int_exn (R.ceil b))
      result.Milp.Solver.best_bound
  in
  { allocation;
    proved_optimal = result.Milp.Solver.status = Milp.Solver.Optimal;
    status = result.Milp.Solver.status;
    best_bound;
    nodes = result.Milp.Solver.nodes;
    elapsed = Unix.gettimeofday () -. t0 }

let lp_lower_bound problem ~target =
  let m, _ = model_on (Instance.compile problem) ~target in
  let relaxation =
    with_rat_fallback
      ~fast:(fun () -> Lp.Simplex.Fast.solve m)
      ~exact:(fun () -> Lp.Simplex.solve m)
  in
  match relaxation with
  | Lp.Simplex.Optimal { objective; _ } -> Numeric.Bigint.to_int_exn (R.ceil objective)
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
    (* The MILP is always feasible (rent enough machines) and bounded
       below by zero. *)
    assert false
