(** A solve scenario: {e what} to optimize ({!Objective}) under
    {e which} prices ({!Pricebook}).

    The scenario is compiled into an {!Instance.t} once
    ([Instance.compile ?scenario]): the price book rewrites [c_q], the
    objective kind is baked into the canonical encoding (so cache keys
    distinguish the two objective families), and from there every
    engine, the incremental oracle and the service ladder see the
    scenario for free. A missing pricebook means the problem's own
    platform prices; the default scenario — min-cost, no book — is
    exactly the paper's setting and compiles bit-identically to the
    historical [Instance.compile problem]. *)

type t = {
  objective : Objective.t;
  pricebook : Pricebook.t option;  (** [None] = the platform's own prices *)
}

val make : objective:Objective.t -> ?pricebook:Pricebook.t -> unit -> t

(** [min_cost ~target ()] is the paper's scenario.
    @raise Invalid_argument when [target < 0]. *)
val min_cost : ?pricebook:Pricebook.t -> target:int -> unit -> t

(** @raise Invalid_argument when [budget < 0]. *)
val max_throughput : ?pricebook:Pricebook.t -> budget:int -> unit -> t

val objective : t -> Objective.t

val pricebook : t -> Pricebook.t option

val pp : Format.formatter -> t -> unit
