(** Multi-cloud price books over one set of machine types — the second
    scenario axis.

    The paper prices every machine type from a single {!Platform}
    vector [c_q]. Real provisioning shops across providers and
    regions, each with its own list price per type, plus discount
    tiers (reserved, spot) quoted as a percentage of list price. A
    [Pricebook.t] is a non-empty set of named {e books}; every book
    prices {e all} the types (same index space as the platform) and
    carries an optional region label and any number of discount tiers.
    An implicit ["on-demand"] tier at 100% always applies, so a book
    without tiers is just its list-price vector.

    The {e effective} per-type cost is the cheapest (book, tier) pair:
    [min_b min_t ⌈price_b(q)·pct_t / 100⌉] (never below 1 — platform
    costs are strictly positive). {!apply} rewrites a platform with
    the effective costs, which is how {!Instance.compile} bakes a
    price book into [c_q]: every engine, the incremental
    {!Instance.Oracle} and the canonical fingerprint then price with
    multi-cloud costs for free. A single book with no tiers
    degenerates to exactly today's platform vector ({!of_platform}),
    and books that all share one price vector compile bit-identically
    to the single-cloud instance. *)

(** A discount tier: rent at [percent]% of the book's list price. *)
type tier = {
  tier_name : string;
  percent : int;  (** of list price; strictly positive *)
}

type book = {
  book_name : string;
  region : string option;  (** provider region, informational *)
  prices : int array;  (** list price per machine type, length [Q] *)
  tiers : tier list;  (** on top of the implicit on-demand 100% tier *)
}

(** Where one machine type's effective price comes from. *)
type sourcing = {
  src_book : string;
  src_region : string option;
  src_tier : string;  (** ["on-demand"] or a declared tier name *)
  src_cost : int;  (** the effective cost *)
}

type t

(** [create books] validates a non-empty book list: positive prices
    and tier percents, equal price-vector lengths.
    @raise Invalid_argument otherwise. *)
val create : book list -> t

(** [of_platform platform] is the degenerate single-book pricebook
    quoting exactly the platform's cost vector (no region, no
    discount tiers). [Instance.compile] with this book is
    bit-identical to a compile without any pricebook. *)
val of_platform : ?name:string -> Platform.t -> t

val num_books : t -> int

(** Number of machine types every book prices (= [Platform.num_types]
    of any platform it can {!apply} to). *)
val num_types : t -> int

val books : t -> book list

(** [effective_cost t q] is the cheapest rental cost for one machine
    of type [q] across every book and tier. *)
val effective_cost : t -> int -> int

(** [sourcing t q] is the provenance of {!effective_cost}: which book,
    region and tier the type is cheapest from. Ties resolve to the
    first book in declaration order, on-demand before discount tiers.
    @raise Invalid_argument on an out-of-range type. *)
val sourcing : t -> int -> sourcing

(** [apply t platform] reprices the platform with the effective costs
    (throughputs unchanged).
    @raise Invalid_argument when the type counts disagree. *)
val apply : t -> Platform.t -> Platform.t

(** {1 Text format}

    Line-oriented, [#] starts a comment, keywords case-insensitive:

    {v
    pricebook version 1        # optional; version 1 implied
    book us-east
      region us-east-1         # optional
      price 0 10               # price <type> <cost>, one per type
      price 1 18
      tier reserved 70         # tier <name> <percent-of-list>
    book eu-spot
      …
    v}

    Unknown versions are rejected with a message naming the supported
    versions, so future fields stay forward-compatible. *)

(** @raise Failure with a line-numbered message on malformed input or
    an unsupported version. *)
val of_string : string -> t

(** [of_string (to_string t)] reconstructs an equivalent pricebook. *)
val to_string : t -> string

val load : string -> t

val save : string -> t -> unit

val pp : Format.formatter -> t -> unit
