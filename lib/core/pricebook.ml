type tier = {
  tier_name : string;
  percent : int;
}

type book = {
  book_name : string;
  region : string option;
  prices : int array;
  tiers : tier list;
}

type sourcing = {
  src_book : string;
  src_region : string option;
  src_tier : string;
  src_cost : int;
}

type t = book array

let ceil_div a b = (a + b - 1) / b

let on_demand = { tier_name = "on-demand"; percent = 100 }

let validate_book b =
  if String.trim b.book_name = "" then
    invalid_arg "Pricebook.create: empty book name";
  Array.iter
    (fun p ->
      if p <= 0 then
        invalid_arg
          (Printf.sprintf "Pricebook.create: book %S has a non-positive price"
             b.book_name))
    b.prices;
  List.iter
    (fun t ->
      if t.percent <= 0 then
        invalid_arg
          (Printf.sprintf
             "Pricebook.create: tier %S of book %S has a non-positive percent"
             t.tier_name b.book_name))
    b.tiers

let create books =
  let books = Array.of_list books in
  if Array.length books = 0 then invalid_arg "Pricebook.create: no books";
  let n = Array.length books.(0).prices in
  if n = 0 then invalid_arg "Pricebook.create: empty price vector";
  Array.iter
    (fun b ->
      validate_book b;
      if Array.length b.prices <> n then
        invalid_arg
          (Printf.sprintf
             "Pricebook.create: book %S prices %d types, expected %d"
             b.book_name (Array.length b.prices) n))
    books;
  Array.map (fun b -> { b with prices = Array.copy b.prices }) books

let of_platform ?(name = "on-demand") platform =
  create
    [
      {
        book_name = name;
        region = None;
        prices =
          Array.init (Platform.num_types platform) (Platform.cost platform);
        tiers = [];
      };
    ]

let num_books t = Array.length t
let num_types t = Array.length t.(0).prices
let books t = Array.to_list t

(* A tier price never drops below 1: Platform costs are strictly
   positive, so a 99%-off spot tier still rents at a unit price. *)
let tier_price base tier = max 1 (ceil_div (base * tier.percent) 100)

(* The cheapest (book, tier) for one machine type, scanning books in
   declaration order and, within a book, on-demand before the discount
   tiers — so ties resolve deterministically towards the first, least
   surprising source. *)
let sourcing t q =
  if q < 0 || q >= num_types t then invalid_arg "Pricebook.sourcing: bad type";
  let best = ref None in
  Array.iter
    (fun b ->
      List.iter
        (fun tier ->
          let c = tier_price b.prices.(q) tier in
          match !best with
          | Some s when s.src_cost <= c -> ()
          | _ ->
            best :=
              Some
                {
                  src_book = b.book_name;
                  src_region = b.region;
                  src_tier = tier.tier_name;
                  src_cost = c;
                })
        (on_demand :: b.tiers))
    t;
  Option.get !best

let effective_cost t q = (sourcing t q).src_cost

let apply t platform =
  if num_types t <> Platform.num_types platform then
    invalid_arg
      (Printf.sprintf
         "Pricebook.apply: pricebook covers %d types, platform has %d"
         (num_types t)
         (Platform.num_types platform));
  Platform.create
    (Array.init (num_types t) (fun q ->
         {
           Platform.cost = effective_cost t q;
           throughput = Platform.throughput platform q;
         }))

(* --- text format --- *)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "pricebook version 1\n";
  Array.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "book %s\n" b.book_name);
      (match b.region with
       | Some r -> Buffer.add_string buf (Printf.sprintf "  region %s\n" r)
       | None -> ());
      Array.iteri
        (fun q p -> Buffer.add_string buf (Printf.sprintf "  price %d %d\n" q p))
        b.prices;
      List.iter
        (fun tier ->
          Buffer.add_string buf
            (Printf.sprintf "  tier %s %d\n" tier.tier_name tier.percent))
        b.tiers)
    t;
  Buffer.contents buf

type partial_book = {
  pb_name : string;
  mutable pb_region : string option;
  mutable pb_prices : (int * int) list;  (* (type, price), reversed *)
  mutable pb_tiers : tier list;  (* reversed *)
}

let of_string text =
  let fail line msg =
    failwith (Printf.sprintf "Pricebook: line %d: %s" line msg)
  in
  let books = ref [] in
  let current = ref None in
  let parse_int line s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail line (Printf.sprintf "expected an integer, got %S" s)
  in
  let close () =
    match !current with
    | None -> ()
    | Some pb ->
      let n =
        List.fold_left (fun acc (q, _) -> max acc (q + 1)) 0 pb.pb_prices
      in
      let prices = Array.make (max n 1) 0 in
      List.iter (fun (q, p) -> prices.(q) <- p) pb.pb_prices;
      Array.iteri
        (fun q p ->
          if p = 0 then
            failwith
              (Printf.sprintf "Pricebook: book %S: missing price for type %d"
                 pb.pb_name q))
        prices;
      books :=
        {
          book_name = pb.pb_name;
          region = pb.pb_region;
          prices;
          tiers = List.rev pb.pb_tiers;
        }
        :: !books;
      current := None
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let no_comment =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let words =
        String.split_on_char ' '
          (String.map (fun c -> if c = '\t' then ' ' else c) no_comment)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | [ k; "version"; v ] when String.lowercase_ascii k = "pricebook" ->
        let v = parse_int line v in
        if v <> 1 then
          fail line
            (Printf.sprintf "unsupported pricebook version %d (supported: 1)" v)
      | k :: name when String.lowercase_ascii k = "book" ->
        (match name with
         | [ name ] ->
           close ();
           current :=
             Some
               { pb_name = name; pb_region = None; pb_prices = []; pb_tiers = [] }
         | _ -> fail line "'book' takes exactly one name")
      | [ k; r ] when String.lowercase_ascii k = "region" -> (
        match !current with
        | None -> fail line "'region' outside a book block"
        | Some pb -> pb.pb_region <- Some r)
      | [ k; q; p ] when String.lowercase_ascii k = "price" -> (
        match !current with
        | None -> fail line "'price' outside a book block"
        | Some pb ->
          let q = parse_int line q and p = parse_int line p in
          if q < 0 then fail line "negative type index";
          if List.mem_assoc q pb.pb_prices then
            fail line (Printf.sprintf "duplicate price for type %d" q);
          pb.pb_prices <- (q, p) :: pb.pb_prices)
      | [ k; name; pct ] when String.lowercase_ascii k = "tier" -> (
        match !current with
        | None -> fail line "'tier' outside a book block"
        | Some pb ->
          pb.pb_tiers <-
            { tier_name = name; percent = parse_int line pct } :: pb.pb_tiers)
      | w :: _ -> fail line (Printf.sprintf "unknown directive %S" w))
    (String.split_on_char '\n' text);
  close ();
  if !books = [] then failwith "Pricebook: no books declared";
  create (List.rev !books)

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun b ->
      Format.fprintf fmt "book %s%s: prices [%s]%s@," b.book_name
        (match b.region with Some r -> " (" ^ r ^ ")" | None -> "")
        (String.concat ";"
           (Array.to_list (Array.map string_of_int b.prices)))
        (match b.tiers with
         | [] -> ""
         | ts ->
           " tiers "
           ^ String.concat ","
               (List.map
                  (fun t -> Printf.sprintf "%s@%d%%" t.tier_name t.percent)
                  ts)))
    t;
  Format.fprintf fmt "@]"
