type spec =
  | Exact_ilp
  | Dp_blackbox
  | Dp_disjoint
  | Exhaustive
  | Heuristic of Heuristics.name
  | Auto

let spec_to_string = function
  | Exact_ilp -> "ilp"
  | Dp_blackbox -> "dp-blackbox"
  | Dp_disjoint -> "dp-disjoint"
  | Exhaustive -> "exhaustive"
  | Heuristic n -> String.lowercase_ascii (Heuristics.name_to_string n)
  | Auto -> "auto"

let spec_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "ilp" -> Some Exact_ilp
  | "dp-blackbox" -> Some Dp_blackbox
  | "dp" | "dp-disjoint" -> Some Dp_disjoint
  | "exhaustive" -> Some Exhaustive
  | "h0" -> Some (Heuristic Heuristics.H0)
  | "h1" -> Some (Heuristic Heuristics.H1)
  | "h2" -> Some (Heuristic Heuristics.H2)
  | "h31" -> Some (Heuristic Heuristics.H31)
  | "h32" -> Some (Heuristic Heuristics.H32)
  | "h32jump" -> Some (Heuristic Heuristics.H32_jump)
  | _ -> None

type status = Optimal | Feasible | Budget_exhausted | Infeasible

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | Budget_exhausted -> "budget-exhausted"
  | Infeasible -> "infeasible"

type telemetry = {
  engine : spec;
  wall_time : float;
  evaluations : int;
  pivots : int;
  nodes : int;
}

type outcome = {
  status : status;
  allocation : Allocation.t option;
  telemetry : telemetry;
}

let auto_spec problem =
  if Problem.is_blackbox problem then Dp_blackbox
  else if Problem.is_disjoint problem then Dp_disjoint
  else Exact_ilp

(* When the ILP exhausts its budget with no incumbent at all, degrade
   to the best heuristic reachable in whatever budget remains. H32Jump
   under an already-expired budget collapses to the H1 floor, which
   always completes, so this stage cannot come back empty. *)
let heuristic_fallback ~budget ~rng ~params ~t0 problem ~target =
  let budget = Budget.remaining budget ~elapsed:(Unix.gettimeofday () -. t0) in
  (Heuristics.run ~params ~budget ?rng Heuristics.H32_jump problem ~target)
    .Heuristics.allocation

let run_engine ~budget ~rng ~params ~t0 engine problem ~target =
  match engine with
  | Auto -> assert false (* resolved by [solve] *)
  | Dp_blackbox -> (Optimal, Some (Dp_blackbox.solve problem ~target))
  | Dp_disjoint -> (Optimal, Some (Dp_disjoint.solve problem ~target))
  | Exhaustive -> (Optimal, Some (Exhaustive.solve problem ~target))
  | Exact_ilp ->
    let o =
      Ilp.solve ?time_limit:budget.Budget.deadline
        ?node_limit:budget.Budget.node_cap problem ~target
    in
    (match (o.Ilp.status, o.Ilp.allocation) with
     | Milp.Solver.Optimal, (Some _ as a) -> (Optimal, a)
     | Milp.Solver.Feasible, (Some _ as a) -> (Budget_exhausted, a)
     | Milp.Solver.Infeasible, _ -> (Infeasible, None)
     | (Milp.Solver.Unknown | Milp.Solver.Unbounded), _ | _, None ->
       (* Budget expired before any integer point (the rental MILP is
          never unbounded): degrade to a heuristic incumbent. *)
       ( Budget_exhausted,
         Some (heuristic_fallback ~budget ~rng ~params ~t0 problem ~target) ))
  | Heuristic name ->
    let r = Heuristics.run ~params ~budget ?rng name problem ~target in
    ( (if r.Heuristics.exhausted then Budget_exhausted else Feasible),
      Some r.Heuristics.allocation )

let solve ?(budget = Budget.unlimited) ?rng ?(params = Heuristics.default_params)
    ~spec problem ~target =
  if target < 0 then invalid_arg "Solver.solve: negative target";
  let t0 = Unix.gettimeofday () in
  let evals0 = Telemetry.value Telemetry.heuristic_evals in
  let pivots0 = Telemetry.value Telemetry.lp_pivots in
  let nodes0 = Telemetry.value Telemetry.milp_nodes in
  let engine = match spec with Auto -> auto_spec problem | s -> s in
  let status, allocation = run_engine ~budget ~rng ~params ~t0 engine problem ~target in
  let telemetry =
    { engine;
      wall_time = Unix.gettimeofday () -. t0;
      evaluations = Telemetry.value Telemetry.heuristic_evals - evals0;
      pivots = Telemetry.value Telemetry.lp_pivots - pivots0;
      nodes = Telemetry.value Telemetry.milp_nodes - nodes0 }
  in
  { status; allocation; telemetry }

let pp_outcome fmt o =
  Format.fprintf fmt "@[<v>%s via %s in %.3f s" (status_to_string o.status)
    (spec_to_string o.telemetry.engine)
    o.telemetry.wall_time;
  if o.telemetry.nodes > 0 then Format.fprintf fmt ", %d nodes" o.telemetry.nodes;
  if o.telemetry.pivots > 0 then
    Format.fprintf fmt ", %d pivots" o.telemetry.pivots;
  if o.telemetry.evaluations > 0 then
    Format.fprintf fmt ", %d evaluations" o.telemetry.evaluations;
  (match o.allocation with
   | Some a -> Format.fprintf fmt "@,%a" Allocation.pp a
   | None -> Format.fprintf fmt "@,(no allocation)");
  Format.fprintf fmt "@]"
