type spec =
  | Exact_ilp
  | Dp_blackbox
  | Dp_disjoint
  | Exhaustive
  | Heuristic of Heuristics.name
  | Auto

let spec_to_string = function
  | Exact_ilp -> "ilp"
  | Dp_blackbox -> "dp-blackbox"
  | Dp_disjoint -> "dp-disjoint"
  | Exhaustive -> "exhaustive"
  | Heuristic n -> String.lowercase_ascii (Heuristics.name_to_string n)
  | Auto -> "auto"

let spec_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "ilp" -> Some Exact_ilp
  | "dp-blackbox" -> Some Dp_blackbox
  | "dp" | "dp-disjoint" -> Some Dp_disjoint
  | "exhaustive" -> Some Exhaustive
  | "h0" -> Some (Heuristic Heuristics.H0)
  | "h1" -> Some (Heuristic Heuristics.H1)
  | "h2" -> Some (Heuristic Heuristics.H2)
  | "h31" -> Some (Heuristic Heuristics.H31)
  | "h32" -> Some (Heuristic Heuristics.H32)
  | "h32jump" -> Some (Heuristic Heuristics.H32_jump)
  | _ -> None

type status = Optimal | Feasible | Budget_exhausted | Infeasible

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | Budget_exhausted -> "budget-exhausted"
  | Infeasible -> "infeasible"

let wall_hist =
  Telemetry.histogram Telemetry.solver_wall_seconds
    ~bounds:[| 0.0001; 0.001; 0.01; 0.1; 1.0; 10.0 |]

type telemetry = {
  engine : spec;
  wall_time : float;
  evaluations : int;
  pivots : int;
  nodes : int;
  pruned_recipes : int;
  warm_started : bool;
}

type outcome = {
  status : status;
  allocation : Allocation.t option;
  throughput : int;
  telemetry : telemetry;
  convergence : Telemetry.Progress.event list;
}

(* Collect the convergence timeline emitted by the engines while [f]
   runs. Skipped entirely when telemetry is off — the emitters are
   no-ops then, so collecting would only cost the clock reads. *)
let collected f =
  if Telemetry.enabled () then Telemetry.Progress.collect f else (f (), [])

let sum_rho = function
  | None -> 0
  | Some a -> Array.fold_left ( + ) 0 a.Allocation.rho

(* Routing reads the structure flags precomputed at instance compile
   time — and therefore sees the *pruned* structure: a shared-types
   problem whose sharing recipes are all dominated routes to the
   cheaper DP, soundly (pruning preserves the optimal cost). *)
let auto_of_instance instance =
  if Instance.is_blackbox instance then Dp_blackbox
  else if Instance.is_disjoint instance then Dp_disjoint
  else Exact_ilp

let auto_spec problem = auto_of_instance (Instance.compile problem)

(* A caller-supplied warm start is usable when it is feasible for this
   target and routes nothing through a pruned recipe. It is then
   mapped to the compact index space and trimmed to Σρ = target
   exactly — surplus throughput is shed from the highest fluid
   unit-cost recipes first. Trimming keeps the split feasible (loads
   only drop) and puts it inside the search space every engine
   explores (the heuristics exchange throughput at constant Σρ, and
   the MILP bounds each ρ_j by the target). *)
let normalize_warm_start instance ~target alloc =
  let problem = Instance.problem instance in
  let rho = alloc.Allocation.rho in
  if
    Array.length rho <> Problem.num_recipes problem
    || (not (Allocation.feasible problem ~target alloc))
    || List.exists (fun (j', _) -> rho.(j') <> 0) (Instance.dropped instance)
  then None
  else begin
    let jc = Instance.num_recipes instance in
    let compact =
      Array.init jc (fun j -> rho.(Instance.original_index instance j))
    in
    let surplus = ref (Array.fold_left ( + ) 0 compact - target) in
    if !surplus > 0 then begin
      let order = Array.init jc Fun.id in
      Array.sort
        (fun a b ->
          Numeric.Rat.compare (Instance.unit_cost instance b)
            (Instance.unit_cost instance a))
        order;
      Array.iter
        (fun j ->
          if !surplus > 0 then begin
            let cut = min compact.(j) !surplus in
            compact.(j) <- compact.(j) - cut;
            surplus := !surplus - cut
          end)
        order
    end;
    Some compact
  end

(* When the ILP exhausts its budget with no incumbent at all, degrade
   to the best heuristic reachable in whatever budget remains. H32Jump
   under an already-expired budget collapses to the H1 floor, which
   always completes, so this stage cannot come back empty. *)
let heuristic_fallback ~budget ~rng ~params ~warm ~t0 instance ~target =
  Telemetry.Span.with_span "solver.fallback" (fun () ->
      let budget =
        Budget.remaining budget ~elapsed:(Unix.gettimeofday () -. t0)
      in
      (Heuristics.search ~params ~budget ?rng ?warm_start:warm ~instance
         Heuristics.H32_jump ~target)
        .Heuristics.allocation)

let run_engine ~budget ~rng ~params ~warm ~t0 engine instance ~target =
  match engine with
  | Auto -> assert false (* resolved by [solve] *)
  | Dp_blackbox -> (Optimal, Some (Dp_blackbox.run ~instance ~target ()))
  | Dp_disjoint -> (Optimal, Some (Dp_disjoint.run ~instance ~target ()))
  | Exhaustive -> (Optimal, Some (Exhaustive.run ~instance ~target ()))
  | Exact_ilp ->
    let incumbent =
      Option.map
        (fun c ->
          Allocation.of_rho (Instance.problem instance)
            ~rho:(Instance.expand_rho instance c))
        warm
    in
    let o =
      Ilp.optimize ?time_limit:budget.Budget.deadline
        ?node_limit:budget.Budget.node_cap ?incumbent ~instance ~target ()
    in
    (match (o.Ilp.status, o.Ilp.allocation) with
     | Milp.Solver.Optimal, (Some _ as a) -> (Optimal, a)
     | Milp.Solver.Feasible, (Some _ as a) -> (Budget_exhausted, a)
     | Milp.Solver.Infeasible, _ -> (Infeasible, None)
     | (Milp.Solver.Unknown | Milp.Solver.Unbounded), _ | _, None ->
       (* Budget expired before any integer point (the rental MILP is
          never unbounded): degrade to a heuristic incumbent. *)
       ( Budget_exhausted,
         Some (heuristic_fallback ~budget ~rng ~params ~warm ~t0 instance ~target)
       ))
  | Heuristic name ->
    let r =
      Heuristics.search ~params ~budget ?rng ?warm_start:warm ~instance name
        ~target
    in
    ( (if r.Heuristics.exhausted then Budget_exhausted else Feasible),
      Some r.Heuristics.allocation )

let min_cost_on ?(budget = Budget.unlimited) ?rng
    ?(params = Heuristics.default_params) ?warm_start ~spec instance ~target =
  if target < 0 then invalid_arg "Solver.run: negative target";
  let t0 = Unix.gettimeofday () in
  let evals0 = Telemetry.value Telemetry.heuristic_evals in
  let pivots0 = Telemetry.value Telemetry.lp_pivots in
  let nodes0 = Telemetry.value Telemetry.milp_nodes in
  let engine = match spec with Auto -> auto_of_instance instance | s -> s in
  let warm =
    match warm_start with
    | None -> None
    | Some a ->
      Telemetry.Span.with_span "solver.warm_start" (fun () ->
          normalize_warm_start instance ~target a)
  in
  let dispatch () =
    run_engine ~budget ~rng ~params ~warm ~t0 engine instance ~target
  in
  let (status, allocation), convergence =
    collected (fun () ->
        if not (Telemetry.enabled ()) then dispatch ()
        else
          Telemetry.Span.with_span
            ~attrs:
              [ ("engine", spec_to_string engine);
                ("target", string_of_int target);
                ("warm", if warm <> None then "true" else "false") ]
            "solver.solve" dispatch)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  Telemetry.observe wall_hist wall_time;
  let telemetry =
    { engine;
      wall_time;
      evaluations = Telemetry.value Telemetry.heuristic_evals - evals0;
      pivots = Telemetry.value Telemetry.lp_pivots - pivots0;
      nodes = Telemetry.value Telemetry.milp_nodes - nodes0;
      pruned_recipes = Instance.num_pruned instance;
      warm_started = warm <> None }
  in
  { status; allocation; throughput = sum_rho allocation; telemetry;
    convergence }

(* The all-zero split: cost 0, so always within any monetary budget —
   the trivially-feasible floor of the max-throughput search. *)
let zero_allocation instance =
  let problem = Instance.problem instance in
  Allocation.of_rho problem ~rho:(Array.make (Problem.num_recipes problem) 0)

(* Max-throughput via its dual: the optimal min-cost c(t) is
   nondecreasing in t, so the optimum is the largest t with
   c(t) <= money — found by binary search bracketed above by the fluid
   relaxation ([Instance.fluid_upper_target], a valid bound because
   the fluid cost lower-bounds the integer cost). Each probe asks "is
   throughput t reachable within money?": natively for the ILP (a
   budget-feasibility row, where Infeasible *proves* unreachability),
   by comparing the exact optimum against the cap for the DPs and the
   oracle, and by comparing the incumbent for heuristic engines —
   whose "no" is not a proof, hence status [Feasible] rather than
   [Optimal]. *)
let max_throughput_on ~budget ~rng ~params ~warm_start ~spec instance ~money =
  let t0 = Unix.gettimeofday () in
  let evals0 = Telemetry.value Telemetry.heuristic_evals in
  let pivots0 = Telemetry.value Telemetry.lp_pivots in
  let nodes0 = Telemetry.value Telemetry.milp_nodes in
  let engine = match spec with Auto -> auto_of_instance instance | s -> s in
  let exact_engine =
    match engine with
    | Exact_ilp | Dp_blackbox | Dp_disjoint | Exhaustive -> true
    | Heuristic _ -> false
    | Auto -> assert false
  in
  let probe_exhausted = ref false in
  let warm_used = ref false in
  let remaining () =
    Budget.remaining budget ~elapsed:(Unix.gettimeofday () -. t0)
  in
  (* [Some a]: proof that [target] is reachable within [money].
     [None]: unreachable — a proof for exact engines (modulo
     [probe_exhausted]), best-effort for heuristics. *)
  let probe target =
    let warm =
      match warm_start with
      | None -> None
      | Some a -> normalize_warm_start instance ~target a
    in
    if warm <> None then warm_used := true;
    let b = remaining () in
    match engine with
    | Auto -> assert false
    | Dp_blackbox ->
      let a = Dp_blackbox.run ~instance ~target () in
      if a.Allocation.cost <= money then Some a else None
    | Dp_disjoint ->
      let a = Dp_disjoint.run ~instance ~target () in
      if a.Allocation.cost <= money then Some a else None
    | Exhaustive ->
      let a = Exhaustive.run ~instance ~target () in
      if a.Allocation.cost <= money then Some a else None
    | Exact_ilp ->
      let incumbent =
        Option.map
          (fun c ->
            Allocation.of_rho (Instance.problem instance)
              ~rho:(Instance.expand_rho instance c))
          warm
      in
      let o =
        Ilp.optimize ?time_limit:b.Budget.deadline
          ?node_limit:b.Budget.node_cap ?incumbent ~budget_cap:money ~instance
          ~target ()
      in
      (match o.Ilp.allocation with
       | Some a -> Some a (* any incumbent satisfies the budget row *)
       | None ->
         (match o.Ilp.status with
          | Milp.Solver.Infeasible -> ()
          | _ -> probe_exhausted := true (* limit hit before a verdict *));
         None)
    | Heuristic name ->
      let r =
        Heuristics.search ~params ~budget:b ?rng ?warm_start:warm ~instance
          name ~target
      in
      let a = r.Heuristics.allocation in
      if a.Allocation.cost <= money then Some a
      else begin
        if r.Heuristics.exhausted then probe_exhausted := true;
        None
      end
  in
  let search () =
    let best = ref (zero_allocation instance) in
    let lo = ref 0 in
    let hi = ref (Instance.fluid_upper_target instance ~budget:money) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      match probe mid with
      | Some a ->
        best := a;
        lo := mid
      | None -> hi := mid - 1
    done;
    !best
  in
  let allocation, convergence =
    collected (fun () ->
        if not (Telemetry.enabled ()) then search ()
        else
          Telemetry.Span.with_span
            ~attrs:
              [ ("engine", spec_to_string engine);
                ("money", string_of_int money) ]
            "solver.max_throughput" search)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  Telemetry.observe wall_hist wall_time;
  let status =
    if !probe_exhausted then Budget_exhausted
    else if exact_engine then Optimal
    else Feasible
  in
  let telemetry =
    { engine;
      wall_time;
      evaluations = Telemetry.value Telemetry.heuristic_evals - evals0;
      pivots = Telemetry.value Telemetry.lp_pivots - pivots0;
      nodes = Telemetry.value Telemetry.milp_nodes - nodes0;
      pruned_recipes = Instance.num_pruned instance;
      warm_started = !warm_used }
  in
  { status;
    allocation = Some allocation;
    throughput = sum_rho (Some allocation);
    telemetry;
    convergence }

let run ?budget ?rng ?params ?warm_start ?(spec = Auto) ?pricebook ?instance
    ?problem ~objective () =
  let inst =
    Instance.for_solve ~who:"Solver.run" ~objective ?pricebook ?instance
      ?problem ()
  in
  match objective with
  | Objective.Min_cost { target } ->
    min_cost_on ?budget ?rng ?params ?warm_start ~spec inst ~target
  | Objective.Max_throughput { budget = money } ->
    let budget = Option.value budget ~default:Budget.unlimited in
    let params = Option.value params ~default:Heuristics.default_params in
    max_throughput_on ~budget ~rng ~params ~warm_start ~spec inst ~money

let pp_outcome fmt o =
  Format.fprintf fmt "@[<v>%s via %s in %.3f s" (status_to_string o.status)
    (spec_to_string o.telemetry.engine)
    o.telemetry.wall_time;
  if o.telemetry.nodes > 0 then Format.fprintf fmt ", %d nodes" o.telemetry.nodes;
  if o.telemetry.pivots > 0 then
    Format.fprintf fmt ", %d pivots" o.telemetry.pivots;
  if o.telemetry.evaluations > 0 then
    Format.fprintf fmt ", %d evaluations" o.telemetry.evaluations;
  if o.telemetry.pruned_recipes > 0 then
    Format.fprintf fmt ", %d recipes pruned" o.telemetry.pruned_recipes;
  if o.telemetry.warm_started then Format.fprintf fmt ", warm-started";
  (match o.allocation with
   | Some a -> Format.fprintf fmt "@,%a" Allocation.pp a
   | None -> Format.fprintf fmt "@,(no allocation)");
  Format.fprintf fmt "@]"
