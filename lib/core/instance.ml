module R = Numeric.Rat

type support = {
  types : int array;
  counts : int array;
}

type t = {
  problem : Problem.t;  (* scenario-effective prices (pricebook applied) *)
  source_problem : Problem.t;  (* as submitted, original platform prices *)
  objective_kind : Objective.kind;
  pricebook : Pricebook.t option;
  costs : int array;  (* c_q *)
  throughputs : int array;  (* r_q *)
  original : int array;  (* compact recipe index -> original index *)
  counts : int array array;  (* dense n^j_q rows, compact j *)
  supports : support array;  (* sparse rows, compact j *)
  dropped : (int * int) list;  (* (dominated, surviving dominator), original *)
  unit_costs : R.t array;  (* fluid cost per throughput unit, compact j *)
  blackbox : bool;
  disjoint : bool;
  mutable canon : (string * int array) option;
      (* memoized canonical encoding + recipe order (fingerprinting) *)
}

type instance = t

let ceil_div a b = (a + b - 1) / b

(* [j] dominates [j'] when its counts are pointwise <= and the two
   rows differ — or are equal with [j] the lower index, so exactly one
   of an equal pair is dropped. The relation is a strict partial
   order, hence every dropped recipe has a surviving dominator. *)
let dominates rows j j' =
  let cj = rows.(j) and cj' = rows.(j') in
  let le = ref true and strict = ref false in
  Array.iteri
    (fun q n -> if n > cj'.(q) then le := false else if n < cj'.(q) then strict := true)
    cj;
  !le && (!strict || j < j')

let compile_impl ?(prune = true) ~source_problem ~objective_kind ~pricebook
    problem =
  let j_orig = Problem.num_recipes problem in
  let q_count = Problem.num_types problem in
  let platform = Problem.platform problem in
  let costs = Array.init q_count (Platform.cost platform) in
  let throughputs = Array.init q_count (Platform.throughput platform) in
  let rows = Array.init j_orig (Problem.type_counts problem) in
  let dominator = Array.make j_orig (-1) in
  if prune then
    for j' = 0 to j_orig - 1 do
      let j = ref 0 in
      while dominator.(j') < 0 && !j < j_orig do
        if !j <> j' && dominates rows !j j' then dominator.(j') <- !j;
        incr j
      done
    done;
  let original =
    Array.of_list
      (List.filter (fun j -> dominator.(j) < 0) (List.init j_orig Fun.id))
  in
  let dropped =
    List.filter_map
      (fun j' ->
        if dominator.(j') < 0 then None
        else begin
          (* Chase the dominance chain to a surviving recipe. *)
          let j = ref dominator.(j') in
          while dominator.(!j) >= 0 do
            j := dominator.(!j)
          done;
          Some (j', !j)
        end)
      (List.init j_orig Fun.id)
  in
  let counts = Array.map (fun j -> rows.(j)) original in
  let supports =
    Array.map
      (fun row ->
        let used = ref [] in
        for q = q_count - 1 downto 0 do
          if row.(q) > 0 then used := q :: !used
        done;
        let types = Array.of_list !used in
        { types; counts = Array.map (fun q -> row.(q)) types })
      counts
  in
  let disjoint =
    let users = Array.make q_count 0 in
    Array.iter (fun s -> Array.iter (fun q -> users.(q) <- users.(q) + 1) s.types)
      supports;
    Array.for_all (fun u -> u <= 1) users
  in
  let blackbox =
    disjoint
    && Array.for_all
         (fun s -> Array.length s.types = 1 && s.counts.(0) = 1)
         supports
  in
  let unit_costs =
    Array.map
      (fun (s : support) ->
        let acc = ref R.zero in
        Array.iteri
          (fun i q ->
            acc := R.add !acc (R.of_ints (s.counts.(i) * costs.(q)) throughputs.(q)))
          s.types;
        !acc)
      supports
  in
  { problem; source_problem; objective_kind; pricebook; costs; throughputs;
    original; counts; supports; dropped; unit_costs; blackbox; disjoint;
    canon = None }

let compile ?prune ?scenario problem =
  Telemetry.Span.with_span "instance.compile" (fun () ->
      let objective_kind, pricebook =
        match scenario with
        | None -> (`Min_cost, None)
        | Some s ->
          (Objective.kind (Scenario.objective s), Scenario.pricebook s)
      in
      let effective =
        match pricebook with
        | None -> problem
        | Some pb ->
          Problem.create
            (Pricebook.apply pb (Problem.platform problem))
            (Problem.recipes problem)
      in
      compile_impl ?prune ~source_problem:problem ~objective_kind ~pricebook
        effective)

let problem t = t.problem
let source_problem t = t.source_problem
let objective_kind t = t.objective_kind
let pricebook t = t.pricebook

(* Resolve the `?instance / ?problem (+ scenario axes)` calling
   convention every engine entry point shares. *)
let for_solve ~who ?objective ?pricebook ?instance ?problem () =
  match (instance, problem) with
  | Some _, Some _ | None, None ->
    invalid_arg (who ^ ": pass exactly one of ~instance and ~problem")
  | Some inst, None ->
    (match pricebook with
     | Some _ ->
       invalid_arg
         (who
        ^ ": ~pricebook applies only with ~problem (an instance bakes its \
           pricebook at compile time)")
     | None -> ());
    (match objective with
     | Some o when Objective.kind o <> inst.objective_kind ->
       invalid_arg
         (Printf.sprintf
            "%s: instance was compiled for %s, not %s (recompile with the \
             matching scenario)"
            who
            (Objective.kind_to_string inst.objective_kind)
            (Objective.kind_to_string (Objective.kind o)))
     | _ -> ());
    inst
  | None, Some p ->
    let objective =
      match objective with Some o -> o | None -> Objective.min_cost ~target:0
    in
    compile ~scenario:(Scenario.make ~objective ?pricebook ()) p
let num_recipes t = Array.length t.original
let num_types t = Array.length t.costs
let original_index t j = t.original.(j)
let dropped t = t.dropped
let num_pruned t = List.length t.dropped
let support t j = t.supports.(j)
let count t j q = t.counts.(j).(q)
let type_cost t q = t.costs.(q)
let type_throughput t q = t.throughputs.(q)
let is_blackbox t = t.blackbox
let is_disjoint t = t.disjoint

let single_cost t ~j ~target =
  if target < 0 then invalid_arg "Instance.single_cost: negative target";
  let s = t.supports.(j) in
  let total = ref 0 in
  Array.iteri
    (fun i q ->
      total := !total + (t.costs.(q) * ceil_div (s.counts.(i) * target) t.throughputs.(q)))
    s.types;
  !total

let unit_cost t j = t.unit_costs.(j)

let fluid_lower_bound t ~target =
  if target < 0 then invalid_arg "Instance.fluid_lower_bound: negative target";
  if target = 0 || num_recipes t = 0 then 0
  else begin
    let best = Array.fold_left R.min t.unit_costs.(0) t.unit_costs in
    Numeric.Bigint.to_int_exn (R.ceil (R.mul best (R.of_int target)))
  end

let fluid_upper_target t ~budget =
  if budget < 0 then invalid_arg "Instance.fluid_upper_target: negative budget";
  if num_recipes t = 0 then 0
  else begin
    (* fluid(t) = ⌈t·u⌉ <= budget ⟺ t <= ⌊budget/u⌋ with u the best
       fluid unit cost; beyond that even the LP relaxation overspends,
       so the true max-throughput optimum is <= this bracket. u > 0
       because platform costs are strictly positive. *)
    let best = Array.fold_left R.min t.unit_costs.(0) t.unit_costs in
    Numeric.Bigint.to_int_exn (R.floor (R.div (R.of_int budget) best))
  end

let expand_rho t rho =
  if Array.length rho <> num_recipes t then
    invalid_arg "Instance.expand_rho: wrong length";
  let out = Array.make (Problem.num_recipes t.problem) 0 in
  Array.iteri (fun j r -> out.(t.original.(j)) <- r) rho;
  out

(* --- structural fingerprinting --- *)

(* Canonical orders over the pruned cost structure. Types are keyed by
   (c_q, r_q, sorted column multiset) — all permutation-invariant —
   then refined by their actual column under the canonical recipe
   order, which breaks most (c, r)-ties deterministically. Recipes are
   ordered lexicographically by their type-reordered rows; equal rows
   are interchangeable, so their relative order is immaterial. All
   compared arrays have equal lengths, so polymorphic compare is a
   plain lexicographic order here. *)
let canonical_orders t =
  let jc = num_recipes t and qc = num_types t in
  let sorted_col q =
    let c = Array.init jc (fun j -> t.counts.(j).(q)) in
    Array.sort compare c;
    c
  in
  let tkeys =
    Array.init qc (fun q -> (t.costs.(q), t.throughputs.(q), sorted_col q))
  in
  let torder = Array.init qc Fun.id in
  Array.sort (fun a b -> compare tkeys.(a) tkeys.(b)) torder;
  let rorder = Array.init jc Fun.id in
  let sort_recipes () =
    let rows =
      Array.init jc (fun j -> Array.map (fun q -> t.counts.(j).(q)) torder)
    in
    Array.sort (fun a b -> compare rows.(a) rows.(b)) rorder
  in
  sort_recipes ();
  (* Refine type ties by the actual column under the recipe order, then
     restore recipe order under the refined type order. *)
  let refined_col q = Array.map (fun j -> t.counts.(j).(q)) rorder in
  Array.sort
    (fun a b ->
      let c = compare tkeys.(a) tkeys.(b) in
      if c <> 0 then c else compare (refined_col a) (refined_col b))
    torder;
  sort_recipes ();
  (torder, rorder)

let canon t =
  match t.canon with
  | Some c -> c
  | None ->
    let torder, rorder = canonical_orders t in
    let b = Buffer.create 256 in
    (* Objective tag: a max-throughput instance must never share a
       cache entry with a min-cost one, so its encoding carries the
       kind. Min-cost stays untagged — the historical encoding. *)
    (match t.objective_kind with
     | `Min_cost -> ()
     | `Max_throughput -> Buffer.add_string b "max-throughput;");
    Buffer.add_string b
      (Printf.sprintf "Q%d J%d" (num_types t) (num_recipes t));
    Array.iter
      (fun q -> Buffer.add_string b (Printf.sprintf ";%d/%d" t.costs.(q) t.throughputs.(q)))
      torder;
    Array.iter
      (fun j ->
        Buffer.add_char b '|';
        Array.iteri
          (fun i q ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (string_of_int t.counts.(j).(q)))
          torder)
      rorder;
    let c = (Buffer.contents b, rorder) in
    t.canon <- Some c;
    c

let canonical_encoding t = fst (canon t)

let fingerprint t = Digest.to_hex (Digest.string (canonical_encoding t))

let canonical_recipe_order t = Array.copy (snd (canon t))

module Oracle = struct
  type t = {
    inst : instance;
    rho : int array;  (* compact *)
    loads : int array;  (* per type *)
    machines : int array;  (* per type, always ⌈load/r⌉ *)
    mutable cost : int;
    mutable log : (int * int) list;  (* applied (j, drho), LIFO *)
    mutable depth : int;
  }

  let create inst =
    { inst;
      rho = Array.make (num_recipes inst) 0;
      loads = Array.make (num_types inst) 0;
      machines = Array.make (num_types inst) 0;
      cost = 0; log = []; depth = 0 }

  (* The one hot path: re-price exactly supp(j). *)
  let apply_raw o j drho =
    if drho <> 0 then begin
      let r = o.rho.(j) + drho in
      if r < 0 then invalid_arg "Instance.Oracle.apply: negative throughput";
      o.rho.(j) <- r;
      let s = o.inst.supports.(j) in
      let types = s.types and counts = s.counts in
      for i = 0 to Array.length types - 1 do
        let q = types.(i) in
        let load = o.loads.(q) + (counts.(i) * drho) in
        o.loads.(q) <- load;
        let m = ceil_div load o.inst.throughputs.(q) in
        let dm = m - o.machines.(q) in
        if dm <> 0 then begin
          o.machines.(q) <- m;
          o.cost <- o.cost + (dm * o.inst.costs.(q))
        end
      done
    end

  let apply o ~j ~drho =
    apply_raw o j drho;
    o.log <- (j, drho) :: o.log;
    o.depth <- o.depth + 1

  let undo o =
    match o.log with
    | [] -> invalid_arg "Instance.Oracle.undo: nothing to undo"
    | (j, drho) :: rest ->
      o.log <- rest;
      o.depth <- o.depth - 1;
      apply_raw o j (-drho)

  let depth o = o.depth

  let commit o =
    o.log <- [];
    o.depth <- 0

  let reset o ~rho =
    if Array.length rho <> num_recipes o.inst then
      invalid_arg "Instance.Oracle.reset: rho has wrong length";
    Array.iter
      (fun r -> if r < 0 then invalid_arg "Instance.Oracle.reset: negative throughput")
      rho;
    Array.blit rho 0 o.rho 0 (Array.length rho);
    Array.fill o.loads 0 (Array.length o.loads) 0;
    Array.iteri
      (fun j rj ->
        if rj > 0 then begin
          let s = o.inst.supports.(j) in
          Array.iteri
            (fun i q -> o.loads.(q) <- o.loads.(q) + (s.counts.(i) * rj))
            s.types
        end)
      o.rho;
    o.cost <- 0;
    Array.iteri
      (fun q load ->
        let m = ceil_div load o.inst.throughputs.(q) in
        o.machines.(q) <- m;
        o.cost <- o.cost + (m * o.inst.costs.(q)))
      o.loads;
    o.log <- [];
    o.depth <- 0

  let cost o = o.cost
  let rho_at o j = o.rho.(j)
  let rho o = Array.copy o.rho
  let loads o = Array.copy o.loads
  let machines o = Array.copy o.machines

  let allocation o =
    Allocation.of_rho o.inst.problem ~rho:(expand_rho o.inst o.rho)
end
