type t =
  | Min_cost of { target : int }
  | Max_throughput of { budget : int }

type kind = [ `Min_cost | `Max_throughput ]

let min_cost ~target =
  if target < 0 then invalid_arg "Objective.min_cost: negative target";
  Min_cost { target }

let max_throughput ~budget =
  if budget < 0 then invalid_arg "Objective.max_throughput: negative budget";
  Max_throughput { budget }

let kind = function
  | Min_cost _ -> `Min_cost
  | Max_throughput _ -> `Max_throughput

let scalar = function
  | Min_cost { target } -> target
  | Max_throughput { budget } -> budget

let kind_to_string = function
  | `Min_cost -> "min-cost"
  | `Max_throughput -> "max-throughput"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "min-cost" | "mincost" | "cost" -> Some `Min_cost
  | "max-throughput" | "maxthroughput" | "throughput" -> Some `Max_throughput
  | _ -> None

let pp fmt = function
  | Min_cost { target } -> Format.fprintf fmt "min-cost(target %d)" target
  | Max_throughput { budget } ->
    Format.fprintf fmt "max-throughput(budget %d)" budget
