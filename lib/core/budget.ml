type t = {
  deadline : float option;
  node_cap : int option;
  eval_cap : int option;
}

let unlimited = { deadline = None; node_cap = None; eval_cap = None }

let deadline s =
  if s < 0.0 then invalid_arg "Budget.deadline: negative";
  { unlimited with deadline = Some s }

let nodes n =
  if n < 0 then invalid_arg "Budget.nodes: negative";
  { unlimited with node_cap = Some n }

let evals n =
  if n < 0 then invalid_arg "Budget.evals: negative";
  { unlimited with eval_cap = Some n }

let is_unlimited t = t = unlimited

let remaining t ~elapsed =
  { t with deadline = Option.map (fun d -> Float.max 0.0 (d -. elapsed)) t.deadline }

let pp fmt t =
  let parts =
    List.filter_map Fun.id
      [ Option.map (Printf.sprintf "deadline %gs") t.deadline;
        Option.map (Printf.sprintf "nodes %d") t.node_cap;
        Option.map (Printf.sprintf "evals %d") t.eval_cap ]
  in
  Format.pp_print_string fmt
    (match parts with [] -> "unlimited" | ps -> String.concat ", " ps)
