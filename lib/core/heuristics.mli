(** The six polynomial heuristics of the paper's § VI for the general
    shared-types problem.

    All heuristics search over integer throughput splits
    [ρ_1 … ρ_J >= 0] with [Σ_j ρ_j = ρ], scoring each split with the
    § IV-B closed-form cost oracle. Moves transfer a quantum
    [δ = step] of throughput between two recipes (transferring
    everything when the source holds less than [δ]), exactly the
    exchange described for H2 in the paper.

    Pricing goes through the compiled {!Instance} layer: the search
    runs over the dominance-pruned compact recipe space, and every
    move is re-priced incrementally by {!Instance.Oracle.apply} in
    [O(|supp(j)|)] rather than recomputed from scratch in [O(Q·J)].
    Results are reported in the problem's original recipe numbering.
    On instances without dominated recipes the search trajectories
    (and therefore costs, splits and evaluation counts) are identical
    to the historical from-scratch oracle; with dominated recipes the
    search space shrinks, which can only improve the incumbent at
    equal effort.

    Stochastic heuristics (H0, H2, H31, H32Jump) draw randomness
    exclusively from the supplied {!Numeric.Prng.t}, so runs are
    reproducible from a seed.

    Every heuristic accepts a {!Budget.t} and honours its [eval_cap]
    and [deadline] axes, checked between moves: a run that exhausts its
    budget stops early and returns its best incumbent with
    [exhausted = true]. H1 is the floor — its [J] evaluations always
    complete, so every budgeted run returns a feasible allocation.

    Note: this module is the low-level per-heuristic interface. New
    code should prefer {!Solver.solve} (with
    [~spec:(Heuristic name)] or [~spec:Auto]), which adds engine
    dispatch, uniform budget semantics across exact and heuristic
    engines, and per-solve telemetry. *)

type name = H0 | H1 | H2 | H31 | H32 | H32_jump

(** Every heuristic, in the paper's order. *)
val all : name list

val name_to_string : name -> string

type params = {
  step : int;  (** throughput quantum [δ] moved per exchange (default 1) *)
  iterations : int;  (** iteration budget of H2 and H31 (default 500) *)
  patience : int;
      (** H31 stops after this many consecutive non-improving
          iterations (default 100) *)
  jumps : int;  (** number of perturbation rounds of H32Jump (default 50) *)
  jump_size : int;
      (** random exchanges applied per H32Jump perturbation (default 4) *)
  exhaustive_deltas : bool;
      (** H32/H32Jump descent: test every multiple of [step] per
          recipe pair instead of the single quantum — the literal
          reading of the paper's "all possible throughput fraction
          exchanges are tested", at quadratically higher cost per
          descent pass (default false, which matches the paper's
          reported H32 run times) *)
}

val default_params : params

type result = {
  allocation : Allocation.t;
  evaluations : int;  (** cost-oracle calls, a machine-independent effort measure *)
  exhausted : bool;
      (** true when the run was cut short by its {!Budget.t}; the
          allocation is still the best incumbent found *)
}

(** [h0_random] draws a uniformly random composition of the target
    over the recipes (§ VI-a). *)
val h0_random :
  ?params:params ->
  ?budget:Budget.t ->
  rng:Numeric.Prng.t ->
  Problem.t ->
  target:int ->
  result

(** [h1_best_graph] routes the whole target through the single
    cheapest recipe (§ VI-b); complexity [O(J·Q)]. Deterministic. *)
val h1_best_graph : ?budget:Budget.t -> Problem.t -> target:int -> result

(** [h2_random_walk] starts from H1 and repeatedly applies random
    exchanges, always adopting the move and remembering the best
    solution seen (§ VI-c). *)
val h2_random_walk :
  ?params:params ->
  ?budget:Budget.t ->
  rng:Numeric.Prng.t ->
  Problem.t ->
  target:int ->
  result

(** [h31_stochastic_descent] is H2 but a move is kept only when it
    improves the incumbent (§ VI-d). *)
val h31_stochastic_descent :
  ?params:params ->
  ?budget:Budget.t ->
  rng:Numeric.Prng.t ->
  Problem.t ->
  target:int ->
  result

(** [h32_steepest] repeatedly applies the best exchange over all
    ordered recipe pairs until none improves — a steepest-gradient
    descent to a local minimum (§ VI-e). Deterministic. *)
val h32_steepest :
  ?params:params -> ?budget:Budget.t -> Problem.t -> target:int -> result

(** [h32_jump] escapes H32 local minima by applying a burst of random
    exchanges and descending again, keeping the best local minimum
    found (§ VI-e). *)
val h32_jump :
  ?params:params ->
  ?budget:Budget.t ->
  rng:Numeric.Prng.t ->
  Problem.t ->
  target:int ->
  result

(** [search name ~target] dispatches to the heuristic — the single
    entry point for both calling conventions (pass [~instance] or
    [~problem], never both; [~problem] is compiled, under [?pricebook]
    when present). [rng] is only drawn from by the stochastic
    heuristics (H0, H2, H31, H32Jump) and may be omitted even for
    them, in which case a fixed-seed PRNG makes the run deterministic;
    deterministic H1/H32 never touch it. This is the hook
    {!Solver.run} uses so one compiled instance serves routing, the
    ILP warm start and any heuristic fallback of a single solve.

    Applications should still prefer {!Solver.run}
    [~spec:(Heuristic name)], which wraps this dispatch with budget
    fallback semantics and telemetry.

    @param warm_start an alternative start split for the search
      heuristics (H2, H31, H32, H32Jump), in {e compact} recipe
      numbering, non-negative, summing to at least [target] — the
      caller is responsible for validity ({!Solver.run} checks before
      delegating). The search starts from whichever of the warm split
      and the H1 split prices cheaper (one extra evaluation); H0 and
      H1 ignore it. Unseeded runs are bit-identical to the historical
      trajectories.
    @raise Invalid_argument when the [?instance]/[?problem] convention
      is violated. *)
val search :
  ?params:params ->
  ?budget:Budget.t ->
  ?rng:Numeric.Prng.t ->
  ?warm_start:int array ->
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  name ->
  target:int ->
  result

