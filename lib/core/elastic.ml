type plan = Allocation.t array

let check_demand demand =
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Elastic: negative demand")
    demand

let solve_one ?budget ?rng ?params ?warm_start ~spec instance ~target =
  match
    (Solver.run ?budget ?rng ?params ?warm_start ~spec ~instance
       ~objective:(Objective.min_cost ~target) ())
      .Solver.allocation
  with
  | Some a -> a
  | None ->
    (* Unreachable for demand >= 0: renting enough machines is always
       feasible. *)
    assert false

(* One compile serves the whole trace; each period's solve is seeded
   with the previous period's fleet (trimmed/validated inside the
   solver, dropped when demand rose past it). *)
let provision_on ?budget ?rng ?params ?(spec = Solver.Auto) ?(warm = true)
    instance ~demand =
  check_demand demand;
  let previous = ref None in
  Array.map
    (fun target ->
      let warm_start = if warm then !previous else None in
      let a = solve_one ?budget ?rng ?params ?warm_start ~spec instance ~target in
      previous := Some a;
      a)
    demand

let provision ?budget ?rng ?params ?spec ?warm problem ~demand =
  provision_on ?budget ?rng ?params ?spec ?warm (Instance.compile problem)
    ~demand

let static_peak ?budget ?rng ?params ?(spec = Solver.Auto) problem ~demand =
  check_demand demand;
  if Array.length demand = 0 then [||]
  else begin
    let peak = Array.fold_left max 0 demand in
    let fleet =
      solve_one ?budget ?rng ?params ~spec (Instance.compile problem)
        ~target:peak
    in
    Array.map (fun _ -> fleet) demand
  end

let total_cost plan =
  Array.fold_left (fun acc a -> acc + a.Allocation.cost) 0 plan

let peak_cost plan =
  Array.fold_left (fun acc a -> max acc a.Allocation.cost) 0 plan

let machine_hours plan =
  match Array.length plan with
  | 0 -> [||]
  | _ ->
    let q = Array.length plan.(0).Allocation.machines in
    let hours = Array.make q 0 in
    Array.iter
      (fun a -> Array.iteri (fun i x -> hours.(i) <- hours.(i) + x) a.Allocation.machines)
      plan;
    hours

let churn plan =
  match Array.length plan with
  | 0 -> 0
  | _ ->
    let q = Array.length plan.(0).Allocation.machines in
    let prev = Array.make q 0 in
    Array.fold_left
      (fun acc a ->
        let step = ref 0 in
        Array.iteri
          (fun i x ->
            step := !step + abs (x - prev.(i));
            prev.(i) <- x)
          a.Allocation.machines;
        acc + !step)
      0 plan

let savings ~elastic ~static =
  let s = total_cost static in
  if s = 0 then 0.0 else float_of_int (s - total_cost elastic) /. float_of_int s
