let recipe_cost problem ~j ~target = Costing.single_graph problem ~j ~target

let solve_on instance ~target =
  if not (Instance.is_disjoint instance) then
    invalid_arg "Dp_disjoint.run: recipes share task types (general case, \
                 use Ilp or Heuristics)";
  if target < 0 then invalid_arg "Dp_disjoint.run: negative target";
  let j_count = Instance.num_recipes instance in
  (* Tabulate cost_j(t) for every surviving recipe and every
     sub-target, each entry the sparse § IV-A closed form over the
     recipe's support. *)
  let cost_table =
    Array.init j_count (fun j ->
        Array.init (target + 1) (fun t -> Instance.single_cost instance ~j ~target:t))
  in
  (* dp.(j).(t): optimal cost reaching throughput t with recipes 0..j;
     split.(j).(t): the ρ_j chosen there. *)
  let dp = Array.make_matrix j_count (target + 1) 0 in
  let split = Array.make_matrix j_count (target + 1) 0 in
  for t = 0 to target do
    dp.(0).(t) <- cost_table.(0).(t);
    split.(0).(t) <- t
  done;
  for j = 1 to j_count - 1 do
    for t = 0 to target do
      let best = ref max_int and best_tj = ref 0 in
      for tj = 0 to t do
        let c = dp.(j - 1).(t - tj) + cost_table.(j).(tj) in
        if c < !best then begin
          best := c;
          best_tj := tj
        end
      done;
      dp.(j).(t) <- !best;
      split.(j).(t) <- !best_tj
    done
  done;
  let rho = Array.make j_count 0 in
  let t = ref target in
  for j = j_count - 1 downto 0 do
    rho.(j) <- split.(j).(!t);
    t := !t - rho.(j)
  done;
  assert (!t = 0);
  let rho = Instance.expand_rho instance rho in
  let alloc = Allocation.of_rho (Instance.problem instance) ~rho in
  assert (alloc.Allocation.cost = dp.(j_count - 1).(target));
  alloc

let run ?pricebook ?instance ?problem ~target () =
  let instance =
    Instance.for_solve ~who:"Dp_disjoint.run" ?pricebook ?instance ?problem ()
  in
  solve_on instance ~target
