let solve_on instance ~target =
  if target < 0 then invalid_arg "Exhaustive.run: negative target";
  let j_count = Instance.num_recipes instance in
  let o = Instance.Oracle.create instance in
  let best_cost = ref max_int and best_rho = ref [||] in
  let consider () =
    let c = Instance.Oracle.cost o in
    if c < !best_cost then begin
      best_cost := c;
      best_rho := Instance.Oracle.rho o
    end
  in
  (* Enumerate compositions over the (dominance-pruned) compact recipe
     space: assign to recipe j any amount of what is left, the last
     recipe takes the remainder. Each unit assigned is one O(|supp|)
     incremental re-price; applies and undos are strictly balanced, so
     the oracle log stays bounded by the recursion depth. *)
  let rec go j remaining =
    if j = j_count - 1 then begin
      Instance.Oracle.apply o ~j ~drho:remaining;
      consider ();
      Instance.Oracle.undo o
    end
    else begin
      go (j + 1) remaining;
      for v = 1 to remaining do
        Instance.Oracle.apply o ~j ~drho:1;
        go (j + 1) (remaining - v)
      done;
      for _ = 1 to remaining do
        Instance.Oracle.undo o
      done
    end
  in
  go 0 target;
  Allocation.of_rho (Instance.problem instance)
    ~rho:(Instance.expand_rho instance !best_rho)

let run ?pricebook ?instance ?problem ~target () =
  let instance =
    Instance.for_solve ~who:"Exhaustive.run" ?pricebook ?instance ?problem ()
  in
  solve_on instance ~target

let count_compositions ~parts ~total =
  (* C(total + parts - 1, parts - 1) computed multiplicatively. *)
  if parts <= 0 then invalid_arg "Exhaustive.count_compositions: parts <= 0";
  let k = parts - 1 and n = total + parts - 1 in
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc
