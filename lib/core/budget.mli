(** Per-solve resource budgets shared by every engine behind
    {!Solver.solve}.

    A budget caps one solve along up to three axes. Engines interpret
    the axes they can observe and ignore the rest:

    - [deadline] — wall-clock seconds from the start of the solve.
      Honoured by the ILP (as {!Milp.Solver}'s [time_limit]) and by
      the heuristics (checked between moves). Timing makes capped runs
      machine-dependent; prefer the deterministic caps below for
      reproducible experiments.
    - [node_cap] — branch-and-bound nodes; ILP only. Deterministic
      across machines.
    - [eval_cap] — cost-oracle evaluations; heuristics only.
      Deterministic across machines.

    Budgets bound effort, not correctness: an engine that runs out
    returns the best incumbent it has (see {!Solver.status}). *)

type t = {
  deadline : float option;  (** wall-clock seconds for this solve *)
  node_cap : int option;  (** max branch-and-bound nodes *)
  eval_cap : int option;  (** max cost-oracle evaluations *)
}

(** No caps on any axis. *)
val unlimited : t

(** [deadline s] caps wall-clock time only.
    @raise Invalid_argument when [s] is negative. *)
val deadline : float -> t

(** [nodes n] caps branch-and-bound nodes only.
    @raise Invalid_argument when [n] is negative. *)
val nodes : int -> t

(** [evals n] caps cost-oracle evaluations only.
    @raise Invalid_argument when [n] is negative. *)
val evals : int -> t

(** [is_unlimited t] is true when no axis is capped. *)
val is_unlimited : t -> bool

(** [remaining t ~elapsed] is [t] with the deadline reduced by the
    [elapsed] seconds already spent (clamped at zero) — the budget left
    for a follow-up stage of the same solve. *)
val remaining : t -> elapsed:float -> t

val pp : Format.formatter -> t -> unit
