let solve_on instance ~target =
  if not (Instance.is_blackbox instance) then
    invalid_arg "Dp_blackbox.run: instance is not black-box (one task per \
                 recipe, pairwise distinct types)";
  if target < 0 then invalid_arg "Dp_blackbox.run: negative target";
  let j_count = Instance.num_recipes instance in
  (* Surviving recipe j is a single task of some type q_j (its support
     is exactly {(q_j, 1)}); renting one machine of that type yields
     r_{q_j} results at cost c_{q_j}. *)
  let type_of_recipe =
    Array.init j_count (fun j -> (Instance.support instance j).Instance.types.(0))
  in
  let items =
    Array.map
      (fun q ->
        { Knapsack.cost = Instance.type_cost instance q;
          yield = Instance.type_throughput instance q })
      type_of_recipe
  in
  match Knapsack.min_cost_cover ~items ~demand:target with
  | None -> assert false (* platforms have positive throughputs *)
  | Some { Knapsack.best; counts } ->
    (* Spread the target over recipes up to each fleet's capacity so
       that Σ ρ_j = target exactly. *)
    let rho = Array.make j_count 0 in
    let remaining = ref target in
    Array.iteri
      (fun j n ->
        let cap = n * items.(j).Knapsack.yield in
        let take = min cap !remaining in
        rho.(j) <- take;
        remaining := !remaining - take)
      counts;
    assert (!remaining = 0);
    let machines = Array.make (Instance.num_types instance) 0 in
    Array.iteri
      (fun j n ->
        machines.(type_of_recipe.(j)) <- machines.(type_of_recipe.(j)) + n)
      counts;
    let rho = Instance.expand_rho instance rho in
    let alloc = Allocation.make (Instance.problem instance) ~rho ~machines in
    assert (alloc.Allocation.cost = best);
    alloc

let run ?pricebook ?instance ?problem ~target () =
  let instance =
    Instance.for_solve ~who:"Dp_blackbox.run" ?pricebook ?instance ?problem ()
  in
  solve_on instance ~target
