let to_string problem =
  let buf = Buffer.create 512 in
  let platform = Problem.platform problem in
  let q_count = Problem.num_types problem in
  Buffer.add_string buf "version 1\n";
  Buffer.add_string buf (Printf.sprintf "types %d\n" q_count);
  for q = 0 to q_count - 1 do
    Buffer.add_string buf
      (Printf.sprintf "type %d cost %d throughput %d\n" q (Platform.cost platform q)
         (Platform.throughput platform q))
  done;
  Array.iter
    (fun recipe ->
      Buffer.add_string buf "recipe\n";
      for i = 0 to Task_graph.num_tasks recipe - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  task %d type %d\n" i (Task_graph.type_of recipe i))
      done;
      List.iter
        (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  edge %d %d\n" a b))
        (Task_graph.edges recipe))
    (Problem.recipes problem);
  Buffer.contents buf

(* One recipe under construction. *)
type partial_recipe = { mutable tasks : (int * int) list; mutable edges : (int * int) list }

let of_string text =
  let fail line msg = failwith (Printf.sprintf "Problem_format: line %d: %s" line msg) in
  let lines = String.split_on_char '\n' text in
  let ntypes = ref (-1) in
  let machines = Hashtbl.create 8 in
  let recipes = ref [] in
  let current = ref None in
  let parse_int line s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail line (Printf.sprintf "expected an integer, got %S" s)
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let no_comment =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let words =
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) no_comment)
        |> List.filter (fun w -> w <> "")
        |> List.map String.lowercase_ascii
      in
      match words with
      | [] -> ()
      | [ "version"; v ] ->
        let v = parse_int line v in
        if v <> 1 then
          fail line
            (Printf.sprintf "unsupported problem format version %d (supported: 1)" v)
      | [ "types"; n ] ->
        if !ntypes >= 0 then fail line "duplicate 'types' declaration";
        let n = parse_int line n in
        if n <= 0 then fail line "types must be positive";
        ntypes := n
      | [ "type"; q; "cost"; c; "throughput"; r ] ->
        let q = parse_int line q in
        if Hashtbl.mem machines q then fail line (Printf.sprintf "duplicate type %d" q);
        Hashtbl.replace machines q
          { Platform.cost = parse_int line c; throughput = parse_int line r }
      | [ "recipe" ] ->
        (match !current with
         | Some r -> recipes := r :: !recipes
         | None -> ());
        current := Some { tasks = []; edges = [] }
      | [ "task"; i; "type"; q ] ->
        (match !current with
         | None -> fail line "'task' outside a recipe block"
         | Some r -> r.tasks <- (parse_int line i, parse_int line q) :: r.tasks)
      | [ "edge"; a; b ] ->
        (match !current with
         | None -> fail line "'edge' outside a recipe block"
         | Some r -> r.edges <- (parse_int line a, parse_int line b) :: r.edges)
      | w :: _ -> fail line (Printf.sprintf "unknown directive %S" w))
    lines;
  (match !current with Some r -> recipes := r :: !recipes | None -> ());
  if !ntypes < 0 then failwith "Problem_format: missing 'types' declaration";
  let platform =
    Platform.create
      (Array.init !ntypes (fun q ->
           match Hashtbl.find_opt machines q with
           | Some m -> m
           | None -> failwith (Printf.sprintf "Problem_format: type %d not declared" q)))
  in
  let build_recipe r =
    let tasks = List.sort compare (List.rev r.tasks) in
    List.iteri
      (fun expected (i, _) ->
        if i <> expected then
          failwith
            (Printf.sprintf "Problem_format: recipe tasks must be numbered 0..n-1 \
                             (missing or duplicate task %d)" expected))
      tasks;
    let types = Array.of_list (List.map snd tasks) in
    Task_graph.create ~ntypes:!ntypes ~types ~edges:(List.rev r.edges)
  in
  Problem.create platform (Array.of_list (List.rev_map build_recipe !recipes))

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let save path problem =
  let oc = open_out path in
  output_string oc (to_string problem);
  close_out oc
