(** Optimal provisioning for recipes with disjoint type sets
    (paper § V-B).

    When no two recipes share a task type, the platform cost separates
    into a per-recipe term [cost_j(ρ_j)], and the optimal split of the
    target throughput is found by the pseudo-polynomial dynamic
    program

    [C(ρ, j) = min_{0 <= ρ_j <= ρ} ( C(ρ - ρ_j, j-1) + cost_j(ρ_j) )]

    in [O(J·ρ²)] time (plus [O(J·ρ·Q)] to tabulate the per-recipe
    costs).

    Note: the recurrence printed in the paper sums
    [⌈n^j_{t(i,j)}·ρ_j / r_{t(i,j)}⌉·c_{t(i,j)}] over task indices [i],
    which would bill a type once per task; consistently with § IV-A
    and the worked example, [cost_j] here sums over distinct types
    (see DESIGN.md § 1). *)

(** [run ~target ()] returns an optimal allocation (with the optimal
    throughput split) — the single entry point for both calling
    conventions (pass [~instance] or [~problem], never both;
    [~problem] is compiled, under [?pricebook] when present). The
    disjointness check and the DP both run on the dominance-pruned
    compiled instance; the per-recipe cost table is filled with the
    sparse {!Instance.single_cost} closed form.
    @raise Invalid_argument when surviving recipes share task types
      (use {!Instance.is_disjoint} to test), [target < 0], or the
      [?instance]/[?problem] convention is violated. *)
val run :
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  target:int ->
  unit ->
  Allocation.t

(** [recipe_cost problem ~j ~target] is the separable per-recipe cost
    [cost_j(target)] the DP optimizes over (equals
    {!Costing.single_graph} on disjoint instances). *)
val recipe_cost : Problem.t -> j:int -> target:int -> int
