(** The unified front door to every solution method of the paper.

    The five engines — the § V-A unbounded-knapsack DP, the § V-B
    disjoint-types DP, the § V-C exact ILP, the § VI heuristics and
    the brute-force test oracle — historically had unrelated entry
    points, result records and budget knobs, so every driver
    reimplemented timing, fallback and plumbing. {!run} is the single
    engine-agnostic call: pick an engine (or let [Auto] route
    on problem structure), cap the solve with a {!Budget.t}, and get
    back one {!outcome} carrying a uniform {!status}, the best
    allocation found, and per-solve {!telemetry}.

    Budget semantics: a solve never raises or returns empty-handed
    because a budget expired. Exact engines return their best
    incumbent under [Budget_exhausted]; if the ILP runs out before
    finding any integer point, the solver degrades to the best
    heuristic incumbent reachable within whatever budget remains
    (at worst the H1 closed form, which always completes). The two
    DPs and the exhaustive oracle are not interruptible and ignore
    budgets — they either finish or should not have been chosen.

    Telemetry is measured as deltas of the global {!Telemetry}
    counters around the solve, so nested or concurrent measurement at
    outer layers stays correct.

    Every solve runs over a compiled {!Instance.t} — built once per
    {!run} call, or supplied by the caller via [run ~instance] to
    amortize compilation across repeated solves of the same problem
    (sweeps, benchmarks). *)

(** Which engine to run. [Auto] routes on the structure flags
    precomputed at instance compile time: black-box instances
    ({!Instance.is_blackbox}) to the § V-A knapsack DP, disjoint-types
    instances ({!Instance.is_disjoint}) to the § V-B DP, and general
    shared-types instances to the § V-C ILP (H32Jump warm-started).
    The flags describe the dominance-pruned recipe set, so a problem
    whose structure violations all come from dominated recipes still
    routes to the cheaper engine — soundly, since pruning preserves
    the optimal cost. *)
type spec =
  | Exact_ilp  (** § V-C branch and bound over exact LP relaxations *)
  | Dp_blackbox  (** § V-A pseudo-polynomial knapsack DP *)
  | Dp_disjoint  (** § V-B per-recipe split DP *)
  | Exhaustive  (** brute-force split enumeration (test oracle) *)
  | Heuristic of Heuristics.name  (** one of the § VI heuristics *)
  | Auto  (** structure-directed routing, see above *)

val spec_to_string : spec -> string

(** [spec_of_string s] parses the [spec_to_string] forms plus the CLI
    spellings ("auto", "ilp", "dp-blackbox", "dp", "exhaustive", "h0"
    … "h32jump"). *)
val spec_of_string : string -> spec option

(** Uniform verdict across engines. *)
type status =
  | Optimal  (** allocation proven cost-minimal *)
  | Feasible
      (** valid allocation without an optimality proof (heuristic
          engines that ran to completion) *)
  | Budget_exhausted
      (** the {!Budget.t} expired; the allocation is the best
          incumbent found before it did *)
  | Infeasible  (** no allocation meets the target (never for [target >= 0]) *)

val status_to_string : status -> string

(** Per-solve effort accounting, measured for exactly this solve. *)
type telemetry = {
  engine : spec;
      (** the engine that actually ran — the [Auto] routing decision;
          never [Auto] itself *)
  wall_time : float;  (** seconds, fallback stages included *)
  evaluations : int;  (** cost-oracle evaluations (heuristic effort) *)
  pivots : int;  (** exact simplex pivots, both engines *)
  nodes : int;  (** branch-and-bound nodes *)
  pruned_recipes : int;
      (** recipes removed by dominance preprocessing at instance
          compile time (see {!Instance.compile}) *)
  warm_started : bool;
      (** a caller-supplied [?warm_start] passed validation and seeded
          the engine (always [false] without one) *)
}

type outcome = {
  status : status;
  allocation : Allocation.t option;
      (** [None] only when [status = Infeasible] *)
  throughput : int;
      (** total throughput [Σ_j ρ_j] of the allocation — the objective
          value of a max-throughput solve, and at least the target of
          a min-cost one ([0] without an allocation) *)
  telemetry : telemetry;
  convergence : Telemetry.Progress.event list;
      (** the convergence timeline collected while the engines ran —
          incumbent improvements and (for the MILP) dual-bound
          advances, in emission order; empty when telemetry is
          disabled. See {!Telemetry.Progress}. Events emitted on
          portfolio worker domains are collected per-worker and
          surfaced by [Rentcost_parallel.Portfolio] for the winning
          strategy only. *)
}

(** The engine [Auto] picks for this problem (routing only — no
    solve). Compiles an instance to read the structure flags; use
    {!auto_of_instance} when one is already at hand. *)
val auto_spec : Problem.t -> spec

(** [auto_of_instance instance] is the [Auto] routing decision for an
    already-compiled instance (no work beyond reading two flags). *)
val auto_of_instance : Instance.t -> spec

(** [run ~objective ()] solves one scenario — the single entry point
    for every engine and both objectives. Pass exactly one of
    [~instance] and [~problem]: a problem is compiled under the
    scenario formed by [~objective] and [?pricebook]; an instance must
    already have been compiled for the matching objective kind (and
    carries any pricebook from its own compile — combining
    [?pricebook] with [~instance] is rejected).

    Under {!Objective.Min_cost} this is the historical solve: the
    selected engine (or the [Auto] routing) minimizes rental cost at
    the target.

    Under {!Objective.Max_throughput} the solver binary-searches the
    largest throughput [t] whose min-cost fits the monetary budget,
    bracketed above by the fluid relaxation
    ({!Instance.fluid_upper_target}). Probes run on the selected
    min-cost engine; the ILP answers natively through a
    budget-feasibility row (see {!Ilp.optimize}[ ?budget_cap]), so its
    Infeasible verdicts {e prove} unreachability and the search result
    is exact — [status = Optimal]. Heuristic probes can only prove
    reachability, so their result is a lower bound on the optimal
    throughput and the status is [Feasible]. A probe cut short by the
    {!Budget.t} yields [Budget_exhausted]; the allocation is still the
    best feasible one found (at worst the zero allocation, which every
    monetary budget affords).

    @param budget caps the {e computation} (wall clock / nodes /
      evals; default {!Budget.unlimited}) — not to be confused with
      the monetary budget inside [Max_throughput]; see the budget
      semantics above.
    @param rng drives the stochastic heuristics; omitted, a fixed-seed
      PRNG keeps runs deterministic. Exact engines ignore it.
    @param params heuristic tuning (default
      {!Heuristics.default_params}); exact engines ignore it.
    @param warm_start a known allocation (a cached solution, the
      previous billing period's fleet) used to seed the solve. It is
      feasibility-checked against the instance and {e silently
      dropped} when unusable (wrong shape, misses the target, or
      routes throughput through a dominance-pruned recipe); when it
      passes, surplus throughput beyond the target is shed from the
      most expensive recipes and the trimmed split seeds the search
      heuristics' start point and the ILP's initial incumbent. The
      DPs and the exhaustive oracle ignore it. Results can only
      improve: engines keep whichever of the seed and their own start
      prices cheaper, and exact engines still prove optimality.
      {!telemetry}[.warm_started] records whether the seed was used.
      Under [Max_throughput] it is re-validated per probe (a seed can
      only meet the probes at or below its own throughput).
    @raise Invalid_argument when the [?instance]/[?problem] convention
      is violated, the instance's objective kind mismatches, or a DP
      engine is forced (not via [Auto]) on a problem whose structure
      it does not support. *)
val run :
  ?budget:Budget.t ->
  ?rng:Numeric.Prng.t ->
  ?params:Heuristics.params ->
  ?warm_start:Allocation.t ->
  ?spec:spec ->
  ?pricebook:Pricebook.t ->
  ?instance:Instance.t ->
  ?problem:Problem.t ->
  objective:Objective.t ->
  unit ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit
