open Rentcost

type config = {
  ticks_per_hour : int;
  deadband : float;
  headroom : float;
  spec : Solver.spec;
  budget : Budget.t;
}

let default_config =
  {
    ticks_per_hour = 60;
    deadband = 0.1;
    headroom = 0.;
    spec = Solver.Auto;
    budget = Budget.unlimited;
  }

type action = Hold | Reconfigure

let action_to_string = function Hold -> "hold" | Reconfigure -> "reconfigure"

let action_of_string = function
  | "hold" -> Some Hold
  | "reconfigure" -> Some Reconfigure
  | _ -> None

type plan = {
  tick : int;
  demand : int;
  target : int;
  action : action;
  rent : int array;
  renew : int array;
  release : int array;
  machines : int array;
  rho : int array;
  charged : int;
  violation : bool;
}

type t = {
  config : config;
  instance : Instance.t;
  costs : int array;  (** effective per-type rates of the instance *)
  billing : Billing.t;
  mutable next_tick : int;
  mutable alloc : Allocation.t option;
  mutable target : int;  (** target [alloc] was solved for *)
  mutable replans : int;
  mutable holds : int;
  mutable violations : int;
}

let c_ticks = Telemetry.counter Telemetry.autoscale_ticks
let c_replans = Telemetry.counter Telemetry.autoscale_replans
let c_holds = Telemetry.counter Telemetry.autoscale_holds
let c_violations = Telemetry.counter Telemetry.autoscale_violations

let h_resolve =
  Telemetry.histogram Telemetry.autoscale_resolve_seconds
    ~bounds:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let check_config c =
  if c.ticks_per_hour <= 0 then
    invalid_arg "Controller: ticks_per_hour must be > 0";
  if not (Float.is_finite c.deadband) || c.deadband < 0. || c.deadband >= 1.
  then invalid_arg "Controller: deadband must lie in [0, 1)";
  if not (Float.is_finite c.headroom) || c.headroom < 0. then
    invalid_arg "Controller: headroom must be >= 0"

let create_on ?(config = default_config) instance =
  check_config config;
  (match Instance.objective_kind instance with
  | `Min_cost -> ()
  | `Max_throughput ->
    invalid_arg "Controller.create_on: instance compiled for max-throughput");
  let problem = Instance.problem instance in
  let platform = Problem.platform problem in
  let num_types = Platform.num_types platform in
  {
    config;
    instance;
    costs = Array.init num_types (Platform.cost platform);
    billing = Billing.create ~num_types ~ticks_per_hour:config.ticks_per_hour;
    next_tick = 0;
    alloc = None;
    target = 0;
    replans = 0;
    holds = 0;
    violations = 0;
  }

let create ?config problem = create_on ?config (Instance.compile problem)

let provisioned t =
  match t.alloc with Some a -> Allocation.total_rho a | None -> 0

let resolve t ~demand =
  let target =
    int_of_float (Float.ceil (float_of_int demand *. (1. +. t.config.headroom)))
  in
  let started = Telemetry.now () in
  let outcome =
    Solver.run ~budget:t.config.budget ?warm_start:t.alloc ~spec:t.config.spec
      ~instance:t.instance
      ~objective:(Objective.min_cost ~target)
      ()
  in
  Telemetry.observe h_resolve (Telemetry.now () -. started);
  match outcome.Solver.allocation with
  | Some a ->
    t.alloc <- Some a;
    t.target <- target
  | None ->
    (* Unreachable for target >= 0: renting enough machines is always
       feasible and the solver degrades to the H1 closed form. *)
    assert false

let tick t ~demand =
  if demand < 0 then invalid_arg "Controller.tick: negative demand";
  let tick = t.next_tick in
  t.next_tick <- tick + 1;
  Telemetry.bump c_ticks;
  let violation = demand > provisioned t in
  if violation then begin
    t.violations <- t.violations + 1;
    Telemetry.bump c_violations
  end;
  let drifted_down =
    t.alloc <> None
    && float_of_int demand < (1. -. t.config.deadband) *. float_of_int t.target
  in
  let action =
    if violation || drifted_down then begin
      resolve t ~demand;
      t.replans <- t.replans + 1;
      Telemetry.bump c_replans;
      Reconfigure
    end
    else begin
      t.holds <- t.holds + 1;
      Telemetry.bump c_holds;
      Hold
    end
  in
  let machines, rho =
    match t.alloc with
    | Some a -> (Array.copy a.Allocation.machines, Array.copy a.Allocation.rho)
    | None -> (Array.make (Array.length t.costs) 0, [||])
  in
  let event = Billing.step t.billing ~tick ~desired:machines ~costs:t.costs in
  {
    tick;
    demand;
    target = t.target;
    action;
    rent = event.Billing.rented;
    renew = event.Billing.renewed;
    release = event.Billing.released;
    machines;
    rho;
    charged = event.Billing.charged;
    violation;
  }

let ticks t = t.next_tick
let replans t = t.replans
let holds t = t.holds
let violations t = t.violations
let total_charged t = Billing.total_charged t.billing
let config t = t.config
let allocation t = t.alloc
