type t = { tick_seconds : float; demand : int array }

let create ~tick_seconds ~demand =
  if not (Float.is_finite tick_seconds) || tick_seconds <= 0. then
    invalid_arg "Trace.create: tick_seconds must be positive and finite";
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Trace.create: negative demand")
    demand;
  { tick_seconds; demand = Array.copy demand }

let length t = Array.length t.demand

let demand t k =
  if k < 0 || k >= Array.length t.demand then
    invalid_arg "Trace.demand: tick out of range";
  t.demand.(k)

let peak t = Array.fold_left max 0 t.demand
let total_demand t = Array.fold_left ( + ) 0 t.demand

(* --- generators --- *)

let check_noise noise =
  if not (Float.is_finite noise) || noise < 0. || noise > 1. then
    invalid_arg "Trace: noise must lie in [0, 1]"

(* One multiplicative draw per tick, taken even when noise = 0 so the
   stream position (and thus any later draws) does not depend on the
   noise setting. *)
let noisy rng ~noise d =
  let factor = 1. +. (noise *. ((2. *. Numeric.Prng.float rng) -. 1.)) in
  max 0 (int_of_float (Float.round (float_of_int d *. factor)))

let generate ?(tick_seconds = 60.) ?(noise = 0.) ~ticks ~seed shape =
  if ticks < 0 then invalid_arg "Trace: negative ticks";
  check_noise noise;
  let rng = Numeric.Prng.create seed in
  create ~tick_seconds
    ~demand:(Array.init ticks (fun k -> noisy rng ~noise (shape k)))

let diurnal ?tick_seconds ?noise ~ticks ~base ~amplitude ~period ~seed () =
  if base < 0 || amplitude < 0 then invalid_arg "Trace.diurnal: negative size";
  if period <= 0 then invalid_arg "Trace.diurnal: period must be positive";
  generate ?tick_seconds ?noise ~ticks ~seed (fun k ->
      let phase = 2. *. Float.pi *. float_of_int k /. float_of_int period in
      (* sin shifted to start at the trough: 0 at k = 0, 1 mid-period. *)
      let wave = (1. -. cos phase) /. 2. in
      base + int_of_float (Float.round (float_of_int amplitude *. wave)))

let burst ?tick_seconds ?noise ~ticks ~base ~height ~at ~width ~seed () =
  if base < 0 || height < 0 then invalid_arg "Trace.burst: negative size";
  if at < 0 || width < 0 then invalid_arg "Trace.burst: negative position";
  generate ?tick_seconds ?noise ~ticks ~seed (fun k ->
      if k >= at && k < at + width then base + height else base)

let flash_crowd ?tick_seconds ?noise ~ticks ~base ~peak ~at ~ramp ~decay ~seed
    () =
  if base < 0 || peak < base then
    invalid_arg "Trace.flash_crowd: need 0 <= base <= peak";
  if at < 0 || ramp <= 0 || decay <= 0 then
    invalid_arg "Trace.flash_crowd: at must be >= 0, ramp and decay positive";
  let excess = float_of_int (peak - base) in
  let retention = Float.exp (-1. /. float_of_int decay) in
  generate ?tick_seconds ?noise ~ticks ~seed (fun k ->
      if k < at then base
      else if k < at + ramp then
        base
        + int_of_float
            (Float.round (excess *. float_of_int (k - at) /. float_of_int ramp))
      else
        let age = k - (at + ramp) in
        base
        + int_of_float
            (Float.round (excess *. (retention ** float_of_int age))))

(* --- text format --- *)

let to_string t =
  let buf = Buffer.create (64 + (8 * Array.length t.demand)) in
  Buffer.add_string buf "trace version 1\n";
  Buffer.add_string buf (Printf.sprintf "tick-seconds %.17g\n" t.tick_seconds);
  Buffer.add_string buf "demand";
  Array.iter (fun d -> Buffer.add_string buf (Printf.sprintf " %d" d)) t.demand;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let fail fmt = Printf.ksprintf failwith fmt

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "") in
  match lines with
  | [] -> fail "trace: empty input"
  | header :: rest -> (
    (match tokens header with
    | [ "trace"; "version"; "1" ] -> ()
    | [ "trace"; "version"; v ] -> fail "trace: unsupported version %s" v
    | _ -> fail "trace: expected header 'trace version 1'");
    let tick_seconds = ref None and demand = ref None in
    List.iter
      (fun line ->
        match tokens line with
        | "tick-seconds" :: rest -> (
          match rest with
          | [ v ] -> (
            match float_of_string_opt v with
            | Some f when Float.is_finite f && f > 0. -> tick_seconds := Some f
            | _ -> fail "trace: bad tick-seconds %S" v)
          | _ -> fail "trace: tick-seconds takes one value")
        | "demand" :: values ->
          demand :=
            Some
              (List.map
                 (fun v ->
                   match int_of_string_opt v with
                   | Some d when d >= 0 -> d
                   | Some _ -> fail "trace: negative demand %s" v
                   | None -> fail "trace: bad demand value %S" v)
                 values
              |> Array.of_list)
        | key :: _ -> fail "trace: unknown key %S" key
        | [] -> ())
      rest;
    match (!tick_seconds, !demand) with
    | Some tick_seconds, Some demand -> create ~tick_seconds ~demand
    | None, _ -> fail "trace: missing tick-seconds"
    | _, None -> fail "trace: missing demand")

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (In_channel.input_all ic))

(* --- streamsim interop --- *)

let arrival t ~tick = Streamsim.Sim.Rate (float_of_int (demand t tick))

let route t ~weights =
  let assigner = Streamsim.Assign.create ~weights in
  Array.iter
    (fun d ->
      for _ = 1 to d do
        ignore (Streamsim.Assign.next assigner)
      done)
    t.demand;
  Streamsim.Assign.counts assigner

let pp ppf t =
  Format.fprintf ppf "trace: %d ticks of %gs, peak %d, total %d"
    (length t) t.tick_seconds (peak t) (total_demand t)
