open Rentcost

type outcome = {
  policy : string;
  total_cost : int;
  violations : int;
  replans : int;
}

let hours ~ticks_per_hour ~ticks =
  if ticks_per_hour <= 0 then invalid_arg "Policy: ticks_per_hour must be > 0";
  (ticks + ticks_per_hour - 1) / ticks_per_hour

let elastic_on ?config instance trace =
  let controller = Controller.create_on ?config instance in
  let plans =
    List.init (Trace.length trace) (fun k ->
        Controller.tick controller ~demand:(Trace.demand trace k))
  in
  ( {
      policy = "elastic";
      total_cost = Controller.total_charged controller;
      violations = Controller.violations controller;
      replans = Controller.replans controller;
    },
    plans )

let elastic ?config problem trace =
  elastic_on ?config (Instance.compile problem) trace

let static_peak_on ?budget ?spec ~ticks_per_hour instance trace =
  let hours = hours ~ticks_per_hour ~ticks:(Trace.length trace) in
  if hours = 0 then
    { policy = "static-peak"; total_cost = 0; violations = 0; replans = 0 }
  else begin
    let outcome =
      Solver.run ?budget ?spec ~instance
        ~objective:(Objective.min_cost ~target:(Trace.peak trace))
        ()
    in
    let fleet = Option.get outcome.Solver.allocation in
    {
      policy = "static-peak";
      total_cost = hours * fleet.Allocation.cost;
      violations = 0;
      replans = 1;
    }
  end

let static_peak ?budget ?spec ~ticks_per_hour problem trace =
  static_peak_on ?budget ?spec ~ticks_per_hour (Instance.compile problem) trace

let oracle_on ?budget ?spec ~ticks_per_hour instance trace =
  let blocks = hours ~ticks_per_hour ~ticks:(Trace.length trace) in
  let block_peak b =
    let lo = b * ticks_per_hour in
    let hi = min (Trace.length trace) (lo + ticks_per_hour) in
    let peak = ref 0 in
    for k = lo to hi - 1 do
      peak := max !peak (Trace.demand trace k)
    done;
    !peak
  in
  let demand = Array.init blocks block_peak in
  let plan = Elastic.provision_on ?budget ?spec instance ~demand in
  {
    policy = "oracle";
    total_cost = Elastic.total_cost plan;
    violations = 0;
    replans = blocks;
  }

let oracle ?budget ?spec ~ticks_per_hour problem trace =
  oracle_on ?budget ?spec ~ticks_per_hour (Instance.compile problem) trace

type comparison = {
  elastic : outcome;
  static_peak : outcome;
  oracle : outcome;
}

let compare_policies ?(config = Controller.default_config) problem trace =
  let instance = Instance.compile problem in
  let ticks_per_hour = config.Controller.ticks_per_hour in
  let budget = config.Controller.budget and spec = config.Controller.spec in
  let elastic, _plans = elastic_on ~config instance trace in
  {
    elastic;
    static_peak = static_peak_on ~budget ~spec ~ticks_per_hour instance trace;
    oracle = oracle_on ~budget ~spec ~ticks_per_hour instance trace;
  }

let savings ~of_ ~over =
  if over.total_cost = 0 then 0.
  else
    float_of_int (over.total_cost - of_.total_cost)
    /. float_of_int over.total_cost
