(** Drift-watching elastic controller.

    The controller closes the loop from a demand stream to rental
    decisions. Each {!tick} it compares the observed demand against the
    target its current fleet was solved for and applies the deadband
    decision rule:

    - demand above the provisioned throughput → the SLO is already
      violated; re-solve immediately (reactive upscale);
    - demand below [(1 − deadband) × target] → the fleet is paying for
      throughput nobody wants; re-solve at the lower target;
    - otherwise → hold: keep the current fleet, charge only the hourly
      renewals that fall due.

    Re-solves go through {!Rentcost.Solver.run} on one compiled
    instance, warm-started from the current allocation — consecutive
    targets are close, so the previous optimum is a near-optimal
    incumbent (and on downscale the solver trims it to a feasible
    seed). The desired fleet is then reconciled against the hourly
    {!Billing} ledger, which keeps already-paid machines idle for free
    until their hour boundary — so a reconfiguration plan distinguishes
    freshly-rented, renewed and released machines, and downscaling
    never refunds paid time.

    Controllers bump the [autoscale.*] telemetry counters and observe
    re-solve wall time in [autoscale.resolve_seconds]. They are not
    thread-safe; the service engine serializes ticks per session. *)

type config = {
  ticks_per_hour : int;  (** billing granularity: ticks per paid hour *)
  deadband : float;
      (** relative slack in [[0, 1)]: no downscale re-solve while
          demand stays above [(1 − deadband) × target] *)
  headroom : float;
      (** relative over-provisioning [>= 0] applied to the re-solve
          target ([target = ⌈demand × (1 + headroom)⌉]), buying slack
          against the next upward drift *)
  spec : Rentcost.Solver.spec;  (** engine for re-solves *)
  budget : Rentcost.Budget.t;  (** per-re-solve budget *)
}

(** [ticks_per_hour = 60], [deadband = 0.1], [headroom = 0.],
    [spec = Auto], unlimited budget. *)
val default_config : config

type action = Hold | Reconfigure

val action_to_string : action -> string
val action_of_string : string -> action option

(** What one tick decided — the reconfiguration plan. *)
type plan = {
  tick : int;
  demand : int;
  target : int;  (** target the fleet is solved for after this tick *)
  action : action;
  rent : int array;  (** fresh machines paid this tick, per type *)
  renew : int array;  (** hour-boundary renewals, per type *)
  release : int array;  (** expired machines dropped, per type *)
  machines : int array;  (** desired fleet after this tick, per type *)
  rho : int array;  (** per-recipe throughput split of that fleet *)
  charged : int;  (** rental cost charged this tick *)
  violation : bool;
      (** demand exceeded the provisioned throughput when the tick
          arrived (counted even though the controller reacts within
          the same tick) *)
}

type t

(** [create problem] compiles the problem (default min-cost scenario)
    and starts with an empty fleet at tick 0.
    @raise Invalid_argument on a bad [config] field. *)
val create : ?config:config -> Rentcost.Problem.t -> t

(** [create_on instance] shares an already-compiled instance (the
    service engine reuses registered instances this way). The instance
    must be compiled for the min-cost objective kind.
    @raise Invalid_argument on a bad [config] field or a
    max-throughput instance. *)
val create_on : ?config:config -> Rentcost.Instance.t -> t

(** [tick t ~demand] feeds the next observation and returns the plan.
    @raise Invalid_argument on negative demand. *)
val tick : t -> demand:int -> plan

(** {1 Counters since [create]} *)

val ticks : t -> int
val replans : t -> int
val holds : t -> int
val violations : t -> int
val total_charged : t -> int
val config : t -> config

(** The current allocation, [None] before the first re-solve. *)
val allocation : t -> Rentcost.Allocation.t option
