(** Traffic traces: time-varying demand for a recipe application.

    A trace is a sequence of per-tick throughput targets — the demand
    axis the paper holds fixed as one [ρ]. Traces come from the seeded
    synthetic generators below (diurnal sinusoid, burst, flash crowd —
    the canonical cloud load shapes) or from the replayable text
    format, and drive the {!Controller} and {!Policy} layers. All
    generators draw noise from {!Numeric.Prng}, so equal parameters and
    seeds give bit-equal traces on every machine.

    A tick is the controller's observation period; [tick_seconds]
    records its length in simulated seconds (purely descriptive here —
    billing granularity is the {!Controller}'s [ticks_per_hour]). *)

type t = private {
  tick_seconds : float;  (** length of one tick, simulated seconds *)
  demand : int array;  (** per-tick throughput target, items/time unit *)
}

(** [create ~tick_seconds ~demand] validates a trace.
    @raise Invalid_argument when [tick_seconds] is not positive and
    finite or a demand entry is negative. *)
val create : tick_seconds:float -> demand:int array -> t

val length : t -> int

(** [demand t k] is the target during tick [k].
    @raise Invalid_argument when [k] is out of range. *)
val demand : t -> int -> int

(** Highest per-tick demand (0 for an empty trace). *)
val peak : t -> int

(** [Σ_k demand_k] — total demanded item-ticks. *)
val total_demand : t -> int

(** {1 Synthetic generators}

    All generators accept [?noise] (default [0.]): each tick's demand
    is scaled by a factor uniform in [[1 − noise, 1 + noise]] drawn
    from a {!Numeric.Prng} stream seeded with [seed], then clamped at
    zero. [noise] must lie in [[0, 1]]. *)

(** [diurnal ~ticks ~base ~amplitude ~period ~seed ()] is the day/night
    sinusoid: demand starts at the [base] trough and oscillates up to
    [base + amplitude] with the given [period] in ticks.
    @raise Invalid_argument on negative sizes, [period <= 0] or a bad
    [noise]. *)
val diurnal :
  ?tick_seconds:float ->
  ?noise:float ->
  ticks:int ->
  base:int ->
  amplitude:int ->
  period:int ->
  seed:int ->
  unit ->
  t

(** [burst ~ticks ~base ~height ~at ~width ~seed ()] is a flat [base]
    with a rectangular burst of extra [height] demand covering ticks
    [[at, at + width)]. *)
val burst :
  ?tick_seconds:float ->
  ?noise:float ->
  ticks:int ->
  base:int ->
  height:int ->
  at:int ->
  width:int ->
  seed:int ->
  unit ->
  t

(** [flash_crowd ~ticks ~base ~peak ~at ~ramp ~decay ~seed ()] is the
    viral-event shape: flat [base], a linear ramp from [base] to [peak]
    over [ramp] ticks starting at [at], then a geometric decay back
    toward [base] with per-tick retention [exp(−1/decay)]. *)
val flash_crowd :
  ?tick_seconds:float ->
  ?noise:float ->
  ticks:int ->
  base:int ->
  peak:int ->
  at:int ->
  ramp:int ->
  decay:int ->
  seed:int ->
  unit ->
  t

(** {1 Replayable text format}

    {[
      trace version 1
      tick-seconds 60
      demand 40 43 51 64 ...
    ]}

    [tick-seconds] is printed with ["%.17g"], so {!of_string} recovers
    the exact float and [of_string (to_string t) = t]. Lines starting
    with [#] and blank lines are ignored. *)

val to_string : t -> string

(** @raise Failure with a descriptive message on malformed input or an
    unknown version. *)
val of_string : string -> t

(** [save t path] / [load path] write and read the text format.
    @raise Sys_error on I/O failure, [Failure] on malformed input. *)
val save : t -> string -> unit

val load : string -> t

(** {1 Streamsim interop} *)

(** [arrival t ~tick] is tick [k]'s demand as a {!Streamsim.Sim}
    arrival process ([Rate demand_k]; [Saturated] would discard the
    trace shape), for replaying one tick of the trace through the
    discrete-event simulator. *)
val arrival : t -> tick:int -> Streamsim.Sim.arrival

(** [route t ~weights] replays the whole trace through one
    largest-remainder weighted round-robin assigner
    ({!Streamsim.Assign}), treating each tick's demand as that many
    items, and returns how many items each recipe received. The counts
    sum to {!total_demand} — conservation is what the trace tests
    assert.
    @raise Invalid_argument on invalid weights (see
    {!Streamsim.Assign.create}). *)
val route : t -> weights:int array -> int array

val pp : Format.formatter -> t -> unit
