(** Policy comparison harness: elastic vs. static-peak vs. clairvoyant
    oracle, all costed under the same hourly billing model.

    - {!elastic} replays the trace through a {!Controller} — online,
      no knowledge of the future, deadband hysteresis.
    - {!static_peak} solves once for the trace peak and keeps that
      fleet for the whole horizon: the classic over-provisioned
      baseline. Zero SLO violations, maximum waste.
    - {!oracle} knows the whole trace: per billing hour it provisions
      the optimal fleet for that hour's peak demand (one hour paid per
      block) via {!Rentcost.Elastic.provision_on}. This is the
      lower-bound reference an online policy is judged against (cf.
      the competitive-ratio framing of the online machine-rental
      literature); it still pays whole hours, so it is achievable by
      an offline scheduler, not a fluid bound.

    On well-behaved traces (the seeded diurnal of the bench) the
    ordering [oracle <= elastic <= static_peak] holds and is asserted
    in [bench --smoke]; adversarial traces can break the upper half
    (e.g. a flash crowd straddling a boundary forces the elastic
    policy into mid-hour rentals the static fleet never pays). *)

type outcome = {
  policy : string;  (** ["elastic"], ["static-peak"] or ["oracle"] *)
  total_cost : int;  (** hourly-billed rental cost over the trace *)
  violations : int;  (** ticks whose demand exceeded the fleet *)
  replans : int;  (** solver invocations *)
}

(** [elastic problem trace] replays [trace] through a fresh
    {!Controller} and also returns the per-tick plans (newest last). *)
val elastic :
  ?config:Controller.config ->
  Rentcost.Problem.t ->
  Trace.t ->
  outcome * Controller.plan list

(** [static_peak ~ticks_per_hour problem trace] bills the peak fleet
    for every (possibly partial) hour of the trace. *)
val static_peak :
  ?budget:Rentcost.Budget.t ->
  ?spec:Rentcost.Solver.spec ->
  ticks_per_hour:int ->
  Rentcost.Problem.t ->
  Trace.t ->
  outcome

(** [oracle ~ticks_per_hour problem trace] provisions each hour block
    for its peak demand, warm-starting block to block. *)
val oracle :
  ?budget:Rentcost.Budget.t ->
  ?spec:Rentcost.Solver.spec ->
  ticks_per_hour:int ->
  Rentcost.Problem.t ->
  Trace.t ->
  outcome

type comparison = {
  elastic : outcome;
  static_peak : outcome;
  oracle : outcome;
}

(** [compare_policies problem trace] runs all three on one compiled
    instance; [static_peak] and [oracle] use the controller config's
    [ticks_per_hour], [spec] and [budget]. *)
val compare_policies :
  ?config:Controller.config -> Rentcost.Problem.t -> Trace.t -> comparison

(** [savings ~of_ ~over] is the relative saving of [of_] against
    [over], in [[0, 1]] when cheaper; 0 when [over] is free. *)
val savings : of_:outcome -> over:outcome -> float
