(** Hourly-billed rental ledger.

    Cloud machines bill by the hour: renting a machine at tick [t] pays
    its type's rate [c_q] once and covers service through tick
    [t + ticks_per_hour] (the hour boundary), whether or not the
    machine stays busy. Releasing early refunds nothing — the paid
    remainder is simply wasted (the busy-time model of the related
    work). The ledger therefore keeps already-paid machines around for
    free until their horizon expires, and only at expiry decides
    between renewal (demand still needs the machine) and release.

    The ledger tracks, per machine type, the multiset of paid-through
    horizons. {!step} reconciles it against the fleet the controller
    wants this tick and reports exactly what was charged. *)

type t

(** [create ~num_types ~ticks_per_hour] is an empty ledger.
    @raise Invalid_argument unless both are positive. *)
val create : num_types:int -> ticks_per_hour:int -> t

(** What one {!step} did, per machine type. *)
type event = {
  rented : int array;  (** fresh machines paid for this tick *)
  renewed : int array;  (** expired machines re-paid at the boundary *)
  released : int array;  (** expired machines dropped (never mid-hour) *)
  charged : int;  (** [Σ_q (rented_q + renewed_q)·c_q] *)
}

(** [step t ~tick ~desired ~costs] advances the ledger to [tick]:
    machines whose horizon is [<= tick] expire and are renewed only as
    far as [desired] needs them (cheapest types are not reshuffled —
    renewal keeps the machine's own type); any shortfall after renewals
    is covered by fresh rentals paid through [tick + ticks_per_hour].
    Paid machines beyond [desired] are kept idle at no charge until
    their horizon. Ticks must be non-decreasing across calls.
    @raise Invalid_argument on a decreasing tick, mis-sized arrays, or
    a negative entry. *)
val step : t -> tick:int -> desired:int array -> costs:int array -> event

(** Machines currently paid for (live horizons), per type. After
    {!step}, [held t >= desired] pointwise. *)
val held : t -> int array

(** Total charged since {!create}. *)
val total_charged : t -> int

val ticks_per_hour : t -> int
