type t = {
  ticks_per_hour : int;
  horizons : int list array;  (** per type, paid-through ticks, sorted *)
  mutable last_tick : int;
  mutable total_charged : int;
}

type event = {
  rented : int array;
  renewed : int array;
  released : int array;
  charged : int;
}

let create ~num_types ~ticks_per_hour =
  if num_types <= 0 then invalid_arg "Billing.create: num_types must be > 0";
  if ticks_per_hour <= 0 then
    invalid_arg "Billing.create: ticks_per_hour must be > 0";
  {
    ticks_per_hour;
    horizons = Array.make num_types [];
    last_tick = min_int;
    total_charged = 0;
  }

let ticks_per_hour t = t.ticks_per_hour
let total_charged t = t.total_charged
let held t = Array.map List.length t.horizons

let step t ~tick ~desired ~costs =
  let q = Array.length t.horizons in
  if Array.length desired <> q || Array.length costs <> q then
    invalid_arg "Billing.step: mis-sized desired/costs";
  if tick < t.last_tick then invalid_arg "Billing.step: tick went backwards";
  Array.iter (fun d -> if d < 0 then invalid_arg "Billing.step: negative desired") desired;
  t.last_tick <- tick;
  let rented = Array.make q 0
  and renewed = Array.make q 0
  and released = Array.make q 0
  and charged = ref 0 in
  let horizon = tick + t.ticks_per_hour in
  for i = 0 to q - 1 do
    (* A machine paid through h serves ticks < h; at tick >= h it has
       expired and must be renewed or released. *)
    let live, expired = List.partition (fun h -> h > tick) t.horizons.(i) in
    let live_n = List.length live and expired_n = List.length expired in
    let renew_n = min expired_n (max 0 (desired.(i) - live_n)) in
    let rent_n = max 0 (desired.(i) - live_n - renew_n) in
    released.(i) <- expired_n - renew_n;
    renewed.(i) <- renew_n;
    rented.(i) <- rent_n;
    charged := !charged + ((renew_n + rent_n) * costs.(i));
    let fresh = List.init (renew_n + rent_n) (fun _ -> horizon) in
    t.horizons.(i) <- List.merge compare live fresh
  done;
  t.total_charged <- t.total_charged + !charged;
  { rented; renewed; released; charged = !charged }
