examples/multi_cloud.ml: Array Format List Option Rentcost String
