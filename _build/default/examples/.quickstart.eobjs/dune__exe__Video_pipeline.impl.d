examples/video_pipeline.ml: Array Format List Option Rentcost Streamsim String
