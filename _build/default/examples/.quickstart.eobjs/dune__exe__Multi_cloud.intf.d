examples/multi_cloud.mli:
