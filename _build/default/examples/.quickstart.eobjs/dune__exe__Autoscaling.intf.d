examples/autoscaling.mli:
