examples/capacity_planning.ml: Format List Printf Rentcost
