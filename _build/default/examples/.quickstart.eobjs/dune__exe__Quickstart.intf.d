examples/quickstart.mli:
