examples/quickstart.ml: Format Numeric Option Rentcost Streamsim
