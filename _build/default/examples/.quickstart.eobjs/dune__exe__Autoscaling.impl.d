examples/autoscaling.ml: Array Format Rentcost String
