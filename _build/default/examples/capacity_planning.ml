(* Capacity planning with the Analysis module: how does the optimal
   bill grow with the throughput target, where are the "buckets" in
   which extra throughput is free (§ VII of the paper observes them for
   H1), and which machine prices actually matter?

   Run with: dune exec examples/capacity_planning.exe *)

module A = Rentcost.Analysis

let problem = Rentcost.Problem.illustrating

let () =
  (* 1. Optimal cost curve: marginal cost of throughput. *)
  let targets = List.init 11 (fun i -> 20 * i) in
  let curve = A.cost_curve (A.ilp_solver ()) problem ~targets in
  Format.printf "Optimal cost curve:@.%8s %8s %14s@." "target" "cost" "cost/target";
  List.iter
    (fun (t, a) ->
      Format.printf "%8d %8d %14s@." t a.Rentcost.Allocation.cost
        (if t = 0 then "-"
         else Printf.sprintf "%.2f" (float_of_int a.Rentcost.Allocation.cost /. float_of_int t)))
    curve;

  (* 2. H1 buckets: ranges of targets with identical best-single-recipe
     cost. Inside a bucket, extra throughput costs nothing — the rented
     fleet has idle capacity. *)
  Format.printf "@.H1 buckets up to 100 (idle-capacity plateaus):@.";
  List.iter
    (fun (lo, hi, cost) -> Format.printf "  [%3d, %3d] -> cost %d@." lo hi cost)
    (A.h1_buckets problem ~max_target:100);

  (* 3. Price sensitivity: raise each machine type's price 25% and see
     which types the optimal plan actually depends on. *)
  let baseline, per_type = A.price_sensitivity problem ~target:70 ~percent:25 in
  Format.printf "@.Price sensitivity at target 70 (baseline %d, +25%% per type):@."
    baseline;
  List.iter
    (fun (q, c) ->
      Format.printf "  type %d dearer -> optimum %d (%s)@." q c
        (if c = baseline then "insensitive: rerouted around it"
         else Printf.sprintf "+%d" (c - baseline)))
    per_type
