(* Production command-line tool: solve, inspect and validate
   user-supplied problem instances (Problem_format files).

   Usage:
     dune exec bin/rentcost.exe -- example > app.rentcost
     dune exec bin/rentcost.exe -- info app.rentcost
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70
     dune exec bin/rentcost.exe -- solve app.rentcost --target 70 -a h32jump
     dune exec bin/rentcost.exe -- validate app.rentcost --target 70 *)

open Cmdliner

let algorithms =
  [ ("ilp", `Ilp); ("dp", `Dp); ("h0", `H Rentcost.Heuristics.H0);
    ("h1", `H Rentcost.Heuristics.H1); ("h2", `H Rentcost.Heuristics.H2);
    ("h31", `H Rentcost.Heuristics.H31); ("h32", `H Rentcost.Heuristics.H32);
    ("h32jump", `H Rentcost.Heuristics.H32_jump) ]

let load path =
  try Ok (Rentcost.Problem_format.load path) with
  | Failure msg | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg

let print_allocation problem target (a : Rentcost.Allocation.t) =
  Format.printf "cost %d@." a.Rentcost.Allocation.cost;
  Array.iteri
    (fun j r -> if r > 0 then Format.printf "recipe %d: throughput %d@." j r)
    a.Rentcost.Allocation.rho;
  Array.iteri
    (fun q x -> if x > 0 then Format.printf "type %d: rent %d machine(s)@." q x)
    a.Rentcost.Allocation.machines;
  if not (Rentcost.Allocation.feasible problem ~target a) then
    Format.printf "WARNING: allocation does not reach the target@."

let solve_with problem ~target ~algorithm ~seed ~step ~time_limit ~node_limit =
  match algorithm with
  | `Ilp ->
    let o = Rentcost.Ilp.solve ?time_limit ?node_limit problem ~target in
    (match o.Rentcost.Ilp.allocation with
     | Some a ->
       Format.printf "%s (nodes: %d, %.3f s%s)@."
         (if o.Rentcost.Ilp.proved_optimal then "optimal" else "feasible (not proved)")
         o.Rentcost.Ilp.nodes o.Rentcost.Ilp.elapsed
         (match o.Rentcost.Ilp.best_bound with
          | Some b when not o.Rentcost.Ilp.proved_optimal ->
            Printf.sprintf ", lower bound %d" b
          | _ -> "");
       Ok a
     | None -> Error "no solution found within the limits")
  | `Dp ->
    if Rentcost.Problem.is_disjoint problem then
      Ok (Rentcost.Dp_disjoint.solve problem ~target)
    else Error "dp requires recipes with disjoint type sets (try: ilp)"
  | `H name ->
    let params = { Rentcost.Heuristics.default_params with step } in
    let res =
      Rentcost.Heuristics.run ~params name ~rng:(Numeric.Prng.create seed) problem
        ~target
    in
    Format.printf "heuristic %s (%d cost evaluations)@."
      (Rentcost.Heuristics.name_to_string name)
      res.Rentcost.Heuristics.evaluations;
    Ok res.Rentcost.Heuristics.allocation

let cmd_solve path target algorithm seed step time_limit node_limit =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem ->
    (match solve_with problem ~target ~algorithm ~seed ~step ~time_limit ~node_limit with
     | Ok a ->
       print_allocation problem target a;
       `Ok ()
     | Error msg -> `Error (false, msg))

let cmd_info path =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem ->
    let open Rentcost in
    Format.printf "types: %d@.recipes: %d@." (Problem.num_types problem)
      (Problem.num_recipes problem);
    Array.iteri
      (fun j r ->
        Format.printf "recipe %d: %d tasks, %d edges, critical path %d, types {%s}@."
          j (Task_graph.num_tasks r)
          (List.length (Task_graph.edges r))
          (Task_graph.critical_path_length r)
          (String.concat "," (List.map string_of_int (Task_graph.types_used r))))
      (Problem.recipes problem);
    Format.printf "classification: %s@."
      (if Problem.is_blackbox problem then "black-box (§ V-A: use dp or ilp)"
       else if Problem.is_disjoint problem then "disjoint types (§ V-B: use dp)"
       else "shared types (§ V-C: use ilp or heuristics)");
    `Ok ()

let cmd_validate path target items =
  match load path with
  | Error msg -> `Error (false, msg)
  | Ok problem ->
    (match (Rentcost.Ilp.solve problem ~target).Rentcost.Ilp.allocation with
     | None -> `Error (false, "no solution")
     | Some a ->
       print_allocation problem target a;
       let report =
         Streamsim.Sim.run problem a
           { Streamsim.Sim.default_config with Streamsim.Sim.items }
       in
       Format.printf
         "simulated: throughput %.2f, mean latency %.4f, max reorder buffer %d@."
         report.Streamsim.Sim.throughput report.Streamsim.Sim.mean_latency
         report.Streamsim.Sim.max_reorder;
       `Ok ())

let cmd_example () =
  print_string (Rentcost.Problem_format.to_string Rentcost.Problem.illustrating)

(* --- cmdliner plumbing --- *)

let algorithm_arg =
  Arg.(value
      & opt (enum algorithms) `Ilp
      & info [ "algorithm"; "a" ] ~docv:"ALG"
          ~doc:"One of: ilp, dp, h0, h1, h2, h31, h32, h32jump.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let step_arg =
  Arg.(value & opt int 1 & info [ "step" ] ~docv:"D" ~doc:"Heuristic exchange quantum.")

let time_limit_arg =
  Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"S"
         ~doc:"ILP wall-clock limit in seconds.")

let node_limit_arg =
  Arg.(value & opt (some int) None & info [ "node-limit" ] ~docv:"N"
         ~doc:"ILP branch-and-bound node limit.")

let items_arg =
  Arg.(value & opt int 2000 & info [ "items" ] ~docv:"N" ~doc:"Simulated stream items.")

let subcommand =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"COMMAND"
         ~doc:"solve, info, validate, or example.")

let main sub path target algorithm seed step time_limit node_limit items =
  match (sub, path, target) with
  | "example", _, _ -> `Ok (cmd_example ())
  | "info", Some path, _ -> cmd_info path
  | "solve", Some path, Some target ->
    cmd_solve path target algorithm seed step time_limit node_limit
  | "validate", Some path, Some target -> cmd_validate path target items
  | ("solve" | "validate"), Some _, None ->
    `Error (true, "--target is required")
  | ("info" | "solve" | "validate"), None, _ ->
    `Error (true, "a problem FILE is required")
  | (other, _, _) -> `Error (true, Printf.sprintf "unknown command %S" other)

let cmd =
  let doc = "Solve cloud rental-cost problems from instance files" in
  let info = Cmd.info "rentcost" ~doc in
  Cmd.v info
    Term.(
      ret
        (const main $ subcommand
        $ Arg.(value & pos 1 (some file) None
               & info [] ~docv:"FILE" ~doc:"Problem file.")
        $ Arg.(value & opt (some int) None
               & info [ "target"; "t" ] ~docv:"N" ~doc:"Target throughput.")
        $ algorithm_arg $ seed_arg $ step_arg $ time_limit_arg $ node_limit_arg
        $ items_arg))

let () = exit (Cmd.eval cmd)
