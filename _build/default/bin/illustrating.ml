(* Reproduces the paper's § VII illustrating example:
   Table II (the platform), Figure 2 (the three recipes) and Table III
   (ILP + heuristics for every target 10..200).

   Usage: dune exec bin/illustrating.exe [-- seed] *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42
  in
  let problem = Rentcost.Problem.illustrating in
  Format.printf "Platform (paper Table II):@.%a@." Rentcost.Platform.pp
    (Rentcost.Problem.platform problem);
  Format.printf "Recipes (paper Figure 2, types 0-based):@.%a@." Rentcost.Problem.pp
    problem;
  Format.printf "Table III reproduction (heuristic step = 10, seed = %d):@." seed;
  Cloudsim.Report.print_table3 Format.std_formatter
    (Cloudsim.Experiments.table3 ~seed ())
