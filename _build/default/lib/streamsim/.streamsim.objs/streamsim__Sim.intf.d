lib/streamsim/sim.mli: Rentcost
