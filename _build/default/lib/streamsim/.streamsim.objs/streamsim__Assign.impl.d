lib/streamsim/assign.ml: Array
