lib/streamsim/assign.mli:
