lib/streamsim/sim.ml: Array Assign Float Hashtbl List Numeric Option Pqueue Queue Rentcost
