module PB = Rentcost.Problem
module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module AL = Rentcost.Allocation

type arrival = Saturated | Rate of float

type failure_model = { mtbf : float; repair_time : float; seed : int }

type config = {
  items : int;
  warmup_fraction : float;
  arrival : arrival;
  failures : failure_model option;
}

let default_config =
  { items = 1000; warmup_fraction = 0.2; arrival = Saturated; failures = None }

type report = {
  completed : int;
  makespan : float;
  throughput : float;
  utilization : float array;
  max_reorder : int;
  mean_latency : float;
  recipe_counts : int array;
  failures : int;
  reexecutions : int;
}

type event =
  | Item_arrival of int
  | Task_done of int * int * int  (* item, task, dispatch id *)
  | Machine_failure of int  (* machine type *)
  | Machine_repair of int  (* machine type *)

module Event_queue = Pqueue.Make (struct
  type t = float * int * event

  (* Order by time, then insertion sequence: deterministic replay. *)
  let compare (ta, sa, _) (tb, sb, _) =
    match Float.compare ta tb with 0 -> compare sa sb | c -> c
end)

(* Per-item run-time state. *)
type item = {
  recipe : int;
  arrival_time : float;
  pending : int array;  (* unfinished predecessor count per task *)
  mutable remaining : int;  (* unfinished tasks *)
  mutable completion_time : float;
}

let run problem allocation config =
  if config.items <= 0 then invalid_arg "Sim.run: items must be positive";
  if config.warmup_fraction < 0.0 || config.warmup_fraction >= 1.0 then
    invalid_arg "Sim.run: warmup_fraction must be in [0, 1)";
  (match config.arrival with
   | Rate r when r <= 0.0 -> invalid_arg "Sim.run: arrival rate must be positive"
   | Rate _ | Saturated -> ());
  (match config.failures with
   | Some { mtbf; repair_time; _ } ->
     if mtbf <= 0.0 then invalid_arg "Sim.run: mtbf must be positive";
     if repair_time < 0.0 then invalid_arg "Sim.run: repair_time must be non-negative"
   | None -> ());
  let platform = PB.platform problem in
  let q_count = PB.num_types problem in
  let rho = allocation.AL.rho and machines = allocation.AL.machines in
  if Array.for_all (( = ) 0) rho then
    invalid_arg "Sim.run: allocation routes no throughput";
  (* Deadlock guard: every type used by an active recipe needs at
     least one machine. *)
  Array.iteri
    (fun j w ->
      if w > 0 then
        List.iter
          (fun q ->
            if machines.(q) = 0 then
              invalid_arg "Sim.run: active recipe needs a machine type with no \
                           rented machine")
          (TG.types_used (PB.recipe problem j)))
    rho;
  let assigner = Assign.create ~weights:rho in
  let items =
    Array.init config.items (fun k ->
        let recipe = Assign.next assigner in
        let g = PB.recipe problem recipe in
        let n = TG.num_tasks g in
        let arrival_time =
          match config.arrival with Saturated -> 0.0 | Rate r -> float_of_int k /. r
        in
        { recipe;
          arrival_time;
          pending = Array.init n (fun t -> Array.length (TG.preds g t));
          remaining = n;
          completion_time = nan })
  in
  let queue = Event_queue.create () in
  let seq = ref 0 in
  let push time ev =
    incr seq;
    Event_queue.push queue (time, !seq, ev)
  in
  let ready : (int * int) Queue.t array = Array.init q_count (fun _ -> Queue.create ()) in
  let free = Array.copy machines in
  let busy_time = Array.make q_count 0.0 in
  let service q = 1.0 /. float_of_int (PF.throughput platform q) in
  (* Failure machinery: in-flight tasks are tracked so a dying machine
     can abort the one it runs; aborted completions are invalidated
     lazily by dispatch id. *)
  let dispatch_id = ref 0 in
  let inflight : (int, int * int) Hashtbl.t array =
    Array.init q_count (fun _ -> Hashtbl.create 8)
  in
  let cancelled = Hashtbl.create 8 in
  let capacity = Array.copy machines in
  let failure_count = ref 0 and reexecution_count = ref 0 in
  let dispatch now q =
    while free.(q) > 0 && not (Queue.is_empty ready.(q)) do
      let i, task = Queue.pop ready.(q) in
      free.(q) <- free.(q) - 1;
      busy_time.(q) <- busy_time.(q) +. service q;
      incr dispatch_id;
      Hashtbl.replace inflight.(q) !dispatch_id (i, task);
      push (now +. service q) (Task_done (i, task, !dispatch_id))
    done
  in
  let enqueue_task now i task =
    let g = PB.recipe problem items.(i).recipe in
    let q = TG.type_of g task in
    Queue.add (i, task) ready.(q);
    dispatch now q
  in
  (* Reorder buffer: emit items strictly in arrival index order. *)
  let emitted = ref 0 in
  let done_flags = Array.make config.items false in
  let held = ref 0 and max_reorder = ref 0 in
  let completed = ref 0 in
  let item_completed i =
    incr completed;
    done_flags.(i) <- true;
    incr held;
    while !emitted < config.items && done_flags.(!emitted) do
      incr emitted;
      decr held
    done;
    if !held > !max_reorder then max_reorder := !held
  in
  Array.iteri (fun i it -> push it.arrival_time (Item_arrival i)) items;
  (* Exponential failure inter-arrival per type, rate proportional to
     the live machine count. Failures stop being scheduled once the
     stream has drained, so the event loop terminates. *)
  let failure_rng =
    Option.map (fun f -> Numeric.Prng.create f.seed) config.failures
  in
  let exponential rng mean =
    mean *. -.log (1.0 -. Numeric.Prng.float rng)
  in
  let schedule_failure now q =
    match (config.failures, failure_rng) with
    | Some f, Some rng when capacity.(q) > 0 && !completed < config.items ->
      let mean = f.mtbf /. float_of_int capacity.(q) in
      push (now +. exponential rng mean) (Machine_failure q)
    | _ -> ()
  in
  (match config.failures with
   | Some _ ->
     for q = 0 to q_count - 1 do
       schedule_failure 0.0 q
     done
   | None -> ());
  let makespan = ref 0.0 in
  let rec drain () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (now, _, ev) ->
      if now > !makespan then makespan := now;
      (match ev with
       | Item_arrival i ->
         let g = PB.recipe problem items.(i).recipe in
         List.iter (fun task -> enqueue_task now i task) (TG.sources g)
       | Task_done (i, task, id) ->
         let it = items.(i) in
         let g = PB.recipe problem it.recipe in
         let q = TG.type_of g task in
         if Hashtbl.mem cancelled id then Hashtbl.remove cancelled id
         else begin
           Hashtbl.remove inflight.(q) id;
           free.(q) <- free.(q) + 1;
           it.remaining <- it.remaining - 1;
           Array.iter
             (fun succ ->
               it.pending.(succ) <- it.pending.(succ) - 1;
               if it.pending.(succ) = 0 then enqueue_task now i succ)
             (TG.succs g task);
           if it.remaining = 0 then begin
             it.completion_time <- now;
             item_completed i
           end;
           dispatch now q
         end
       | Machine_failure q ->
         (match config.failures with
          | None -> ()
          | Some f ->
            if capacity.(q) > 0 && !completed < config.items then begin
              incr failure_count;
              capacity.(q) <- capacity.(q) - 1;
              if free.(q) > 0 then
                (* an idle machine died *)
                free.(q) <- free.(q) - 1
              else begin
                (* abort one in-flight task: re-queue it from scratch *)
                match Hashtbl.fold (fun id v _ -> Some (id, v)) inflight.(q) None with
                | None -> ()
                | Some (id, (i, task)) ->
                  Hashtbl.remove inflight.(q) id;
                  Hashtbl.replace cancelled id ();
                  incr reexecution_count;
                  Queue.add (i, task) ready.(q)
              end;
              push (now +. f.repair_time) (Machine_repair q);
              schedule_failure now q
            end)
       | Machine_repair q ->
         (* One failure timer is kept pending per type with live
            machines; when the last machine of a type died, the timer
            lapsed and must be re-armed by its first repair. *)
         let was_dead = capacity.(q) = 0 in
         capacity.(q) <- capacity.(q) + 1;
         free.(q) <- free.(q) + 1;
         if was_dead then schedule_failure now q;
         dispatch now q);
      drain ()
  in
  drain ();
  assert (!completed = config.items);
  (* Steady-state throughput over the post-warmup completion window. *)
  let completions = Array.map (fun it -> it.completion_time) items in
  Array.sort Float.compare completions;
  let skip = int_of_float (config.warmup_fraction *. float_of_int config.items) in
  let throughput =
    let n = config.items - skip in
    if n < 2 then 0.0
    else begin
      let t0 = completions.(skip) and t1 = completions.(config.items - 1) in
      if t1 > t0 then float_of_int (n - 1) /. (t1 -. t0) else infinity
    end
  in
  let utilization =
    Array.init q_count (fun q ->
        if machines.(q) = 0 || !makespan <= 0.0 then 0.0
        else busy_time.(q) /. (float_of_int machines.(q) *. !makespan))
  in
  let mean_latency =
    let sum =
      Array.fold_left
        (fun acc it -> acc +. (it.completion_time -. it.arrival_time))
        0.0 items
    in
    sum /. float_of_int config.items
  in
  { completed = !completed;
    makespan = !makespan;
    throughput;
    utilization;
    max_reorder = !max_reorder;
    mean_latency;
    recipe_counts = Assign.counts assigner;
    failures = !failure_count;
    reexecutions = !reexecution_count }

let sustains problem allocation ~target =
  if target = 0 then true
  else begin
    let config = { default_config with items = max 500 (4 * target) } in
    let report = run problem allocation config in
    report.throughput >= 0.98 *. float_of_int target
  end
