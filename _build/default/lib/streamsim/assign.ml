(* Largest-remainder weighted round-robin: each recipe accumulates
   credit proportional to its weight; the next item goes to the recipe
   with the highest pending credit. Deterministic tie-break by index. *)

type t = {
  weights : int array;
  weight_sum : int;
  credit : int array;  (* scaled by weight_sum to stay in integers *)
  counts : int array;
  mutable total : int;
}

let create ~weights =
  if Array.length weights = 0 then invalid_arg "Assign.create: no weights";
  Array.iter (fun w -> if w < 0 then invalid_arg "Assign.create: negative weight") weights;
  let weight_sum = Array.fold_left ( + ) 0 weights in
  if weight_sum = 0 then invalid_arg "Assign.create: all weights are zero";
  { weights = Array.copy weights;
    weight_sum;
    credit = Array.make (Array.length weights) 0;
    counts = Array.make (Array.length weights) 0;
    total = 0 }

let next t =
  let best = ref (-1) in
  Array.iteri
    (fun j w ->
      t.credit.(j) <- t.credit.(j) + w;
      if !best < 0 || t.credit.(j) > t.credit.(!best) then best := j)
    t.weights;
  let j = !best in
  t.credit.(j) <- t.credit.(j) - t.weight_sum;
  t.counts.(j) <- t.counts.(j) + 1;
  t.total <- t.total + 1;
  j

let counts t = Array.copy t.counts
let total t = t.total
