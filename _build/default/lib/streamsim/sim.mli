(** Discrete-event execution of a stream on a rented platform.

    The paper's evaluation scores allocations analytically; this
    simulator closes the loop by actually *running* the DAG stream on
    the rented machines, validating the central modelling assumption
    (machine counts [x_q] with [x_q·r_q >= load_q] sustain the target
    throughput) and quantifying the reorder buffer that § I assumes
    exists but never sizes.

    Semantics:
    - items enter either as an infinite backlog ([`Saturated]) or at a
      fixed arrival rate ([`Rate λ], item [k] arriving at [k/λ]);
    - item [k] is routed to a recipe by weighted round-robin on the
      allocation's [ρ_j] ({!module:Assign});
    - each task of type [q] occupies one machine of type [q] for
      exactly [1/r_q] time units; tasks become ready when all their
      DAG predecessors complete; ready tasks are served FIFO;
    - finished items leave through an in-order reorder buffer.

    The engine is a classic event-queue simulation (binary heap keyed
    by time, deterministic tie-breaking), so results are exactly
    reproducible. *)

type arrival = Saturated | Rate of float

(** Machine-failure injection (the reliability dimension of the
    related work the paper cites): each live machine of a type fails
    after an exponential delay with mean [mtbf]; a failed machine
    aborts its in-flight task (re-executed from scratch) and returns
    to service after [repair_time]. Failure draws come from a
    dedicated PRNG seeded with [seed], independent of the workload. *)
type failure_model = { mtbf : float; repair_time : float; seed : int }

type config = {
  items : int;  (** stream instances to push through *)
  warmup_fraction : float;
      (** fraction of earliest-finishing items excluded from the
          steady-state throughput estimate (default 0.2) *)
  arrival : arrival;
  failures : failure_model option;  (** default [None]: reliable machines *)
}

val default_config : config

type report = {
  completed : int;  (** items fully processed *)
  makespan : float;  (** completion time of the last item *)
  throughput : float;
      (** steady-state output rate: items per time unit over the
          post-warmup window *)
  utilization : float array;
      (** per machine type: busy machine-time / available machine-time
          (0 for types with no rented machine) *)
  max_reorder : int;
      (** peak number of finished items held back waiting for an
          earlier item to finish (the § I buffer) *)
  mean_latency : float;  (** mean item sojourn time (completion − arrival) *)
  recipe_counts : int array;  (** items routed to each recipe *)
  failures : int;  (** machine failures injected *)
  reexecutions : int;  (** tasks aborted by failures and re-run *)
}

(** [run problem allocation config] executes the stream.
    @raise Invalid_argument when the allocation shape does not match
    the problem, when [config.items <= 0], or when a recipe with
    positive weight needs a machine type with zero rented machines
    (the stream would deadlock). *)
val run : Rentcost.Problem.t -> Rentcost.Allocation.t -> config -> report

(** [sustains problem allocation ~target] is a convenience check: runs
    a saturated simulation and reports whether the measured steady
    throughput reaches [target] (within a 2 % tolerance accounting for
    finite-horizon edge effects). *)
val sustains : Rentcost.Problem.t -> Rentcost.Allocation.t -> target:int -> bool
