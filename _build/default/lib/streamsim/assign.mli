(** Deterministic assignment of stream items to recipes.

    The paper splits the target throughput [ρ] into per-recipe
    throughputs [ρ_j]; at execution time consecutive data items must be
    routed to recipes in those proportions. This module implements
    largest-remainder weighted round-robin: after any prefix of [n]
    items, recipe [j] has received [⌊n·ρ_j/ρ⌋] or [⌈n·ρ_j/ρ⌉] items —
    the smoothest integer approximation of the split. *)

type t

(** [create ~weights] builds an assigner; weights are the [ρ_j]
    (non-negative, at least one positive).
    @raise Invalid_argument otherwise. *)
val create : weights:int array -> t

(** [next t] returns the recipe index for the next item. *)
val next : t -> int

(** [counts t] is how many items each recipe has received so far. *)
val counts : t -> int array

(** [total t] is the number of items assigned so far. *)
val total : t -> int
