(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the library (heuristics H0/H2/H31,
    the instance generator of {!module:Cloudsim}) draws randomness from
    this module so that experiments are exactly reproducible from a
    seed, independently of OCaml's global [Random] state. *)

type t

(** [create seed] is a fresh generator; equal seeds give equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator while
    advancing [t]. Useful to give sub-experiments their own streams. *)
val split : t -> t

(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    when [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument when [hi < lo]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t arr] picks a uniform element. @raise Invalid_argument on
    an empty array. *)
val choose : t -> 'a array -> 'a
