(** Arbitrary-precision signed integers.

    The representation uses base-[2^30] limbs so that all intermediate
    products fit in OCaml's 63-bit native [int] without overflow. All
    values are immutable; all functions are pure.

    This module exists because the sealed build environment ships no
    [zarith]; the exact simplex and branch-and-bound solvers of
    {!module:Lp} and {!module:Milp} require overflow-free arithmetic. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer (any value of [int]). *)
val of_int : int -> t

(** [to_int t] is [Some n] when [t] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn t] is [t] as a native [int].
    @raise Failure when [t] does not fit. *)
val to_int_exn : t -> int

(** [of_string s] parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string t] is the decimal representation of [t]. *)
val to_string : t -> string

(** [to_float t] is the nearest (approximate) float. *)
val to_float : t -> float

(** {1 Queries} *)

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool

(** [num_bits t] is the position of the highest set bit of [|t|]
    ([0] for zero). *)
val num_bits : t -> int

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and
    [r] carrying the sign of [a] (truncated division, like [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

(** Truncated quotient. @raise Division_by_zero when divisor is zero. *)
val div : t -> t -> t

(** Truncated remainder. @raise Division_by_zero when divisor is zero. *)
val rem : t -> t -> t

(** [fdiv a b] is the floor division [⌊a / b⌋]. *)
val fdiv : t -> t -> t

(** [cdiv a b] is the ceiling division [⌈a / b⌉]. *)
val cdiv : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor;
    [gcd zero zero = zero]. *)
val gcd : t -> t -> t

(** [pow b e] is [b] raised to the non-negative native exponent [e].
    @raise Invalid_argument when [e < 0]. *)
val pow : t -> int -> t

(** [shift_left t k] multiplies by [2^k] ([k >= 0]). *)
val shift_left : t -> int -> t

(** {1 Infix operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Printing and hashing} *)

val pp : Format.formatter -> t -> unit
val hash : t -> int
