(* Arbitrary-precision integers over base-2^30 limbs.

   Representation invariants:
   - [mag] is little-endian, has no trailing (most-significant) zero limb;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1;
   - every limb is in [0, 2^30). *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits (* 2^30 *)
let mask = base - 1

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* [abs min_int] overflows; |min_int| = 2^62 = 4 * (2^30)^2. *)
    { sign = -1; mag = [| 0; 0; 4 |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let a = Stdlib.abs n in
    let rec count n acc = if n = 0 then acc else count (n lsr base_bits) (acc + 1) in
    let mag = Array.make (count a 0) 0 in
    let rec fill i n =
      if n <> 0 then begin
        mag.(i) <- n land mask;
        fill (i + 1) (n lsr base_bits)
      end
    in
    fill 0 a;
    { sign; mag }
  end

let sign t = t.sign
let is_zero t = t.sign = 0
let is_negative t = t.sign < 0

(* Compare magnitudes: -1, 0, 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign = 0 then 0
  else if a.sign > 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let res = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    res.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  res.(lmax) <- !carry;
  res

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let res = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      res.(i) <- d + base;
      borrow := 1
    end else begin
      res.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  res

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> make a.sign (sub_mag a.mag b.mag)
    | _ -> make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let is_one t = equal t one
let succ t = add t one
let pred t = sub t one

(* Magnitude multiplication, schoolbook. Intermediate products fit:
   limb*limb <= (2^30-1)^2 < 2^60, plus carries stays < 2^62. *)
let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let res = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let p = (ai * b.(j)) + res.(i + j) + !carry in
        res.(i + j) <- p land mask;
        carry := p lsr base_bits
      done;
      (* propagate remaining carry *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = res.(!k) + !carry in
        res.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    end
  done;
  res

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

(* Short division of a magnitude by a single positive limb [d] < base.
   Returns (quotient magnitude, remainder int). *)
let divmod_mag_small u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl base_bits) lor u.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Shift a magnitude left by s bits, 0 <= s < base_bits, into an array of
   length [n + 1] (extra high limb). *)
let shl_mag u s extra =
  let n = Array.length u in
  let res = Array.make (n + extra) 0 in
  if s = 0 then Array.blit u 0 res 0 n
  else begin
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (u.(i) lsl s) lor !carry in
      res.(i) <- v land mask;
      carry := v lsr base_bits
    done;
    if extra > 0 then res.(n) <- !carry else assert (!carry = 0)
  end;
  res

(* Shift a magnitude right by s bits, 0 <= s < base_bits. *)
let shr_mag u s =
  let n = Array.length u in
  let res = Array.make n 0 in
  if s = 0 then Array.blit u 0 res 0 n
  else begin
    let carry = ref 0 in
    for i = n - 1 downto 0 do
      let v = u.(i) in
      res.(i) <- (v lsr s) lor (!carry lsl (base_bits - s));
      carry := v land ((1 lsl s) - 1)
    done
  end;
  res

(* Knuth Algorithm D: divide magnitude [u] by magnitude [v],
   Array.length v >= 2, |u| >= |v|. Returns (quotient, remainder). *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  (* Normalize so the top limb of v has its high bit set. *)
  let rec lead_bits x acc = if x = 0 then acc else lead_bits (x lsr 1) (acc + 1) in
  let s = base_bits - lead_bits v.(n - 1) 0 in
  let vn = shl_mag v s 0 in
  let un = shl_mag u s 1 in
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    (* Estimate qhat from the top two limbs of the current remainder. *)
    let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (top / vn.(n - 1)) in
    let rhat = ref (top mod vn.(n - 1)) in
    let continue_correct = ref true in
    while !continue_correct do
      if
        !qhat >= base
        || !qhat * vn.(n - 2) > (!rhat lsl base_bits) lor un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then continue_correct := false
      end
      else continue_correct := false
    done;
    (* Multiply and subtract: un[j .. j+n] -= qhat * vn. *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !borrow in
      let sub = un.(j + i) - (p land mask) in
      un.(j + i) <- sub land mask;
      borrow := (p lsr base_bits) + (if sub < 0 then 1 else 0)
    done;
    let t = un.(j + n) - !borrow in
    if t < 0 then begin
      (* qhat was one too large: add back. *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let sum = un.(j + i) + vn.(i) + !carry in
        un.(j + i) <- sum land mask;
        carry := sum lsr base_bits
      done;
      un.(j + n) <- (t + !carry) land mask
    end
    else un.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let r = shr_mag (Array.sub un 0 n) s in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c < 0 then (zero, a)
    else if c = 0 then (make (a.sign * b.sign) [| 1 |], zero)
    else begin
      let qmag, rmag =
        if Array.length b.mag = 1 then begin
          let q, r = divmod_mag_small a.mag b.mag.(0) in
          (q, if r = 0 then [||] else [| r |])
        end
        else divmod_mag_knuth a.mag b.mag
      in
      (make (a.sign * b.sign) qmag, make a.sign rmag)
    end
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv a b =
  let q, r = divmod a b in
  if is_zero r || sign r = sign b then q else pred q

let cdiv a b =
  let q, r = divmod a b in
  if is_zero r || sign r <> sign b then q else succ q

let rec gcd_loop a b = if is_zero b then a else gcd_loop b (rem a b)
let gcd a b = gcd_loop (abs a) (abs b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if t.sign = 0 || k = 0 then t
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let shifted = shl_mag t.mag bit_shift 1 in
    let res = Array.make (Array.length shifted + limb_shift) 0 in
    Array.blit shifted 0 res limb_shift (Array.length shifted);
    make t.sign res
  end

let to_int t =
  (* A native int holds at most 62 bits of magnitude (plus min_int). *)
  let bits = num_bits t in
  if bits <= 62 then begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor t.mag.(i)
    done;
    Some (if t.sign < 0 then - !v else !v)
  end
  else if t.sign < 0 && bits = 63 && equal t (of_int min_int) then Some min_int
  else None

let to_int_exn t =
  match to_int t with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value does not fit in int"

let to_float t =
  let f = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  if t.sign < 0 then -. !f else !f

(* Decimal I/O via chunks of 9 digits (10^9 < 2^30). *)
let chunk = 1_000_000_000
let chunk_digits = 9

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = divmod_mag_small mag chunk in
        chunks (normalize_mag q) (r :: acc)
      end
    in
    let parts = chunks t.mag [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match parts with
     | [] -> assert false
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%09d" p)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let big_chunk = of_int chunk in
  let i = ref start in
  while !i < len do
    let stop = Stdlib.min len (!i + chunk_digits) in
    (* First chunk may be shorter so that all later chunks are full. *)
    let first_len = (len - start) mod chunk_digits in
    let stop = if !i = start && first_len <> 0 then start + first_len else stop in
    let part = String.sub s !i (stop - !i) in
    String.iter
      (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit")
      part;
    let width = stop - !i in
    let mult = if width = chunk_digits then big_chunk else pow (of_int 10) width in
    acc := add (mul !acc mult) (of_int (int_of_string part));
    i := stop
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash t =
  Array.fold_left (fun acc limb -> (acc * 31) + limb) t.sign t.mag

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
