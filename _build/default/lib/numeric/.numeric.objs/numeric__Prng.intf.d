lib/numeric/prng.mli:
