(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Small state, solid statistical quality, and
   trivially reproducible across platforms. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))
