type t = { rho : int array; machines : int array; cost : int }

let ceil_div a b = (a + b - 1) / b

let check_rho problem rho =
  if Array.length rho <> Problem.num_recipes problem then
    invalid_arg "Allocation: rho has wrong length";
  Array.iter (fun r -> if r < 0 then invalid_arg "Allocation: negative throughput") rho

let loads problem ~rho =
  check_rho problem rho;
  let q = Problem.num_types problem in
  let loads = Array.make q 0 in
  Array.iteri
    (fun j rj ->
      if rj > 0 then
        for k = 0 to q - 1 do
          loads.(k) <- loads.(k) + (Problem.type_count problem j k * rj)
        done)
    rho;
  loads

let cost_of_machines problem machines =
  let platform = Problem.platform problem in
  let total = ref 0 in
  Array.iteri (fun q x -> total := !total + (x * Platform.cost platform q)) machines;
  !total

let of_rho problem ~rho =
  let platform = Problem.platform problem in
  let loads = loads problem ~rho in
  let machines =
    Array.mapi (fun q load -> ceil_div load (Platform.throughput platform q)) loads
  in
  { rho = Array.copy rho; machines; cost = cost_of_machines problem machines }

let make problem ~rho ~machines =
  let platform = Problem.platform problem in
  if Array.length machines <> Problem.num_types problem then
    invalid_arg "Allocation.make: machines has wrong length";
  Array.iter (fun x -> if x < 0 then invalid_arg "Allocation.make: negative machine count") machines;
  let loads = loads problem ~rho in
  Array.iteri
    (fun q load ->
      if machines.(q) * Platform.throughput platform q < load then
        invalid_arg "Allocation.make: under-provisioned type")
    loads;
  { rho = Array.copy rho; machines = Array.copy machines;
    cost = cost_of_machines problem machines }

let total_rho t = Array.fold_left ( + ) 0 t.rho

let feasible problem ~target t =
  let platform = Problem.platform problem in
  Array.length t.rho = Problem.num_recipes problem
  && Array.length t.machines = Problem.num_types problem
  && Array.for_all (fun r -> r >= 0) t.rho
  && total_rho t >= target
  && begin
    let loads = loads problem ~rho:t.rho in
    let ok = ref true in
    Array.iteri
      (fun q load ->
        if t.machines.(q) * Platform.throughput platform q < load then ok := false)
      loads;
    !ok
  end

let single problem ~j ~target =
  if j < 0 || j >= Problem.num_recipes problem then
    invalid_arg "Allocation.single: recipe index out of range";
  if target < 0 then invalid_arg "Allocation.single: negative target";
  let rho = Array.make (Problem.num_recipes problem) 0 in
  rho.(j) <- target;
  of_rho problem ~rho

let pp fmt t =
  Format.fprintf fmt "@[<v>cost %d@,rho = [%s]@,machines = [%s]@]" t.cost
    (String.concat "; " (Array.to_list (Array.map string_of_int t.rho)))
    (String.concat "; " (Array.to_list (Array.map string_of_int t.machines)))
