type plan = Allocation.t array

let provision solver problem ~demand =
  Array.map (fun target -> solver problem ~target) demand

let static_peak solver problem ~demand =
  let peak = Array.fold_left max 0 demand in
  let fleet = solver problem ~target:peak in
  Array.map (fun _ -> fleet) demand

let total_cost plan =
  Array.fold_left (fun acc a -> acc + a.Allocation.cost) 0 plan

let peak_cost plan =
  Array.fold_left (fun acc a -> max acc a.Allocation.cost) 0 plan

let machine_hours plan =
  match Array.length plan with
  | 0 -> [||]
  | _ ->
    let q = Array.length plan.(0).Allocation.machines in
    let hours = Array.make q 0 in
    Array.iter
      (fun a -> Array.iteri (fun i x -> hours.(i) <- hours.(i) + x) a.Allocation.machines)
      plan;
    hours

let churn plan =
  match Array.length plan with
  | 0 -> 0
  | _ ->
    let q = Array.length plan.(0).Allocation.machines in
    let prev = Array.make q 0 in
    Array.fold_left
      (fun acc a ->
        let step = ref 0 in
        Array.iteri
          (fun i x ->
            step := !step + abs (x - prev.(i));
            prev.(i) <- x)
          a.Allocation.machines;
        acc + !step)
      0 plan

let savings ~elastic ~static =
  let s = total_cost static in
  if s = 0 then 0.0 else float_of_int (s - total_cost elastic) /. float_of_int s
