let solve problem ~target =
  if target < 0 then invalid_arg "Exhaustive.solve: negative target";
  let j_count = Problem.num_recipes problem in
  let rho = Array.make j_count 0 in
  let best = ref None in
  let consider () =
    let alloc = Allocation.of_rho problem ~rho in
    match !best with
    | Some b when b.Allocation.cost <= alloc.Allocation.cost -> ()
    | _ -> best := Some alloc
  in
  (* Enumerate compositions: assign to recipe j any amount of what is
     left, the last recipe takes the remainder. *)
  let rec go j remaining =
    if j = j_count - 1 then begin
      rho.(j) <- remaining;
      consider ()
    end
    else
      for v = 0 to remaining do
        rho.(j) <- v;
        go (j + 1) (remaining - v)
      done
  in
  go 0 target;
  Option.get !best

let count_compositions ~parts ~total =
  (* C(total + parts - 1, parts - 1) computed multiplicatively. *)
  if parts <= 0 then invalid_arg "Exhaustive.count_compositions: parts <= 0";
  let k = parts - 1 and n = total + parts - 1 in
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc
