let single_graph problem ~j ~target = (Allocation.single problem ~j ~target).cost

let independent problem ~rho = (Allocation.of_rho problem ~rho).cost

let per_type problem ~rho =
  let platform = Problem.platform problem in
  let alloc = Allocation.of_rho problem ~rho in
  Array.mapi (fun q x -> x * Platform.cost platform q) alloc.machines
