lib/core/dp_blackbox.ml: Allocation Array Knapsack Platform Problem Task_graph
