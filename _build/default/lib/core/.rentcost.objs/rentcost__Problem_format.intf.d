lib/core/problem_format.mli: Problem
