lib/core/problem.ml: Array Format Platform Task_graph
