lib/core/task_graph.mli: Format
