lib/core/costing.ml: Allocation Array Platform Problem
