lib/core/costing.mli: Problem
