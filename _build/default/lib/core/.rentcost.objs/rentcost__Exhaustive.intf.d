lib/core/exhaustive.mli: Allocation Problem
