lib/core/analysis.mli: Allocation Problem
