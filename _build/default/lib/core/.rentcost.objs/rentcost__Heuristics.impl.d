lib/core/heuristics.ml: Allocation Array Numeric Problem
