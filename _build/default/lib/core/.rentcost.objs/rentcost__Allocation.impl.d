lib/core/allocation.ml: Array Format Platform Problem String
