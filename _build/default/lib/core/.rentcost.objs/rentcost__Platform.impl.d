lib/core/platform.ml: Array Format List
