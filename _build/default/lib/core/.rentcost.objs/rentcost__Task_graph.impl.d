lib/core/task_graph.ml: Array Format List Queue
