lib/core/problem.mli: Format Platform Task_graph
