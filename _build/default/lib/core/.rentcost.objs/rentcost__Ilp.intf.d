lib/core/ilp.mli: Allocation Lp Milp Problem
