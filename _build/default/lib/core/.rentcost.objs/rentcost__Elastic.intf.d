lib/core/elastic.mli: Allocation Analysis Problem
