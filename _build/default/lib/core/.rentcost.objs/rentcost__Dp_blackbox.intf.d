lib/core/dp_blackbox.mli: Allocation Problem
