lib/core/dp_disjoint.mli: Allocation Problem
