lib/core/heuristics.mli: Allocation Numeric Problem
