lib/core/platform.mli: Format
