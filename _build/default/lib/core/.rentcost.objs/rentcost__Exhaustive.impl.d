lib/core/exhaustive.ml: Allocation Array Option Problem
