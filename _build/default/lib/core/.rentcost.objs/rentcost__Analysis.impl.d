lib/core/analysis.ml: Allocation Array Heuristics Ilp List Platform Problem
