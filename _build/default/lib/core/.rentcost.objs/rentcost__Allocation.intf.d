lib/core/allocation.mli: Format Problem
