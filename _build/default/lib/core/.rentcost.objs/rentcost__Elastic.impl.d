lib/core/elastic.ml: Allocation Array
