lib/core/problem_format.ml: Array Buffer Hashtbl List Platform Printf Problem String Task_graph
