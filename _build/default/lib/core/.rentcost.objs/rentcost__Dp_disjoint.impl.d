lib/core/dp_disjoint.ml: Allocation Array Costing Problem
