lib/core/ilp.ml: Allocation Array Fun Heuristics List Lp Milp Numeric Option Platform Printf Problem
