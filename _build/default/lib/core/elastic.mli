(** Elastic provisioning over a demand trace.

    The paper optimizes one fixed target; clouds re-run that
    optimization as demand moves. This module plans a fleet per billing
    period (the paper's costs are hourly rates), compares elastic and
    static-peak policies, and quantifies the re-provisioning churn an
    autoscaler would impose. *)

(** One allocation per billing period. *)
type plan = Allocation.t array

(** [provision solver problem ~demand] solves each period's target
    independently. Periods with zero demand get an empty allocation. *)
val provision : Analysis.solver -> Problem.t -> demand:int array -> plan

(** [static_peak solver problem ~demand] rents once for the peak
    demand and keeps that fleet every period. *)
val static_peak : Analysis.solver -> Problem.t -> demand:int array -> plan

(** [total_cost plan] is the bill over the whole trace
    ([Σ_t cost_t], each period billed fully). *)
val total_cost : plan -> int

(** [peak_cost plan] is the most expensive period. *)
val peak_cost : plan -> int

(** [machine_hours plan] is, per machine type, the total number of
    machine-periods rented. *)
val machine_hours : plan -> int array

(** [churn plan] counts machine starts and stops between consecutive
    periods ([Σ_t Σ_q |x_{t,q} − x_{t−1,q}|], from an empty initial
    fleet). High churn means an autoscaler would thrash. *)
val churn : plan -> int

(** [savings ~elastic ~static] is the relative saving of the elastic
    bill over the static one, in [0, 1]; zero when the static bill is
    zero. *)
val savings : elastic:plan -> static:plan -> float
