type t = {
  platform : Platform.t;
  recipes : Task_graph.t array;
  counts : int array array;  (* counts.(j).(q) = n^j_q *)
}

let create platform recipes =
  if Array.length recipes = 0 then invalid_arg "Problem.create: no recipes";
  let q = Platform.num_types platform in
  Array.iter
    (fun r ->
      if Task_graph.num_types r <> q then
        invalid_arg "Problem.create: recipe type count differs from platform")
    recipes;
  { platform;
    recipes = Array.copy recipes;
    counts = Array.map Task_graph.type_counts recipes }

let platform t = t.platform
let recipes t = Array.copy t.recipes
let recipe t j = t.recipes.(j)
let num_recipes t = Array.length t.recipes
let num_types t = Platform.num_types t.platform
let type_count t j q = t.counts.(j).(q)
let type_counts t j = Array.copy t.counts.(j)

let has_shared_types t =
  let q = num_types t in
  let result = ref false in
  for k = 0 to q - 1 do
    let users = ref 0 in
    Array.iter (fun c -> if c.(k) > 0 then incr users) t.counts;
    if !users > 1 then result := true
  done;
  !result

let is_disjoint t = not (has_shared_types t)

let is_blackbox t =
  is_disjoint t && Array.for_all (fun r -> Task_graph.num_tasks r = 1) t.recipes

let illustrating =
  (* Paper types t1..t4 are 0..3 here. Recipes are two-task chains:
     ϕ¹ = t2→t4, ϕ² = t3→t4, ϕ³ = t1→t2. *)
  let chain types = Task_graph.chain ~ntypes:4 ~types in
  create Platform.table2
    [| chain [| 1; 3 |]; chain [| 2; 3 |]; chain [| 0; 1 |] |]

let pp fmt t =
  Format.fprintf fmt "@[<v>platform:@,%a@,%d recipes:@," Platform.pp t.platform
    (num_recipes t);
  Array.iteri (fun j r -> Format.fprintf fmt "recipe %d: %a@," j Task_graph.pp r) t.recipes;
  Format.fprintf fmt "@]"
