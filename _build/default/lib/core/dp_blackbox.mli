(** Optimal provisioning for black-box recipes (paper § V-A).

    When every recipe is a single task and no two recipes share a task
    type, the problem is the unbounded-knapsack-like covering problem
    [min Σ x_q·c_q  s.t.  Σ x_q·r_q >= ρ], solved here exactly by the
    pseudo-polynomial DP of {!Knapsack.min_cost_cover} in
    [O(J·ρ)] time. *)

(** [solve problem ~target] returns an optimal allocation.
    @raise Invalid_argument when the instance is not black-box
    (use {!Problem.is_blackbox} to test) or [target < 0]. *)
val solve : Problem.t -> target:int -> Allocation.t
