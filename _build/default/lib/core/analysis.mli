(** Post-optimization analyses built on the core solvers.

    These are reusable versions of the studies the paper walks through
    informally: the shape of the optimal cost curve over throughput
    targets, the "bucket" behaviour of the best-single-recipe
    heuristic (§ VII: "the same solution may be chosen for one or more
    consecutive throughputs until no more idle capacity is
    available"), and how the optimum reacts to machine price changes. *)

(** A solving policy: maps an instance and target to an allocation. *)
type solver = Problem.t -> target:int -> Allocation.t

(** Exact MILP solver, optionally node-capped (see {!Ilp.solve}). *)
val ilp_solver : ?node_limit:int -> unit -> solver

(** The H1 best-single-recipe heuristic as a policy. *)
val h1_solver : solver

(** [cost_curve solver problem ~targets] evaluates the policy over a
    target sweep. The returned costs are non-decreasing in the target
    for any sensible policy (asserted for the provided solvers in the
    test suite). *)
val cost_curve : solver -> Problem.t -> targets:int list -> (int * Allocation.t) list

(** [h1_buckets problem ~max_target] segments [0..max_target] into
    maximal ranges over which the H1 cost is constant — the paper's
    buckets. Returns [(lo, hi, cost)] triples covering the range. *)
val h1_buckets : Problem.t -> max_target:int -> (int * int * int) list

(** [price_sensitivity ?solver problem ~target ~percent] re-optimizes
    with each machine type's price increased by [percent] (one type at
    a time) and reports, per type, the new optimal cost. The baseline
    optimum is returned alongside. Types whose price increase leaves
    the cost unchanged are not on any cheapest provisioning path.
    @raise Invalid_argument when [percent <= -100]. *)
val price_sensitivity :
  ?solver:solver ->
  Problem.t ->
  target:int ->
  percent:int ->
  int * (int * int) list
