type machine = { cost : int; throughput : int }

type t = machine array

let create machines =
  if Array.length machines = 0 then invalid_arg "Platform.create: no machine types";
  Array.iter
    (fun { cost; throughput } ->
      if cost <= 0 then invalid_arg "Platform.create: cost must be positive";
      if throughput <= 0 then invalid_arg "Platform.create: throughput must be positive")
    machines;
  Array.copy machines

let of_list l = create (Array.of_list (List.map (fun (cost, throughput) -> { cost; throughput }) l))

let num_types t = Array.length t
let cost t q = t.(q).cost
let throughput t q = t.(q).throughput
let machines t = Array.copy t

let table2 =
  of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun q { cost; throughput } ->
      Format.fprintf fmt "type %d: throughput %d, cost %d@," q throughput cost)
    t;
  Format.fprintf fmt "@]"
