(** A provisioning problem instance: a platform plus the alternative
    recipes of one global application (the [φ = {ϕ^1 … ϕ^J}] of the
    paper). The target throughput [ρ] is not part of the instance; it
    parameterizes each solve so one instance can be swept over targets
    as in the paper's experiments. *)

type t

(** [create platform recipes] checks that every recipe was built over
    exactly [Platform.num_types platform] types and that at least one
    recipe is present. @raise Invalid_argument otherwise. *)
val create : Platform.t -> Task_graph.t array -> t

val platform : t -> Platform.t

val recipes : t -> Task_graph.t array

val recipe : t -> int -> Task_graph.t

(** [J], the number of alternative recipes. *)
val num_recipes : t -> int

(** [Q], the number of task/machine types. *)
val num_types : t -> int

(** [type_count t j q] is [n^j_q]. *)
val type_count : t -> int -> int -> int

(** [type_counts t j] is the vector [n^j_·] for recipe [j]. *)
val type_counts : t -> int -> int array

(** Whether two distinct recipes use a common task type (§ V-C). *)
val has_shared_types : t -> bool

(** Whether recipes have pairwise-disjoint type sets (§ V-B). *)
val is_disjoint : t -> bool

(** Whether every recipe is a single task and all those task types are
    pairwise distinct (§ V-A, black-box applications). *)
val is_blackbox : t -> bool

(** The three-recipe illustrating instance of the paper's § VII
    (Figure 2 recipes over the Table II platform). Recipe types, in
    paper numbering: ϕ¹ = (2, 4), ϕ² = (3, 4), ϕ³ = (1, 2). *)
val illustrating : t

val pp : Format.formatter -> t -> unit
