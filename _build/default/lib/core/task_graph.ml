type t = {
  ntypes : int;
  types : int array;
  edges : (int * int) list;
  succs : int array array;
  preds : int array array;
  topo : int array;
  type_counts : int array;
}

let num_tasks t = Array.length t.types
let num_types t = t.ntypes
let type_of t i = t.types.(i)
let edges t = t.edges
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let topo_order t = t.topo
let type_counts t = t.type_counts

(* Kahn's algorithm; detects cycles by counting emitted tasks. *)
let toposort n succs preds =
  let indeg = Array.map Array.length preds in
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!k) <- i;
    incr k;
    Array.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !k <> n then invalid_arg "Task_graph.create: precedence graph has a cycle";
  order

let create ~ntypes ~types ~edges =
  if ntypes <= 0 then invalid_arg "Task_graph.create: ntypes must be positive";
  let n = Array.length types in
  if n = 0 then invalid_arg "Task_graph.create: a recipe needs at least one task";
  Array.iter
    (fun q ->
      if q < 0 || q >= ntypes then invalid_arg "Task_graph.create: task type out of range")
    types;
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Task_graph.create: bad precedence edge")
    edges;
  let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succ_lists.(a) <- b :: succ_lists.(a);
      pred_lists.(b) <- a :: pred_lists.(b))
    edges;
  let succs = Array.map (fun l -> Array.of_list (List.rev l)) succ_lists in
  let preds = Array.map (fun l -> Array.of_list (List.rev l)) pred_lists in
  let topo = toposort n succs preds in
  let type_counts = Array.make ntypes 0 in
  Array.iter (fun q -> type_counts.(q) <- type_counts.(q) + 1) types;
  { ntypes; types = Array.copy types; edges; succs; preds; topo; type_counts }

let chain ~ntypes ~types =
  let n = Array.length types in
  let edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  create ~ntypes ~types ~edges

let types_used t =
  let used = ref [] in
  Array.iteri (fun q c -> if c > 0 then used := q :: !used) t.type_counts;
  List.rev !used

let sources t =
  let acc = ref [] in
  for i = num_tasks t - 1 downto 0 do
    if Array.length t.preds.(i) = 0 then acc := i :: !acc
  done;
  !acc

let sinks t =
  let acc = ref [] in
  for i = num_tasks t - 1 downto 0 do
    if Array.length t.succs.(i) = 0 then acc := i :: !acc
  done;
  !acc

(* Longest path in tasks, for latency-style statistics. *)
let critical_path_length t =
  let n = num_tasks t in
  let depth = Array.make n 1 in
  Array.iter
    (fun i ->
      Array.iter
        (fun j -> if depth.(i) + 1 > depth.(j) then depth.(j) <- depth.(i) + 1)
        t.succs.(i))
    t.topo;
  Array.fold_left max 0 depth

let pp fmt t =
  Format.fprintf fmt "@[<v>recipe with %d tasks over %d types@," (num_tasks t) t.ntypes;
  Array.iteri (fun i q -> Format.fprintf fmt "  task %d : type %d@," i q) t.types;
  List.iter (fun (a, b) -> Format.fprintf fmt "  %d -> %d@," a b) t.edges;
  Format.fprintf fmt "@]"
