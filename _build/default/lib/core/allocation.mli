(** Solutions of the provisioning problem.

    An allocation fixes the per-recipe throughputs [ρ_j] and the rented
    machine counts [x_q]. {!of_rho} derives the cheapest machine counts
    for a given throughput split — the closed form of the paper's
    § IV-B:
    [x_q = ⌈ (Σ_j n^j_q · ρ_j) / r_q ⌉] — and is the cost oracle every
    heuristic of § VI optimizes over. *)

type t = private {
  rho : int array;  (** per-recipe throughput, length [J] *)
  machines : int array;  (** rented machines per type, length [Q] *)
  cost : int;  (** total hourly rental cost [Σ_q x_q·c_q] *)
}

(** [loads problem ~rho] is the per-type task load
    [load_q = Σ_j n^j_q · ρ_j].
    @raise Invalid_argument on a wrong-sized or negative [rho]. *)
val loads : Problem.t -> rho:int array -> int array

(** [of_rho problem ~rho] computes the minimal machine counts and cost
    supporting the split [rho]. *)
val of_rho : Problem.t -> rho:int array -> t

(** [make problem ~rho ~machines] validates an explicit allocation:
    machine capacities must cover the loads induced by [rho].
    @raise Invalid_argument when under-provisioned or mis-sized. *)
val make : Problem.t -> rho:int array -> machines:int array -> t

(** Total throughput [Σ_j ρ_j]. *)
val total_rho : t -> int

(** [feasible problem ~target alloc] checks both the throughput target
    ([Σ ρ_j >= target]) and machine sufficiency
    ([x_q·r_q >= load_q] for every [q]). *)
val feasible : Problem.t -> target:int -> t -> bool

(** [single problem ~j ~target] routes the whole target through recipe
    [j] — the single-graph closed form of § IV-A. *)
val single : Problem.t -> j:int -> target:int -> t

val pp : Format.formatter -> t -> unit
