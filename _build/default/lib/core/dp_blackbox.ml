let solve problem ~target =
  if not (Problem.is_blackbox problem) then
    invalid_arg "Dp_blackbox.solve: instance is not black-box (one task per \
                 recipe, pairwise distinct types)";
  if target < 0 then invalid_arg "Dp_blackbox.solve: negative target";
  let platform = Problem.platform problem in
  let j_count = Problem.num_recipes problem in
  (* Recipe j is a single task of some type q_j; renting one machine of
     that type yields r_{q_j} results at cost c_{q_j}. *)
  let type_of_recipe =
    Array.init j_count (fun j -> Task_graph.type_of (Problem.recipe problem j) 0)
  in
  let items =
    Array.map
      (fun q ->
        { Knapsack.cost = Platform.cost platform q;
          yield = Platform.throughput platform q })
      type_of_recipe
  in
  match Knapsack.min_cost_cover ~items ~demand:target with
  | None -> assert false (* platforms have positive throughputs *)
  | Some { Knapsack.best; counts } ->
    (* Spread the target over recipes up to each fleet's capacity so
       that Σ ρ_j = target exactly. *)
    let rho = Array.make j_count 0 in
    let remaining = ref target in
    Array.iteri
      (fun j n ->
        let cap = n * items.(j).Knapsack.yield in
        let take = min cap !remaining in
        rho.(j) <- take;
        remaining := !remaining - take)
      counts;
    assert (!remaining = 0);
    let machines = Array.make (Problem.num_types problem) 0 in
    Array.iteri (fun j n -> machines.(type_of_recipe.(j)) <- machines.(type_of_recipe.(j)) + n) counts;
    let alloc = Allocation.make problem ~rho ~machines in
    assert (alloc.Allocation.cost = best);
    alloc
