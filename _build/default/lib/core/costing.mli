(** Closed-form costs for the simple cases of the paper's § IV.

    These are thin, named views over {!Allocation.of_rho}; they exist
    so each formula of the paper has a direct counterpart in code (and
    a direct test). *)

(** [single_graph problem ~j ~target] is
    [C(ρ) = Σ_q ⌈n_q·ρ / r_q⌉·c_q] for recipe [j] alone (§ IV-A). *)
val single_graph : Problem.t -> j:int -> target:int -> int

(** [independent problem ~rho] is the cost of running every recipe [j]
    at its prescribed throughput [rho.(j)] with machines shared across
    recipes of the same type (§ IV-B):
    [C(ρ_1 … ρ_J) = Σ_q ⌈(Σ_j n^j_q·ρ_j) / r_q⌉·c_q]. *)
val independent : Problem.t -> rho:int array -> int

(** [per_type problem ~rho] is the § IV-B cost broken down by machine
    type ([C_q] of the paper); sums to {!independent}. *)
val per_type : Problem.t -> rho:int array -> int array
