(** A recipe: one directed acyclic graph of typed tasks.

    Each task carries a type [q ∈ 0..ntypes-1] (the paper numbers types
    from 1; this implementation is 0-based throughout). Precedence
    edges only matter to the discrete-event validation simulator
    ({!module:Streamsim}) and to the instance generator — the costing
    theory of the paper depends on a recipe only through its per-type
    task counts [n^j_q], exposed here as {!type_counts}. *)

type t

(** [create ~ntypes ~types ~edges] builds a recipe whose task [i] has
    type [types.(i)] and whose precedence constraints are [edges]
    (pairs [(a, b)] meaning [a] before [b]).
    @raise Invalid_argument on an empty task set, an out-of-range type
    or endpoint, a self-loop, or a cyclic precedence graph. *)
val create : ntypes:int -> types:int array -> edges:(int * int) list -> t

(** [chain ~ntypes ~types] is the linear pipeline
    [task 0 -> task 1 -> …] — the shape of the illustrating examples
    in the paper's Figures 1 and 2. *)
val chain : ntypes:int -> types:int array -> t

val num_tasks : t -> int
val num_types : t -> int

(** [type_of t i] is the type of task [i]. *)
val type_of : t -> int -> int

val edges : t -> (int * int) list

(** Direct successors of a task, in edge insertion order. *)
val succs : t -> int -> int array

(** Direct predecessors of a task, in edge insertion order. *)
val preds : t -> int -> int array

(** A topological order of the tasks. *)
val topo_order : t -> int array

(** [type_counts t] has length [ntypes]; entry [q] is [n^j_q], the
    number of tasks of type [q] in this recipe. *)
val type_counts : t -> int array

(** Types with at least one task, ascending. *)
val types_used : t -> int list

(** Tasks without predecessors, ascending. *)
val sources : t -> int list

(** Tasks without successors, ascending. *)
val sinks : t -> int list

(** Number of tasks on a longest precedence path. *)
val critical_path_length : t -> int

val pp : Format.formatter -> t -> unit
