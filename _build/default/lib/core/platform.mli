(** The cloud platform: one machine (processor) type per task type.

    A machine of type [q] rents for [cost q] per hour and sustains a
    throughput of [throughput q] tasks of type [q] per time unit — the
    [c_q] and [r_q] of the paper (Table I). All parameters are
    integers, as prescribed by § III. *)

type machine = { cost : int; throughput : int }

type t

(** [create machines] validates strictly positive costs and
    throughputs. @raise Invalid_argument otherwise, or on an empty
    platform. *)
val create : machine array -> t

(** [of_list [(cost, throughput); …]] is a convenience wrapper over
    {!create}. *)
val of_list : (int * int) list -> t

(** Number of machine (= task) types [Q]. *)
val num_types : t -> int

(** [cost t q] is [c_q]. *)
val cost : t -> int -> int

(** [throughput t q] is [r_q]. *)
val throughput : t -> int -> int

val machines : t -> machine array

(** The illustrating platform of the paper's Table II:
    throughputs 10/20/30/40, costs 10/18/25/33. *)
val table2 : t

val pp : Format.formatter -> t -> unit
