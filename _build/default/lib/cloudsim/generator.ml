module P = Numeric.Prng
module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem

type graph_params = {
  num_graphs : int;
  min_tasks : int;
  max_tasks : int;
  mutation_pct : float;
}

type cloud_params = {
  num_types : int;
  min_cost : int;
  max_cost : int;
  min_throughput : int;
  max_throughput : int;
}

let check_cloud cp =
  if cp.num_types <= 0 then invalid_arg "Generator: num_types must be positive";
  if cp.min_cost <= 0 || cp.max_cost < cp.min_cost then
    invalid_arg "Generator: bad cost range";
  if cp.min_throughput <= 0 || cp.max_throughput < cp.min_throughput then
    invalid_arg "Generator: bad throughput range"

let check_graphs gp =
  if gp.num_graphs <= 0 then invalid_arg "Generator: num_graphs must be positive";
  if gp.min_tasks <= 0 || gp.max_tasks < gp.min_tasks then
    invalid_arg "Generator: bad task count range";
  if gp.mutation_pct < 0.0 || gp.mutation_pct > 1.0 then
    invalid_arg "Generator: mutation_pct must be in [0, 1]"

let platform ~rng cp =
  check_cloud cp;
  PF.create
    (Array.init cp.num_types (fun _ ->
         { PF.cost = P.int_in_range rng ~lo:cp.min_cost ~hi:cp.max_cost;
           throughput = P.int_in_range rng ~lo:cp.min_throughput ~hi:cp.max_throughput }))

let random_dag ~rng ~ntypes ~types =
  let n = Array.length types in
  (* Every task after the first picks 1-3 predecessors among earlier
     tasks, giving a connected, roughly layered DAG. *)
  let edges = ref [] in
  for i = 1 to n - 1 do
    let npreds = min i (1 + P.int rng 3) in
    let seen = Hashtbl.create 4 in
    let added = ref 0 in
    while !added < npreds do
      let p = P.int rng i in
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.add seen p ();
        edges := (p, i) :: !edges;
        incr added
      end
    done
  done;
  TG.create ~ntypes ~types ~edges:!edges

let mutate_types ~rng ~ntypes ~pct types =
  let n = Array.length types in
  let out = Array.copy types in
  let k = int_of_float (ceil (pct *. float_of_int n)) in
  (* Choose k distinct positions to re-type. *)
  let order = Array.init n Fun.id in
  P.shuffle rng order;
  for i = 0 to min k n - 1 do
    out.(order.(i)) <- P.int rng ntypes
  done;
  out

let resize ~rng base n =
  let b = Array.length base in
  if n <= b then Array.sub base 0 n
  else
    Array.init n (fun i -> if i < b then base.(i) else base.(P.int rng b))

let problem ~rng gp cp =
  check_graphs gp;
  check_cloud cp;
  let pf = platform ~rng cp in
  let initial_n = P.int_in_range rng ~lo:gp.min_tasks ~hi:gp.max_tasks in
  let initial_types = Array.init initial_n (fun _ -> P.int rng cp.num_types) in
  let recipes =
    Array.init gp.num_graphs (fun j ->
        let types =
          if j = 0 then initial_types
          else begin
            let n = P.int_in_range rng ~lo:gp.min_tasks ~hi:gp.max_tasks in
            mutate_types ~rng ~ntypes:cp.num_types ~pct:gp.mutation_pct
              (resize ~rng initial_types n)
          end
        in
        random_dag ~rng ~ntypes:cp.num_types ~types)
  in
  PB.create pf recipes
