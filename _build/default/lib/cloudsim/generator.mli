(** Random instance generation, following the paper's § VIII-A.

    The paper found that fully independent random recipes give no real
    competition (one recipe dominates), so it generates an *initial*
    recipe and derives the alternatives by re-typing a percentage of
    its tasks ("e.g. when a task running on GPU is replaced by a task
    running on a classical CPU architecture"). This module reproduces
    that scheme:

    + the platform draws, per type, a cost uniform in
      [[min_cost, max_cost]] and a throughput uniform in
      [[min_throughput, max_throughput]];
    + the initial recipe draws its task count uniform in
      [[min_tasks, max_tasks]] and types uniform over the [Q] types;
    + each alternative draws its own task count (recipes differ in
      size, as the paper prescribes), inherits the initial recipe's
      types (truncated or cyclically extended), then re-types
      [⌈mutation_pct · n⌉] uniformly chosen tasks;
    + precedence edges are rebuilt as a random connected DAG for each
      recipe — the costing theory ignores edges, but the stream
      simulator ({!module:Streamsim}) does not.

    All draws come from the supplied {!Numeric.Prng.t}. *)

type graph_params = {
  num_graphs : int;  (** [J], alternatives including the initial recipe *)
  min_tasks : int;
  max_tasks : int;
  mutation_pct : float;  (** fraction of tasks re-typed per alternative *)
}

type cloud_params = {
  num_types : int;  (** [Q] *)
  min_cost : int;
  max_cost : int;
  min_throughput : int;
  max_throughput : int;
}

(** [platform ~rng params] draws a random cloud. *)
val platform : rng:Numeric.Prng.t -> cloud_params -> Rentcost.Platform.t

(** [problem ~rng gp cp] draws a full instance.
    @raise Invalid_argument on inconsistent parameters (empty ranges,
    [num_graphs <= 0], [mutation_pct] outside [0, 1]). *)
val problem :
  rng:Numeric.Prng.t -> graph_params -> cloud_params -> Rentcost.Problem.t

(** [random_dag ~rng ~ntypes ~types] builds a connected random DAG
    over the given task types (every non-root task has at least one
    predecessor among earlier tasks). Exposed for direct use in tests
    and examples. *)
val random_dag :
  rng:Numeric.Prng.t -> ntypes:int -> types:int array -> Rentcost.Task_graph.t
