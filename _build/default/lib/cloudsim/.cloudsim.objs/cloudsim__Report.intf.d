lib/cloudsim/report.mli: Format Stats
