lib/cloudsim/stats.mli: Runner
