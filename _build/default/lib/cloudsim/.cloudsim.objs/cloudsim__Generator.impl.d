lib/cloudsim/generator.ml: Array Fun Hashtbl Numeric Rentcost
