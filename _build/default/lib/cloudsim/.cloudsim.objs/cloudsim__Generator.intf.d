lib/cloudsim/generator.mli: Numeric Rentcost
