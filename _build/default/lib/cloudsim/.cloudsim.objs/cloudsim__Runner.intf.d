lib/cloudsim/runner.mli: Generator Numeric Rentcost
