lib/cloudsim/runner.ml: Fun Generator List Numeric Rentcost Unix
