lib/cloudsim/stats.ml: Array Hashtbl List Option Printf Runner
