lib/cloudsim/experiments.mli: Generator Runner
