lib/cloudsim/experiments.ml: Generator List Numeric Option Rentcost Runner
