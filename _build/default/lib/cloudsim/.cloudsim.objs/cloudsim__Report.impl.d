lib/cloudsim/report.ml: Array Buffer Format List Printf Stats String
