module H = Rentcost.Heuristics

type algorithm =
  | Ilp of { time_limit : float option; node_limit : int option }
  | Heuristic of H.name

let paper_algorithms ?time_limit ?node_limit () =
  Ilp { time_limit; node_limit }
  :: List.map (fun n -> Heuristic n) [ H.H1; H.H2; H.H31; H.H32; H.H32_jump ]

let algorithm_name = function
  | Ilp _ -> "ILP"
  | Heuristic n -> H.name_to_string n

type measurement = {
  config : int;
  target : int;
  algorithm : string;
  cost : int;
  time : float;
  proved_optimal : bool;
  nodes : int;
}

let solve_one ~rng ~params problem ~target = function
  | Ilp { time_limit; node_limit } ->
    let t0 = Unix.gettimeofday () in
    let o = Rentcost.Ilp.solve ?time_limit ?node_limit problem ~target in
    let time = Unix.gettimeofday () -. t0 in
    (match o.Rentcost.Ilp.allocation with
     | Some a ->
       (a.Rentcost.Allocation.cost, time, o.Rentcost.Ilp.proved_optimal,
        o.Rentcost.Ilp.nodes)
     | None ->
       (* A time limit can expire before any incumbent; fall back to
          the H1 closed form so the measurement row stays comparable
          (the paper reports Gurobi's incumbent similarly). *)
       let h1 = H.h1_best_graph problem ~target in
       (h1.H.allocation.Rentcost.Allocation.cost,
        Unix.gettimeofday () -. t0, false, o.Rentcost.Ilp.nodes))
  | Heuristic name ->
    let t0 = Unix.gettimeofday () in
    let res = H.run ~params name ~rng problem ~target in
    (res.H.allocation.Rentcost.Allocation.cost, Unix.gettimeofday () -. t0, false, 0)

let run_instance ~rng ~config problem ~targets ~algorithms ~params =
  List.concat_map
    (fun target ->
      List.map
        (fun alg ->
          let alg_rng = Numeric.Prng.split rng in
          let cost, time, proved_optimal, nodes =
            solve_one ~rng:alg_rng ~params problem ~target alg
          in
          { config; target; algorithm = algorithm_name alg; cost; time;
            proved_optimal; nodes })
        algorithms)
    targets

let sweep ?(progress = fun _ -> ()) ~seed ~configs gp cp ~targets ~algorithms ~params =
  let rng = Numeric.Prng.create seed in
  List.concat_map
    (fun config ->
      let instance_rng = Numeric.Prng.split rng in
      let problem = Generator.problem ~rng:instance_rng gp cp in
      let ms =
        run_instance ~rng:instance_rng ~config problem ~targets ~algorithms ~params
      in
      progress config;
      ms)
    (List.init configs Fun.id)
