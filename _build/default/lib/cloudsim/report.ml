let print_series fmt ~title (s : Stats.series) =
  Format.fprintf fmt "@[<v>== %s ==@,(%s)@," title s.Stats.ylabel;
  let width = 12 in
  Format.fprintf fmt "%8s" "target";
  List.iter (fun a -> Format.fprintf fmt " %*s" width a) s.Stats.algorithms;
  Format.fprintf fmt "@,";
  List.iter
    (fun (target, values) ->
      Format.fprintf fmt "%8d" target;
      Array.iter (fun v -> Format.fprintf fmt " %*.4f" width v) values;
      Format.fprintf fmt "@,")
    s.Stats.rows;
  Format.fprintf fmt "@]@."

let series_to_csv (s : Stats.series) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "target";
  List.iter (fun a -> Buffer.add_string buf ("," ^ a)) s.Stats.algorithms;
  Buffer.add_char buf '\n';
  List.iter
    (fun (target, values) ->
      Buffer.add_string buf (string_of_int target);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.6f" v)) values;
      Buffer.add_char buf '\n')
    s.Stats.rows;
  Buffer.contents buf

let print_table3 fmt rows =
  match rows with
  | [] -> ()
  | (_, first) :: _ ->
    let algs = List.map (fun (a, _, _) -> a) first in
    Format.fprintf fmt "@[<v>";
    Format.fprintf fmt "%5s" "rho";
    List.iter (fun a -> Format.fprintf fmt " | %-22s" a) algs;
    Format.fprintf fmt "@,";
    Format.fprintf fmt "%5s" "";
    List.iter (fun _ -> Format.fprintf fmt " | %-22s" "rho1 rho2 rho3   cost") algs;
    Format.fprintf fmt "@,";
    let opt_cost entries =
      match entries with (_, _, c) :: _ -> c | [] -> max_int
    in
    List.iter
      (fun (target, entries) ->
        let optimal = opt_cost entries in
        Format.fprintf fmt "%5d" target;
        List.iter
          (fun (_, rho, cost) ->
            let split =
              String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%4d") rho))
            in
            Format.fprintf fmt " | %s %6d%s" split cost
              (if cost = optimal then "*" else " "))
          entries;
        Format.fprintf fmt "@,")
      rows;
    Format.fprintf fmt "(* marks costs equal to the ILP optimum)@,@]@."
