(** Preset experiment definitions: one per table/figure of the paper's
    evaluation (§ VII–VIII). Both the command-line harness ([bin/])
    and the benchmark suite ([bench/]) consume these presets, so the
    regenerated artefacts always agree with DESIGN.md's experiment
    index. *)

type preset = {
  id : string;  (** "table3", "fig3" … "fig8" *)
  description : string;
  graphs : Generator.graph_params;
  cloud : Generator.cloud_params;
  targets : int list;
  default_configs : int;  (** configurations the paper used (100 / 10) *)
  ilp_time_limit : float option;  (** Figure 8 uses 100 s *)
  ilp_node_limit : int option;
      (** deterministic cap for the sweep figures: rare hard instances
          return their warm-started incumbent instead of running for
          minutes (the paper's Gurobi handles these with its own cut
          machinery; see DESIGN.md § 3) *)
}

(** Presets for the sweep figures, keyed by id:
    - [fig3/fig4/fig5]: small recipes (20 alternatives, 5–8 tasks,
      50 % mutation, Q = 5, costs 1–100, throughputs 10–100);
    - [fig6]: medium recipes (10–20 tasks, 30 % mutation, Q = 8);
    - [fig7]: large recipes (50–100 tasks, 50 % mutation, Q = 8,
      throughputs 10–50);
    - [fig8]: ILP stress (10 alternatives, 100–200 tasks, 30 %
      mutation, Q = 50, throughputs 5–25, ILP capped at 100 s). *)
val all : preset list

(** [find id] looks a preset up by id. *)
val find : string -> preset option

(** Targets of the paper's sweeps: 20, 30, …, 200. *)
val sweep_targets : int list

(** [run ?configs ?seed ?progress preset] executes a preset and
    returns the raw measurements ([configs] defaults to the preset's
    paper value — lower it for quick runs). *)
val run :
  ?configs:int ->
  ?seed:int ->
  ?time_limit:float ->
  ?progress:(int -> unit) ->
  preset ->
  Runner.measurement list

(** [table3 ()] reproduces the illustrating example (§ VII): for every
    target 10, 20, …, 200 the ILP and the five paper heuristics with
    their chosen splits and costs, in Table III's layout. Heuristics
    run with the paper-calibrated step of 10. *)
val table3 : ?seed:int -> unit -> (int * (string * int array * int) list) list
