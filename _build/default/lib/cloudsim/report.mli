(** Rendering of experiment results: aligned ASCII tables (what the
    harness prints) and CSV (for external plotting). *)

(** [print_series fmt ~title s] renders a {!Stats.series} as an
    aligned table with one row per target. *)
val print_series : Format.formatter -> title:string -> Stats.series -> unit

(** [series_to_csv s] is a CSV rendering with header
    [target,<alg>,...]. *)
val series_to_csv : Stats.series -> string

(** [print_table3 fmt rows] renders the illustrating-example table in
    the layout of the paper's Table III: for each algorithm the chosen
    split [(ρ1, ρ2, ρ3)] and its cost, one row per target; optimal
    costs (first column, the ILP) are marked with [*] on heuristics
    that attain them. [rows] maps a target to
    [(algorithm, rho, cost) list] in column order. *)
val print_table3 :
  Format.formatter -> (int * (string * int array * int) list) list -> unit
