(** Imperative binary min-heaps.

    Used as the node queue of the branch-and-bound solver
    ({!module:Milp.Solver}, best-bound order) and as the event queue of
    the discrete-event stream simulator ({!module:Streamsim.Sim},
    time order). *)

module Make (Ord : sig
  type t

  (** Total order; the heap pops least elements first. *)
  val compare : t -> t -> int
end) : sig
  type elt = Ord.t
  type t

  (** [create ()] is an empty heap. *)
  val create : unit -> t

  val is_empty : t -> bool

  (** Number of queued elements. *)
  val size : t -> int

  (** [push h x] inserts [x]; duplicates are allowed. *)
  val push : t -> elt -> unit

  (** [pop h] removes and returns a least element, or [None]. *)
  val pop : t -> elt option

  (** [peek h] returns a least element without removing it. *)
  val peek : t -> elt option

  (** [clear h] removes every element. *)
  val clear : t -> unit

  (** [to_list h] is the contents in unspecified order (the heap is
      unchanged). *)
  val to_list : t -> elt list

  (** [fold f acc h] folds over elements in unspecified order. *)
  val fold : ('a -> elt -> 'a) -> 'a -> t -> 'a
end
