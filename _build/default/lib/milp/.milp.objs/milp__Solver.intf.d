lib/milp/solver.mli: Format Lp Numeric
