lib/milp/solver.ml: Array Float Format List Lp Numeric Option Pqueue Unix
