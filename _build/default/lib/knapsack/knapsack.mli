(** Pseudo-polynomial dynamic programs for knapsack-style problems.

    Section V-A of the paper reduces cost minimization for black-box
    recipes to an unbounded knapsack with negated weights and values;
    equivalently, to the covering problem solved by {!min_cost_cover}.
    Both formulations are provided, plus the direct translation
    between them used in the tests. *)

(** An item for the classic maximization form. *)
type item = { value : int; weight : int }

(** A machine type for the covering form: renting one unit costs
    [cost] and contributes [yield] to the covered demand. *)
type cover_item = { cost : int; yield : int }

(** Result of a DP solve: the optimum and how many copies of each item
    achieve it. *)
type 'a dp_solution = { best : 'a; counts : int array }

(** [unbounded_max ~items ~capacity] maximizes [Σ xᵢ·valueᵢ] subject to
    [Σ xᵢ·weightᵢ <= capacity], [xᵢ ∈ ℕ] — the unbounded knapsack of
    Definition 2 in the paper. Items with non-positive weight must not
    have positive value (otherwise the problem is unbounded).
    Runs in [O(n·capacity)] time.
    @raise Invalid_argument on negative capacity or on an unbounded
    instance. *)
val unbounded_max : items:item array -> capacity:int -> int dp_solution

(** [min_cost_cover ~items ~demand] minimizes [Σ xᵢ·costᵢ] subject to
    [Σ xᵢ·yieldᵢ >= demand], [xᵢ ∈ ℕ]. This is the paper's § V-A
    problem (machines of type [q] cost [c_q] and provide throughput
    [r_q]). Items with non-positive yield are ignored. Returns [None]
    when the demand is positive and no item has positive yield.
    Runs in [O(n·demand)] time. *)
val min_cost_cover : items:cover_item array -> demand:int -> int dp_solution option

(** [cover_of_knapsack ~items ~demand] solves {!min_cost_cover} through
    the paper's knapsack encoding (value [-cost], weight [-yield],
    capacity [-demand]); used to validate the equivalence claimed in
    § V-A. Same contract as {!min_cost_cover}. *)
val cover_of_knapsack : items:cover_item array -> demand:int -> int dp_solution option
