type item = { value : int; weight : int }

type cover_item = { cost : int; yield : int }

type 'a dp_solution = { best : 'a; counts : int array }

let unbounded_max ~items ~capacity =
  if capacity < 0 then invalid_arg "Knapsack.unbounded_max: negative capacity";
  Array.iter
    (fun { value; weight } ->
      if weight <= 0 && value > 0 then
        invalid_arg "Knapsack.unbounded_max: unbounded instance")
    items;
  (* dp.(w) = best value within capacity w. Inheriting from w-1 makes
     dp monotone, which the reconstruction below relies on. *)
  let dp = Array.make (capacity + 1) 0 in
  for w = 1 to capacity do
    dp.(w) <- dp.(w - 1);
    Array.iter
      (fun { value; weight } ->
        if weight > 0 && weight <= w && dp.(w - weight) + value > dp.(w) then
          dp.(w) <- dp.(w - weight) + value)
      items
  done;
  (* Reconstruction: at each residual capacity either some item of
     positive value explains dp.(w), or the value was inherited from
     dp.(w-1). Items have positive weight, so both moves shrink w. *)
  let counts = Array.make (Array.length items) 0 in
  let w = ref capacity in
  while !w > 0 do
    let found = ref false in
    Array.iteri
      (fun i { value; weight } ->
        if (not !found) && weight > 0 && weight <= !w && value > 0
           && dp.(!w - weight) + value = dp.(!w)
        then begin
          found := true;
          counts.(i) <- counts.(i) + 1;
          w := !w - weight
        end)
      items;
    if not !found then decr w
  done;
  { best = dp.(capacity); counts }

let check_costs items =
  Array.iter
    (fun { cost; _ } ->
      if cost < 0 then invalid_arg "Knapsack: negative cost makes covering unbounded")
    items

let min_cost_cover ~items ~demand =
  check_costs items;
  if demand <= 0 then Some { best = 0; counts = Array.make (Array.length items) 0 }
  else if not (Array.exists (fun { yield; _ } -> yield > 0) items) then None
  else begin
    (* dp.(t) = min cost to cover a residual demand of t. *)
    let inf = max_int / 2 in
    let dp = Array.make (demand + 1) inf in
    let choice = Array.make (demand + 1) (-1) in
    dp.(0) <- 0;
    for t = 1 to demand do
      Array.iteri
        (fun i { cost; yield } ->
          if yield > 0 then begin
            let prev = dp.(max 0 (t - yield)) in
            if prev + cost < dp.(t) then begin
              dp.(t) <- prev + cost;
              choice.(t) <- i
            end
          end)
        items
    done;
    let counts = Array.make (Array.length items) 0 in
    let t = ref demand in
    while !t > 0 do
      let i = choice.(!t) in
      assert (i >= 0);
      counts.(i) <- counts.(i) + 1;
      t := max 0 (!t - items.(i).yield)
    done;
    Some { best = dp.(demand); counts }
  end

let cover_of_knapsack ~items ~demand =
  (* The paper's § V-A encoding turns covering into an unbounded
     knapsack (value -c_q, weight -r_q, capacity -ρ). Running a DP over
     negated quantities is awkward, so we use the equivalent classic
     reduction through the knapsack *maximization* solved above:
     with weights = costs and values = yields, [unbounded_max ~capacity:budget]
     gives the largest throughput achievable within a rental budget.
     Throughput is monotone in budget, so the least budget whose
     optimal throughput reaches the demand is the covering optimum —
     found by binary search between 0 and a trivial single-type
     upper bound. Tests assert this agrees with {!min_cost_cover}. *)
  check_costs items;
  let n = Array.length items in
  if demand <= 0 then Some { best = 0; counts = Array.make n 0 }
  else begin
    match
      Array.to_seqi items
      |> Seq.find (fun (_, { cost; yield }) -> cost = 0 && yield > 0)
    with
    | Some (i, { yield; _ }) ->
      (* Free machines: cover everything at zero cost. *)
      let counts = Array.make n 0 in
      counts.(i) <- (demand + yield - 1) / yield;
      Some { best = 0; counts }
    | None ->
    let ub =
      Array.fold_left
        (fun acc { cost; yield } ->
          if yield <= 0 then acc
          else begin
            let machines = ((demand + yield - 1) / yield) in
            let total = machines * cost in
            match acc with Some b -> Some (min b total) | None -> Some total
          end)
        None items
    in
    match ub with
    | None -> None
    | Some ub ->
      let kitems =
        Array.map (fun { cost; yield } -> { value = max 0 yield; weight = cost }) items
      in
      let throughput budget = (unbounded_max ~items:kitems ~capacity:budget).best in
      let rec search lo hi =
        (* invariant: throughput hi >= demand, throughput (lo-1) < demand *)
        if lo >= hi then hi
        else begin
          let mid = (lo + hi) / 2 in
          if throughput mid >= demand then search lo mid else search (mid + 1) hi
        end
      in
      let budget = search 0 ub in
      Some { best = budget; counts = (unbounded_max ~items:kitems ~capacity:budget).counts }
  end
