lib/lp/gomory.ml: Array Fun Linexpr List Model Numeric Printf Simplex
