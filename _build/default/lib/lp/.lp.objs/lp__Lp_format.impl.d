lib/lp/lp_format.ml: Array Buffer Hashtbl Linexpr List Model Numeric Option Printf String
