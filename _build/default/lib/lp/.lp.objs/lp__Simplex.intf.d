lib/lp/simplex.mli: Linexpr Model Numeric
