lib/lp/simplex.ml: Array Fun Linexpr List Model Numeric
