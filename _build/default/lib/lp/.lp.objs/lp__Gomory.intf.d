lib/lp/gomory.mli: Model
