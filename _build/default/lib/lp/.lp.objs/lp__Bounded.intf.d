lib/lp/bounded.mli: Model Simplex
