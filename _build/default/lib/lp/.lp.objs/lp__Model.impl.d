lib/lp/model.ml: Array Format Hashtbl Linexpr List Numeric Option
