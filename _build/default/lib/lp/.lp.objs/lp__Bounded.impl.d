lib/lp/bounded.ml: Array Linexpr List Model Numeric Simplex
