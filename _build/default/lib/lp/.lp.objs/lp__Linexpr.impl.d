lib/lp/linexpr.ml: Array Format List Numeric
