(** Exact two-phase primal simplex.

    Solves a {!Model.t} in exact rational arithmetic using the dense
    tableau method with Bland's anti-cycling rule, so termination is
    guaranteed and results carry no floating-point error. This is the
    relaxation engine under {!module:Milp.Solver}, standing in for the
    commercial LP solver (Gurobi) used in the paper.

    Complexity is exponential in the worst case but the models built by
    this project stay small (tens of rows/columns), where exact simplex
    is fast and — unlike floating-point codes — never returns a
    slightly-infeasible or slightly-suboptimal basis. *)

(** An optimal point: [objective] includes any constant term of the
    model's objective; [values] has one entry per model variable. *)
type solution = { objective : Numeric.Rat.t; values : Numeric.Rat.t array }

type result =
  | Optimal of solution
  | Infeasible  (** no point satisfies the constraints *)
  | Unbounded  (** the objective can be improved without limit *)

(** [solve model] optimizes the model exactly. *)
val solve : Model.t -> result

(** Number of pivots performed by the last [solve] call on this domain
    (statistics for benchmarking; not part of the solver contract). *)
val last_pivot_count : unit -> int

(** {1 Tableau introspection}

    Cut generators ({!Gomory}) need the optimal basis and tableau, not
    just the solution point. *)

(** What an internal simplex column stands for. *)
type col_desc =
  | Structural of int  (** model variable index *)
  | Slack of int  (** slack/surplus of oriented row [i] *)
  | Artificial

type details = {
  solution : solution;
  basis : int array;  (** basic column per tableau row *)
  tableau : Numeric.Rat.t array array;
      (** final rows; entry [i].(j) for column [j], last entry = rhs *)
  cols : col_desc array;
  oriented_rows : (Linexpr.t * Model.cmp * Numeric.Rat.t) array;
      (** the model rows after sign orientation (non-negative rhs), in
          tableau row order: [Slack i] relates to [oriented_rows.(i)] *)
}

(** [solve_detailed model] is {!solve} plus the final tableau when the
    model has a finite optimum. *)
val solve_detailed : Model.t -> details option
