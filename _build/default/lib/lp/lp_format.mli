(** Reading and writing models in (a subset of) the CPLEX LP file
    format — the lingua franca of LP solvers. Lets models built here be
    checked against external solvers, and external models be solved by
    this library.

    Supported subset: [Minimize]/[Maximize] with a single named
    objective, a [Subject To] section with [<=], [>=], [=] rows, an
    optional [End]. All variables are non-negative (this library's
    convention); [Bounds] sections are not emitted and only
    [x >= 0]-style bounds are accepted when reading. As an extension,
    coefficients may be exact fractions ([3/7]) in addition to
    integers and decimals. *)

(** [to_string model] renders the model. Variable names are taken from
    the model; empty or duplicate names fall back to [x<index>]. *)
val to_string : Model.t -> string

(** [of_string text] parses a model. Variables are created in order of
    first occurrence.
    @raise Failure with a descriptive message on malformed input. *)
val of_string : string -> Model.t
