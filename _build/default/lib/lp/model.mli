(** Linear-program model builder.

    A model owns a growing set of non-negative decision variables, a
    list of linear constraints and one objective. It is the common
    input format of the exact simplex ({!module:Simplex}) and of the
    branch-and-bound MILP solver ({!module:Milp.Solver}).

    All variables implicitly satisfy [x >= 0]; other bounds are added
    as ordinary rows with {!add_upper_bound} / {!add_lower_bound}. *)

type t

type var = int

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type constr = { expr : Linexpr.t; cmp : cmp; rhs : Numeric.Rat.t; cname : string }

(** [create ()] is an empty model (zero objective, [Minimize]). *)
val create : unit -> t

(** [copy t] is a deep-enough copy: adding variables or constraints to
    the copy never affects the original. Branch-and-bound relies on
    this to derive child nodes. *)
val copy : t -> t

(** [add_var t ~name] introduces a fresh variable [x >= 0]. *)
val add_var : t -> name:string -> var

(** [num_vars t] is the number of variables added so far. *)
val num_vars : t -> int

(** [var_name t v] is the name given at creation.
    @raise Invalid_argument on an unknown index. *)
val var_name : t -> var -> string

(** [add_constraint t ?name expr cmp rhs] adds the row
    [expr cmp rhs]. Any constant inside [expr] is folded into [rhs]. *)
val add_constraint : t -> ?name:string -> Linexpr.t -> cmp -> Numeric.Rat.t -> unit

(** [add_upper_bound t v ub] adds the row [x_v <= ub]. *)
val add_upper_bound : t -> var -> Numeric.Rat.t -> unit

(** [add_lower_bound t v lb] adds the row [x_v >= lb]. *)
val add_lower_bound : t -> var -> Numeric.Rat.t -> unit

(** {1 Variable bounds}

    Unlike {!add_upper_bound}/{!add_lower_bound}, these do not create
    rows: they tighten the variable's own domain. The row-based
    {!Simplex} engine materializes them as rows internally; the
    {!Bounded} engine handles them natively (which is why the
    branch-and-bound solver prefers it — branching does not grow the
    tableau). Bounds only ever tighten; the implicit domain is
    [\[0, ∞)]. *)

(** [tighten_lower t v lb] raises the lower bound to
    [max (current, lb)]. *)
val tighten_lower : t -> var -> Numeric.Rat.t -> unit

(** [tighten_upper t v ub] lowers the upper bound to
    [min (current, ub)]. *)
val tighten_upper : t -> var -> Numeric.Rat.t -> unit

(** [bounds t v] is the current [(lower, upper)]; [upper = None] means
    unbounded above. The lower bound is at least zero. *)
val bounds : t -> var -> Numeric.Rat.t * Numeric.Rat.t option

(** [has_var_bounds t] is true when any variable has a tightened
    domain. *)
val has_var_bounds : t -> bool

(** [set_objective t sense expr] installs the objective. The constant
    part of [expr] is reported back in solution objective values. *)
val set_objective : t -> sense -> Linexpr.t -> unit

val objective : t -> sense * Linexpr.t

(** Constraints in insertion order. *)
val constraints : t -> constr list

val num_constraints : t -> int

(** [check_feasible t values] tests every constraint and the
    non-negativity of each variable at the given point. *)
val check_feasible : t -> Numeric.Rat.t array -> bool

val pp : Format.formatter -> t -> unit
