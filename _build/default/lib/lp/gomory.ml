module R = Numeric.Rat

let applicable model ~integer =
  let n = Model.num_vars model in
  let covered = Array.make n false in
  List.iter (fun v -> if v >= 0 && v < n then covered.(v) <- true) integer;
  Array.for_all Fun.id covered
  && List.for_all
       (fun { Model.expr; rhs; _ } ->
         R.is_integer rhs
         && List.for_all (fun (_, c) -> R.is_integer c) (Linexpr.terms expr))
       (Model.constraints model)
  && List.for_all
       (fun v ->
         (* Variable bounds become rows of the standard form, so they
            must be integral too. *)
         let lo, up = Model.bounds model v in
         R.is_integer lo
         && (match up with None -> true | Some u -> R.is_integer u))
       (List.init n Fun.id)

(* Express tableau column [j] as a linear expression over structural
   variables (artificials are zero at feasible points and excluded by
   the caller). *)
let column_expr (d : Simplex.details) j =
  match d.Simplex.cols.(j) with
  | Simplex.Structural v -> Linexpr.var v
  | Simplex.Artificial -> Linexpr.zero
  | Simplex.Slack i ->
    let expr, cmp, rhs = d.Simplex.oriented_rows.(i) in
    (match cmp with
     | Model.Le ->
       (* expr + s = rhs  =>  s = rhs - expr *)
       Linexpr.sub (Linexpr.constant rhs) expr
     | Model.Ge ->
       (* expr - s = rhs  =>  s = expr - rhs *)
       Linexpr.sub expr (Linexpr.constant rhs)
     | Model.Eq -> assert false (* equality rows have no slack column *))

module B = Numeric.Bigint

(* Exact arithmetic keeps cuts valid, but cascading rounds multiply
   denominators and push entries onto the slow Bigint path. Cuts are
   therefore rescaled to integer coefficients (multiplying by the
   LCM of denominators keeps the inequality equivalent since the
   multiplier is positive) and dropped entirely when the scaled
   coefficients exceed this bound. *)
let max_coefficient = B.of_int 1_000_000

let lcm a b = B.div (B.mul a b) (B.gcd a b)

let scale_to_integers expr f0 =
  let denominators = f0 :: List.map snd (Linexpr.terms expr) in
  let m = List.fold_left (fun acc c -> lcm acc (R.den c)) B.one denominators in
  let scaled = Linexpr.scale (R.of_bigint m) expr in
  let rhs = R.mul (R.of_bigint m) f0 in
  let too_big =
    B.compare m max_coefficient > 0
    || List.exists
         (fun (_, c) -> B.compare (B.abs (R.num c)) max_coefficient > 0)
         (Linexpr.terms scaled)
  in
  if too_big then None else Some (scaled, rhs)

let cut_of_row (d : Simplex.details) ~is_basic i =
  let row = d.Simplex.tableau.(i) in
  let ncols = Array.length d.Simplex.cols in
  let rhs = row.(ncols) in
  let f0 = R.frac rhs in
  if R.is_zero f0 then None
  else begin
    (* Σ frac(T_ij)·x_j over nonbasic, non-artificial columns. *)
    let expr = ref Linexpr.zero in
    for j = 0 to ncols - 1 do
      if (not is_basic.(j)) && d.Simplex.cols.(j) <> Simplex.Artificial then begin
        let fj = R.frac row.(j) in
        if not (R.is_zero fj) then
          expr := Linexpr.add !expr (Linexpr.scale fj (column_expr d j))
      end
    done;
    (* Fold the substitution constant into the right-hand side before
       scaling so the scaled data are genuinely integral. *)
    let const = Linexpr.const !expr in
    let expr = Linexpr.sub !expr (Linexpr.constant const) in
    let f0 = R.sub f0 const in
    scale_to_integers expr f0
  end

let half = R.of_ints 1 2

let strengthen ?(rounds = 5) ?(max_cuts_per_round = 10) model ~integer =
  if not (applicable model ~integer) then (model, 0)
  else begin
    let model = Model.copy model in
    let total = ref 0 in
    let continue_rounds = ref true in
    let round = ref 0 in
    while !continue_rounds && !round < rounds do
      incr round;
      match Simplex.solve_detailed model with
      | None -> continue_rounds := false
      | Some d ->
        let ncols = Array.length d.Simplex.cols in
        let is_basic = Array.make ncols false in
        Array.iter (fun b -> is_basic.(b) <- true) d.Simplex.basis;
        (* Rank fractional rows by how central their fractional part
           is (most violated cuts first). *)
        let candidates =
          List.filter_map
            (fun i ->
              let row = d.Simplex.tableau.(i) in
              let f = R.frac row.(ncols) in
              if R.is_zero f then None
              else Some (R.abs (R.sub f half), i))
            (List.init (Array.length d.Simplex.basis) Fun.id)
        in
        let candidates = List.sort (fun (a, _) (b, _) -> R.compare a b) candidates in
        let cuts =
          List.filter_map (fun (_, i) -> cut_of_row d ~is_basic i)
            (List.filteri (fun k _ -> k < max_cuts_per_round) candidates)
        in
        if cuts = [] then continue_rounds := false
        else
          List.iter
            (fun (expr, f0) ->
              incr total;
              Model.add_constraint model ~name:(Printf.sprintf "gomory_%d" !total)
                expr Model.Ge f0)
            cuts
    done;
    (model, !total)
  end
