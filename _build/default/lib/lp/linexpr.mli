(** Linear expressions over integer-indexed variables with exact
    rational coefficients.

    An expression is [Σ cᵢ·xᵢ + k]. Terms are kept sorted by variable
    index with no zero coefficients, so structural equality coincides
    with mathematical equality. *)

type t

(** The zero expression. *)
val zero : t

(** [constant k] is the expression [k]. *)
val constant : Numeric.Rat.t -> t

(** [var ?coeff v] is [coeff·x_v] (default coefficient 1). *)
val var : ?coeff:Numeric.Rat.t -> int -> t

(** [of_terms ?const terms] builds an expression from unsorted,
    possibly-duplicated [(var, coeff)] pairs; duplicates are summed. *)
val of_terms : ?const:Numeric.Rat.t -> (int * Numeric.Rat.t) list -> t

(** Sorted [(var, coeff)] pairs with non-zero coefficients. *)
val terms : t -> (int * Numeric.Rat.t) list

(** The constant part. *)
val const : t -> Numeric.Rat.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [scale c e] multiplies every coefficient and the constant by [c]. *)
val scale : Numeric.Rat.t -> t -> t

(** [coeff_of e v] is the coefficient of [x_v] (zero when absent). *)
val coeff_of : t -> int -> Numeric.Rat.t

(** [eval e values] substitutes [values.(v)] for [x_v].
    @raise Invalid_argument when a variable index is out of bounds. *)
val eval : t -> Numeric.Rat.t array -> Numeric.Rat.t

(** Highest variable index mentioned, or [-1] for constant expressions. *)
val max_var : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
