module R = Numeric.Rat

(* ----- writing ----- *)

let sanitize_names model =
  let n = Model.num_vars model in
  let seen = Hashtbl.create n in
  Array.init n (fun v ->
      let raw = Model.var_name model v in
      let name = if raw = "" || Hashtbl.mem seen raw then Printf.sprintf "x%d" v else raw in
      Hashtbl.replace seen name ();
      name)

let coeff_to_string c =
  if R.is_integer c then Numeric.Bigint.to_string (R.num c) else R.to_string c

let expr_to_buffer buf names expr =
  let first = ref true in
  List.iter
    (fun (v, c) ->
      let sign, mag = if R.sign c < 0 then ("-", R.neg c) else ("+", c) in
      if !first then begin
        if sign = "-" then Buffer.add_string buf "- ";
        first := false
      end
      else Buffer.add_string buf (Printf.sprintf " %s " sign);
      if R.equal mag R.one then Buffer.add_string buf names.(v)
      else Buffer.add_string buf (Printf.sprintf "%s %s" (coeff_to_string mag) names.(v)))
    (Linexpr.terms expr);
  let k = Linexpr.const expr in
  if not (R.is_zero k) then begin
    let sign, mag = if R.sign k < 0 then ("-", R.neg k) else ("+", k) in
    if !first then begin
      Buffer.add_string buf (if sign = "-" then "- " else "");
      Buffer.add_string buf (coeff_to_string mag)
    end
    else Buffer.add_string buf (Printf.sprintf " %s %s" sign (coeff_to_string mag))
  end
  else if !first then Buffer.add_string buf "0"

let to_string model =
  let names = sanitize_names model in
  let buf = Buffer.create 512 in
  let sense, obj = Model.objective model in
  Buffer.add_string buf
    (match sense with Model.Minimize -> "Minimize\n" | Maximize -> "Maximize\n");
  Buffer.add_string buf " obj: ";
  expr_to_buffer buf names obj;
  Buffer.add_string buf "\nSubject To\n";
  List.iteri
    (fun i { Model.expr; cmp; rhs; cname } ->
      let label = if cname = "" then Printf.sprintf "c%d" i else cname in
      Buffer.add_string buf (Printf.sprintf " %s: " label);
      expr_to_buffer buf names expr;
      Buffer.add_string buf
        (match cmp with Model.Le -> " <= " | Ge -> " >= " | Eq -> " = ");
      Buffer.add_string buf (coeff_to_string rhs);
      Buffer.add_char buf '\n')
    (Model.constraints model);
  Buffer.add_string buf "End\n";
  Buffer.contents buf

(* ----- reading ----- *)

type token =
  | Word of string  (* identifier or section keyword *)
  | Number of R.t
  | Plus
  | Minus
  | Cmp of Model.cmp
  | Colon

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c || c = '.'

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '\\' then begin
      (* comment to end of line *)
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '+' then begin
      push Plus;
      incr i
    end
    else if c = '-' then begin
      push Minus;
      incr i
    end
    else if c = ':' then begin
      push Colon;
      incr i
    end
    else if c = '<' || c = '>' || c = '=' then begin
      let cmp = match c with '<' -> Model.Le | '>' -> Model.Ge | _ -> Model.Eq in
      incr i;
      if !i < n && text.[!i] = '=' then incr i;
      push (Cmp cmp)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit text.[!i] || text.[!i] = '.' || text.[!i] = '/') do
        incr i
      done;
      push (Number (R.of_string (String.sub text start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident text.[!i] do
        incr i
      done;
      push (Word (String.sub text start (!i - start)))
    end
    else failwith (Printf.sprintf "Lp_format.of_string: unexpected character %C" c)
  done;
  List.rev !toks

let keyword s =
  match String.lowercase_ascii s with
  | "minimize" | "min" -> Some `Minimize
  | "maximize" | "max" -> Some `Maximize
  | "subject" -> Some `Subject (* followed by "To" *)
  | "st" | "s.t." -> Some `Subject_full
  | "end" -> Some `End
  | "bounds" -> Some `Bounds
  | _ -> None

(* Parse a linear expression: [sign] [coeff] var | [sign] constant ... *)
let parse_expr model vars toks =
  let lookup name =
    match Hashtbl.find_opt vars name with
    | Some v -> v
    | None ->
      let v = Model.add_var model ~name in
      Hashtbl.replace vars name v;
      v
  in
  let terms = ref [] and const = ref R.zero in
  let rec go sign toks =
    match toks with
    | Plus :: rest -> go sign rest
    | Minus :: rest -> go (R.neg sign) rest
    | Number c :: Word w :: rest when keyword w = None ->
      terms := (lookup w, R.mul sign c) :: !terms;
      after rest
    | Number c :: rest ->
      const := R.add !const (R.mul sign c);
      after rest
    | Word w :: rest when keyword w = None ->
      terms := (lookup w, sign) :: !terms;
      after rest
    | rest -> (rest, false)
  and after toks =
    match toks with
    | (Plus :: _ | Minus :: _) -> go R.one toks
    | (Number _ :: _ | Word _ :: _) as rest ->
      (* juxtaposition without sign: only valid for keywords ending the
         expression, otherwise treat as malformed *)
      (match rest with
       | Word w :: _ when keyword w <> None -> (rest, true)
       | _ -> failwith "Lp_format.of_string: missing operator in expression")
    | rest -> (rest, true)
  in
  let rest, _ = go R.one toks in
  (Linexpr.of_terms ~const:!const !terms, rest)

let skip_label toks =
  match toks with
  | Word _ :: Colon :: rest -> rest
  | _ -> toks

let label_of toks =
  match toks with Word l :: Colon :: _ -> Some l | _ -> None

let of_string text =
  let toks = tokenize text in
  let model = Model.create () in
  let vars = Hashtbl.create 16 in
  (* sense *)
  let sense, toks =
    match toks with
    | Word w :: rest ->
      (match keyword w with
       | Some `Minimize -> (Model.Minimize, rest)
       | Some `Maximize -> (Model.Maximize, rest)
       | _ -> failwith "Lp_format.of_string: expected Minimize or Maximize")
    | _ -> failwith "Lp_format.of_string: empty input"
  in
  let toks = skip_label toks in
  let obj, toks = parse_expr model vars toks in
  (* Subject To *)
  let toks =
    match toks with
    | Word w :: Word t :: rest
      when keyword w = Some `Subject && String.lowercase_ascii t = "to" ->
      rest
    | Word w :: rest when keyword w = Some `Subject_full -> rest
    | _ -> failwith "Lp_format.of_string: expected Subject To"
  in
  (* constraints until End/Bounds/eof *)
  let rec constraints toks =
    match toks with
    | [] -> ()
    | Word w :: rest when keyword w = Some `End -> ignore rest
    | Word w :: rest when keyword w = Some `Bounds ->
      (* accept only trivial "v >= 0" bounds *)
      let rec bounds toks =
        match toks with
        | Word w :: _ when keyword w = Some `End -> ()
        | Word _ :: Cmp Model.Ge :: Number z :: rest when R.is_zero z -> bounds rest
        | [] -> ()
        | _ -> failwith "Lp_format.of_string: only 'x >= 0' bounds are supported"
      in
      bounds rest
    | _ ->
      let name = Option.value (label_of toks) ~default:"" in
      let toks = skip_label toks in
      let expr, toks = parse_expr model vars toks in
      (match toks with
       | Cmp cmp :: rest ->
         (* The right-hand side is a signed constant; parsing it as an
            expression would swallow the next row's label. *)
         let rec parse_rhs sign = function
           | Plus :: rest -> parse_rhs sign rest
           | Minus :: rest -> parse_rhs (R.neg sign) rest
           | Number c :: rest -> (R.mul sign c, rest)
           | _ -> failwith "Lp_format.of_string: expected a constant right-hand side"
         in
         let rhs, rest = parse_rhs R.one rest in
         Model.add_constraint model ~name expr cmp rhs;
         constraints rest
       | _ -> failwith "Lp_format.of_string: expected comparison in constraint")
  in
  constraints toks;
  Model.set_objective model sense obj;
  model
