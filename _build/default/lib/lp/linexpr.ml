module R = Numeric.Rat

type t = { terms : (int * R.t) list; const : R.t }
(* Invariant: [terms] sorted by strictly increasing variable index,
   every coefficient non-zero. *)

let zero = { terms = []; const = R.zero }
let constant k = { terms = []; const = k }

let var ?(coeff = R.one) v =
  if v < 0 then invalid_arg "Linexpr.var: negative variable index";
  if R.is_zero coeff then zero else { terms = [ (v, coeff) ]; const = R.zero }

(* Merge two sorted term lists, summing coefficients and dropping zeros. *)
let rec merge a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | ((va, ca) as ha) :: ta, ((vb, cb) as hb) :: tb ->
    if va < vb then ha :: merge ta b
    else if vb < va then hb :: merge a tb
    else begin
      let c = R.add ca cb in
      if R.is_zero c then merge ta tb else (va, c) :: merge ta tb
    end

let of_terms ?(const = R.zero) pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  (* Fold runs of equal variables. *)
  let rec fold = function
    | [] -> []
    | (v, c) :: rest ->
      let rec take acc = function
        | (v', c') :: tl when v' = v -> take (R.add acc c') tl
        | tl -> (acc, tl)
      in
      let total, tl = take c rest in
      if R.is_zero total then fold tl else (v, total) :: fold tl
  in
  List.iter (fun (v, _) -> if v < 0 then invalid_arg "Linexpr.of_terms: negative index") pairs;
  { terms = fold sorted; const }

let terms t = t.terms
let const t = t.const

let add a b = { terms = merge a.terms b.terms; const = R.add a.const b.const }

let neg t =
  { terms = List.map (fun (v, c) -> (v, R.neg c)) t.terms; const = R.neg t.const }

let sub a b = add a (neg b)

let scale c t =
  if R.is_zero c then zero
  else { terms = List.map (fun (v, k) -> (v, R.mul c k)) t.terms; const = R.mul c t.const }

let coeff_of t v =
  match List.assoc_opt v t.terms with Some c -> c | None -> R.zero

let eval t values =
  List.fold_left
    (fun acc (v, c) ->
      if v >= Array.length values then invalid_arg "Linexpr.eval: variable out of bounds";
      R.add acc (R.mul c values.(v)))
    t.const t.terms

let max_var t = List.fold_left (fun acc (v, _) -> max acc v) (-1) t.terms

let equal a b =
  R.equal a.const b.const
  && List.length a.terms = List.length b.terms
  && List.for_all2 (fun (v, c) (v', c') -> v = v' && R.equal c c') a.terms b.terms

let pp fmt t =
  let pp_term first fmt (v, c) =
    if R.sign c >= 0 && not first then Format.fprintf fmt " + ";
    if R.sign c < 0 then Format.fprintf fmt (if first then "-" else " - ");
    let a = R.abs c in
    if R.equal a R.one then Format.fprintf fmt "x%d" v
    else Format.fprintf fmt "%a·x%d" R.pp a v
  in
  match t.terms with
  | [] -> R.pp fmt t.const
  | first :: rest ->
    pp_term true fmt first;
    List.iter (pp_term false fmt) rest;
    if not (R.is_zero t.const) then begin
      if R.sign t.const > 0 then Format.fprintf fmt " + %a" R.pp t.const
      else Format.fprintf fmt " - %a" R.pp (R.abs t.const)
    end
