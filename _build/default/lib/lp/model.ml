module R = Numeric.Rat

type var = int

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type constr = { expr : Linexpr.t; cmp : cmp; rhs : R.t; cname : string }

type t = {
  mutable nvars : int;
  mutable names_rev : string list;
  mutable constrs_rev : constr list;
  mutable nconstrs : int;
  mutable sense : sense;
  mutable obj : Linexpr.t;
  (* variable domains, sparse: only tightened variables appear *)
  lowers : (var, R.t) Hashtbl.t;
  uppers : (var, R.t) Hashtbl.t;
}

let create () =
  { nvars = 0; names_rev = []; constrs_rev = []; nconstrs = 0;
    sense = Minimize; obj = Linexpr.zero;
    lowers = Hashtbl.create 8; uppers = Hashtbl.create 8 }

let copy t =
  { nvars = t.nvars; names_rev = t.names_rev; constrs_rev = t.constrs_rev;
    nconstrs = t.nconstrs; sense = t.sense; obj = t.obj;
    lowers = Hashtbl.copy t.lowers; uppers = Hashtbl.copy t.uppers }

let add_var t ~name =
  let v = t.nvars in
  t.nvars <- v + 1;
  t.names_rev <- name :: t.names_rev;
  v

let num_vars t = t.nvars

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model.var_name: unknown variable";
  List.nth t.names_rev (t.nvars - 1 - v)

let add_constraint t ?(name = "") expr cmp rhs =
  let k = Linexpr.const expr in
  let expr = Linexpr.sub expr (Linexpr.constant k) in
  let rhs = R.sub rhs k in
  (match Linexpr.max_var expr with
   | v when v >= t.nvars -> invalid_arg "Model.add_constraint: unknown variable"
   | _ -> ());
  t.constrs_rev <- { expr; cmp; rhs; cname = name } :: t.constrs_rev;
  t.nconstrs <- t.nconstrs + 1

let add_upper_bound t v ub = add_constraint t (Linexpr.var v) Le ub
let add_lower_bound t v lb = add_constraint t (Linexpr.var v) Ge lb

let check_var t v name =
  if v < 0 || v >= t.nvars then invalid_arg (name ^ ": unknown variable")

let tighten_lower t v lb =
  check_var t v "Model.tighten_lower";
  if R.sign lb > 0 then begin
    match Hashtbl.find_opt t.lowers v with
    | Some cur when R.compare cur lb >= 0 -> ()
    | _ -> Hashtbl.replace t.lowers v lb
  end

let tighten_upper t v ub =
  check_var t v "Model.tighten_upper";
  match Hashtbl.find_opt t.uppers v with
  | Some cur when R.compare cur ub <= 0 -> ()
  | _ -> Hashtbl.replace t.uppers v ub

let bounds t v =
  check_var t v "Model.bounds";
  ( Option.value (Hashtbl.find_opt t.lowers v) ~default:R.zero,
    Hashtbl.find_opt t.uppers v )

let has_var_bounds t = Hashtbl.length t.lowers > 0 || Hashtbl.length t.uppers > 0

let set_objective t sense expr =
  (match Linexpr.max_var expr with
   | v when v >= t.nvars -> invalid_arg "Model.set_objective: unknown variable"
   | _ -> ());
  t.sense <- sense;
  t.obj <- expr

let objective t = (t.sense, t.obj)
let constraints t = List.rev t.constrs_rev
let num_constraints t = t.nconstrs

let check_feasible t values =
  Array.length values = t.nvars
  && Array.for_all (fun v -> R.sign v >= 0) values
  && (let ok = ref true in
      Hashtbl.iter
        (fun v lb -> if R.compare values.(v) lb < 0 then ok := false)
        t.lowers;
      Hashtbl.iter
        (fun v ub -> if R.compare values.(v) ub > 0 then ok := false)
        t.uppers;
      !ok)
  && List.for_all
       (fun { expr; cmp; rhs; _ } ->
         let lhs = Linexpr.eval expr values in
         match cmp with
         | Le -> R.compare lhs rhs <= 0
         | Ge -> R.compare lhs rhs >= 0
         | Eq -> R.equal lhs rhs)
       (constraints t)

let pp fmt t =
  let pp_cmp fmt = function
    | Le -> Format.pp_print_string fmt "<="
    | Ge -> Format.pp_print_string fmt ">="
    | Eq -> Format.pp_print_string fmt "="
  in
  Format.fprintf fmt "@[<v>%s %a@,subject to:@,"
    (match t.sense with Minimize -> "minimize" | Maximize -> "maximize")
    Linexpr.pp t.obj;
  List.iter
    (fun { expr; cmp; rhs; cname } ->
      Format.fprintf fmt "  %s%a %a %a@,"
        (if cname = "" then "" else cname ^ ": ")
        Linexpr.pp expr pp_cmp cmp R.pp rhs)
    (constraints t);
  Format.fprintf fmt "  x%d..x%d >= 0@]" 0 (t.nvars - 1)
