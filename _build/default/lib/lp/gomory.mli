(** Gomory fractional cutting planes for pure-integer models.

    When every structural variable is integer-constrained and every
    constraint has integer coefficients and right-hand side, all slack
    variables take integer values at integer points, so the classic
    Gomory fractional cut derived from a tableau row with fractional
    right-hand side,

    [Σ_{j nonbasic} frac(T_ij)·x_j >= frac(b_i)],

    is valid for every feasible integer point while cutting off the
    current fractional LP optimum. Because this solver is exact
    rational, the cuts are generated without the numerical-safety
    compromises floating-point MILP codes need.

    Used by {!Milp.Solver} to tighten the root relaxation before
    branch-and-bound. *)

(** [applicable model ~integer] checks the pure-integer preconditions:
    [integer] covers every variable and all constraint data are
    integers. *)
val applicable : Model.t -> integer:Model.var list -> bool

(** [strengthen ?rounds ?max_cuts_per_round model ~integer] adds
    Gomory cuts to (a copy of) [model] and returns it with the number
    of cuts added. Each round re-solves the LP and cuts the new
    fractional optimum; generation stops early when the relaxation
    becomes integral, infeasible for the cut system (cannot happen on
    valid input), or yields no fractional row.

    Returns the model unchanged (0 cuts) when {!applicable} is false.

    @param rounds maximum resolve-and-cut iterations (default 5).
    @param max_cuts_per_round cuts added per iteration, most-fractional
      rows first (default 10). *)
val strengthen :
  ?rounds:int ->
  ?max_cuts_per_round:int ->
  Model.t ->
  integer:Model.var list ->
  Model.t * int
