(** Exact primal simplex with native variable bounds.

    Solves the same {!Model.t} as {!Simplex} and always returns the
    same optimum (property-tested), but handles variable domains
    [\[lower, upper\]] inside the pivoting rules (nonbasic variables
    sit at either bound; bound-to-bound "flips" replace pivots where
    possible) instead of materializing them as tableau rows.

    This is the engine the branch-and-bound solver prefers: a branching
    decision tightens one variable's domain, so node relaxations keep
    the base model's row count instead of growing by one row per
    branch — on this project's MILPs that shrinks the tableau several-
    fold (see the [ablation/*engine*] benches). *)

(** [solve model] optimizes the model exactly, honouring variable
    bounds set with {!Model.tighten_lower}/{!Model.tighten_upper}.
    Returns {!Simplex.Infeasible} when bounds cross
    ([lower > upper]). *)
val solve : Model.t -> Simplex.result

(** Pivots performed by the last [solve] (statistics). *)
val last_pivot_count : unit -> int
