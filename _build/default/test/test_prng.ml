(* Tests for the deterministic PRNG: reproducibility, ranges, rough
   uniformity, independence of split streams. *)

module P = Numeric.Prng

let test_determinism () =
  let a = P.create 42 and b = P.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (P.bits64 a) (P.bits64 b)
  done

let test_seed_sensitivity () =
  let a = P.create 1 and b = P.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if P.bits64 a <> P.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = P.create 7 in
  ignore (P.bits64 a);
  let b = P.copy a in
  let va = P.bits64 a in
  let vb = P.bits64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  ignore (P.bits64 a);
  (* advancing a does not advance b *)
  let va2 = P.bits64 a and vb2 = P.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (va2 <> vb2 || va2 = vb2)

let test_int_range () =
  let rng = P.create 3 in
  for _ = 1 to 1000 do
    let v = P.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (P.int rng 0))

let test_int_in_range () =
  let rng = P.create 4 in
  for _ = 1 to 1000 do
    let v = P.int_in_range rng ~lo:5 ~hi:8 in
    Alcotest.(check bool) "in [5,8]" true (v >= 5 && v <= 8)
  done;
  (* single point range *)
  Alcotest.(check int) "degenerate" 3 (P.int_in_range rng ~lo:3 ~hi:3);
  Alcotest.check_raises "hi < lo" (Invalid_argument "Prng.int_in_range: hi < lo")
    (fun () -> ignore (P.int_in_range rng ~lo:2 ~hi:1))

let test_uniformity_rough () =
  let rng = P.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = P.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%%" i)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_float_range () =
  let rng = P.create 6 in
  for _ = 1 to 1000 do
    let v = P.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_shuffle_permutation () =
  let rng = P.create 8 in
  let arr = Array.init 50 (fun i -> i) in
  let orig = Array.copy arr in
  P.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" orig sorted;
  Alcotest.(check bool) "actually moved something" true (arr <> orig)

let test_choose () =
  let rng = P.create 9 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = P.choose rng arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) v) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (P.choose rng [||]))

let test_split_diverges () =
  let a = P.create 11 in
  let c = P.split a in
  let same = ref 0 in
  for _ = 1 to 20 do
    if P.bits64 a = P.bits64 c then incr same
  done;
  Alcotest.(check bool) "split stream differs" true (!same < 3)

let suite =
  ( "prng",
    [ Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "int range" `Quick test_int_range;
      Alcotest.test_case "int_in_range" `Quick test_int_in_range;
      Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "choose" `Quick test_choose;
      Alcotest.test_case "split diverges" `Quick test_split_diverges ] )
