(* Unit and property tests for Numeric.Rat: canonical form, field laws,
   ordering, rounding. *)

module B = Numeric.Bigint
module R = Numeric.Rat

let r = R.of_ints
let check_r msg expected actual = Alcotest.(check string) msg expected (R.to_string actual)

let test_canonical_form () =
  check_r "reduce" "2/3" (r 4 6);
  check_r "negative den" "-2/3" (r 2 (-3));
  check_r "both negative" "2/3" (r (-2) (-3));
  check_r "integer form" "5" (r 10 2);
  check_r "zero" "0" (r 0 17);
  check_r "zero neg den" "0" (r 0 (-17))

let test_make_div_by_zero () =
  Alcotest.check_raises "den zero" Division_by_zero (fun () -> ignore (r 1 0))

let test_of_string () =
  check_r "int" "42" (R.of_string "42");
  check_r "frac" "2/3" (R.of_string "4/6");
  check_r "neg frac" "-1/2" (R.of_string "-2/4");
  check_r "decimal" "5/4" (R.of_string "1.25");
  check_r "neg decimal" "-5/4" (R.of_string "-1.25");
  check_r "decimal no int part" "1/4" (R.of_string "0.25")

let test_arith () =
  check_r "add" "5/6" (R.add (r 1 2) (r 1 3));
  check_r "sub" "1/6" (R.sub (r 1 2) (r 1 3));
  check_r "mul" "1/6" (R.mul (r 1 2) (r 1 3));
  check_r "div" "3/2" (R.div (r 1 2) (r 1 3));
  check_r "inv" "3/2" (R.inv (r 2 3));
  check_r "inv neg" "-3/2" (R.inv (r (-2) 3));
  check_r "cancel to int" "1" (R.add (r 1 2) (r 1 2))

let test_div_by_zero () =
  Alcotest.check_raises "div zero" Division_by_zero (fun () ->
      ignore (R.div R.one R.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (R.inv R.zero))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true R.(r 1 2 < r 2 3);
  Alcotest.(check bool) "-1/2 > -2/3" true R.(r (-1) 2 > r (-2) 3);
  Alcotest.(check bool) "equal reduced" true R.(r 2 4 = r 1 2);
  Alcotest.(check int) "sign pos" 1 (R.sign (r 1 2));
  Alcotest.(check int) "sign neg" (-1) (R.sign (r (-1) 2));
  Alcotest.(check int) "sign zero" 0 (R.sign R.zero)

let test_floor_ceil_frac () =
  let check_i msg expected actual = Alcotest.(check int) msg expected (B.to_int_exn actual) in
  check_i "floor 7/2" 3 (R.floor (r 7 2));
  check_i "ceil 7/2" 4 (R.ceil (r 7 2));
  check_i "floor -7/2" (-4) (R.floor (r (-7) 2));
  check_i "ceil -7/2" (-3) (R.ceil (r (-7) 2));
  check_i "floor int" 5 (R.floor (r 5 1));
  check_i "ceil int" 5 (R.ceil (r 5 1));
  check_r "frac 7/2" "1/2" (R.frac (r 7 2));
  check_r "frac -7/2" "1/2" (R.frac (r (-7) 2));
  check_r "frac int" "0" (R.frac (r 4 1))

let test_is_integer () =
  Alcotest.(check bool) "int" true (R.is_integer (r 4 2));
  Alcotest.(check bool) "non-int" false (R.is_integer (r 1 2));
  Alcotest.(check bool) "zero" true (R.is_integer R.zero)

let test_to_float () =
  Alcotest.(check (float 1e-12)) "1/2" 0.5 (R.to_float (r 1 2));
  Alcotest.(check (float 1e-12)) "-3/4" (-0.75) (R.to_float (r (-3) 4))

let test_representation_boundary () =
  (* The implementation switches between a native-int fast path and
     Bigints around 2^30; arithmetic must be seamless across the
     boundary in both directions. *)
  let big = R.of_bigint (B.pow B.two 35) in
  (* promotion: products that leave the small range *)
  let sq = R.mul big big in
  Alcotest.(check string) "2^70" (B.to_string (B.pow B.two 70)) (R.to_string sq);
  (* demotion: a big-path computation whose result is small again *)
  let back = R.sub big (R.sub big (R.of_int 3)) in
  Alcotest.(check bool) "demoted equals small" true (R.equal back (R.of_int 3));
  Alcotest.(check string) "prints small" "3" (R.to_string back);
  (* mixed-representation comparison *)
  Alcotest.(check bool) "big > small" true R.(big > of_int 5);
  Alcotest.(check bool) "small < big" true R.(of_int 5 < big);
  (* division creating a large denominator, then cancelling *)
  let frac = R.div R.one big in
  Alcotest.(check bool) "1/2^35 * 2^35 = 1" true (R.equal R.one (R.mul frac big));
  (* exactly at the boundary: 2^30 - 1 stays small-representable,
     2^30 must still behave identically *)
  let just_below = R.of_int ((1 lsl 30) - 1) and at = R.of_int (1 lsl 30) in
  Alcotest.(check bool) "boundary compare" true R.(just_below < at);
  Alcotest.(check string) "boundary add" (string_of_int ((1 lsl 31) - 1))
    (R.to_string (R.add just_below at))

(* qcheck: field laws over random small rationals. *)
let rat_gen =
  QCheck2.Gen.(
    map
      (fun (n, d) -> r n (if d = 0 then 1 else d))
      (pair (int_range (-10000) 10000) (int_range (-500) 500)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let props =
  [ prop "canonical: den > 0 and coprime" rat_gen (fun x ->
        B.sign (R.den x) > 0 && B.is_one (B.gcd (R.num x) (R.den x))
        || (R.is_zero x && B.is_one (R.den x)));
    prop "add commutative" QCheck2.Gen.(pair rat_gen rat_gen) (fun (x, y) ->
        R.equal (R.add x y) (R.add y x));
    prop "add associative" QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
      (fun (x, y, z) -> R.equal (R.add (R.add x y) z) (R.add x (R.add y z)));
    prop "mul distributes" QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
      (fun (x, y, z) ->
        R.equal (R.mul x (R.add y z)) (R.add (R.mul x y) (R.mul x z)));
    prop "additive inverse" rat_gen (fun x -> R.is_zero (R.add x (R.neg x)));
    prop "multiplicative inverse" rat_gen (fun x ->
        R.is_zero x || R.equal R.one (R.mul x (R.inv x)));
    prop "sub then add" QCheck2.Gen.(pair rat_gen rat_gen) (fun (x, y) ->
        R.equal x (R.add (R.sub x y) y));
    prop "div then mul" QCheck2.Gen.(pair rat_gen rat_gen) (fun (x, y) ->
        R.is_zero y || R.equal x (R.mul (R.div x y) y));
    prop "floor <= x < floor + 1" rat_gen (fun x ->
        let f = R.of_bigint (R.floor x) in
        R.compare f x <= 0 && R.compare x (R.add f R.one) < 0);
    prop "ceil - floor in {0,1}" rat_gen (fun x ->
        let d = B.sub (R.ceil x) (R.floor x) in
        B.is_zero d || B.is_one d);
    prop "frac in [0,1)" rat_gen (fun x ->
        let f = R.frac x in
        R.compare f R.zero >= 0 && R.compare f R.one < 0);
    prop "compare total order transitive-ish" QCheck2.Gen.(pair rat_gen rat_gen)
      (fun (x, y) -> R.compare x y = -R.compare y x);
    prop "string roundtrip" rat_gen (fun x -> R.equal x (R.of_string (R.to_string x)));
    prop "field laws across the 2^30 boundary"
      QCheck2.Gen.(pair (int_range (-5) 5) (int_range 25 40))
      (fun (k, e) ->
        (* x = k + 2^e / 3 exercises both representations *)
        let x = R.add (R.of_int k) (R.make (B.pow B.two e) (B.of_int 3)) in
        R.is_zero (R.add x (R.neg x))
        && R.equal x (R.mul x R.one)
        && R.equal (R.sub (R.add x R.one) R.one) x
        && (R.is_zero x || R.equal R.one (R.mul x (R.inv x))));
    prop "to_float consistent" rat_gen (fun x ->
        Float.abs (R.to_float x -. (B.to_float (R.num x) /. B.to_float (R.den x)))
        < 1e-9) ]

let suite =
  ( "rat",
    [ Alcotest.test_case "canonical form" `Quick test_canonical_form;
      Alcotest.test_case "make div by zero" `Quick test_make_div_by_zero;
      Alcotest.test_case "of_string" `Quick test_of_string;
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "div by zero" `Quick test_div_by_zero;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "floor/ceil/frac" `Quick test_floor_ceil_frac;
      Alcotest.test_case "is_integer" `Quick test_is_integer;
      Alcotest.test_case "to_float" `Quick test_to_float;
      Alcotest.test_case "representation boundary" `Quick test_representation_boundary ]
    @ props )
