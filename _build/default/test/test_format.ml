(* Tests for the problem file format: round-trips, hand-written files,
   error messages. *)

module PF = Rentcost.Problem_format
module PB = Rentcost.Problem
module TG = Rentcost.Task_graph

let same_problem a b =
  PB.num_types a = PB.num_types b
  && PB.num_recipes a = PB.num_recipes b
  && Rentcost.Platform.machines (PB.platform a)
     = Rentcost.Platform.machines (PB.platform b)
  && Array.for_all2
       (fun ra rb ->
         Array.init (TG.num_tasks ra) (TG.type_of ra)
         = Array.init (TG.num_tasks rb) (TG.type_of rb)
         && List.sort compare (TG.edges ra) = List.sort compare (TG.edges rb))
       (PB.recipes a) (PB.recipes b)

let test_roundtrip_illustrating () =
  let p = PB.illustrating in
  Alcotest.(check bool) "roundtrip" true (same_problem p (PF.of_string (PF.to_string p)))

let test_roundtrip_generated () =
  for seed = 1 to 10 do
    let rng = Numeric.Prng.create seed in
    let p =
      Cloudsim.Generator.problem ~rng
        { Cloudsim.Generator.num_graphs = 4; min_tasks = 3; max_tasks = 6;
          mutation_pct = 0.5 }
        { Cloudsim.Generator.num_types = 4; min_cost = 1; max_cost = 50;
          min_throughput = 5; max_throughput = 40 }
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (same_problem p (PF.of_string (PF.to_string p)))
  done

let test_hand_written () =
  let text =
    {|# tiny instance
types 2
type 0 cost 5 throughput 10
type 1 cost 9 throughput 20
recipe
  task 0 type 0
  task 1 type 1
  edge 0 1
recipe
  task 0 type 1
|}
  in
  let p = PF.of_string text in
  Alcotest.(check int) "types" 2 (PB.num_types p);
  Alcotest.(check int) "recipes" 2 (PB.num_recipes p);
  Alcotest.(check int) "recipe 0 tasks" 2 (TG.num_tasks (PB.recipe p 0));
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1) ] (TG.edges (PB.recipe p 0));
  Alcotest.(check int) "cost of type 1" 9 (Rentcost.Platform.cost (PB.platform p) 1)

let test_case_and_whitespace_insensitive () =
  let text = "TYPES 1\n  Type 0 Cost 3 Throughput 4\nRECIPE\n\tTask 0 Type 0\n" in
  let p = PF.of_string text in
  Alcotest.(check int) "parsed" 1 (PB.num_recipes p)

let test_errors () =
  let fails_with fragment text =
    match PF.of_string text with
    | exception Failure msg ->
      let contains =
        let n = String.length fragment and h = String.length msg in
        let rec go i = i + n <= h && (String.sub msg i n = fragment || go (i + 1)) in
        go 0
      in
      if not contains then
        Alcotest.failf "expected error mentioning %S, got %S" fragment msg
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected failure for %S" text
  in
  fails_with "missing 'types'" "recipe\n task 0 type 0\n";
  fails_with "not declared" "types 2\ntype 0 cost 1 throughput 1\nrecipe\ntask 0 type 0\n";
  fails_with "duplicate type" "types 1\ntype 0 cost 1 throughput 1\ntype 0 cost 2 throughput 2\n";
  fails_with "outside a recipe" "types 1\ntype 0 cost 1 throughput 1\ntask 0 type 0\n";
  fails_with "unknown directive" "types 1\ntype 0 cost 1 throughput 1\nbogus 1\n";
  fails_with "numbered 0..n-1"
    "types 1\ntype 0 cost 1 throughput 1\nrecipe\ntask 1 type 0\n";
  fails_with "expected an integer" "types x\n"

let test_error_line_numbers () =
  match PF.of_string "types 1\ntype 0 cost 1 throughput 1\nwat\n" with
  | exception Failure msg ->
    Alcotest.(check bool) "mentions line 3" true
      (String.length msg >= 6
      && (let contains =
            let fragment = "line 3" in
            let n = String.length fragment and h = String.length msg in
            let rec go i = i + n <= h && (String.sub msg i n = fragment || go (i + 1)) in
            go 0
          in
          contains))
  | _ -> Alcotest.fail "expected failure"

let test_file_io () =
  let path = Filename.temp_file "rentcost" ".problem" in
  PF.save path PB.illustrating;
  let p = PF.load path in
  Sys.remove path;
  Alcotest.(check bool) "load . save = id" true (same_problem p PB.illustrating)

let suite =
  ( "problem_format",
    [ Alcotest.test_case "roundtrip illustrating" `Quick test_roundtrip_illustrating;
      Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
      Alcotest.test_case "hand written" `Quick test_hand_written;
      Alcotest.test_case "case/whitespace insensitive" `Quick
        test_case_and_whitespace_insensitive;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
      Alcotest.test_case "file io" `Quick test_file_io ] )
