test/test_knapsack.ml: Alcotest Array Knapsack List Option QCheck2 QCheck_alcotest
