test/test_ilp.ml: Alcotest Array List Lp Milp Numeric Printf QCheck2 QCheck_alcotest Rentcost
