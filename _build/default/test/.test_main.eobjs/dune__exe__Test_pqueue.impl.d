test/test_pqueue.ml: Alcotest Int List Option Pqueue QCheck2 QCheck_alcotest
