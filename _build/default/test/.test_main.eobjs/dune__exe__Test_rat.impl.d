test/test_rat.ml: Alcotest Float Numeric QCheck2 QCheck_alcotest
