test/test_analysis.ml: Alcotest Array List Printf Rentcost
