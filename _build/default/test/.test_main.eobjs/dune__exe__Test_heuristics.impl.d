test/test_heuristics.ml: Alcotest Array List Numeric Printf QCheck2 QCheck_alcotest Rentcost
