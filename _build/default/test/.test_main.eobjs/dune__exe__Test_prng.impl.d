test/test_prng.ml: Alcotest Array Numeric Printf
