test/test_lp.ml: Alcotest Array List Lp Numeric Printf QCheck2 QCheck_alcotest
