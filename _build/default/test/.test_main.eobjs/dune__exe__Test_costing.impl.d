test/test_costing.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Rentcost
