test/test_streamsim.ml: Alcotest Array Float List Numeric Option Printf Rentcost Streamsim
