test/test_runner.ml: Alcotest Array Cloudsim Hashtbl List Option Printf Rentcost String
