test/test_dp.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Rentcost
