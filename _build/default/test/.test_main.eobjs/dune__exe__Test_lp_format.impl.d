test/test_lp_format.ml: Alcotest Array List Lp Numeric Printf QCheck2 QCheck_alcotest String
