test/test_simplex_oracle.ml: Array List Lp Numeric Printf QCheck2 QCheck_alcotest
