test/test_format.ml: Alcotest Array Cloudsim Filename List Numeric Printf Rentcost String Sys
