test/test_model.ml: Alcotest Array Format Fun List QCheck2 QCheck_alcotest Rentcost String
