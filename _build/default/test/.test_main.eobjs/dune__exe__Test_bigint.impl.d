test/test_bigint.ml: Alcotest List Numeric Printf QCheck2 QCheck_alcotest Stdlib
