test/test_generator.ml: Alcotest Array Cloudsim Numeric Printf QCheck2 QCheck_alcotest Rentcost
