test/test_integration.ml: Alcotest Array Cloudsim List Lp Numeric Option Printf Rentcost Streamsim
