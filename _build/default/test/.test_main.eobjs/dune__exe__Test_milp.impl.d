test/test_milp.ml: Alcotest Array List Lp Milp Numeric Printf QCheck2 QCheck_alcotest
