test/test_bounded.ml: Alcotest Array List Lp Numeric Printf QCheck2 QCheck_alcotest
