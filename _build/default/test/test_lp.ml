(* Tests for the exact simplex: hand-checked LPs covering optimal,
   infeasible, unbounded and degenerate cases, plus qcheck properties
   on randomly generated feasible programs. *)

module R = Numeric.Rat
module L = Lp.Linexpr
module M = Lp.Model
module S = Lp.Simplex

let r = R.of_ints
let ri = R.of_int

let expr terms = L.of_terms (List.map (fun (v, n) -> (v, ri n)) terms)

let check_rat msg expected actual =
  Alcotest.(check string) msg (R.to_string expected) (R.to_string actual)

let solve_opt m =
  match S.solve m with
  | S.Optimal sol -> sol
  | S.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected: unbounded"

(* --- Linexpr unit tests --- *)

let test_linexpr_normalization () =
  let e = L.of_terms [ (2, ri 3); (0, ri 1); (2, ri (-3)); (1, ri 5) ] in
  Alcotest.(check int) "merged terms" 2 (List.length (L.terms e));
  check_rat "x0 coeff" R.one (L.coeff_of e 0);
  check_rat "x1 coeff" (ri 5) (L.coeff_of e 1);
  check_rat "x2 cancelled" R.zero (L.coeff_of e 2)

let test_linexpr_algebra () =
  let a = expr [ (0, 1); (1, 2) ] and b = expr [ (1, -2); (2, 4) ] in
  let s = L.add a b in
  check_rat "x1 cancels" R.zero (L.coeff_of s 1);
  check_rat "x2 present" (ri 4) (L.coeff_of s 2);
  Alcotest.(check bool) "sub self is zero" true (L.equal L.zero (L.sub a a));
  let sc = L.scale (r 1 2) a in
  check_rat "scaled" (r 1 2) (L.coeff_of sc 0);
  Alcotest.(check bool) "scale by 0" true (L.equal L.zero (L.scale R.zero a))

let test_linexpr_eval () =
  let e = L.of_terms ~const:(ri 10) [ (0, ri 2); (1, ri 3) ] in
  let v = L.eval e [| ri 1; ri 2 |] in
  check_rat "2*1 + 3*2 + 10" (ri 18) v;
  Alcotest.(check int) "max_var" 1 (L.max_var e);
  Alcotest.(check int) "max_var of const" (-1) (L.max_var (L.constant R.one))

(* --- basic LPs --- *)

(* max 3x + 2y s.t. x + y <= 4; x + 3y <= 6  -> x=4, y=0, obj 12 *)
let test_lp_max_basic () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, 1) ]) M.Le (ri 4);
  M.add_constraint m (expr [ (x, 1); (y, 3) ]) M.Le (ri 6);
  M.set_objective m M.Maximize (expr [ (x, 3); (y, 2) ]);
  let sol = solve_opt m in
  check_rat "objective" (ri 12) sol.objective;
  check_rat "x" (ri 4) sol.values.(x);
  check_rat "y" R.zero sol.values.(y)

(* min x + y s.t. x + 2y >= 4; 3x + y >= 6 -> intersection (8/5, 6/5), obj 14/5 *)
let test_lp_min_cover () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, 2) ]) M.Ge (ri 4);
  M.add_constraint m (expr [ (x, 3); (y, 1) ]) M.Ge (ri 6);
  M.set_objective m M.Minimize (expr [ (x, 1); (y, 1) ]);
  let sol = solve_opt m in
  check_rat "objective" (r 14 5) sol.objective;
  check_rat "x" (r 8 5) sol.values.(x);
  check_rat "y" (r 6 5) sol.values.(y)

let test_lp_equality () =
  (* min 2x + y s.t. x + y = 3, x <= 2 -> x=0, y=3, cost 3. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, 1) ]) M.Eq (ri 3);
  M.add_upper_bound m x (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 2); (y, 1) ]);
  let sol = solve_opt m in
  check_rat "objective" (ri 3) sol.objective;
  check_rat "y" (ri 3) sol.values.(y)

let test_lp_infeasible () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Le (ri 1);
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  (match S.solve m with
   | S.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible");
  let m2 = M.create () in
  let x = M.add_var m2 ~name:"x" and y = M.add_var m2 ~name:"y" in
  M.add_constraint m2 (expr [ (x, 1); (y, 1) ]) M.Eq (ri 1);
  M.add_constraint m2 (expr [ (x, 1); (y, 1) ]) M.Eq (ri 2);
  M.set_objective m2 M.Minimize (expr [ (x, 1) ]);
  match S.solve m2 with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible (equalities)"

let test_lp_unbounded () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, -1) ]) M.Le (ri 1);
  M.set_objective m M.Maximize (expr [ (x, 1) ]);
  (match S.solve m with
   | S.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded");
  let m2 = M.create () in
  let x = M.add_var m2 ~name:"x" in
  M.set_objective m2 M.Minimize (expr [ (x, -1) ]);
  match S.solve m2 with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded (no constraints)"

let test_lp_no_constraints_bounded () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let sol = solve_opt m in
  check_rat "objective 0 at origin" R.zero sol.objective

let test_lp_negative_rhs () =
  (* x - y <= -2 with min x: the row must be reoriented internally.
     Feasible: y >= x + 2; min x = 0 (y = 2). *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, -1) ]) M.Le (ri (-2));
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let sol = solve_opt m in
  check_rat "objective" R.zero sol.objective;
  Alcotest.(check bool) "feasible point" true (M.check_feasible m sol.values)

let test_lp_degenerate () =
  (* Beale's cycling example: Bland's rule must terminate and reach the
     optimum value -1/20. *)
  let m = M.create () in
  let x1 = M.add_var m ~name:"x1" and x2 = M.add_var m ~name:"x2"
  and x3 = M.add_var m ~name:"x3" and x4 = M.add_var m ~name:"x4" in
  M.add_constraint m
    (L.of_terms [ (x1, r 1 4); (x2, ri (-60)); (x3, r (-1) 25); (x4, ri 9) ])
    M.Le R.zero;
  M.add_constraint m
    (L.of_terms [ (x1, r 1 2); (x2, ri (-90)); (x3, r (-1) 50); (x4, ri 3) ])
    M.Le R.zero;
  M.add_constraint m (expr [ (x3, 1) ]) M.Le (ri 1);
  M.set_objective m M.Minimize
    (L.of_terms [ (x1, r (-3) 4); (x2, ri 150); (x3, r (-1) 50); (x4, ri 6) ]);
  let sol = solve_opt m in
  check_rat "beale optimum" (r (-1) 20) sol.objective

let test_lp_objective_constant () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 3);
  M.set_objective m M.Minimize (L.of_terms ~const:(ri 100) [ (x, ri 2) ]);
  let sol = solve_opt m in
  check_rat "objective includes constant" (ri 106) sol.objective

let test_lp_fractional_exact () =
  (* An optimum with awkward fractions must come out exact. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (L.of_terms [ (x, ri 7); (y, ri 3) ]) M.Ge (ri 5);
  M.add_constraint m (L.of_terms [ (x, ri 2); (y, ri 11) ]) M.Ge (ri 13);
  M.set_objective m M.Minimize (L.of_terms [ (x, ri 17); (y, ri 19) ]);
  let sol = solve_opt m in
  (* Vertex of the two constraints: x = 16/71, y = 81/71. *)
  check_rat "x" (r 16 71) sol.values.(x);
  check_rat "y" (r 81 71) sol.values.(y);
  check_rat "objective" (r 1811 71) sol.objective

let test_model_copy_isolated () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 1);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let m2 = M.copy m in
  M.add_upper_bound m2 x (ri 0);
  (match S.solve m2 with
   | S.Infeasible -> ()
   | _ -> Alcotest.fail "copy: expected infeasible");
  match S.solve m with
  | S.Optimal sol -> check_rat "original intact" R.one sol.objective
  | _ -> Alcotest.fail "original model broken by copy"

let test_model_validation () =
  let m = M.create () in
  let _x = M.add_var m ~name:"x" in
  Alcotest.check_raises "unknown var in constraint"
    (Invalid_argument "Model.add_constraint: unknown variable") (fun () ->
      M.add_constraint m (expr [ (5, 1) ]) M.Le R.one);
  Alcotest.check_raises "unknown var in objective"
    (Invalid_argument "Model.set_objective: unknown variable") (fun () ->
      M.set_objective m M.Minimize (expr [ (3, 1) ]))

let test_constraint_constant_folding () =
  (* x + 5 <= 7 must behave as x <= 2. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (L.of_terms ~const:(ri 5) [ (x, ri 1) ]) M.Le (ri 7);
  M.set_objective m M.Maximize (expr [ (x, 1) ]);
  let sol = solve_opt m in
  check_rat "x capped at 2" (ri 2) sol.values.(x)

(* --- Gomory cuts --- *)

let test_gomory_applicable () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 2); (y, 3) ]) M.Ge (ri 7);
  M.set_objective m M.Minimize (expr [ (x, 1); (y, 1) ]);
  Alcotest.(check bool) "pure integer" true (Lp.Gomory.applicable m ~integer:[ x; y ]);
  Alcotest.(check bool) "not all vars integer" false
    (Lp.Gomory.applicable m ~integer:[ x ]);
  let m2 = M.create () in
  let z = M.add_var m2 ~name:"z" in
  M.add_constraint m2 (L.of_terms [ (z, r 1 2) ]) M.Ge R.one;
  M.set_objective m2 M.Minimize (expr [ (z, 1) ]);
  Alcotest.(check bool) "fractional coefficient" false
    (Lp.Gomory.applicable m2 ~integer:[ z ])

let test_gomory_closes_simple_gap () =
  (* min x s.t. 2x >= 3, x integer: LP bound 3/2, integer optimum 2.
     One cut round must raise the relaxation to exactly 2. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 2) ]) M.Ge (ri 3);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let cut_model, ncuts = Lp.Gomory.strengthen ~rounds:1 m ~integer:[ x ] in
  Alcotest.(check bool) "at least one cut" true (ncuts >= 1);
  (match S.solve cut_model with
   | S.Optimal sol -> check_rat "bound closed to 2" (ri 2) sol.objective
   | _ -> Alcotest.fail "cut model must stay solvable");
  (* Cuts never exclude integer points: x = 2 stays feasible. *)
  Alcotest.(check bool) "x=2 feasible" true (M.check_feasible cut_model [| ri 2 |])

let test_gomory_inapplicable_unchanged () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (L.of_terms [ (x, r 1 2) ]) M.Ge R.one;
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let m', ncuts = Lp.Gomory.strengthen m ~integer:[ x ] in
  Alcotest.(check int) "no cuts" 0 ncuts;
  Alcotest.(check int) "same constraint count" (M.num_constraints m)
    (M.num_constraints m')

let test_solve_detailed_exposes_tableau () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, 1) ]) M.Le (ri 4);
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 1);
  M.set_objective m M.Maximize (expr [ (x, 2); (y, 3) ]);
  match S.solve_detailed m with
  | None -> Alcotest.fail "solvable model"
  | Some d ->
    Alcotest.(check int) "one basis entry per row" 2 (Array.length d.S.basis);
    Alcotest.(check int) "oriented rows match" 2 (Array.length d.S.oriented_rows);
    (* The recorded solution matches a fresh solve. *)
    (match S.solve m with
     | S.Optimal sol ->
       check_rat "objectives agree" sol.objective d.S.solution.objective
     | _ -> Alcotest.fail "solvable")

(* --- qcheck properties --- *)

(* Random LPs of the covering form: minimize c.x s.t. A x >= b with
   positive data — always feasible and bounded, so the simplex must
   return a feasible optimum. *)
let covering_gen =
  QCheck2.Gen.(
    let small = int_range 1 9 in
    pair
      (pair (int_range 1 4) (int_range 1 4))
      (pair (list_size (return 16) small) (list_size (return 4) small)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let build_covering ((nv, nc), (coeffs, rhs)) =
  let m = M.create () in
  let vars = Array.init nv (fun i -> M.add_var m ~name:(Printf.sprintf "v%d" i)) in
  let coeff = Array.of_list coeffs in
  let rhs = Array.of_list rhs in
  for c = 0 to nc - 1 do
    let terms =
      Array.to_list (Array.mapi (fun i v -> (v, ri coeff.(((c * nv) + i) mod 16))) vars)
    in
    M.add_constraint m (L.of_terms terms) M.Ge (ri rhs.(c mod 4))
  done;
  M.set_objective m M.Minimize
    (L.of_terms (Array.to_list (Array.mapi (fun i v -> (v, ri (1 + (i mod 3)))) vars)));
  m

let props =
  [ prop "covering LPs solve to a feasible optimum" covering_gen (fun input ->
        let m = build_covering input in
        match S.solve m with
        | S.Optimal sol -> M.check_feasible m sol.values && R.sign sol.objective >= 0
        | S.Infeasible | S.Unbounded -> false);
    prop "optimal no worse than a generous feasible point" covering_gen
      (fun input ->
        let m = build_covering input in
        match S.solve m with
        | S.Optimal sol ->
          let point = Array.make (M.num_vars m) (ri 9) in
          (not (M.check_feasible m point))
          || R.compare sol.objective (L.eval (snd (M.objective m)) point) <= 0
        | _ -> false);
    prop "duplicated constraints do not change the optimum" covering_gen
      (fun input ->
        let m1 = build_covering input in
        let m2 = build_covering input in
        List.iter
          (fun { M.expr; cmp; rhs; _ } -> M.add_constraint m2 expr cmp rhs)
          (M.constraints m1);
        match (S.solve m1, S.solve m2) with
        | S.Optimal a, S.Optimal b -> R.equal a.objective b.objective
        | _ -> false) ]

let suite =
  ( "lp",
    [ Alcotest.test_case "linexpr normalization" `Quick test_linexpr_normalization;
      Alcotest.test_case "linexpr algebra" `Quick test_linexpr_algebra;
      Alcotest.test_case "linexpr eval" `Quick test_linexpr_eval;
      Alcotest.test_case "max basic" `Quick test_lp_max_basic;
      Alcotest.test_case "min cover" `Quick test_lp_min_cover;
      Alcotest.test_case "equality constraint" `Quick test_lp_equality;
      Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
      Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
      Alcotest.test_case "no constraints, bounded" `Quick test_lp_no_constraints_bounded;
      Alcotest.test_case "negative rhs reorientation" `Quick test_lp_negative_rhs;
      Alcotest.test_case "degenerate (Beale)" `Quick test_lp_degenerate;
      Alcotest.test_case "objective constant" `Quick test_lp_objective_constant;
      Alcotest.test_case "fractional exact optimum" `Quick test_lp_fractional_exact;
      Alcotest.test_case "model copy isolation" `Quick test_model_copy_isolated;
      Alcotest.test_case "model validation" `Quick test_model_validation;
      Alcotest.test_case "constraint constant folding" `Quick
        test_constraint_constant_folding;
      Alcotest.test_case "gomory applicable" `Quick test_gomory_applicable;
      Alcotest.test_case "gomory closes simple gap" `Quick test_gomory_closes_simple_gap;
      Alcotest.test_case "gomory inapplicable unchanged" `Quick
        test_gomory_inapplicable_unchanged;
      Alcotest.test_case "solve_detailed tableau" `Quick
        test_solve_detailed_exposes_tableau ]
    @ props )
