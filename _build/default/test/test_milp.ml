(* Tests for the branch-and-bound MILP solver: hand-checked integer
   programs, a brute-force enumeration oracle on random small MIPs,
   limit behaviour, and strategy/branching equivalence. *)

module R = Numeric.Rat
module B = Numeric.Bigint
module L = Lp.Linexpr
module M = Lp.Model
module Solver = Milp.Solver

let ri = R.of_int

let expr terms = L.of_terms (List.map (fun (v, n) -> (v, ri n)) terms)

let check_rat msg expected actual =
  Alcotest.(check string) msg (R.to_string expected) (R.to_string actual)

let solve ?time_limit ?node_limit ?strategy ?branching ?(integral_objective = false) m
    ~integer =
  Solver.solve ?time_limit ?node_limit ?strategy ?branching ~integral_objective m
    ~integer

let get_solution outcome =
  match outcome.Solver.solution with
  | Some s -> s
  | None -> Alcotest.fail "expected a solution"

(* --- hand-checked MIPs --- *)

(* max x + y, 2x + y <= 5, x + 3y <= 6, integers -> LP opt at (1.8, 1.4);
   integer optimum (2, 1) with value 3. *)
let test_basic_branching () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 2); (y, 1) ]) M.Le (ri 5);
  M.add_constraint m (expr [ (x, 1); (y, 3) ]) M.Le (ri 6);
  M.set_objective m M.Maximize (expr [ (x, 1); (y, 1) ]);
  let outcome = solve m ~integer:[ x; y ] in
  Alcotest.(check bool) "optimal" true (outcome.Solver.status = Solver.Optimal);
  let sol = get_solution outcome in
  check_rat "objective" (ri 3) sol.Solver.objective

(* Knapsack-flavoured: min 5x + 4y s.t. 3x + 2y >= 7 -> LP (0, 3.5) = 14;
   integer candidates: y=4 -> 16, x=1,y=2 -> 13 (3+4=7 ok). Optimum 13. *)
let test_min_cover_integer () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 3); (y, 2) ]) M.Ge (ri 7);
  M.set_objective m M.Minimize (expr [ (x, 5); (y, 4) ]);
  let outcome = solve m ~integer:[ x; y ] in
  let sol = get_solution outcome in
  check_rat "objective" (ri 13) sol.Solver.objective;
  check_rat "x" R.one sol.Solver.values.(x);
  check_rat "y" (ri 2) sol.Solver.values.(y)

let test_already_integral_relaxation () =
  (* LP optimum is integral: should solve in a single node. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 4);
  M.set_objective m M.Minimize (expr [ (x, 3) ]);
  let outcome = solve m ~integer:[ x ] in
  Alcotest.(check int) "single node" 1 outcome.Solver.nodes;
  check_rat "objective" (ri 12) (get_solution outcome).Solver.objective

let test_mixed_integer () =
  (* Only x integral: min x + y s.t. x + y >= 5/2, x >= 1/2 continuous y.
     With x integer >= 1? x can be 1, y = 3/2 -> 5/2. Or x=0 infeasible
     (x >= 1/2 forces x >= 1 when integral). Optimum 5/2. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 2); (y, 2) ]) M.Ge (ri 5);
  M.add_constraint m (expr [ (x, 2) ]) M.Ge (ri 1);
  M.set_objective m M.Minimize (expr [ (x, 1); (y, 1) ]);
  let outcome = solve m ~integer:[ x ] in
  let sol = get_solution outcome in
  check_rat "objective" (R.of_ints 5 2) sol.Solver.objective;
  Alcotest.(check bool) "x integral" true (R.is_integer sol.Solver.values.(x))

let test_infeasible_integer () =
  (* 1/3 <= x <= 2/3 has no integer point. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 3) ]) M.Ge (ri 1);
  M.add_constraint m (expr [ (x, 3) ]) M.Le (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let outcome = solve m ~integer:[ x ] in
  Alcotest.(check bool) "infeasible" true (outcome.Solver.status = Solver.Infeasible)

let test_lp_infeasible_root () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Le (ri 1);
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let outcome = solve m ~integer:[ x ] in
  Alcotest.(check bool) "infeasible" true (outcome.Solver.status = Solver.Infeasible)

let test_unbounded_root () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.set_objective m M.Maximize (expr [ (x, 1) ]);
  let outcome = solve m ~integer:[ x ] in
  Alcotest.(check bool) "unbounded" true (outcome.Solver.status = Solver.Unbounded)

let test_node_limit () =
  (* A MIP needing several nodes, capped at 1 node: status Feasible or
     Unknown, never Optimal. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 2); (y, 3) ]) M.Ge (ri 7);
  M.set_objective m M.Minimize (expr [ (x, 3); (y, 4) ]);
  let outcome = solve ~node_limit:1 m ~integer:[ x; y ] in
  Alcotest.(check bool) "not proven optimal" true
    (outcome.Solver.status <> Solver.Optimal);
  Alcotest.(check bool) "bound reported" true (outcome.Solver.best_bound <> None)

let test_time_limit_zero () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 2) ]) M.Ge (ri 3);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let outcome = solve ~time_limit:(-1.0) m ~integer:[ x ] in
  (* The budget is already exhausted before the first node. *)
  Alcotest.(check bool) "unknown" true (outcome.Solver.status = Solver.Unknown);
  Alcotest.(check int) "no nodes" 0 outcome.Solver.nodes

let test_integral_objective_strengthening () =
  (* min 2x + 2y s.t. 2x + 2y >= 5: LP bound 5, integer optimum 6.
     Both settings must agree on the optimum. *)
  let build () =
    let m = M.create () in
    let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
    M.add_constraint m (expr [ (x, 2); (y, 2) ]) M.Ge (ri 5);
    M.set_objective m M.Minimize (expr [ (x, 2); (y, 2) ]);
    (m, [ x; y ])
  in
  let m1, iv1 = build () in
  let plain = solve m1 ~integer:iv1 in
  let m2, iv2 = build () in
  let strengthened = solve ~integral_objective:true m2 ~integer:iv2 in
  check_rat "same optimum" (get_solution plain).Solver.objective
    (get_solution strengthened).Solver.objective;
  Alcotest.(check bool) "strengthening cannot need more nodes" true
    (strengthened.Solver.nodes <= plain.Solver.nodes)

let test_warm_start () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 3); (y, 2) ]) M.Ge (ri 7);
  M.set_objective m M.Minimize (expr [ (x, 5); (y, 4) ]);
  (* A feasible integer point: x = 3, y = 0, objective 15. *)
  let outcome =
    Solver.solve ~warm_start:[| ri 3; ri 0 |] m ~integer:[ x; y ]
  in
  check_rat "still finds the optimum" (ri 13) (get_solution outcome).Solver.objective;
  (* With a zero node budget the warm start is returned as incumbent. *)
  let capped =
    Solver.solve ~node_limit:0 ~warm_start:[| ri 3; ri 0 |] m ~integer:[ x; y ]
  in
  Alcotest.(check bool) "feasible status" true (capped.Solver.status = Solver.Feasible);
  check_rat "incumbent is the warm point" (ri 15)
    (get_solution capped).Solver.objective

let test_warm_start_rejected () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  Alcotest.check_raises "infeasible warm start"
    (Invalid_argument "Milp.Solver.solve: warm start is not a feasible integer point")
    (fun () -> ignore (Solver.solve ~warm_start:[| ri 1 |] m ~integer:[ x ]));
  Alcotest.check_raises "fractional warm start"
    (Invalid_argument "Milp.Solver.solve: warm start is not a feasible integer point")
    (fun () ->
      ignore (Solver.solve ~warm_start:[| R.of_ints 5 2 |] m ~integer:[ x ]))

let test_priority_groups_same_optimum () =
  let build () =
    let m = M.create () in
    let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
    M.add_constraint m (expr [ (x, 3); (y, 5) ]) M.Ge (ri 11);
    M.set_objective m M.Minimize (expr [ (x, 4); (y, 7) ]);
    (m, x, y)
  in
  let m1, x1, y1 = build () in
  let plain = Solver.solve m1 ~integer:[ x1; y1 ] in
  let m2, x2, y2 = build () in
  let prioritized = Solver.solve ~priority:[ [ y2 ]; [ x2 ] ] m2 ~integer:[ x2; y2 ] in
  check_rat "same optimum" (get_solution plain).Solver.objective
    (get_solution prioritized).Solver.objective

let test_cut_rounds_inapplicable_is_noop () =
  (* A model with a fractional coefficient is not pure-integer: cut
     generation must be skipped and the answer unchanged. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (L.of_terms [ (x, R.of_ints 3 2) ]) M.Ge (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  Alcotest.(check bool) "not applicable" false (Lp.Gomory.applicable m ~integer:[ x ]);
  let plain = Solver.solve m ~integer:[ x ] in
  let with_cuts = Solver.solve ~cut_rounds:3 m ~integer:[ x ] in
  check_rat "same optimum" (get_solution plain).Solver.objective
    (get_solution with_cuts).Solver.objective

let test_gap () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 2);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  let outcome = solve m ~integer:[ x ] in
  match Solver.gap outcome with
  | Some g -> Alcotest.(check (float 1e-9)) "zero gap at optimality" 0.0 g
  | None -> Alcotest.fail "gap should be known"

(* --- brute force oracle --- *)

(* Enumerate x in [0..ub]^n for a covering MIP and compare. *)
let brute_force_cover ~costs ~rows ~rhs ~ub =
  let n = Array.length costs in
  let x = Array.make n 0 in
  let best = ref None in
  let feasible () =
    List.for_all2
      (fun row b ->
        let lhs = ref 0 in
        Array.iteri (fun i c -> lhs := !lhs + (c * x.(i))) row;
        !lhs >= b)
      rows rhs
  in
  let rec go i =
    if i = n then begin
      if feasible () then begin
        let cost = ref 0 in
        Array.iteri (fun i c -> cost := !cost + (c * x.(i))) costs;
        match !best with
        | Some b when b <= !cost -> ()
        | _ -> best := Some !cost
      end
    end
    else
      for v = 0 to ub do
        x.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  !best

let cover_mip_gen =
  QCheck2.Gen.(
    let coeff = int_range 0 4 in
    let cost = int_range 1 9 in
    pair
      (pair (int_range 1 3) (int_range 1 3))
      (pair (list_size (return 9) coeff) (pair (list_size (return 3) cost) (list_size (return 3) (int_range 1 12)))))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let build_cover_mip ((nv, nc), (coeffs, (costs, rhs))) =
  let coeffs = Array.of_list coeffs and costs = Array.of_list costs in
  let rhs_all = Array.of_list rhs in
  let costs = Array.sub costs 0 nv in
  let rows =
    List.init nc (fun c -> Array.init nv (fun i -> coeffs.(((c * 3) + i) mod 9)))
  in
  (* Keep rows satisfiable within the brute-force box: a row of all
     zeros with positive rhs is infeasible; the solver must agree. *)
  let rhs = List.init nc (fun c -> rhs_all.(c)) in
  let m = M.create () in
  let vars = Array.init nv (fun i -> M.add_var m ~name:(Printf.sprintf "x%d" i)) in
  List.iter2
    (fun row b ->
      M.add_constraint m
        (L.of_terms (Array.to_list (Array.mapi (fun i c -> (vars.(i), ri c)) row)))
        M.Ge (ri b))
    rows rhs;
  (* The brute-force box is implied: x_i <= 12 suffices since rhs <= 12
     and any positive coefficient is >= 1; add it to the model so both
     searches range over the same space. *)
  Array.iter (fun v -> M.add_upper_bound m v (ri 12)) vars;
  M.set_objective m M.Minimize
    (L.of_terms (Array.to_list (Array.mapi (fun i v -> (v, ri costs.(i))) vars)));
  (m, Array.to_list vars, costs, rows, rhs)

let props =
  [ prop "matches brute force on random covering MIPs" cover_mip_gen (fun input ->
        let m, integer, costs, rows, rhs = build_cover_mip input in
        let outcome = solve m ~integer in
        let brute = brute_force_cover ~costs ~rows ~rhs ~ub:12 in
        match (outcome.Solver.status, brute) with
        | Solver.Optimal, Some best ->
          R.equal (get_solution outcome).Solver.objective (ri best)
        | Solver.Infeasible, None -> true
        | _ -> false);
    prop "strategies agree on the optimum" cover_mip_gen (fun input ->
        let m1, iv1, _, _, _ = build_cover_mip input in
        let m2, iv2, _, _, _ = build_cover_mip input in
        let a = solve ~strategy:Solver.Best_bound m1 ~integer:iv1 in
        let b = solve ~strategy:Solver.Depth_first m2 ~integer:iv2 in
        match (a.Solver.solution, b.Solver.solution) with
        | Some sa, Some sb -> R.equal sa.Solver.objective sb.Solver.objective
        | None, None -> a.Solver.status = b.Solver.status
        | _ -> false);
    prop "engines agree on the optimum" cover_mip_gen (fun input ->
        let m1, iv1, _, _, _ = build_cover_mip input in
        let m2, iv2, _, _, _ = build_cover_mip input in
        let a = Solver.solve ~engine:Solver.Bounds m1 ~integer:iv1 in
        let b = Solver.solve ~engine:Solver.Rows m2 ~integer:iv2 in
        (match (a.Solver.solution, b.Solver.solution) with
         | Some sa, Some sb -> R.equal sa.Solver.objective sb.Solver.objective
         | None, None -> a.Solver.status = b.Solver.status
         | _ -> false));
    prop "branching rules agree on the optimum" cover_mip_gen (fun input ->
        let m1, iv1, _, _, _ = build_cover_mip input in
        let m2, iv2, _, _, _ = build_cover_mip input in
        let a = solve ~branching:Solver.Most_fractional m1 ~integer:iv1 in
        let b = solve ~branching:Solver.First_fractional m2 ~integer:iv2 in
        match (a.Solver.solution, b.Solver.solution) with
        | Some sa, Some sb -> R.equal sa.Solver.objective sb.Solver.objective
        | None, None -> a.Solver.status = b.Solver.status
        | _ -> false);
    prop "solution values are integral and feasible" cover_mip_gen (fun input ->
        let m, integer, _, _, _ = build_cover_mip input in
        let outcome = solve m ~integer in
        match outcome.Solver.solution with
        | None -> outcome.Solver.status = Solver.Infeasible
        | Some sol ->
          List.for_all (fun v -> R.is_integer sol.Solver.values.(v)) integer
          && M.check_feasible m sol.Solver.values) ]

let suite =
  ( "milp",
    [ Alcotest.test_case "basic branching" `Quick test_basic_branching;
      Alcotest.test_case "min cover integer" `Quick test_min_cover_integer;
      Alcotest.test_case "integral relaxation, one node" `Quick
        test_already_integral_relaxation;
      Alcotest.test_case "mixed integer" `Quick test_mixed_integer;
      Alcotest.test_case "integer infeasible" `Quick test_infeasible_integer;
      Alcotest.test_case "LP-infeasible root" `Quick test_lp_infeasible_root;
      Alcotest.test_case "unbounded root" `Quick test_unbounded_root;
      Alcotest.test_case "node limit" `Quick test_node_limit;
      Alcotest.test_case "exhausted time budget" `Quick test_time_limit_zero;
      Alcotest.test_case "integral objective strengthening" `Quick
        test_integral_objective_strengthening;
      Alcotest.test_case "gap at optimality" `Quick test_gap;
      Alcotest.test_case "warm start" `Quick test_warm_start;
      Alcotest.test_case "warm start rejected" `Quick test_warm_start_rejected;
      Alcotest.test_case "priority groups" `Quick test_priority_groups_same_optimum;
      Alcotest.test_case "cuts skip non-pure-integer models" `Quick
        test_cut_rounds_inapplicable_is_noop ]
    @ props )
