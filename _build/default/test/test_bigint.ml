(* Unit and property tests for Numeric.Bigint.

   The qcheck properties use native [int] arithmetic as an oracle on
   ranges where it cannot overflow, plus targeted huge-value cases that
   exercise the multi-limb paths (Knuth division, carries, add-back). *)

module B = Numeric.Bigint

let b = B.of_int
let check_b msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

(* ----- targeted unit tests ----- *)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int (b n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31;
      (1 lsl 40) + 12345; max_int; min_int; min_int + 1; max_int - 1 ]

let test_to_string_simple () =
  check_b "zero" "0" B.zero;
  check_b "one" "1" B.one;
  check_b "neg" "-17" (b (-17));
  check_b "max_int" (string_of_int max_int) (b max_int);
  check_b "min_int" (string_of_int min_int) (b min_int)

let test_of_string () =
  check_b "plain" "12345" (B.of_string "12345");
  check_b "signed+" "12345" (B.of_string "+12345");
  check_b "signed-" "-12345" (B.of_string "-12345");
  check_b "big"
    "123456789012345678901234567890"
    (B.of_string "123456789012345678901234567890");
  check_b "leading zeros" "7" (B.of_string "0007");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "junk" (Invalid_argument "Bigint.of_string: bad digit")
    (fun () -> ignore (B.of_string "12x4"))

let test_string_roundtrip_big () =
  let cases =
    [ "999999999999999999999999999999999999";
      "-170141183460469231731687303715884105728";
      "1000000000000000000000000000000000000000000001" ]
  in
  List.iter (fun s -> check_b s s (B.of_string s)) cases

let test_add_sub_big () =
  let a = B.of_string "99999999999999999999999999999999" in
  check_b "a+1" "100000000000000000000000000000000" (B.add a B.one);
  check_b "a-a" "0" (B.sub a a);
  check_b "a + -a" "0" (B.add a (B.neg a));
  check_b "carry chain" "1073741824" (B.add (b ((1 lsl 30) - 1)) B.one)

let test_mul_big () =
  let a = B.of_string "123456789123456789" in
  check_b "square" "15241578780673678515622620750190521" (B.mul a a);
  check_b "times zero" "0" (B.mul a B.zero);
  check_b "sign" "-15241578780673678515622620750190521" (B.mul a (B.neg a))

let test_divmod_exact () =
  let a = B.of_string "15241578780673678515622620750190521" in
  let d = B.of_string "123456789123456789" in
  let q, r = B.divmod a d in
  check_b "exact quotient" "123456789123456789" q;
  check_b "exact remainder" "0" r

let test_divmod_truncation_signs () =
  (* Truncated division mirrors Stdlib semantics. *)
  let cases = [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3) ] in
  List.iter
    (fun (x, y) ->
      let q, r = B.divmod (b x) (b y) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" x y) (x / y) (B.to_int_exn q);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" x y) (x mod y) (B.to_int_exn r))
    cases

let test_div_by_zero () =
  Alcotest.check_raises "divmod 0" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_fdiv_cdiv () =
  let check name f x y expected =
    Alcotest.(check int) name expected (B.to_int_exn (f (b x) (b y)))
  in
  check "fdiv 7 2" B.fdiv 7 2 3;
  check "fdiv -7 2" B.fdiv (-7) 2 (-4);
  check "fdiv 7 -2" B.fdiv 7 (-2) (-4);
  check "fdiv -7 -2" B.fdiv (-7) (-2) 3;
  check "cdiv 7 2" B.cdiv 7 2 4;
  check "cdiv -7 2" B.cdiv (-7) 2 (-3);
  check "cdiv 7 -2" B.cdiv 7 (-2) (-3);
  check "cdiv -7 -2" B.cdiv (-7) (-2) 4;
  check "cdiv exact" B.cdiv 8 2 4;
  check "fdiv exact" B.fdiv 8 2 4

let test_gcd () =
  let check name x y expected =
    Alcotest.(check int) name expected (B.to_int_exn (B.gcd (b x) (b y)))
  in
  check "gcd 12 18" 12 18 6;
  check "gcd -12 18" (-12) 18 6;
  check "gcd 0 5" 0 5 5;
  check "gcd 5 0" 5 0 5;
  check "gcd 0 0" 0 0 0;
  check "gcd coprime" 17 31 1

let test_pow () =
  check_b "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
  check_b "x^0" "1" (B.pow (b 123) 0);
  check_b "0^0" "1" (B.pow B.zero 0);
  check_b "(-2)^3" "-8" (B.pow (b (-2)) 3);
  Alcotest.check_raises "neg exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_shift_left () =
  check_b "1 << 100" (B.to_string (B.pow B.two 100)) (B.shift_left B.one 100);
  check_b "5 << 0" "5" (B.shift_left (b 5) 0);
  check_b "-3 << 4" "-48" (B.shift_left (b (-3)) 4)

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 2" 2 (B.num_bits B.two);
  Alcotest.(check int) "bits 2^30" 31 (B.num_bits (b (1 lsl 30)));
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.pow B.two 100))

let test_compare () =
  Alcotest.(check bool) "1 < 2" true B.(one < two);
  Alcotest.(check bool) "-1 < 1" true B.(minus_one < one);
  Alcotest.(check bool) "-2 < -1" true B.(b (-2) < minus_one);
  Alcotest.(check bool) "multi-limb" true
    B.(of_string "99999999999999999999" < of_string "100000000000000000000");
  Alcotest.(check bool) "neg multi-limb" true
    B.(of_string "-100000000000000000000" < of_string "-99999999999999999999");
  Alcotest.(check int) "min" 1 (B.to_int_exn (B.min (b 3) (b 1)));
  Alcotest.(check int) "max" 3 (B.to_int_exn (B.max (b 3) (b 1)))

let test_to_float () =
  Alcotest.(check (float 1e-6)) "42" 42.0 (B.to_float (b 42));
  Alcotest.(check (float 1e15)) "2^100" (2. ** 100.) (B.to_float (B.pow B.two 100));
  Alcotest.(check (float 1e-6)) "neg" (-7.0) (B.to_float (b (-7)))

let test_to_int_overflow () =
  Alcotest.(check (option int)) "2^100 no fit" None (B.to_int (B.pow B.two 100));
  Alcotest.(check (option int)) "max_int+1 no fit" None
    (B.to_int (B.succ (b max_int)));
  Alcotest.(check (option int)) "min_int fits" (Some min_int) (B.to_int (b min_int));
  Alcotest.(check (option int)) "min_int-1 no fit" None (B.to_int (B.pred (b min_int)))

(* Knuth division stress: exercises qhat correction and add-back paths. *)
let test_division_stress () =
  (* Dividends/divisors crafted near limb boundaries. *)
  let near = B.pred (B.pow B.two 60) in
  let pairs =
    [ (B.pow B.two 120, B.pred (B.pow B.two 60));
      (B.pred (B.pow B.two 90), B.succ (B.pow B.two 30));
      (B.mul near near, near);
      (B.of_string "340282366920938463463374607431768211455", B.of_string "18446744073709551616");
      (B.pow (b 10) 50, B.pow (b 10) 25) ]
  in
  List.iter
    (fun (a, d) ->
      let q, r = B.divmod a d in
      Alcotest.(check bool) "recompose" true B.(equal a (add (mul q d) r));
      Alcotest.(check bool) "rem range" true
        (Stdlib.( < ) (B.compare (B.abs r) (B.abs d)) 0
        && (B.is_zero r || B.sign r = B.sign a)))
    pairs

(* ----- qcheck properties ----- *)

let small_int = QCheck2.Gen.int_range (-1_000_000) 1_000_000

(* Generator for bigints of up to ~6 limbs, built from int chunks. *)
let big_gen =
  QCheck2.Gen.(
    map
      (fun (parts, sign) ->
        let v =
          List.fold_left
            (fun acc p -> B.add (B.mul acc (B.of_int (1 lsl 30))) (B.of_int p))
            B.zero parts
        in
        if sign then B.neg v else v)
      (pair (list_size (int_range 1 6) (int_bound ((1 lsl 30) - 1))) bool))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let props =
  [ prop "add matches int oracle" QCheck2.Gen.(pair small_int small_int) (fun (x, y) ->
        B.to_int_exn (B.add (b x) (b y)) = x + y);
    prop "mul matches int oracle" QCheck2.Gen.(pair small_int small_int) (fun (x, y) ->
        B.to_int_exn (B.mul (b x) (b y)) = x * y);
    prop "divmod matches int oracle"
      QCheck2.Gen.(pair small_int (oneof [ int_range 1 10000; int_range (-10000) (-1) ]))
      (fun (x, y) ->
        let q, r = B.divmod (b x) (b y) in
        B.to_int_exn q = x / y && B.to_int_exn r = x mod y);
    prop "string roundtrip" big_gen (fun x -> B.equal x (B.of_string (B.to_string x)));
    prop "add commutative" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal (B.add x y) (B.add y x));
    prop "add associative" QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (x, y, z) -> B.equal (B.add (B.add x y) z) (B.add x (B.add y z)));
    prop "mul commutative" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal (B.mul x y) (B.mul y x));
    prop "mul associative" QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (x, y, z) -> B.equal (B.mul (B.mul x y) z) (B.mul x (B.mul y z)));
    prop "distributivity" QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (x, y, z) ->
        B.equal (B.mul x (B.add y z)) (B.add (B.mul x y) (B.mul x z)));
    prop "sub inverse of add" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal (B.sub (B.add x y) y) x);
    prop "divmod invariant" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        if B.is_zero y then true
        else begin
          let q, r = B.divmod x y in
          B.equal x (B.add (B.mul q y) r)
          && B.compare (B.abs r) (B.abs y) < 0
          && (B.is_zero r || B.sign r = B.sign x)
        end);
    prop "gcd divides both" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        let g = B.gcd x y in
        if B.is_zero g then B.is_zero x && B.is_zero y
        else B.is_zero (B.rem x g) && B.is_zero (B.rem y g));
    prop "fdiv <= cdiv" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        if B.is_zero y then true else B.compare (B.fdiv x y) (B.cdiv x y) <= 0);
    prop "compare antisymmetric" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.compare x y = -B.compare y x);
    prop "neg involutive" big_gen (fun x -> B.equal x (B.neg (B.neg x)));
    prop "abs non-negative" big_gen (fun x -> B.sign (B.abs x) >= 0);
    prop "num_bits bound" big_gen (fun x ->
        if B.is_zero x then B.num_bits x = 0
        else begin
          let bits = B.num_bits x in
          let lo = B.pow B.two (bits - 1) and hi = B.pow B.two bits in
          B.compare (B.abs x) lo >= 0 && B.compare (B.abs x) hi < 0
        end) ]

let suite =
  ( "bigint",
    [ Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_int_roundtrip;
      Alcotest.test_case "to_string simple" `Quick test_to_string_simple;
      Alcotest.test_case "of_string" `Quick test_of_string;
      Alcotest.test_case "string roundtrip big" `Quick test_string_roundtrip_big;
      Alcotest.test_case "add/sub big" `Quick test_add_sub_big;
      Alcotest.test_case "mul big" `Quick test_mul_big;
      Alcotest.test_case "divmod exact" `Quick test_divmod_exact;
      Alcotest.test_case "divmod truncation signs" `Quick test_divmod_truncation_signs;
      Alcotest.test_case "division by zero" `Quick test_div_by_zero;
      Alcotest.test_case "fdiv/cdiv" `Quick test_fdiv_cdiv;
      Alcotest.test_case "gcd" `Quick test_gcd;
      Alcotest.test_case "pow" `Quick test_pow;
      Alcotest.test_case "shift_left" `Quick test_shift_left;
      Alcotest.test_case "num_bits" `Quick test_num_bits;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "to_float" `Quick test_to_float;
      Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
      Alcotest.test_case "knuth division stress" `Quick test_division_stress ]
    @ props )
