(* Tests for the § VIII-A instance generator: parameter ranges,
   mutation behaviour, determinism, and DAG well-formedness. *)

module G = Cloudsim.Generator
module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem
module P = Numeric.Prng

let gp =
  { G.num_graphs = 20; min_tasks = 5; max_tasks = 8; mutation_pct = 0.5 }

let cp =
  { G.num_types = 5; min_cost = 1; max_cost = 100; min_throughput = 10;
    max_throughput = 100 }

let test_platform_ranges () =
  let rng = P.create 1 in
  for _ = 1 to 50 do
    let pf = G.platform ~rng cp in
    Alcotest.(check int) "Q" 5 (PF.num_types pf);
    for q = 0 to 4 do
      let c = PF.cost pf q and r = PF.throughput pf q in
      Alcotest.(check bool) "cost range" true (c >= 1 && c <= 100);
      Alcotest.(check bool) "throughput range" true (r >= 10 && r <= 100)
    done
  done

let test_problem_shape () =
  let rng = P.create 2 in
  for _ = 1 to 20 do
    let p = G.problem ~rng gp cp in
    Alcotest.(check int) "J" 20 (PB.num_recipes p);
    Alcotest.(check int) "Q" 5 (PB.num_types p);
    Array.iter
      (fun g ->
        let n = TG.num_tasks g in
        Alcotest.(check bool) "task count range" true (n >= 5 && n <= 8))
      (PB.recipes p)
  done

let test_determinism () =
  let p1 = G.problem ~rng:(P.create 7) gp cp in
  let p2 = G.problem ~rng:(P.create 7) gp cp in
  Alcotest.(check bool) "same platform" true
    (PF.machines (PB.platform p1) = PF.machines (PB.platform p2));
  Array.iteri
    (fun j g1 ->
      let g2 = PB.recipe p2 j in
      Alcotest.(check (array int))
        (Printf.sprintf "recipe %d types" j)
        (Array.init (TG.num_tasks g1) (TG.type_of g1))
        (Array.init (TG.num_tasks g2) (TG.type_of g2)))
    (PB.recipes p1)

let test_alternatives_related_to_initial () =
  (* With a low mutation percentage and fixed task count, alternative
     type multisets must stay close to the initial recipe's. *)
  let gp_low = { gp with G.mutation_pct = 0.1; min_tasks = 20; max_tasks = 20 } in
  let rng = P.create 3 in
  let p = G.problem ~rng gp_low cp in
  let initial = PB.type_counts p 0 in
  for j = 1 to PB.num_recipes p - 1 do
    let counts = PB.type_counts p j in
    let distance =
      Array.fold_left ( + ) 0 (Array.mapi (fun q c -> abs (c - initial.(q))) counts)
    in
    (* 10% mutation of 20 tasks = 2 retyped tasks, each moving two
       per-type counters. *)
    Alcotest.(check bool)
      (Printf.sprintf "recipe %d close to initial (distance %d)" j distance)
      true (distance <= 4)
  done

let test_zero_mutation_copies () =
  (* With 0% mutation and fixed size, alternatives are exact copies of
     the initial recipe's types. *)
  let rng = P.create 4 in
  let gp0 = { gp with G.mutation_pct = 0.0; min_tasks = 8; max_tasks = 8 } in
  let p = G.problem ~rng gp0 cp in
  let initial = Array.init 8 (TG.type_of (PB.recipe p 0)) in
  for j = 1 to PB.num_recipes p - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "recipe %d identical at 0%%" j)
      initial
      (Array.init 8 (TG.type_of (PB.recipe p j)))
  done

let test_random_dag_wellformed () =
  let rng = P.create 5 in
  for _ = 1 to 50 do
    let n = P.int_in_range rng ~lo:1 ~hi:30 in
    let types = Array.init n (fun _ -> P.int rng 4) in
    let g = G.random_dag ~rng ~ntypes:4 ~types in
    (* Connected: only task 0 has no predecessor. *)
    Alcotest.(check (list int)) "single source" [ 0 ] (TG.sources g);
    (* Acyclicity is enforced by Task_graph.create; topo covers all. *)
    Alcotest.(check int) "topo complete" n (Array.length (TG.topo_order g))
  done

let test_validation () =
  let rng = P.create 6 in
  Alcotest.check_raises "bad mutation"
    (Invalid_argument "Generator: mutation_pct must be in [0, 1]") (fun () ->
      ignore (G.problem ~rng { gp with G.mutation_pct = 1.5 } cp));
  Alcotest.check_raises "bad tasks"
    (Invalid_argument "Generator: bad task count range") (fun () ->
      ignore (G.problem ~rng { gp with G.min_tasks = 9; max_tasks = 8 } cp));
  Alcotest.check_raises "bad cost" (Invalid_argument "Generator: bad cost range")
    (fun () -> ignore (G.platform ~rng { cp with G.min_cost = 0 }));
  Alcotest.check_raises "no graphs"
    (Invalid_argument "Generator: num_graphs must be positive") (fun () ->
      ignore (G.problem ~rng { gp with G.num_graphs = 0 } cp))

(* qcheck: generated instances are always solvable by every algorithm. *)
let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:20 ~name gen f)

let props =
  [ prop "generated instances are heuristic-solvable"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 60))
      (fun (seed, target) ->
        let rng = P.create seed in
        let small = { gp with G.num_graphs = 4 } in
        let p = G.problem ~rng small cp in
        let res = Rentcost.Heuristics.h1_best_graph p ~target in
        Rentcost.Allocation.feasible p ~target res.Rentcost.Heuristics.allocation) ]

let suite =
  ( "generator",
    [ Alcotest.test_case "platform ranges" `Quick test_platform_ranges;
      Alcotest.test_case "problem shape" `Quick test_problem_shape;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "alternatives close to initial" `Quick
        test_alternatives_related_to_initial;
      Alcotest.test_case "zero mutation copies" `Quick test_zero_mutation_copies;
      Alcotest.test_case "random DAG well-formed" `Quick test_random_dag_wellformed;
      Alcotest.test_case "validation" `Quick test_validation ]
    @ props )
