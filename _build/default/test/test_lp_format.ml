(* Tests for the LP-format reader/writer: hand-written files, error
   cases, and solve-equivalence round-trips on random models. *)

module R = Numeric.Rat
module L = Lp.Linexpr
module M = Lp.Model
module S = Lp.Simplex
module F = Lp.Lp_format

let ri = R.of_int

let expr terms = L.of_terms (List.map (fun (v, n) -> (v, ri n)) terms)

let sample_model () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m ~name:"cap" (expr [ (x, 2); (y, 1) ]) M.Le (ri 5);
  M.add_constraint m (expr [ (x, 1); (y, 3) ]) M.Ge (ri 3);
  M.set_objective m M.Maximize (expr [ (x, 1); (y, 1) ]);
  m

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_write_shape () =
  let s = F.to_string (sample_model ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [ "Maximize"; "Subject To"; "cap:"; "<= 5"; ">= 3"; "End" ]

let test_parse_hand_written () =
  let text =
    {|\ a comment
Minimize
 obj: 2 x + 3 y + 1
Subject To
 c1: x + y >= 4
 c2: x - y <= 2
End|}
  in
  let m = F.of_string text in
  Alcotest.(check int) "two vars" 2 (M.num_vars m);
  Alcotest.(check int) "two constraints" 2 (M.num_constraints m);
  match S.solve m with
  | S.Optimal sol ->
    (* optimum: push x up to its c2 limit: x - y <= 2, x + y >= 4 ->
       vertex (3, 1): 6 + 3 + 1 = 10; vertex (0, 4): 12 + 1 = 13;
       minimize -> best is (3, 1) = 10. *)
    Alcotest.(check string) "objective" "10" (R.to_string sol.objective)
  | _ -> Alcotest.fail "solvable"

let test_parse_fractions_extension () =
  let m = F.of_string "Minimize\nobj: 1/2 x\nSubject To\nc: 3/2 x >= 3\nEnd" in
  match S.solve m with
  | S.Optimal sol -> Alcotest.(check string) "objective" "1" (R.to_string sol.objective)
  | _ -> Alcotest.fail "solvable"

let test_parse_errors () =
  let fails text =
    match F.of_string text with
    | exception Failure _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "no sense" true (fails "Hello\nx >= 1");
  Alcotest.(check bool) "missing subject to" true (fails "Minimize\nobj: x\nx >= 1");
  Alcotest.(check bool) "vars on rhs" true
    (fails "Minimize\nobj: x\nSubject To\nc: x >= y\nEnd");
  Alcotest.(check bool) "nontrivial bound" true
    (fails "Minimize\nobj: x\nSubject To\nc: x >= 1\nBounds\nx <= 5\nEnd")

let test_roundtrip_sample () =
  let m = sample_model () in
  let m' = F.of_string (F.to_string m) in
  match (S.solve m, S.solve m') with
  | S.Optimal a, S.Optimal b ->
    Alcotest.(check string) "same optimum" (R.to_string a.objective)
      (R.to_string b.objective)
  | _ -> Alcotest.fail "both solvable"

(* Random-model roundtrip: writing then reading preserves the solved
   status and optimal objective. *)
let gen =
  QCheck2.Gen.(
    pair
      (pair (int_range 1 4) (int_range 1 4))
      (pair (list_size (return 16) (int_range (-5) 5))
         (pair (list_size (return 4) (int_range (-6) 6)) (list_size (return 4) bool))))

let build ((nvars, nrows), (coeffs, (rhs, senses))) =
  let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
  let senses = Array.of_list senses in
  let m = M.create () in
  let vars = Array.init nvars (fun i -> M.add_var m ~name:(Printf.sprintf "v%d" i)) in
  for r = 0 to nrows - 1 do
    let terms =
      Array.to_list
        (Array.mapi (fun i v -> (v, ri coeffs.(((r * nvars) + i) mod 16))) vars)
    in
    M.add_constraint m (L.of_terms terms)
      (if senses.(r mod 4) then M.Ge else M.Le)
      (ri rhs.(r mod 4))
  done;
  M.set_objective m M.Minimize
    (L.of_terms (Array.to_list (Array.mapi (fun i v -> (v, ri (1 + (i mod 3)))) vars)));
  m

let prop name g f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name g f)

let props =
  [ prop "roundtrip preserves solver outcome" gen (fun input ->
        let m = build input in
        let m' = F.of_string (F.to_string m) in
        match (S.solve m, S.solve m') with
        | S.Optimal a, S.Optimal b -> R.equal a.objective b.objective
        | S.Infeasible, S.Infeasible -> true
        | S.Unbounded, S.Unbounded -> true
        | _ -> false) ]

let suite =
  ( "lp_format",
    [ Alcotest.test_case "write shape" `Quick test_write_shape;
      Alcotest.test_case "parse hand-written" `Quick test_parse_hand_written;
      Alcotest.test_case "fraction extension" `Quick test_parse_fractions_extension;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample ]
    @ props )
