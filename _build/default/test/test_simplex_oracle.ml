(* Independent correctness oracle for the simplex: on random 2- and
   3-variable LPs, enumerate every basic point (intersection of n
   constraint/axis hyperplanes, solved by exact Gaussian elimination),
   keep the feasible ones, and compare the best vertex objective with
   the simplex result. The fundamental theorem of linear programming
   guarantees an optimal vertex exists whenever the LP is bounded and
   feasible. *)

module R = Numeric.Rat
module L = Lp.Linexpr
module M = Lp.Model
module S = Lp.Simplex

(* Solve the n x n system [a] x = [b] exactly; None when singular. *)
let solve_system a b =
  let n = Array.length b in
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let ok = ref true in
  for col = 0 to n - 1 do
    if !ok then begin
      (* partial pivot: any row with non-zero entry *)
      let pivot = ref (-1) in
      for row = col to n - 1 do
        if !pivot < 0 && not (R.is_zero m.(row).(col)) then pivot := row
      done;
      if !pivot < 0 then ok := false
      else begin
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp;
        let inv = R.inv m.(col).(col) in
        for j = col to n do
          m.(col).(j) <- R.mul inv m.(col).(j)
        done;
        for row = 0 to n - 1 do
          if row <> col && not (R.is_zero m.(row).(col)) then begin
            let f = m.(row).(col) in
            for j = col to n do
              m.(row).(j) <- R.sub m.(row).(j) (R.mul f m.(col).(j))
            done
          end
        done
      end
    end
  done;
  if !ok then Some (Array.init n (fun i -> m.(i).(n))) else None

(* All size-n subsets of [0..k-1]. *)
let rec subsets n lo k =
  if n = 0 then [ [] ]
  else if lo >= k then []
  else
    List.map (fun s -> lo :: s) (subsets (n - 1) (lo + 1) k)
    @ subsets n (lo + 1) k

(* Best vertex objective of: min/max c.x s.t. rows (a_i . x >= / <= b_i),
   x >= 0. Rows are (coeffs, cmp, rhs) with cmp in {`Ge, `Le}. *)
let best_vertex ~nvars ~rows ~objective ~maximize =
  (* Hyperplanes: one per row (a.x = b) plus one per axis (x_i = 0). *)
  let planes =
    List.map (fun (a, _, b) -> (a, b)) rows
    @ List.init nvars (fun i ->
          (Array.init nvars (fun j -> if i = j then R.one else R.zero), R.zero))
  in
  let planes = Array.of_list planes in
  let feasible x =
    Array.for_all (fun v -> R.sign v >= 0) x
    && List.for_all
         (fun (a, cmp, b) ->
           let lhs = ref R.zero in
           Array.iteri (fun i c -> lhs := R.add !lhs (R.mul c x.(i))) a;
           match cmp with
           | `Ge -> R.compare !lhs b >= 0
           | `Le -> R.compare !lhs b <= 0)
         rows
  in
  let best = ref None in
  List.iter
    (fun subset ->
      let a = Array.of_list (List.map (fun i -> fst planes.(i)) subset) in
      let b = Array.of_list (List.map (fun i -> snd planes.(i)) subset) in
      match solve_system a b with
      | None -> ()
      | Some x ->
        if feasible x then begin
          let obj = ref R.zero in
          Array.iteri (fun i c -> obj := R.add !obj (R.mul c x.(i))) objective;
          match !best with
          | Some cur
            when (maximize && R.compare cur !obj >= 0)
                 || ((not maximize) && R.compare cur !obj <= 0) -> ()
          | _ -> best := Some !obj
        end)
    (subsets nvars 0 (Array.length planes));
  !best

(* Random LP generator: coefficients in [-4, 4], rhs in [0, 12]. *)
let lp_gen =
  QCheck2.Gen.(
    let coeff = int_range (-4) 4 in
    pair
      (pair (int_range 2 3) (int_range 1 4))
      (pair (pair (list_size (return 12) coeff) (list_size (return 4) (int_range 0 12)))
         (pair (list_size (return 3) coeff) (pair (list_size (return 4) bool) bool))))

let build ((nvars, nrows), ((coeffs, rhs), (obj, (senses, maximize)))) =
  let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
  let obj = Array.of_list (List.filteri (fun i _ -> i < nvars) obj) in
  let senses = Array.of_list senses in
  let rows =
    List.init nrows (fun r ->
        ( Array.init nvars (fun i -> R.of_int coeffs.(((r * nvars) + i) mod 12)),
          (if senses.(r mod 4) then `Ge else `Le),
          R.of_int rhs.(r mod 4) ))
  in
  let objective = Array.map R.of_int obj in
  (nvars, rows, objective, maximize)

let to_model (nvars, rows, objective, maximize) =
  let m = M.create () in
  let vars = Array.init nvars (fun i -> M.add_var m ~name:(Printf.sprintf "x%d" i)) in
  List.iter
    (fun (a, cmp, b) ->
      let terms = Array.to_list (Array.mapi (fun i c -> (vars.(i), c)) a) in
      M.add_constraint m (L.of_terms terms)
        (match cmp with `Ge -> M.Ge | `Le -> M.Le)
        b)
    rows;
  M.set_objective m
    (if maximize then M.Maximize else M.Minimize)
    (L.of_terms (Array.to_list (Array.mapi (fun i c -> (vars.(i), c)) objective)));
  m

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:400 ~name gen f)

let props =
  [ prop "simplex optimum equals best feasible vertex" lp_gen (fun input ->
        let (nvars, rows, objective, maximize) as lp = build input in
        let m = to_model lp in
        match S.solve m with
        | S.Optimal sol ->
          (match best_vertex ~nvars ~rows ~objective ~maximize with
           | Some best -> R.equal sol.objective best
           | None -> false (* simplex found a point, oracle must too *))
        | S.Infeasible ->
          (* No vertex may be feasible... note the oracle only sees
             vertices; an infeasible LP has none. *)
          best_vertex ~nvars ~rows ~objective ~maximize = None
        | S.Unbounded ->
          (* Unbounded LPs are feasible: the oracle finds some vertex
             (possibly not optimal since no optimum exists). Check
             feasibility only. *)
          true);
    prop "simplex solution point is feasible and achieves its objective" lp_gen
      (fun input ->
        let lp = build input in
        let m = to_model lp in
        match S.solve m with
        | S.Optimal sol ->
          M.check_feasible m sol.values
          && R.equal sol.objective (L.eval (snd (M.objective m)) sol.values)
        | S.Infeasible | S.Unbounded -> true) ]

let suite = ("simplex_oracle", props)
