(* Tests for the knapsack DPs: hand cases, brute-force oracles, and the
   § V-A equivalence between the covering DP and the knapsack
   reduction. *)

module K = Knapsack

let item value weight = { K.value; weight }
let citem cost yield = { K.cost; yield }

(* --- unbounded_max --- *)

let test_unbounded_classic () =
  (* items (value,weight): (10,5) (40,4) (30,6) (50,3), capacity 10:
     best = 50 + 40 + ... weights 3+4=7, +3 no; 50+50? two of (50,3):
     weight 6 value 100, plus one more (50,3) -> 9, value 150. *)
  let items = [| item 10 5; item 40 4; item 30 6; item 50 3 |] in
  let { K.best; counts } = K.unbounded_max ~items ~capacity:10 in
  Alcotest.(check int) "best" 150 best;
  Alcotest.(check int) "three copies of item 3" 3 counts.(3)

let test_unbounded_zero_capacity () =
  let items = [| item 5 2 |] in
  let { K.best; counts } = K.unbounded_max ~items ~capacity:0 in
  Alcotest.(check int) "best 0" 0 best;
  Alcotest.(check int) "no items" 0 counts.(0)

let test_unbounded_no_items () =
  let { K.best; _ } = K.unbounded_max ~items:[||] ~capacity:10 in
  Alcotest.(check int) "best 0" 0 best

let test_unbounded_rejects_unbounded_instance () =
  Alcotest.check_raises "zero-weight positive value"
    (Invalid_argument "Knapsack.unbounded_max: unbounded instance") (fun () ->
      ignore (K.unbounded_max ~items:[| item 1 0 |] ~capacity:3));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Knapsack.unbounded_max: negative capacity") (fun () ->
      ignore (K.unbounded_max ~items:[| item 1 1 |] ~capacity:(-1)))

let test_unbounded_counts_consistent () =
  let items = [| item 7 3; item 9 4; item 2 1 |] in
  let { K.best; counts } = K.unbounded_max ~items ~capacity:17 in
  let value = ref 0 and weight = ref 0 in
  Array.iteri
    (fun i n ->
      value := !value + (n * items.(i).K.value);
      weight := !weight + (n * items.(i).K.weight))
    counts;
  Alcotest.(check int) "counts reach best" best !value;
  Alcotest.(check bool) "within capacity" true (!weight <= 17)

(* --- min_cost_cover --- *)

let test_cover_classic () =
  (* Table II as covering items: (10,10) (18,20) (25,30) (33,40). For a
     demand of 70 the cheapest fleet is P3+P4 = 58 (30+40 = 70). *)
  let items = [| citem 10 10; citem 18 20; citem 25 30; citem 33 40 |] in
  match K.min_cost_cover ~items ~demand:70 with
  | None -> Alcotest.fail "feasible"
  | Some { K.best; counts } ->
    Alcotest.(check int) "best" 58 best;
    let yield = ref 0 in
    Array.iteri (fun i n -> yield := !yield + (n * items.(i).K.yield)) counts;
    Alcotest.(check bool) "covers demand" true (!yield >= 70)

let test_cover_zero_demand () =
  match K.min_cost_cover ~items:[| citem 5 3 |] ~demand:0 with
  | Some { K.best; counts } ->
    Alcotest.(check int) "zero cost" 0 best;
    Alcotest.(check int) "zero machines" 0 counts.(0)
  | None -> Alcotest.fail "zero demand is trivially covered"

let test_cover_infeasible () =
  Alcotest.(check bool) "no positive yield" true
    (K.min_cost_cover ~items:[| citem 5 0 |] ~demand:3 = None);
  Alcotest.(check bool) "empty items" true (K.min_cost_cover ~items:[||] ~demand:3 = None)

let test_cover_negative_cost_rejected () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Knapsack: negative cost makes covering unbounded") (fun () ->
      ignore (K.min_cost_cover ~items:[| citem (-1) 2 |] ~demand:3))

let test_cover_free_item () =
  match K.cover_of_knapsack ~items:[| citem 3 2; citem 0 5 |] ~demand:11 with
  | Some { K.best; counts } ->
    Alcotest.(check int) "free coverage" 0 best;
    Alcotest.(check int) "uses the free type" 3 counts.(1)
  | None -> Alcotest.fail "feasible"

(* --- brute-force oracles and the § V-A equivalence --- *)

let brute_cover items demand =
  (* Bounded search: never more than demand copies of any item. *)
  let n = Array.length items in
  let best = ref None in
  let counts = Array.make n 0 in
  let rec go i yield cost =
    (match !best with Some (b, _) when cost >= b -> () | _ ->
      if yield >= demand then best := Some (cost, Array.copy counts)
      else if i < n then begin
        let { K.cost = c; yield = y } = items.(i) in
        if y <= 0 then go (i + 1) yield cost
        else begin
          let max_copies = ((demand - yield) + y - 1) / y in
          for k = 0 to max_copies do
            counts.(i) <- k;
            go (i + 1) (yield + (k * y)) (cost + (k * c))
          done;
          counts.(i) <- 0
        end
      end)
  in
  go 0 0 0;
  Option.map fst !best

let cover_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 4) (pair (int_range 0 15) (int_range 0 10)))
      (int_range 0 40))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [ prop "min_cost_cover matches brute force" cover_gen (fun (items, demand) ->
        let items = Array.of_list (List.map (fun (c, y) -> citem c y) items) in
        let dp = K.min_cost_cover ~items ~demand in
        let brute = brute_cover items demand in
        (match (dp, brute) with
         | Some { K.best; _ }, Some b -> best = b
         | None, None -> true
         | Some { K.best; _ }, None -> demand <= 0 && best = 0
         | None, Some _ -> false));
    prop "cover counts satisfy the demand at the stated cost" cover_gen
      (fun (items, demand) ->
        let items = Array.of_list (List.map (fun (c, y) -> citem c y) items) in
        match K.min_cost_cover ~items ~demand with
        | None -> true
        | Some { K.best; counts } ->
          let yield = ref 0 and cost = ref 0 in
          Array.iteri
            (fun i n ->
              yield := !yield + (n * items.(i).K.yield);
              cost := !cost + (n * items.(i).K.cost))
            counts;
          !yield >= demand && !cost = best);
    prop "knapsack reduction agrees with the covering DP (paper § V-A)"
      cover_gen
      (fun (items, demand) ->
        let items = Array.of_list (List.map (fun (c, y) -> citem c y) items) in
        match (K.min_cost_cover ~items ~demand, K.cover_of_knapsack ~items ~demand) with
        | Some a, Some b -> a.K.best = b.K.best
        | None, None -> true
        | _ -> false);
    prop "unbounded_max counts are optimal and within capacity"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 4) (pair (int_range 0 12) (int_range 1 8)))
          (int_range 0 30))
      (fun (items, capacity) ->
        let items = Array.of_list (List.map (fun (v, w) -> item v w) items) in
        let { K.best; counts } = K.unbounded_max ~items ~capacity in
        let value = ref 0 and weight = ref 0 in
        Array.iteri
          (fun i n ->
            value := !value + (n * items.(i).K.value);
            weight := !weight + (n * items.(i).K.weight))
          counts;
        !value = best && !weight <= capacity) ]

let suite =
  ( "knapsack",
    [ Alcotest.test_case "unbounded classic" `Quick test_unbounded_classic;
      Alcotest.test_case "unbounded zero capacity" `Quick test_unbounded_zero_capacity;
      Alcotest.test_case "unbounded no items" `Quick test_unbounded_no_items;
      Alcotest.test_case "unbounded rejects bad input" `Quick
        test_unbounded_rejects_unbounded_instance;
      Alcotest.test_case "unbounded counts consistent" `Quick
        test_unbounded_counts_consistent;
      Alcotest.test_case "cover classic (Table II)" `Quick test_cover_classic;
      Alcotest.test_case "cover zero demand" `Quick test_cover_zero_demand;
      Alcotest.test_case "cover infeasible" `Quick test_cover_infeasible;
      Alcotest.test_case "cover rejects negative cost" `Quick
        test_cover_negative_cost_rejected;
      Alcotest.test_case "cover free item" `Quick test_cover_free_item ]
    @ props )
