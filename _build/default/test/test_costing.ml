(* Tests for the closed-form costs of § IV: single-graph and
   independent-applications formulas, checked against hand calculations
   and against each other. *)

module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem
module C = Rentcost.Costing

(* § IV-A on a recipe with repeated types: n = (2 of type 0, 1 of type 1),
   r = (3, 5), c = (7, 11). For ρ = 4: x0 = ⌈8/3⌉ = 3, x1 = ⌈4/5⌉ = 1,
   cost = 21 + 11 = 32. *)
let repeated_types_problem =
  PB.create
    (PF.of_list [ (7, 3); (11, 5) ])
    [| TG.chain ~ntypes:2 ~types:[| 0; 1; 0 |] |]

let test_single_graph_hand () =
  Alcotest.(check int) "rho 4" 32 (C.single_graph repeated_types_problem ~j:0 ~target:4);
  Alcotest.(check int) "rho 0" 0 (C.single_graph repeated_types_problem ~j:0 ~target:0);
  (* rho 3: x0 = ⌈6/3⌉ = 2 -> 14, x1 = ⌈3/5⌉ = 1 -> 11; total 25 *)
  Alcotest.(check int) "rho 3" 25 (C.single_graph repeated_types_problem ~j:0 ~target:3)

let test_single_graph_table3_h1 () =
  (* H1 column of Table III is min_j single_graph: spot-check values. *)
  let p = PB.illustrating in
  let h1 target =
    List.fold_left min max_int
      (List.init 3 (fun j -> C.single_graph p ~j ~target))
  in
  List.iter
    (fun (target, expected) ->
      Alcotest.(check int) (Printf.sprintf "H1(%d)" target) expected (h1 target))
    [ (10, 28); (20, 38); (30, 58); (40, 69); (50, 104); (70, 138); (120, 199);
      (160, 276); (200, 340) ]

(* § IV-B: two recipes sharing type 0; machines pool across recipes. *)
let shared_pool_problem =
  PB.create
    (PF.of_list [ (5, 10); (9, 10) ])
    [| TG.chain ~ntypes:2 ~types:[| 0; 1 |]; TG.chain ~ntypes:2 ~types:[| 0; 0 |] |]

let test_independent_pools_machines () =
  (* rho = (5, 5): load0 = 5 + 2*5 = 15 -> x0 = 2; load1 = 5 -> x1 = 1.
     Cost = 10 + 9 = 19. Summing per-recipe costs would give
     (1+1)*5... i.e. recipe-separate ceils = ⌈5/10⌉ + ⌈10/10⌉ = 2 for
     type 0 as well here, but at rho=(5,2) pooling wins:
     load0 = 9 -> 1 machine vs separate ⌈5/10⌉+⌈4/10⌉ = 2. *)
  Alcotest.(check int) "pooled" 19 (C.independent shared_pool_problem ~rho:[| 5; 5 |]);
  let pooled = C.independent shared_pool_problem ~rho:[| 5; 2 |] in
  let separate =
    C.single_graph shared_pool_problem ~j:0 ~target:5
    + C.single_graph shared_pool_problem ~j:1 ~target:2
  in
  Alcotest.(check int) "pooled cheaper" 14 pooled;
  Alcotest.(check bool) "pooling <= separate" true (pooled <= separate);
  Alcotest.(check int) "separate pays twice" 19 separate

let test_per_type_sums_to_independent () =
  let p = PB.illustrating in
  let rho = [| 10; 30; 30 |] in
  let per = C.per_type p ~rho in
  Alcotest.(check int) "sum" (C.independent p ~rho) (Array.fold_left ( + ) 0 per);
  Alcotest.(check (array int)) "per-type detail" [| 30; 36; 25; 33 |] per

let test_single_graph_is_independent_special_case () =
  let p = PB.illustrating in
  for j = 0 to 2 do
    let rho = Array.make 3 0 in
    rho.(j) <- 40;
    Alcotest.(check int)
      (Printf.sprintf "recipe %d" j)
      (C.independent p ~rho)
      (C.single_graph p ~j ~target:40)
  done

(* qcheck: ceiling formula sanity over random platforms. *)
let gen =
  QCheck2.Gen.(
    pair (pair (int_range 1 20) (int_range 1 20)) (pair (int_range 1 20) (int_range 0 100)))

let prop name g f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name g f)

let props =
  [ prop "single graph cost formula" gen (fun ((c, r), (n, rho)) ->
        let types = Array.make n 0 in
        let p = PB.create (PF.of_list [ (c, r) ]) [| TG.chain ~ntypes:1 ~types |] in
        let expected = ((n * rho) + r - 1) / r * c in
        C.single_graph p ~j:0 ~target:rho = expected);
    prop "cost superadditive under split" gen (fun ((c, r), (n, rho)) ->
        (* Splitting a load across two separately-ceiled recipes never
           beats pooling: ⌈a+b⌉-style inequality on machine counts. *)
        let types = Array.make n 0 in
        let g = TG.chain ~ntypes:1 ~types in
        let p = PB.create (PF.of_list [ (c, r) ]) [| g; g |] in
        let half = rho / 2 in
        let pooled = C.independent p ~rho:[| half; rho - half |] in
        let separate =
          C.single_graph p ~j:0 ~target:half + C.single_graph p ~j:1 ~target:(rho - half)
        in
        pooled <= separate) ]

let suite =
  ( "costing",
    [ Alcotest.test_case "single graph hand-checked" `Quick test_single_graph_hand;
      Alcotest.test_case "H1 column of Table III" `Quick test_single_graph_table3_h1;
      Alcotest.test_case "independent pools machines" `Quick
        test_independent_pools_machines;
      Alcotest.test_case "per-type sums to total" `Quick test_per_type_sums_to_independent;
      Alcotest.test_case "single graph = independent special case" `Quick
        test_single_graph_is_independent_special_case ]
    @ props )
