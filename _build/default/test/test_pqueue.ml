(* Tests for the binary min-heap shared by the MILP node queue and the
   discrete-event simulator. *)

module Int_heap = Pqueue.Make (Int)

let test_basic_order () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "size" 5 (Int_heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Int_heap.peek h);
  let drained = List.init 5 (fun _ -> Option.get (Int_heap.pop h)) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  Alcotest.(check bool) "empty" true (Int_heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Int_heap.pop h)

let test_clear_and_fold () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 3; 1; 2 ];
  Alcotest.(check int) "fold sum" 6 (Int_heap.fold ( + ) 0 h);
  Alcotest.(check int) "to_list length" 3 (List.length (Int_heap.to_list h));
  Int_heap.clear h;
  Alcotest.(check bool) "cleared" true (Int_heap.is_empty h);
  Alcotest.(check int) "fold after clear" 0 (Int_heap.fold ( + ) 0 h)

let test_interleaved () =
  let h = Int_heap.create () in
  Int_heap.push h 10;
  Int_heap.push h 5;
  Alcotest.(check (option int)) "min" (Some 5) (Int_heap.pop h);
  Int_heap.push h 1;
  Int_heap.push h 20;
  Alcotest.(check (option int)) "new min" (Some 1) (Int_heap.pop h);
  Alcotest.(check (option int)) "then 10" (Some 10) (Int_heap.pop h);
  Alcotest.(check (option int)) "then 20" (Some 20) (Int_heap.pop h)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [ prop "heap drain equals sorted input" QCheck2.Gen.(list int) (fun xs ->
        let h = Int_heap.create () in
        List.iter (Int_heap.push h) xs;
        let drained = List.init (List.length xs) (fun _ -> Option.get (Int_heap.pop h)) in
        drained = List.sort compare xs);
    prop "size tracks pushes and pops" QCheck2.Gen.(list small_nat) (fun xs ->
        let h = Int_heap.create () in
        List.iteri
          (fun i x ->
            Int_heap.push h x;
            assert (Int_heap.size h = i + 1))
          xs;
        List.for_all
          (fun _ ->
            let before = Int_heap.size h in
            ignore (Int_heap.pop h);
            Int_heap.size h = before - 1)
          xs);
    prop "peek = pop" QCheck2.Gen.(list_size (QCheck2.Gen.int_range 1 30) int)
      (fun xs ->
        let h = Int_heap.create () in
        List.iter (Int_heap.push h) xs;
        (* bind in order: OCaml evaluates [=] operands right to left *)
        let peeked = Int_heap.peek h in
        let popped = Int_heap.pop h in
        peeked = popped) ]

let suite =
  ( "pqueue",
    [ Alcotest.test_case "basic order" `Quick test_basic_order;
      Alcotest.test_case "clear and fold" `Quick test_clear_and_fold;
      Alcotest.test_case "interleaved" `Quick test_interleaved ]
    @ props )
