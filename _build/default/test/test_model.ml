(* Tests for the problem model: task graphs, platform, problem
   classification (black-box / disjoint / shared) and allocations. *)

module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem
module AL = Rentcost.Allocation

(* --- Task_graph --- *)

let test_graph_basic () =
  let g = TG.create ~ntypes:3 ~types:[| 0; 1; 1; 2 |] ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "tasks" 4 (TG.num_tasks g);
  Alcotest.(check int) "types" 3 (TG.num_types g);
  Alcotest.(check int) "type of 2" 1 (TG.type_of g 2);
  Alcotest.(check (array int)) "type counts" [| 1; 2; 1 |] (TG.type_counts g);
  Alcotest.(check (list int)) "types used" [ 0; 1; 2 ] (TG.types_used g);
  Alcotest.(check (list int)) "sources" [ 0 ] (TG.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (TG.sinks g);
  Alcotest.(check int) "critical path" 3 (TG.critical_path_length g)

let test_graph_topo () =
  let g = TG.create ~ntypes:2 ~types:[| 0; 1; 0 |] ~edges:[ (2, 1); (1, 0) ] in
  Alcotest.(check (array int)) "topo order" [| 2; 1; 0 |] (TG.topo_order g)

let test_graph_validation () =
  let inv msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore inv;
  Alcotest.check_raises "cycle"
    (Invalid_argument "Task_graph.create: precedence graph has a cycle") (fun () ->
      ignore (TG.create ~ntypes:1 ~types:[| 0; 0 |] ~edges:[ (0, 1); (1, 0) ]));
  Alcotest.check_raises "bad type"
    (Invalid_argument "Task_graph.create: task type out of range") (fun () ->
      ignore (TG.create ~ntypes:1 ~types:[| 1 |] ~edges:[]));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Task_graph.create: bad precedence edge") (fun () ->
      ignore (TG.create ~ntypes:1 ~types:[| 0; 0 |] ~edges:[ (1, 1) ]));
  Alcotest.check_raises "empty"
    (Invalid_argument "Task_graph.create: a recipe needs at least one task") (fun () ->
      ignore (TG.create ~ntypes:1 ~types:[||] ~edges:[]))

let test_graph_chain () =
  let g = TG.chain ~ntypes:4 ~types:[| 3; 1; 2 |] in
  Alcotest.(check int) "edges" 2 (List.length (TG.edges g));
  Alcotest.(check int) "critical path = tasks" 3 (TG.critical_path_length g);
  Alcotest.(check (list int)) "single source" [ 0 ] (TG.sources g);
  Alcotest.(check (list int)) "single sink" [ 2 ] (TG.sinks g)

let test_graph_diamond_pp () =
  let g = TG.create ~ntypes:2 ~types:[| 0; 1; 1; 0 |] ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let s = Format.asprintf "%a" TG.pp g in
  Alcotest.(check bool) "pp mentions tasks" true
    (String.length s > 0 && String.index_opt s '4' <> None)

(* --- Platform --- *)

let test_platform_basic () =
  let p = PF.of_list [ (10, 10); (18, 20) ] in
  Alcotest.(check int) "types" 2 (PF.num_types p);
  Alcotest.(check int) "cost" 18 (PF.cost p 1);
  Alcotest.(check int) "throughput" 20 (PF.throughput p 1)

let test_platform_validation () =
  Alcotest.check_raises "zero cost" (Invalid_argument "Platform.create: cost must be positive")
    (fun () -> ignore (PF.of_list [ (0, 5) ]));
  Alcotest.check_raises "zero throughput"
    (Invalid_argument "Platform.create: throughput must be positive") (fun () ->
      ignore (PF.of_list [ (5, 0) ]));
  Alcotest.check_raises "empty" (Invalid_argument "Platform.create: no machine types")
    (fun () -> ignore (PF.create [||]))

let test_platform_table2 () =
  let p = PF.table2 in
  Alcotest.(check int) "Q" 4 (PF.num_types p);
  Alcotest.(check (list int)) "throughputs" [ 10; 20; 30; 40 ]
    (List.init 4 (PF.throughput p));
  Alcotest.(check (list int)) "costs" [ 10; 18; 25; 33 ] (List.init 4 (PF.cost p))

(* --- Problem --- *)

let test_problem_illustrating () =
  let p = PB.illustrating in
  Alcotest.(check int) "J" 3 (PB.num_recipes p);
  Alcotest.(check int) "Q" 4 (PB.num_types p);
  (* n^j_q checks against Figure 2 *)
  Alcotest.(check (array int)) "recipe 0 counts" [| 0; 1; 0; 1 |] (PB.type_counts p 0);
  Alcotest.(check (array int)) "recipe 1 counts" [| 0; 0; 1; 1 |] (PB.type_counts p 1);
  Alcotest.(check (array int)) "recipe 2 counts" [| 1; 1; 0; 0 |] (PB.type_counts p 2);
  Alcotest.(check bool) "shares types" true (PB.has_shared_types p);
  Alcotest.(check bool) "not disjoint" false (PB.is_disjoint p);
  Alcotest.(check bool) "not blackbox" false (PB.is_blackbox p)

let test_problem_classification () =
  let platform = PF.of_list [ (1, 1); (1, 1); (1, 1) ] in
  let single q = TG.create ~ntypes:3 ~types:[| q |] ~edges:[] in
  let blackbox = PB.create platform [| single 0; single 1; single 2 |] in
  Alcotest.(check bool) "blackbox" true (PB.is_blackbox blackbox);
  Alcotest.(check bool) "blackbox disjoint" true (PB.is_disjoint blackbox);
  let disjoint =
    PB.create platform
      [| TG.chain ~ntypes:3 ~types:[| 0; 0 |]; TG.chain ~ntypes:3 ~types:[| 1; 2 |] |]
  in
  Alcotest.(check bool) "disjoint" true (PB.is_disjoint disjoint);
  Alcotest.(check bool) "disjoint not blackbox" false (PB.is_blackbox disjoint);
  let shared =
    PB.create platform
      [| TG.chain ~ntypes:3 ~types:[| 0; 1 |]; TG.chain ~ntypes:3 ~types:[| 1; 2 |] |]
  in
  Alcotest.(check bool) "shared" true (PB.has_shared_types shared)

let test_problem_validation () =
  Alcotest.check_raises "no recipes" (Invalid_argument "Problem.create: no recipes")
    (fun () -> ignore (PB.create PF.table2 [||]));
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Problem.create: recipe type count differs from platform")
    (fun () ->
      ignore (PB.create PF.table2 [| TG.chain ~ntypes:2 ~types:[| 0 |] |]))

(* --- Allocation --- *)

let test_loads () =
  let p = PB.illustrating in
  (* rho = (10, 30, 30): loads per type from the paper's § VII walk-through *)
  let loads = AL.loads p ~rho:[| 10; 30; 30 |] in
  Alcotest.(check (array int)) "loads" [| 30; 40; 30; 40 |] loads

let test_of_rho_paper_example () =
  let p = PB.illustrating in
  let a = AL.of_rho p ~rho:[| 10; 30; 30 |] in
  Alcotest.(check (array int)) "machines (3,2,1,1)" [| 3; 2; 1; 1 |] a.AL.machines;
  Alcotest.(check int) "cost 124" 124 a.AL.cost;
  Alcotest.(check int) "total rho" 70 (AL.total_rho a);
  Alcotest.(check bool) "feasible at 70" true (AL.feasible p ~target:70 a);
  Alcotest.(check bool) "not feasible at 71" false (AL.feasible p ~target:71 a)

let test_of_rho_zero () =
  let p = PB.illustrating in
  let a = AL.of_rho p ~rho:[| 0; 0; 0 |] in
  Alcotest.(check int) "zero cost" 0 a.AL.cost;
  Alcotest.(check (array int)) "no machines" [| 0; 0; 0; 0 |] a.AL.machines

let test_single () =
  let p = PB.illustrating in
  (* Recipe 2 (types t1, t2) at ρ=10: one P1 (10) + one P2 (18) = 28,
     the H1 row of Table III. *)
  let a = AL.single p ~j:2 ~target:10 in
  Alcotest.(check int) "cost 28" 28 a.AL.cost

let test_make_validation () =
  let p = PB.illustrating in
  Alcotest.check_raises "under-provisioned"
    (Invalid_argument "Allocation.make: under-provisioned type") (fun () ->
      ignore (AL.make p ~rho:[| 10; 0; 0 |] ~machines:[| 0; 0; 0; 0 |]));
  Alcotest.check_raises "wrong rho size" (Invalid_argument "Allocation: rho has wrong length")
    (fun () -> ignore (AL.of_rho p ~rho:[| 1 |]));
  Alcotest.check_raises "negative rho" (Invalid_argument "Allocation: negative throughput")
    (fun () -> ignore (AL.of_rho p ~rho:[| -1; 0; 1 |]))

let test_make_overprovisioned_ok () =
  let p = PB.illustrating in
  let a = AL.make p ~rho:[| 10; 0; 0 |] ~machines:[| 5; 5; 5; 5 |] in
  Alcotest.(check int) "cost of explicit fleet" (5 * (10 + 18 + 25 + 33)) a.AL.cost;
  Alcotest.(check bool) "feasible" true (AL.feasible p ~target:10 a)

(* qcheck: of_rho produces the cheapest fleet for its split. *)
let rho_gen = QCheck2.Gen.(array_size (QCheck2.Gen.return 3) (int_range 0 50))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [ prop "of_rho machines are minimal" rho_gen (fun rho ->
        let p = PB.illustrating in
        let a = AL.of_rho p ~rho in
        let loads = AL.loads p ~rho in
        let platform = PB.platform p in
        Array.for_all Fun.id
          (Array.mapi
             (fun q x ->
               let r = PF.throughput platform q in
               (x * r >= loads.(q)) && (x = 0 || (x - 1) * r < loads.(q)))
             a.AL.machines));
    prop "feasibility threshold is exactly total rho" rho_gen (fun rho ->
        let p = PB.illustrating in
        let a = AL.of_rho p ~rho in
        let t = AL.total_rho a in
        AL.feasible p ~target:t a && not (AL.feasible p ~target:(t + 1) a));
    prop "cost is monotone in rho" rho_gen (fun rho ->
        let p = PB.illustrating in
        let bigger = Array.map (fun x -> x + 1) rho in
        (AL.of_rho p ~rho).AL.cost <= (AL.of_rho p ~rho:bigger).AL.cost) ]

let suite =
  ( "model",
    [ Alcotest.test_case "graph basic" `Quick test_graph_basic;
      Alcotest.test_case "graph topo" `Quick test_graph_topo;
      Alcotest.test_case "graph validation" `Quick test_graph_validation;
      Alcotest.test_case "graph chain" `Quick test_graph_chain;
      Alcotest.test_case "graph pp" `Quick test_graph_diamond_pp;
      Alcotest.test_case "platform basic" `Quick test_platform_basic;
      Alcotest.test_case "platform validation" `Quick test_platform_validation;
      Alcotest.test_case "platform table2" `Quick test_platform_table2;
      Alcotest.test_case "problem illustrating" `Quick test_problem_illustrating;
      Alcotest.test_case "problem classification" `Quick test_problem_classification;
      Alcotest.test_case "problem validation" `Quick test_problem_validation;
      Alcotest.test_case "loads" `Quick test_loads;
      Alcotest.test_case "of_rho paper example" `Quick test_of_rho_paper_example;
      Alcotest.test_case "of_rho zero" `Quick test_of_rho_zero;
      Alcotest.test_case "single (H1 building block)" `Quick test_single;
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "make overprovisioned" `Quick test_make_overprovisioned_ok ]
    @ props )
