(* Tests for the bounded-variable simplex engine: hand cases exercising
   bound flips and shifted lower bounds, plus differential qcheck
   against the row-based engine (which materializes variable bounds as
   rows, so both must agree exactly on every model). *)

module R = Numeric.Rat
module L = Lp.Linexpr
module M = Lp.Model
module S = Lp.Simplex
module B = Lp.Bounded

let ri = R.of_int

let expr terms = L.of_terms (List.map (fun (v, n) -> (v, ri n)) terms)

let check_rat msg expected actual =
  Alcotest.(check string) msg (R.to_string expected) (R.to_string actual)

let solve_opt m =
  match B.solve m with
  | S.Optimal sol -> sol
  | S.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected: unbounded"

let test_plain_lp_matches_simplex () =
  (* No variable bounds: both engines are vanilla simplex. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, 2) ]) M.Ge (ri 4);
  M.add_constraint m (expr [ (x, 3); (y, 1) ]) M.Ge (ri 6);
  M.set_objective m M.Minimize (expr [ (x, 1); (y, 1) ]);
  let sol = solve_opt m in
  check_rat "objective 14/5" (R.of_ints 14 5) sol.S.objective

let test_upper_bound_binds () =
  (* max x with x <= 7 as a *variable bound*: optimum sits at the bound
     via a bound flip, no pivot involving a bound row. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.tighten_upper m x (ri 7);
  M.set_objective m M.Maximize (expr [ (x, 1) ]);
  let sol = solve_opt m in
  check_rat "x = 7" (ri 7) sol.S.values.(x);
  check_rat "objective" (ri 7) sol.S.objective

let test_lower_bound_shifts () =
  (* min x + y, x >= 3 (variable bound), x + y >= 5. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.tighten_lower m x (ri 3);
  M.add_constraint m (expr [ (x, 1); (y, 1) ]) M.Ge (ri 5);
  M.set_objective m M.Minimize (expr [ (x, 1); (y, 1) ]);
  let sol = solve_opt m in
  check_rat "objective 5" (ri 5) sol.S.objective;
  Alcotest.(check bool) "x at least 3" true (R.compare sol.S.values.(x) (ri 3) >= 0)

let test_crossing_bounds_infeasible () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.tighten_lower m x (ri 5);
  M.tighten_upper m x (ri 3);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  (match B.solve m with
   | S.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_fixed_variable () =
  (* x fixed at 4 by equal bounds; min y with y >= 10 - x. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.tighten_lower m x (ri 4);
  M.tighten_upper m x (ri 4);
  M.add_constraint m (expr [ (x, 1); (y, 1) ]) M.Ge (ri 10);
  M.set_objective m M.Minimize (expr [ (y, 1) ]);
  let sol = solve_opt m in
  check_rat "x pinned" (ri 4) sol.S.values.(x);
  check_rat "y" (ri 6) sol.S.values.(y)

let test_bounds_with_infeasible_rows () =
  (* Bounds satisfiable but rows not. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.tighten_upper m x (ri 2);
  M.add_constraint m (expr [ (x, 1) ]) M.Ge (ri 5);
  M.set_objective m M.Minimize (expr [ (x, 1) ]);
  match B.solve m with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded_detected () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.set_objective m M.Maximize (expr [ (x, 1) ]);
  (match B.solve m with
   | S.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded");
  (* The same objective with an upper bound is bounded. *)
  M.tighten_upper m x (ri 9);
  match B.solve m with
  | S.Optimal sol -> check_rat "capped" (ri 9) sol.S.objective
  | _ -> Alcotest.fail "expected optimal"

let test_eq_rows () =
  (* Equality rows exercise the artificial-only path of the bounded
     engine's phase 1. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.tighten_upper m x (ri 4);
  M.add_constraint m (expr [ (x, 1); (y, 1) ]) M.Eq (ri 6);
  M.set_objective m M.Minimize (expr [ (y, 1) ]);
  let sol = solve_opt m in
  check_rat "x at its cap" (ri 4) sol.S.values.(x);
  check_rat "y fills the rest" (ri 2) sol.S.values.(y);
  (* Equality with negative rhs needs the row negation path. *)
  let m2 = M.create () in
  let a = M.add_var m2 ~name:"a" and b = M.add_var m2 ~name:"b" in
  M.add_constraint m2 (expr [ (a, 1); (b, -1) ]) M.Eq (ri (-3));
  M.set_objective m2 M.Minimize (expr [ (a, 1); (b, 1) ]);
  (match B.solve m2 with
   | S.Optimal sol -> check_rat "a=0, b=3" (ri 3) sol.S.objective
   | _ -> Alcotest.fail "expected optimal")

let test_negative_rhs_rows () =
  (* Rows needing phase-1 artificials under the bounded engine. *)
  let m = M.create () in
  let x = M.add_var m ~name:"x" and y = M.add_var m ~name:"y" in
  M.add_constraint m (expr [ (x, 1); (y, -1) ]) M.Le (ri (-2));
  M.tighten_upper m y (ri 10);
  M.set_objective m M.Maximize (expr [ (x, 1) ]);
  match B.solve m with
  | S.Optimal sol ->
    (* y <= 10 and y >= x + 2 force x <= 8. *)
    check_rat "objective 8" (ri 8) sol.S.objective
  | _ -> Alcotest.fail "expected optimal"

(* --- differential testing against the row engine --- *)

let gen =
  QCheck2.Gen.(
    pair
      (pair (int_range 1 4) (int_range 0 4))
      (pair
         (pair (list_size (return 16) (int_range (-4) 4))
            (list_size (return 4) (int_range (-8) 8)))
         (pair
            (pair (list_size (return 4) (int_range 0 6))
               (list_size (return 4) (option (int_range 0 9))))
            (pair (list_size (return 4) (int_range 0 2)) bool))))

let build ((nvars, nrows), ((coeffs, rhs), ((lowers, uppers), (senses, maximize)))) :
    M.t =
  let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
  let lowers = Array.of_list lowers and uppers = Array.of_list uppers in
  let senses = Array.of_list senses in
  let m = M.create () in
  let vars = Array.init nvars (fun i -> M.add_var m ~name:(Printf.sprintf "x%d" i)) in
  Array.iteri
    (fun i v ->
      M.tighten_lower m v (ri lowers.(i mod 4));
      match uppers.(i mod 4) with
      | Some u -> M.tighten_upper m v (ri u)
      | None -> ())
    vars;
  for r = 0 to nrows - 1 do
    let terms =
      Array.to_list
        (Array.mapi (fun i v -> (v, ri coeffs.(((r * nvars) + i) mod 16))) vars)
    in
    let cmp =
      match senses.(r mod 4) with 0 -> M.Ge | 1 -> M.Le | _ -> M.Eq
    in
    M.add_constraint m (L.of_terms terms) cmp (ri rhs.(r mod 4))
  done;
  M.set_objective m
    (if maximize then M.Maximize else M.Minimize)
    (L.of_terms
       (Array.to_list (Array.mapi (fun i v -> (v, ri (coeffs.(i mod 16)))) vars)));
  m

let prop name g f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name g f)

let props =
  [ prop "bounded engine agrees with row engine" gen (fun input ->
        let m = build input in
        match (B.solve m, S.solve m) with
        | S.Optimal a, S.Optimal b -> R.equal a.S.objective b.S.objective
        | S.Infeasible, S.Infeasible -> true
        | S.Unbounded, S.Unbounded -> true
        | _ -> false);
    prop "bounded solutions are feasible including bounds" gen (fun input ->
        let m = build input in
        match B.solve m with
        | S.Optimal sol -> M.check_feasible m sol.S.values
        | S.Infeasible | S.Unbounded -> true) ]

let suite =
  ( "bounded",
    [ Alcotest.test_case "plain LP matches simplex" `Quick test_plain_lp_matches_simplex;
      Alcotest.test_case "upper bound binds (flip)" `Quick test_upper_bound_binds;
      Alcotest.test_case "lower bound shifts" `Quick test_lower_bound_shifts;
      Alcotest.test_case "crossing bounds infeasible" `Quick
        test_crossing_bounds_infeasible;
      Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
      Alcotest.test_case "bounds with infeasible rows" `Quick
        test_bounds_with_infeasible_rows;
      Alcotest.test_case "unbounded then capped" `Quick test_unbounded_detected;
      Alcotest.test_case "equality rows" `Quick test_eq_rows;
      Alcotest.test_case "negative rhs rows (phase 1)" `Quick test_negative_rhs_rows ]
    @ props )
