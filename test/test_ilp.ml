(* Tests for the § V-C MILP: exact reproduction of the ILP column of
   the paper's Table III (costs and splits), structural checks on the
   generated model, cross-checks against the exhaustive oracle on
   random shared-type instances, and time-limit behaviour. *)

module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem
module AL = Rentcost.Allocation
module EX = Rentcost.Exhaustive
module ILP = Rentcost.Ilp

(* The complete ILP column of Table III: target -> (rho1, rho2, rho3, cost). *)
let table3_ilp =
  [ (10, (0, 0, 10), 28); (20, (0, 0, 20), 38); (30, (0, 30, 0), 58);
    (40, (40, 0, 0), 69); (50, (10, 30, 10), 86); (60, (40, 0, 20), 107);
    (70, (10, 30, 30), 124); (80, (20, 60, 0), 134); (90, (50, 30, 10), 155);
    (100, (20, 60, 20), 172); (110, (20, 90, 0), 192); (120, (0, 120, 0), 199);
    (130, (30, 90, 10), 220); (140, (0, 120, 20), 237); (150, (0, 150, 0), 257);
    (160, (40, 120, 0), 268); (170, (10, 150, 10), 285); (180, (40, 120, 20), 306);
    (190, (10, 150, 30), 323); (200, (20, 180, 0), 333) ]

let test_table3_costs () =
  List.iter
    (fun (target, _, cost) ->
      match (ILP.optimize ~problem:PB.illustrating ~target ()).ILP.allocation with
      | Some a ->
        Alcotest.(check int) (Printf.sprintf "cost at rho=%d" target) cost a.AL.cost
      | None -> Alcotest.fail "no solution")
    table3_ilp

let test_table3_splits_are_optimal () =
  (* The paper's published splits must cost exactly the optimum (the
     optimum split need not be unique, so we check cost equality of the
     published point rather than the argmin itself). *)
  List.iter
    (fun (target, (r1, r2, r3), cost) ->
      let a = AL.of_rho PB.illustrating ~rho:[| r1; r2; r3 |] in
      Alcotest.(check int) (Printf.sprintf "paper split at rho=%d" target) cost a.AL.cost;
      Alcotest.(check bool) "feasible" true (AL.feasible PB.illustrating ~target a))
    table3_ilp

let test_proved_optimal () =
  let o = ILP.optimize ~problem:PB.illustrating ~target:70 () in
  Alcotest.(check bool) "proved" true o.ILP.proved_optimal;
  Alcotest.(check (option int)) "bound = incumbent" (Some 124) o.ILP.best_bound;
  Alcotest.(check bool) "some nodes" true (o.ILP.nodes >= 1)

let test_build_structure () =
  let model, integer = ILP.model ~problem:PB.illustrating ~target:70 () in
  (* 3 rho vars + 4 x vars *)
  Alcotest.(check int) "vars" 7 (Lp.Model.num_vars model);
  Alcotest.(check int) "integer vars" 7 (List.length integer);
  (* 1 throughput + 4 capacity; the tightening bounds are variable
     bounds, not rows *)
  Alcotest.(check int) "constraints" 5 (Lp.Model.num_constraints model);
  Alcotest.(check bool) "variable bounds set" true (Lp.Model.has_var_bounds model);
  (* rho upper bounds equal the target *)
  (match Lp.Model.bounds model 0 with
   | lo, Some up ->
     Alcotest.(check string) "rho lower" "0" (Numeric.Rat.to_string lo);
     Alcotest.(check string) "rho upper" "70" (Numeric.Rat.to_string up)
   | _ -> Alcotest.fail "rho should have an upper bound");
  Alcotest.(check string) "rho name" "rho_0" (Lp.Model.var_name model 0);
  Alcotest.(check string) "x name" "x_0" (Lp.Model.var_name model 3)

let test_zero_target () =
  match (ILP.optimize ~problem:PB.illustrating ~target:0 ()).ILP.allocation with
  | Some a -> Alcotest.(check int) "free" 0 a.AL.cost
  | None -> Alcotest.fail "no solution"

let test_negative_target () =
  Alcotest.check_raises "negative" (Invalid_argument "Ilp.model: negative target")
    (fun () -> ignore (ILP.optimize ~problem:PB.illustrating ~target:(-1) ()))

let test_lp_lower_bound () =
  List.iter
    (fun (target, _, cost) ->
      let lb = ILP.lp_lower_bound PB.illustrating ~target in
      Alcotest.(check bool)
        (Printf.sprintf "lb %d <= opt %d at rho=%d" lb cost target)
        true (lb <= cost))
    table3_ilp;
  Alcotest.(check int) "lb at 0" 0 (ILP.lp_lower_bound PB.illustrating ~target:0)

let test_time_limit_returns_quickly () =
  (* An exhausted budget must still return, with a valid bound. *)
  let o = ILP.optimize ~time_limit:(-1.0) ~problem:PB.illustrating ~target:70 () in
  Alcotest.(check bool) "not proved optimal" true (not o.ILP.proved_optimal);
  Alcotest.(check int) "no nodes" 0 o.ILP.nodes

let test_strategies_agree () =
  List.iter
    (fun target ->
      let a = ILP.optimize ~strategy:Milp.Solver.Best_bound ~problem:PB.illustrating ~target () in
      let b = ILP.optimize ~strategy:Milp.Solver.Depth_first ~problem:PB.illustrating ~target () in
      match (a.ILP.allocation, b.ILP.allocation) with
      | Some x, Some y ->
        Alcotest.(check int) (Printf.sprintf "target %d" target) x.AL.cost y.AL.cost
      | _ -> Alcotest.fail "missing solution")
    [ 10; 70; 130; 200 ]

(* Random shared-type instances vs the exhaustive oracle. *)
let shared_gen =
  QCheck2.Gen.(
    pair
      (pair
         (list_size (return 3) (pair (int_range 1 20) (int_range 1 20)))
         (pair (list_size (int_range 1 4) (int_range 0 2))
            (list_size (int_range 1 4) (int_range 0 2))))
      (int_range 0 20))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen f)

let build_shared ((machines, (t1, t2)), target) =
  let platform = PF.of_list machines in
  let p =
    PB.create platform
      [| TG.chain ~ntypes:3 ~types:(Array.of_list t1);
         TG.chain ~ntypes:3 ~types:(Array.of_list t2) |]
  in
  (p, target)

let props =
  [ prop "ILP matches exhaustive on random shared instances" shared_gen
      (fun input ->
        let p, target = build_shared input in
        match (ILP.optimize ~problem:p ~target ()).ILP.allocation with
        | Some a -> a.AL.cost = (EX.run ~problem:p ~target ()).AL.cost
        | None -> false);
    prop "ILP allocation is feasible" shared_gen (fun input ->
        let p, target = build_shared input in
        match (ILP.optimize ~problem:p ~target ()).ILP.allocation with
        | Some a -> AL.feasible p ~target a
        | None -> false);
    prop "LP bound sandwiches the optimum" shared_gen (fun input ->
        let p, target = build_shared input in
        let lb = ILP.lp_lower_bound p ~target in
        match (ILP.optimize ~problem:p ~target ()).ILP.allocation with
        | Some a -> lb <= a.AL.cost
        | None -> false) ]

let suite =
  ( "ilp",
    [ Alcotest.test_case "Table III: all 20 optimal costs" `Quick test_table3_costs;
      Alcotest.test_case "Table III: published splits cost the optimum" `Quick
        test_table3_splits_are_optimal;
      Alcotest.test_case "optimality is proved" `Quick test_proved_optimal;
      Alcotest.test_case "model structure" `Quick test_build_structure;
      Alcotest.test_case "zero target" `Quick test_zero_target;
      Alcotest.test_case "negative target" `Quick test_negative_target;
      Alcotest.test_case "LP lower bound" `Quick test_lp_lower_bound;
      Alcotest.test_case "exhausted time budget" `Quick test_time_limit_returns_quickly;
      Alcotest.test_case "strategies agree" `Quick test_strategies_agree ]
    @ props )
