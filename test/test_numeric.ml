(* Differential battery for the numeric kernels: Fix64 must agree with
   the exact Rat kernel operation-by-operation and solve-by-solve
   wherever it completes, and must raise [Kernel.Overflow] exactly
   where the exact result leaves the small range — never return a
   wrong value. Directed tests probe the overflow boundary
   (max-denominator pivots, costs at and far beyond the range bound)
   and the Fix64-first/Rat-fallback driver in [Rentcost.Ilp]. *)

module B = Numeric.Bigint
module R = Numeric.Rat
module K = Numeric.Kernel
module E = Numeric.Kernel.Exact
module F = Numeric.Fix64
module L = Lp.Linexpr
module M = Lp.Model
module S = Lp.Simplex

let rat = R.of_ints
let check_rat msg a b = Alcotest.(check string) msg (R.to_string a) (R.to_string b)

(* Whether an exact rational lies inside Fix64's representable range —
   the overflow contract: Fix64 completes iff this holds. *)
let fits r =
  match (B.to_int (R.num r), B.to_int (R.den r)) with
  | Some n, Some d -> abs n < F.bound && d < F.bound
  | _ -> false

let sign_of c = Stdlib.compare c 0

(* --- directed: constants, identities, rounding --- *)

let test_kernel_names () =
  Alcotest.(check string) "exact kernel" "rat" E.name;
  Alcotest.(check string) "fast kernel" "fix64" F.name

let test_constants_round_trip () =
  check_rat "zero" R.zero (F.to_rat F.zero);
  check_rat "one" R.one (F.to_rat F.one);
  check_rat "minus one" (R.of_int (-1)) (F.to_rat F.minus_one);
  check_rat "of_int" (R.of_int 42) (F.to_rat (F.of_int 42));
  check_rat "of_ints reduces" (rat 2 3) (F.to_rat (F.of_ints 4 6));
  check_rat "negative den" (rat (-2) 3) (F.to_rat (F.of_ints 2 (-3)))

let test_rounding_matches_exact () =
  List.iter
    (fun (n, d) ->
      let r = rat n d in
      let f = F.of_rat r in
      check_rat (Printf.sprintf "floor %d/%d" n d) (E.floor r) (F.to_rat (F.floor f));
      check_rat (Printf.sprintf "ceil %d/%d" n d) (E.ceil r) (F.to_rat (F.ceil f));
      check_rat (Printf.sprintf "frac %d/%d" n d) (E.frac r) (F.to_rat (F.frac f));
      Alcotest.(check bool)
        (Printf.sprintf "is_integer %d/%d" n d)
        (E.is_integer r) (F.is_integer f))
    [ (7, 2); (-7, 2); (5, 1); (-5, 1); (0, 3); (1, 3); (-1, 3) ]

(* --- directed: the overflow boundary --- *)

let test_injection_boundary () =
  ignore (F.of_int (F.bound - 1));
  ignore (F.of_int (1 - F.bound));
  ignore (F.of_ints 1 (F.bound - 1));
  Alcotest.check_raises "of_int at bound" K.Overflow (fun () ->
      ignore (F.of_int F.bound));
  Alcotest.check_raises "of_int at -bound" K.Overflow (fun () ->
      ignore (F.of_int (-F.bound)));
  Alcotest.check_raises "denominator at bound" K.Overflow (fun () ->
      ignore (F.of_ints 1 F.bound));
  Alcotest.check_raises "of_rat out of range" K.Overflow (fun () ->
      ignore (F.of_rat (R.of_int F.bound)))

let test_arithmetic_boundary () =
  (* One below the bound is fine; crossing it raises. *)
  check_rat "add inside range"
    (R.of_int (F.bound - 1))
    (F.to_rat (F.add (F.of_int (F.bound - 2)) F.one));
  Alcotest.check_raises "add crosses the bound" K.Overflow (fun () ->
      ignore (F.add (F.of_int (F.bound - 1)) F.one));
  Alcotest.check_raises "mul overflows the denominator" K.Overflow (fun () ->
      ignore (F.mul (F.of_ints 1 (F.bound - 1)) (F.of_ints 1 2)));
  Alcotest.check_raises "div builds a max denominator" K.Overflow (fun () ->
      ignore (F.div (F.of_ints 1 (F.bound - 1)) (F.of_int (F.bound - 1))));
  (* Reduction can bring an out-of-range quotient back in range. *)
  check_rat "gcd saves the result" R.one
    (F.to_rat (F.div (F.of_ints 1 (F.bound - 1)) (F.of_ints 1 (F.bound - 1))))

(* --- qcheck: operation-level differential --- *)

(* Inputs span the full small range, so cross products overflow often:
   both branches of the contract get exercised. *)
let rat_pair_gen =
  QCheck2.Gen.(
    let num = int_range (-2_000_000) 2_000_000 in
    let den = int_range 1 2_000_000 in
    pair (pair num den) (pair num den))

let prop ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* Fix64 either returns the exact kernel's value or raises Overflow,
   and it raises exactly when that value is out of range. *)
let agree2 fop eop a b =
  match fop (F.of_rat a) (F.of_rat b) with
  | f ->
    let e = eop a b in
    fits e && R.equal (F.to_rat f) e
  | exception K.Overflow -> not (fits (eop a b))

let agree1 fop eop a =
  match fop (F.of_rat a) with
  | f ->
    let e = eop a in
    fits e && R.equal (F.to_rat f) e
  | exception K.Overflow -> not (fits (eop a))

let op_props =
  [ prop "add/sub/mul/div agree with exact or overflow" rat_pair_gen
      (fun ((n1, d1), (n2, d2)) ->
        let a = rat n1 d1 and b = rat n2 d2 in
        agree2 F.add E.add a b && agree2 F.sub E.sub a b
        && agree2 F.mul E.mul a b
        && (R.is_zero b || agree2 F.div E.div a b));
    prop "min/max/neg/abs/inv agree with exact" rat_pair_gen
      (fun ((n1, d1), (n2, d2)) ->
        let a = rat n1 d1 and b = rat n2 d2 in
        agree2 F.min E.min a b && agree2 F.max E.max a b
        && agree1 F.neg E.neg a && agree1 F.abs E.abs a
        && (R.is_zero a || agree1 F.inv E.inv a));
    prop "rounding agrees with exact" rat_pair_gen
      (fun ((n1, d1), _) ->
        let a = rat n1 d1 in
        agree1 F.floor E.floor a && agree1 F.ceil E.ceil a
        && agree1 F.frac E.frac a);
    prop "queries and order agree with exact" rat_pair_gen
      (fun ((n1, d1), (n2, d2)) ->
        let a = rat n1 d1 and b = rat n2 d2 in
        let fa = F.of_rat a and fb = F.of_rat b in
        sign_of (F.compare fa fb) = sign_of (E.compare a b)
        && F.equal fa fb = E.equal a b
        && F.sign fa = E.sign a
        && F.is_zero fa = E.is_zero a
        && F.is_integer fa = E.is_integer a
        && F.to_string fa = E.to_string a)
  ]

(* --- qcheck: solver-level differential --- *)

let ri = R.of_int

(* Random always-feasible bounded covering LPs (the generator of
   test_lp, plus variable upper bounds so the bounded engine has
   structure to exploit). *)
let covering_gen =
  QCheck2.Gen.(
    let small = int_range 1 9 in
    pair
      (pair (int_range 1 4) (int_range 1 4))
      (pair (list_size (return 16) small) (list_size (return 4) small)))

let build_covering ?(bounded = false) ((nv, nc), (coeffs, rhs)) =
  let m = M.create () in
  let vars = Array.init nv (fun i -> M.add_var m ~name:(Printf.sprintf "v%d" i)) in
  let coeff = Array.of_list coeffs in
  let rhs = Array.of_list rhs in
  for c = 0 to nc - 1 do
    let terms =
      Array.to_list
        (Array.mapi (fun i v -> (v, ri coeff.(((c * nv) + i) mod 16))) vars)
    in
    M.add_constraint m (L.of_terms terms) M.Ge (ri rhs.(c mod 4))
  done;
  M.set_objective m M.Minimize
    (L.of_terms (Array.to_list (Array.mapi (fun i v -> (v, ri (1 + (i mod 3)))) vars)));
  (* Every rhs is <= 9 and every coefficient >= 1, so 9 per variable
     stays feasible under these bounds. *)
  if bounded then Array.iter (fun v -> M.tighten_upper m v (ri 9)) vars;
  m

let result_equal a b =
  match (a, b) with
  | S.Optimal x, S.Optimal y ->
    R.equal x.S.objective y.S.objective
    && Array.length x.S.values = Array.length y.S.values
    && Array.for_all2 R.equal x.S.values y.S.values
  | S.Infeasible, S.Infeasible | S.Unbounded, S.Unbounded -> true
  | _ -> false

let solver_props =
  [ prop ~count:200 "Fast simplex is bit-identical to exact" covering_gen
      (fun input ->
        let m = build_covering input in
        match S.Fast.solve m with
        | fast -> result_equal fast (S.solve m)
        | exception K.Overflow -> true (* exercised by directed tests *));
    prop ~count:200 "Fast bounded simplex is bit-identical to exact"
      covering_gen
      (fun input ->
        let m = build_covering ~bounded:true input in
        match Lp.Bounded.Fast.solve m with
        | fast -> result_equal fast (Lp.Bounded.solve m)
        | exception K.Overflow -> true)
  ]

(* --- directed: overflow inside a solve, and the fallback driver --- *)

(* A cost at the range bound overflows Fix64 on injection, before any
   pivot; the exact engine is untroubled. *)
let test_simplex_overflow_on_injection () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  M.add_constraint m (L.of_terms [ (x, R.one) ]) M.Ge R.one;
  M.set_objective m M.Minimize (L.of_terms [ (x, R.of_int F.bound) ]);
  Alcotest.check_raises "Fast overflows at the bound" K.Overflow (fun () ->
      ignore (S.Fast.solve m));
  match S.solve m with
  | S.Optimal sol -> check_rat "exact optimum" (R.of_int F.bound) sol.S.objective
  | _ -> Alcotest.fail "exact engine must solve the model"

(* Max-denominator pivots: every input coefficient fits comfortably,
   but under the Fix64 kernel pivoting multiplies by the huge
   reciprocals and the objective sum (bound-1) + (bound-3) crosses the
   range bound mid-solve. The fraction-free engine keeps each row
   integer at its own scale, so the same model sails through on the
   production fast path — bit-identical to exact. *)
module KF = S.Make (F)

let test_simplex_overflow_on_pivot () =
  let p1 = F.bound - 1 and p2 = F.bound - 3 in
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  let y = M.add_var m ~name:"y" in
  M.add_constraint m (L.of_terms [ (x, rat 1 p1) ]) M.Ge R.one;
  M.add_constraint m (L.of_terms [ (y, rat 1 p2) ]) M.Ge R.one;
  M.set_objective m M.Minimize (L.of_terms [ (x, R.one); (y, R.one) ]);
  Alcotest.check_raises "Fix64 kernel overflows mid-pivot" K.Overflow
    (fun () -> ignore (KF.solve m));
  (match S.Fast.solve m with
   | S.Optimal sol ->
     check_rat "fraction-free optimum" (R.of_int (p1 + p2)) sol.S.objective
   | _ -> Alcotest.fail "fraction-free engine must solve the model");
  match S.solve m with
  | S.Optimal sol ->
    check_rat "exact optimum survives" (R.of_int (p1 + p2)) sol.S.objective
  | _ -> Alcotest.fail "exact engine must solve the model"

(* Two coprime near-range denominators in one row: their lcm exceeds
   the fraction-free range, so the production fast path overflows
   while integerizing the row — before any pivot — and the driver's
   exact restart is what saves such models. *)
let test_simplex_overflow_on_row_lcm () =
  let p1 = F.bound - 1 and p2 = F.bound - 3 in
  let m = M.create () in
  let x = M.add_var m ~name:"x" in
  let y = M.add_var m ~name:"y" in
  M.add_constraint m
    (L.of_terms [ (x, rat 1 p1); (y, rat 1 p2) ])
    M.Ge R.one;
  M.set_objective m M.Minimize (L.of_terms [ (x, R.one); (y, R.one) ]);
  Alcotest.check_raises "Fast overflows on the row lcm" K.Overflow
    (fun () -> ignore (S.Fast.solve m));
  match S.solve m with
  | S.Optimal sol ->
    check_rat "exact optimum survives" (R.of_int p2) sol.S.objective
  | _ -> Alcotest.fail "exact engine must solve the model"

(* The Ilp driver on a well-scaled problem answers on the fast path:
   the fast-solve counter moves, the fallback counter does not, and
   the answer matches the exhaustive oracle. *)
let test_driver_fast_path () =
  let problem = Rentcost.Problem.illustrating in
  let target = 70 in
  let fast0 = Telemetry.value Telemetry.numeric_fast_solves in
  let fb0 = Telemetry.value Telemetry.numeric_fallbacks in
  let o = Rentcost.Ilp.optimize ~problem ~target () in
  Alcotest.(check bool) "proved optimal" true o.Rentcost.Ilp.proved_optimal;
  Alcotest.(check int) "cost matches the oracle"
    (Rentcost.Exhaustive.run ~problem ~target ()).Rentcost.Allocation.cost
    (Option.get o.Rentcost.Ilp.allocation).Rentcost.Allocation.cost;
  Alcotest.(check int) "one fast solve" (fast0 + 1)
    (Telemetry.value Telemetry.numeric_fast_solves);
  Alcotest.(check int) "no fallback" fb0
    (Telemetry.value Telemetry.numeric_fallbacks)

(* Near-max-int costs (far beyond the fast range): the Fix64 attempt
   overflows, the driver restarts on Rat, and the answer still matches
   the exhaustive oracle exactly. *)
let test_driver_falls_back_on_huge_costs () =
  let huge = max_int / 1024 in
  let chain types = Rentcost.Task_graph.chain ~ntypes:2 ~types in
  let problem =
    Rentcost.Problem.create
      (Rentcost.Platform.of_list [ (10, huge); (25, 2 * huge) ])
      [| chain [| 0 |]; chain [| 0; 1 |] |]
  in
  let target = 20 in
  let fast0 = Telemetry.value Telemetry.numeric_fast_solves in
  let fb0 = Telemetry.value Telemetry.numeric_fallbacks in
  let o = Rentcost.Ilp.optimize ~problem ~target () in
  Alcotest.(check bool) "proved optimal" true o.Rentcost.Ilp.proved_optimal;
  Alcotest.(check int) "cost matches the oracle"
    (Rentcost.Exhaustive.run ~problem ~target ()).Rentcost.Allocation.cost
    (Option.get o.Rentcost.Ilp.allocation).Rentcost.Allocation.cost;
  Alcotest.(check int) "one fallback" (fb0 + 1)
    (Telemetry.value Telemetry.numeric_fallbacks);
  Alcotest.(check int) "no fast solve counted" fast0
    (Telemetry.value Telemetry.numeric_fast_solves)

let suite =
  ( "numeric-kernel",
    [ Alcotest.test_case "kernel names" `Quick test_kernel_names;
      Alcotest.test_case "constants round-trip" `Quick test_constants_round_trip;
      Alcotest.test_case "rounding matches exact" `Quick
        test_rounding_matches_exact;
      Alcotest.test_case "injection boundary" `Quick test_injection_boundary;
      Alcotest.test_case "arithmetic boundary" `Quick test_arithmetic_boundary;
      Alcotest.test_case "simplex overflow on injection" `Quick
        test_simplex_overflow_on_injection;
      Alcotest.test_case "simplex overflow on pivot" `Quick
        test_simplex_overflow_on_pivot;
      Alcotest.test_case "simplex overflow on row lcm" `Quick
        test_simplex_overflow_on_row_lcm;
      Alcotest.test_case "driver fast path" `Quick test_driver_fast_path;
      Alcotest.test_case "driver falls back on huge costs" `Quick
        test_driver_falls_back_on_huge_costs ]
    @ op_props @ solver_props )
