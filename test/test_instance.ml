(* Tests for the compiled-instance layer: the incremental cost oracle
   against fresh [Allocation.of_rho] repricing (including across undo
   and reset), dominance preprocessing (soundness: the optimal cost
   never changes; bookkeeping: index maps and dropped pairs), the
   closed-form per-recipe costs, and the fluid lower bound. *)

module AL = Rentcost.Allocation
module I = Rentcost.Instance
module O = Rentcost.Instance.Oracle
module PB = Rentcost.Problem
module S = Rentcost.Solver
module G = Cloudsim.Generator
module Prng = Numeric.Prng

let platform3 = Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30) ]

let chain ?(ntypes = 3) types = Rentcost.Task_graph.chain ~ntypes ~types

(* Small random instances for the properties: 4 alternatives over 4
   types keeps the exhaustive cross-checks fast. *)
let problem_of_seed seed =
  G.problem ~rng:(Prng.create seed)
    { G.num_graphs = 4; min_tasks = 2; max_tasks = 5; mutation_pct = 0.5 }
    { G.num_types = 4; min_cost = 1; max_cost = 20; min_throughput = 3;
      max_throughput = 10 }

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- compile: shape and bookkeeping --- *)

let test_compile_illustrating () =
  let inst = I.compile PB.illustrating in
  Alcotest.(check int) "no pruning" 0 (I.num_pruned inst);
  Alcotest.(check int) "all recipes survive" (PB.num_recipes PB.illustrating)
    (I.num_recipes inst);
  Alcotest.(check bool) "not blackbox" false (I.is_blackbox inst);
  Alcotest.(check bool) "not disjoint" false (I.is_disjoint inst);
  for j = 0 to I.num_recipes inst - 1 do
    Alcotest.(check int) "identity index map" j (I.original_index inst j);
    let counts = PB.type_counts PB.illustrating j in
    let s = I.support inst j in
    Array.iteri
      (fun q n ->
        Alcotest.(check int) (Printf.sprintf "count %d/%d" j q) n (I.count inst j q))
      counts;
    Array.iteri
      (fun i q ->
        Alcotest.(check bool) "support positive" true (s.I.counts.(i) > 0);
        Alcotest.(check int)
          (Printf.sprintf "support %d/%d" j i)
          counts.(q) s.I.counts.(i))
      s.I.types
  done

let test_single_cost_closed_form () =
  let inst = I.compile PB.illustrating in
  List.iter
    (fun target ->
      for j = 0 to I.num_recipes inst - 1 do
        Alcotest.(check int)
          (Printf.sprintf "single_cost j=%d rho=%d" j target)
          (Rentcost.Costing.single_graph PB.illustrating
             ~j:(I.original_index inst j) ~target)
          (I.single_cost inst ~j ~target)
      done)
    [ 0; 1; 17; 70 ]

(* --- dominance preprocessing --- *)

let test_dominance_drops_superset () =
  (* (1,1,0) dominates (1,1,1): the longer recipe can never price
     cheaper at any throughput. *)
  let p = PB.create platform3 [| chain [| 0; 1 |]; chain [| 0; 1; 2 |] |] in
  let inst = I.compile p in
  Alcotest.(check int) "one survivor" 1 (I.num_recipes inst);
  Alcotest.(check int) "one pruned" 1 (I.num_pruned inst);
  Alcotest.(check int) "survivor is recipe 0" 0 (I.original_index inst 0);
  Alcotest.(check (list (pair int int))) "dropped pair" [ (1, 0) ] (I.dropped inst);
  Alcotest.(check (array int)) "expand_rho scatters" [| 5; 0 |]
    (I.expand_rho inst [| 5 |])

let test_dominance_equal_rows_keep_one () =
  let p = PB.create platform3 [| chain [| 0; 1 |]; chain [| 1; 0 |] |] in
  let inst = I.compile p in
  Alcotest.(check int) "one survivor" 1 (I.num_recipes inst);
  Alcotest.(check (list (pair int int))) "lower index survives" [ (1, 0) ]
    (I.dropped inst)

let test_dominance_chain_chases_to_survivor () =
  (* Recipe 2 dominates 0 dominates 1; the reported dominator of 1 must
     be the *surviving* recipe 2, not the intermediate 0. *)
  let p =
    PB.create platform3 [| chain [| 0; 1 |]; chain [| 0; 1; 2 |]; chain [| 0 |] |]
  in
  let inst = I.compile p in
  Alcotest.(check int) "one survivor" 1 (I.num_recipes inst);
  Alcotest.(check int) "survivor is recipe 2" 2 (I.original_index inst 0);
  Alcotest.(check (list (pair int int))) "chains chased" [ (0, 2); (1, 2) ]
    (I.dropped inst)

let test_prune_false_keeps_everything () =
  let p = PB.create platform3 [| chain [| 0; 1 |]; chain [| 0; 1; 2 |] |] in
  let inst = I.compile ~prune:false p in
  Alcotest.(check int) "no pruning" 0 (I.num_pruned inst);
  Alcotest.(check int) "all survive" 2 (I.num_recipes inst)

let test_pruning_preserves_optimum () =
  let p =
    PB.create platform3 [| chain [| 0; 1 |]; chain [| 0; 1; 2 |]; chain [| 2 |] |]
  in
  let pruned = I.compile p and full = I.compile ~prune:false p in
  Alcotest.(check bool) "something pruned" true (I.num_pruned pruned > 0);
  List.iter
    (fun target ->
      Alcotest.(check int)
        (Printf.sprintf "optimal cost at rho=%d" target)
        (Rentcost.Exhaustive.run ~instance:full ~target ()).AL.cost
        (Rentcost.Exhaustive.run ~instance:pruned ~target ()).AL.cost)
    [ 0; 1; 9; 25; 60 ]

let prop_pruning_preserves_optimum =
  prop ~count:60 "pruning preserves optimum (generated)"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p = problem_of_seed seed in
      let pruned = I.compile p and full = I.compile ~prune:false p in
      List.for_all
        (fun target ->
          (Rentcost.Exhaustive.run ~instance:full ~target ()).AL.cost
          = (Rentcost.Exhaustive.run ~instance:pruned ~target ()).AL.cost)
        [ 0; 7; 12 ])

let test_pruning_unlocks_blackbox_routing () =
  (* The only structure violations are dominated recipes (a duplicate
     single-task recipe and a two-task superset): the pruned instance
     is black-box and Auto routes to the § V-A DP, still optimally. *)
  let p =
    PB.create platform3
      [| chain [| 0 |]; chain [| 1 |]; chain [| 0 |]; chain [| 0; 1 |] |]
  in
  Alcotest.(check bool) "raw problem is not blackbox" false (PB.is_blackbox p);
  let inst = I.compile p in
  Alcotest.(check bool) "pruned instance is blackbox" true (I.is_blackbox inst);
  Alcotest.(check bool) "auto routes to knapsack DP" true
    (S.auto_of_instance inst = S.Dp_blackbox);
  List.iter
    (fun target ->
      let o =
        S.run ~spec:S.Auto ~instance:inst
          ~objective:(Rentcost.Objective.min_cost ~target) ()
      in
      let cost =
        match o.S.allocation with
        | Some a -> a.AL.cost
        | None -> Alcotest.fail "no allocation"
      in
      Alcotest.(check int)
        (Printf.sprintf "dp matches oracle at rho=%d" target)
        (Rentcost.Exhaustive.run ~instance:(I.compile ~prune:false p) ~target ()).AL.cost
        cost;
      Alcotest.(check int)
        (Printf.sprintf "telemetry reports pruning at rho=%d" target)
        2 o.S.telemetry.S.pruned_recipes)
    [ 0; 5; 33 ]

(* --- the incremental oracle --- *)

let scratch_state inst o =
  let rho = I.expand_rho inst (O.rho o) in
  let problem = I.problem inst in
  let a = AL.of_rho problem ~rho in
  (a.AL.cost, AL.loads problem ~rho, a.AL.machines)

let oracle_matches_scratch inst o =
  let cost, loads, machines = scratch_state inst o in
  O.cost o = cost && O.loads o = loads && O.machines o = machines

let prop_oracle_matches_scratch =
  prop ~count:100 "oracle matches scratch repricing under random moves"
    QCheck2.Gen.(
      triple (int_range 0 10_000)
        (list_size (int_range 1 30) (pair (int_range 0 1000) (int_range (-3) 4)))
        (int_range 0 4))
    (fun (seed, raw_moves, base) ->
      let p = problem_of_seed seed in
      let inst = I.compile p in
      let j_count = I.num_recipes inst in
      let o = O.create inst in
      let rho0 = Array.make j_count base in
      O.reset o ~rho:rho0;
      let start_cost = O.cost o in
      let ok = ref (oracle_matches_scratch inst o) in
      let applied = ref 0 in
      List.iter
        (fun (jraw, d) ->
          let j = jraw mod j_count in
          (* Clamp so throughputs stay non-negative, as callers do. *)
          let drho = max d (-O.rho_at o j) in
          O.apply o ~j ~drho;
          incr applied;
          ok := !ok && oracle_matches_scratch inst o)
        raw_moves;
      ok := !ok && O.depth o = !applied;
      (* Unwind the whole log: exact return to the starting state. *)
      while O.depth o > 0 do
        O.undo o
      done;
      !ok && O.cost o = start_cost && O.rho o = rho0
      && oracle_matches_scratch inst o)

let prop_oracle_reset_matches_scratch =
  prop ~count:100 "oracle reset matches scratch on arbitrary rho"
    QCheck2.Gen.(
      pair (int_range 0 10_000) (list_size (int_range 1 8) (int_range 0 9)))
    (fun (seed, rho_list) ->
      let p = problem_of_seed seed in
      let inst = I.compile p in
      let j_count = I.num_recipes inst in
      let rho =
        Array.init j_count (fun j ->
            List.nth rho_list (j mod List.length rho_list))
      in
      let o = O.create inst in
      O.reset o ~rho;
      O.depth o = 0 && oracle_matches_scratch inst o)

let test_oracle_allocation_and_commit () =
  let inst = I.compile PB.illustrating in
  let o = O.create inst in
  O.reset o ~rho:[| 10; 20; 40 |];
  let a = O.allocation o in
  Alcotest.(check int) "allocation cost" (O.cost o) a.AL.cost;
  Alcotest.(check (array int)) "allocation rho" [| 10; 20; 40 |] a.AL.rho;
  O.apply o ~j:0 ~drho:5;
  O.apply o ~j:2 ~drho:(-5);
  Alcotest.(check int) "depth tracks log" 2 (O.depth o);
  O.commit o;
  Alcotest.(check int) "commit clears log" 0 (O.depth o);
  Alcotest.(check (array int)) "commit keeps state" [| 15; 20; 35 |] (O.rho o);
  Alcotest.check_raises "undo past commit"
    (Invalid_argument "Instance.Oracle.undo: nothing to undo") (fun () ->
      O.undo o)

let test_oracle_validation () =
  let inst = I.compile PB.illustrating in
  let o = O.create inst in
  Alcotest.check_raises "reset wrong length"
    (Invalid_argument "Instance.Oracle.reset: rho has wrong length") (fun () ->
      O.reset o ~rho:[| 1; 2 |]);
  Alcotest.check_raises "reset negative"
    (Invalid_argument "Instance.Oracle.reset: negative throughput") (fun () ->
      O.reset o ~rho:[| 1; -2; 3 |]);
  O.reset o ~rho:[| 0; 0; 0 |];
  Alcotest.check_raises "apply below zero"
    (Invalid_argument "Instance.Oracle.apply: negative throughput") (fun () ->
      O.apply o ~j:1 ~drho:(-1))

(* --- bounds --- *)

let test_fluid_lower_bound () =
  let inst = I.compile PB.illustrating in
  Alcotest.(check int) "zero at target 0" 0 (I.fluid_lower_bound inst ~target:0);
  List.iter
    (fun target ->
      let lb = I.fluid_lower_bound inst ~target in
      let opt = (Rentcost.Exhaustive.run ~instance:inst ~target ()).AL.cost in
      Alcotest.(check bool)
        (Printf.sprintf "positive bound at rho=%d" target)
        true (lb > 0);
      Alcotest.(check bool)
        (Printf.sprintf "bound below optimum at rho=%d" target)
        true (lb <= opt))
    [ 1; 10; 70 ]

let prop_fluid_lower_bound =
  prop ~count:60 "fluid bound below optimum (generated)"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 15))
    (fun (seed, target) ->
      let inst = I.compile (problem_of_seed seed) in
      I.fluid_lower_bound inst ~target
      <= (Rentcost.Exhaustive.run ~instance:inst ~target ()).AL.cost)

let suite =
  ( "instance",
    [ Alcotest.test_case "compile illustrating" `Quick test_compile_illustrating;
      Alcotest.test_case "single_cost closed form" `Quick
        test_single_cost_closed_form;
      Alcotest.test_case "dominance drops superset" `Quick
        test_dominance_drops_superset;
      Alcotest.test_case "dominance equal rows keep one" `Quick
        test_dominance_equal_rows_keep_one;
      Alcotest.test_case "dominance chain chases to survivor" `Quick
        test_dominance_chain_chases_to_survivor;
      Alcotest.test_case "prune:false keeps everything" `Quick
        test_prune_false_keeps_everything;
      Alcotest.test_case "pruning preserves optimum" `Quick
        test_pruning_preserves_optimum;
      prop_pruning_preserves_optimum;
      Alcotest.test_case "pruning unlocks blackbox routing" `Quick
        test_pruning_unlocks_blackbox_routing;
      prop_oracle_matches_scratch;
      prop_oracle_reset_matches_scratch;
      Alcotest.test_case "oracle allocation and commit" `Quick
        test_oracle_allocation_and_commit;
      Alcotest.test_case "oracle validation" `Quick test_oracle_validation;
      Alcotest.test_case "fluid lower bound" `Quick test_fluid_lower_bound;
      prop_fluid_lower_bound ] )
