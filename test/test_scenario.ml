(* Tests for the scenario layer: Objective/Pricebook/Scenario values,
   scenario-aware compilation (fingerprint divergence, degenerate
   bit-identity), the max-throughput dual search and its duality
   property, the service ladder's objective separation, format/protocol
   versioning, and the deprecated-alias equivalences. *)

module P = Rentcost.Problem
module PF = Rentcost.Platform
module I = Rentcost.Instance
module AL = Rentcost.Allocation
module S = Rentcost.Solver
module Ob = Rentcost.Objective
module Pb = Rentcost.Pricebook
module Sc = Rentcost.Scenario
module Svc = Rentcost_service
module C = Svc.Cache
module E = Svc.Engine
module Pr = Svc.Protocol
module J = Svc.Json

let illustrating = P.illustrating

let platform = P.platform illustrating

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* A 3-book pricebook over the illustrating platform: list prices, a
   dearer region with a reserved tier, and a spot book whose 60%-of-
   list tier is strictly cheapest for every type. *)
let clouds =
  let q = PF.num_types platform in
  let prices f = Array.init q (fun i -> f (PF.cost platform i)) in
  Pb.create
    [ { Pb.book_name = "on-prem"; region = None; prices = prices Fun.id;
        tiers = [] };
      { Pb.book_name = "us-east"; region = Some "us-east-1";
        prices = prices (fun c -> (c * 5 / 4) + 1);
        tiers = [ { Pb.tier_name = "reserved"; percent = 90 } ] };
      { Pb.book_name = "ap-spot"; region = Some "ap-south-1";
        prices = prices Fun.id;
        tiers = [ { Pb.tier_name = "spot"; percent = 60 } ] } ]

let identical_books =
  let q = PF.num_types platform in
  Pb.create
    (List.map
       (fun name ->
         { Pb.book_name = name; region = None;
           prices = Array.init q (PF.cost platform); tiers = [] })
       [ "alpha"; "beta"; "gamma" ])

let cost_of o =
  match o.S.allocation with
  | Some a -> a.AL.cost
  | None -> Alcotest.fail "expected an allocation"

let alloc_sig o =
  Option.map (fun a -> (a.AL.rho, a.AL.machines, a.AL.cost)) o.S.allocation

(* --- Objective / Scenario values --- *)

let test_objective_basics () =
  let mc = Ob.min_cost ~target:70 and mt = Ob.max_throughput ~budget:120 in
  Alcotest.(check int) "min-cost scalar" 70 (Ob.scalar mc);
  Alcotest.(check int) "max-throughput scalar" 120 (Ob.scalar mt);
  Alcotest.(check bool) "kinds differ" true (Ob.kind mc <> Ob.kind mt);
  Alcotest.(check string) "min-cost spelling" "min-cost"
    (Ob.kind_to_string (Ob.kind mc));
  Alcotest.(check string) "max-throughput spelling" "max-throughput"
    (Ob.kind_to_string (Ob.kind mt));
  Alcotest.(check bool) "spelling round-trips" true
    (Ob.kind_of_string "max-throughput" = Some `Max_throughput
    && Ob.kind_of_string "min-cost" = Some `Min_cost
    && Ob.kind_of_string "nonsense" = None);
  Alcotest.check_raises "negative target"
    (Invalid_argument "Objective.min_cost: negative target") (fun () ->
      ignore (Ob.min_cost ~target:(-1)));
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Objective.max_throughput: negative budget") (fun () ->
      ignore (Ob.max_throughput ~budget:(-1)))

(* --- Pricebook: effective costs, text format, versioning --- *)

let test_pricebook_effective_costs () =
  for q = 0 to PF.num_types platform - 1 do
    let list_price = PF.cost platform q in
    let expected = max 1 (((list_price * 60) + 99) / 100) in
    Alcotest.(check int)
      (Printf.sprintf "type %d priced from the spot tier" q)
      expected (Pb.effective_cost clouds q);
    let s = Pb.sourcing clouds q in
    Alcotest.(check string) "spot book wins" "ap-spot" s.Pb.src_book;
    Alcotest.(check string) "spot tier wins" "spot" s.Pb.src_tier;
    Alcotest.(check (option string)) "region carried" (Some "ap-south-1")
      s.Pb.src_region
  done

let test_pricebook_roundtrip () =
  let back = Pb.of_string (Pb.to_string clouds) in
  Alcotest.(check int) "books survive" (Pb.num_books clouds)
    (Pb.num_books back);
  for q = 0 to Pb.num_types clouds - 1 do
    Alcotest.(check int)
      (Printf.sprintf "effective cost %d survives" q)
      (Pb.effective_cost clouds q)
      (Pb.effective_cost back q);
    let a = Pb.sourcing clouds q and b = Pb.sourcing back q in
    Alcotest.(check string) "sourcing book survives" a.Pb.src_book
      b.Pb.src_book;
    Alcotest.(check (option string)) "sourcing region survives"
      a.Pb.src_region b.Pb.src_region
  done

let test_pricebook_version_rejected () =
  (match Pb.of_string "pricebook version 2\nbook a\n  price 0 5\n" with
   | exception Failure msg ->
     Alcotest.(check bool)
       ("message names supported versions: " ^ msg)
       true
       (contains ~sub:"unsupported pricebook version 2" msg)
   | _ -> Alcotest.fail "version 2 must be rejected");
  (* version 1, spelled out, still parses *)
  let pb = Pb.of_string "pricebook version 1\nbook a\n  price 0 5\n" in
  Alcotest.(check int) "explicit version 1 parses" 5 (Pb.effective_cost pb 0)

(* --- scenario compilation: fingerprints and bit-identity --- *)

let test_fingerprints_diverge_across_objectives () =
  let plain = I.compile illustrating in
  let maxthr =
    I.compile ~scenario:(Sc.max_throughput ~budget:120 ()) illustrating
  in
  Alcotest.(check bool) "objective kind recorded" true
    (I.objective_kind maxthr = `Max_throughput
    && I.objective_kind plain = `Min_cost);
  Alcotest.(check bool) "encodings diverge across objectives" true
    (I.canonical_encoding plain <> I.canonical_encoding maxthr);
  Alcotest.(check bool) "fingerprints diverge across objectives" true
    (I.fingerprint plain <> I.fingerprint maxthr)

let test_fingerprints_diverge_across_pricebooks () =
  let plain = I.compile illustrating in
  let multi =
    I.compile
      ~scenario:(Sc.min_cost ~pricebook:clouds ~target:70 ())
      illustrating
  in
  Alcotest.(check bool) "encodings diverge under a real pricebook" true
    (I.canonical_encoding plain <> I.canonical_encoding multi);
  Alcotest.(check bool) "fingerprints diverge under a real pricebook" true
    (I.fingerprint plain <> I.fingerprint multi)

let test_identical_books_bit_identical () =
  let plain = I.compile illustrating in
  let same_prices =
    I.compile
      ~scenario:(Sc.min_cost ~pricebook:identical_books ~target:70 ())
      illustrating
  in
  Alcotest.(check string) "canonical encodings identical"
    (I.canonical_encoding plain)
    (I.canonical_encoding same_prices);
  let solve inst =
    S.run ~instance:inst ~objective:(Ob.min_cost ~target:70) ()
  in
  Alcotest.(check bool) "allocations identical" true
    (alloc_sig (solve plain) = alloc_sig (solve same_prices));
  (* the degenerate single-book constructor too *)
  let degenerate =
    I.compile
      ~scenario:
        (Sc.min_cost ~pricebook:(Pb.of_platform platform) ~target:70 ())
      illustrating
  in
  Alcotest.(check string) "of_platform compiles bit-identically"
    (I.canonical_encoding plain)
    (I.canonical_encoding degenerate)

let test_multicloud_prices_flow_through () =
  (* Under the spot book every unit price shrinks strictly, so the
     multicloud optimum must undercut the single-cloud one. *)
  let single =
    S.run ~problem:illustrating ~objective:(Ob.min_cost ~target:70) ()
  in
  let multi =
    S.run ~problem:illustrating ~pricebook:clouds
      ~objective:(Ob.min_cost ~target:70) ()
  in
  Alcotest.(check bool) "multicloud optimum undercuts single-cloud" true
    (cost_of multi < cost_of single)

(* --- the dual objective --- *)

let test_dual_matches_linear_scan () =
  let budget = 120 in
  let dual =
    S.run ~problem:illustrating ~objective:(Ob.max_throughput ~budget) ()
  in
  (* independent oracle: walk the monotone cost curve *)
  let cost_at t =
    cost_of
      (S.run ~problem:illustrating ~objective:(Ob.min_cost ~target:t) ())
  in
  let rec scan t = if cost_at (t + 1) <= budget then scan (t + 1) else t in
  let exact = scan 0 in
  Alcotest.(check int) "binary search finds the exact dual optimum" exact
    dual.S.throughput;
  Alcotest.(check bool) "dual allocation fits the budget" true
    (cost_of dual <= budget);
  Alcotest.(check bool) "exact engine proves optimality" true
    (dual.S.status = S.Optimal)

let test_dual_zero_budget () =
  let dual =
    S.run ~problem:illustrating ~objective:(Ob.max_throughput ~budget:0) ()
  in
  Alcotest.(check int) "zero budget buys zero throughput" 0 dual.S.throughput;
  Alcotest.(check int) "and costs nothing" 0 (cost_of dual)

let test_fluid_bound_brackets () =
  let inst = I.compile illustrating in
  let upper = I.fluid_upper_target inst ~budget:120 in
  let dual =
    S.run ~problem:illustrating ~objective:(Ob.max_throughput ~budget:120) ()
  in
  Alcotest.(check bool) "fluid bound is an upper bracket" true
    (upper >= dual.S.throughput);
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Instance.fluid_upper_target: negative budget")
    (fun () -> ignore (I.fluid_upper_target inst ~budget:(-1)))

(* --- calling-convention guard rails --- *)

let test_for_solve_guard_rails () =
  let inst = I.compile illustrating in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "instance and problem together rejected" true
    (raises (fun () ->
         S.run ~instance:inst ~problem:illustrating
           ~objective:(Ob.min_cost ~target:10) ()));
  Alcotest.(check bool) "neither instance nor problem rejected" true
    (raises (fun () -> S.run ~objective:(Ob.min_cost ~target:10) ()));
  Alcotest.(check bool) "pricebook with a compiled instance rejected" true
    (raises (fun () ->
         S.run ~instance:inst ~pricebook:clouds
           ~objective:(Ob.min_cost ~target:10) ()));
  Alcotest.(check bool) "objective-kind mismatch rejected" true
    (raises (fun () ->
         S.run ~instance:inst ~objective:(Ob.max_throughput ~budget:100) ()))

(* --- problem_format and protocol versioning --- *)

let test_problem_format_version () =
  let text = Rentcost.Problem_format.to_string illustrating in
  Alcotest.(check bool) "to_string leads with the version line" true
    (String.length text >= 9 && String.sub text 0 9 = "version 1");
  Alcotest.(check bool) "round-trips through the versioned text" true
    (Rentcost.Problem_format.of_string text
     |> Rentcost.Problem_format.to_string = text);
  match Rentcost.Problem_format.of_string ("version 3\n" ^ text) with
  | exception Failure msg ->
    Alcotest.(check bool)
      ("rejects unknown version: " ^ msg)
      true
      (contains ~sub:"unsupported problem format version 3" msg)
  | _ -> Alcotest.fail "version 3 must be rejected"

let req_of_string s = Pr.request_of_json (Result.get_ok (J.of_string s))

let test_protocol_version () =
  (match req_of_string {|{"op":"stats","version":1}|} with
   | Result.Ok Pr.Stats -> ()
   | _ -> Alcotest.fail "explicit version 1 must decode");
  (match req_of_string {|{"op":"stats","version":2}|} with
   | Result.Error msg ->
     Alcotest.(check bool)
       ("structured version error: " ^ msg)
       true
       (contains ~sub:"unsupported protocol version 2" msg)
   | _ -> Alcotest.fail "version 2 must be rejected");
  match req_of_string {|{"op":"stats","version":"two"}|} with
  | Result.Error _ -> ()
  | _ -> Alcotest.fail "non-integer version must be rejected"

let test_protocol_objective_roundtrip () =
  let roundtrip req =
    match Pr.request_of_json (Pr.request_to_json req) with
    | Result.Ok r -> r
    | Result.Error msg -> Alcotest.fail ("roundtrip: " ^ msg)
  in
  let solve objective pricebook =
    Pr.Solve
      { id = Some 3; trace_id = None; tenant = None;
        source = Pr.Ref "app"; objective; pricebook;
        spec = S.Auto; budget = None; reuse = Pr.Monotone }
  in
  (match roundtrip (solve (Ob.max_throughput ~budget:120) (Some clouds)) with
   | Pr.Solve
       { objective = Ob.Max_throughput { budget }; pricebook = Some pb; _ } ->
     Alcotest.(check int) "budget survives" 120 budget;
     Alcotest.(check int) "pricebook survives" (Pb.effective_cost clouds 0)
       (Pb.effective_cost pb 0)
   | _ -> Alcotest.fail "max-throughput solve must round-trip");
  (* the historical min-cost shape stays byte-compatible: no
     "objective" key on the wire *)
  let encoded =
    J.to_string (Pr.request_to_json (solve (Ob.min_cost ~target:70) None))
  in
  Alcotest.(check bool) "min-cost encodes without an objective key" true
    (not (contains ~sub:"objective" encoded));
  match
    req_of_string {|{"op":"solve","ref":"app","objective":"max-throughput"}|}
  with
  | Result.Error msg ->
    Alcotest.(check bool)
      ("missing budget is a structured error: " ^ msg)
      true
      (contains ~sub:"budget" msg)
  | _ -> Alcotest.fail "max-throughput without budget must be rejected"

(* --- the cache's dual monotone rung --- *)

let entry ~target ~cost ~optimal =
  { C.target; spec = "ilp"; canonical_rho = [| target |]; cost; optimal }

let test_find_monotone_le () =
  let c = C.create ~capacity:8 in
  let digest = "d" and encoding = "e" in
  C.insert c ~digest ~encoding (entry ~target:50 ~cost:40 ~optimal:true);
  C.insert c ~digest ~encoding (entry ~target:80 ~cost:70 ~optimal:false);
  C.insert c ~digest ~encoding (entry ~target:100 ~cost:90 ~optimal:true);
  let budget_of = function Some e -> e.C.target | None -> -1 in
  Alcotest.(check int) "largest optimal budget <= 90 is 50" 50
    (budget_of (C.find_monotone_le c ~digest ~encoding ~target:90));
  Alcotest.(check int) "exactly at an entry" 100
    (budget_of (C.find_monotone_le c ~digest ~encoding ~target:100));
  Alcotest.(check int) "above all entries takes the largest" 100
    (budget_of (C.find_monotone_le c ~digest ~encoding ~target:500));
  Alcotest.(check int) "below all optimal entries misses" (-1)
    (budget_of (C.find_monotone_le c ~digest ~encoding ~target:40));
  Alcotest.(check int) "other encodings never answer" (-1)
    (budget_of (C.find_monotone_le c ~digest ~encoding:"other" ~target:90))

(* --- the engine ladder across objectives --- *)

let solve_req ?(objective = Ob.min_cost ~target:70) ?pricebook () =
  Pr.Solve
    { id = None; trace_id = None; tenant = None;
      source = Pr.Ref "app"; objective; pricebook; spec = S.Auto;
      budget = None; reuse = Pr.Monotone }

let solved1 engine req =
  match E.handle engine req with
  | [ Pr.Solved { status; cost; served; _ } ] -> (status, cost, served)
  | [ Pr.Error { message; _ } ] -> Alcotest.fail ("engine error: " ^ message)
  | _ -> Alcotest.fail "expected exactly one solved response"

let served_is what expected (_, _, served) =
  Alcotest.(check string) what
    (Pr.served_to_string expected)
    (Pr.served_to_string served)

let test_engine_ladder_never_crosses_objectives () =
  let e = E.create () in
  ignore (E.register e ~name:"app" illustrating);
  (* Prime the min-cost side of the cache generously. *)
  List.iter
    (fun target ->
      ignore (solved1 e (solve_req ~objective:(Ob.min_cost ~target) ())))
    [ 50; 60; 70; 80 ];
  (* The first max-throughput solve must go cold: nothing on the
     min-cost side may answer it. *)
  let mt = solve_req ~objective:(Ob.max_throughput ~budget:120) () in
  let first = solved1 e mt in
  served_is "max-throughput goes cold despite a warm min-cost cache" Pr.Cold
    first;
  let status, cost, _ = first in
  Alcotest.(check bool) "dual solve is optimal and affordable" true
    (status = S.Optimal && cost <= 120);
  (* Replaying it is an exact hit on its own (objective-tagged) key. *)
  served_is "replay is an exact hit" Pr.Exact_hit (solved1 e mt);
  (* A looser budget is served from the tight-budget optimal entry —
     the dual monotone rung. *)
  served_is "larger budget served monotone" Pr.Monotone_hit
    (solved1 e (solve_req ~objective:(Ob.max_throughput ~budget:150) ()));
  (* And the min-cost side still exact-hits its own entries. *)
  served_is "min-cost replay still exact-hits" Pr.Exact_hit
    (solved1 e (solve_req ~objective:(Ob.min_cost ~target:70) ()))

let test_engine_pricebook_solves () =
  let e = E.create () in
  ignore (E.register e ~name:"app" illustrating);
  let plain = solved1 e (solve_req ()) in
  let multi = solved1 e (solve_req ~pricebook:clouds ()) in
  (* Distinct price books land on distinct cache keys. *)
  served_is "pricebook solve goes cold" Pr.Cold multi;
  served_is "pricebook replay exact-hits" Pr.Exact_hit
    (solved1 e (solve_req ~pricebook:clouds ()));
  let _, plain_cost, _ = plain and _, multi_cost, _ = multi in
  Alcotest.(check bool) "multicloud undercuts single-cloud" true
    (multi_cost < plain_cost);
  (* Identical-price books compile bit-identically to the single-cloud
     instance, so the plain entry answers exactly. *)
  served_is "identical-price books share the single-cloud cache" Pr.Exact_hit
    (solved1 e (solve_req ~pricebook:identical_books ()))

(* --- qcheck: duality across random budgets --- *)

let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let props =
  [ prop "duality: min-cost at the achieved throughput fits the budget" 25
      QCheck2.Gen.(int_range 0 300)
      (fun budget ->
        let dual =
          S.run ~problem:illustrating ~objective:(Ob.max_throughput ~budget)
            ()
        in
        let recheck =
          S.run ~problem:illustrating
            ~objective:(Ob.min_cost ~target:dual.S.throughput) ()
        in
        cost_of dual <= budget
        && cost_of recheck <= budget
        && (dual.S.status <> S.Optimal
           ||
           (* optimality: one more unit of throughput must not fit *)
           cost_of
             (S.run ~problem:illustrating
                ~objective:(Ob.min_cost ~target:(dual.S.throughput + 1)) ())
           > budget));
    prop "fingerprints: objective and pricebook axes both key the cache" 10
      QCheck2.Gen.(int_range 1 1000)
      (fun scalar ->
        let mc = I.compile illustrating in
        let mt =
          I.compile ~scenario:(Sc.max_throughput ~budget:scalar ())
            illustrating
        in
        let pb =
          I.compile
            ~scenario:(Sc.min_cost ~pricebook:clouds ~target:scalar ())
            illustrating
        in
        I.fingerprint mc <> I.fingerprint mt
        && I.fingerprint mc <> I.fingerprint pb
        && I.fingerprint mt <> I.fingerprint pb) ]

let suite =
  ( "scenario",
    [ Alcotest.test_case "objective basics" `Quick test_objective_basics;
      Alcotest.test_case "pricebook effective costs" `Quick
        test_pricebook_effective_costs;
      Alcotest.test_case "pricebook text round-trip" `Quick
        test_pricebook_roundtrip;
      Alcotest.test_case "pricebook version rejected" `Quick
        test_pricebook_version_rejected;
      Alcotest.test_case "fingerprints diverge across objectives" `Quick
        test_fingerprints_diverge_across_objectives;
      Alcotest.test_case "fingerprints diverge across pricebooks" `Quick
        test_fingerprints_diverge_across_pricebooks;
      Alcotest.test_case "identical books bit-identical" `Quick
        test_identical_books_bit_identical;
      Alcotest.test_case "multicloud prices flow through" `Quick
        test_multicloud_prices_flow_through;
      Alcotest.test_case "dual matches linear scan" `Quick
        test_dual_matches_linear_scan;
      Alcotest.test_case "dual zero budget" `Quick test_dual_zero_budget;
      Alcotest.test_case "fluid bound brackets the dual" `Quick
        test_fluid_bound_brackets;
      Alcotest.test_case "for_solve guard rails" `Quick
        test_for_solve_guard_rails;
      Alcotest.test_case "problem_format version" `Quick
        test_problem_format_version;
      Alcotest.test_case "protocol version" `Quick test_protocol_version;
      Alcotest.test_case "protocol objective round-trip" `Quick
        test_protocol_objective_roundtrip;
      Alcotest.test_case "cache find_monotone_le" `Quick
        test_find_monotone_le;
      Alcotest.test_case "engine ladder never crosses objectives" `Quick
        test_engine_ladder_never_crosses_objectives;
      Alcotest.test_case "engine pricebook solves" `Quick
        test_engine_pricebook_solves ]
    @ props )
